package roads_test

import (
	"fmt"
	"testing"
	"time"

	"roads"
)

// TestFacadeSimulated drives the whole public surface through the
// simulated path: schema, owners, policies, system, query, scope.
func TestFacadeSimulated(t *testing.T) {
	schema, err := roads.NewSchema([]roads.Attribute{
		{Name: "cpu", Kind: roads.Numeric},
		{Name: "os", Kind: roads.Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := roads.DefaultSystemConfig()
	cfg.MaxChildren = 3
	cfg.Summary.Buckets = 100
	sys, err := roads.NewSimulatedSystem(schema, cfg, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("org%d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			t.Fatal(err)
		}
		owner := roads.NewOwner(id+"-owner", schema, nil)
		r := roads.NewRecord(schema, fmt.Sprintf("m%d", i), id)
		r.SetNum(0, float64(i)/6)
		r.SetStr(1, "linux")
		owner.SetRecords([]*roads.Record{r})
		if err := sys.AttachOwner(id, owner); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Aggregate(); err != nil {
		t.Fatal(err)
	}
	q := roads.NewQuery("q", roads.Above("cpu", 0.4), roads.Eq("os", "linux"))
	res, err := sys.ResolveAndRetrieve(q, "org2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 { // cpu in {3/6, 4/6, 5/6}
		t.Fatalf("got %d records; want 3", len(res.Records))
	}
	// Parsed query agrees with the built one.
	pq, err := roads.ParseQuery("pq", "cpu>0.4; os=linux")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sys.ResolveAndRetrieve(pq, "org2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != len(res.Records) {
		t.Fatalf("parsed query found %d; built query found %d", len(res2.Records), len(res.Records))
	}
	// Scoped search compiles and runs through the facade.
	if _, err := sys.ResolveScoped(q.Clone(), "org2", roads.ScopeAll); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeLive drives the live path through the facade: cluster,
// transport, client, policies.
func TestFacadeLive(t *testing.T) {
	schema, err := roads.NewSchema([]roads.Attribute{
		{Name: "gpu", Kind: roads.Numeric},
		{Name: "tier", Kind: roads.Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := roads.NewInProcessTransport()
	cl, err := roads.StartCluster(tr, roads.ClusterConfig{N: 3, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	pol := roads.NewPolicy(roads.ExportSummary)
	pol.DefaultView = roads.View{Name: "public", Filter: func(r *roads.Record) bool {
		return r.Str(1) == "public"
	}}
	owner := roads.NewOwner("own", schema, pol)
	pub := roads.NewRecord(schema, "pub", "own")
	pub.SetNum(0, 0.9)
	pub.SetStr(1, "public")
	sec := roads.NewRecord(schema, "sec", "own")
	sec.SetNum(0, 0.9)
	sec.SetStr(1, "secret")
	owner.SetRecords([]*roads.Record{pub, sec})
	if err := cl.AttachOwner(2, owner); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitConverged(2, 60*time.Second); err != nil {
		t.Fatal(err)
	}

	client := roads.NewClient(tr, "stranger")
	recs, stats, err := client.Resolve(cl.Servers[0].Addr(), roads.NewQuery("q", roads.Above("gpu", 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "pub" {
		t.Fatalf("stranger got %v; want only the public record", recs)
	}
	if stats.Contacted == 0 {
		t.Fatal("no servers contacted")
	}
}
