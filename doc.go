// Package roads is a from-scratch Go reproduction of "A Replication
// Overlay Assisted Resource Discovery Service for Federated Systems"
// (Yang, Ye, Liu — ICPP 2008): the ROADS resource-discovery service, the
// SWORD and centralized-repository baselines it is evaluated against, a
// discrete-event simulator regenerating every figure of the paper's
// evaluation, and a live goroutine-per-server prototype.
//
// The library lives under internal/ (see README.md for the architecture
// map); the runnable entry points are the commands under cmd/, the
// examples under examples/, and the per-figure benchmarks in
// bench_test.go.
package roads
