module roads

go 1.22
