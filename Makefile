GO ?= go

.PHONY: tier1 build vet test race chaos docs-check bench-transport bench bench-store bench-load bench-cache bench-fp bench-compare

# tier1 is the gate every change must pass: full build + vet + full test
# suite, plus race-enabled runs of the concurrency-heavy packages (the
# live protocol stack and the pooled transport), the fault-injection
# chaos suite, and the documentation checks. test/race/chaos depend on
# vet so a vet failure stops the gate before any tests burn time.
tier1: build vet test race chaos docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race: vet
	$(GO) test -race ./internal/live/... ./internal/transport/... ./internal/wire/... ./internal/loadgen/... ./internal/store/...

# chaos drives the deterministic fault-injection transport through the
# failure scenarios in internal/live/chaos_test.go (crashed redirect
# targets, one-way partitions, deadline-straddling delays, hung peers)
# under the race detector.
chaos: vet
	$(GO) test -race -run 'TestChaos|TestFaulty' ./internal/live/ ./internal/transport/

# docs-check validates every relative markdown link resolves and that
# every registered metric name appears in the OPERATIONS.md catalog (see
# cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck

# bench-transport compares the pooled+batched comms hot path against the
# legacy dial-per-call / push-per-replica baseline (see EXPERIMENTS.md).
bench-transport:
	$(GO) test -bench 'BenchmarkTCPCall|BenchmarkPushReplicas' -benchmem -run '^$$' ./internal/transport/ ./internal/live/

# bench runs the query-hot-path, wire-codec, aggregation-tick, and
# sharded-store benchmarks — each carries its own before/after baseline as
# sub-benchmarks (snapshot vs mutex query locking, binary vs gob codec,
# delta vs full dissemination across churn rates, sharded vs monolithic
# summary refresh across churn rates) — and archives the numbers as
# BENCH_pr8.json via cmd/benchjson (see EXPERIMENTS.md).
BENCHOUT ?= BENCH_pr8.json
bench:
	$(GO) test -bench 'BenchmarkHandleQuery|BenchmarkCodec|BenchmarkAggregationTick|BenchmarkShardedIngest|BenchmarkExportChurn' -benchmem -run '^$$' ./internal/live/ ./internal/wire/ ./internal/store/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# bench-store runs only the store-layer benchmarks: bulk-ingest linearity
# across sizes and shard counts, and the per-refresh summary-export cost at
# 0%/1%/100% churn, sharded vs the pre-sharding full-rebuild baseline.
BENCHSTORE ?= BENCH_store.json
bench-store:
	$(GO) test -bench 'BenchmarkShardedIngest|BenchmarkExportChurn|BenchmarkSearch' -benchmem -run '^$$' ./internal/store/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCHSTORE)

# bench-load runs the live-topology load harness (cmd/roads-load →
# internal/loadgen) twice and archives both lines as BENCH_pr7.json via
# cmd/benchjson: the thousand-server record/kill churn run (LOADARGS,
# name-compatible with the BENCH_pr6 baseline for bench-compare) and a
# partition-churn run (LOADPARTARGS) that repeatedly severs and heals a
# ~30% subtree, reporting partitions-healed, split-brain seconds, post-heal
# re-convergence and the epoch-regression invariant. Override either for
# other shapes (see EXPERIMENTS.md for the knobs and archived baselines).
BENCHLOAD ?= BENCH_pr7.json
LOADARGS ?= -n 1000 -fanout 8 -mindepth 6 -owner-every 4 -queries 400 \
	-tick 250ms -churn-records 250ms -churn-kill 500ms -churn-revive 1s
LOADPARTARGS ?= -n 300 -fanout 4 -mindepth 5 -owner-every 4 -queries 300 \
	-tick 50ms -query-timeout 2s -drive-min 12s \
	-churn-partition 1s -churn-partition-frac 0.3 -churn-heal 4s
bench-load:
	( $(GO) run ./cmd/roads-load $(LOADARGS) ; \
	  $(GO) run ./cmd/roads-load $(LOADPARTARGS) ) | tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCHLOAD)

# bench-cache runs the result-cache / admission-control load harness three
# times and archives all lines as BENCH_pr9.json via cmd/benchjson:
#   1. unloaded baseline — high-priority drive clients with repeat-query
#      traffic and client+server caches on (the p99 yardstick),
#   2. hot tenant — a shared low-priority identity flooding a small repeat
#      set while record churn keeps invalidating cached answers, with no
#      admission control (everyone's p99 degrades),
#   3. hot tenant + admission — same flood, but per-requester token
#      buckets shed the over-budget tenant to coarse summary-only answers;
#      high-priority p99 must land within 2x the unloaded baseline and
#      shed queries get coarse answers, never errors (admission-rejected 0).
# See EXPERIMENTS.md for the archived numbers and the knob rationale.
BENCHCACHE ?= BENCH_pr9.json
CACHEBASEARGS ?= -n 200 -fanout 4 -mindepth 4 -owner-every 3 -queries 400 -clients 4 \
	-tick 250ms -repeat-frac 0.5 -client-cache -client-priority 2 -untraced -drive-min 8s
CACHEHOTARGS ?= $(CACHEBASEARGS) -churn-records 300ms -churn-owners 2 -hot-clients 8
CACHEADMARGS ?= $(CACHEHOTARGS) -admission-rate 40 -admission-burst 80
bench-cache:
	( $(GO) run ./cmd/roads-load $(CACHEBASEARGS) ; \
	  $(GO) run ./cmd/roads-load $(CACHEHOTARGS) ; \
	  $(GO) run ./cmd/roads-load $(CACHEADMARGS) ) | tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCHCACHE)

# bench-fp runs the false-positive-descent load harness three times and
# archives all lines as BENCH_pr10.json via cmd/benchjson:
#   1. static baseline — a skewed workload (every query a narrow range on
#      the one hot window attribute) against the fixed summary geometry,
#      with adaptation disabled; the FP-descent yardstick,
#   2. adaptive — the identical workload and seed with feedback-driven
#      resolution on, under a summary byte budget matching the static
#      geometry's footprint (8 numeric attrs x (16 + 4x64) ≈ 2.2 KB), so
#      the planner must shed cold-attribute resolution to fund the hot
#      attribute's climb; fp-rate must land at <= half the static arm's at
#      equal (1.0) coverage,
#   3. categorical — hierarchical dotted categorical values summarized as
#      live Blooms with value-set condensation, mixed-dimension skewed
#      queries; exercises the wire-v6 plan/mode path and condensation
#      under load (conjunctive cross-attribute false positives dominate
#      here, which per-attribute resolution cannot remove — the line
#      documents byte cost and recall, not an fp-rate win).
# See EXPERIMENTS.md for the archived numbers and the knob rationale.
BENCHFP ?= BENCH_pr10.json
FPSTATICARGS ?= -n 120 -fanout 4 -mindepth 4 -owner-every 3 -records 6 \
	-buckets 64 -queries 800 -dims 1 -range 0.04 -query-skew 1.0 \
	-tick 100ms -replan-every 1 -drive-min 15s -seed 1
FPADAPTARGS ?= $(FPSTATICARGS) -summary-budget 2200
FPCATARGS ?= -n 160 -fanout 4 -mindepth 4 -owner-every 3 -records 12 \
	-buckets 32 -queries 800 -dims 2 -range 0.1 -query-skew 0.8 \
	-cat-attrs 2 -cat-vocab 24 -cat-depth 3 -summary-bloom -condense-above 12 \
	-tick 100ms -replan-every 2 -drive-min 8s -seed 1
bench-fp:
	( $(GO) run ./cmd/roads-load $(FPSTATICARGS) -no-adaptive ; \
	  $(GO) run ./cmd/roads-load $(FPADAPTARGS) ; \
	  $(GO) run ./cmd/roads-load $(FPCATARGS) ) | tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCHFP)

# bench-compare diffs two benchjson archives; defaults compare this PR's
# archive against the PR-9 one (only the benchmarks present in both), e.g.
#   make bench-fp && make bench-compare
OLD ?= BENCH_pr9.json
NEW ?= BENCH_pr10.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)
