GO ?= go

.PHONY: tier1 build vet test race bench-transport

# tier1 is the gate every change must pass: full build + vet + full test
# suite, plus race-enabled runs of the concurrency-heavy packages (the
# live protocol stack and the pooled transport).
tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/live/... ./internal/transport/...

# bench-transport compares the pooled+batched comms hot path against the
# legacy dial-per-call / push-per-replica baseline (see EXPERIMENTS.md).
bench-transport:
	$(GO) test -bench 'BenchmarkTCPCall|BenchmarkPushReplicas' -benchmem -run '^$$' ./internal/transport/ ./internal/live/
