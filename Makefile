GO ?= go

.PHONY: tier1 build vet test race chaos bench-transport

# tier1 is the gate every change must pass: full build + vet + full test
# suite, plus race-enabled runs of the concurrency-heavy packages (the
# live protocol stack and the pooled transport) and the fault-injection
# chaos suite. test/race/chaos depend on vet so a vet failure stops the
# gate before any tests burn time.
tier1: build vet test race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race: vet
	$(GO) test -race ./internal/live/... ./internal/transport/...

# chaos drives the deterministic fault-injection transport through the
# failure scenarios in internal/live/chaos_test.go (crashed redirect
# targets, one-way partitions, deadline-straddling delays, hung peers)
# under the race detector.
chaos: vet
	$(GO) test -race -run 'TestChaos|TestFaulty' ./internal/live/ ./internal/transport/

# bench-transport compares the pooled+batched comms hot path against the
# legacy dial-per-call / push-per-replica baseline (see EXPERIMENTS.md).
bench-transport:
	$(GO) test -bench 'BenchmarkTCPCall|BenchmarkPushReplicas' -benchmem -run '^$$' ./internal/transport/ ./internal/live/
