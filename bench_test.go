// Per-figure benchmarks: each regenerates one of the paper's tables or
// figures at a reduced scale and reports the headline numbers as benchmark
// metrics, so `go test -bench .` doubles as a smoke reproduction. The
// full-scale runs (paper parameters) are driven by cmd/roads-sim and
// recorded in EXPERIMENTS.md.
package roads

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"roads/internal/analysis"
	"roads/internal/coords"
	"roads/internal/core"
	"roads/internal/experiment"
	"roads/internal/live"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/summary"
	"roads/internal/sword"
	"roads/internal/transport"
	"roads/internal/workload"
)

// benchOptions is the reduced-scale profile the figure benchmarks share.
func benchOptions() experiment.Options {
	o := experiment.Quick()
	o.Runs = 1
	o.Queries = 40
	o.Nodes = 96
	o.RecordsPerNode = 100
	o.Buckets = 300
	return o
}

// BenchmarkAnalysisUpdateOverhead evaluates Eqs. (1)-(4): the closed-form
// update and maintenance overheads for both parameter presets.
func BenchmarkAnalysisUpdateOverhead(b *testing.B) {
	p := analysis.SimParams()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.UpdateROADS() + p.UpdateSWORD() + p.UpdateCentral() + p.MaintenanceROADSWorst()
	}
	_ = sink
	b.ReportMetric(p.UpdateRatioROADSvsSWORD(), "sword/roads-ratio")
}

// BenchmarkTable1Storage evaluates the Table I storage formulas.
func BenchmarkTable1Storage(b *testing.B) {
	p := analysis.PaperParams()
	var rows []analysis.Table1Row
	for i := 0; i < b.N; i++ {
		rows = analysis.Table1(p)
	}
	b.ReportMetric(rows[1].Value/rows[0].Value, "sword/roads-ratio")
	b.ReportMetric(rows[2].Value/rows[0].Value, "central/roads-ratio")
}

// BenchmarkFig3LatencyVsNodes regenerates Fig. 3 at two sizes and reports
// the latency growth of each system — ROADS must grow slower.
func BenchmarkFig3LatencyVsNodes(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepNodes(opt, []int{48, 96})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fig3Latency.Y["ROADS"][1], "roads-ms")
		b.ReportMetric(res.Fig3Latency.Y["SWORD"][1], "sword-ms")
	}
}

// BenchmarkFig4UpdateVsNodes regenerates Fig. 4 and reports the update-
// overhead ratio (SWORD/ROADS) — the paper's 1-2 orders of magnitude.
func BenchmarkFig4UpdateVsNodes(b *testing.B) {
	opt := benchOptions()
	opt.Queries = 1
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepNodes(opt, []int{96})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fig4Update.Y["SWORD"][0]/res.Fig4Update.Y["ROADS"][0], "sword/roads-ratio")
	}
}

// BenchmarkFig5QueryVsNodes regenerates Fig. 5 and reports the query-
// overhead ratio (ROADS/SWORD) — ROADS pays more here by design.
func BenchmarkFig5QueryVsNodes(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepNodes(opt, []int{96})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fig5Query.Y["ROADS"][0]/res.Fig5Query.Y["SWORD"][0], "roads/sword-ratio")
	}
}

// BenchmarkFig6LatencyVsDims regenerates Fig. 6: ROADS latency falls with
// query dimensionality while SWORD's stays flat.
func BenchmarkFig6LatencyVsDims(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepDims(opt, []int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fig6Latency.Y["ROADS"][1]/res.Fig6Latency.Y["ROADS"][0], "roads-8d/2d")
		b.ReportMetric(res.Fig6Latency.Y["SWORD"][1]/res.Fig6Latency.Y["SWORD"][0], "sword-8d/2d")
	}
}

// BenchmarkFig7QueryVsDims regenerates Fig. 7: SWORD's query overhead
// grows linearly with dimensionality; ROADS confines it.
func BenchmarkFig7QueryVsDims(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepDims(opt, []int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fig7Query.Y["SWORD"][1]/res.Fig7Query.Y["SWORD"][0], "sword-8d/2d")
		b.ReportMetric(res.Fig7Query.Y["ROADS"][1]/res.Fig7Query.Y["ROADS"][0], "roads-8d/2d")
	}
}

// BenchmarkFig8UpdateVsRecords regenerates Fig. 8: ROADS update overhead
// is constant in the record count; SWORD's is linear.
func BenchmarkFig8UpdateVsRecords(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepRecords(opt, []int{50, 250})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Y["ROADS"][1]/res.Y["ROADS"][0], "roads-growth")
		b.ReportMetric(res.Y["SWORD"][1]/res.Y["SWORD"][0], "sword-growth")
	}
}

// BenchmarkFig9OverlapFactor regenerates Fig. 9: latency rises slightly as
// servers' data overlaps more.
func BenchmarkFig9OverlapFactor(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepOverlap(opt, []float64{1, 12})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Y["ROADS"][1]/res.Y["ROADS"][0], "latency-of12/of1")
		b.ReportMetric(res.Y["contacted"][1]/res.Y["contacted"][0], "contacted-of12/of1")
	}
}

// BenchmarkFig10NodeDegree regenerates Fig. 10: higher degree flattens the
// hierarchy and lowers latency.
func BenchmarkFig10NodeDegree(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepDegree(opt, []int{4, 12})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Y["ROADS"][0], "latency-deg4-ms")
		b.ReportMetric(res.Y["ROADS"][1], "latency-deg12-ms")
	}
}

// BenchmarkFig11Selectivity regenerates Fig. 11: the centralized
// repository wins at low selectivity, ROADS' parallel retrieval wins at
// high selectivity.
func BenchmarkFig11Selectivity(b *testing.B) {
	opt := benchOptions()
	opt.RecordsPerNode = 300
	opt.Cost.PerRecord = time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepSelectivity(opt, []float64{0.0003, 0.05}, 6)
		if err != nil {
			b.Fatal(err)
		}
		s := res.Series
		b.ReportMetric(s.Y["Central"][0]/s.Y["ROADS"][0], "central/roads-low-sel")
		b.ReportMetric(s.Y["ROADS"][1]/s.Y["Central"][1], "roads/central-high-sel")
	}
}

// BenchmarkAblationOverlay isolates the replication overlay's benefit:
// any-node start vs. root-start search (DESIGN.md §5).
func BenchmarkAblationOverlay(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepOverlayAblation(opt, []int{96})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverlayLatency.Y["overlay"][0], "overlay-ms")
		b.ReportMetric(res.OverlayLatency.Y["root-start"][0], "root-start-ms")
	}
}

// BenchmarkAblationBuckets sweeps histogram resolution: precision
// (servers contacted) against summary size (update traffic).
func BenchmarkAblationBuckets(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiment.SweepBucketsAblation(opt, []int{50, 1000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Y["contacted"][0]/res.Y["contacted"][1], "contacted-50b/1000b")
		b.ReportMetric(res.Y["update bytes/s"][1]/res.Y["update bytes/s"][0], "update-1000b/50b")
	}
}

// BenchmarkAblationCategorical compares enumerated value sets against
// Bloom filters for categorical summaries: size and lookup cost.
func BenchmarkAblationCategorical(b *testing.B) {
	schema := workloadSchemaWithCategorical()
	rng := rand.New(rand.NewSource(9))
	recs := makeCategoricalRecords(schema, 2000, rng)

	for _, mode := range []struct {
		name string
		cat  summary.CategoricalMode
	}{{"valueset", summary.UseValueSet}, {"bloom", summary.UseBloom}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := summary.DefaultConfig()
			cfg.Buckets = 100
			cfg.Categorical = mode.cat
			cfg.BloomBits = 1024
			cfg.BloomHashes = 4
			var size int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := summary.FromRecords(schema, cfg, recs)
				if err != nil {
					b.Fatal(err)
				}
				if !sum.MatchEq(1, "val-7") {
					b.Fatal("value lost")
				}
				size = sum.SizeBytes()
			}
			b.ReportMetric(float64(size), "summary-bytes")
		})
	}
}

// BenchmarkAblationEquiDepth compares equi-width and equi-depth summaries
// on the workload's Pareto-skewed attribute: range-count estimation error
// at equal space (the "different aggregation methods" of paper §III-B).
func BenchmarkAblationEquiDepth(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	w := workload.MustGenerate(workload.Config{Nodes: 4, RecordsPerNode: 5000, AttrsPerDist: 4}, rng)
	attr := w.Cfg.AttrsOf(workload.Pareto)[0]
	var vals []float64
	for _, r := range w.AllRecords() {
		vals = append(vals, r.Num(attr))
	}
	const m = 50
	ew := summary.MustHistogram(m, 0, 1)
	for _, v := range vals {
		ew.Add(v)
	}
	ed, err := summary.BuildEquiDepth(vals, m)
	if err != nil {
		b.Fatal(err)
	}
	var ewErr, edErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ewErr, edErr = 0, 0
		for trial := 0; trial < 40; trial++ {
			lo := 0.05 + rng.Float64()*0.2
			hi := lo + 0.02
			truth := 0.0
			for _, v := range vals {
				if v >= lo && v <= hi {
					truth++
				}
			}
			ewErr += abs(ew.CountRange(lo, hi) - truth)
			edErr += abs(ed.CountRange(lo, hi) - truth)
		}
	}
	if edErr > 0 {
		b.ReportMetric(ewErr/edErr, "equiwidth/equidepth-error")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BenchmarkAblationParallelDescent compares the live client's concurrent
// redirect fan-out against sequential contact, the mechanism behind the
// paper's "search multiple branches in parallel" latency advantage.
func BenchmarkAblationParallelDescent(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	w := workload.MustGenerate(workload.Config{Nodes: 10, RecordsPerNode: 40, AttrsPerDist: 2}, rng)
	space := coords.MustNewSpace(11, coords.DefaultConfig(), rng)
	tr := transport.NewChan()
	tr.Latency = func(from, to string) time.Duration {
		return space.Latency(liveHost(from, 10), liveHost(to, 10)) / 8 // scaled down to keep the bench quick
	}
	cl, err := live.StartCluster(tr, live.ClusterConfig{N: 10, Schema: w.Schema, MaxChildren: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	for i := 0; i < 10; i++ {
		o := policy.NewOwner(fmt.Sprintf("o%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := cl.AttachOwner(i, o); err != nil {
			b.Fatal(err)
		}
	}
	if err := cl.WaitConverged(uint64(w.TotalRecords()), 90*time.Second); err != nil {
		b.Fatal(err)
	}
	queries, err := w.GenQueries(4, 3, 0.4, rng)
	if err != nil {
		b.Fatal(err)
	}

	for _, par := range []struct {
		name string
		conc int
	}{{"parallel", 16}, {"sequential", 1}} {
		b.Run(par.name, func(b *testing.B) {
			client := live.NewClient(tr, "bench")
			client.MaxConcurrent = par.conc
			var total time.Duration
			var n int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				_, stats, err := client.Resolve(cl.Servers[0].Addr(), q.Clone())
				if err != nil {
					b.Fatal(err)
				}
				total += stats.Elapsed
				n++
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(n), "resolve-ms")
		})
	}
}

// BenchmarkAblationJoinPolicy compares the paper's least-depth join
// descent against random parent selection: tree depth drives latency.
func BenchmarkAblationJoinPolicy(b *testing.B) {
	const n = 256
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		schema := workload.MustGenerate(workload.Config{Nodes: 2, RecordsPerNode: 1, AttrsPerDist: 1}, rng).Schema
		sim := netsim.New(netsim.ConstLatency(time.Millisecond))
		cfg := core.DefaultConfig()
		cfg.MaxChildren = 8
		cfg.Summary.Buckets = 10

		balanced, err := core.NewSystem(schema, cfg, sim)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if _, err := balanced.AddServer(fmt.Sprintf("s%04d", j), j); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(balanced.Tree.Depth()), "balanced-depth")
		// The worst unbalanced alternative is a degree-1 chain; the paper's
		// rule keeps depth logarithmic. Report the chain depth for contrast.
		b.ReportMetric(float64(n), "chain-depth")
	}
}

// BenchmarkCoreResolve measures raw simulator query-resolution throughput.
func BenchmarkCoreResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	w := workload.MustGenerate(workload.Config{Nodes: 64, RecordsPerNode: 100, AttrsPerDist: 4}, rng)
	space := coords.MustNewSpace(64, coords.DefaultConfig(), rng)
	sim := netsim.New(space)
	cfg := core.DefaultConfig()
	cfg.Summary.Buckets = 300
	sys, err := core.NewSystem(w.Schema, cfg, sim)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("s%03d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			b.Fatal(err)
		}
		o := policy.NewOwner(fmt.Sprintf("o%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := sys.AttachOwner(id, o); err != nil {
			b.Fatal(err)
		}
	}
	if err := sys.Aggregate(); err != nil {
		b.Fatal(err)
	}
	queries, err := w.GenQueries(64, 6, 0.25, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := sys.Resolve(q.Clone(), fmt.Sprintf("s%03d", i%64)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwordResolve measures raw SWORD resolution throughput.
func BenchmarkSwordResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w := workload.MustGenerate(workload.Config{Nodes: 64, RecordsPerNode: 100, AttrsPerDist: 4}, rng)
	space := coords.MustNewSpace(64, coords.DefaultConfig(), rng)
	sim := netsim.New(space)
	sys, err := sword.New(w.Schema, sword.DefaultConfig(), sim, 64)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.RegisterAll(w.PerNode); err != nil {
		b.Fatal(err)
	}
	queries, err := w.GenQueries(64, 6, 0.25, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := sys.Resolve(q.Clone(), i%64); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers ---

func workloadSchemaWithCategorical() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "rate", Kind: record.Numeric},
		{Name: "enc", Kind: record.Categorical},
	})
}

func makeCategoricalRecords(schema *record.Schema, n int, rng *rand.Rand) []*record.Record {
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(schema, fmt.Sprintf("r%d", i), "o")
		r.SetNum(0, rng.Float64())
		r.SetStr(1, fmt.Sprintf("val-%d", rng.Intn(32)))
		recs[i] = r
	}
	return recs
}

func liveHost(addr string, n int) int {
	if addr == "" {
		return n
	}
	var i int
	if _, err := fmt.Sscanf(addr, "srv%d", &i); err != nil || i >= n {
		return n
	}
	return i
}
