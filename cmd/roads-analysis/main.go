// Command roads-analysis prints the paper's closed-form analysis (§IV):
// the update-overhead equations (1)-(3), the summary-maintenance bound
// (4), and the Table I storage comparison, for the paper's parameters or
// any override.
//
// Usage:
//
//	roads-analysis [-preset paper|sim] [-N owners] [-K records] [-r attrs]
//	               [-m buckets] [-k children] [-L levels] [-tr s] [-ts s]
package main

import (
	"flag"
	"fmt"
	"os"

	"roads/internal/analysis"
)

func main() {
	preset := flag.String("preset", "paper", "parameter preset: paper (Table I setting) or sim (§V setting)")
	n := flag.Float64("N", 0, "number of resource owners (0 = preset)")
	k := flag.Float64("K", 0, "records per owner (0 = preset)")
	r := flag.Float64("r", 0, "attributes per record (0 = preset)")
	m := flag.Float64("m", 0, "histogram buckets (0 = preset)")
	kids := flag.Float64("k", 0, "children per server (0 = preset)")
	l := flag.Float64("L", -1, "hierarchy levels (-1 = preset)")
	tr := flag.Float64("tr", 0, "record update period, seconds (0 = preset)")
	ts := flag.Float64("ts", 0, "summary update period, seconds (0 = preset)")
	flag.Parse()

	var p analysis.Params
	switch *preset {
	case "paper":
		p = analysis.PaperParams()
	case "sim":
		p = analysis.SimParams()
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *n > 0 {
		p.N = *n
	}
	if *k > 0 {
		p.K = *k
	}
	if *r > 0 {
		p.R = *r
	}
	if *m > 0 {
		p.M = *m
	}
	if *kids > 0 {
		p.K2 = *kids
	}
	if *l >= 0 {
		p.L = *l
		p.NServers = 0
	}
	if *tr > 0 {
		p.Tr = *tr
	}
	if *ts > 0 {
		p.Ts = *ts
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(analysis.Report(p))
}
