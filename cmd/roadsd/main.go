// Command roadsd runs one live ROADS server over TCP. Servers form a
// hierarchy by joining a seed; each can host synthetic resource records
// through a co-located owner.
//
// Start a root:
//
//	roadsd -id srv0 -listen 127.0.0.1:7000
//
// Join more servers:
//
//	roadsd -id srv1 -listen 127.0.0.1:7001 -join 127.0.0.1:7000 -records 200
//
// Then query any of them with roadsctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roads/internal/live"
	"roads/internal/obs"
	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/summary"
	"roads/internal/transport"
	"roads/internal/wire"
	"roads/internal/workload"
)

func main() {
	id := flag.String("id", "", "server ID (unique in the federation)")
	listen := flag.String("listen", "127.0.0.1:7000", "listen address")
	join := flag.String("join", "", "seed server address to join (empty = start as root)")
	attrs := flag.Int("attrs", 16, "schema attributes (4 per distribution family)")
	records := flag.Int("records", 0, "synthetic records to host via a co-located owner")
	buckets := flag.Int("buckets", 1000, "histogram buckets per attribute")
	degree := flag.Int("degree", 8, "max children")
	tick := flag.Duration("tick", 2*time.Second, "aggregation/heartbeat period")
	ttlFloor := flag.Duration("replica-ttl-floor", live.DefaultReplicaTTLFloor, "minimum overlay-replica TTL, whatever the tick")
	noDelta := flag.Bool("no-delta", false, "disable change-driven dissemination: rebuild summaries and send full reports/pushes every tick (pre-v3 wire behaviour)")
	antiEntropy := flag.Int("anti-entropy-every", live.DefaultAntiEntropyEvery, "send full state every Nth aggregation tick even to up-to-date peers (ignored with -no-delta)")
	noEpoch := flag.Bool("no-epoch", false, "run as a pre-epoch peer: no membership-epoch stamping, fencing, or split-brain root probing (pre-v4 wire behaviour)")
	storeShards := flag.Int("store-shards", 0, "store shard count: records hash to shards, each maintaining its own indexes and partial summary (0 = library default)")
	cacheBytes := flag.Int64("result-cache-bytes", 0, "query result cache LRU byte budget (0 = library default, negative = disable the cache)")
	admissionRate := flag.Float64("admission-rate", 0, "per-requester admission token-bucket refill rate in queries/sec; over-budget wire-v5 requesters are shed to coarse summary-only answers (0 = admission off)")
	admissionBurst := flag.Int("admission-burst", 0, "per-requester admission token-bucket burst capacity (0 = derive from -admission-rate)")
	noAdaptive := flag.Bool("no-adaptive", false, "disable feedback-driven summary resolution: keep the static summary geometry and never flag wire-v6 capability (pre-v6 wire behaviour)")
	summaryBudget := flag.Int("summary-budget", 0, "summary byte budget the adaptive planner reallocates within (0 = unbounded)")
	replanEvery := flag.Int("replan-every", 0, "aggregation rounds between adaptive resolution replans (0 = library default)")
	condenseAbove := flag.Int("condense-above", 0, "collapse categorical value sets larger than this into dotted-prefix wildcards (0 = off)")
	var mergeSeeds stringsFlag
	flag.Var(&mergeSeeds, "merge-seed", "well-known address this server probes for a foreign root while it is a root itself, to detect and merge a split brain (repeatable; the -join seed is remembered automatically)")
	seed := flag.Int64("seed", 0, "workload seed (0 = derive from ID)")
	load := flag.String("load", "", "JSON-lines records file to host (overrides -records)")
	schemaFile := flag.String("schema", "", "schema JSON file (required with -load; default synthetic aN schema otherwise)")
	gob := flag.Bool("gob", false, "send outgoing calls in the legacy gob wire codec (for peers that predate the binary codec; incoming calls are always answered in the codec they arrive in)")
	httpAddr := flag.String("http", "", "observability sidecar listen address, e.g. :9090 (serves /metrics, /statusz, /debug/pprof/; empty = disabled; bind to a trusted interface — pprof exposes profiles)")
	flag.Parse()

	if *id == "" {
		fmt.Fprintln(os.Stderr, "roadsd: -id is required")
		os.Exit(2)
	}
	if *attrs%4 != 0 || *attrs <= 0 {
		fmt.Fprintln(os.Stderr, "roadsd: -attrs must be a positive multiple of 4")
		os.Exit(2)
	}

	var schema *record.Schema
	var hosted []*record.Record
	if *load != "" {
		if *schemaFile == "" {
			fmt.Fprintln(os.Stderr, "roadsd: -load requires -schema")
			os.Exit(2)
		}
		schemaData, err := os.ReadFile(*schemaFile)
		if err != nil {
			log.Fatal(err)
		}
		schema, err = record.UnmarshalSchema(schemaData)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		hosted, err = record.ReadJSON(f, schema)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		wcfg := workload.Config{Nodes: 1, RecordsPerNode: max(1, *records), AttrsPerDist: *attrs / 4}
		rng := rand.New(rand.NewSource(seedFor(*seed, *id)))
		w, err := workload.Generate(wcfg, rng)
		if err != nil {
			log.Fatal(err)
		}
		schema = w.Schema
		if *records > 0 {
			hosted = w.PerNode[0]
		}
	}

	cfg := live.DefaultConfig(*id, *listen, schema)
	cfg.Summary = summary.Config{Buckets: *buckets, Min: 0, Max: 1, Categorical: summary.UseValueSet, CondenseAbove: *condenseAbove}
	cfg.MaxChildren = *degree
	cfg.AggregateEvery = *tick
	cfg.HeartbeatEvery = *tick
	cfg.ReplicaTTLFloor = *ttlFloor
	cfg.DisableDeltaDissemination = *noDelta
	cfg.AntiEntropyEvery = *antiEntropy
	cfg.DisableMembershipEpoch = *noEpoch
	cfg.MergeSeeds = mergeSeeds
	cfg.StoreShards = *storeShards
	cfg.ResultCacheBytes = *cacheBytes
	cfg.AdmissionRate = *admissionRate
	cfg.AdmissionBurst = *admissionBurst
	cfg.DisableAdaptiveSummaries = *noAdaptive
	cfg.SummaryByteBudget = *summaryBudget
	cfg.ReplanEvery = *replanEvery

	reg := obs.NewRegistry()
	tr := transport.NewTCP()
	tr.UseGob = *gob
	tr.RegisterMetrics(reg)
	wire.RegisterMetrics(reg)
	cfg.Metrics = reg
	srv, err := live.NewServer(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	if *httpAddr != "" {
		h := obs.Handler(reg, func() any { return srv.StatusSnapshot() })
		hsrv := &http.Server{Addr: *httpAddr, Handler: h}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("roadsd %s: http sidecar: %v", *id, err)
			}
		}()
		log.Printf("roadsd %s: observability sidecar on %s (/metrics /statusz /debug/pprof/)", *id, *httpAddr)
	}
	if len(hosted) > 0 {
		owner := policy.NewOwner(*id+"-owner", schema, nil)
		owner.SetRecords(hosted)
		if err := srv.AttachOwner(owner); err != nil {
			log.Fatal(err)
		}
		log.Printf("roadsd %s: hosting %d records", *id, len(hosted))
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("roadsd %s: listening on %s", *id, *listen)
	if *join != "" {
		if err := srv.Join(*join); err != nil {
			log.Fatalf("roadsd %s: join: %v", *id, err)
		}
		log.Printf("roadsd %s: joined hierarchy via %s (parent %s)", *id, *join, srv.ParentID())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("roadsd %s: leaving", *id)
	srv.Stop()
	log.Printf("roadsd %s: transport %v", *id, tr.Stats())
	_ = tr.Close()
}

// stringsFlag collects a repeatable flag's values.
type stringsFlag []string

func (f *stringsFlag) String() string { return fmt.Sprint([]string(*f)) }

func (f *stringsFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func seedFor(seed int64, id string) int64 {
	if seed != 0 {
		return seed
	}
	var h int64 = 1469598103934665603
	for _, c := range id {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
