// Command roads-load runs the topology-scale load harness
// (internal/loadgen): it builds an N-server live hierarchy on the
// in-process transport, drives it with trace-shaped queries under an
// optional churn schedule, and reports latency percentiles, coverage,
// false-positive descent rate and transport bytes per node per second.
//
// The human-readable report goes to stderr. Stdout carries one
// `go test -bench`-format line so the run archives through cmd/benchjson:
//
//	roads-load -n 1000 -churn-kill 2s | benchjson -o BENCH_pr6.json
//
// `make bench-load` wires exactly that pipeline (see EXPERIMENTS.md for
// the knobs and the archived baselines).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"roads/internal/loadgen"
	"roads/internal/obs"
)

func main() {
	var cfg loadgen.Config
	flag.IntVar(&cfg.Servers, "n", 1000, "number of live servers")
	flag.IntVar(&cfg.FanOut, "fanout", 8, "max children per server")
	flag.IntVar(&cfg.MinDepth, "mindepth", 0, "force the hierarchy at least this deep (spine)")
	flag.IntVar(&cfg.OwnerEvery, "owner-every", 4, "attach a resource owner at every k-th server")
	flag.IntVar(&cfg.RecordsPerOwner, "records", 50, "records per owner")
	flag.IntVar(&cfg.AttrsPerDist, "attrs", 2, "attributes per distribution family (4 families)")
	flag.IntVar(&cfg.SummaryBuckets, "buckets", 32, "summary histogram buckets per attribute")
	flag.IntVar(&cfg.QueryDims, "dims", 3, "query dimensions")
	flag.Float64Var(&cfg.QueryRange, "range", 0.25, "per-dimension query range length")
	flag.Float64Var(&cfg.QuerySkew, "query-skew", 0, "fraction of queries made hot: narrow range on one window attribute plus a categorical Eq (0: off)")
	flag.IntVar(&cfg.CategoricalAttrs, "cat-attrs", 0, "categorical attributes appended to the workload (0: none)")
	flag.IntVar(&cfg.CategoricalVocab, "cat-vocab", 0, "categorical vocabulary size (0: workload default 16)")
	flag.IntVar(&cfg.CategoricalDepth, "cat-depth", 0, "dotted-path segments per categorical value (<=1: flat tokens)")
	flag.BoolVar(&cfg.SummaryBloom, "summary-bloom", false, "summarize categorical attributes with Bloom filters instead of exact value sets")
	flag.IntVar(&cfg.CondenseAbove, "condense-above", 0, "collapse categorical value sets larger than this into dotted-prefix wildcards (0: off)")
	flag.BoolVar(&cfg.DisableAdaptive, "no-adaptive", false, "disable feedback-driven summary resolution (static baseline)")
	flag.IntVar(&cfg.SummaryByteBudget, "summary-budget", 0, "per-server summary byte budget the adaptive planner honours (0: unbounded)")
	flag.IntVar(&cfg.ReplanEvery, "replan-every", 0, "aggregation rounds between adaptive replans (0: library default)")
	flag.IntVar(&cfg.Queries, "queries", 400, "queries to issue")
	flag.IntVar(&cfg.Clients, "clients", 4, "concurrent query clients")
	flag.DurationVar(&cfg.QueryTimeout, "query-timeout", 15*time.Second, "per-query resolve timeout")
	flag.DurationVar(&cfg.MinDrive, "drive-min", 0, "keep the drive phase alive at least this long (wrap the query list)")
	flag.DurationVar(&cfg.ConvergeTimeout, "converge-timeout", 5*time.Minute, "post-build convergence wait")
	flag.DurationVar(&cfg.Tick, "tick", 250*time.Millisecond, "server aggregation/heartbeat period")
	flag.IntVar(&cfg.Parallelism, "par", 0, "cluster build worker pool (0: library default)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload/schedule seed")
	flag.DurationVar(&cfg.Churn.RecordEvery, "churn-records", 0, "interval between owner record-swap events (0: off)")
	flag.IntVar(&cfg.Churn.RecordOwners, "churn-owners", 1, "owners touched per record-swap event")
	flag.Float64Var(&cfg.Churn.RecordFraction, "churn-frac", 0.2, "fraction of a touched owner's records replaced")
	flag.DurationVar(&cfg.Churn.WriteEvery, "churn-writes", 0, "interval between owner add/remove write events (0: off)")
	flag.IntVar(&cfg.Churn.WriteOwners, "churn-write-owners", 1, "owners touched per write event")
	flag.Float64Var(&cfg.Churn.WriteFraction, "churn-write-frac", 0.05, "fraction of a touched owner's records removed and re-added per write event")
	flag.DurationVar(&cfg.Churn.KillEvery, "churn-kill", 0, "interval between server crash-kills (0: off)")
	flag.DurationVar(&cfg.Churn.ReviveAfter, "churn-revive", 2*time.Second, "downtime before a killed server rejoins")
	flag.DurationVar(&cfg.Churn.PartitionEvery, "churn-partition", 0, "interval between subtree network partitions (0: off)")
	flag.Float64Var(&cfg.Churn.PartitionFraction, "churn-partition-frac", 0.3, "target fraction of the tree each partition severs")
	flag.DurationVar(&cfg.Churn.HealAfter, "churn-heal", 2*time.Second, "how long a partition stays severed before healing")
	flag.Float64Var(&cfg.RepeatFraction, "repeat-frac", 0, "probability a drive client re-issues an already-issued query (repeat-query cache workload)")
	flag.BoolVar(&cfg.ClientCache, "client-cache", false, "enable the drive clients' fingerprint-validated record caches")
	clientPrio := flag.Int("client-priority", 0, "wire priority class the drive clients claim (0 normal, 1 low, 2 high)")
	flag.BoolVar(&cfg.Untraced, "untraced", false, "disable per-query tracing (traced queries bypass the server result cache; FP-descent stats report zero)")
	flag.IntVar(&cfg.HotClients, "hot-clients", 0, "extra low-priority hot-tenant clients hammering a small query set for the whole drive (0: off)")
	flag.Int64Var(&cfg.ResultCacheBytes, "result-cache-bytes", 0, "per-server result cache LRU byte budget (0: library default, negative: disabled)")
	flag.Float64Var(&cfg.AdmissionRate, "admission-rate", 0, "per-requester admission token refill rate in queries/sec on every server (0: admission off)")
	flag.IntVar(&cfg.AdmissionBurst, "admission-burst", 0, "per-requester admission token burst (0: derived from rate)")
	promOut := flag.String("metrics-out", "", "also write the harness metrics registry (Prometheus text) to this file")
	flag.Parse()
	cfg.ClientPriority = uint8(*clientPrio)

	reg := obs.NewRegistry()
	cfg.Metrics = loadgen.RegisterMetrics(reg)

	fmt.Fprintf(os.Stderr, "roads-load: %d servers, fan-out %d, min depth %d, %d queries, churn(records=%v kill=%v partition=%v)\n",
		cfg.Servers, cfg.FanOut, cfg.MinDepth, cfg.Queries, cfg.Churn.RecordEvery, cfg.Churn.KillEvery, cfg.Churn.PartitionEvery)
	res, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roads-load:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "built %d servers (depth %d) in %.2fs, converged %d records in %.2fs\n",
		res.Servers, res.Depth, res.BuildSeconds, res.Records, res.ConvergeSeconds)
	fmt.Fprintf(os.Stderr, "drove %d queries in %.2fs: %d failed, latency mean %v p50 %v p95 %v p99 %v\n",
		res.Queries, res.DriveSeconds, res.Failures, res.LatencyMean, res.LatencyP50, res.LatencyP95, res.LatencyP99)
	fmt.Fprintf(os.Stderr, "coverage mean %.4f min %.4f, fp descents %d/%d (%.4f), %.1f bytes/node/s\n",
		res.CoverageMean, res.CoverageMin, res.FPDescents, res.RedirectHops, res.FPDescentRate, res.BytesPerNodePerSec)
	if len(res.FPDescentsByDepth) > 0 || res.SummaryReplans > 0 || res.ServerFPDescents > 0 {
		fmt.Fprintf(os.Stderr, "fp by depth %v; adaptive: %d replans, %d server-side fp descents, plan deviation %d\n",
			res.FPDescentsByDepth, res.SummaryReplans, res.ServerFPDescents, res.PlanDeviationSum)
	}
	if res.RecordChurnEvents > 0 || res.Kills > 0 {
		fmt.Fprintf(os.Stderr, "churn: %d record events (%d records), %d kills, %d revives\n",
			res.RecordChurnEvents, res.RecordsReplaced, res.Kills, res.Revives)
	}
	if res.WriteChurnEvents > 0 {
		fmt.Fprintf(os.Stderr, "write churn: %d events (%d records removed+added), owner shard rebuilds %d, partial merges %d\n",
			res.WriteChurnEvents, res.RecordsWritten, res.OwnerShardRebuilds, res.OwnerPartialMerges)
	}
	if res.RefreshTicks > 0 {
		fmt.Fprintf(os.Stderr, "refresh: %d ticks, %d skipped (%.4f skip rate), %.2fs busy CPU across servers\n",
			res.RefreshTicks, res.RefreshSkipped, res.RefreshSkipRate, res.RefreshBusySeconds)
	}
	if res.Partitions > 0 {
		fmt.Fprintf(os.Stderr, "partitions: %d injected, %d healed, split-brain %.2fs, re-converged in %.2fs\n",
			res.Partitions, res.PartitionsHealed, res.SplitBrainSeconds, res.HealSeconds)
		fmt.Fprintf(os.Stderr, "membership: final roots %d, final coverage %.4f, %d merges, %d epoch regressions\n",
			res.FinalRoots, res.FinalCoverage, res.MembershipMerges, res.EpochRegressions)
	}
	if res.ServerCacheHits+res.ServerCacheMisses > 0 {
		fmt.Fprintf(os.Stderr, "result cache: %.4f hit rate (%d hits / %d misses), %d invalidations, %d evictions, %d client cache hits\n",
			res.ServerCacheHitRate, res.ServerCacheHits, res.ServerCacheMisses,
			res.ServerCacheInvalidations, res.ServerCacheEvictions, res.ClientCacheHits)
	}
	if res.HotQueries > 0 || res.AdmissionAdmitted+res.AdmissionShed+res.AdmissionRejected > 0 {
		fmt.Fprintf(os.Stderr, "admission: %d admitted, %d shed, %d rejected; hot tenant %d queries (%d coarse, %d failed, p99 %v)\n",
			res.AdmissionAdmitted, res.AdmissionShed, res.AdmissionRejected,
			res.HotQueries, res.HotCoarse, res.HotFailures, res.HotLatencyP99)
	}

	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "roads-load: writing metrics:", err)
			os.Exit(1)
		}
	}

	// Benchmark-format line on stdout, parseable by cmd/benchjson. The
	// iteration count is the successful-query count; ns/op is the mean
	// end-to-end latency so bench-compare diffs it across archives.
	name := fmt.Sprintf("BenchmarkRoadsLoad/n=%d/fanout=%d/depth=%d", res.Servers, res.FanOut, res.Depth)
	if cfg.Churn.RecordEvery > 0 || cfg.Churn.WriteEvery > 0 || cfg.Churn.KillEvery > 0 {
		name += "/churn"
	}
	if cfg.Churn.PartitionEvery > 0 {
		name += "/partition"
	}
	if cfg.RepeatFraction > 0 || cfg.ClientCache {
		name += "/cache"
	}
	if cfg.HotClients > 0 {
		name += "/hot"
	}
	if cfg.AdmissionRate > 0 {
		name += "/admission"
	}
	if cfg.QuerySkew > 0 {
		name += "/skew"
	}
	if cfg.DisableAdaptive {
		name += "/static"
	} else if cfg.QuerySkew > 0 || cfg.SummaryByteBudget > 0 {
		name += "/adaptive"
	}
	fmt.Printf("goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
	fmt.Printf("%s\t%d\t%d ns/op\t%d p50-ns/op\t%d p95-ns/op\t%d p99-ns/op\t%.4f coverage\t%.4f fp-rate\t%.1f node-B/s\t%.2f converge-s\t%.2f build-s",
		name, res.Queries-res.Failures,
		res.LatencyMean.Nanoseconds(), res.LatencyP50.Nanoseconds(),
		res.LatencyP95.Nanoseconds(), res.LatencyP99.Nanoseconds(),
		res.CoverageMean, res.FPDescentRate, res.BytesPerNodePerSec,
		res.ConvergeSeconds, res.BuildSeconds)
	if cfg.Churn.PartitionEvery > 0 {
		fmt.Printf("\t%d partitions-healed\t%.2f split-brain-s\t%.2f heal-s\t%d final-roots\t%d epoch-regressions",
			res.PartitionsHealed, res.SplitBrainSeconds, res.HealSeconds, res.FinalRoots, res.EpochRegressions)
	}
	if cfg.Churn.WriteEvery > 0 {
		fmt.Printf("\t%.4f refresh-skip-rate\t%.2f refresh-busy-s\t%d shard-rebuilds\t%d partial-merges",
			res.RefreshSkipRate, res.RefreshBusySeconds, res.OwnerShardRebuilds, res.OwnerPartialMerges)
	}
	if cfg.RepeatFraction > 0 || cfg.ClientCache || cfg.AdmissionRate > 0 || cfg.HotClients > 0 {
		fmt.Printf("\t%.4f cache-hit-rate\t%d client-cache-hits\t%d admission-shed\t%d hot-queries\t%d hot-coarse\t%d hot-failures",
			res.ServerCacheHitRate, res.ClientCacheHits, res.AdmissionShed,
			res.HotQueries, res.HotCoarse, res.HotFailures)
	}
	if cfg.QuerySkew > 0 || !cfg.DisableAdaptive {
		// Deep false positives (chain length >= 2) are the expensive ones;
		// surface them plus the adaptation counters so bench-compare can
		// diff adaptive against static archives.
		deep := 0
		for d, n := range res.FPDescentsByDepth {
			if d >= 2 {
				deep += n
			}
		}
		fmt.Printf("\t%d fp-descents\t%d fp-deep\t%d replans\t%d plan-deviation",
			res.FPDescents, deep, res.SummaryReplans, res.PlanDeviationSum)
	}
	fmt.Println()
}
