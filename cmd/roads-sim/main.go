// Command roads-sim regenerates the paper's simulation figures (3-10),
// the prototype-benchmark figure (11), and the ablation studies, printing
// each series as an aligned table.
//
// Usage:
//
//	roads-sim -fig 3            # one figure (3,4,5 share a sweep; so do 6,7)
//	roads-sim -fig all          # everything
//	roads-sim -fig ablation     # overlay + bucket ablations
//	roads-sim -runs 3 -queries 100 -nodes 320   # scale knobs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"roads/internal/experiment"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3|4|5|6|7|8|9|10|11|ablation|churn|all")
	runs := flag.Int("runs", 10, "independent runs to average (paper: 10)")
	queries := flag.Int("queries", 500, "queries per run (paper: 500)")
	nodes := flag.Int("nodes", 320, "default node count (paper: 320)")
	records := flag.Int("records", 500, "records per node (paper: 500)")
	buckets := flag.Int("buckets", 1000, "histogram buckets (paper: 1000)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	windowLen := flag.Float64("windowlen", 0, "window-distribution length override (0 = paper's 0.5)")
	quick := flag.Bool("quick", false, "reduced-scale smoke profile")
	format := flag.String("format", "text", "output format: text|json|csv|plot")
	flag.Parse()
	if *format != "text" && *format != "json" && *format != "csv" && *format != "plot" {
		fmt.Fprintf(os.Stderr, "unknown -format %q\n", *format)
		os.Exit(2)
	}
	outputFormat = *format

	opt := experiment.Default()
	if *quick {
		opt = experiment.Quick()
	}
	opt.Runs = *runs
	opt.Queries = *queries
	opt.Nodes = *nodes
	opt.RecordsPerNode = *records
	opt.Buckets = *buckets
	opt.Seed = *seed
	opt.WindowLen = *windowLen
	if *quick {
		q := experiment.Quick()
		opt.Runs, opt.Queries = q.Runs, q.Queries
		opt.Nodes, opt.RecordsPerNode, opt.Buckets = q.Nodes, q.RecordsPerNode, q.Buckets
	}

	start := time.Now()
	if err := run(*fig, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if outputFormat == "text" {
		fmt.Printf("\n(total %v)\n", time.Since(start).Round(time.Second))
	}
}

// outputFormat selects how emit renders each series.
var outputFormat = "text"

// emit prints one series in the selected format.
func emit(s *experiment.Series) error {
	switch outputFormat {
	case "json":
		data, err := json.Marshal(s)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case "csv":
		out, err := s.CSV()
		if err != nil {
			return err
		}
		fmt.Printf("# %s\n%s\n", s.Name, out)
	case "plot":
		fmt.Println(s.Plot(64, 16))
	default:
		fmt.Println(s.Format())
	}
	return nil
}

func run(fig string, opt experiment.Options) error {
	wantNodes := fig == "3" || fig == "4" || fig == "5" || fig == "all"
	wantDims := fig == "6" || fig == "7" || fig == "all"

	if wantNodes {
		res, err := experiment.SweepNodes(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(res.Fig3Latency); err != nil {
			return err
		}
		if err := emit(res.Fig4Update); err != nil {
			return err
		}
		if err := emit(res.Fig5Query); err != nil {
			return err
		}
	}
	if wantDims {
		res, err := experiment.SweepDims(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(res.Fig6Latency); err != nil {
			return err
		}
		if err := emit(res.Fig7Query); err != nil {
			return err
		}
	}
	if fig == "8" || fig == "all" {
		s, err := experiment.SweepRecords(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(s); err != nil {
			return err
		}
	}
	if fig == "9" || fig == "all" {
		s, err := experiment.SweepOverlap(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(s); err != nil {
			return err
		}
	}
	if fig == "10" || fig == "all" {
		s, err := experiment.SweepDegree(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(s); err != nil {
			return err
		}
	}
	if fig == "11" || fig == "all" {
		res, err := experiment.SweepSelectivity(opt, nil, 0)
		if err != nil {
			return err
		}
		if err := emit(res.Series); err != nil {
			return err
		}
		fmt.Printf("measured selectivities: %v\n\n", res.MeasuredSelectivity)
	}
	if fig == "churn" || fig == "all" {
		res, err := experiment.SweepChurn(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(res.Series); err != nil {
			return err
		}
	}
	if fig == "ablation" || fig == "all" {
		ab, err := experiment.SweepOverlayAblation(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(ab.OverlayLatency); err != nil {
			return err
		}
		if err := emit(ab.RootLoad); err != nil {
			return err
		}
		bk, err := experiment.SweepBucketsAblation(opt, nil)
		if err != nil {
			return err
		}
		if err := emit(bk); err != nil {
			return err
		}
	}
	switch fig {
	case "3", "4", "5", "6", "7", "8", "9", "10", "11", "ablation", "churn", "all":
		return nil
	}
	return fmt.Errorf("unknown -fig %q", fig)
}
