// Command docscheck guards the repository's documentation in two ways:
//
//  1. Every relative markdown link in the repo's *.md files must point at a
//     file that exists (external http(s)/mailto links are skipped — CI has
//     no network).
//  2. Every metric name the live stack registers must appear in
//     OPERATIONS.md, so the operator catalog can never silently fall
//     behind the code. The check builds the registry exactly the way
//     roadsd does — transport + wire codec + live server, plus the load
//     harness counters — and greps the handbook for each resulting name.
//
// Run via `make docs-check` (part of the tier1 gate). Exit status is
// non-zero when any check fails; every failure is listed, not just the
// first.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"roads/internal/live"
	"roads/internal/loadgen"
	"roads/internal/obs"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var failures []string

	mdFiles, err := markdownFiles(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, f := range mdFiles {
		failures = append(failures, checkLinks(root, f)...)
	}
	failures = append(failures, checkMetricsCatalog(root)...)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "docscheck:", f)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d failure(s)\n", len(failures))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d markdown files OK, metrics catalog complete\n", len(mdFiles))
}

// markdownFiles lists every tracked *.md file under root, skipping
// dot-directories and testdata.
func markdownFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repo and not checked.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link target in file exists on disk
// (anchors are stripped; pure-anchor links within a file are skipped).
func checkLinks(root, file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	var failures []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(file), target)
		if _, err := os.Stat(resolved); err != nil {
			failures = append(failures, fmt.Sprintf("%s: broken link %q (%s does not exist)", file, m[1], resolved))
		}
	}
	return failures
}

// checkMetricsCatalog registers every metric the way roadsd does and
// verifies OPERATIONS.md names each of them.
func checkMetricsCatalog(root string) []string {
	reg := obs.NewRegistry()
	tr := transport.NewChan()
	tr.RegisterMetrics(reg)
	wire.RegisterMetrics(reg)
	loadgen.RegisterMetrics(reg)
	cfg := live.DefaultConfig("docscheck", "docscheck-addr", record.DefaultSchema(2))
	cfg.Metrics = reg
	if _, err := live.NewServer(cfg, tr); err != nil {
		return []string{fmt.Sprintf("building reference server: %v", err)}
	}

	opsPath := filepath.Join(root, "OPERATIONS.md")
	data, err := os.ReadFile(opsPath)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (the metrics catalog lives there)", opsPath, err)}
	}
	ops := string(data)
	var failures []string
	for _, name := range reg.Names() {
		if !strings.Contains(ops, name) {
			failures = append(failures, fmt.Sprintf("OPERATIONS.md: registered metric %q is not documented", name))
		}
	}
	return failures
}
