// Command docscheck guards the repository's documentation in three ways:
//
//  1. Every relative markdown link in the repo's *.md files must point at a
//     file that exists (external http(s)/mailto links are skipped — CI has
//     no network).
//  2. Every metric name the live stack registers must appear in
//     OPERATIONS.md, so the operator catalog can never silently fall
//     behind the code. The check builds the registry exactly the way
//     roadsd does — transport + wire codec + live server, plus the load
//     harness counters — and greps the handbook for each resulting name.
//  3. The roadsd and roadsctl flag tables in OPERATIONS.md must match the
//     flags those commands actually register: the check go/ast-parses each
//     command's source for flag.* registrations and fails on drift in
//     either direction — a documented flag the code no longer defines, or
//     a defined flag the table does not document.
//
// Run via `make docs-check` (part of the tier1 gate). Exit status is
// non-zero when any check fails; every failure is listed, not just the
// first.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"roads/internal/live"
	"roads/internal/loadgen"
	"roads/internal/obs"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var failures []string

	mdFiles, err := markdownFiles(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, f := range mdFiles {
		failures = append(failures, checkLinks(root, f)...)
	}
	failures = append(failures, checkMetricsCatalog(root)...)
	failures = append(failures, checkFlagTables(root)...)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "docscheck:", f)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d failure(s)\n", len(failures))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d markdown files OK, metrics catalog complete, flag tables match\n", len(mdFiles))
}

// markdownFiles lists every tracked *.md file under root, skipping
// dot-directories and testdata.
func markdownFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repo and not checked.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link target in file exists on disk
// (anchors are stripped; pure-anchor links within a file are skipped).
func checkLinks(root, file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	var failures []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(file), target)
		if _, err := os.Stat(resolved); err != nil {
			failures = append(failures, fmt.Sprintf("%s: broken link %q (%s does not exist)", file, m[1], resolved))
		}
	}
	return failures
}

// checkMetricsCatalog registers every metric the way roadsd does and
// verifies OPERATIONS.md names each of them.
func checkMetricsCatalog(root string) []string {
	reg := obs.NewRegistry()
	tr := transport.NewChan()
	tr.RegisterMetrics(reg)
	wire.RegisterMetrics(reg)
	loadgen.RegisterMetrics(reg)
	cfg := live.DefaultConfig("docscheck", "docscheck-addr", record.DefaultSchema(2))
	cfg.Metrics = reg
	if _, err := live.NewServer(cfg, tr); err != nil {
		return []string{fmt.Sprintf("building reference server: %v", err)}
	}

	opsPath := filepath.Join(root, "OPERATIONS.md")
	data, err := os.ReadFile(opsPath)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (the metrics catalog lives there)", opsPath, err)}
	}
	ops := string(data)
	var failures []string
	for _, name := range reg.Names() {
		if !strings.Contains(ops, name) {
			failures = append(failures, fmt.Sprintf("OPERATIONS.md: registered metric %q is not documented", name))
		}
	}
	return failures
}

// flagTableCommands maps the OPERATIONS.md section heading that carries a
// command's flag table to the command source directory whose flag
// registrations the table must mirror.
var flagTableCommands = []struct {
	heading string // "## <heading>" prefix in OPERATIONS.md
	dir     string // command source directory under root
}{
	{"## roadsd", "cmd/roadsd"},
	{"## roadsctl", "cmd/roadsctl"},
}

// flagRowRe matches a flag table row: a table line whose first cell is a
// backticked flag name, e.g. "| `-tick` | `2s` | ... |".
var flagRowRe = regexp.MustCompile("^\\|\\s*`(-[a-zA-Z0-9-]+)`")

// checkFlagTables verifies, in both directions, that the per-command flag
// tables in OPERATIONS.md and the flag.* registrations in the command
// sources name the same flag sets.
func checkFlagTables(root string) []string {
	data, err := os.ReadFile(filepath.Join(root, "OPERATIONS.md"))
	if err != nil {
		return []string{fmt.Sprintf("OPERATIONS.md: %v (the flag tables live there)", err)}
	}
	// Split the handbook into "## " sections and collect the flag rows of
	// each command's section.
	documented := make(map[string]map[string]bool)
	section := ""
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			section = ""
			for _, c := range flagTableCommands {
				if strings.HasPrefix(line, c.heading) {
					section = c.dir
				}
			}
			continue
		}
		if section == "" {
			continue
		}
		if m := flagRowRe.FindStringSubmatch(line); m != nil {
			if documented[section] == nil {
				documented[section] = make(map[string]bool)
			}
			documented[section][strings.TrimPrefix(m[1], "-")] = true
		}
	}

	var failures []string
	for _, c := range flagTableCommands {
		defined, err := definedFlags(filepath.Join(root, c.dir))
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", c.dir, err))
			continue
		}
		if len(defined) == 0 {
			failures = append(failures, fmt.Sprintf("%s: no flag registrations found — the docscheck flag scan is broken", c.dir))
			continue
		}
		doc := documented[c.dir]
		if len(doc) == 0 {
			failures = append(failures, fmt.Sprintf("OPERATIONS.md: no flag table found under the %q section", c.heading))
			continue
		}
		var names []string
		for name := range defined {
			names = append(names, name)
		}
		for name := range doc {
			if !defined[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			switch {
			case !doc[name]:
				failures = append(failures, fmt.Sprintf(
					"OPERATIONS.md: %s defines flag -%s but the %q flag table does not document it", c.dir, name, c.heading))
			case !defined[name]:
				failures = append(failures, fmt.Sprintf(
					"OPERATIONS.md: the %q flag table documents -%s but %s no longer defines it", c.heading, name, c.dir))
			}
		}
	}
	return failures
}

// definedFlags go/ast-parses every .go file in dir and returns the names
// registered through the flag package: flag.String/Bool/... (name is the
// first argument) and flag.StringVar/.../flag.Var (name is the second).
func definedFlags(dir string) (map[string]bool, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		return nil, err
	}
	flags := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv, ok := sel.X.(*ast.Ident)
				if !ok || recv.Name != "flag" {
					return true
				}
				nameArg := -1
				switch sel.Sel.Name {
				case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
					nameArg = 0
				case "StringVar", "BoolVar", "IntVar", "Int64Var", "UintVar", "Uint64Var", "Float64Var", "DurationVar", "Var", "Func":
					nameArg = 1
				default:
					return true
				}
				if nameArg >= len(call.Args) {
					return true
				}
				lit, ok := call.Args[nameArg].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
					flags[name] = true
				}
				return true
			})
		}
	}
	return flags, nil
}
