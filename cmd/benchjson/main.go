// benchjson turns `go test -bench` output into a machine-readable JSON
// file, so benchmark runs can be archived next to the experiments
// (BENCH_pr3.json) and compared across commits without eyeballing text.
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -compare BENCH_old.json BENCH_new.json
//
// The compare mode prints one line per benchmark present in both files
// with the ns/op and allocs/op movement, and flags regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the name, the iteration count, and
// every reported "value unit" metric pair (ns/op, B/op, allocs/op, plus
// any b.ReportMetric extras like rpcs/op).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the archived form: the run environment plus every result.
type File struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkgs    []string `json:"packages,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	compare := flag.Bool("compare", false, "compare two benchjson files: benchjson -compare old.json new.json")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	f, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(f.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output. Benchmark lines look like
//
//	BenchmarkName/sub-8   319969   3469 ns/op   5616 B/op   15 allocs/op
//
// and header lines (goos:, goarch:, cpu:, pkg:) describe the run.
func parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			f.Pkgs = append(f.Pkgs, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				f.Results = append(f.Results, res)
			}
		}
	}
	return f, sc.Err()
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// name, iterations, then (value, unit) pairs: at least one pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(f.Results))
	for _, r := range f.Results {
		m[r.Name] = r
	}
	return m, nil
}

// compareFiles prints the ns/op and allocs/op movement for every
// benchmark present in both files, newest relative to oldest: a ratio
// below 1.00x is an improvement.
func compareFiles(oldPath, newPath string) error {
	oldR, err := load(oldPath)
	if err != nil {
		return err
	}
	newR, err := load(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(newR))
	for name := range newR {
		if _, ok := oldR[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	sort.Strings(names)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-60s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs")
	for _, name := range names {
		o, n := oldR[name], newR[name]
		ons, nns := o.Metrics["ns/op"], n.Metrics["ns/op"]
		ratio := "n/a"
		if ons > 0 {
			ratio = fmt.Sprintf("%.2fx", nns/ons)
		}
		allocs := "n/a"
		oa, oka := o.Metrics["allocs/op"]
		na, okn := n.Metrics["allocs/op"]
		if oka && okn {
			allocs = fmt.Sprintf("%g→%g", oa, na)
		}
		fmt.Fprintf(w, "%-60s %14.1f %14.1f %8s %10s\n", name, ons, nns, ratio, allocs)
	}
	return nil
}
