// Command roads-proto benchmarks the live ROADS prototype end to end, the
// analogue of the paper's testbed experiment (Fig. 11): it starts a real
// in-process cluster (every message gob-encoded through the transport,
// optionally with injected wide-area latency), loads synthetic records,
// and measures the wall-clock total response time of selectivity-grouped
// queries against ROADS and against a centralized single-server setup.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"roads/internal/coords"
	"roads/internal/live"
	"roads/internal/policy"
	"roads/internal/stats"
	"roads/internal/summary"
	"roads/internal/transport"
	"roads/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 16, "cluster size")
	records := flag.Int("records", 2000, "records per node")
	perGroup := flag.Int("queries", 30, "queries per selectivity group")
	buckets := flag.Int("buckets", 500, "histogram buckets")
	seed := flag.Int64("seed", 1, "RNG seed")
	netLat := flag.Bool("wan", true, "inject synthesized wide-area latency")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	wcfg := workload.Config{Nodes: *nodes, RecordsPerNode: *records, AttrsPerDist: 4}
	w, err := workload.Generate(wcfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	total := w.TotalRecords()
	fmt.Printf("prototype benchmark: %d nodes x %d records = %d total\n", *nodes, *records, total)

	// One latency space shared by both deployments: hosts 0..nodes-1 are
	// the ROADS servers, host `nodes` is the client, host nodes+1 the
	// central repository.
	space := coords.MustNewSpace(*nodes+2, coords.DefaultConfig(), rng)
	latency := func(from, to string) time.Duration {
		if !*netLat {
			return 0
		}
		return space.Latency(hostOf(from, *nodes), hostOf(to, *nodes))
	}

	// ROADS cluster.
	roadsTr := transport.NewChan()
	roadsTr.Latency = latency
	cl, err := live.StartCluster(roadsTr, live.ClusterConfig{
		N:       *nodes,
		Schema:  w.Schema,
		Summary: summary.Config{Buckets: *buckets, Min: 0, Max: 1, Categorical: summary.UseValueSet},
		Tick:    100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	for i := 0; i < *nodes; i++ {
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := cl.AttachOwner(i, o); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("waiting for aggregation + overlay convergence...")
	if err := cl.WaitConverged(uint64(total), 2*time.Minute); err != nil {
		log.Fatal(err)
	}

	// Central deployment: a single live server holding everything.
	centralTr := transport.NewChan()
	centralTr.Latency = latency
	central, err := live.StartCluster(centralTr, live.ClusterConfig{
		N:       1,
		Schema:  w.Schema,
		Summary: summary.Config{Buckets: *buckets, Min: 0, Max: 1, Categorical: summary.UseValueSet},
		AddrFor: func(int) string { return "central" },
		Tick:    100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer central.Stop()
	centralOwner := policy.NewOwner("central-owner", w.Schema, nil)
	centralOwner.SetRecords(w.AllRecords())
	if err := central.AttachOwner(0, centralOwner); err != nil {
		log.Fatal(err)
	}
	if err := central.WaitConverged(uint64(total), 2*time.Minute); err != nil {
		log.Fatal(err)
	}

	groups, err := w.GenSelectivityGroups(workload.PaperSelectivityTargets, *perGroup, 6, 20000, rng)
	if err != nil {
		log.Fatal(err)
	}

	roadsClient := live.NewClient(roadsTr, "bench")
	centralClient := live.NewClient(centralTr, "bench")
	fmt.Printf("\n%12s %10s %10s %10s %12s %12s %10s\n",
		"selectivity", "ROADS avg", "ROADS p90", "contacted", "Central avg", "Central p90", "matches")
	for _, g := range groups {
		var rTimes, cTimes []time.Duration
		var contacted, matches int
		for _, q := range g.Queries {
			start := cl.Servers[rng.Intn(len(cl.Servers))]
			recs, stats, err := roadsClient.Resolve(start.Addr(), q.Clone())
			if err != nil {
				log.Fatal(err)
			}
			rTimes = append(rTimes, stats.Elapsed)
			contacted += stats.Contacted
			matches += len(recs)

			_, cstats, err := centralClient.Resolve("central", q.Clone())
			if err != nil {
				log.Fatal(err)
			}
			cTimes = append(cTimes, cstats.Elapsed)
		}
		n := len(g.Queries)
		fmt.Printf("%11.2f%% %10v %10v %10.1f %12v %12v %10.1f\n",
			g.Target*100,
			stats.MeanDuration(rTimes).Round(time.Millisecond), stats.PercentileDuration(rTimes, 0.9).Round(time.Millisecond),
			float64(contacted)/float64(n),
			stats.MeanDuration(cTimes).Round(time.Millisecond), stats.PercentileDuration(cTimes, 0.9).Round(time.Millisecond),
			float64(matches)/float64(n))
	}
}

// hostOf maps a transport address to a latency-space host index: servers
// keep their index, the client ("" caller) sits at host nodes, the central
// repository at nodes+1.
func hostOf(addr string, nodes int) int {
	switch addr {
	case "":
		return nodes
	case "central":
		return nodes + 1
	}
	var n int
	if _, err := fmt.Sscanf(addr, "srv%d", &n); err != nil || n >= nodes {
		return nodes
	}
	return n
}
