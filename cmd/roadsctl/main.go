// Command roadsctl queries a live ROADS federation. Predicates are given
// as attr=lo:hi (numeric range) or attr=value (categorical equality),
// matching the default aN attribute names of roadsd's synthetic schema.
//
//	roadsctl -server 127.0.0.1:7001 -q "a0=0.2:0.4" -q "a5=0.1:0.6"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"roads/internal/live"
	"roads/internal/query"
	"roads/internal/transport"
	"roads/internal/wire"
)

type predList []query.Predicate

func (p *predList) String() string { return fmt.Sprint(*p) }

func (p *predList) Set(v string) error {
	pred, err := query.ParsePredicate(v)
	if err != nil {
		return err
	}
	*p = append(*p, pred)
	return nil
}

func main() {
	server := flag.String("server", "127.0.0.1:7000", "any ROADS server address (the overlay lets queries start anywhere)")
	requester := flag.String("as", "anonymous", "requester identity presented to owners' sharing policies")
	limit := flag.Int("limit", 20, "max records to print (0 = all)")
	status := flag.Bool("status", false, "print the server's status snapshot instead of querying")
	deadline := flag.Duration("deadline", 10*time.Second, "overall resolve deadline; servers shed work that cannot meet it")
	retries := flag.Int("retries", 1, "retries per failed server contact before failing over to alternate replica holders")
	gob := flag.Bool("gob", false, "send requests in the legacy gob wire codec (for servers that predate the binary codec)")
	trace := flag.Bool("trace", false, "trace the resolve: print every server contact with its redirect path, per-hop latency, and the server's summary-match decisions")
	priority := flag.String("priority", "normal", "admission priority class claimed on the wire: low, normal or high (servers may pin a different class per requester)")
	var preds predList
	flag.Var(&preds, "q", "predicate attr=lo:hi, attr=value, attr>v or attr<v (repeatable)")
	flag.Parse()

	newTCP := func() *transport.TCP {
		tr := transport.NewTCP()
		tr.UseGob = *gob
		return tr
	}

	if *status {
		client := live.NewClient(newTCP(), *requester)
		st, err := client.Status(*server)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadsctl:", err)
			os.Exit(1)
		}
		fmt.Printf("server %s at %s\n", st.ID, st.Addr)
		if st.IsRoot {
			fmt.Println("  role: root")
		} else {
			fmt.Printf("  parent: %s (root path %v)\n", st.ParentID, st.RootPath)
		}
		fmt.Printf("  children: %d, overlay replicas: %d, owners: %d\n", st.Children, st.Replicas, st.Owners)
		fmt.Printf("  records: %d local, %d in branch\n", st.LocalRecords, st.BranchRecords)
		fmt.Printf("  served: %d queries (%d shed over budget), %d redirects, %d summary reports\n",
			st.QueriesServed, st.QueriesShed, st.RedirectsIssued, st.SummariesRecv)
		if st.SummaryRebuildsSkipped+st.ReportsSuppressed+st.ReplicaPushDelta+st.ReplicaPushFull > 0 {
			fmt.Printf("  dissemination: %d rebuilds skipped, %d reports suppressed, %d delta / %d full push entries, %d anti-entropy rounds\n",
				st.SummaryRebuildsSkipped, st.ReportsSuppressed, st.ReplicaPushDelta, st.ReplicaPushFull, st.AntiEntropyRounds)
		}
		if tr := st.Transport; tr != nil {
			fmt.Printf("  transport: %d calls (%d errors, %d retries), %d in-flight\n",
				tr.Calls, tr.Errors, tr.Retries, tr.InFlight)
			fmt.Printf("    conns: %d dialed, %d reused", tr.Dials, tr.Reuses)
			if tr.Dials+tr.Reuses > 0 {
				fmt.Printf(" (%.1f%% pooled)", 100*float64(tr.Reuses)/float64(tr.Dials+tr.Reuses))
			}
			fmt.Println()
			fmt.Printf("    bytes: %d sent, %d received; call latency p50 <= %dµs, p99 <= %dµs\n",
				tr.BytesSent, tr.BytesRecv, tr.P50Micros, tr.P99Micros)
		}
		return
	}
	if len(preds) == 0 {
		fmt.Fprintln(os.Stderr, "roadsctl: at least one -q predicate is required (or -status)")
		os.Exit(2)
	}
	q := query.New("roadsctl", preds...)
	client := live.NewClient(newTCP(), *requester)
	client.Retries = *retries
	client.Trace = *trace
	// Marks the request wire-v5 even at the default (normal) priority, so
	// an admission-controlled server sheds an over-budget requester to a
	// coarse answer instead of the pre-v5 error; old servers still work
	// via the client's per-address downgrade.
	client.CacheResults = true
	switch *priority {
	case "low":
		client.Priority = wire.PriorityLow
	case "normal":
		client.Priority = wire.PriorityNormal
	case "high":
		client.Priority = wire.PriorityHigh
	default:
		fmt.Fprintf(os.Stderr, "roadsctl: -priority must be low, normal or high, got %q\n", *priority)
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *deadline)
	defer cancel()
	recs, stats, err := client.ResolveContext(ctx, *server, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadsctl:", err)
		os.Exit(1)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("matched %d records via %d servers in %v (estimated coverage %.0f%%)\n",
		len(recs), stats.Contacted, stats.Elapsed.Round(0), 100*stats.Coverage)
	if stats.Coarse > 0 {
		fmt.Printf("degraded: %d server(s) shed this query to a coarse summary-only answer (~%.0f matching records estimated); retry later or raise -priority\n",
			stats.Coarse, stats.CoarseEstimate)
	}
	if stats.Retried > 0 || stats.FailedOver > 0 {
		fmt.Printf("resilience: %d retries, %d failovers to alternate replica holders\n",
			stats.Retried, stats.FailedOver)
	}
	if stats.Failed > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d of %d contacted servers failed; results may be incomplete\n",
			stats.Failed, stats.Contacted+stats.Failed)
		for _, e := range stats.Errors {
			fmt.Fprintln(os.Stderr, "  ", e)
		}
	}
	if *trace {
		printTrace(stats)
	}
	for i, r := range recs {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... and %d more\n", len(recs)-*limit)
			break
		}
		fmt.Println(" ", r)
	}
}

// printTrace renders the resolve's hop log: one line per server contact in
// completion order, with the redirect path that led there, the round-trip
// latency, and — when the server answered — its evaluation trace.
func printTrace(stats live.QueryStats) {
	fmt.Printf("trace %s: %d hops\n", stats.TraceID, len(stats.Hops))
	for i, h := range stats.Hops {
		who := h.ServerID
		if who == "" {
			who = h.Addr
		}
		path := "(entry)"
		if len(h.Path) > 0 {
			path = ""
			for j, p := range h.Path {
				if j > 0 {
					path += " > "
				}
				path += p
			}
		}
		fmt.Printf("  hop %d [%s] %s (%s) via %s, rtt %v", i+1, h.Kind, who, h.Addr, path, h.RTT.Round(time.Microsecond))
		if h.Attempts > 1 {
			fmt.Printf(" (%d attempts)", h.Attempts)
		}
		fmt.Println()
		if h.Err != "" {
			fmt.Printf("        failed: %s\n", h.Err)
			continue
		}
		fmt.Printf("        returned %d records, %d redirects", h.Records, h.Redirects)
		if ti := h.Info; ti != nil {
			fmt.Printf("; eval %dµs, %d local matches", ti.EvalMicros, ti.LocalRecords)
			if len(ti.MatchedChildren) > 0 {
				fmt.Printf("; matched children %v of %d", ti.MatchedChildren, ti.Children)
			}
			if len(ti.MatchedReplicas) > 0 {
				fmt.Printf("; matched replicas %v of %d", ti.MatchedReplicas, ti.Replicas)
			}
		}
		fmt.Println()
	}
}
