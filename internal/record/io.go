package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSON-lines interchange format: one object per line, attribute values
// keyed by name. Numeric attributes carry JSON numbers, categorical ones
// strings. Example:
//
//	{"id":"cam-1","owner":"orgA","attrs":{"rate":0.12,"encoding":"MPEG2"}}
//
// This is how real deployments feed resource inventories into roadsd.

// jsonRecord is the wire shape of one record line.
type jsonRecord struct {
	ID    string                 `json:"id"`
	Owner string                 `json:"owner"`
	Attrs map[string]interface{} `json:"attrs"`
}

// WriteJSON streams records to w in JSON-lines format.
func WriteJSON(w io.Writer, s *Schema, recs []*Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		jr := jsonRecord{ID: r.ID, Owner: r.Owner, Attrs: make(map[string]interface{}, s.NumAttrs())}
		for i := 0; i < s.NumAttrs(); i++ {
			a := s.Attr(i)
			if a.Kind == Numeric {
				jr.Attrs[a.Name] = r.Num(i)
			} else {
				jr.Attrs[a.Name] = r.Str(i)
			}
		}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("record: write %s: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSON parses JSON-lines records against the schema. Unknown
// attributes are rejected (the federation's common schema is a contract);
// missing numeric attributes default to 0 and missing categorical ones
// fail validation.
func ReadJSON(r io.Reader, s *Schema) ([]*Record, error) {
	var out []*Record
	dec := json.NewDecoder(r)
	line := 0
	for {
		line++
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("record: line %d: %w", line, err)
		}
		if jr.ID == "" {
			return nil, fmt.Errorf("record: line %d: missing id", line)
		}
		rec := New(s, jr.ID, jr.Owner)
		for name, v := range jr.Attrs {
			idx, ok := s.Index(name)
			if !ok {
				return nil, fmt.Errorf("record: line %d: unknown attribute %q", line, name)
			}
			switch s.Attr(idx).Kind {
			case Numeric:
				num, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("record: line %d: attribute %q needs a number, got %T", line, name, v)
				}
				rec.SetNum(idx, num)
			case Categorical:
				str, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("record: line %d: attribute %q needs a string, got %T", line, name, v)
				}
				rec.SetStr(idx, str)
			}
		}
		if err := rec.Validate(s); err != nil {
			return nil, fmt.Errorf("record: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// SchemaJSON is the portable schema description shared by a federation.
type SchemaJSON struct {
	Attributes []struct {
		Name string `json:"name"`
		Kind string `json:"kind"` // "numeric" | "categorical"
	} `json:"attributes"`
}

// MarshalSchema renders a schema as JSON.
func MarshalSchema(s *Schema) ([]byte, error) {
	var sj SchemaJSON
	for _, a := range s.Attrs() {
		sj.Attributes = append(sj.Attributes, struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		}{Name: a.Name, Kind: a.Kind.String()})
	}
	return json.MarshalIndent(&sj, "", "  ")
}

// UnmarshalSchema parses a schema from JSON.
func UnmarshalSchema(data []byte) (*Schema, error) {
	var sj SchemaJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("record: schema: %w", err)
	}
	attrs := make([]Attribute, 0, len(sj.Attributes))
	for _, a := range sj.Attributes {
		var kind Kind
		switch a.Kind {
		case "numeric":
			kind = Numeric
		case "categorical":
			kind = Categorical
		default:
			return nil, fmt.Errorf("record: schema: unknown kind %q for %q", a.Kind, a.Name)
		}
		attrs = append(attrs, Attribute{Name: a.Name, Kind: kind})
	}
	return NewSchema(attrs)
}
