package record

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema([]Attribute{
		{Name: "cpu", Kind: Numeric},
		{Name: "mem", Kind: Numeric},
		{Name: "encoding", Kind: Categorical},
	})
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema([]Attribute{{Name: "a", Kind: Numeric}, {Name: "a", Kind: Categorical}})
	if err == nil {
		t.Fatal("expected error for duplicate attribute names")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	_, err := NewSchema([]Attribute{{Name: "", Kind: Numeric}})
	if err == nil {
		t.Fatal("expected error for empty attribute name")
	}
}

func TestSchemaIndex(t *testing.T) {
	s := testSchema(t)
	if i, ok := s.Index("mem"); !ok || i != 1 {
		t.Fatalf("Index(mem) = %d,%v; want 1,true", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Fatal("Index(nope) should not exist")
	}
	if got := s.NumAttrs(); got != 3 {
		t.Fatalf("NumAttrs = %d; want 3", got)
	}
}

func TestSchemaKindIndexes(t *testing.T) {
	s := testSchema(t)
	num := s.NumericIndexes()
	if len(num) != 2 || num[0] != 0 || num[1] != 1 {
		t.Fatalf("NumericIndexes = %v; want [0 1]", num)
	}
	cat := s.CategoricalIndexes()
	if len(cat) != 1 || cat[0] != 2 {
		t.Fatalf("CategoricalIndexes = %v; want [2]", cat)
	}
}

func TestSchemaAttrsIsCopy(t *testing.T) {
	s := testSchema(t)
	attrs := s.Attrs()
	attrs[0].Name = "mutated"
	if s.Attr(0).Name != "cpu" {
		t.Fatal("Attrs() must return a copy, not the internal slice")
	}
}

func TestRecordSettersGetters(t *testing.T) {
	s := testSchema(t)
	r := New(s, "r1", "orgA")
	r.SetNum(0, 0.5)
	r.SetNum(1, 0.25)
	r.SetStr(2, "MPEG2")
	if r.Num(0) != 0.5 || r.Num(1) != 0.25 || r.Str(2) != "MPEG2" {
		t.Fatalf("unexpected values: %v", r)
	}
	if err := r.Validate(s); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRecordValidateCatchesMissingCategorical(t *testing.T) {
	s := testSchema(t)
	r := New(s, "r1", "orgA")
	if err := r.Validate(s); err == nil {
		t.Fatal("expected validation error for empty categorical attribute")
	}
}

func TestRecordValidateCatchesWrongArity(t *testing.T) {
	s := testSchema(t)
	r := &Record{ID: "x", Values: make([]Value, 1)}
	if err := r.Validate(s); err == nil {
		t.Fatal("expected validation error for wrong value count")
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	s := testSchema(t)
	r := New(s, "r1", "orgA")
	r.SetNum(0, 0.7)
	c := r.Clone()
	c.SetNum(0, 0.1)
	if r.Num(0) != 0.7 {
		t.Fatal("Clone must not share value storage")
	}
}

func TestRecordSizeBytes(t *testing.T) {
	s := testSchema(t)
	r := New(s, "r1", "orgA")
	r.SetStr(2, "MPEG2")
	want := 16 + 8 + 8 + len("MPEG2")
	if got := r.SizeBytes(s); got != want {
		t.Fatalf("SizeBytes = %d; want %d", got, want)
	}
}

func TestSetAccounting(t *testing.T) {
	s := testSchema(t)
	rs := NewSet(s)
	for i := 0; i < 5; i++ {
		r := New(s, "r", "o")
		r.SetStr(2, "x")
		rs.Add(r)
	}
	if rs.Len() != 5 {
		t.Fatalf("Len = %d; want 5", rs.Len())
	}
	per := (16 + 8 + 8 + 1)
	if got := rs.SizeBytes(); got != 5*per {
		t.Fatalf("SizeBytes = %d; want %d", got, 5*per)
	}
}

func TestSetSortByID(t *testing.T) {
	s := testSchema(t)
	rs := NewSet(s)
	for _, id := range []string{"c", "a", "b"} {
		rs.Add(&Record{ID: id, Values: make([]Value, 3)})
	}
	rs.SortByID()
	for i, want := range []string{"a", "b", "c"} {
		if rs.Records[i].ID != want {
			t.Fatalf("after sort, record %d = %s; want %s", i, rs.Records[i].ID, want)
		}
	}
}

func TestDefaultSchema(t *testing.T) {
	s := DefaultSchema(16)
	if s.NumAttrs() != 16 {
		t.Fatalf("NumAttrs = %d; want 16", s.NumAttrs())
	}
	for i := 0; i < 16; i++ {
		if s.Attr(i).Kind != Numeric {
			t.Fatalf("attr %d kind = %v; want Numeric", i, s.Attr(i).Kind)
		}
	}
	if i, ok := s.Index("a7"); !ok || i != 7 {
		t.Fatalf("Index(a7) = %d,%v", i, ok)
	}
}

// Property: Clone always produces an equal but independent record.
func TestRecordClonePropertyQuick(t *testing.T) {
	s := DefaultSchema(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(s, "id", "own")
		for i := 0; i < 8; i++ {
			r.SetNum(i, rng.Float64())
		}
		c := r.Clone()
		for i := 0; i < 8; i++ {
			if c.Num(i) != r.Num(i) {
				return false
			}
		}
		c.SetNum(0, -1)
		return r.Num(0) != -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
