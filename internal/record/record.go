// Package record defines resource records: the multi-attribute descriptions
// of shareable resources that flow through ROADS, SWORD and the centralized
// baseline. A record is a set of attribute-value pairs conforming to a
// Schema shared by all federation participants (the paper assumes a common
// schema; see DESIGN.md §6).
package record

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the type of an attribute's values.
type Kind uint8

const (
	// Numeric attributes take float64 values, normalized to [0,1] in the
	// paper's workloads. Range predicates apply to them.
	Numeric Kind = iota
	// Categorical attributes take string values drawn from a finite
	// vocabulary (e.g. encoding=MPEG2). Equality predicates apply to them.
	Categorical
)

func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Attribute describes one dimension of the shared schema.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is the ordered list of attributes all participants agree on.
// Records store their values positionally, aligned with the schema, which
// keeps them compact and makes summary construction cache-friendly.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique and non-empty.
func NewSchema(attrs []Attribute) (*Schema, error) {
	s := &Schema{
		attrs: make([]Attribute, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("record: schema attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("record: duplicate schema attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and static schemas.
func MustSchema(attrs []Attribute) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes in the schema.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// NumericIndexes returns the positions of all numeric attributes, ascending.
func (s *Schema) NumericIndexes() []int {
	var out []int
	for i, a := range s.attrs {
		if a.Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// CategoricalIndexes returns the positions of all categorical attributes.
func (s *Schema) CategoricalIndexes() []int {
	var out []int
	for i, a := range s.attrs {
		if a.Kind == Categorical {
			out = append(out, i)
		}
	}
	return out
}

// Value is one attribute value. Num is meaningful for Numeric attributes,
// Str for Categorical ones; the schema decides which is live.
type Value struct {
	Num float64
	Str string
}

// Record is a resource description: an identifier, the owner that published
// it, and one value per schema attribute (positional).
type Record struct {
	ID     string
	Owner  string
	Values []Value
}

// New allocates a record with the right number of value slots for s.
func New(s *Schema, id, owner string) *Record {
	return &Record{ID: id, Owner: owner, Values: make([]Value, s.NumAttrs())}
}

// SetNum sets a numeric attribute by schema position.
func (r *Record) SetNum(i int, v float64) { r.Values[i].Num = v }

// SetStr sets a categorical attribute by schema position.
func (r *Record) SetStr(i int, v string) { r.Values[i].Str = v }

// Num returns the numeric value at schema position i.
func (r *Record) Num(i int) float64 { return r.Values[i].Num }

// Str returns the categorical value at schema position i.
func (r *Record) Str(i int) string { return r.Values[i].Str }

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := *r
	c.Values = make([]Value, len(r.Values))
	copy(c.Values, r.Values)
	return &c
}

// Validate checks the record against the schema: value slot count and, for
// categorical attributes, non-empty strings.
func (r *Record) Validate(s *Schema) error {
	if len(r.Values) != s.NumAttrs() {
		return fmt.Errorf("record %s: %d values, schema has %d attrs", r.ID, len(r.Values), s.NumAttrs())
	}
	for i, a := range s.attrs {
		if a.Kind == Categorical && r.Values[i].Str == "" {
			return fmt.Errorf("record %s: categorical attr %q is empty", r.ID, a.Name)
		}
	}
	return nil
}

// SizeBytes is the wire size of the record used for message accounting in
// the simulator: 8 bytes per numeric value, string length per categorical
// value, plus a small fixed header for the ID.
func (r *Record) SizeBytes(s *Schema) int {
	size := 16 // id + owner header
	for i, a := range s.attrs {
		if a.Kind == Numeric {
			size += 8
		} else {
			size += len(r.Values[i].Str)
			if size == 0 {
				size++
			}
		}
	}
	return size
}

// String renders the record as attribute=value pairs, for debugging.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "{id=%s owner=%s", r.ID, r.Owner)
	for i, v := range r.Values {
		if v.Str != "" {
			fmt.Fprintf(&b, " a%d=%s", i, v.Str)
		} else {
			fmt.Fprintf(&b, " a%d=%.3f", i, v.Num)
		}
	}
	b.WriteString("}")
	return b.String()
}

// Set is a collection of records under one schema.
type Set struct {
	Schema  *Schema
	Records []*Record
}

// NewSet creates an empty record set for the schema.
func NewSet(s *Schema) *Set {
	return &Set{Schema: s}
}

// Add appends records to the set.
func (rs *Set) Add(recs ...*Record) { rs.Records = append(rs.Records, recs...) }

// Len returns the number of records.
func (rs *Set) Len() int { return len(rs.Records) }

// SizeBytes is the total wire size of all records in the set.
func (rs *Set) SizeBytes() int {
	total := 0
	for _, r := range rs.Records {
		total += r.SizeBytes(rs.Schema)
	}
	return total
}

// SortByID orders the records by ID, for deterministic output.
func (rs *Set) SortByID() {
	sort.Slice(rs.Records, func(i, j int) bool { return rs.Records[i].ID < rs.Records[j].ID })
}

// DefaultSchema builds the paper's default simulation schema: nNumeric
// numeric attributes named a0..a(n-1). The paper's default workload uses 16
// numeric attributes; categorical ones appear in the prototype workload.
func DefaultSchema(nNumeric int) *Schema {
	attrs := make([]Attribute, nNumeric)
	for i := range attrs {
		attrs[i] = Attribute{Name: fmt.Sprintf("a%d", i), Kind: Numeric}
	}
	return MustSchema(attrs)
}
