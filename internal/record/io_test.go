package record

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "rate", Kind: Numeric},
		{Name: "enc", Kind: Categorical},
	})
	r1 := New(s, "cam-1", "orgA")
	r1.SetNum(0, 0.125)
	r1.SetStr(1, "MPEG2")
	r2 := New(s, "cam-2", "orgB")
	r2.SetNum(0, 0.5)
	r2.SetStr(1, "H264")

	var buf bytes.Buffer
	if err := WriteJSON(&buf, s, []*Record{r1, r2}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d records; want 2", len(back))
	}
	if back[0].ID != "cam-1" || back[0].Num(0) != 0.125 || back[0].Str(1) != "MPEG2" {
		t.Fatalf("record changed: %v", back[0])
	}
	if back[1].Owner != "orgB" {
		t.Fatalf("owner lost: %v", back[1])
	}
}

func TestReadJSONErrors(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "rate", Kind: Numeric},
		{Name: "enc", Kind: Categorical},
	})
	cases := map[string]string{
		"missing id":        `{"owner":"o","attrs":{"rate":0.5,"enc":"x"}}`,
		"unknown attribute": `{"id":"a","owner":"o","attrs":{"bogus":1,"enc":"x"}}`,
		"number for string": `{"id":"a","owner":"o","attrs":{"rate":0.5,"enc":7}}`,
		"string for number": `{"id":"a","owner":"o","attrs":{"rate":"x","enc":"y"}}`,
		"missing categor.":  `{"id":"a","owner":"o","attrs":{"rate":0.5}}`,
		"garbage":           `{{{`,
	}
	for name, input := range cases {
		if _, err := ReadJSON(strings.NewReader(input), s); err == nil {
			t.Fatalf("case %q: expected error", name)
		}
	}
	// Empty input yields no records, no error.
	recs, err := ReadJSON(strings.NewReader(""), s)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: %v, %v", recs, err)
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "cpu", Kind: Numeric},
		{Name: "os", Kind: Categorical},
	})
	data, err := MarshalSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumAttrs() != 2 || back.Attr(0).Name != "cpu" || back.Attr(1).Kind != Categorical {
		t.Fatalf("schema changed: %+v", back.Attrs())
	}
}

func TestUnmarshalSchemaErrors(t *testing.T) {
	if _, err := UnmarshalSchema([]byte(`{"attributes":[{"name":"x","kind":"alien"}]}`)); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := UnmarshalSchema([]byte(`not json`)); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := UnmarshalSchema([]byte(`{"attributes":[{"name":"a","kind":"numeric"},{"name":"a","kind":"numeric"}]}`)); err == nil {
		t.Fatal("duplicate attribute must fail")
	}
}
