package summary

import (
	"fmt"
	"sort"
)

// ValueSet summarizes a categorical attribute by enumerating the distinct
// values present, with a count per value so that soft-state refresh can
// subtract as well as add. It is exact (no false positives) but its size
// grows with the number of distinct values, which is why the paper suggests
// Bloom filters when the vocabulary is large.
type ValueSet struct {
	Counts map[string]uint32
}

// NewValueSet creates an empty value set.
func NewValueSet() *ValueSet {
	return &ValueSet{Counts: make(map[string]uint32)}
}

// Add records one occurrence of v.
func (s *ValueSet) Add(v string) { s.Counts[v]++ }

// Remove forgets one occurrence of v.
func (s *ValueSet) Remove(v string) {
	if c, ok := s.Counts[v]; ok {
		if c <= 1 {
			delete(s.Counts, v)
		} else {
			s.Counts[v] = c - 1
		}
	}
}

// Contains reports whether v is present.
func (s *ValueSet) Contains(v string) bool {
	_, ok := s.Counts[v]
	return ok
}

// Merge adds other's occurrences into s.
func (s *ValueSet) Merge(other *ValueSet) {
	if other == nil {
		return
	}
	for v, c := range other.Counts {
		s.Counts[v] += c
	}
}

// Len returns the number of distinct values.
func (s *ValueSet) Len() int { return len(s.Counts) }

// Values returns the distinct values in sorted order.
func (s *ValueSet) Values() []string {
	out := make([]string, 0, len(s.Counts))
	for v := range s.Counts {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (s *ValueSet) Clone() *ValueSet {
	c := NewValueSet()
	for v, n := range s.Counts {
		c.Counts[v] = n
	}
	return c
}

// Equal reports whether two sets hold the same values with the same counts.
func (s *ValueSet) Equal(other *ValueSet) bool {
	if other == nil || len(s.Counts) != len(other.Counts) {
		return false
	}
	for v, c := range s.Counts {
		if other.Counts[v] != c {
			return false
		}
	}
	return true
}

// SizeBytes is the wire size: per value its string length plus a 4-byte
// counter, plus a 4-byte header.
func (s *ValueSet) SizeBytes() int {
	size := 4
	for v := range s.Counts {
		size += len(v) + 4
	}
	return size
}

// String renders the set, for debugging.
func (s *ValueSet) String() string {
	return fmt.Sprintf("set%v", s.Values())
}
