package summary

import (
	"fmt"
	"sort"
)

// ValueSet summarizes a categorical attribute by enumerating the distinct
// values present, with a count per value so that soft-state refresh can
// subtract as well as add. It is exact (no false positives) but its size
// grows with the number of distinct values, which is why the paper suggests
// Bloom filters when the vocabulary is large.
type ValueSet struct {
	Counts map[string]uint32

	// wild counts how many keys are condensed prefix wildcards ("a.b.*"),
	// so the hot matching path can skip prefix probing when none exist.
	wild int
}

// NewValueSet creates an empty value set.
func NewValueSet() *ValueSet {
	return &ValueSet{Counts: make(map[string]uint32)}
}

// Add records one occurrence of v.
func (s *ValueSet) Add(v string) {
	if s.Counts[v] == 0 && IsWildcard(v) {
		s.wild++
	}
	s.Counts[v]++
}

// Remove forgets one occurrence of v.
func (s *ValueSet) Remove(v string) {
	if c, ok := s.Counts[v]; ok {
		if c <= 1 {
			delete(s.Counts, v)
			if IsWildcard(v) {
				s.wild--
			}
		} else {
			s.Counts[v] = c - 1
		}
	}
}

// HasWildcards reports whether any condensed prefix wildcards are present.
func (s *ValueSet) HasWildcards() bool { return s.wild > 0 }

// SetCount sets v's occurrence count outright (0 deletes), keeping the
// wildcard index accurate. Wire decoding uses it to rebuild sets without
// going through per-occurrence Adds.
func (s *ValueSet) SetCount(v string, c uint32) {
	_, had := s.Counts[v]
	if c == 0 {
		if had {
			delete(s.Counts, v)
			if IsWildcard(v) {
				s.wild--
			}
		}
		return
	}
	if !had && IsWildcard(v) {
		s.wild++
	}
	s.Counts[v] = c
}

// Contains reports whether v is present.
func (s *ValueSet) Contains(v string) bool {
	_, ok := s.Counts[v]
	return ok
}

// Merge adds other's occurrences into s.
func (s *ValueSet) Merge(other *ValueSet) {
	if other == nil {
		return
	}
	for v, c := range other.Counts {
		if s.Counts[v] == 0 && IsWildcard(v) {
			s.wild++
		}
		s.Counts[v] += c
	}
}

// Len returns the number of distinct values.
func (s *ValueSet) Len() int { return len(s.Counts) }

// Values returns the distinct values in sorted order.
func (s *ValueSet) Values() []string {
	out := make([]string, 0, len(s.Counts))
	for v := range s.Counts {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (s *ValueSet) Clone() *ValueSet {
	c := NewValueSet()
	for v, n := range s.Counts {
		c.Counts[v] = n
	}
	c.wild = s.wild
	return c
}

// Equal reports whether two sets hold the same values with the same counts.
func (s *ValueSet) Equal(other *ValueSet) bool {
	if other == nil || len(s.Counts) != len(other.Counts) {
		return false
	}
	for v, c := range s.Counts {
		if other.Counts[v] != c {
			return false
		}
	}
	return true
}

// SizeBytes is the wire size: per value its string length plus a 4-byte
// counter, plus a 4-byte header.
func (s *ValueSet) SizeBytes() int {
	size := 4
	for v := range s.Counts {
		size += len(v) + 4
	}
	return size
}

// String renders the set, for debugging.
func (s *ValueSet) String() string {
	return fmt.Sprintf("set%v", s.Values())
}
