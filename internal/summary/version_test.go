package summary

import (
	"fmt"
	"testing"

	"roads/internal/record"
)

func versionRecords(s *record.Schema, n int, salt float64) []*record.Record {
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(s, fmt.Sprintf("r%d", i), "own")
		for a := 0; a < s.NumAttrs(); a++ {
			switch s.Attr(a).Kind {
			case record.Numeric:
				r.SetNum(a, float64(i%10)/10+salt/100)
			case record.Categorical:
				r.SetStr(a, fmt.Sprintf("v%d", i%3))
			}
		}
		recs[i] = r
	}
	return recs
}

// TestComputeVersionContentHash pins the version contract the delta
// dissemination relies on: identical content hashes identically regardless
// of metadata, any content change moves the hash, and a stamped version is
// never zero.
func TestComputeVersionContentHash(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	cfg.Buckets = 64

	recs := versionRecords(s, 50, 0)
	a, err := FromRecords(s, cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRecords(s, cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version == 0 || b.Version == 0 {
		t.Fatalf("stamped versions must be non-zero: %d %d", a.Version, b.Version)
	}
	if a.Version != b.Version {
		t.Fatalf("identical content hashed differently: %d vs %d", a.Version, b.Version)
	}

	// Metadata must not participate.
	b.Origin = "elsewhere"
	if b.ComputeVersion() != a.Version {
		t.Fatal("origin metadata changed the content hash")
	}

	// Content changes must.
	c, err := FromRecords(s, cfg, versionRecords(s, 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	if c.Version == a.Version {
		t.Fatal("different content produced the same version")
	}
	d, err := FromRecords(s, cfg, recs[:49])
	if err != nil {
		t.Fatal(err)
	}
	if d.Version == a.Version {
		t.Fatal("dropping a record left the version unchanged")
	}

	// Merging changes content, and re-stamping tracks it.
	merged := a.Clone()
	if err := merged.Merge(c); err != nil {
		t.Fatal(err)
	}
	if merged.ComputeVersion() == a.Version {
		t.Fatal("merge left the version unchanged")
	}

	// An empty summary still stamps non-zero.
	e := MustNew(s, cfg)
	if e.ComputeVersion() == 0 {
		t.Fatal("empty summary stamped version 0")
	}
}

// TestComputeVersionBloomMode covers the Bloom-filter leg of the hash.
func TestComputeVersionBloomMode(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	cfg.Buckets = 32
	cfg.Categorical = UseBloom

	a, err := FromRecords(s, cfg, versionRecords(s, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRecords(s, cfg, versionRecords(s, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != b.Version || a.Version == 0 {
		t.Fatalf("bloom-mode versions: %d vs %d", a.Version, b.Version)
	}
	c, err := FromRecords(s, cfg, versionRecords(s, 21, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Version == a.Version {
		t.Fatal("bloom-mode content change kept the version")
	}
}
