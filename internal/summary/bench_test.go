package summary

import (
	"math/rand"
	"strconv"
	"testing"

	"roads/internal/record"
)

func benchRecords(n int, schema *record.Schema, rng *rand.Rand) []*record.Record {
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(schema, strconv.Itoa(i), "o")
		for j := 0; j < schema.NumAttrs(); j++ {
			r.SetNum(j, rng.Float64())
		}
		recs[i] = r
	}
	return recs
}

func BenchmarkSummaryFromRecords(b *testing.B) {
	schema := record.DefaultSchema(16)
	rng := rand.New(rand.NewSource(1))
	recs := benchRecords(500, schema, rng)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromRecords(schema, cfg, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummaryMerge(b *testing.B) {
	schema := record.DefaultSchema(16)
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	a, _ := FromRecords(schema, cfg, benchRecords(500, schema, rng))
	c, _ := FromRecords(schema, cfg, benchRecords(500, schema, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := a.Clone()
		if err := dst.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := MustHistogram(1000, 0, 1)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(vals[i%len(vals)])
	}
}

func BenchmarkHistogramMatchRange(b *testing.B) {
	h := MustHistogram(1000, 0, 1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		h.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchRange(0.25, 0.5)
	}
}

func BenchmarkBloomAddContains(b *testing.B) {
	bl := MustBloom(4096, 4)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(i)
		bl.Add(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Contains(keys[i%len(keys)])
	}
}

func BenchmarkEquiDepthBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildEquiDepth(vals, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquiDepthMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	mk := func() *EquiDepth {
		vals := make([]float64, 5000)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		ed, _ := BuildEquiDepth(vals, 100)
		return ed
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Merge(y, 100); err != nil {
			b.Fatal(err)
		}
	}
}
