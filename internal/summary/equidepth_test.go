package summary

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func paretoVals(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := 0.05 / math.Pow(rng.Float64(), 1/1.5)
		if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

func TestBuildEquiDepthValidation(t *testing.T) {
	if _, err := BuildEquiDepth([]float64{1, 2}, 0); err == nil {
		t.Fatal("zero buckets must fail")
	}
	ed, err := BuildEquiDepth(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !ed.Empty() || ed.MatchRange(0, 1) {
		t.Fatal("empty histogram must match nothing")
	}
}

func TestEquiDepthBucketsRoughlyBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := paretoVals(10000, rng)
	ed, err := BuildEquiDepth(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ed.Total != 10000 {
		t.Fatalf("Total = %d", ed.Total)
	}
	want := float64(10000) / float64(ed.Buckets())
	for i, c := range ed.Counts {
		if float64(c) < want/4 || float64(c) > want*4 {
			t.Fatalf("bucket %d holds %d; want ~%g (balanced)", i, c, want)
		}
	}
}

func TestEquiDepthSingleValue(t *testing.T) {
	ed, err := BuildEquiDepth([]float64{0.5, 0.5, 0.5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ed.Total != 3 {
		t.Fatalf("Total = %d", ed.Total)
	}
	if !ed.MatchRange(0.4, 0.6) {
		t.Fatal("must match around the single value")
	}
	if ed.MatchRange(0.7, 0.9) {
		t.Fatal("must not match far from the single value")
	}
}

func TestEquiDepthMatchRange(t *testing.T) {
	ed, _ := BuildEquiDepth([]float64{0.1, 0.2, 0.3, 0.8, 0.9}, 4)
	if !ed.MatchRange(0.05, 0.15) {
		t.Fatal("should match near 0.1")
	}
	if ed.MatchRange(0.95, 1.0) {
		t.Fatal("should not match above max")
	}
	if ed.MatchRange(0.0, 0.05) {
		t.Fatal("should not match below min")
	}
	if ed.MatchRange(0.5, 0.4) {
		t.Fatal("inverted range must not match")
	}
}

func TestEquiDepthCountRangeAccuracyOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := paretoVals(20000, rng)
	const m = 50
	ed, err := BuildEquiDepth(vals, m)
	if err != nil {
		t.Fatal(err)
	}
	ew := MustHistogram(m, 0, 1)
	for _, v := range vals {
		ew.Add(v)
	}
	// Compare range-count estimates against ground truth on narrow ranges
	// inside the dense region (where equi-width buckets are overloaded).
	var edErr, ewErr float64
	for trial := 0; trial < 50; trial++ {
		lo := 0.05 + rng.Float64()*0.1
		hi := lo + 0.01
		truth := 0.0
		for _, v := range vals {
			if v >= lo && v <= hi {
				truth++
			}
		}
		edErr += math.Abs(ed.CountRange(lo, hi) - truth)
		ewErr += math.Abs(ew.CountRange(lo, hi) - truth)
	}
	if edErr >= ewErr {
		t.Fatalf("equi-depth should beat equi-width on skewed data: edErr=%.0f ewErr=%.0f", edErr, ewErr)
	}
}

func TestEquiDepthMergePreservesTotalsAndExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, _ := BuildEquiDepth(paretoVals(5000, rng), 30)
	b, _ := BuildEquiDepth(paretoVals(3000, rng), 30)
	merged, err := a.Merge(b, 30)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Total != 8000 {
		t.Fatalf("merged Total = %d; want 8000", merged.Total)
	}
	if merged.Min() != math.Min(a.Min(), b.Min()) {
		t.Fatal("merged min wrong")
	}
	if merged.Max() != math.Max(a.Max(), b.Max()) {
		t.Fatal("merged max wrong")
	}
	var sum uint64
	for _, c := range merged.Counts {
		sum += uint64(c)
	}
	if sum != merged.Total {
		t.Fatalf("counts sum %d != Total %d", sum, merged.Total)
	}
}

func TestEquiDepthMergeEmptySides(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, _ := BuildEquiDepth(paretoVals(100, rng), 10)
	empty, _ := BuildEquiDepth(nil, 10)
	m1, err := a.Merge(empty, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Total != a.Total {
		t.Fatal("merging with empty must preserve the non-empty side")
	}
	m2, err := empty.Merge(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Total != a.Total {
		t.Fatal("empty.Merge(a) must equal a")
	}
	if _, err := a.Merge(a, 0); err == nil {
		t.Fatal("zero target buckets must fail")
	}
	m3, err := a.Merge(nil, 10)
	if err != nil || m3.Total != a.Total {
		t.Fatal("nil merge must clone")
	}
}

func TestEquiDepthCloneIndependent(t *testing.T) {
	a, _ := BuildEquiDepth([]float64{0.1, 0.5, 0.9}, 3)
	c := a.Clone()
	c.Counts[0] = 99
	if a.Counts[0] == 99 {
		t.Fatal("clone shares count storage")
	}
}

func TestEquiDepthSizeBytes(t *testing.T) {
	a, _ := BuildEquiDepth([]float64{0.1, 0.5, 0.9}, 3)
	want := 8 + 8*len(a.Bounds) + 4*len(a.Counts)
	if a.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d; want %d", a.SizeBytes(), want)
	}
}

// Property: equi-depth never produces a false negative — any built value
// is matched by ranges containing it.
func TestEquiDepthNoFalseNegativesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 1+rng.Intn(100))
		for i := range vals {
			vals[i] = rng.Float64()
		}
		ed, err := BuildEquiDepth(vals, 1+rng.Intn(16))
		if err != nil {
			return false
		}
		for _, v := range vals {
			if !ed.MatchRange(v-0.01, v+0.01) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountRange over the full domain returns ~Total.
func TestEquiDepthCountFullDomainQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 2+rng.Intn(200))
		for i := range vals {
			vals[i] = rng.Float64()
		}
		ed, err := BuildEquiDepth(vals, 8)
		if err != nil {
			return false
		}
		got := ed.CountRange(ed.Min(), ed.Max())
		return math.Abs(got-float64(ed.Total)) <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
