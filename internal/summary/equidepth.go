package summary

import (
	"fmt"
	"math"
	"sort"
)

// EquiDepth is an equi-depth (quantile) histogram: bucket boundaries are
// placed so each bucket holds roughly the same number of values. Compared
// to the equi-width Histogram it adapts to skew — on a Pareto-distributed
// attribute most equi-width buckets sit empty while a few hold everything,
// whereas equi-depth boundaries crowd into the dense region, giving far
// better range-count estimates for the same space. It is one of the
// alternative aggregation methods the paper's §III-B allows ("different
// aggregation methods can be used ... as long as they compress data and
// support query evaluation").
//
// Range matching is conservative in the same direction as the equi-width
// histogram: MatchRange never reports false negatives. It is weaker at
// representing gaps (an equi-depth bucket spanning a data gap still
// matches queries inside the gap), which is exactly the precision/accuracy
// tradeoff the ablation benchmarks quantify.
type EquiDepth struct {
	// Bounds has len(Counts)+1 ascending entries; bucket i covers
	// [Bounds[i], Bounds[i+1]) (the last bucket is closed).
	Bounds []float64
	Counts []uint32
	Total  uint64
}

// BuildEquiDepth constructs an m-bucket equi-depth histogram over values.
// Fewer than m distinct values produce correspondingly fewer buckets.
func BuildEquiDepth(values []float64, m int) (*EquiDepth, error) {
	if m <= 0 {
		return nil, fmt.Errorf("summary: equi-depth needs at least 1 bucket, got %d", m)
	}
	ed := &EquiDepth{}
	if len(values) == 0 {
		return ed, nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if m > len(sorted) {
		m = len(sorted)
	}
	// Quantile boundaries; duplicates collapse so buckets stay distinct.
	bounds := make([]float64, 0, m+1)
	bounds = append(bounds, sorted[0])
	for i := 1; i < m; i++ {
		q := sorted[(i*len(sorted))/m]
		if q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	last := sorted[len(sorted)-1]
	if last > bounds[len(bounds)-1] {
		bounds = append(bounds, last)
	} else {
		// All values identical: widen by epsilon so the bucket is valid.
		bounds = append(bounds, bounds[len(bounds)-1]+math.SmallestNonzeroFloat64)
	}
	ed.Bounds = bounds
	ed.Counts = make([]uint32, len(bounds)-1)
	for _, v := range sorted {
		ed.Counts[ed.bucketOf(v)]++
	}
	ed.Total = uint64(len(sorted))
	return ed, nil
}

// bucketOf locates v's bucket (clamped to the domain).
func (ed *EquiDepth) bucketOf(v float64) int {
	n := len(ed.Counts)
	if n == 0 {
		return 0
	}
	if v <= ed.Bounds[0] {
		return 0
	}
	if v >= ed.Bounds[n] {
		return n - 1
	}
	// First boundary strictly greater than v, minus one.
	i := sort.SearchFloat64s(ed.Bounds, v)
	if i > 0 && ed.Bounds[i] != v {
		i--
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Buckets returns the bucket count.
func (ed *EquiDepth) Buckets() int { return len(ed.Counts) }

// Empty reports whether the histogram holds no values.
func (ed *EquiDepth) Empty() bool { return ed.Total == 0 }

// MatchRange reports whether any value may fall in [lo,hi]; no false
// negatives.
func (ed *EquiDepth) MatchRange(lo, hi float64) bool {
	if ed.Empty() || hi < lo {
		return false
	}
	if hi < ed.Bounds[0] || lo > ed.Bounds[len(ed.Bounds)-1] {
		return false
	}
	return true // every bucket is non-empty by construction
}

// CountRange estimates how many values fall in [lo,hi], pro-rating the
// partially covered buckets. On skewed data this is substantially more
// accurate than an equi-width histogram of the same size.
func (ed *EquiDepth) CountRange(lo, hi float64) float64 {
	if ed.Empty() || hi < lo {
		return 0
	}
	var sum float64
	for i, c := range ed.Counts {
		bLo, bHi := ed.Bounds[i], ed.Bounds[i+1]
		if bHi <= bLo {
			continue
		}
		oLo := math.Max(lo, bLo)
		oHi := math.Min(hi, bHi)
		if oHi <= oLo {
			continue
		}
		sum += float64(c) * (oHi - oLo) / (bHi - bLo)
	}
	return sum
}

// Min and Max return the data extremes (0,0 when empty).
func (ed *EquiDepth) Min() float64 {
	if ed.Empty() {
		return 0
	}
	return ed.Bounds[0]
}

// Max returns the largest recorded value.
func (ed *EquiDepth) Max() float64 {
	if ed.Empty() {
		return 0
	}
	return ed.Bounds[len(ed.Bounds)-1]
}

// Merge combines two equi-depth histograms into one with targetBuckets
// buckets, by merging their boundary/weight profiles and re-quantiling.
// The result is approximate (exact merging would need the raw values) but
// preserves totals exactly and extremes exactly.
func (ed *EquiDepth) Merge(other *EquiDepth, targetBuckets int) (*EquiDepth, error) {
	if targetBuckets <= 0 {
		return nil, fmt.Errorf("summary: equi-depth merge needs positive target buckets")
	}
	if other == nil || other.Empty() {
		return ed.Clone(), nil
	}
	if ed.Empty() {
		return other.Clone(), nil
	}
	// Build a piecewise-uniform density from both inputs, then re-sample
	// boundary points at the merged quantiles.
	type segment struct {
		lo, hi float64
		weight float64
	}
	var segs []segment
	collect := func(h *EquiDepth) {
		for i, c := range h.Counts {
			segs = append(segs, segment{lo: h.Bounds[i], hi: h.Bounds[i+1], weight: float64(c)})
		}
	}
	collect(ed)
	collect(other)
	sort.Slice(segs, func(i, j int) bool { return segs[i].lo < segs[j].lo })

	total := float64(ed.Total + other.Total)
	// Sample values at the center of equal-weight slices across segments.
	samples := make([]float64, 0, 4*targetBuckets)
	perSlice := total / float64(4*targetBuckets)
	var acc float64
	for _, s := range segs {
		if s.weight == 0 || s.hi <= s.lo {
			continue
		}
		remaining := s.weight
		for remaining > 0 {
			take := math.Min(remaining, perSlice-acc)
			remaining -= take
			acc += take
			if acc >= perSlice {
				frac := 1 - remaining/s.weight
				samples = append(samples, s.lo+frac*(s.hi-s.lo))
				acc = 0
			}
		}
	}
	if len(samples) == 0 {
		samples = append(samples, ed.Min(), other.Max())
	}
	merged, err := BuildEquiDepth(samples, targetBuckets)
	if err != nil {
		return nil, err
	}
	// Restore exact totals and extremes.
	lo := math.Min(ed.Min(), other.Min())
	hi := math.Max(ed.Max(), other.Max())
	merged.Bounds[0] = lo
	merged.Bounds[len(merged.Bounds)-1] = hi
	merged.Total = ed.Total + other.Total
	// Rescale counts so they sum back to the exact total.
	var cSum uint64
	for _, c := range merged.Counts {
		cSum += uint64(c)
	}
	if cSum > 0 {
		scale := float64(merged.Total) / float64(cSum)
		var running uint64
		for i := range merged.Counts {
			merged.Counts[i] = uint32(math.Round(float64(merged.Counts[i]) * scale))
			running += uint64(merged.Counts[i])
		}
		// Fix rounding drift on the last bucket.
		if running != merged.Total && len(merged.Counts) > 0 {
			diff := int64(merged.Total) - int64(running)
			last := int64(merged.Counts[len(merged.Counts)-1]) + diff
			if last < 0 {
				last = 0
			}
			merged.Counts[len(merged.Counts)-1] = uint32(last)
		}
	}
	return merged, nil
}

// Clone returns a deep copy.
func (ed *EquiDepth) Clone() *EquiDepth {
	c := &EquiDepth{Total: ed.Total}
	c.Bounds = append([]float64(nil), ed.Bounds...)
	c.Counts = append([]uint32(nil), ed.Counts...)
	return c
}

// SizeBytes is the wire size: 8 bytes per boundary, 4 per counter, plus an
// 8-byte header.
func (ed *EquiDepth) SizeBytes() int {
	return 8 + 8*len(ed.Bounds) + 4*len(ed.Counts)
}
