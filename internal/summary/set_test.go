package summary

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func TestValueSetBasics(t *testing.T) {
	s := NewValueSet()
	s.Add("MPEG2")
	s.Add("MPEG2")
	s.Add("H264")
	if !s.Contains("MPEG2") || !s.Contains("H264") {
		t.Fatal("added values must be contained")
	}
	if s.Contains("VP9") {
		t.Fatal("unadded value must not be contained")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d; want 2", s.Len())
	}
}

func TestValueSetRemove(t *testing.T) {
	s := NewValueSet()
	s.Add("x")
	s.Add("x")
	s.Remove("x")
	if !s.Contains("x") {
		t.Fatal("one occurrence should remain")
	}
	s.Remove("x")
	if s.Contains("x") {
		t.Fatal("value should be gone after removing last occurrence")
	}
	s.Remove("x") // removing absent value must be safe
	if s.Len() != 0 {
		t.Fatalf("Len = %d; want 0", s.Len())
	}
}

func TestValueSetMerge(t *testing.T) {
	a, b := NewValueSet(), NewValueSet()
	a.Add("x")
	b.Add("y")
	b.Add("x")
	a.Merge(b)
	if a.Counts["x"] != 2 || a.Counts["y"] != 1 {
		t.Fatalf("merge counts wrong: %v", a.Counts)
	}
	a.Merge(nil) // nil merge is a no-op
	if a.Len() != 2 {
		t.Fatal("nil merge changed set")
	}
}

func TestValueSetValuesSorted(t *testing.T) {
	s := NewValueSet()
	for _, v := range []string{"c", "a", "b"} {
		s.Add(v)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[0] != "a" || vals[1] != "b" || vals[2] != "c" {
		t.Fatalf("Values = %v; want [a b c]", vals)
	}
}

func TestValueSetCloneEqual(t *testing.T) {
	s := NewValueSet()
	s.Add("x")
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone should be Equal")
	}
	c.Add("y")
	if s.Equal(c) {
		t.Fatal("diverged clone should not be Equal")
	}
	if s.Equal(nil) {
		t.Fatal("Equal(nil) must be false")
	}
	// Same length, different values.
	d := NewValueSet()
	d.Add("z")
	if s.Equal(d) {
		t.Fatal("different values should not be Equal")
	}
}

func TestValueSetSizeBytes(t *testing.T) {
	s := NewValueSet()
	s.Add("abcd")
	if got := s.SizeBytes(); got != 4+4+4 {
		t.Fatalf("SizeBytes = %d; want 12", got)
	}
}

func TestBloomBasics(t *testing.T) {
	b := MustBloom(1024, 4)
	b.Add("MPEG2")
	if !b.Contains("MPEG2") {
		t.Fatal("added value must be contained (no false negatives)")
	}
	if b.N != 1 {
		t.Fatalf("N = %d; want 1", b.N)
	}
}

func TestBloomValidation(t *testing.T) {
	if _, err := NewBloom(0, 4); err == nil {
		t.Fatal("expected error for zero bits")
	}
	if _, err := NewBloom(64, 0); err == nil {
		t.Fatal("expected error for zero hashes")
	}
}

func TestBloomMerge(t *testing.T) {
	a, b := MustBloom(512, 3), MustBloom(512, 3)
	a.Add("x")
	b.Add("y")
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !a.Contains("x") || !a.Contains("y") {
		t.Fatal("merged bloom must contain both sides' values")
	}
	if err := a.Merge(MustBloom(1024, 3)); err == nil {
		t.Fatal("expected error merging incompatible geometry")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge should be no-op, got %v", err)
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	b := OptimalBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add("member-" + strconv.Itoa(i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.Contains("nonmember-" + strconv.Itoa(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high for target 0.01", rate)
	}
	if est := b.FalsePositiveRate(); est > 0.05 {
		t.Fatalf("estimated fp rate %.4f too high", est)
	}
}

func TestBloomCloneResetEqual(t *testing.T) {
	b := MustBloom(256, 2)
	b.Add("x")
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone should be Equal")
	}
	c.Add("different-value-that-changes-bits")
	if b.Equal(c) {
		t.Fatal("diverged clone should not be Equal")
	}
	c.Reset()
	if c.N != 0 || c.FillRatio() != 0 {
		t.Fatal("Reset should clear all state")
	}
	if b.Equal(nil) {
		t.Fatal("Equal(nil) must be false")
	}
}

func TestBloomSizeBytesConstant(t *testing.T) {
	b := MustBloom(1024, 4)
	before := b.SizeBytes()
	for i := 0; i < 500; i++ {
		b.Add(strconv.Itoa(i))
	}
	if b.SizeBytes() != before {
		t.Fatal("bloom size must be constant regardless of elements")
	}
}

// Property: Bloom filters never produce false negatives.
func TestBloomNoFalseNegativesQuick(t *testing.T) {
	f := func(vals []string) bool {
		b := MustBloom(2048, 3)
		for _, v := range vals {
			b.Add(v)
		}
		for _, v := range vals {
			if !b.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: merged bloom contains everything either side contained.
func TestBloomMergeSupersetQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := MustBloom(1024, 3), MustBloom(1024, 3)
		var all []string
		for i := 0; i < 20; i++ {
			v := strconv.FormatUint(rng.Uint64(), 16)
			all = append(all, v)
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		for _, v := range all {
			if !a.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
