package summary

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"roads/internal/record"
)

func mixedSchema() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "rate", Kind: record.Numeric},
		{Name: "res", Kind: record.Numeric},
		{Name: "enc", Kind: record.Categorical},
	})
}

func mkRec(s *record.Schema, rate, res float64, enc string) *record.Record {
	r := record.New(s, "r", "o")
	r.SetNum(0, rate)
	r.SetNum(1, res)
	r.SetStr(2, enc)
	return r
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.Buckets = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero buckets")
	}
	bad = cfg
	bad.Min, bad.Max = 1, 1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for empty domain")
	}
	bad = cfg
	bad.Categorical = UseBloom
	bad.BloomBits = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for bloom mode without bits")
	}
}

func TestFromRecordsAndMatch(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	cfg.Buckets = 100
	sum, err := FromRecords(s, cfg, []*record.Record{
		mkRec(s, 0.10, 0.64, "MPEG2"),
		mkRec(s, 0.20, 0.32, "H264"),
	})
	if err != nil {
		t.Fatalf("FromRecords: %v", err)
	}
	if sum.Records != 2 {
		t.Fatalf("Records = %d; want 2", sum.Records)
	}
	if !sum.MatchRange(0, 0.05, 0.15) {
		t.Fatal("rate 0.10 should match [0.05,0.15]")
	}
	if sum.MatchRange(0, 0.5, 0.9) {
		t.Fatal("no rates in [0.5,0.9]")
	}
	if !sum.MatchEq(2, "MPEG2") || sum.MatchEq(2, "VP9") {
		t.Fatal("categorical matching wrong")
	}
}

func TestSummaryBloomMode(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	cfg.Categorical = UseBloom
	sum := MustNew(s, cfg)
	sum.AddRecord(mkRec(s, 0.5, 0.5, "MPEG2"))
	if !sum.MatchEq(2, "MPEG2") {
		t.Fatal("bloom-mode summary must contain added value")
	}
	if err := sum.RemoveRecord(mkRec(s, 0.5, 0.5, "MPEG2")); err == nil {
		t.Fatal("RemoveRecord must fail in bloom mode")
	}
}

func TestSummarySubtractable(t *testing.T) {
	s := mixedSchema()
	if sum := MustNew(s, DefaultConfig()); !sum.Subtractable() {
		t.Fatal("ValueSet-mode summary must be subtractable (histogram + exact set counts)")
	}
	cfg := DefaultConfig()
	cfg.Categorical = UseBloom
	if sum := MustNew(s, cfg); sum.Subtractable() {
		t.Fatal("Bloom-mode summary must not claim subtractability")
	}
	// A schema with no categorical attributes carries no Blooms even in
	// Bloom mode, so it stays subtractable.
	numOnly := record.DefaultSchema(2)
	if sum := MustNew(numOnly, cfg); !sum.Subtractable() {
		t.Fatal("bloom mode without categorical attributes must stay subtractable")
	}
}

func TestSummaryRemoveRecord(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	sum := MustNew(s, cfg)
	r := mkRec(s, 0.5, 0.5, "X")
	sum.AddRecord(r)
	if err := sum.RemoveRecord(r); err != nil {
		t.Fatalf("RemoveRecord: %v", err)
	}
	if !sum.Empty() {
		t.Fatal("summary should be empty after removing only record")
	}
	if sum.MatchEq(2, "X") {
		t.Fatal("removed categorical value should be gone")
	}
}

func TestSummaryMergeAggregation(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	cfg.Buckets = 50
	a := MustNew(s, cfg)
	b := MustNew(s, cfg)
	a.AddRecord(mkRec(s, 0.1, 0.2, "A"))
	b.AddRecord(mkRec(s, 0.9, 0.8, "B"))
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Records != 2 {
		t.Fatalf("Records = %d; want 2", a.Records)
	}
	if !a.MatchRange(0, 0.85, 0.95) || !a.MatchEq(2, "B") {
		t.Fatal("merged summary must cover b's data")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestSummaryMergeSchemaMismatch(t *testing.T) {
	cfg := DefaultConfig()
	a := MustNew(record.DefaultSchema(4), cfg)
	b := MustNew(record.DefaultSchema(8), cfg)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected error merging different schema arity")
	}
}

func TestSummarySoftState(t *testing.T) {
	s := mixedSchema()
	sum := MustNew(s, DefaultConfig())
	now := time.Unix(1000, 0)
	sum.Touch(now, time.Minute)
	if sum.Version != 1 {
		t.Fatalf("Version = %d; want 1", sum.Version)
	}
	if sum.Expired(now.Add(30 * time.Second)) {
		t.Fatal("should not be expired before TTL")
	}
	if !sum.Expired(now.Add(2 * time.Minute)) {
		t.Fatal("should be expired after TTL")
	}
	fresh := MustNew(s, DefaultConfig())
	if fresh.Expired(now) {
		t.Fatal("zero-expiry summary never expires")
	}
}

func TestSummaryCloneIndependence(t *testing.T) {
	s := mixedSchema()
	sum := MustNew(s, DefaultConfig())
	sum.AddRecord(mkRec(s, 0.5, 0.5, "X"))
	c := sum.Clone()
	if !sum.Equal(c) {
		t.Fatal("clone should be Equal")
	}
	c.AddRecord(mkRec(s, 0.9, 0.9, "Y"))
	if sum.Equal(c) {
		t.Fatal("diverged clone should not be Equal")
	}
	if sum.MatchEq(2, "Y") {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestSummarySizeConstantInRecords(t *testing.T) {
	s := record.DefaultSchema(16)
	cfg := DefaultConfig()
	sum := MustNew(s, cfg)
	size0 := sum.SizeBytes()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		r := record.New(s, strconv.Itoa(i), "o")
		for j := 0; j < 16; j++ {
			r.SetNum(j, rng.Float64())
		}
		sum.AddRecord(r)
	}
	if sum.SizeBytes() != size0 {
		t.Fatalf("numeric-only summary size changed with records: %d -> %d", size0, sum.SizeBytes())
	}
	// The paper's key constant: 16 attrs x (16 + 4*1000) + 24 header.
	want := 24 + 16*(16+4*1000)
	if sum.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d; want %d", sum.SizeBytes(), want)
	}
}

// Property: aggregation preserves query evaluation soundness — if a record
// is in any input summary, the merged summary matches a range around it.
func TestSummaryMergeSoundnessQuick(t *testing.T) {
	s := record.DefaultSchema(4)
	cfg := DefaultConfig()
	cfg.Buckets = 64
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := make([]*Summary, 3)
		var recs []*record.Record
		for p := range parts {
			parts[p] = MustNew(s, cfg)
			for i := 0; i < 5; i++ {
				r := record.New(s, "r", "o")
				for j := 0; j < 4; j++ {
					r.SetNum(j, rng.Float64())
				}
				parts[p].AddRecord(r)
				recs = append(recs, r)
			}
		}
		merged := MustNew(s, cfg)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				return false
			}
		}
		for _, r := range recs {
			for j := 0; j < 4; j++ {
				v := r.Num(j)
				if !merged.MatchRange(j, v-0.01, v+0.01) {
					return false
				}
			}
		}
		return merged.Records == 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
