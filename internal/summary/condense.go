package summary

import (
	"sort"
	"strings"
)

// Heuristic value-set condensation for hierarchical (dotted/path-structured)
// categorical values, after Portnoi & Swany's IP-summarization algorithm for
// hierarchical directory services: when a subtree of the value namespace is
// dense, its members collapse into a single prefix wildcard ("grid.site-7.*")
// instead of degenerating into a Bloom filter at moderate cardinality.
// Wildcards are conservative — MatchEq probes every dotted prefix of the
// queried value — so condensation trades precision (false positives inside
// the collapsed subtree) for size, never recall.

// wildcardSuffix marks a condensed prefix wildcard value.
const wildcardSuffix = ".*"

// IsWildcard reports whether v is a condensed prefix wildcard.
func IsWildcard(v string) bool { return strings.HasSuffix(v, wildcardSuffix) }

// WildcardPrefix returns the prefix a wildcard covers ("a.b.*" → "a.b");
// for non-wildcards it returns v itself.
func WildcardPrefix(v string) string { return strings.TrimSuffix(v, wildcardSuffix) }

// MatchesWildcard reports whether wildcard w covers value v: "p.*" matches
// p itself and everything under "p.".
func MatchesWildcard(w, v string) bool {
	if !IsWildcard(w) {
		return w == v
	}
	p := WildcardPrefix(w)
	return v == p || strings.HasPrefix(v, p+".")
}

// parentPrefix strips the last dotted segment: "a.b.c" → "a.b", "a" → "".
// For wildcards it strips the covered prefix's last segment ("a.b.*" → "a").
func parentPrefix(v string) string {
	v = WildcardPrefix(v)
	i := strings.LastIndexByte(v, '.')
	if i < 0 {
		return ""
	}
	return v[:i]
}

// Condense collapses sibling values into prefix wildcards until at most
// maxLen distinct values remain (or nothing more is collapsible): each
// round groups values by parent prefix, picks the densest group with at
// least two members (ties broken by prefix for determinism), and replaces
// the group with parent+".*" carrying the summed count. Wildcards collapse
// upward the same way ("a.b.*"+"a.c.*" → "a.*"). Returns whether the set
// changed. The algorithm is deterministic, so condensing a merge of exact
// partials equals condensing a monolithic rebuild.
func (s *ValueSet) Condense(maxLen int) bool {
	if maxLen <= 0 || len(s.Counts) <= maxLen {
		return false
	}
	changed := false
	for len(s.Counts) > maxLen {
		groups := make(map[string][]string)
		for v := range s.Counts {
			if p := parentPrefix(v); p != "" {
				groups[p] = append(groups[p], v)
			}
		}
		best := ""
		for p, members := range groups {
			if len(members) < 2 {
				continue
			}
			if best == "" || len(members) > len(groups[best]) ||
				(len(members) == len(groups[best]) && p < best) {
				best = p
			}
		}
		if best == "" {
			break
		}
		members := groups[best]
		sort.Strings(members)
		var total uint32
		for _, v := range members {
			total += s.Counts[v]
			delete(s.Counts, v)
			if IsWildcard(v) {
				s.wild--
			}
		}
		w := best + wildcardSuffix
		if s.Counts[w] == 0 {
			s.wild++
		}
		s.Counts[w] += total
		changed = true
	}
	return changed
}

// Condense applies value-set condensation (Cfg.CondenseAbove) to every
// categorical attribute. It must run before ComputeVersion so the stamped
// version reflects the condensed content. Returns whether anything changed.
func (sum *Summary) Condense() bool {
	if sum.Cfg.CondenseAbove <= 0 {
		return false
	}
	changed := false
	for _, s := range sum.Sets {
		if s != nil && s.Condense(sum.Cfg.CondenseAbove) {
			changed = true
		}
	}
	return changed
}

// HasWildcards reports whether any attribute's value set holds condensed
// wildcards (the wire layer flags such summaries so pre-v6 peers are never
// asked to evaluate them).
func (sum *Summary) HasWildcards() bool {
	for _, s := range sum.Sets {
		if s != nil && s.HasWildcards() {
			return true
		}
	}
	return false
}

// FlattenTo re-expresses the summary in the exact uniform geometry of base,
// for emission to peers that predate adaptive summaries. Histograms
// resample to base.Buckets; Blooms fold/smear/saturate to base's bit count;
// a value set holding condensed wildcards cannot be evaluated by a legacy
// peer (it probes only the exact value — a silent false negative), so it is
// replaced by a saturated Bloom: match-anything is conservative and costs
// only extra descents into this branch. The result is stamped with a fresh
// content version.
func (sum *Summary) FlattenTo(base Config) (*Summary, error) {
	base.Resolution = nil
	base.CondenseAbove = 0
	out, err := New(sum.Schema, base)
	if err != nil {
		return nil, err
	}
	for i := range sum.Hists {
		switch {
		case sum.Hists[i] != nil:
			if err := out.Hists[i].MergeResample(sum.Hists[i]); err != nil {
				return nil, err
			}
		case sum.Blooms[i] != nil:
			if out.Blooms[i] == nil {
				// Base is value-set mode but this attribute already
				// degraded to a Bloom upstream; carry a base-geometry Bloom.
				out.Sets[i] = nil
				out.Blooms[i] = MustBloom(base.BloomBits, base.BloomHashes)
			}
			out.Blooms[i].MergeAny(sum.Blooms[i])
		case sum.Sets[i] != nil:
			if sum.Sets[i].HasWildcards() {
				out.Sets[i] = nil
				out.Blooms[i] = MustBloom(base.BloomBits, base.BloomHashes)
				out.Blooms[i].Saturate()
				out.Blooms[i].N = uint64(sum.Sets[i].Len())
			} else if out.Sets[i] != nil {
				out.Sets[i].Merge(sum.Sets[i])
			} else {
				mergeSetIntoBloom(out.Blooms[i], sum.Sets[i])
			}
		}
	}
	out.Records = sum.Records
	out.Origin = sum.Origin
	out.Expires = sum.Expires
	out.ComputeVersion()
	return out, nil
}
