package summary

import (
	"fmt"
	"testing"

	"roads/internal/record"
)

func planSchema() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "hot", Kind: record.Numeric},
		{Name: "cold", Kind: record.Numeric},
		{Name: "enc", Kind: record.Categorical},
	})
}

func levelOf(plan []AttrResolution, attr string) (AttrResolution, bool) {
	for _, r := range plan {
		if r.Attr == attr {
			return r, true
		}
	}
	return AttrResolution{}, false
}

// TestPlannerHeatClimbsLadder is the core feedback loop: concentrated
// false-positive heat raises one attribute's resolution one step per
// replan up to the ladder cap, while starved attributes step down, and the
// resulting overrides are the ×2 ladder geometry.
func TestPlannerHeatClimbsLadder(t *testing.T) {
	base := DefaultConfig()
	base.Buckets = 32
	base.Categorical = UseBloom
	base.BloomBits = 256
	base.BloomHashes = 4
	p := NewPlanner(base, 0)
	s := planSchema()
	heat := map[string]float64{"hot": 100, "cold": 0, "enc": 0}

	var plan []AttrResolution
	for i := 0; i < 5; i++ {
		plan = p.Replan(s, heat)
	}
	r, ok := levelOf(plan, "hot")
	if !ok || r.Buckets != 32*4 {
		t.Fatalf("hot attribute plan = %+v (ok %v); want buckets %d (level +2 cap)", r, ok, 32*4)
	}
	if lv := p.Levels()["hot"]; lv != p.MaxLevel {
		t.Fatalf("hot level %d, want capped at %d", lv, p.MaxLevel)
	}
	if lv := p.Levels()["cold"]; lv != p.MinLevel {
		t.Fatalf("cold level %d, want floored at %d", lv, p.MinLevel)
	}
	if r, ok := levelOf(plan, "cold"); ok && r.Buckets >= 32 {
		t.Fatalf("cold attribute must coarsen below base, got %+v", r)
	}
	// Bloom attribute at min level still floors at a power of two >= 64.
	if r, ok := levelOf(plan, "enc"); ok {
		if r.BloomBits < minPlanBloomBits || r.BloomBits&(r.BloomBits-1) != 0 {
			t.Fatalf("enc bloom bits %d: want power of two >= %d", r.BloomBits, minPlanBloomBits)
		}
	}
}

// TestPlannerHysteresis pins the Schmitt trigger: heat hovering inside the
// (Lo, Hi) fair-share band moves nothing, so resolution cannot flap on
// noise around the mean.
func TestPlannerHysteresis(t *testing.T) {
	base := DefaultConfig()
	base.Buckets = 32
	p := NewPlanner(base, 0)
	s := planSchema()
	// Equal heat = exactly fair share everywhere: inside the band.
	for i := 0; i < 4; i++ {
		if plan := p.Replan(s, map[string]float64{"hot": 10, "cold": 10, "enc": 10}); plan != nil {
			t.Fatalf("replan %d under uniform heat produced overrides: %+v", i, plan)
		}
	}
	// Mild imbalance (1.5x / 0.75x fair) still sits inside (0.5, 2.0).
	if plan := p.Replan(s, map[string]float64{"hot": 15, "cold": 7.5, "enc": 7.5}); plan != nil {
		t.Fatalf("mild imbalance inside the hysteresis band moved the plan: %+v", plan)
	}
}

// TestPlannerZeroHeatDriftsToBase checks the decay path: with feedback
// gone, levels walk one step per replan back to zero and the plan returns
// to nil — the wire-identical static configuration. This is also what
// makes DisableAdaptiveSummaries safe to toggle: no residual geometry.
func TestPlannerZeroHeatDriftsToBase(t *testing.T) {
	base := DefaultConfig()
	base.Buckets = 32
	base.Categorical = UseBloom
	base.BloomBits = 256
	p := NewPlanner(base, 0)
	s := planSchema()
	for i := 0; i < 3; i++ {
		p.Replan(s, map[string]float64{"hot": 100})
	}
	if p.Levels()["hot"] == 0 {
		t.Fatal("setup: hot attribute never climbed")
	}
	var plan []AttrResolution
	for i := 0; i < 4; i++ {
		plan = p.Replan(s, nil)
	}
	if plan != nil {
		t.Fatalf("plan after zero-heat decay = %+v; want nil (static baseline)", plan)
	}
	for name, lv := range p.Levels() {
		if lv != 0 {
			t.Fatalf("attribute %s stuck at level %d after decay", name, lv)
		}
	}
}

// TestPlannerBudgetShedsColdest: when the byte budget cannot fit the
// desired plan, resolution is shed from the coldest attributes first and
// the final plan fits the budget.
func TestPlannerBudgetShedsColdest(t *testing.T) {
	base := DefaultConfig()
	base.Buckets = 64
	base.Categorical = UseBloom
	base.BloomBits = 1024
	base.BloomHashes = 4
	s := planSchema()
	// Budget exactly fits all three attributes at base level.
	baseSize := 0
	free := NewPlanner(base, 0)
	for i := 0; i < s.NumAttrs(); i++ {
		baseSize += free.attrSizeAt(s.Attr(i), 0)
	}
	p := NewPlanner(base, baseSize)
	heat := map[string]float64{"hot": 90, "cold": 10, "enc": 0}
	plan := p.Replan(s, heat)
	size := 0
	for i := 0; i < s.NumAttrs(); i++ {
		size += p.attrSizeAt(s.Attr(i), p.Levels()[s.Attr(i).Name])
	}
	if size > baseSize {
		t.Fatalf("plan size %d exceeds budget %d", size, baseSize)
	}
	// The hot attribute kept its raise; the cold ones paid for it.
	if lv := p.Levels()["hot"]; lv != 1 {
		t.Fatalf("hot level %d, want 1 (raised within budget)", lv)
	}
	if p.Levels()["cold"] >= 0 && p.Levels()["enc"] >= 0 {
		t.Fatalf("no cold attribute shed resolution: levels %v, plan %+v", p.Levels(), plan)
	}
}

// TestBloomSizing pins the power-of-two ladder precondition on the
// feedback-driven Bloom sizing.
func TestBloomSizing(t *testing.T) {
	nbits, k := BloomSizing(1000, 0.01)
	if nbits&(nbits-1) != 0 || nbits < minPlanBloomBits {
		t.Fatalf("BloomSizing bits %d: want power of two >= %d", nbits, minPlanBloomBits)
	}
	if k < 1 {
		t.Fatalf("BloomSizing hashes %d: want >= 1", k)
	}
	// More elements at the same target FPR can never shrink the filter.
	nbits2, _ := BloomSizing(10000, 0.01)
	if nbits2 < nbits {
		t.Fatalf("sizing shrank with more elements: %d -> %d", nbits, nbits2)
	}
}

// TestValueSetCondense covers the Portnoi&Swany-style collapse: a dense
// sibling subtree folds into one prefix wildcard with the summed count,
// matching stays conservative, and the operation is deterministic.
func TestValueSetCondense(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	cfg.Buckets = 8
	cfg.CondenseAbove = 4
	sum := MustNew(s, cfg)
	vals := []string{
		"grid.site7.n1", "grid.site7.n2", "grid.site7.n3", "grid.site7.n4",
		"grid.site9.n1", "cloud.z1",
	}
	for i, v := range vals {
		sum.AddRecord(mkRec(s, float64(i)/10, 0.5, v))
	}
	if !sum.Condense() {
		t.Fatal("condense reported no change over a 6-value set with limit 4")
	}
	set := sum.Sets[2]
	if set.Len() > 4 {
		t.Fatalf("condensed set still holds %d values", set.Len())
	}
	if !set.HasWildcards() || !sum.HasWildcards() {
		t.Fatal("condensation must introduce wildcards")
	}
	if c := set.Counts["grid.site7.*"]; c != 4 {
		t.Fatalf("wildcard count %d, want 4 (sum of collapsed members)", c)
	}
	// Conservative matching: members of the collapsed subtree still match,
	// the untouched exact values still match, unrelated values do not.
	for _, v := range []string{"grid.site7.n1", "grid.site7.brand-new", "grid.site9.n1", "cloud.z1"} {
		if !sum.MatchEq(2, v) {
			t.Fatalf("condensed summary must match %q", v)
		}
	}
	if sum.MatchEq(2, "cloud.z2") {
		t.Fatal("condensation must not smear across unrelated subtrees")
	}
}

// TestCondenseDeterminism: condensing a merge of exact partials equals
// condensing a monolithic build — the property the sharded store's export
// cache and the version-suppression protocol both rest on.
func TestCondenseDeterminism(t *testing.T) {
	s := mixedSchema()
	cfg := DefaultConfig()
	cfg.Buckets = 8
	cfg.CondenseAbove = 3
	recs := make([]*record.Record, 0, 12)
	for i := 0; i < 12; i++ {
		recs = append(recs, mkRec(s, float64(i)/12, 0.5, fmt.Sprintf("dc%d.rack%d.h%d", i%2, i%3, i)))
	}
	mono, err := FromRecords(s, cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	merged := MustNew(s, cfg)
	for part := 0; part < 3; part++ {
		ps := MustNew(s, cfg)
		ps.Cfg.CondenseAbove = 0 // partials stay exact, like shard partials
		for i := part; i < 12; i += 3 {
			ps.AddRecord(recs[i])
		}
		if err := merged.Merge(ps); err != nil {
			t.Fatal(err)
		}
	}
	merged.Condense()
	if merged.ComputeVersion() != mono.ComputeVersion() {
		t.Fatal("condense(merge(exact partials)) != condense(monolithic build)")
	}
}

// TestFlattenTo checks the legacy-peer emission path: adaptive geometry
// resamples back to the base, wildcard-holding value sets become saturated
// Blooms (conservative, never a silent false negative on a legacy peer),
// and the flattened copy carries a fresh deterministic version distinct
// from the adaptive original's.
func TestFlattenTo(t *testing.T) {
	s := mixedSchema()
	base := DefaultConfig()
	base.Buckets = 16
	adaptive := base
	adaptive.Resolution = []AttrResolution{{Attr: "rate", Buckets: 64}}
	adaptive.CondenseAbove = 2
	sum := MustNew(s, adaptive)
	for i := 0; i < 8; i++ {
		// Two sibling subtrees of four leaves each: condensable to two
		// prefix wildcards.
		sum.AddRecord(mkRec(s, float64(i)/8, 0.5, fmt.Sprintf("dom.sub%d.n%d", i%2, i)))
	}
	sum.Condense()
	if !sum.HasWildcards() {
		t.Fatal("setup: condensation produced no wildcards")
	}
	sum.Origin = "srv1"
	sum.ComputeVersion()

	flat, err := sum.FlattenTo(base)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Cfg.Uniform() || flat.Cfg.CondenseAbove != 0 {
		t.Fatal("flattened summary must carry the uniform base config")
	}
	if len(flat.Hists[0].Counts) != base.Buckets {
		t.Fatalf("flattened histogram has %d buckets, want %d", len(flat.Hists[0].Counts), base.Buckets)
	}
	if flat.Hists[0].Total != sum.Hists[0].Total {
		t.Fatal("resampling lost histogram mass")
	}
	if flat.Sets[2] != nil || flat.Blooms[2] == nil || !flat.Blooms[2].Saturated() {
		t.Fatal("wildcard set must flatten to a saturated Bloom")
	}
	if !flat.MatchEq(2, "dom.sub3.leaf") || !flat.MatchEq(2, "anything-at-all") {
		t.Fatal("saturated flatten must be conservative (match everything)")
	}
	if flat.Records != sum.Records || flat.Origin != sum.Origin {
		t.Fatal("flatten must preserve records and origin")
	}
	if flat.Version == 0 || flat.Version == sum.Version {
		t.Fatalf("flattened version %d must be fresh and distinct from source %d", flat.Version, sum.Version)
	}
	// Determinism: flattening the same content twice yields the same version
	// (the replica version-suppression protocol keys on it).
	flat2, err := sum.FlattenTo(base)
	if err != nil {
		t.Fatal(err)
	}
	if flat2.Version != flat.Version {
		t.Fatal("FlattenTo version is not deterministic")
	}
}

// TestMatchesWildcard pins the wildcard matching semantics MatchEq probes
// rely on.
func TestMatchesWildcard(t *testing.T) {
	cases := []struct {
		w, v string
		want bool
	}{
		{"a.b.*", "a.b.c", true},
		{"a.b.*", "a.b", true},
		{"a.b.*", "a.b.c.d", true},
		{"a.b.*", "a.bc", false},
		{"a.b.*", "a", false},
		{"a.b", "a.b", true},
		{"a.b", "a.b.c", false},
	}
	for _, c := range cases {
		if got := MatchesWildcard(c.w, c.v); got != c.want {
			t.Fatalf("MatchesWildcard(%q, %q) = %v, want %v", c.w, c.v, got, c.want)
		}
	}
}
