package summary

import (
	"math"

	"roads/internal/record"
)

// Adaptive resolution planning (ROADMAP item 3): summary resolution becomes
// a closed loop driven by query feedback. Each server counts, per
// attribute, the false-positive descents its exported summary attracted (a
// peer descended because the summary matched, then found nothing). On the
// aggregation tick the Planner converts that heat into a resolution plan
// within a fixed byte budget: hot attributes climb a ×2 resolution ladder
// (finer histogram buckets, larger Bloom filters), cold attributes descend
// it, and a Schmitt-trigger hysteresis band keeps the plan from flapping
// when heat hovers near the fair share.

// DefaultPlanHi and DefaultPlanLo are the hysteresis thresholds, expressed
// as multiples of the fair per-attribute heat share: an attribute's
// resolution steps up only above Hi x fair share and down only below
// Lo x fair share, so the band between them is sticky.
const (
	DefaultPlanHi = 2.0
	DefaultPlanLo = 0.5
)

// minPlanBuckets floors the histogram ladder so a cold attribute never
// coarsens into uselessness.
const minPlanBuckets = 8

// minPlanBloomBits floors the Bloom ladder at one word.
const minPlanBloomBits = 64

// Planner turns per-attribute false-positive heat into resolution plans.
// It is stateful: each attribute carries a ladder level in
// [MinLevel,MaxLevel] (geometry multiplier 2^level) that moves at most one
// step per Replan, which together with the hysteresis band prevents
// resolution flapping. A Planner is not safe for concurrent use.
type Planner struct {
	Base   Config
	Budget int     // byte budget across plannable attributes; 0 = unbounded
	Hi, Lo float64 // hysteresis thresholds (multiples of fair share)

	MinLevel, MaxLevel int

	levels map[string]int
}

// NewPlanner creates a planner over the given base geometry and byte
// budget with the default ladder ([-2,+2]) and hysteresis band.
func NewPlanner(base Config, budget int) *Planner {
	return &Planner{
		Base: base, Budget: budget,
		Hi: DefaultPlanHi, Lo: DefaultPlanLo,
		MinLevel: -2, MaxLevel: 2,
		levels: make(map[string]int),
	}
}

// plannable reports whether attribute a's geometry is under planner
// control: numeric attributes always (bucket count), categorical ones only
// in Bloom mode (bit count) — exact value sets have no resolution to trade.
func (p *Planner) plannable(a record.Attribute) bool {
	if a.Kind == record.Numeric {
		return true
	}
	return p.Base.Categorical == UseBloom
}

// bucketsAt returns the histogram bucket count at a ladder level.
func (p *Planner) bucketsAt(level int) int {
	b := p.Base.Buckets
	for ; level > 0; level-- {
		b *= 2
	}
	for ; level < 0; level++ {
		b /= 2
	}
	if b < minPlanBuckets {
		b = minPlanBuckets
	}
	return b
}

// bloomBitsAt returns the Bloom bit count at a ladder level. The base is
// rounded up to a power of two so every pair of ladder sizes divides —
// the precondition for Bloom fold/smear merges staying conservative.
func (p *Planner) bloomBitsAt(level int) int {
	b := pow2Ceil(p.Base.BloomBits)
	for ; level > 0; level-- {
		b *= 2
	}
	for ; level < 0; level++ {
		b /= 2
	}
	if b < minPlanBloomBits {
		b = minPlanBloomBits
	}
	return b
}

// attrSizeAt estimates the wire bytes attribute a costs at a ladder level
// (mirrors Histogram.SizeBytes / Bloom.SizeBytes).
func (p *Planner) attrSizeAt(a record.Attribute, level int) int {
	if a.Kind == record.Numeric {
		return 16 + 4*p.bucketsAt(level)
	}
	return 8 + p.bloomBitsAt(level)/8
}

// Replan moves each plannable attribute at most one ladder step according
// to its share of the false-positive heat, then walks the plan back down
// (coldest attributes first) until it fits the byte budget. It returns the
// resolution overrides to install, or nil when every attribute sits at the
// base level — a nil plan is byte-identical to the static configuration on
// the wire. With zero heat everywhere, levels drift one step per call back
// toward base, so disabling feedback converges to the static baseline.
func (p *Planner) Replan(schema *record.Schema, heat map[string]float64) []AttrResolution {
	attrs := make([]record.Attribute, 0, schema.NumAttrs())
	var total float64
	for i := 0; i < schema.NumAttrs(); i++ {
		a := schema.Attr(i)
		if p.plannable(a) {
			attrs = append(attrs, a)
			total += heat[a.Name]
		}
	}
	if len(attrs) == 0 {
		return nil
	}
	if total <= 0 {
		for _, a := range attrs {
			if l := p.levels[a.Name]; l > 0 {
				p.levels[a.Name] = l - 1
			} else if l < 0 {
				p.levels[a.Name] = l + 1
			}
		}
		return p.plan(attrs)
	}
	fair := total / float64(len(attrs))
	for _, a := range attrs {
		h, l := heat[a.Name], p.levels[a.Name]
		switch {
		case h > p.Hi*fair && l < p.MaxLevel:
			p.levels[a.Name] = l + 1
		case h < p.Lo*fair && l > p.MinLevel:
			p.levels[a.Name] = l - 1
		}
	}
	// Budget pass: shed resolution from the coldest attributes first.
	if p.Budget > 0 {
		for {
			size := 0
			for _, a := range attrs {
				size += p.attrSizeAt(a, p.levels[a.Name])
			}
			if size <= p.Budget {
				break
			}
			victim := -1
			for i, a := range attrs {
				if p.levels[a.Name] <= p.MinLevel {
					continue
				}
				if victim < 0 || heat[a.Name] < heat[attrs[victim].Name] {
					victim = i
				}
			}
			if victim < 0 {
				break // floor everywhere; budget is simply too small
			}
			p.levels[attrs[victim].Name]--
		}
	}
	return p.plan(attrs)
}

// plan materializes the current levels as resolution overrides.
func (p *Planner) plan(attrs []record.Attribute) []AttrResolution {
	var out []AttrResolution
	for _, a := range attrs {
		l := p.levels[a.Name]
		if l == 0 {
			continue
		}
		r := AttrResolution{Attr: a.Name}
		if a.Kind == record.Numeric {
			r.Buckets = p.bucketsAt(l)
		} else {
			r.BloomBits = p.bloomBitsAt(l)
			r.BloomHashes = p.Base.BloomHashes
		}
		out = append(out, r)
	}
	return out
}

// Levels exposes a copy of the current ladder state, for metrics.
func (p *Planner) Levels() map[string]int {
	out := make(map[string]int, len(p.levels))
	for k, v := range p.levels {
		out[k] = v
	}
	return out
}

// BloomSizing picks wire-ladder-compatible Bloom geometry for n expected
// elements at target false-positive probability p: the standard optimal
// sizing (OptimalBloom), with the bit count rounded up to a power of two
// so adaptive resizing can fold/smear it conservatively.
func BloomSizing(n int, fpr float64) (nbits, k int) {
	b := OptimalBloom(n, fpr)
	return pow2Ceil(int(b.NumBit)), int(b.Hashes)
}

// pow2Ceil rounds n up to the next power of two (minimum 64, keeping the
// result word-aligned for the Bloom bit array).
func pow2Ceil(n int) int {
	p := minPlanBloomBits
	for p < n && p < math.MaxInt/2 {
		p *= 2
	}
	return p
}
