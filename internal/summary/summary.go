// Package summary implements ROADS's constant-size resource summaries
// (paper §II-B): per-attribute histograms — equi-width or equi-depth —
// for numeric attributes, and value sets or Bloom filters for categorical
// ones. A Summary is what an owner voluntarily exports instead of its raw
// records, what servers merge bottom-up into branch summaries, and what
// the replication overlay copies across the hierarchy. The essential
// property, relied on by query routing, is that summaries never produce
// false negatives: if any summarized record matches a query, the summary
// matches it too.
package summary

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"roads/internal/record"
)

// CategoricalMode selects how categorical attributes are summarized.
type CategoricalMode uint8

const (
	// UseValueSet enumerates distinct values exactly (paper's default when
	// the vocabulary is small).
	UseValueSet CategoricalMode = iota
	// UseBloom summarizes with a constant-size Bloom filter.
	UseBloom
)

// AttrResolution overrides the summary geometry for one attribute. The
// adaptive planner emits these to spend a fixed byte budget where query
// feedback says false positives concentrate: hot numeric attributes get
// finer buckets, hot Bloom attributes more bits, cold ones coarser/smaller.
type AttrResolution struct {
	Attr        string
	Buckets     int // numeric attrs; 0 = inherit Config.Buckets
	BloomBits   int // categorical attrs in Bloom mode; 0 = inherit
	BloomHashes int // 0 = inherit Config.BloomHashes
}

// Config controls summary construction. The zero value is not usable; use
// DefaultConfig or fill every field.
type Config struct {
	// Buckets is the histogram bucket count per numeric attribute. The
	// paper's simulations use 1000; its analysis section uses 100.
	Buckets int
	// Min, Max bound the numeric value domain (paper: unit range [0,1]).
	Min, Max float64
	// Categorical selects ValueSet or Bloom summarization.
	Categorical CategoricalMode
	// BloomBits and BloomHashes size the Bloom filters when Categorical is
	// UseBloom.
	BloomBits, BloomHashes int
	// TTL is the soft-state lifetime of a summary. Zero means no expiry.
	TTL time.Duration
	// Resolution carries per-attribute geometry overrides (the adaptive
	// plan). Nil means uniform geometry — wire-identical to the static
	// configuration. Entries for unknown attributes are ignored.
	Resolution []AttrResolution
	// CondenseAbove, when positive, collapses value sets with more than
	// this many distinct values into dotted-prefix wildcards ("a.b.*") per
	// Portnoi & Swany's heuristic summarization. Zero disables.
	CondenseAbove int
}

// resFor returns the resolution override for attr, if any.
func (c Config) resFor(attr string) (AttrResolution, bool) {
	for _, r := range c.Resolution {
		if r.Attr == attr {
			return r, true
		}
	}
	return AttrResolution{}, false
}

// BucketsFor returns the histogram bucket count for the named attribute,
// honoring any Resolution override.
func (c Config) BucketsFor(attr string) int {
	if r, ok := c.resFor(attr); ok && r.Buckets > 0 {
		return r.Buckets
	}
	return c.Buckets
}

// BloomParamsFor returns the Bloom geometry for the named attribute,
// honoring any Resolution override.
func (c Config) BloomParamsFor(attr string) (nbits, k int) {
	nbits, k = c.BloomBits, c.BloomHashes
	if r, ok := c.resFor(attr); ok {
		if r.BloomBits > 0 {
			nbits = r.BloomBits
		}
		if r.BloomHashes > 0 {
			k = r.BloomHashes
		}
	}
	return nbits, k
}

// Uniform reports whether the config carries no per-attribute overrides
// (and therefore encodes identically under codec v5).
func (c Config) Uniform() bool { return len(c.Resolution) == 0 }

// Equal reports whether two configs build identical summaries. Config is
// no longer comparable with == because Resolution is a slice.
func (c Config) Equal(o Config) bool {
	if c.Buckets != o.Buckets || c.Min != o.Min || c.Max != o.Max ||
		c.Categorical != o.Categorical || c.BloomBits != o.BloomBits ||
		c.BloomHashes != o.BloomHashes || c.TTL != o.TTL ||
		c.CondenseAbove != o.CondenseAbove || len(c.Resolution) != len(o.Resolution) {
		return false
	}
	for i, r := range c.Resolution {
		if r != o.Resolution[i] {
			return false
		}
	}
	return true
}

// DefaultConfig returns the paper's simulation defaults: 1000-bucket
// histograms over [0,1] and exact value sets for categorical attributes.
func DefaultConfig() Config {
	return Config{Buckets: 1000, Min: 0, Max: 1, Categorical: UseValueSet, BloomBits: 1024, BloomHashes: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Buckets <= 0 {
		return fmt.Errorf("summary: config.Buckets must be positive, got %d", c.Buckets)
	}
	if !(c.Min < c.Max) {
		return fmt.Errorf("summary: config domain [%g,%g) is empty", c.Min, c.Max)
	}
	if c.Categorical == UseBloom && (c.BloomBits <= 0 || c.BloomHashes <= 0) {
		return fmt.Errorf("summary: bloom mode needs positive BloomBits/BloomHashes")
	}
	for _, r := range c.Resolution {
		if r.Attr == "" {
			return fmt.Errorf("summary: resolution override with empty attribute name")
		}
		if r.Buckets < 0 || r.BloomBits < 0 || r.BloomHashes < 0 {
			return fmt.Errorf("summary: negative resolution override for %q", r.Attr)
		}
	}
	if c.CondenseAbove < 0 {
		return fmt.Errorf("summary: CondenseAbove must be non-negative, got %d", c.CondenseAbove)
	}
	return nil
}

// Summary is the condensed representation of a set of resource records: one
// per-attribute summary for each schema attribute. Summaries are what
// owners export, what servers aggregate bottom-up, and what the replication
// overlay copies around. They carry soft-state metadata (origin, version,
// expiry) so stale state ages out as the paper requires.
type Summary struct {
	Schema *record.Schema
	Cfg    Config

	// Hists holds the histogram for each numeric attribute (nil for
	// categorical positions); Sets/Blooms hold the categorical summaries
	// (nil for numeric positions), only one of the two populated depending
	// on Cfg.Categorical.
	Hists  []*Histogram
	Sets   []*ValueSet
	Blooms []*Bloom

	// Records counts how many records this summary condenses.
	Records uint64

	// Origin identifies the server or owner whose branch this summarizes.
	Origin string
	// Version identifies the summarized content. FromRecords stamps it
	// with the ComputeVersion content hash, so two summaries condensing
	// identical data carry equal versions and an equality check costs one
	// uint64 compare; the simulator's Touch still bumps it per refresh.
	// Zero means unstamped (pre-versioning producers).
	Version uint64
	// Expires is the soft-state deadline; zero time means no expiry.
	Expires time.Time
}

// New creates an empty summary for the schema.
func New(s *record.Schema, cfg Config) (*Summary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sum := &Summary{
		Schema: s,
		Cfg:    cfg,
		Hists:  make([]*Histogram, s.NumAttrs()),
		Sets:   make([]*ValueSet, s.NumAttrs()),
		Blooms: make([]*Bloom, s.NumAttrs()),
	}
	for i := 0; i < s.NumAttrs(); i++ {
		name := s.Attr(i).Name
		switch s.Attr(i).Kind {
		case record.Numeric:
			sum.Hists[i] = MustHistogram(cfg.BucketsFor(name), cfg.Min, cfg.Max)
		case record.Categorical:
			if cfg.Categorical == UseBloom {
				nbits, k := cfg.BloomParamsFor(name)
				sum.Blooms[i] = MustBloom(nbits, k)
			} else {
				sum.Sets[i] = NewValueSet()
			}
		}
	}
	return sum, nil
}

// MustNew is New that panics on error.
func MustNew(s *record.Schema, cfg Config) *Summary {
	sum, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return sum
}

// FromRecords builds a summary of the given records, condensed per
// cfg.CondenseAbove and stamped with its content version.
func FromRecords(s *record.Schema, cfg Config, recs []*record.Record) (*Summary, error) {
	sum, err := New(s, cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		sum.AddRecord(r)
	}
	sum.Condense()
	sum.ComputeVersion()
	return sum, nil
}

// AddRecord folds one record into the summary.
func (sum *Summary) AddRecord(r *record.Record) {
	for i := 0; i < sum.Schema.NumAttrs(); i++ {
		switch sum.Schema.Attr(i).Kind {
		case record.Numeric:
			sum.Hists[i].Add(r.Num(i))
		case record.Categorical:
			if sum.Blooms[i] != nil {
				sum.Blooms[i].Add(r.Str(i))
			} else {
				sum.Sets[i].Add(r.Str(i))
			}
		}
	}
	sum.Records++
}

// RemoveRecord subtracts one record (for delta refresh). Not supported in
// Bloom mode, which rebuilds instead; it returns an error in that case.
func (sum *Summary) RemoveRecord(r *record.Record) error {
	for i := 0; i < sum.Schema.NumAttrs(); i++ {
		switch sum.Schema.Attr(i).Kind {
		case record.Numeric:
			sum.Hists[i].Remove(r.Num(i))
		case record.Categorical:
			if sum.Blooms[i] != nil {
				return fmt.Errorf("summary: cannot remove from bloom-mode summary; rebuild instead")
			}
			sum.Sets[i].Remove(r.Str(i))
		}
	}
	if sum.Records > 0 {
		sum.Records--
	}
	return nil
}

// Subtractable reports whether RemoveRecord can subtract a record exactly:
// histograms decrement their bucket and value sets decrement (and drop
// zeroed) value counts, so a summary of those kinds tracks removals
// without drift — removing a record yields the same content (and the same
// ComputeVersion) as rebuilding without it. Bloom filters cannot clear
// bits, so any summary holding one must rebuild instead; the sharded
// store's tracked-deletion fallback keys off this.
func (sum *Summary) Subtractable() bool {
	for i := range sum.Blooms {
		if sum.Blooms[i] != nil {
			return false
		}
	}
	return true
}

// Merge folds other into sum: histograms add bucket-wise, value sets union,
// Bloom filters OR. This is the bottom-up aggregation operator. With
// adaptive summaries in play, the two sides may disagree on geometry or
// even categorical kind — Merge degrades conservatively instead of
// erroring: histograms resample across bucket counts (MergeResample),
// Blooms fold/smear/saturate across sizes (MergeAny), and a value set
// meeting a Bloom converts to a Bloom. Mismatched numeric domains are
// still a hard error (a real configuration bug, not a resolution choice).
func (sum *Summary) Merge(other *Summary) error {
	if other == nil {
		return nil
	}
	if sum.Schema.NumAttrs() != other.Schema.NumAttrs() {
		return fmt.Errorf("summary: merging summaries with different schemas (%d vs %d attrs)",
			sum.Schema.NumAttrs(), other.Schema.NumAttrs())
	}
	for i := 0; i < sum.Schema.NumAttrs(); i++ {
		switch {
		case sum.Hists[i] != nil:
			if other.Hists[i] == nil {
				return fmt.Errorf("summary: attr %d numeric in one summary, not the other", i)
			}
			if err := sum.Hists[i].MergeResample(other.Hists[i]); err != nil {
				return err
			}
		case sum.Blooms[i] != nil:
			switch {
			case other.Blooms[i] != nil:
				sum.Blooms[i].MergeAny(other.Blooms[i])
			case other.Sets[i] != nil:
				mergeSetIntoBloom(sum.Blooms[i], other.Sets[i])
			default:
				return fmt.Errorf("summary: attr %d categorical in one summary, not the other", i)
			}
		case sum.Sets[i] != nil:
			switch {
			case other.Sets[i] != nil:
				sum.Sets[i].Merge(other.Sets[i])
			case other.Blooms[i] != nil:
				// A set cannot absorb a Bloom (its members are unknown);
				// convert this attribute to a Bloom and fold the set in.
				b := other.Blooms[i].Clone()
				mergeSetIntoBloom(b, sum.Sets[i])
				sum.Blooms[i], sum.Sets[i] = b, nil
			default:
				return fmt.Errorf("summary: attr %d categorical in one summary, not the other", i)
			}
		}
	}
	sum.Records += other.Records
	return nil
}

// mergeSetIntoBloom inserts a value set's members into a Bloom filter. A
// set holding condensed wildcards cannot be enumerated exactly (a wildcard
// stands for unknown members), so the filter saturates — match-anything is
// the only conservative answer.
func mergeSetIntoBloom(b *Bloom, s *ValueSet) {
	if s.HasWildcards() {
		b.Saturate()
		b.N += uint64(s.Len())
		return
	}
	for v := range s.Counts {
		b.Add(v)
	}
}

// MatchRange reports whether attribute position i may contain a value in
// [lo,hi]. Only valid for numeric attributes.
func (sum *Summary) MatchRange(i int, lo, hi float64) bool {
	h := sum.Hists[i]
	if h == nil {
		return false
	}
	return h.MatchRange(lo, hi)
}

// MatchEq reports whether attribute position i may contain the categorical
// value v. Value sets are probed for v itself and for every condensed
// dotted-prefix wildcard covering it ("a.b.c" also probes "a.b.*" and
// "a.*"), so condensation never produces false negatives.
func (sum *Summary) MatchEq(i int, v string) bool {
	if sum.Blooms[i] != nil {
		return sum.Blooms[i].Contains(v)
	}
	if s := sum.Sets[i]; s != nil {
		if s.Contains(v) {
			return true
		}
		if s.wild == 0 {
			return false
		}
		for p := parentPrefix(v); p != ""; p = parentPrefix(p) {
			if s.Contains(p + wildcardSuffix) {
				return true
			}
		}
	}
	return false
}

// ComputeVersion hashes the summarized content (record count, histogram
// buckets, value sets, Bloom bitsets — not origin or expiry metadata) into
// Version and returns it. Two summaries condensing identical data hash
// identically, so downstream equality checks — "does my parent already
// hold this branch?" — cost one uint64 compare instead of a bucket-wise
// walk. The hash is FNV-1a over the canonical field order; zero is mapped
// to 1 so a stamped version is always distinguishable from the unstamped
// zero value. The cost is one pass over the summary's fixed-size state,
// independent of how many records were condensed.
func (sum *Summary) ComputeVersion() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	w(sum.Records)
	for i := range sum.Hists {
		switch {
		case sum.Hists[i] != nil:
			hist := sum.Hists[i]
			w(uint64(i)<<8 | 1)
			w(hist.Total)
			for _, c := range hist.Counts {
				w(uint64(c))
			}
		case sum.Sets[i] != nil:
			vs := sum.Sets[i]
			w(uint64(i)<<8 | 2)
			keys := make([]string, 0, len(vs.Counts))
			for k := range vs.Counts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				_, _ = h.Write([]byte(k))
				w(uint64(vs.Counts[k]))
			}
		case sum.Blooms[i] != nil:
			bl := sum.Blooms[i]
			w(uint64(i)<<8 | 3)
			w(uint64(bl.NumBit))
			w(uint64(bl.Hashes))
			w(bl.N)
			for _, word := range bl.Bits {
				w(word)
			}
		}
	}
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	sum.Version = v
	return v
}

// Empty reports whether the summary condenses zero records.
func (sum *Summary) Empty() bool { return sum.Records == 0 }

// Expired reports whether the soft state has aged out at time now.
func (sum *Summary) Expired(now time.Time) bool {
	return !sum.Expires.IsZero() && now.After(sum.Expires)
}

// Touch refreshes the soft-state deadline to now+ttl and bumps the version.
func (sum *Summary) Touch(now time.Time, ttl time.Duration) {
	sum.Version++
	if ttl > 0 {
		sum.Expires = now.Add(ttl)
	}
}

// Clone returns a deep copy (used when replicating summaries around the
// overlay so that in-process simulations do not alias state).
func (sum *Summary) Clone() *Summary {
	c := &Summary{
		Schema:  sum.Schema,
		Cfg:     sum.Cfg,
		Hists:   make([]*Histogram, len(sum.Hists)),
		Sets:    make([]*ValueSet, len(sum.Sets)),
		Blooms:  make([]*Bloom, len(sum.Blooms)),
		Records: sum.Records,
		Origin:  sum.Origin,
		Version: sum.Version,
		Expires: sum.Expires,
	}
	for i := range sum.Hists {
		if sum.Hists[i] != nil {
			c.Hists[i] = sum.Hists[i].Clone()
		}
		if sum.Sets[i] != nil {
			c.Sets[i] = sum.Sets[i].Clone()
		}
		if sum.Blooms[i] != nil {
			c.Blooms[i] = sum.Blooms[i].Clone()
		}
	}
	return c
}

// Equal reports whether two summaries condense identical data (ignores
// origin/version/expiry metadata).
func (sum *Summary) Equal(other *Summary) bool {
	if other == nil || sum.Records != other.Records || len(sum.Hists) != len(other.Hists) {
		return false
	}
	for i := range sum.Hists {
		switch {
		case sum.Hists[i] != nil:
			if !sum.Hists[i].Equal(other.Hists[i]) {
				return false
			}
		case sum.Sets[i] != nil:
			if other.Sets[i] == nil || !sum.Sets[i].Equal(other.Sets[i]) {
				return false
			}
		case sum.Blooms[i] != nil:
			if !sum.Blooms[i].Equal(other.Blooms[i]) {
				return false
			}
		}
	}
	return true
}

// SizeBytes is the wire size of the summary for message accounting: the sum
// of per-attribute summary sizes plus a 24-byte header. Crucially this is
// independent of how many records were condensed — the property behind the
// paper's constant update overhead (Fig. 8).
func (sum *Summary) SizeBytes() int {
	size := 24
	for i := range sum.Hists {
		if sum.Hists[i] != nil {
			size += sum.Hists[i].SizeBytes()
		}
		if sum.Sets[i] != nil {
			size += sum.Sets[i].SizeBytes()
		}
		if sum.Blooms[i] != nil {
			size += sum.Blooms[i].SizeBytes()
		}
	}
	return size
}
