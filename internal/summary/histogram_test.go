package summary

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 0, 1); err == nil {
		t.Fatal("expected error for zero buckets")
	}
	if _, err := NewHistogram(10, 1, 1); err == nil {
		t.Fatal("expected error for empty domain")
	}
	if _, err := NewHistogram(10, 2, 1); err == nil {
		t.Fatal("expected error for inverted domain")
	}
}

func TestHistogramAddAndMatch(t *testing.T) {
	h := MustHistogram(10, 0, 1)
	h.Add(0.35)
	if !h.MatchRange(0.3, 0.4) {
		t.Fatal("value in [0.3,0.4) bucket should match")
	}
	if h.MatchRange(0.5, 0.9) {
		t.Fatal("no values in [0.5,0.9], should not match")
	}
	if h.Total != 1 {
		t.Fatalf("Total = %d; want 1", h.Total)
	}
}

func TestHistogramBoundaryValues(t *testing.T) {
	h := MustHistogram(10, 0, 1)
	h.Add(0.0) // exact min
	h.Add(1.0) // exact max clamps to last bucket
	h.Add(-5)  // below domain clamps to first
	h.Add(5)   // above domain clamps to last
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamping wrong: first=%d last=%d", h.Counts[0], h.Counts[9])
	}
}

func TestHistogramNaN(t *testing.T) {
	h := MustHistogram(4, 0, 1)
	h.Add(math.NaN()) // must not panic; lands in bucket 0
	if h.Total != 1 {
		t.Fatalf("Total = %d; want 1", h.Total)
	}
}

func TestHistogramMatchEmptyAndInverted(t *testing.T) {
	h := MustHistogram(10, 0, 1)
	if h.MatchRange(0, 1) {
		t.Fatal("empty histogram must match nothing")
	}
	h.Add(0.5)
	if h.MatchRange(0.9, 0.1) {
		t.Fatal("inverted range must not match")
	}
	if h.MatchRange(1.5, 2.0) {
		t.Fatal("range beyond domain must not match")
	}
	if h.MatchRange(-2, -1) {
		t.Fatal("range below domain must not match")
	}
}

func TestHistogramOpenEndedMatch(t *testing.T) {
	h := MustHistogram(100, 0, 1)
	h.Add(0.99)
	if !h.MatchRange(0.5, math.Inf(1)) {
		t.Fatal("open-ended upper range should match 0.99")
	}
	if !h.MatchRange(math.Inf(-1), 1.0) {
		t.Fatal("open-ended lower range should match")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram(10, 0, 1)
	b := MustHistogram(10, 0, 1)
	a.Add(0.1)
	b.Add(0.9)
	b.Add(0.15)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Total != 3 {
		t.Fatalf("Total after merge = %d; want 3", a.Total)
	}
	if !a.MatchRange(0.85, 0.95) {
		t.Fatal("merged histogram should include b's values")
	}
	if a.Counts[1] != 2 {
		t.Fatalf("bucket 1 = %d; want 2", a.Counts[1])
	}
}

func TestHistogramMergeIncompatible(t *testing.T) {
	a := MustHistogram(10, 0, 1)
	if err := a.Merge(MustHistogram(20, 0, 1)); err == nil {
		t.Fatal("expected error merging different bucket counts")
	}
	if err := a.Merge(MustHistogram(10, 0, 2)); err == nil {
		t.Fatal("expected error merging different domains")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil should be a no-op, got %v", err)
	}
}

func TestHistogramRemove(t *testing.T) {
	h := MustHistogram(10, 0, 1)
	h.Add(0.5)
	h.Remove(0.5)
	if h.Total != 0 || h.MatchRange(0, 1) {
		t.Fatal("remove should restore empty state")
	}
	h.Remove(0.5) // removing from empty must not underflow
	if h.Total != 0 || h.Counts[5] != 0 {
		t.Fatal("remove on empty histogram must not underflow")
	}
}

func TestHistogramCountRange(t *testing.T) {
	h := MustHistogram(10, 0, 1)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100) // 10 values per bucket
	}
	got := h.CountRange(0, 0.5)
	if math.Abs(got-50) > 1 {
		t.Fatalf("CountRange(0,0.5) = %g; want ~50", got)
	}
	// Half a bucket pro-rated.
	got = h.CountRange(0, 0.05)
	if math.Abs(got-5) > 1 {
		t.Fatalf("CountRange(0,0.05) = %g; want ~5", got)
	}
	if h.CountRange(0.9, 0.1) != 0 {
		t.Fatal("inverted range count must be 0")
	}
}

func TestHistogramCloneResetEqual(t *testing.T) {
	h := MustHistogram(10, 0, 1)
	h.Add(0.3)
	c := h.Clone()
	if !h.Equal(c) {
		t.Fatal("clone should be Equal")
	}
	c.Add(0.4)
	if h.Equal(c) {
		t.Fatal("diverged clone should not be Equal")
	}
	c.Reset()
	if c.Total != 0 {
		t.Fatal("Reset should zero Total")
	}
	if h.Equal(nil) {
		t.Fatal("Equal(nil) must be false")
	}
}

func TestHistogramSizeBytes(t *testing.T) {
	h := MustHistogram(100, 0, 1)
	if got := h.SizeBytes(); got != 16+400 {
		t.Fatalf("SizeBytes = %d; want 416", got)
	}
}

// Property: a histogram never produces a false negative — any added value v
// is matched by any range containing v.
func TestHistogramNoFalseNegativesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := MustHistogram(1+rng.Intn(64), 0, 1)
		vals := make([]float64, 1+rng.Intn(20))
		for i := range vals {
			vals[i] = rng.Float64()
			h.Add(vals[i])
		}
		for _, v := range vals {
			lo := v - rng.Float64()*0.2
			hi := v + rng.Float64()*0.2
			if !h.MatchRange(lo, hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is commutative — merging A into B equals merging B into A.
func TestHistogramMergeCommutativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1 := MustHistogram(32, 0, 1)
		b1 := MustHistogram(32, 0, 1)
		for i := 0; i < 10; i++ {
			a1.Add(rng.Float64())
			b1.Add(rng.Float64())
		}
		a2, b2 := a1.Clone(), b1.Clone()
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := b2.Merge(a2); err != nil {
			return false
		}
		return a1.Equal(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
