package summary

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
)

// Bloom is a Bloom filter summarizing a categorical attribute. Compared to
// ValueSet it is constant-size regardless of vocabulary, at the cost of a
// tunable false-positive rate — matching the paper's note that Bloom filters
// [10] can replace enumeration when the number of distinct values is large.
//
// Bloom filters cannot subtract, so soft-state refresh rebuilds them from
// scratch each period rather than applying deltas; Summary handles that.
type Bloom struct {
	Bits   []uint64
	NumBit uint32
	Hashes uint32
	N      uint64 // elements added, for diagnostics
}

// NewBloom creates a filter with nbits bits and k hash functions. nbits is
// rounded up to a multiple of 64.
func NewBloom(nbits, k int) (*Bloom, error) {
	if nbits <= 0 || k <= 0 {
		return nil, fmt.Errorf("summary: bloom needs positive bits and hashes, got %d/%d", nbits, k)
	}
	words := (nbits + 63) / 64
	return &Bloom{Bits: make([]uint64, words), NumBit: uint32(words * 64), Hashes: uint32(k)}, nil
}

// MustBloom is NewBloom that panics on error.
func MustBloom(nbits, k int) *Bloom {
	b, err := NewBloom(nbits, k)
	if err != nil {
		panic(err)
	}
	return b
}

// OptimalBloom sizes a filter for n expected elements and target
// false-positive probability p, using the standard formulas
// m = -n ln p / (ln 2)^2 and k = (m/n) ln 2.
func OptimalBloom(n int, p float64) *Bloom {
	if n <= 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := int(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return MustBloom(m, k)
}

// hashPair derives two independent 32-bit hashes of v; the k probe
// positions are h1 + i*h2 (Kirsch–Mitzenmacher double hashing).
func hashPair(v string) (uint32, uint32) {
	h := fnv.New64a()
	h.Write([]byte(v))
	sum := h.Sum64()
	h1 := uint32(sum)
	h2 := uint32(sum>>32) | 1 // odd, so probes cycle through all positions
	return h1, h2
}

// Add inserts v.
func (b *Bloom) Add(v string) {
	h1, h2 := hashPair(v)
	for i := uint32(0); i < b.Hashes; i++ {
		bit := (h1 + i*h2) % b.NumBit
		b.Bits[bit/64] |= 1 << (bit % 64)
	}
	b.N++
}

// Contains reports whether v may have been inserted. False positives are
// possible; false negatives are not.
func (b *Bloom) Contains(v string) bool {
	h1, h2 := hashPair(v)
	for i := uint32(0); i < b.Hashes; i++ {
		bit := (h1 + i*h2) % b.NumBit
		if b.Bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Merge ORs other into b. The filters must have identical geometry.
func (b *Bloom) Merge(other *Bloom) error {
	if other == nil {
		return nil
	}
	if b.NumBit != other.NumBit || b.Hashes != other.Hashes {
		return fmt.Errorf("summary: merging incompatible blooms (%d/%d bits, %d/%d hashes)",
			b.NumBit, other.NumBit, b.Hashes, other.Hashes)
	}
	for i, w := range other.Bits {
		b.Bits[i] |= w
	}
	b.N += other.N
	return nil
}

// MergeAny ORs other into b, tolerating geometry mismatches the way the
// adaptive resolution ladder produces them. Identical geometry merges
// exactly. Otherwise the merge is conservative (never loses a membership)
// when the smaller bit count divides the larger — the planner only emits
// power-of-two sizes, so sibling plans always divide — and b probes no
// more hash positions than other guaranteed set (b.Hashes <= other.Hashes):
//
//   - fold: other is larger — bit i of other ORs into bit i mod b.NumBit,
//     because probe positions mod a divisor of the modulus are preserved;
//   - smear: other is smaller — bit i of other ORs into every position
//     congruent to i mod other.NumBit.
//
// Any non-dividing size pair or a hash-count increase would create false
// negatives, so those cases saturate b instead: match-anything keeps the
// no-false-negative contract at the price of extra descents.
func (b *Bloom) MergeAny(other *Bloom) {
	if other == nil {
		return
	}
	if b.NumBit == other.NumBit && b.Hashes == other.Hashes {
		_ = b.Merge(other)
		return
	}
	defer func() { b.N += other.N }()
	if b.Hashes > other.Hashes {
		b.Saturate()
		return
	}
	switch {
	case b.NumBit <= other.NumBit && other.NumBit%b.NumBit == 0:
		// Fold: word-aligned because bit counts are multiples of 64.
		for i, w := range other.Bits {
			b.Bits[i%len(b.Bits)] |= w
		}
	case b.NumBit%other.NumBit == 0:
		// Smear: replicate the smaller filter across every block.
		for base := 0; base < len(b.Bits); base += len(other.Bits) {
			for i, w := range other.Bits {
				b.Bits[base+i] |= w
			}
		}
	default:
		b.Saturate()
	}
}

// Saturate sets every bit, turning the filter into match-anything — the
// conservative degradation when a merge or flatten cannot preserve exact
// membership information.
func (b *Bloom) Saturate() {
	for i := range b.Bits {
		b.Bits[i] = ^uint64(0)
	}
}

// Saturated reports whether every bit is set (the filter matches anything).
func (b *Bloom) Saturated() bool {
	for _, w := range b.Bits {
		if w != ^uint64(0) {
			return false
		}
	}
	return true
}

// FillRatio returns the fraction of set bits, a load indicator.
func (b *Bloom) FillRatio() float64 {
	ones := 0
	for _, w := range b.Bits {
		ones += bits.OnesCount64(w)
	}
	return float64(ones) / float64(b.NumBit)
}

// FalsePositiveRate estimates the current false-positive probability from
// the fill ratio: fp = fill^k.
func (b *Bloom) FalsePositiveRate() float64 {
	return math.Pow(b.FillRatio(), float64(b.Hashes))
}

// Clone returns a deep copy.
func (b *Bloom) Clone() *Bloom {
	c := &Bloom{Bits: make([]uint64, len(b.Bits)), NumBit: b.NumBit, Hashes: b.Hashes, N: b.N}
	copy(c.Bits, b.Bits)
	return c
}

// Reset clears all bits.
func (b *Bloom) Reset() {
	for i := range b.Bits {
		b.Bits[i] = 0
	}
	b.N = 0
}

// Equal reports whether two filters have the same geometry and bits.
func (b *Bloom) Equal(other *Bloom) bool {
	if other == nil || b.NumBit != other.NumBit || b.Hashes != other.Hashes {
		return false
	}
	for i, w := range b.Bits {
		if other.Bits[i] != w {
			return false
		}
	}
	return true
}

// SizeBytes is the wire size: the bit array plus an 8-byte header.
func (b *Bloom) SizeBytes() int { return 8 + 8*len(b.Bits) }
