package summary

import (
	"fmt"
	"testing"

	"roads/internal/record"
)

// bloomCfg returns a Bloom-mode config with the given base geometry.
func bloomCfg(nbits, k int) Config {
	cfg := DefaultConfig()
	cfg.Buckets = 16
	cfg.Categorical = UseBloom
	cfg.BloomBits = nbits
	cfg.BloomHashes = k
	return cfg
}

// TestSummaryMergeBloomMismatchedGeometry merges summaries whose Bloom
// filters disagree on (nbits, hashes) — the shape adaptive resolution
// produces mid-replan, when some origins have re-keyed and others have
// not. Merge must degrade conservatively in both directions: never error,
// never lose a member (no false negatives), whatever the fold direction.
func TestSummaryMergeBloomMismatchedGeometry(t *testing.T) {
	s := mixedSchema()
	small := MustNew(s, bloomCfg(64, 3))
	big := MustNew(s, bloomCfg(512, 5))
	for i := 0; i < 8; i++ {
		small.AddRecord(mkRec(s, 0.1, 0.2, fmt.Sprintf("small-%d", i)))
		big.AddRecord(mkRec(s, 0.8, 0.9, fmt.Sprintf("big-%d", i)))
	}

	into := small.Clone()
	if err := into.Merge(big); err != nil {
		t.Fatalf("merge big-into-small: %v", err)
	}
	rev := big.Clone()
	if err := rev.Merge(small); err != nil {
		t.Fatalf("merge small-into-big: %v", err)
	}
	for i := 0; i < 8; i++ {
		for _, v := range []string{fmt.Sprintf("small-%d", i), fmt.Sprintf("big-%d", i)} {
			if !into.MatchEq(2, v) {
				t.Fatalf("big-into-small merge lost %q", v)
			}
			if !rev.MatchEq(2, v) {
				t.Fatalf("small-into-big merge lost %q", v)
			}
		}
	}
	if into.Records != 16 || rev.Records != 16 {
		t.Fatalf("record counts %d/%d after merge; want 16", into.Records, rev.Records)
	}
}

// TestSummaryMergeBloomEmptyPopulated covers the empty↔populated corners:
// merging an empty Bloom summary into a populated one (and vice versa)
// must neither error, nor lose members, nor set spurious bits.
func TestSummaryMergeBloomEmptyPopulated(t *testing.T) {
	s := mixedSchema()
	empty := MustNew(s, bloomCfg(128, 4))
	popu := MustNew(s, bloomCfg(128, 4))
	popu.AddRecord(mkRec(s, 0.5, 0.5, "present"))

	got := popu.Clone()
	if err := got.Merge(empty); err != nil {
		t.Fatalf("merge empty into populated: %v", err)
	}
	if !got.Equal(popu) {
		t.Fatal("merging an empty summary must be a no-op on content")
	}

	got = empty.Clone()
	if err := got.Merge(popu); err != nil {
		t.Fatalf("merge populated into empty: %v", err)
	}
	if !got.MatchEq(2, "present") {
		t.Fatal("merge into empty lost the member")
	}
	if got.Blooms[2].FillRatio() != popu.Blooms[2].FillRatio() {
		t.Fatal("merge into same-geometry empty must copy bits exactly")
	}
}

// TestSummaryMergeSetMeetsBloom pins the cross-kind degradation: a value
// set merging with a Bloom converts to a Bloom (members of a Bloom cannot
// be enumerated), stays conservative, and the result correctly reports
// itself non-subtractable.
func TestSummaryMergeSetMeetsBloom(t *testing.T) {
	s := mixedSchema()
	setCfg := DefaultConfig()
	setCfg.Buckets = 16
	setSide := MustNew(s, setCfg)
	setSide.AddRecord(mkRec(s, 0.1, 0.1, "from-set"))
	bloomSide := MustNew(s, bloomCfg(256, 4))
	bloomSide.AddRecord(mkRec(s, 0.9, 0.9, "from-bloom"))

	if !setSide.Subtractable() {
		t.Fatal("value-set summary must be subtractable")
	}
	if bloomSide.Subtractable() {
		t.Fatal("bloom summary must not be subtractable")
	}

	got := setSide.Clone()
	if err := got.Merge(bloomSide); err != nil {
		t.Fatalf("set-meets-bloom merge: %v", err)
	}
	if got.Sets[2] != nil || got.Blooms[2] == nil {
		t.Fatal("set side must convert to a Bloom when merging a Bloom")
	}
	if !got.MatchEq(2, "from-set") || !got.MatchEq(2, "from-bloom") {
		t.Fatal("cross-kind merge lost a member")
	}
	if got.Subtractable() {
		t.Fatal("converted summary must report non-subtractable")
	}
	// The untouched input keeps its set: Merge owns only the receiver.
	if setSide.Sets[2] == nil {
		t.Fatal("merge mutated its argument's sibling clone source")
	}
}

// TestSummaryCloneBloomIndependence checks Clone deep-copies Bloom state:
// mutating the original afterwards must not leak bits into the clone.
func TestSummaryCloneBloomIndependence(t *testing.T) {
	s := mixedSchema()
	orig := MustNew(s, bloomCfg(128, 4))
	orig.AddRecord(mkRec(s, 0.2, 0.2, "before"))
	cl := orig.Clone()
	orig.AddRecord(mkRec(s, 0.3, 0.3, "after"))
	if cl.MatchEq(2, "after") && cl.Blooms[2].Equal(orig.Blooms[2]) {
		t.Fatal("clone shares Bloom bits with the original")
	}
	if !cl.MatchEq(2, "before") {
		t.Fatal("clone lost pre-clone member")
	}
	if cl.Records != 1 || orig.Records != 2 {
		t.Fatalf("records %d/%d; want 1/2", cl.Records, orig.Records)
	}
	// Saturation must not propagate either.
	orig.Blooms[2].Saturate()
	if cl.Blooms[2].Saturated() {
		t.Fatal("saturating the original saturated the clone")
	}
}

// TestBloomMergeAnySaturation exercises MergeAny's degradation ladder
// directly: merging a saturated filter saturates the receiver (still
// conservative), and merging across sizes keeps every member.
func TestBloomMergeAnySaturation(t *testing.T) {
	a := MustBloom(128, 4)
	a.Add("kept")
	sat := MustBloom(64, 3)
	sat.Saturate()
	a.MergeAny(sat)
	if !a.Saturated() {
		t.Fatal("merging a saturated Bloom must saturate the receiver")
	}
	if !a.Contains("anything") || !a.Contains("kept") {
		t.Fatal("saturated Bloom must contain everything")
	}
}

// TestStoreBloomShardPartialMerge drives Bloom-carrying summaries through
// the sharded store's partial-summary pipeline (incremental per-shard
// partials, first-class removes): because Blooms are not subtractable,
// removals must trigger shard rebuilds — never bit subtraction — and the
// exported whole must always equal a from-scratch rebuild of the records
// actually present. The store package owns that pipeline; this test pins
// the summary-side contract it depends on (Subtractable gating).
func TestStoreBloomShardPartialMerge(t *testing.T) {
	s := mixedSchema()
	cfg := bloomCfg(256, 4)
	recs := make([]*record.Record, 0, 40)
	whole := MustNew(s, cfg)
	for i := 0; i < 40; i++ {
		r := record.New(s, fmt.Sprintf("r%02d", i), "o")
		r.SetNum(0, float64(i)/40)
		r.SetNum(1, float64(39-i)/40)
		r.SetStr(2, fmt.Sprintf("enc-%d", i%10))
		recs = append(recs, r)
		whole.AddRecord(r)
	}
	// Partition into 4 "shard partials" and merge them — the exact shape
	// store.ExportSummary builds — then compare against the monolith.
	merged := MustNew(s, cfg)
	for sh := 0; sh < 4; sh++ {
		part := MustNew(s, cfg)
		for i := sh; i < 40; i += 4 {
			part.AddRecord(recs[i])
		}
		if part.Subtractable() {
			t.Fatal("bloom partial must be non-subtractable")
		}
		if err := merged.Merge(part); err != nil {
			t.Fatalf("shard partial merge: %v", err)
		}
	}
	if merged.Records != whole.Records {
		t.Fatalf("merged records %d, want %d", merged.Records, whole.Records)
	}
	for i := 0; i < 10; i++ {
		if !merged.MatchEq(2, fmt.Sprintf("enc-%d", i)) {
			t.Fatalf("shard-partial merge lost enc-%d", i)
		}
	}
	if !merged.Blooms[2].Equal(whole.Blooms[2]) {
		t.Fatal("same-geometry partial merge must reproduce the monolithic Bloom exactly")
	}
}
