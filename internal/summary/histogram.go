// Package summary implements the condensed resource representations at the
// heart of ROADS: per-attribute histograms for numeric values, enumerated
// value sets and Bloom filters for categorical values, and whole-record
// summaries that aggregate along the hierarchy. Summaries are lossy but
// support query evaluation ("does any resource under this branch possibly
// match?") and merge associatively, which is what makes bottom-up
// aggregation and overlay replication work (paper §III-B).
package summary

import (
	"fmt"
	"math"
)

// Histogram is an equi-width histogram over a fixed value domain [Min,Max).
// Each bucket counts how many values fell in its range. Two histograms over
// the same domain and bucket count merge by adding counters bucket-wise,
// exactly as the paper describes.
type Histogram struct {
	Min, Max float64
	Counts   []uint32
	Total    uint64
}

// NewHistogram creates a histogram with m buckets over [min,max).
func NewHistogram(m int, min, max float64) (*Histogram, error) {
	if m <= 0 {
		return nil, fmt.Errorf("summary: histogram needs at least 1 bucket, got %d", m)
	}
	if !(min < max) {
		return nil, fmt.Errorf("summary: invalid histogram domain [%g,%g)", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint32, m)}, nil
}

// MustHistogram is NewHistogram that panics on error.
func MustHistogram(m int, min, max float64) *Histogram {
	h, err := NewHistogram(m, min, max)
	if err != nil {
		panic(err)
	}
	return h
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.Counts) }

// bucketOf maps a value to its bucket index, clamping to the domain so that
// values exactly at Max (or slightly outside due to float noise) still land
// in a valid bucket.
func (h *Histogram) bucketOf(v float64) int {
	// Clamp before the float->int conversion: converting NaN or +/-Inf to
	// int is implementation-defined in Go.
	if math.IsNaN(v) || v <= h.Min {
		return 0
	}
	if v >= h.Max {
		return len(h.Counts) - 1
	}
	frac := (v - h.Min) / (h.Max - h.Min)
	i := int(frac * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.Counts[h.bucketOf(v)]++
	h.Total++
}

// Remove forgets one value previously added. It is used by soft-state
// refresh when an owner re-exports changed records.
func (h *Histogram) Remove(v float64) {
	i := h.bucketOf(v)
	if h.Counts[i] > 0 {
		h.Counts[i]--
	}
	if h.Total > 0 {
		h.Total--
	}
}

// Merge adds other's counters into h. The two histograms must have the same
// bucket count and domain.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.Counts) != len(other.Counts) || h.Min != other.Min || h.Max != other.Max {
		return fmt.Errorf("summary: merging incompatible histograms (%d buckets [%g,%g) vs %d buckets [%g,%g))",
			len(h.Counts), h.Min, h.Max, len(other.Counts), other.Min, other.Max)
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Total += other.Total
	return nil
}

// MergeResample adds other's counters into h, resampling when the bucket
// counts differ (the adaptive planner re-buckets attributes per child, so
// sibling branch summaries no longer share geometry). Identical geometry
// merges exactly. Otherwise each non-empty source bucket distributes its
// count pro-rata over the destination buckets it overlaps, rounding up so
// every overlapped destination bucket stays non-zero — occupancy is never
// lost, which preserves the no-false-negative routing contract (counts may
// inflate slightly; they are estimates already). The numeric domains must
// agree: a domain mismatch is a configuration bug, not a resolution choice.
func (h *Histogram) MergeResample(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.Counts) == len(other.Counts) && h.Min == other.Min && h.Max == other.Max {
		return h.Merge(other)
	}
	if h.Min != other.Min || h.Max != other.Max {
		return fmt.Errorf("summary: resampling histograms with different domains ([%g,%g) vs [%g,%g))",
			h.Min, h.Max, other.Min, other.Max)
	}
	srcWidth := (other.Max - other.Min) / float64(len(other.Counts))
	dstWidth := (h.Max - h.Min) / float64(len(h.Counts))
	for j, c := range other.Counts {
		if c == 0 {
			continue
		}
		sLo := other.Min + float64(j)*srcWidth
		sHi := sLo + srcWidth
		iLo := int((sLo - h.Min) / dstWidth)
		iHi := int(math.Ceil((sHi-h.Min)/dstWidth)) - 1
		if iLo < 0 {
			iLo = 0
		}
		if iHi >= len(h.Counts) {
			iHi = len(h.Counts) - 1
		}
		for i := iLo; i <= iHi; i++ {
			dLo := h.Min + float64(i)*dstWidth
			dHi := dLo + dstWidth
			overlap := math.Min(sHi, dHi) - math.Max(sLo, dLo)
			if overlap <= 0 {
				continue
			}
			share := uint32(math.Ceil(float64(c) * overlap / srcWidth))
			if share == 0 {
				share = 1
			}
			h.Counts[i] += share
		}
	}
	h.Total += other.Total
	return nil
}

// MatchRange reports whether any recorded value *may* fall in [lo,hi]. It is
// conservative: it returns true when any bucket overlapping [lo,hi] is
// non-empty. False positives are possible (bucket granularity), false
// negatives are not — the property query forwarding relies on.
func (h *Histogram) MatchRange(lo, hi float64) bool {
	if hi < lo || h.Total == 0 {
		return false
	}
	if hi < h.Min || lo >= h.Max {
		return false
	}
	bLo := h.bucketOf(lo)
	bHi := h.bucketOf(hi)
	for i := bLo; i <= bHi; i++ {
		if h.Counts[i] != 0 {
			return true
		}
	}
	return false
}

// CountRange estimates how many recorded values fall in [lo,hi] by summing
// fully covered buckets and pro-rating partially covered edge buckets.
func (h *Histogram) CountRange(lo, hi float64) float64 {
	if hi < lo || h.Total == 0 {
		return 0
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bLo := h.Min + float64(i)*width
		bHi := bLo + width
		overlapLo := math.Max(lo, bLo)
		overlapHi := math.Min(hi, bHi)
		if overlapHi <= overlapLo {
			continue
		}
		sum += float64(c) * (overlapHi - overlapLo) / width
	}
	return sum
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{Min: h.Min, Max: h.Max, Total: h.Total, Counts: make([]uint32, len(h.Counts))}
	copy(c.Counts, h.Counts)
	return c
}

// Reset zeroes all counters.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Total = 0
}

// Equal reports whether two histograms have identical domains and counters.
// Summary refresh uses it to detect that a changed record did not change the
// summary (the t_s >> t_r effect in the paper's analysis).
func (h *Histogram) Equal(other *Histogram) bool {
	if other == nil || len(h.Counts) != len(other.Counts) || h.Min != other.Min || h.Max != other.Max {
		return false
	}
	for i, c := range h.Counts {
		if c != other.Counts[i] {
			return false
		}
	}
	return true
}

// SizeBytes is the wire size used for message accounting: 4 bytes per
// bucket counter plus a 16-byte header (domain + count).
func (h *Histogram) SizeBytes() int { return 16 + 4*len(h.Counts) }
