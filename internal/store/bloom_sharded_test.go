package store

import (
	"fmt"
	"math/rand"
	"testing"

	"roads/internal/summary"
)

// TestShardedBloomRemovalEquivalence drives Bloom-mode summaries through
// the sharded partial pipeline under removals. Blooms cannot subtract, so
// every remove must push the touched shards onto the rebuild path — and
// after any mix of adds and removes, the merged export must be
// content-identical (same ComputeVersion) to a monolithic FromRecords over
// the surviving records.
func TestShardedBloomRemovalEquivalence(t *testing.T) {
	schema := shardedSchema()
	cfg := summary.DefaultConfig()
	cfg.Buckets = 32
	cfg.Categorical = summary.UseBloom
	cfg.BloomBits = 256
	cfg.BloomHashes = 4

	st := NewWithOptions(schema, CostModel{}, Options{Shards: 4})
	if err := st.EnableSummaries(cfg); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		st.Add(mixedRecord(schema, fmt.Sprintf("r%03d", i), rng))
	}
	if _, err := st.ExportSummary(); err != nil {
		t.Fatal(err)
	}

	// Remove a third of the records, hitting every shard.
	ids := make([]string, 0, 20)
	for i := 0; i < 60; i += 3 {
		ids = append(ids, fmt.Sprintf("r%03d", i))
	}
	if got := st.Remove(ids...); got != len(ids) {
		t.Fatalf("removed %d records, want %d", got, len(ids))
	}

	exported, err := st.ExportSummary()
	if err != nil {
		t.Fatal(err)
	}
	mono, err := summary.FromRecords(schema, cfg, st.Records())
	if err != nil {
		t.Fatal(err)
	}
	if exported.Records != mono.Records {
		t.Fatalf("exported %d records, monolithic %d", exported.Records, mono.Records)
	}
	if exported.ComputeVersion() != mono.ComputeVersion() {
		t.Fatal("bloom-mode sharded export diverged from monolithic rebuild after removals")
	}
	// The rebuild must have genuinely cleared the removed members' bits
	// whenever their hash positions are no longer covered: at minimum, the
	// exported Bloom equals the monolithic one bit-for-bit.
	if !exported.Blooms[3].Equal(mono.Blooms[3]) {
		t.Fatal("exported Bloom bits differ from monolithic rebuild")
	}
	if st.Stats().ShardRebuilds == 0 {
		t.Fatal("bloom-mode removals must force shard partial rebuilds")
	}
}
