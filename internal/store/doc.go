// Package store is the local resource store attached to a ROADS server or
// resource owner. It plays the role of the DB2 backend in the paper's
// prototype: it indexes records per attribute so that matching is faster
// than a full scan, and it charges a configurable retrieval cost per
// matched record so the Fig. 11 response-time experiment can model backend
// work that pure network simulation cannot.
//
// The store is sharded by record-key hash into K independent shards
// (Options.Shards, default 8), each with its own lock, copy-on-write
// record slice, per-attribute indexes and mutation epoch. Sharding keeps
// bulk ingest O(N) (appends land in one shard's capacity headroom instead
// of recopying one global slice), lets mutations and searches on
// different shards proceed concurrently, and — via EnableSummaries — lets
// each shard maintain a partial summary incrementally on write so that
// summary export is a cheap merge of K partials instead of an
// O(records×attrs) rebuild (see export.go).
//
// Writes are first-class: Add, Replace, Remove and Update all touch only
// the owning shard, maintaining its indexes and partial summary in place
// where the summary mode allows exact subtraction, and falling back to a
// single-shard rebuild past the tracked-deletion threshold
// (Options.RemovalRebuildFraction). The merged export is cached by store
// epoch and is content-identical to a from-scratch summary over the same
// records — equal version hash — so sharding is invisible on the wire.
// Store epochs and the cached export also feed the query result cache in
// internal/live, which revalidates a cached answer's store dependency
// against the current epoch before serving it.
//
// See DESIGN.md §11 for the shard layout, the copy-on-write discipline
// and the measured rebuild-vs-merge costs.
package store
