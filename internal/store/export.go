package store

import (
	"errors"
	"sync"

	"roads/internal/summary"
)

// exportWorkers bounds how many stale shard partials one export rebuilds
// concurrently: rebuilds are independent CPU-bound passes over one shard's
// records, but one export must not commandeer the whole machine.
const exportWorkers = 4

// EnableSummaries turns on write-path partial-summary maintenance: every
// shard keeps a summary of its own records, updated incrementally on each
// mutation, and ExportSummary merges the K partials instead of rebuilding
// from all records. Calling it again with the same config is a no-op; a
// different config resets every partial (they encode bucket/filter
// geometry). Mutations made before enabling are covered — partials start
// stale and rebuild from the shard records at the first export.
func (st *Store) EnableSummaries(cfg summary.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	st.sumMu.Lock()
	defer st.sumMu.Unlock()
	if st.summarize && cfg.Equal(st.scfg) {
		return nil
	}
	st.scfg = cfg
	st.summarize = true
	st.haveMerged = false
	for _, sh := range st.shards {
		sh.mu.Lock()
		sh.summarize = true
		sh.scfg = cfg
		sh.partial = nil
		sh.partialStale = true
		sh.removals = 0
		sh.mu.Unlock()
	}
	return nil
}

// SummariesEnabled reports whether EnableSummaries has been called.
func (st *Store) SummariesEnabled() bool {
	st.sumMu.Lock()
	defer st.sumMu.Unlock()
	return st.summarize
}

// ErrSummariesDisabled is returned by ExportSummary before EnableSummaries.
var ErrSummariesDisabled = errors.New("store: summaries not enabled (call EnableSummaries first)")

// ExportSummary returns a summary covering every stored record, built by
// merging the per-shard partials: stale partials (never built, invalidated
// by Replace, or fallen behind through Bloom-mode or threshold-exceeding
// removals) are rebuilt first — each from its own shard's records only, on
// a pool of exportWorkers — then the K partials merge into one summary in
// shard order. Because histogram-bucket adds, value-set unions and Bloom
// ORs are the same commutative operations summary.FromRecords applies per
// record, the merged summary is content-identical to a monolithic build
// over Records() and carries the identical ComputeVersion — callers on the
// wire cannot tell the difference.
//
// The merged summary is cached against the store epoch: an unchanged store
// exports for the cost of one atomic load. The returned summary is shared —
// callers must not mutate it (Clone first).
func (st *Store) ExportSummary() (*summary.Summary, error) {
	st.sumMu.Lock()
	defer st.sumMu.Unlock()
	if !st.summarize {
		return nil, ErrSummariesDisabled
	}
	// Epoch before partials: a mutation landing mid-merge can only make
	// the cached summary newer than its epoch claims, so the next export
	// redoes the merge. Never the stale direction.
	e := st.epoch.Load()
	if st.haveMerged && st.mergedEpoch == e {
		st.stats.exportsCached.Add(1)
		return st.merged, nil
	}

	var stale []*shard
	for _, sh := range st.shards {
		sh.mu.RLock()
		s := sh.partialStale || sh.partial == nil
		sh.mu.RUnlock()
		if s {
			stale = append(stale, sh)
		}
	}
	switch {
	case len(stale) == 1:
		stale[0].rebuildPartial()
	case len(stale) > 1:
		workers := exportWorkers
		if workers > len(stale) {
			workers = len(stale)
		}
		work := make(chan *shard)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for sh := range work {
					sh.rebuildPartial()
				}
			}()
		}
		for _, sh := range stale {
			work <- sh
		}
		close(work)
		wg.Wait()
	}

	out, err := summary.New(st.schema, st.scfg)
	if err != nil {
		return nil, err
	}
	for _, sh := range st.shards {
		sh.mu.RLock()
		err := out.Merge(sh.partial)
		sh.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	}
	st.stats.partialMerges.Add(uint64(len(st.shards)))
	// Condense only the merged export, never the shard partials: partials
	// must stay exact so they remain subtractable and merge losslessly.
	// Condensation is deterministic, so condensing the merge of exact
	// partials equals condensing a monolithic rebuild — the content-version
	// equivalence above survives.
	out.Condense()
	out.ComputeVersion()
	st.merged, st.mergedEpoch, st.haveMerged = out, e, true
	return out, nil
}

// rebuildPartial rebuilds one shard's partial summary from its records —
// the single-shard fallback the tracked-deletion threshold and Bloom-mode
// removals fall back to.
func (sh *shard) rebuildPartial() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.partial != nil && !sh.partialStale {
		return // lost a race with another export pass; already fresh
	}
	p := summary.MustNew(sh.st.schema, sh.scfg) // cfg validated by EnableSummaries
	for _, r := range sh.records {
		p.AddRecord(r)
	}
	sh.partial = p
	sh.partialStale = false
	sh.removals = 0
	sh.st.stats.shardRebuilds.Add(1)
}
