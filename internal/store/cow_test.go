package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"roads/internal/record"
)

// TestRecordsCopyOnWrite proves the contract behind the zero-copy
// Records(): a snapshot taken at any moment is immutable. Writers append
// and replace concurrently while readers walk their snapshots end to end;
// every element a reader sees must be the record that position held when
// the snapshot was taken (IDs are position-stamped, so a torn or in-place
// mutated slice shows up as a mismatched ID or a nil). Run under -race
// this also proves the readers share no written memory with the writers.
func TestRecordsCopyOnWrite(t *testing.T) {
	schema := record.DefaultSchema(1)
	st := New(schema, CostModel{})
	mk := func(i int) *record.Record {
		return record.New(schema, fmt.Sprintf("r%06d", i), "own")
	}
	st.Add(mk(0))

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer 1: grow the store one record at a time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; !stop.Load(); i++ {
			st.Add(mk(i))
			if i%64 == 0 {
				// Replace with a same-shaped prefix so epochs move without
				// unbounded growth.
				snap := st.Records()
				st.Replace(snap[:len(snap)/2+1])
				i = len(snap)/2 + 1
			}
		}
	}()

	// Writer 2: epoch churn via Replace of a fresh set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if i%2 == 0 {
				st.Add(mk(1000000 + i))
			}
			_ = st.Epoch()
		}
	}()

	var reads atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := st.Records()
				n := len(snap)
				for i, r := range snap {
					if r == nil {
						t.Errorf("snapshot of %d records holds nil at %d", n, i)
						return
					}
					if r.ID == "" {
						t.Errorf("snapshot record %d/%d has empty ID", i, n)
						return
					}
				}
				if len(snap) != n {
					t.Errorf("snapshot length changed mid-walk: %d -> %d", n, len(snap))
					return
				}
				reads.Add(1)
			}
		}()
	}

	for reads.Load() < 5000 && !t.Failed() {
	}
	stop.Store(true)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reader completed a snapshot walk")
	}
}

// TestEpochAdvances pins the epoch contract refreshes rely on: unchanged
// stores report the same epoch; every Add and Replace moves it.
func TestEpochAdvances(t *testing.T) {
	schema := record.DefaultSchema(1)
	st := New(schema, CostModel{})
	e0 := st.Epoch()
	if st.Epoch() != e0 {
		t.Fatal("epoch moved without a mutation")
	}
	st.Add(record.New(schema, "a", "own"))
	e1 := st.Epoch()
	if e1 == e0 {
		t.Fatal("Add did not advance the epoch")
	}
	st.Replace(nil)
	if st.Epoch() == e1 {
		t.Fatal("Replace did not advance the epoch")
	}
}
