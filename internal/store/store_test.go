package store

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"roads/internal/query"
	"roads/internal/record"
)

func mixedSchema() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "cpu", Kind: record.Numeric},
		{Name: "mem", Kind: record.Numeric},
		{Name: "os", Kind: record.Categorical},
	})
}

func fill(st *Store, n int, seed int64) {
	s := st.Schema()
	rng := rand.New(rand.NewSource(seed))
	oses := []string{"linux", "bsd", "solaris"}
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(s, "r"+strconv.Itoa(i), "o")
		r.SetNum(0, rng.Float64())
		r.SetNum(1, rng.Float64())
		r.SetStr(2, oses[rng.Intn(len(oses))])
		recs[i] = r
	}
	st.Add(recs...)
}

func TestSearchRangeAndEq(t *testing.T) {
	st := New(mixedSchema(), CostModel{})
	fill(st, 1000, 1)
	q := query.New("q", query.NewRange("cpu", 0.2, 0.4), query.NewEq("os", "linux"))
	res, err := st.Search(q)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	// Verify against brute force.
	want := 0
	for _, r := range st.Records() {
		if q.MatchRecord(r) {
			want++
		}
	}
	if len(res.Records) != want {
		t.Fatalf("Search found %d; brute force %d", len(res.Records), want)
	}
	if want == 0 {
		t.Fatal("test needs non-empty result; adjust seed")
	}
}

func TestSearchUsesMostSelectiveIndex(t *testing.T) {
	st := New(mixedSchema(), CostModel{})
	fill(st, 1000, 2)
	// cpu in tiny range (selective) AND mem in [0,1] (everything): candidate
	// scan should be driven by cpu, so Scanned must be well below 1000.
	q := query.New("q", query.NewRange("cpu", 0.50, 0.52), query.NewRange("mem", 0, 1))
	res, err := st.Search(q)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if res.Scanned > 100 {
		t.Fatalf("Scanned = %d; index selection not working", res.Scanned)
	}
}

func TestSearchEmptyStore(t *testing.T) {
	st := New(mixedSchema(), DefaultCostModel())
	q := query.New("q", query.NewRange("cpu", 0, 1))
	res, err := st.Search(q)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res.Records) != 0 {
		t.Fatal("empty store must return no records")
	}
	if res.Cost != DefaultCostModel().PerQuery {
		t.Fatalf("empty store cost = %v; want PerQuery only", res.Cost)
	}
}

func TestSearchBindsUnboundQuery(t *testing.T) {
	st := New(mixedSchema(), CostModel{})
	fill(st, 10, 3)
	q := query.New("q", query.NewRange("cpu", 0, 1))
	if q.Bound() {
		t.Fatal("precondition: unbound")
	}
	if _, err := st.Search(q); err != nil {
		t.Fatalf("Search should bind: %v", err)
	}
	bad := query.New("q", query.NewRange("nope", 0, 1))
	if _, err := st.Search(bad); err == nil {
		t.Fatal("expected bind error for unknown attribute")
	}
}

func TestCostModelCharges(t *testing.T) {
	cm := CostModel{PerQuery: time.Millisecond, PerRecord: time.Microsecond, PerScan: time.Nanosecond}
	st := New(mixedSchema(), cm)
	fill(st, 500, 4)
	q := query.New("q", query.NewRange("cpu", 0, 1))
	res, err := st.Search(q)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	want := cm.PerQuery + time.Duration(res.Scanned)*cm.PerScan + time.Duration(len(res.Records))*cm.PerRecord
	if res.Cost != want {
		t.Fatalf("Cost = %v; want %v", res.Cost, want)
	}
	if len(res.Records) != 500 {
		t.Fatalf("full-range query found %d; want 500", len(res.Records))
	}
}

func TestReplaceRebuildsIndexes(t *testing.T) {
	st := New(mixedSchema(), CostModel{})
	fill(st, 100, 5)
	q := query.New("q", query.NewRange("cpu", 0, 1))
	if _, err := st.Search(q); err != nil {
		t.Fatal(err)
	}
	s := st.Schema()
	r := record.New(s, "only", "o")
	r.SetNum(0, 0.5)
	r.SetNum(1, 0.5)
	r.SetStr(2, "linux")
	st.Replace([]*record.Record{r})
	if st.Len() != 1 {
		t.Fatalf("Len after Replace = %d; want 1", st.Len())
	}
	res, err := st.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].ID != "only" {
		t.Fatal("Replace did not refresh search results")
	}
}

func TestCategoricalIndexExact(t *testing.T) {
	st := New(mixedSchema(), CostModel{})
	fill(st, 300, 6)
	q := query.New("q", query.NewEq("os", "bsd"))
	res, err := st.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Str(2) != "bsd" {
			t.Fatal("categorical search returned wrong value")
		}
	}
	// The index should scan only bsd rows.
	if res.Scanned != len(res.Records) {
		t.Fatalf("Scanned %d != matched %d for exact index", res.Scanned, len(res.Records))
	}
	missing := query.New("q2", query.NewEq("os", "plan9"))
	res2, err := st.Search(missing)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != 0 || res2.Scanned != 0 {
		t.Fatal("absent categorical value should scan nothing")
	}
}

func TestCountMatchesSearch(t *testing.T) {
	st := New(mixedSchema(), CostModel{})
	fill(st, 200, 7)
	q := query.New("q", query.NewRange("mem", 0.3, 0.6))
	n, err := st.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := st.Search(q)
	if n != len(res.Records) {
		t.Fatalf("Count = %d; Search = %d", n, len(res.Records))
	}
}

func TestConcurrentSearches(t *testing.T) {
	st := New(mixedSchema(), CostModel{})
	fill(st, 1000, 8)
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			total := 0
			for i := 0; i < 50; i++ {
				q := query.New("q", query.NewRange("cpu", 0.1, 0.9))
				res, err := st.Search(q)
				if err != nil {
					done <- -1
					return
				}
				total += len(res.Records)
			}
			done <- total
		}()
	}
	first := <-done
	if first < 0 {
		t.Fatal("concurrent search failed")
	}
	for g := 1; g < 8; g++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent searches disagree: %d vs %d", got, first)
		}
	}
}
