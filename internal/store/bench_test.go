package store

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

func benchStore(b *testing.B, indexed bool, n int) *Store {
	b.Helper()
	schema := record.DefaultSchema(8)
	var st *Store
	if indexed {
		st = New(schema, CostModel{})
	} else {
		st = NewScan(schema, CostModel{})
	}
	rng := rand.New(rand.NewSource(1))
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(schema, strconv.Itoa(i), "o")
		for j := 0; j < 8; j++ {
			r.SetNum(j, rng.Float64())
		}
		recs[i] = r
	}
	st.Add(recs...)
	return st
}

func benchQuery(b *testing.B, st *Store) {
	b.Helper()
	q := query.New("q",
		query.NewRange("a0", 0.4, 0.45),
		query.NewRange("a3", 0.1, 0.9),
	)
	if _, err := st.Search(q); err != nil { // warm indexes
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchIndexed10k(b *testing.B) { benchQuery(b, benchStore(b, true, 10000)) }
func BenchmarkSearchScan10k(b *testing.B)    { benchQuery(b, benchStore(b, false, 10000)) }
func BenchmarkSearchIndexed1k(b *testing.B)  { benchQuery(b, benchStore(b, true, 1000)) }
func BenchmarkSearchScan1k(b *testing.B)     { benchQuery(b, benchStore(b, false, 1000)) }
func BenchmarkIndexRebuild10k(b *testing.B) {
	st := benchStore(b, true, 10000)
	q := query.New("q", query.NewRange("a0", 0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Replace(st.Records()) // marks dirty
		if _, err := st.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func ingestRecords(schema *record.Schema, n int) []*record.Record {
	rng := rand.New(rand.NewSource(2))
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(schema, fmt.Sprintf("g%06d", i), "o")
		for j := 0; j < schema.NumAttrs(); j++ {
			r.SetNum(j, rng.Float64())
		}
		recs[i] = r
	}
	return recs
}

// BenchmarkShardedIngest measures one-record-at-a-time bulk ingest. The
// interesting read is across sizes: ns/op must scale linearly with n (the
// pre-sharding Store.Add copied the whole slice per call, making this
// quadratic). The shard axis shows hash fan-out costs nothing.
func BenchmarkShardedIngest(b *testing.B) {
	schema := record.DefaultSchema(8)
	for _, n := range []int{10000, 20000, 40000} {
		recs := ingestRecords(schema, n)
		for _, shards := range []int{1, 16} {
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st := NewWithOptions(schema, CostModel{}, Options{Shards: shards})
					for _, r := range recs {
						st.Add(r)
					}
					if st.Len() != n {
						b.Fatalf("Len = %d, want %d", st.Len(), n)
					}
				}
			})
		}
	}
}

// churnUpdates rewrites k randomly chosen records (fresh values, existing
// IDs) through Update, the write pattern of a resource owner whose
// inventory drifts between summary refreshes.
func churnUpdates(st *Store, schema *record.Schema, n, k int, rng *rand.Rand) {
	if k == 0 {
		return
	}
	recs := make([]*record.Record, k)
	for i := range recs {
		r := record.New(schema, fmt.Sprintf("g%06d", rng.Intn(n)), "o")
		for j := 0; j < schema.NumAttrs(); j++ {
			r.SetNum(j, rng.Float64())
		}
		recs[i] = r
	}
	st.Update(recs...)
}

// BenchmarkExportChurn is the PR's headline comparison: the per-refresh
// cost of producing an owner summary over a 100k-record store at 0%, 1%
// and 100% churn between refreshes. "monolithic" is the pre-sharding
// behaviour — every refresh rebuilds the summary from all records
// (summary.FromRecords). "sharded" maintains per-shard partials
// incrementally and merges them at export. The churn writes themselves
// run between timed regions (both designs pay the same write cost, and
// it is measured separately by BenchmarkShardedIngest); the timed export
// therefore carries whatever the churn provoked — the full rebuild for
// monolithic, the stale-shard rebuilds plus the K-way merge for sharded.
// At 0% churn the sharded export is a cache hit; at 1% only the removal
// threshold's occasional single-shard rebuild survives; at 100% every
// shard rebuilds, but on the export worker pool instead of serially.
func BenchmarkExportChurn(b *testing.B) {
	schema := record.DefaultSchema(8)
	cfg := summary.Config{Buckets: 64, Min: 0, Max: 1, Categorical: summary.UseValueSet}
	const n = 100000
	base := ingestRecords(schema, n)
	for _, churnPct := range []int{0, 1, 100} {
		churnN := n * churnPct / 100
		b.Run(fmt.Sprintf("churn=%d/mode=monolithic", churnPct), func(b *testing.B) {
			st := NewWithOptions(schema, CostModel{}, Options{Shards: 1, NoIndex: true})
			st.Add(base...)
			rng := rand.New(rand.NewSource(17))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if churnN > 0 {
					b.StopTimer()
					churnUpdates(st, schema, n, churnN, rng)
					b.StartTimer()
				}
				if _, err := summary.FromRecords(schema, cfg, st.Records()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("churn=%d/mode=sharded", churnPct), func(b *testing.B) {
			st := NewWithOptions(schema, CostModel{}, Options{Shards: 16})
			st.Add(base...)
			if err := st.EnableSummaries(cfg); err != nil {
				b.Fatal(err)
			}
			if _, err := st.ExportSummary(); err != nil { // warm the partials
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if churnN > 0 {
					b.StopTimer()
					churnUpdates(st, schema, n, churnN, rng)
					b.StartTimer()
				}
				if _, err := st.ExportSummary(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
