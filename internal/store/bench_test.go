package store

import (
	"math/rand"
	"strconv"
	"testing"

	"roads/internal/query"
	"roads/internal/record"
)

func benchStore(b *testing.B, indexed bool, n int) *Store {
	b.Helper()
	schema := record.DefaultSchema(8)
	var st *Store
	if indexed {
		st = New(schema, CostModel{})
	} else {
		st = NewScan(schema, CostModel{})
	}
	rng := rand.New(rand.NewSource(1))
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(schema, strconv.Itoa(i), "o")
		for j := 0; j < 8; j++ {
			r.SetNum(j, rng.Float64())
		}
		recs[i] = r
	}
	st.Add(recs...)
	return st
}

func benchQuery(b *testing.B, st *Store) {
	b.Helper()
	q := query.New("q",
		query.NewRange("a0", 0.4, 0.45),
		query.NewRange("a3", 0.1, 0.9),
	)
	if _, err := st.Search(q); err != nil { // warm indexes
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchIndexed10k(b *testing.B) { benchQuery(b, benchStore(b, true, 10000)) }
func BenchmarkSearchScan10k(b *testing.B)    { benchQuery(b, benchStore(b, false, 10000)) }
func BenchmarkSearchIndexed1k(b *testing.B)  { benchQuery(b, benchStore(b, true, 1000)) }
func BenchmarkSearchScan1k(b *testing.B)     { benchQuery(b, benchStore(b, false, 1000)) }
func BenchmarkIndexRebuild10k(b *testing.B) {
	st := benchStore(b, true, 10000)
	q := query.New("q", query.NewRange("a0", 0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Replace(st.Records()) // marks dirty
		if _, err := st.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}
