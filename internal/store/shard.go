package store

import (
	"sort"
	"sync"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

// shard is one hash slice of the store: its own lock, copy-on-write record
// slice, per-attribute indexes, ID map, mutation epoch and (when summaries
// are enabled) an incrementally maintained partial summary.
//
// The copy-on-write invariant with capacity headroom: a published element
// (index < the length any reader could have observed) is never rewritten in
// place. Appends write beyond every published length, so they may reuse the
// backing array; Remove/Update/Replace install fresh arrays. Readers
// therefore walk their snapshots without locks or copies.
type shard struct {
	st *Store

	mu      sync.RWMutex
	records []*record.Record
	// byID maps record ID -> position; built lazily on the first Remove or
	// Update (append-only workloads never pay for it) and maintained by
	// every mutation afterwards. On duplicate-ID appends the newest
	// position wins.
	byID map[string]int
	// epoch counts this shard's mutations (diagnostics and tests; the
	// store-level epoch is what caches key on).
	epoch uint64

	num map[int]*numericIndex
	cat map[int]map[string][]int
	// built: indexes constructed at least once; dirty: next search must
	// rebuild them. Appends on built, clean indexes extend them in place
	// instead of flipping dirty (see extendIndexesLocked).
	built bool
	dirty bool

	// Partial-summary state (see export.go). partial is nil until the
	// first rebuild; partialStale forces a rebuild at the next export;
	// removals counts records subtracted from partial since its last
	// rebuild (tracked-deletion threshold).
	summarize    bool
	scfg         summary.Config
	partial      *summary.Summary
	partialStale bool
	removals     int
}

func newShard(st *Store) *shard {
	return &shard{
		st:  st,
		num: make(map[int]*numericIndex),
		cat: make(map[int]map[string][]int),
	}
}

// snapshot returns the shard's published records (immutable; see the
// copy-on-write invariant above).
func (sh *shard) snapshot() []*record.Record {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.records
}

// add appends records. The records slice grows with headroom so a run of
// appends reuses one backing array: writes land beyond every published
// length, which no snapshot holder can observe.
func (sh *shard) add(recs []*record.Record) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	base := len(sh.records)
	if cap(sh.records)-base < len(recs) {
		next := make([]*record.Record, base, (base+len(recs))*3/2+8)
		copy(next, sh.records)
		sh.records = next
	}
	sh.records = append(sh.records, recs...)
	if sh.byID != nil {
		for j, r := range recs {
			sh.byID[r.ID] = base + j
		}
	}
	if sh.built && !sh.dirty && !sh.st.noIndex {
		sh.extendIndexesLocked(base, recs)
	} else {
		sh.dirty = true
	}
	if sh.summarize && !sh.partialStale {
		for _, r := range recs {
			sh.partial.AddRecord(r)
		}
	}
	sh.epoch++
}

// replace swaps the shard's record set. The caller passes ownership of
// recs (already a fresh slice).
func (sh *shard) replace(recs []*record.Record) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.records = recs
	sh.byID = nil
	sh.dirty = true
	if sh.summarize {
		sh.partialStale = true
		sh.removals = 0
	}
	sh.epoch++
}

// remove deletes the records stored under ids, compacting into a fresh
// array, and returns how many were present. Removed records are subtracted
// exactly from the partial summary when the summary kind allows it; Bloom
// partials (no subtraction) and threshold-exceeding removal runs mark the
// partial stale instead, falling back to a single-shard rebuild at the
// next export.
func (sh *shard) remove(ids []string) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ensureByIDLocked()
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		if p, ok := sh.byID[id]; ok {
			drop[p] = true
		}
	}
	if len(drop) == 0 {
		return 0
	}
	// The batch outcome is already known, so apply the tracked-deletion
	// threshold before subtracting: if this batch pushes the shard past the
	// rebuild fraction anyway, every per-record subtraction below would be
	// wasted work on a partial the next export discards.
	if sh.summarize && !sh.partialStale &&
		float64(sh.removals+len(drop)) > sh.st.remFrac*float64(len(sh.records)-len(drop)) {
		sh.partialStale = true
	}
	next := make([]*record.Record, 0, len(sh.records)-len(drop))
	for j, r := range sh.records {
		if drop[j] {
			sh.subtractLocked(r)
			continue
		}
		next = append(next, r)
	}
	sh.records = next
	sh.rebuildByIDLocked()
	sh.dirty = true
	sh.checkRemovalThresholdLocked()
	sh.epoch++
	return len(drop)
}

// update upserts records into a fresh array: present IDs are replaced in
// place (in the fresh copy), absent IDs append.
func (sh *shard) update(recs []*record.Record) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ensureByIDLocked()
	// Pre-count replacements so the tracked-deletion threshold can trip
	// before any subtraction happens (same rationale as in remove). The
	// count is conservative for batches that insert then re-update the same
	// new ID — the exact end-of-batch check below still catches those.
	if sh.summarize && !sh.partialStale {
		hits := 0
		for _, r := range recs {
			if _, ok := sh.byID[r.ID]; ok {
				hits++
			}
		}
		if hits > 0 &&
			float64(sh.removals+hits) > sh.st.remFrac*float64(len(sh.records)+len(recs)-hits) {
			sh.partialStale = true
		}
	}
	next := make([]*record.Record, len(sh.records), len(sh.records)+len(recs))
	copy(next, sh.records)
	replaced := 0
	for _, r := range recs {
		if p, ok := sh.byID[r.ID]; ok {
			old := next[p]
			next[p] = r
			replaced++
			if sh.summarize && !sh.partialStale {
				sh.subtractLocked(old)
				if !sh.partialStale {
					sh.partial.AddRecord(r)
				}
			}
		} else {
			sh.byID[r.ID] = len(next)
			next = append(next, r)
			if sh.summarize && !sh.partialStale {
				sh.partial.AddRecord(r)
			}
		}
	}
	sh.records = next
	sh.dirty = true
	sh.checkRemovalThresholdLocked()
	sh.epoch++
	return replaced
}

// subtractLocked removes one record's contribution from the partial
// summary, or marks the partial stale when the summary kind cannot
// subtract (Bloom filters).
func (sh *shard) subtractLocked(r *record.Record) {
	if !sh.summarize || sh.partialStale {
		return
	}
	if !sh.partial.Subtractable() {
		sh.partialStale = true
		return
	}
	_ = sh.partial.RemoveRecord(r)
	sh.removals++
}

// checkRemovalThresholdLocked applies the tracked-deletion threshold: once
// the removals subtracted since the last rebuild exceed the configured
// fraction of the shard's live records, the partial is marked stale so the
// next export rebuilds this one shard from scratch.
func (sh *shard) checkRemovalThresholdLocked() {
	if !sh.summarize || sh.partialStale || sh.removals == 0 {
		return
	}
	if float64(sh.removals) > sh.st.remFrac*float64(len(sh.records)) {
		sh.partialStale = true
	}
}

func (sh *shard) ensureByIDLocked() {
	if sh.byID == nil {
		sh.rebuildByIDLocked()
	}
}

func (sh *shard) rebuildByIDLocked() {
	m := make(map[string]int, len(sh.records))
	for j, r := range sh.records {
		m[r.ID] = j
	}
	sh.byID = m
}

// ensureIndexes rebuilds indexes if a removal/update/replace dirtied them.
// It upgrades to the write lock only when needed; appends never dirty
// already-built indexes (they extend in place).
func (sh *shard) ensureIndexes() {
	sh.mu.RLock()
	dirty := sh.dirty
	sh.mu.RUnlock()
	if !dirty {
		return
	}
	sh.mu.Lock()
	if sh.dirty {
		sh.rebuildIndexesLocked()
	}
	sh.mu.Unlock()
}

func (sh *shard) rebuildIndexesLocked() {
	sh.num = make(map[int]*numericIndex)
	sh.cat = make(map[int]map[string][]int)
	sh.built = true
	sh.dirty = false
	if sh.st.noIndex {
		return
	}
	schema := sh.st.schema
	for i := 0; i < schema.NumAttrs(); i++ {
		switch schema.Attr(i).Kind {
		case record.Numeric:
			idx := &numericIndex{vals: make([]float64, len(sh.records)), pos: make([]int, len(sh.records))}
			order := make([]int, len(sh.records))
			for j := range order {
				order[j] = j
			}
			attr := i
			sort.Slice(order, func(a, b int) bool {
				return sh.records[order[a]].Num(attr) < sh.records[order[b]].Num(attr)
			})
			for j, p := range order {
				idx.vals[j] = sh.records[p].Num(attr)
				idx.pos[j] = p
			}
			sh.num[i] = idx
		case record.Categorical:
			m := make(map[string][]int)
			for j, r := range sh.records {
				v := r.Str(i)
				m[v] = append(m[v], j)
			}
			sh.cat[i] = m
		}
	}
	sh.st.stats.indexRebuilds.Add(1)
}

// extendIndexesLocked folds freshly appended records (positions base..)
// into the built indexes without a rebuild: categorical postings append to
// their value lists, numeric values go to the index's unsorted pending
// tail, merged into the sorted run once the tail crosses its amortization
// threshold.
func (sh *shard) extendIndexesLocked(base int, recs []*record.Record) {
	schema := sh.st.schema
	for i := 0; i < schema.NumAttrs(); i++ {
		switch schema.Attr(i).Kind {
		case record.Numeric:
			idx := sh.num[i]
			if idx == nil {
				idx = &numericIndex{}
				sh.num[i] = idx
			}
			for j, r := range recs {
				idx.addPending(r.Num(i), base+j)
			}
			if idx.shouldMerge() {
				idx.mergePending()
			}
		case record.Categorical:
			m := sh.cat[i]
			if m == nil {
				m = make(map[string][]int)
				sh.cat[i] = m
			}
			for j, r := range recs {
				v := r.Str(i)
				m[v] = append(m[v], base+j)
			}
		}
	}
}

// searchLocked runs the per-shard index-scan plan and accumulates matches
// and scan counts into res: pick the predicate with the fewest candidates
// in this shard, then verify the remaining predicates record by record.
// Caller holds sh.mu for reading.
func (sh *shard) searchLocked(q *query.Query, res *Result) {
	if len(sh.records) == 0 {
		return
	}
	schema := sh.st.schema
	bestCount := len(sh.records) + 1
	bestCands := []int(nil)
	for _, p := range q.Preds {
		attr, ok := schema.Index(p.Attr)
		if !ok {
			continue
		}
		switch p.Op {
		case query.Range:
			if idx := sh.num[attr]; idx != nil {
				if c := idx.candidateCount(p.Lo, p.Hi); c < bestCount {
					bestCount = c
					bestCands = idx.candidates(p.Lo, p.Hi)
				}
			}
		case query.Eq:
			if m := sh.cat[attr]; m != nil {
				cands := m[p.Str]
				if len(cands) < bestCount {
					bestCount = len(cands)
					bestCands = cands
				}
			}
		}
	}
	if bestCands == nil && bestCount > len(sh.records) {
		// No indexed predicate; full scan of this shard.
		for _, r := range sh.records {
			res.Scanned++
			if q.MatchRecord(r) {
				res.Records = append(res.Records, r)
			}
		}
		return
	}
	for _, pos := range bestCands {
		res.Scanned++
		r := sh.records[pos]
		if q.MatchRecord(r) {
			res.Records = append(res.Records, r)
		}
	}
}

// numericIndex is a sorted list of (value, record position) pairs for one
// attribute, supporting range counting and candidate selection, plus an
// unsorted pending tail absorbing appends. The tail is scanned linearly by
// searches and merged into the sorted run once it crosses
// max(pendingMergeMin, len/4) entries (capped at pendingMergeMax so scan
// cost stays bounded) — amortized O(1) per append.
type numericIndex struct {
	vals []float64
	pos  []int
	// pending appends, unsorted.
	pvals []float64
	ppos  []int
}

const (
	pendingMergeMin = 64
	pendingMergeMax = 1024
)

func (idx *numericIndex) addPending(v float64, p int) {
	idx.pvals = append(idx.pvals, v)
	idx.ppos = append(idx.ppos, p)
}

func (idx *numericIndex) shouldMerge() bool {
	n := len(idx.pvals)
	if n < pendingMergeMin {
		return false
	}
	return n >= pendingMergeMax || 4*n >= len(idx.vals)
}

// mergePending sorts the pending tail and merges it with the sorted run
// into fresh arrays.
func (idx *numericIndex) mergePending() {
	np := len(idx.pvals)
	if np == 0 {
		return
	}
	order := make([]int, np)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx.pvals[order[a]] < idx.pvals[order[b]] })
	nv := len(idx.vals)
	vals := make([]float64, 0, nv+np)
	pos := make([]int, 0, nv+np)
	i, j := 0, 0
	for i < nv && j < np {
		pv := idx.pvals[order[j]]
		if idx.vals[i] <= pv {
			vals = append(vals, idx.vals[i])
			pos = append(pos, idx.pos[i])
			i++
		} else {
			vals = append(vals, pv)
			pos = append(pos, idx.ppos[order[j]])
			j++
		}
	}
	for ; i < nv; i++ {
		vals = append(vals, idx.vals[i])
		pos = append(pos, idx.pos[i])
	}
	for ; j < np; j++ {
		vals = append(vals, idx.pvals[order[j]])
		pos = append(pos, idx.ppos[order[j]])
	}
	idx.vals, idx.pos = vals, pos
	idx.pvals, idx.ppos = nil, nil
}

// candidateCount returns how many records fall in [lo,hi] on the numeric
// attribute: binary search on the sorted run plus a linear pass over the
// bounded pending tail.
func (idx *numericIndex) candidateCount(lo, hi float64) int {
	a := sort.SearchFloat64s(idx.vals, lo)
	b := sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] > hi })
	c := 0
	if b > a {
		c = b - a
	}
	for _, v := range idx.pvals {
		if v >= lo && v <= hi {
			c++
		}
	}
	return c
}

func (idx *numericIndex) candidates(lo, hi float64) []int {
	a := sort.SearchFloat64s(idx.vals, lo)
	b := sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] > hi })
	var main []int
	if b > a {
		main = idx.pos[a:b]
	}
	if len(idx.pvals) == 0 {
		return main
	}
	out := append(make([]int, 0, len(main)+len(idx.pvals)), main...)
	for j, v := range idx.pvals {
		if v >= lo && v <= hi {
			out = append(out, idx.ppos[j])
		}
	}
	return out
}
