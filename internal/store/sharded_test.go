package store

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

// mixedSchema has three numeric attributes and one categorical, so the
// equivalence tests cover both index families and both summary column
// types.
func shardedSchema() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "a0", Kind: record.Numeric},
		{Name: "a1", Kind: record.Numeric},
		{Name: "a2", Kind: record.Numeric},
		{Name: "enc", Kind: record.Categorical},
	})
}

var encValues = []string{"h264", "mpeg2", "av1", "vp9"}

func mixedRecord(schema *record.Schema, id string, rng *rand.Rand) *record.Record {
	r := record.New(schema, id, "owner")
	for j := 0; j < 3; j++ {
		r.SetNum(j, rng.Float64())
	}
	r.SetStr(3, encValues[rng.Intn(len(encValues))])
	return r
}

func sortedIDs(recs []*record.Record) []string {
	ids := make([]string, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}

func sameIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedEquivalence is the sharding correctness property: a 7-shard
// indexed store driven through a randomized Add/Remove/Update/Replace
// schedule must stay observationally identical to a single-shard
// scan-only store fed the same ops — same membership, same search
// results, same counts, and byte-identical summary exports (equal
// ComputeVersion, also equal to a from-scratch FromRecords over the same
// records). The version equality is what guarantees sharding changes
// nothing on the wire.
func TestShardedEquivalence(t *testing.T) {
	schema := shardedSchema()
	cfg := summary.Config{Buckets: 32, Min: 0, Max: 1, Categorical: summary.UseValueSet}
	mono := NewWithOptions(schema, CostModel{}, Options{Shards: 1, NoIndex: true})
	shrd := NewWithOptions(schema, CostModel{}, Options{Shards: 7})
	if err := mono.EnableSummaries(cfg); err != nil {
		t.Fatal(err)
	}
	if err := shrd.EnableSummaries(cfg); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	var live []string
	seq := 0
	fresh := func() *record.Record {
		seq++
		id := fmt.Sprintf("r%05d", seq)
		live = append(live, id)
		return mixedRecord(schema, id, rng)
	}

	check := func(step int) {
		t.Helper()
		if mono.Len() != shrd.Len() {
			t.Fatalf("step %d: Len %d (mono) != %d (sharded)", step, mono.Len(), shrd.Len())
		}
		mids, sids := sortedIDs(mono.Records()), sortedIDs(shrd.Records())
		if !sameIDs(mids, sids) {
			t.Fatalf("step %d: membership diverged: %d vs %d records", step, len(mids), len(sids))
		}
		lo := rng.Float64() * 0.8
		q := query.New("q",
			query.NewRange("a0", lo, lo+0.3),
			query.NewEq("enc", encValues[rng.Intn(len(encValues))]),
		)
		mres, err := mono.Search(q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		sres, err := shrd.Search(q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(sortedIDs(mres.Records), sortedIDs(sres.Records)) {
			t.Fatalf("step %d: search results diverged: %d vs %d matches",
				step, len(mres.Records), len(sres.Records))
		}
		mc, err := mono.Count(q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		sc, err := shrd.Count(q.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if mc != sc || sc != len(sres.Records) {
			t.Fatalf("step %d: counts diverged: mono %d, sharded %d, matches %d",
				step, mc, sc, len(sres.Records))
		}
		msum, err := mono.ExportSummary()
		if err != nil {
			t.Fatal(err)
		}
		ssum, err := shrd.ExportSummary()
		if err != nil {
			t.Fatal(err)
		}
		if msum.Version != ssum.Version {
			t.Fatalf("step %d: export versions diverged: %d vs %d", step, msum.Version, ssum.Version)
		}
		ref, err := summary.FromRecords(schema, cfg, mono.Records())
		if err != nil {
			t.Fatal(err)
		}
		if ssum.Version != ref.Version {
			t.Fatalf("step %d: merged export version %d != from-scratch version %d",
				step, ssum.Version, ref.Version)
		}
	}

	for step := 0; step < 240; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // bulk add
			n := 1 + rng.Intn(20)
			recs := make([]*record.Record, n)
			for i := range recs {
				recs[i] = fresh()
			}
			mono.Add(recs...)
			shrd.Add(recs...)
		case 4, 5: // remove random live IDs (duplicates allowed)
			if len(live) == 0 {
				continue
			}
			k := 1 + rng.Intn(5)
			ids := make([]string, 0, k)
			for i := 0; i < k; i++ {
				ids = append(ids, live[rng.Intn(len(live))])
			}
			mr := mono.Remove(ids...)
			sr := shrd.Remove(ids...)
			if mr != sr {
				t.Fatalf("step %d: Remove returned %d (mono) vs %d (sharded)", step, mr, sr)
			}
			gone := make(map[string]bool, len(ids))
			for _, id := range ids {
				gone[id] = true
			}
			kept := live[:0]
			for _, id := range live {
				if !gone[id] {
					kept = append(kept, id)
				}
			}
			live = kept
		case 6, 7: // upsert: rewrite existing records and insert new ones
			recs := make([]*record.Record, 0, 4)
			if len(live) > 0 {
				for i := 0; i < 2; i++ {
					id := live[rng.Intn(len(live))]
					recs = append(recs, mixedRecord(schema, id, rng))
				}
			}
			recs = append(recs, fresh())
			mu := mono.Update(recs...)
			su := shrd.Update(recs...)
			if mu != su {
				t.Fatalf("step %d: Update returned %d (mono) vs %d (sharded)", step, mu, su)
			}
		case 8: // rare full replace with a regenerated set
			n := 20 + rng.Intn(40)
			live = live[:0]
			recs := make([]*record.Record, n)
			for i := range recs {
				recs[i] = fresh()
			}
			mono.Replace(recs)
			shrd.Replace(recs)
		case 9: // no-op remove of never-issued IDs
			if mr, sr := mono.Remove("nope-a", "nope-b"), shrd.Remove("nope-a", "nope-b"); mr != 0 || sr != 0 {
				t.Fatalf("step %d: removing missing IDs returned %d/%d", step, mr, sr)
			}
		}
		if step%20 == 19 {
			check(step)
		}
	}
	check(-1)
}

// TestShardedConcurrentAccess hammers a sharded store with concurrent
// readers (Search, Records, Count, ExportSummary) while one writer churns
// adds, removes, and updates. It asserts nothing beyond internal
// consistency — its value is running under the race detector in the tier-1
// gate, where any unlocked shard state surfaces.
func TestShardedConcurrentAccess(t *testing.T) {
	schema := shardedSchema()
	st := NewWithOptions(schema, CostModel{}, Options{Shards: 4})
	if err := st.EnableSummaries(summary.Config{Buckets: 16, Min: 0, Max: 1, Categorical: summary.UseValueSet}); err != nil {
		t.Fatal(err)
	}
	seedRng := rand.New(rand.NewSource(7))
	recs := make([]*record.Record, 200)
	for i := range recs {
		recs[i] = mixedRecord(schema, fmt.Sprintf("seed%03d", i), seedRng)
	}
	st.Add(recs...)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := query.New("q", query.NewRange("a0", 0.2, 0.7))
				if _, err := st.Search(q); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Count(query.New("c", query.NewEq("enc", encValues[rng.Intn(len(encValues))]))); err != nil {
					t.Error(err)
					return
				}
				_ = st.Records()
				if _, err := st.ExportSummary(); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w + 1))
	}

	wrng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			st.Add(mixedRecord(schema, fmt.Sprintf("w%04d", i), wrng))
		case 1:
			st.Remove(fmt.Sprintf("seed%03d", wrng.Intn(200)))
		case 2:
			st.Update(mixedRecord(schema, fmt.Sprintf("seed%03d", wrng.Intn(200)), wrng))
		}
	}
	close(done)
	wg.Wait()
	if st.Len() < 0 || st.Len() > 200+100 {
		t.Fatalf("implausible final size %d", st.Len())
	}
}

// TestBulkIngestLinearAllocs pins the bulk-ingest fix: N one-record Adds
// must allocate O(N) total, not O(N²). The old Store.Add copied the full
// record slice on every call — at 20k records that costs ~1.6 GB of
// copying; the copy-on-write headroom discipline brings it under a few MB.
// The bound below is ~25× looser than measured so scheduler noise cannot
// flake it while still sitting three orders of magnitude under quadratic.
func TestBulkIngestLinearAllocs(t *testing.T) {
	schema := record.DefaultSchema(8)
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	recs := make([]*record.Record, n)
	for i := range recs {
		r := record.New(schema, fmt.Sprintf("r%05d", i), "o")
		for j := 0; j < 8; j++ {
			r.SetNum(j, rng.Float64())
		}
		recs[i] = r
	}
	st := NewWithOptions(schema, CostModel{}, Options{Shards: DefaultShards})

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, r := range recs {
		st.Add(r)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc
	if allocated > 64<<20 {
		t.Fatalf("ingesting %d records one at a time allocated %d MB; quadratic copying is back",
			n, allocated>>20)
	}
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
}

func addBatch(t *testing.T, st *Store, schema *record.Schema, start, n int, rng *rand.Rand) {
	t.Helper()
	recs := make([]*record.Record, n)
	for i := range recs {
		recs[i] = mixedRecord(schema, fmt.Sprintf("r%05d", start+i), rng)
	}
	st.Add(recs...)
}

// TestIncrementalIndexAppend verifies appends extend warm indexes in
// place: after the first search builds every shard's indexes, further Adds
// must not dirty any shard or force a rebuild — new numeric values land in
// the pending tails and searches still see every record.
func TestIncrementalIndexAppend(t *testing.T) {
	schema := shardedSchema()
	st := NewWithOptions(schema, CostModel{}, Options{Shards: 4})
	rng := rand.New(rand.NewSource(5))
	addBatch(t, st, schema, 0, 400, rng)

	q := query.New("q", query.NewRange("a0", 0, 1))
	res, err := st.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 400 {
		t.Fatalf("warm search matched %d of 400", len(res.Records))
	}
	base := st.Stats().IndexRebuilds
	if base != 4 {
		t.Fatalf("first search built %d shard indexes, want 4", base)
	}

	addBatch(t, st, schema, 400, 50, rng)
	pending := 0
	for _, sh := range st.shards {
		sh.mu.RLock()
		if sh.dirty {
			sh.mu.RUnlock()
			t.Fatal("append dirtied a warm shard; incremental path not taken")
		}
		if idx := sh.num[0]; idx != nil {
			pending += len(idx.pvals)
		}
		sh.mu.RUnlock()
	}
	// 50 appends across 4 shards stay far below pendingMergeMin, so every
	// new value must still sit in a pending tail.
	if pending != 50 {
		t.Fatalf("pending tail holds %d values, want 50", pending)
	}

	res, err = st.Search(query.New("q2", query.NewRange("a0", 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 450 {
		t.Fatalf("post-append search matched %d of 450", len(res.Records))
	}
	if got := st.Stats().IndexRebuilds; got != base {
		t.Fatalf("append forced %d index rebuilds", got-base)
	}
}

// TestRemoveDirtiesOnlyOwningShard verifies removal invalidation is
// shard-local: removing one record re-sorts exactly the shard that owned
// it (one extra rebuild), while the other shards keep their warm indexes.
func TestRemoveDirtiesOnlyOwningShard(t *testing.T) {
	schema := shardedSchema()
	st := NewWithOptions(schema, CostModel{}, Options{Shards: 4})
	rng := rand.New(rand.NewSource(6))
	addBatch(t, st, schema, 0, 400, rng)
	if _, err := st.Search(query.New("q", query.NewRange("a0", 0, 1))); err != nil {
		t.Fatal(err)
	}
	base := st.Stats().IndexRebuilds

	victim := "r00123"
	owner := st.shardIndex(victim)
	if got := st.Remove(victim); got != 1 {
		t.Fatalf("Remove returned %d, want 1", got)
	}
	for i, sh := range st.shards {
		sh.mu.RLock()
		dirty := sh.dirty
		sh.mu.RUnlock()
		if dirty != (i == owner) {
			t.Fatalf("shard %d dirty=%v after removing from shard %d", i, dirty, owner)
		}
	}

	res, err := st.Search(query.New("q2", query.NewRange("a0", 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 399 {
		t.Fatalf("post-remove search matched %d of 399", len(res.Records))
	}
	for _, r := range res.Records {
		if r.ID == victim {
			t.Fatal("removed record still surfaces in search results")
		}
	}
	if got := st.Stats().IndexRebuilds; got != base+1 {
		t.Fatalf("removal caused %d rebuilds, want exactly 1", got-base)
	}
}

// TestRemovalThresholdRebuild exercises the tracked-deletion fallback:
// with ValueSet summaries, removals subtract from the shard partial
// exactly until the tracked-removal fraction trips, at which point the
// next export rebuilds that shard's partial from its records. Versions
// must match a from-scratch summary on both sides of the threshold.
func TestRemovalThresholdRebuild(t *testing.T) {
	schema := shardedSchema()
	cfg := summary.Config{Buckets: 32, Min: 0, Max: 1, Categorical: summary.UseValueSet}
	st := NewWithOptions(schema, CostModel{}, Options{Shards: 1, RemovalRebuildFraction: 0.1})
	rng := rand.New(rand.NewSource(8))
	addBatch(t, st, schema, 0, 100, rng)
	if err := st.EnableSummaries(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExportSummary(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().ShardRebuilds; got != 1 {
		t.Fatalf("first export did %d shard rebuilds, want 1", got)
	}

	checkVersion := func(when string) {
		t.Helper()
		sum, err := st.ExportSummary()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := summary.FromRecords(schema, cfg, st.Records())
		if err != nil {
			t.Fatal(err)
		}
		if sum.Version != ref.Version {
			t.Fatalf("%s: export version %d != from-scratch %d", when, sum.Version, ref.Version)
		}
	}

	// 5 removals out of 100: under the 10% threshold, so the partial is
	// maintained by exact subtraction — no further rebuild.
	for i := 0; i < 5; i++ {
		st.Remove(fmt.Sprintf("r%05d", i))
	}
	checkVersion("below threshold")
	if got := st.Stats().ShardRebuilds; got != 1 {
		t.Fatalf("below-threshold removals forced a rebuild (total %d)", got)
	}

	// 6 more trips the fraction (11 tracked removals > 0.1 × 89 records):
	// the partial goes stale and the next export rebuilds the shard.
	for i := 5; i < 11; i++ {
		st.Remove(fmt.Sprintf("r%05d", i))
	}
	checkVersion("above threshold")
	if got := st.Stats().ShardRebuilds; got != 2 {
		t.Fatalf("above-threshold export did %d total rebuilds, want 2", got)
	}
}

// TestBloomRemovalForcesRebuild pins the Bloom-mode rule: Bloom filters
// cannot subtract, so the first removal marks the shard partial stale
// regardless of the threshold, and the next export rebuilds it.
func TestBloomRemovalForcesRebuild(t *testing.T) {
	schema := shardedSchema()
	cfg := summary.Config{Buckets: 32, Min: 0, Max: 1,
		Categorical: summary.UseBloom, BloomBits: 256, BloomHashes: 3}
	st := NewWithOptions(schema, CostModel{}, Options{Shards: 1})
	rng := rand.New(rand.NewSource(9))
	addBatch(t, st, schema, 0, 50, rng)
	if err := st.EnableSummaries(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExportSummary(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().ShardRebuilds; got != 1 {
		t.Fatalf("first export did %d rebuilds, want 1", got)
	}
	st.Remove("r00000")
	sum, err := st.ExportSummary()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().ShardRebuilds; got != 2 {
		t.Fatalf("Bloom-mode removal led to %d total rebuilds, want 2", got)
	}
	ref, err := summary.FromRecords(schema, cfg, st.Records())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Version != ref.Version {
		t.Fatalf("post-removal export version %d != from-scratch %d", sum.Version, ref.Version)
	}
}

// TestExportSummaryCaching verifies the merged-export cache: repeated
// exports with no interleaved mutation return the cached summary (counted
// by ExportsCached), and a no-op Remove of absent IDs does not invalidate
// it — only real mutations move the store epoch.
func TestExportSummaryCaching(t *testing.T) {
	schema := shardedSchema()
	st := NewWithOptions(schema, CostModel{}, Options{Shards: 4})
	rng := rand.New(rand.NewSource(10))
	addBatch(t, st, schema, 0, 80, rng)
	if err := st.EnableSummaries(summary.Config{Buckets: 16, Min: 0, Max: 1, Categorical: summary.UseValueSet}); err != nil {
		t.Fatal(err)
	}
	first, err := st.ExportSummary()
	if err != nil {
		t.Fatal(err)
	}
	merges := st.Stats().PartialMerges
	if merges != 4 {
		t.Fatalf("first export merged %d partials, want 4", merges)
	}

	st.Remove("never-existed")
	again, err := st.ExportSummary()
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("no-op remove invalidated the export cache")
	}
	if got := st.Stats().ExportsCached; got != 1 {
		t.Fatalf("ExportsCached = %d, want 1", got)
	}
	if got := st.Stats().PartialMerges; got != merges {
		t.Fatalf("cached export re-merged partials (%d → %d)", merges, got)
	}

	st.Add(mixedRecord(schema, "extra", rng))
	third, err := st.ExportSummary()
	if err != nil {
		t.Fatal(err)
	}
	if third == first || third.Version == first.Version {
		t.Fatal("mutation did not produce a fresh export")
	}
}
