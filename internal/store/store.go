// Package store is the local resource store attached to a ROADS server or
// resource owner. It plays the role of the DB2 backend in the paper's
// prototype: it indexes records per attribute so that matching is faster
// than a full scan, and it charges a configurable retrieval cost per
// matched record so the Fig. 11 response-time experiment can model backend
// work that pure network simulation cannot.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"roads/internal/query"
	"roads/internal/record"
)

// CostModel charges virtual time for backend work, emulating the paper's
// DB2-backed record retrieval. Zero values mean free operations.
type CostModel struct {
	// PerQuery is the fixed cost of starting a local search (query
	// parsing, index lookup).
	PerQuery time.Duration
	// PerRecord is the cost of retrieving and serializing one matching
	// record.
	PerRecord time.Duration
	// PerScan is the cost of examining one candidate record during
	// matching.
	PerScan time.Duration
}

// DefaultCostModel approximates an indexed database on 2008-era hardware:
// 2 ms per query, 50 µs per returned record, 200 ns per scanned candidate.
// With these constants a 3% selectivity query over 200k records costs
// ~300 ms of retrieval — the regime where the paper's parallel ROADS
// retrieval overtakes the centralized repository.
func DefaultCostModel() CostModel {
	return CostModel{
		PerQuery:  2 * time.Millisecond,
		PerRecord: 50 * time.Microsecond,
		PerScan:   200 * time.Nanosecond,
	}
}

// numericIndex is a sorted list of (value, record position) pairs for one
// attribute, supporting range counting and candidate selection.
type numericIndex struct {
	vals []float64
	pos  []int
}

// Store holds one participant's records with per-attribute indexes. It is
// safe for concurrent readers once built; mutations take the write lock.
type Store struct {
	mu     sync.RWMutex
	schema *record.Schema
	// records is copy-on-write: Add and Replace install a fresh slice and
	// never mutate a published one, so Records can hand the slice itself to
	// readers (no per-call copy) and a reader's snapshot stays immutable
	// while mutations land concurrently.
	records []*record.Record
	// epoch counts mutations (Add/Replace). Readers that derive state from
	// the records — summary refresh above all — compare epochs to skip
	// recomputing when nothing changed.
	epoch   uint64
	num     map[int]*numericIndex // attr position -> index
	cat     map[int]map[string][]int
	dirty   bool
	cost    CostModel
	noIndex bool
}

// New creates an empty store for the schema.
func New(schema *record.Schema, cost CostModel) *Store {
	return &Store{
		schema: schema,
		num:    make(map[int]*numericIndex),
		cat:    make(map[int]map[string][]int),
		cost:   cost,
	}
}

// NewScan creates a store that never builds indexes and answers every
// search by a full scan. Large simulations with many small stores (e.g.
// SWORD's per-ring-member stores) use it to trade CPU for the index memory.
func NewScan(schema *record.Schema, cost CostModel) *Store {
	st := New(schema, cost)
	st.noIndex = true
	return st
}

// Schema returns the store's schema.
func (st *Store) Schema() *record.Schema { return st.schema }

// Add appends records; indexes are rebuilt lazily on the next query.
func (st *Store) Add(recs ...*record.Record) {
	st.mu.Lock()
	defer st.mu.Unlock()
	next := make([]*record.Record, 0, len(st.records)+len(recs))
	next = append(next, st.records...)
	next = append(next, recs...)
	st.records = next
	st.epoch++
	st.dirty = true
}

// Replace swaps the full record set (soft-state refresh from an owner).
func (st *Store) Replace(recs []*record.Record) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.records = append(st.records[:0:0], recs...)
	st.epoch++
	st.dirty = true
}

// Len returns the number of stored records.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.records)
}

// Records returns the stored records. The slice is immutable — mutations
// install a fresh slice rather than appending in place — so the returned
// snapshot is safe to walk without a copy while Add/Replace land
// concurrently. Callers must not mutate it.
func (st *Store) Records() []*record.Record {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.records
}

// Epoch returns the store's mutation epoch: it advances on every Add and
// Replace, so a caller that cached epoch-N derived state (a summary, a
// count) can skip recomputation while Epoch still returns N.
func (st *Store) Epoch() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.epoch
}

func (st *Store) rebuildLocked() {
	st.num = make(map[int]*numericIndex)
	st.cat = make(map[int]map[string][]int)
	if st.noIndex {
		st.dirty = false
		return
	}
	for i := 0; i < st.schema.NumAttrs(); i++ {
		switch st.schema.Attr(i).Kind {
		case record.Numeric:
			idx := &numericIndex{vals: make([]float64, len(st.records)), pos: make([]int, len(st.records))}
			order := make([]int, len(st.records))
			for j := range order {
				order[j] = j
			}
			attr := i
			sort.Slice(order, func(a, b int) bool {
				return st.records[order[a]].Num(attr) < st.records[order[b]].Num(attr)
			})
			for j, p := range order {
				idx.vals[j] = st.records[p].Num(attr)
				idx.pos[j] = p
			}
			st.num[i] = idx
		case record.Categorical:
			m := make(map[string][]int)
			for j, r := range st.records {
				v := r.Str(i)
				m[v] = append(m[v], j)
			}
			st.cat[i] = m
		}
	}
	st.dirty = false
}

// ensureIndexes rebuilds indexes if records changed. It upgrades to the
// write lock only when needed.
func (st *Store) ensureIndexes() {
	st.mu.RLock()
	dirty := st.dirty
	st.mu.RUnlock()
	if !dirty {
		return
	}
	st.mu.Lock()
	if st.dirty {
		st.rebuildLocked()
	}
	st.mu.Unlock()
}

// candidateCount returns how many records fall in [lo,hi] on the numeric
// attribute, via binary search on the sorted index.
func (idx *numericIndex) candidateCount(lo, hi float64) int {
	a := sort.SearchFloat64s(idx.vals, lo)
	b := sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] > hi })
	if b < a {
		return 0
	}
	return b - a
}

func (idx *numericIndex) candidates(lo, hi float64) []int {
	a := sort.SearchFloat64s(idx.vals, lo)
	b := sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] > hi })
	if b <= a {
		return nil
	}
	return idx.pos[a:b]
}

// Result reports a local search outcome: the matching records and the
// modeled backend cost.
type Result struct {
	Records []*record.Record
	// Cost is the modeled backend time: PerQuery + PerScan*scanned +
	// PerRecord*len(Records).
	Cost time.Duration
	// Scanned is how many candidate records were examined.
	Scanned int
}

// Search returns the records matching q along with the modeled cost. It
// picks the most selective indexed predicate to produce candidates, then
// verifies remaining predicates record by record — the classic index-scan
// plan the DB2 backend would run.
func (st *Store) Search(q *query.Query) (Result, error) {
	if !q.Bound() {
		if err := q.Bind(st.schema); err != nil {
			return Result{}, fmt.Errorf("store: %w", err)
		}
	}
	st.ensureIndexes()
	st.mu.RLock()
	defer st.mu.RUnlock()

	res := Result{Cost: st.cost.PerQuery}
	if len(st.records) == 0 {
		return res, nil
	}

	// Choose the predicate with the fewest candidates.
	bestCount := len(st.records) + 1
	bestCands := []int(nil)
	for _, p := range q.Preds {
		attr, ok := st.schema.Index(p.Attr)
		if !ok {
			continue
		}
		switch p.Op {
		case query.Range:
			if idx := st.num[attr]; idx != nil {
				if c := idx.candidateCount(p.Lo, p.Hi); c < bestCount {
					bestCount = c
					bestCands = idx.candidates(p.Lo, p.Hi)
				}
			}
		case query.Eq:
			if m := st.cat[attr]; m != nil {
				cands := m[p.Str]
				if len(cands) < bestCount {
					bestCount = len(cands)
					bestCands = cands
				}
			}
		}
	}
	if bestCands == nil && bestCount > len(st.records) {
		// No indexed predicate; full scan.
		bestCands = make([]int, len(st.records))
		for i := range bestCands {
			bestCands[i] = i
		}
	}

	for _, pos := range bestCands {
		res.Scanned++
		r := st.records[pos]
		if q.MatchRecord(r) {
			res.Records = append(res.Records, r)
		}
	}
	res.Cost += time.Duration(res.Scanned) * st.cost.PerScan
	res.Cost += time.Duration(len(res.Records)) * st.cost.PerRecord
	return res, nil
}

// Count returns the number of matching records without charging retrieval
// cost (used for selectivity measurement).
func (st *Store) Count(q *query.Query) (int, error) {
	res, err := st.Search(q)
	if err != nil {
		return 0, err
	}
	return len(res.Records), nil
}
