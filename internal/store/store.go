package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

// CostModel charges virtual time for backend work, emulating the paper's
// DB2-backed record retrieval. Zero values mean free operations.
type CostModel struct {
	// PerQuery is the fixed cost of starting a local search (query
	// parsing, index lookup).
	PerQuery time.Duration
	// PerRecord is the cost of retrieving and serializing one matching
	// record.
	PerRecord time.Duration
	// PerScan is the cost of examining one candidate record during
	// matching.
	PerScan time.Duration
}

// DefaultCostModel approximates an indexed database on 2008-era hardware:
// 2 ms per query, 50 µs per returned record, 200 ns per scanned candidate.
// With these constants a 3% selectivity query over 200k records costs
// ~300 ms of retrieval — the regime where the paper's parallel ROADS
// retrieval overtakes the centralized repository.
func DefaultCostModel() CostModel {
	return CostModel{
		PerQuery:  2 * time.Millisecond,
		PerRecord: 50 * time.Microsecond,
		PerScan:   200 * time.Nanosecond,
	}
}

// DefaultShards is the shard count used when Options.Shards is zero. Eight
// shards keep per-shard index rebuilds and partial-summary rebuilds small
// without fragmenting small stores into empty shards.
const DefaultShards = 8

// DefaultRemovalRebuildFraction is the tracked-deletion threshold applied
// when Options.RemovalRebuildFraction is zero: once the removals subtracted
// from a shard's partial summary since its last rebuild exceed this
// fraction of the shard's live records, the partial is marked stale and the
// next export rebuilds that one shard from its records. Subtraction on
// value-set/histogram partials is exact, so this is a drift bound for
// future approximate summary kinds (equi-depth, sketches) more than a
// correctness requirement; Bloom partials cannot subtract at all and go
// stale on the first removal regardless.
const DefaultRemovalRebuildFraction = 0.5

// Options tunes store construction beyond the schema and cost model.
type Options struct {
	// Shards is the shard count; zero means DefaultShards. Records map to
	// shards by ID hash, so the same ID always lands in the same shard.
	Shards int
	// NoIndex disables per-attribute indexes: every search is a full scan.
	// Large simulations with many small stores use it to trade CPU for the
	// index memory.
	NoIndex bool
	// RemovalRebuildFraction overrides DefaultRemovalRebuildFraction.
	RemovalRebuildFraction float64
}

// Store holds one participant's records sharded by record-key hash. It is
// safe for concurrent use: readers proceed under per-shard read locks and
// mutations on different shards do not contend.
type Store struct {
	schema  *record.Schema
	cost    CostModel
	noIndex bool
	remFrac float64
	shards  []*shard

	// epoch counts store-level mutations (Add/Replace/Remove/Update that
	// changed anything). Readers that derive state from the records —
	// summary refresh above all — compare epochs to skip recomputing when
	// nothing changed.
	epoch atomic.Uint64
	// count tracks the live record total across shards.
	count atomic.Int64

	// snapMu guards the Records() concatenation cache: the merged
	// cross-shard snapshot built at snapEpoch. The epoch is read before
	// the shard snapshots are collected, so a concurrent mutation can only
	// make the cached snapshot newer than its epoch claims — the next call
	// rebuilds. Never the stale direction.
	snapMu    sync.Mutex
	snap      []*record.Record
	snapEpoch uint64
	haveSnap  bool

	// Summary-export state; see export.go.
	sumMu       sync.Mutex
	summarize   bool
	scfg        summary.Config
	merged      *summary.Summary
	mergedEpoch uint64
	haveMerged  bool

	stats storeStats
}

// storeStats are the maintenance counters surfaced by Stats().
type storeStats struct {
	shardRebuilds atomic.Uint64
	partialMerges atomic.Uint64
	exportsCached atomic.Uint64
	indexRebuilds atomic.Uint64
}

// New creates an empty store for the schema with DefaultShards shards.
func New(schema *record.Schema, cost CostModel) *Store {
	return NewWithOptions(schema, cost, Options{})
}

// NewScan creates a single-shard store that never builds indexes and
// answers every search by a full scan. Large simulations with many small
// stores (e.g. SWORD's per-ring-member stores) use it to trade CPU for the
// index memory.
func NewScan(schema *record.Schema, cost CostModel) *Store {
	return NewWithOptions(schema, cost, Options{Shards: 1, NoIndex: true})
}

// NewWithOptions creates an empty store with explicit sharding options.
func NewWithOptions(schema *record.Schema, cost CostModel, opts Options) *Store {
	k := opts.Shards
	if k <= 0 {
		k = DefaultShards
	}
	frac := opts.RemovalRebuildFraction
	if frac <= 0 {
		frac = DefaultRemovalRebuildFraction
	}
	st := &Store{
		schema:  schema,
		cost:    cost,
		noIndex: opts.NoIndex,
		remFrac: frac,
		shards:  make([]*shard, k),
	}
	for i := range st.shards {
		st.shards[i] = newShard(st)
	}
	return st
}

// Schema returns the store's schema.
func (st *Store) Schema() *record.Schema { return st.schema }

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// fnv32a is FNV-1a over the record ID; inlined so per-record shard routing
// allocates nothing.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (st *Store) shardIndex(id string) int {
	if len(st.shards) == 1 {
		return 0
	}
	return int(fnv32a(id) % uint32(len(st.shards)))
}

// groupByShard buckets records by owning shard. The single-shard case is
// handled by the callers without allocating.
func (st *Store) groupByShard(recs []*record.Record) [][]*record.Record {
	groups := make([][]*record.Record, len(st.shards))
	for _, r := range recs {
		si := st.shardIndex(r.ID)
		groups[si] = append(groups[si], r)
	}
	return groups
}

// Add appends records. Appends are amortized O(1) per record: each shard
// keeps capacity headroom in its copy-on-write slice, and a write at an
// index beyond any published length is invisible to snapshot holders, so N
// single-record Adds cost O(N) total instead of the O(N²) a
// full-copy-per-Add store pays. Indexes extend in place when already built
// (see shard.extendIndexesLocked).
func (st *Store) Add(recs ...*record.Record) {
	if len(recs) == 0 {
		return
	}
	switch {
	case len(st.shards) == 1:
		st.shards[0].add(recs)
	case len(recs) == 1:
		st.shards[st.shardIndex(recs[0].ID)].add(recs)
	default:
		for si, g := range st.groupByShard(recs) {
			if len(g) > 0 {
				st.shards[si].add(g)
			}
		}
	}
	st.count.Add(int64(len(recs)))
	st.epoch.Add(1)
}

// Replace swaps the full record set (soft-state refresh from an owner).
// Every shard's partial summary and indexes are rebuilt lazily afterwards.
func (st *Store) Replace(recs []*record.Record) {
	if len(st.shards) == 1 {
		st.shards[0].replace(append(recs[:0:0], recs...))
	} else {
		for si, g := range st.groupByShard(recs) {
			st.shards[si].replace(g)
		}
	}
	st.count.Store(int64(len(recs)))
	st.epoch.Add(1)
}

// Remove deletes the records stored under the given IDs and returns how
// many were present. Each touched shard compacts its slice into a fresh
// array (snapshot holders keep the old one), subtracts the removed records
// from its partial summary when the summary kind supports exact
// subtraction, and marks only itself index-dirty. Removing only absent IDs
// mutates nothing and does not advance the epoch.
func (st *Store) Remove(ids ...string) int {
	if len(ids) == 0 {
		return 0
	}
	removed := 0
	if len(st.shards) == 1 {
		removed = st.shards[0].remove(ids)
	} else {
		groups := make([][]string, len(st.shards))
		for _, id := range ids {
			si := st.shardIndex(id)
			groups[si] = append(groups[si], id)
		}
		for si, g := range groups {
			if len(g) > 0 {
				removed += st.shards[si].remove(g)
			}
		}
	}
	if removed > 0 {
		st.count.Add(-int64(removed))
		st.epoch.Add(1)
	}
	return removed
}

// Update upserts records by ID: a record whose ID is present replaces the
// stored one (counted in the return value), an absent ID appends. Touched
// shards install fresh record arrays and apply exact
// subtract-old/add-new maintenance to their partial summaries.
func (st *Store) Update(recs ...*record.Record) int {
	if len(recs) == 0 {
		return 0
	}
	replaced := 0
	switch {
	case len(st.shards) == 1:
		replaced = st.shards[0].update(recs)
	case len(recs) == 1:
		replaced = st.shards[st.shardIndex(recs[0].ID)].update(recs)
	default:
		for si, g := range st.groupByShard(recs) {
			if len(g) > 0 {
				replaced += st.shards[si].update(g)
			}
		}
	}
	st.count.Add(int64(len(recs) - replaced))
	st.epoch.Add(1)
	return replaced
}

// Len returns the number of stored records.
func (st *Store) Len() int { return int(st.count.Load()) }

// Records returns the stored records in shard order. The slice is
// immutable — mutations install fresh per-shard slices rather than
// rewriting published elements — so the returned snapshot is safe to walk
// without a copy while mutations land concurrently. Callers must not
// mutate it. The cross-shard concatenation is cached against the store
// epoch, so repeated calls on an unchanged store return the same slice.
func (st *Store) Records() []*record.Record {
	e := st.epoch.Load()
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	if st.haveSnap && st.snapEpoch == e {
		return st.snap
	}
	if len(st.shards) == 1 {
		st.snap = st.shards[0].snapshot()
	} else {
		parts := make([][]*record.Record, len(st.shards))
		total := 0
		for i, sh := range st.shards {
			parts[i] = sh.snapshot()
			total += len(parts[i])
		}
		out := make([]*record.Record, 0, total)
		for _, p := range parts {
			out = append(out, p...)
		}
		st.snap = out
	}
	st.snapEpoch, st.haveSnap = e, true
	return st.snap
}

// Epoch returns the store's mutation epoch: it advances on every mutation
// that changed anything, so a caller that cached epoch-N derived state (a
// summary, a count) can skip recomputation while Epoch still returns N.
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// Stats is a snapshot of the store's internal maintenance counters.
type Stats struct {
	// Shards is the configured shard count.
	Shards int
	// ShardRebuilds counts per-shard partial-summary rebuilds — the
	// fallback taken when removals made a shard's partial stale (Bloom
	// mode, or the tracked-deletion threshold) or it was never built.
	ShardRebuilds uint64
	// PartialMerges counts shard partials folded into merged exports.
	PartialMerges uint64
	// ExportsCached counts ExportSummary calls served entirely from the
	// merged cache because the epoch had not moved.
	ExportsCached uint64
	// IndexRebuilds counts full per-shard index rebuilds (appends extend
	// indexes in place and do not rebuild).
	IndexRebuilds uint64
}

// Stats returns the maintenance counters.
func (st *Store) Stats() Stats {
	return Stats{
		Shards:        len(st.shards),
		ShardRebuilds: st.stats.shardRebuilds.Load(),
		PartialMerges: st.stats.partialMerges.Load(),
		ExportsCached: st.stats.exportsCached.Load(),
		IndexRebuilds: st.stats.indexRebuilds.Load(),
	}
}

// Result reports a local search outcome: the matching records and the
// modeled backend cost.
type Result struct {
	Records []*record.Record
	// Cost is the modeled backend time: PerQuery + PerScan*scanned +
	// PerRecord*len(Records).
	Cost time.Duration
	// Scanned is how many candidate records were examined.
	Scanned int
}

// Search returns the records matching q along with the modeled cost. Each
// shard picks its most selective indexed predicate to produce candidates,
// then verifies remaining predicates record by record — the classic
// index-scan plan the DB2 backend would run, run independently per shard.
// The per-query cost is charged once; scan and retrieval costs accumulate
// across shards.
func (st *Store) Search(q *query.Query) (Result, error) {
	if !q.Bound() {
		if err := q.Bind(st.schema); err != nil {
			return Result{}, fmt.Errorf("store: %w", err)
		}
	}
	res := Result{Cost: st.cost.PerQuery}
	for _, sh := range st.shards {
		sh.ensureIndexes()
		sh.mu.RLock()
		sh.searchLocked(q, &res)
		sh.mu.RUnlock()
	}
	res.Cost += time.Duration(res.Scanned) * st.cost.PerScan
	res.Cost += time.Duration(len(res.Records)) * st.cost.PerRecord
	return res, nil
}

// Count returns the number of matching records without charging retrieval
// cost (used for selectivity measurement).
func (st *Store) Count(q *query.Query) (int, error) {
	res, err := st.Search(q)
	if err != nil {
		return 0, err
	}
	return len(res.Records), nil
}
