package loadgen

import (
	"time"

	"roads/internal/obs"
)

// Metrics are the operational counters the load harness maintains while
// driving a federation. Register them once per registry with
// RegisterMetrics and hand the result to Config.Metrics; every name below
// is documented in OPERATIONS.md (enforced by cmd/docscheck).
type Metrics struct {
	// Queries counts resolves issued; Failures the subset that returned
	// an error (timeout included).
	Queries  *obs.Counter
	Failures *obs.Counter
	// FPDescents counts answered redirect hops that contributed nothing —
	// no records, no further redirects — i.e. descents a sharper summary
	// would have pruned (the paper's false-positive forwarding cost).
	// FPDepth is the distribution of tree depths (redirect-chain lengths)
	// at which those false positives bottomed out: deep observations are
	// the expensive ones.
	FPDescents *obs.Counter
	FPDepth    *obs.Histogram
	// RecordChurn counts owner record-swap events; WriteChurn the
	// add/remove write events; Kills and Revives the server crash /
	// rejoin events the churn schedule injected.
	RecordChurn *obs.Counter
	WriteChurn  *obs.Counter
	Kills       *obs.Counter
	Revives     *obs.Counter
	// Partitions counts network partitions injected by the churn schedule;
	// PartitionsHealed the subset already healed (rules cleared).
	Partitions       *obs.Counter
	PartitionsHealed *obs.Counter
	// ClientCacheHits counts resolves served off a client's record cache
	// via a NotModified revalidation; CoarseAnswers resolves shed by
	// admission to coarse summary-only answers (main and hot clients
	// combined); HotQueries the hot tenant's resolves.
	ClientCacheHits *obs.Counter
	CoarseAnswers   *obs.Counter
	HotQueries      *obs.Counter
	// Latency is the end-to-end resolve latency distribution.
	Latency *obs.Histogram
}

// RegisterMetrics registers the harness metrics on reg and returns the
// handles. Call it once per registry — obs registries reject duplicate
// names.
func RegisterMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Queries:     reg.Counter("roads_loadgen_queries_total", "Queries the load harness has issued."),
		Failures:    reg.Counter("roads_loadgen_query_failures_total", "Load-harness queries that returned an error (timeouts included)."),
		FPDescents:  reg.Counter("roads_loadgen_fp_descents_total", "Answered redirect hops that yielded neither records nor further redirects (false-positive descents)."),
		FPDepth: reg.Histogram("roads_loadgen_fp_depth",
			"Tree depth (redirect-chain length) at which false-positive descents bottomed out; unit is hops, not time.",
			[]time.Duration{1, 2, 3, 4, 5, 6, 8, 12}),
		RecordChurn: reg.Counter("roads_loadgen_record_churn_total", "Owner record-swap events injected by the churn schedule."),
		WriteChurn:  reg.Counter("roads_loadgen_write_churn_total", "Owner add/remove write-churn events injected by the churn schedule."),
		Kills:       reg.Counter("roads_loadgen_kills_total", "Servers crash-killed by the churn schedule."),
		Revives:     reg.Counter("roads_loadgen_revives_total", "Killed servers successfully restarted and rejoined."),
		Partitions:  reg.Counter("roads_loadgen_partitions_total", "Network partitions injected by the churn schedule."),
		PartitionsHealed: reg.Counter("roads_loadgen_partitions_healed_total",
			"Injected network partitions healed (fault rules cleared)."),
		ClientCacheHits: reg.Counter("roads_loadgen_client_cache_hits_total",
			"Resolves served off a client record cache via a NotModified revalidation."),
		CoarseAnswers: reg.Counter("roads_loadgen_coarse_answers_total",
			"Resolves shed by admission to coarse summary-only answers (main and hot clients combined)."),
		HotQueries: reg.Counter("roads_loadgen_hot_queries_total",
			"Resolves issued by the hot-tenant clients (Config.HotClients)."),
		Latency:     reg.Histogram("roads_loadgen_query_seconds", "End-to-end query resolve latency.", obs.DefaultLatencyBounds()),
	}
}
