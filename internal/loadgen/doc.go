// Package loadgen drives a live ROADS federation at topology scale: it
// spins up hundreds to thousands of servers on the in-process transport
// in a configurable deep/wide hierarchy, attaches trace-shaped workloads
// from internal/workload, resolves selectivity-realistic queries through
// concurrent clients, and injects churn — owner record swaps, first-class
// add/remove write traffic, server crash/rejoin, and whole-subtree network
// partitions — mid-run.
//
// A run reports end-to-end latency percentiles, coverage, false-positive
// descent rate, transport bytes per node per second, refresh-pipeline
// economics, and (under partition churn) the split-brain exposure and
// post-heal re-convergence the membership-epoch protocol delivers. The
// cache/admission knobs (Config.RepeatFraction, ClientCache, HotClients,
// ResultCacheBytes, AdmissionRate) add a hot-tenant overload mode that
// measures result-cache hit rates and the p99 protection admission gives
// high-priority traffic while a low-priority tenant is shed to coarse
// answers.
//
// cmd/roads-load is the CLI front-end; `make bench-load` and
// `make bench-cache` archive runs as BENCH_*.json via cmd/benchjson (see
// EXPERIMENTS.md for the knobs and the archived baselines).
package loadgen
