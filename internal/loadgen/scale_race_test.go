//go:build race

package loadgen

import "time"

func init() {
	partitionQueries = 150
	partitionMinDrive = 7 * time.Second
	// A slower fabric tick keeps race-detector scheduling delays from
	// reading as heartbeat misses, which would spiral into spurious
	// elections and merge thrash.
	partitionTick = 100 * time.Millisecond
	writeQueries = 100
	writeMinDrive = 4 * time.Second
}
