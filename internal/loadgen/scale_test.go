package loadgen

import "time"

// partitionQueries / partitionMinDrive size TestLoadgenPartitionChurn's
// drive phase. The race detector slows query evaluation by an order of
// magnitude at this scale, so race builds (scale_race_test.go) shrink the
// run — the partition/heal/merge cycle under test is wall-clock paced and
// survives the smaller drive intact.
var (
	partitionQueries  = 600
	partitionMinDrive = 9 * time.Second
	partitionTick     = 50 * time.Millisecond
)

// writeQueries / writeMinDrive size TestLoadgenWriteChurn the same way:
// race builds shrink the drive, the write-churn cadence under test stays.
var (
	writeQueries  = 300
	writeMinDrive = 6 * time.Second
)
