package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/live"
	"roads/internal/obs"
	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/stats"
	"roads/internal/summary"
	"roads/internal/transport"
	"roads/internal/wire"
	"roads/internal/workload"
)

// Churn schedules the disturbances injected while queries run. Zero
// intervals disable the respective disturbance.
type Churn struct {
	// RecordEvery is the interval between owner record-swap events. Each
	// event picks RecordOwners owners (default 1) and replaces
	// RecordFraction of each one's records (default 0.2) with fresh
	// bootstrap-resampled records, bumping the owner generation so the
	// change propagates through summary re-export. The record total stays
	// constant, so convergence targets remain meaningful.
	RecordEvery    time.Duration
	RecordOwners   int
	RecordFraction float64
	// WriteEvery is the interval between write-churn events: sustained
	// per-owner Add/Remove traffic, as opposed to RecordEvery's wholesale
	// record swaps. Each event picks WriteOwners owners (default 1),
	// removes WriteFraction of each one's records by ID (default 0.05)
	// and adds the same number of fresh records, so the owner's store
	// mutates through its first-class Remove/Add paths — exercising the
	// incremental per-shard summary maintenance — while the record total
	// stays constant.
	WriteEvery    time.Duration
	WriteOwners   int
	WriteFraction float64
	// KillEvery is the interval between server crashes. Each event
	// crash-kills (no Leave) one random non-root alive server; after
	// ReviveAfter (default 2s) the server is rebuilt with the same
	// ID/address, its owner re-attached, and rejoined through the root.
	KillEvery   time.Duration
	ReviveAfter time.Duration
	// PartitionEvery is the interval between network partitions. Each
	// event severs one whole subtree — the placement node whose subtree
	// size is closest to PartitionFraction (default 0.3) of the federation
	// — from the rest of the tree in both directions, then heals it after
	// HealAfter (default 2s). Partitions run one at a time. The severed
	// side elects its own root (membership epochs fence the stale parent
	// edges) and the split-brain merge protocol folds the trees back
	// together after the heal; the run reports the measured split-brain
	// exposure and post-heal re-convergence time.
	PartitionEvery    time.Duration
	PartitionFraction float64
	HealAfter         time.Duration
}

func (c Churn) enabled() bool {
	return c.RecordEvery > 0 || c.WriteEvery > 0 || c.KillEvery > 0 || c.PartitionEvery > 0
}

// Config sizes a load run. Zero values take the documented defaults.
type Config struct {
	// Servers is the federation size (required).
	Servers int
	// FanOut caps children per server (default 8); MinDepth, when
	// positive, forces the hierarchy at least that deep via a spine (see
	// Placement).
	FanOut   int
	MinDepth int
	// OwnerEvery attaches a resource owner at every k-th server (default
	// 1: every server hosts records). RecordsPerOwner (default 50) and
	// AttrsPerDist (default 2, i.e. 8 numeric attributes) shape the
	// workload per the paper's §V generator.
	OwnerEvery      int
	RecordsPerOwner int
	AttrsPerDist    int
	// SummaryBuckets sizes the per-attribute histograms (default 64 —
	// the paper's 1000 is impractical times a thousand servers).
	SummaryBuckets int
	// QueryDims and QueryRange shape queries (defaults 3 dimensions of
	// range length workload.DefaultQueryRange).
	QueryDims  int
	QueryRange float64
	// QuerySkew, when positive, is the fraction of queries made "hot"
	// (workload.GenQuerySkewed): a narrow range — QueryRange/4 — on the
	// first Window-family attribute, plus an Eq predicate on c0 when the
	// workload has categorical attributes. Narrow ranges against coarse
	// histogram buckets concentrate false-positive descents on one
	// attribute, the signal adaptive summary resolution feeds on.
	QuerySkew float64
	// CategoricalAttrs appends that many categorical attributes to the
	// workload (vocabulary CategoricalVocab, default 16; dotted paths of
	// CategoricalDepth segments when that is > 1). SummaryBloom summarizes
	// them with Bloom filters instead of exact value sets; CondenseAbove,
	// when positive, collapses value sets larger than that into
	// dotted-prefix wildcards.
	CategoricalAttrs int
	CategoricalVocab int
	CategoricalDepth int
	SummaryBloom     bool
	CondenseAbove    int
	// DisableAdaptive turns feedback-driven summary resolution off on
	// every server (live.Config.DisableAdaptiveSummaries) — the static
	// baseline arm of the false-positive benchmark. SummaryByteBudget and
	// ReplanEvery pass through to the matching live.Config fields.
	DisableAdaptive   bool
	SummaryByteBudget int
	ReplanEvery       int
	// Queries is how many resolves to issue (default 500), spread over
	// Clients concurrent clients (default 4), each bounded by
	// QueryTimeout (default 10s). MinDrive, when positive, keeps the
	// drive phase alive at least that long: clients that exhaust the
	// query list wrap around and keep issuing it (every issue counts in
	// the results). Churn schedules — partitions in particular, whose
	// cut+heal cycles span seconds — need a drive phase long enough to
	// cover them no matter how fast queries resolve.
	Queries      int
	Clients      int
	QueryTimeout time.Duration
	MinDrive     time.Duration
	// ConvergeTimeout bounds the post-build wait for full coverage
	// (default 2m). Tick is the servers' aggregation/heartbeat period
	// (default 50ms). Parallelism bounds the cluster build worker pool
	// (default: live's own default).
	ConvergeTimeout time.Duration
	Tick            time.Duration
	Parallelism     int
	// RepeatFraction, when positive, makes each drive client re-issue an
	// already-issued query with that probability instead of advancing to
	// a fresh one — the repeat-query workload the PR 9 result cache is
	// built to serve.
	RepeatFraction float64
	// ClientCache enables the drive clients' fingerprint-validated
	// record caches (live.Client.CacheResults); ClientPriority is the
	// wire priority class they claim (wire.PriorityHigh under overload
	// runs, so the admission layer protects them from the hot tenant).
	ClientCache    bool
	ClientPriority uint8
	// Untraced disables per-query tracing. Traced queries bypass the
	// server result cache by design, so cache-measuring runs must set it;
	// FP-descent accounting, which rides on traces, reports zero then.
	Untraced bool
	// HotClients, when positive, adds that many extra low-priority
	// clients sharing one requester identity ("hot-tenant") that hammer a
	// small hot query set for the whole drive phase — the overload the
	// admission layer sheds to coarse answers. Their resolves are tallied
	// separately (HotQueries, HotCoarse, HotFailures, HotLatencyP99) and
	// never enter the main latency/coverage stats.
	HotClients int
	// ResultCacheBytes, AdmissionRate and AdmissionBurst configure every
	// server's result cache and admission layer. ResultCacheBytes follows
	// live.Config: zero takes the default budget, negative disables the
	// cache. AdmissionRate zero leaves admission off.
	ResultCacheBytes int64
	AdmissionRate    float64
	AdmissionBurst   int
	// Seed makes workload, placement and schedule deterministic
	// (default 1).
	Seed int64
	// Churn is the mid-run disturbance schedule (zero: steady state).
	Churn Churn
	// Metrics receives operational counters when set (see
	// RegisterMetrics); nil uses a private throwaway registry.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.FanOut == 0 {
		c.FanOut = 8
	}
	if c.OwnerEvery == 0 {
		c.OwnerEvery = 1
	}
	if c.RecordsPerOwner == 0 {
		c.RecordsPerOwner = 50
	}
	if c.AttrsPerDist == 0 {
		c.AttrsPerDist = 2
	}
	if c.SummaryBuckets == 0 {
		c.SummaryBuckets = 64
	}
	if c.QueryDims == 0 {
		c.QueryDims = 3
	}
	if c.QueryRange == 0 {
		c.QueryRange = workload.DefaultQueryRange
	}
	if c.Queries == 0 {
		c.Queries = 500
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.ConvergeTimeout == 0 {
		c.ConvergeTimeout = 2 * time.Minute
	}
	if c.Tick == 0 {
		c.Tick = 50 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Churn.RecordOwners == 0 {
		c.Churn.RecordOwners = 1
	}
	if c.Churn.RecordFraction == 0 {
		c.Churn.RecordFraction = 0.2
	}
	if c.Churn.WriteOwners == 0 {
		c.Churn.WriteOwners = 1
	}
	if c.Churn.WriteFraction == 0 {
		c.Churn.WriteFraction = 0.05
	}
	if c.Churn.ReviveAfter == 0 {
		c.Churn.ReviveAfter = 2 * time.Second
	}
	if c.Churn.PartitionFraction == 0 {
		c.Churn.PartitionFraction = 0.3
	}
	if c.Churn.HealAfter == 0 {
		c.Churn.HealAfter = 2 * time.Second
	}
	return c
}

// Result is what one load run measured.
type Result struct {
	Servers int `json:"servers"`
	FanOut  int `json:"fan_out"`
	Depth   int `json:"depth"`
	Owners  int `json:"owners"`
	Records int `json:"records"`

	BuildSeconds    float64 `json:"build_seconds"`
	ConvergeSeconds float64 `json:"converge_seconds"`
	DriveSeconds    float64 `json:"drive_seconds"`

	Queries  int `json:"queries"`
	Failures int `json:"failures"`

	LatencyMean time.Duration `json:"latency_mean_ns"`
	LatencyP50  time.Duration `json:"latency_p50_ns"`
	LatencyP95  time.Duration `json:"latency_p95_ns"`
	LatencyP99  time.Duration `json:"latency_p99_ns"`

	// CoverageMean/Min summarize per-query discovered-region coverage
	// (1.0 = every advertised region answered).
	CoverageMean float64 `json:"coverage_mean"`
	CoverageMin  float64 `json:"coverage_min"`

	// RedirectHops counts answered redirect descents across all queries;
	// FPDescents the subset that yielded neither records nor further
	// redirects; FPDescentRate their ratio. FPDescentsByDepth breaks the
	// false positives down by tree depth (index d = descents whose
	// redirect chain was d hops long; index 0 unused) — deep entries are
	// the expensive ones, each a full wasted walk down the hierarchy.
	RedirectHops      int     `json:"redirect_hops"`
	FPDescents        int     `json:"fp_descents"`
	FPDescentRate     float64 `json:"fp_descent_rate"`
	FPDescentsByDepth []int   `json:"fp_descents_by_depth,omitempty"`

	// SummaryReplans sums the servers' adaptive-resolution geometry
	// changes; ServerFPDescents the false-positive descents the servers
	// themselves detected (counted even with adaptation disabled);
	// PlanDeviationSum the summed |resolution level| across alive servers
	// at drive end (zero = everyone still runs the static base config).
	SummaryReplans   uint64 `json:"summary_replans"`
	ServerFPDescents uint64 `json:"server_fp_descents"`
	PlanDeviationSum int64  `json:"plan_deviation_sum"`

	// BytesPerNodePerSec is transport bytes moved during the drive phase
	// divided by server count and drive seconds.
	BytesPerNodePerSec float64 `json:"bytes_per_node_per_sec"`

	RecordChurnEvents int `json:"record_churn_events"`
	RecordsReplaced   int `json:"records_replaced"`
	Kills             int `json:"kills"`
	Revives           int `json:"revives"`

	// Write-churn results (all zero without Churn.WriteEvery):
	// RecordsWritten counts records removed plus records added by the
	// Add/Remove churn (equal halves — totals stay constant).
	WriteChurnEvents int `json:"write_churn_events"`
	RecordsWritten   int `json:"records_written"`

	// Refresh-pipeline economics sampled across alive servers at drive
	// end: how many refresh ticks ran federation-wide, what fraction
	// reused every cached summary, and the wall time refreshes consumed.
	// OwnerShardRebuilds / OwnerPartialMerges are the owner stores'
	// partial-summary counters — writes land on owners, so that is where
	// the sharded-store maintenance shows up.
	RefreshTicks       uint64  `json:"refresh_ticks"`
	RefreshSkipped     uint64  `json:"refresh_skipped"`
	RefreshSkipRate    float64 `json:"refresh_skip_rate"`
	RefreshBusySeconds float64 `json:"refresh_busy_seconds"`
	OwnerShardRebuilds uint64  `json:"owner_shard_rebuilds"`
	OwnerPartialMerges uint64  `json:"owner_partial_merges"`

	// Partition-churn results (all zero without Churn.PartitionEvery).
	// SplitBrainSeconds is the sampled wall time during which more than one
	// alive server claimed the root role; HealSeconds how long after the
	// final heal the federation took to return to one root at full
	// coverage. FinalRoots and FinalCoverage snapshot the end state
	// (FinalCoverage = min alive coverage / federation records; 1.0 means
	// every alive server routes to everything). EpochRegressions sums
	// roads_membership_epoch_regressions_total across alive servers — the
	// membership-fencing invariant is that it stays zero — and
	// MembershipMerges the split-brain merges executed.
	Partitions        int     `json:"partitions"`
	PartitionsHealed  int     `json:"partitions_healed"`
	SplitBrainSeconds float64 `json:"split_brain_seconds"`
	HealSeconds       float64 `json:"heal_seconds"`
	FinalRoots        int     `json:"final_roots"`
	FinalCoverage     float64 `json:"final_coverage"`
	EpochRegressions  int     `json:"epoch_regressions"`
	MembershipMerges  int     `json:"membership_merges"`

	// Result-cache and admission results (all zero unless the run enables
	// the cache/admission paths). Server-side counters are summed across
	// alive servers at drive end; ServerCacheHitRate is hits over
	// hits+misses. ClientCacheHits counts main-client resolves served off
	// the client cache via a NotModified revalidation; CoarseAnswers the
	// main-client resolves shed to coarse summary-only answers (stays
	// zero while main clients run PriorityHigh). The Hot* fields tally
	// the hot tenant's traffic separately.
	ServerCacheHits          uint64        `json:"server_cache_hits"`
	ServerCacheMisses        uint64        `json:"server_cache_misses"`
	ServerCacheHitRate       float64       `json:"server_cache_hit_rate"`
	ServerCacheInvalidations uint64        `json:"server_cache_invalidations"`
	ServerCacheEvictions     uint64        `json:"server_cache_evictions"`
	ClientCacheHits          int           `json:"client_cache_hits"`
	CoarseAnswers            int           `json:"coarse_answers"`
	AdmissionAdmitted        uint64        `json:"admission_admitted"`
	AdmissionShed            uint64        `json:"admission_shed"`
	AdmissionRejected        uint64        `json:"admission_rejected"`
	HotQueries               int           `json:"hot_queries"`
	HotCoarse                int           `json:"hot_coarse"`
	HotFailures              int           `json:"hot_failures"`
	HotLatencyP99            time.Duration `json:"hot_latency_p99_ns"`
}

// Run executes one load run: build the hierarchy, attach owners, wait for
// convergence, drive queries (with churn, if scheduled), tear down, and
// report.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("loadgen: Config.Servers must be positive")
	}
	parents, err := Placement(cfg.Servers, cfg.FanOut, cfg.MinDepth)
	if err != nil {
		return nil, err
	}
	m := cfg.Metrics
	if m == nil {
		m = RegisterMetrics(obs.NewRegistry())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Workload: one record set per owner server.
	ownerIdx := make([]int, 0, cfg.Servers/cfg.OwnerEvery+1)
	for i := 0; i < cfg.Servers; i += cfg.OwnerEvery {
		ownerIdx = append(ownerIdx, i)
	}
	w, err := workload.Generate(workload.Config{
		Nodes:            len(ownerIdx),
		RecordsPerNode:   cfg.RecordsPerOwner,
		AttrsPerDist:     cfg.AttrsPerDist,
		CategoricalAttrs: cfg.CategoricalAttrs,
		CategoricalVocab: cfg.CategoricalVocab,
		CategoricalDepth: cfg.CategoricalDepth,
	}, rng)
	if err != nil {
		return nil, err
	}

	sumCfg := summary.DefaultConfig()
	sumCfg.Buckets = cfg.SummaryBuckets
	if cfg.SummaryBloom {
		sumCfg.Categorical = summary.UseBloom
	}
	sumCfg.CondenseAbove = cfg.CondenseAbove

	addrOf := func(i int) string { return fmt.Sprintf("srv%03d", i) }

	// The in-process transport carries everything; partition churn wraps it
	// in the fault injector so whole address sets can be severed mid-run.
	// The Chan handle stays visible for byte accounting either way. Dropped
	// calls black-hole briefly relative to the tick so severed heartbeats
	// fail fast instead of serializing behind multi-second holes.
	ch := transport.NewChan()
	var tr transport.Transport = ch
	var faulty *transport.Faulty
	ccfg := live.ClusterConfig{
		N:                cfg.Servers,
		Schema:           w.Schema,
		Summary:          sumCfg,
		MaxChildren:      cfg.FanOut,
		JoinVia:          func(i int) int { return parents[i] },
		Parallelism:      cfg.Parallelism,
		Tick:             cfg.Tick,
		ResultCacheBytes: cfg.ResultCacheBytes,
		AdmissionRate:    cfg.AdmissionRate,
		AdmissionBurst:   cfg.AdmissionBurst,

		DisableAdaptiveSummaries: cfg.DisableAdaptive,
		SummaryByteBudget:        cfg.SummaryByteBudget,
		ReplanEvery:              cfg.ReplanEvery,
	}
	if cfg.Churn.PartitionEvery > 0 {
		faulty = transport.NewFaulty(ch, cfg.Seed+307)
		faulty.MaxBlackhole = cfg.Tick
		tr = faulty
		// Server 0 never dies and always sits on the majority side (a
		// severed subtree never contains the placement root), so it is the
		// one well-known address a severed root can probe to find its way
		// back after the heal.
		ccfg.MergeSeeds = []string{addrOf(0)}
	}
	buildStart := time.Now()
	cl, err := live.StartCluster(tr, ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	buildSecs := time.Since(buildStart).Seconds()

	owners := make(map[int]*policy.Owner, len(ownerIdx))
	for j, idx := range ownerIdx {
		o := policy.NewOwner(fmt.Sprintf("owner%04d", idx), w.Schema, nil)
		o.SetRecords(w.PerNode[j])
		if err := cl.AttachOwner(idx, o); err != nil {
			return nil, err
		}
		owners[idx] = o
	}
	total := uint64(w.TotalRecords())
	convStart := time.Now()
	if err := cl.WaitConverged(total, cfg.ConvergeTimeout); err != nil {
		return nil, err
	}
	convSecs := time.Since(convStart).Seconds()

	queries, err := w.GenQueriesSkewed(cfg.Queries, cfg.QueryDims, cfg.QueryRange, cfg.QuerySkew, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Servers: cfg.Servers,
		FanOut:  cfg.FanOut,
		Depth:   Depth(parents),
		Owners:  len(ownerIdx),
		Records: int(total),

		BuildSeconds:    buildSecs,
		ConvergeSeconds: convSecs,
		CoverageMin:     1,
	}

	// Liveness bookkeeping shared by entry-point picking and churn:
	// aliveMu guards both the alive mask and cl.Servers slots (revive
	// swaps in a fresh *Server).
	var aliveMu sync.Mutex
	alive := make([]bool, cfg.Servers)
	for i := range alive {
		alive[i] = true
	}
	pickAlive := func(r *rand.Rand) int {
		aliveMu.Lock()
		defer aliveMu.Unlock()
		for try := 0; try < 8; try++ {
			if i := r.Intn(cfg.Servers); alive[i] {
				return i
			}
		}
		off := r.Intn(cfg.Servers)
		for d := 0; d < cfg.Servers; d++ {
			if i := (off + d) % cfg.Servers; alive[i] {
				return i
			}
		}
		return 0 // unreachable: server 0 is never killed
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var churnWg sync.WaitGroup
	var churnSeq atomic.Int64
	var recordEvents, recordsReplaced, kills, revives atomic.Int64
	var writeEvents, recordsWritten atomic.Int64
	var partitions, partitionsHealed atomic.Int64
	var splitBrainNs atomic.Int64

	if cfg.Churn.RecordEvery > 0 {
		churnWg.Add(1)
		crng := rand.New(rand.NewSource(cfg.Seed + 101))
		go func() {
			defer churnWg.Done()
			tick := time.NewTicker(cfg.Churn.RecordEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				for j := 0; j < cfg.Churn.RecordOwners; j++ {
					o := owners[ownerIdx[crng.Intn(len(ownerIdx))]]
					cur := o.Records()
					n := len(cur)
					if n == 0 {
						continue
					}
					k := int(cfg.Churn.RecordFraction * float64(n))
					if k < 1 {
						k = 1
					}
					next := make([]*record.Record, n)
					copy(next, cur)
					for r := 0; r < k; r++ {
						nr := cur[crng.Intn(n)].Clone()
						nr.ID = fmt.Sprintf("churn%06d", churnSeq.Add(1))
						next[crng.Intn(n)] = nr
					}
					o.SetRecords(next)
					recordsReplaced.Add(int64(k))
				}
				recordEvents.Add(1)
				m.RecordChurn.Inc()
			}
		}()
	}
	if cfg.Churn.WriteEvery > 0 {
		churnWg.Add(1)
		wrng := rand.New(rand.NewSource(cfg.Seed + 401))
		go func() {
			defer churnWg.Done()
			tick := time.NewTicker(cfg.Churn.WriteEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				for j := 0; j < cfg.Churn.WriteOwners; j++ {
					o := owners[ownerIdx[wrng.Intn(len(ownerIdx))]]
					cur := o.Records()
					n := len(cur)
					if n == 0 {
						continue
					}
					k := int(cfg.Churn.WriteFraction * float64(n))
					if k < 1 {
						k = 1
					}
					ids := make([]string, 0, k)
					for r := 0; r < k; r++ {
						ids = append(ids, cur[wrng.Intn(n)].ID)
					}
					removed := o.RemoveRecords(ids...)
					if removed == 0 {
						continue
					}
					// Add exactly as many fresh records as were removed so
					// the federation total — and with it every convergence
					// target — stays constant.
					fresh := make([]*record.Record, removed)
					for i := range fresh {
						nr := cur[wrng.Intn(n)].Clone()
						nr.ID = fmt.Sprintf("write%06d", churnSeq.Add(1))
						fresh[i] = nr
					}
					o.AddRecords(fresh...)
					recordsWritten.Add(int64(2 * removed))
				}
				writeEvents.Add(1)
				m.WriteChurn.Inc()
			}
		}()
	}
	if cfg.Churn.KillEvery > 0 {
		churnWg.Add(1)
		krng := rand.New(rand.NewSource(cfg.Seed + 211))
		go func() {
			defer churnWg.Done()
			tick := time.NewTicker(cfg.Churn.KillEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				// Pick a random alive victim, sparing the root (killing
				// it forces an election; that failure mode has its own
				// chaos tests and would swamp every other measurement).
				aliveMu.Lock()
				victim := -1
				for try := 0; try < 16; try++ {
					i := 1 + krng.Intn(cfg.Servers-1)
					if alive[i] && !cl.Servers[i].IsRoot() {
						victim = i
						break
					}
				}
				var srv *live.Server
				if victim >= 0 {
					alive[victim] = false
					srv = cl.Servers[victim]
				}
				aliveMu.Unlock()
				if victim < 0 {
					continue
				}
				srv.Kill()
				kills.Add(1)
				m.Kills.Inc()
				churnWg.Add(1)
				go func(i int) {
					defer churnWg.Done()
					select {
					case <-ctx.Done():
						return
					case <-time.After(cfg.Churn.ReviveAfter):
					}
					srv, err := reviveServer(cl, tr, cfg, sumCfg, w, owners[i], i, addrOf(i))
					if err != nil {
						return // stays dead; coverage shows it
					}
					aliveMu.Lock()
					cl.Servers[i] = srv
					alive[i] = true
					aliveMu.Unlock()
					revives.Add(1)
					m.Revives.Inc()
				}(victim)
			}
		}()
	}
	if faulty != nil && cfg.Servers > 2 {
		// Subtree sizes from the placement: parents[i] < i, so a reverse
		// pass accumulates every child into its parent before the parent
		// itself is visited.
		subSize := make([]int, cfg.Servers)
		for i := cfg.Servers - 1; i > 0; i-- {
			subSize[i]++
			subSize[parents[i]] += subSize[i]
		}
		subSize[0]++
		inSubtree := func(j, v int) bool {
			for j >= 0 {
				if j == v {
					return true
				}
				j = parents[j]
			}
			return false
		}
		// pickCut chooses the subtree to sever: any non-root node whose
		// subtree size lands within ±50% of the target fraction, picked at
		// random; if the placement offers none (very flat or very skewed
		// trees), the closest-sized subtree wins.
		target := int(cfg.Churn.PartitionFraction * float64(cfg.Servers))
		if target < 1 {
			target = 1
		}
		pickCut := func(r *rand.Rand) int {
			lo, hi := target/2, target+target/2
			if lo < 1 {
				lo = 1
			}
			cands := make([]int, 0, cfg.Servers)
			for i := 1; i < cfg.Servers; i++ {
				if subSize[i] >= lo && subSize[i] <= hi {
					cands = append(cands, i)
				}
			}
			if len(cands) > 0 {
				return cands[r.Intn(len(cands))]
			}
			best, bestDiff := 1, cfg.Servers
			for i := 1; i < cfg.Servers; i++ {
				diff := subSize[i] - target
				if diff < 0 {
					diff = -diff
				}
				if diff < bestDiff {
					best, bestDiff = i, diff
				}
			}
			return best
		}
		churnWg.Add(1)
		prng := rand.New(rand.NewSource(cfg.Seed + 307))
		go func() {
			defer churnWg.Done()
			tick := time.NewTicker(cfg.Churn.PartitionEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				v := pickCut(prng)
				sideA := make([]string, 0, subSize[v])
				sideB := make([]string, 0, cfg.Servers-subSize[v])
				for j := 0; j < cfg.Servers; j++ {
					if inSubtree(j, v) {
						sideA = append(sideA, addrOf(j))
					} else {
						sideB = append(sideB, addrOf(j))
					}
				}
				faulty.SetRules(transport.PartitionSets(sideA, sideB)...)
				partitions.Add(1)
				m.Partitions.Inc()
				// Heal after HealAfter — or immediately at drive end, so
				// the post-drive re-convergence wait never starts fenced
				// off behind a live partition.
				select {
				case <-ctx.Done():
				case <-time.After(cfg.Churn.HealAfter):
				}
				faulty.ClearRules()
				partitionsHealed.Add(1)
				m.PartitionsHealed.Inc()
			}
		}()
		// Split-brain sampler: accumulate wall time during which more than
		// one alive server claims the root role.
		churnWg.Add(1)
		go func() {
			defer churnWg.Done()
			tick := time.NewTicker(25 * time.Millisecond)
			defer tick.Stop()
			last := time.Now()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				now := time.Now()
				roots := 0
				aliveMu.Lock()
				for i, srv := range cl.Servers {
					if alive[i] && srv.IsRoot() {
						roots++
					}
				}
				aliveMu.Unlock()
				if roots > 1 {
					splitBrainNs.Add(int64(now.Sub(last)))
				}
				last = now
			}
		}()
	}

	// Drive phase: Clients workers share one query index.
	var (
		qIdx       atomic.Int64
		resMu      sync.Mutex
		durs       = make([]time.Duration, 0, len(queries))
		covSum     float64
		covMin     = 1.0
		failures   int
		fpHops     int
		fpByDepth  []int
		redirs     int
		cliHits    int
		coarse     int
		hotDurs    []time.Duration
		hotCoarse  int
		hotFailed  int
		hotIssued  atomic.Int64
	)
	bytesStart := ch.BytesMoved()
	driveStart := time.Now()
	var issued atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := live.NewClient(tr, fmt.Sprintf("loadgen-%d", c))
			cli.Trace = !cfg.Untraced
			cli.Priority = cfg.ClientPriority
			cli.CacheResults = cfg.ClientCache
			wrng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919 + 17))
			// A caching client sticks to one entry server (the client
			// cache keys on the entry address, like a real client that
			// keeps talking to its nearby server); it re-picks only after
			// a failure in case its server died.
			sticky := -1
			for {
				k := qIdx.Add(1) - 1
				if k >= int64(len(queries)) {
					if cfg.MinDrive <= 0 || time.Since(driveStart) >= cfg.MinDrive {
						return
					}
					k %= int64(len(queries)) // wrap: keep driving until MinDrive
				}
				if cfg.RepeatFraction > 0 && k > 0 && wrng.Float64() < cfg.RepeatFraction {
					// Re-issue an already-issued query: the repeat-query
					// workload the result cache serves. The ticket is still
					// consumed, so the total issue count is unchanged.
					k = int64(wrng.Intn(int(min64(k, int64(len(queries))))))
				}
				issued.Add(1)
				var entry string
				if cfg.ClientCache {
					if sticky < 0 {
						sticky = pickAlive(wrng)
					}
					entry = addrOf(sticky)
				} else {
					entry = addrOf(pickAlive(wrng))
				}
				qctx, qcancel := context.WithTimeout(ctx, cfg.QueryTimeout)
				_, qs, err := cli.ResolveContext(qctx, entry, queries[k])
				qcancel()
				if err != nil {
					sticky = -1
				}
				m.Queries.Inc()
				m.Latency.Observe(qs.Elapsed)
				var fp, rd int
				var fpDepths []int
				for _, h := range qs.Hops {
					if h.Kind == "redirect" && h.Err == "" {
						rd++
						if h.Records == 0 && h.Redirects == 0 {
							fp++
							// The redirect chain length is the tree depth
							// at which the false positive bottomed out.
							d := len(h.Path)
							fpDepths = append(fpDepths, d)
							m.FPDepth.Observe(time.Duration(d))
						}
					}
				}
				if fp > 0 {
					m.FPDescents.Add(uint64(fp))
				}
				if qs.CacheHit {
					m.ClientCacheHits.Inc()
				}
				resMu.Lock()
				redirs += rd
				fpHops += fp
				for _, d := range fpDepths {
					for len(fpByDepth) <= d {
						fpByDepth = append(fpByDepth, 0)
					}
					fpByDepth[d]++
				}
				switch {
				case err != nil:
					failures++
					m.Failures.Inc()
				case qs.Coarse > 0:
					// A shed answer is a success on the wire but carries no
					// records; keep it out of the latency/coverage stats so
					// they keep describing full resolves.
					coarse++
					m.CoarseAnswers.Inc()
				default:
					if qs.CacheHit {
						cliHits++
					}
					durs = append(durs, qs.Elapsed)
					covSum += qs.Coverage
					if qs.Coverage < covMin {
						covMin = qs.Coverage
					}
				}
				resMu.Unlock()
			}
		}(c)
	}

	// Hot tenant: extra clients sharing one requester identity hammer a
	// small hot query set at low priority until the main drive completes.
	// With admission enabled they burn one shared token bucket per entry
	// server and get shed to coarse answers; their numbers stay out of the
	// main stats.
	hotCtx, hotCancel := context.WithCancel(ctx)
	var hotWg sync.WaitGroup
	for h := 0; h < cfg.HotClients; h++ {
		hotWg.Add(1)
		go func(h int) {
			defer hotWg.Done()
			cli := live.NewClient(tr, "hot-tenant")
			cli.Priority = wire.PriorityLow
			cli.CacheResults = cfg.ClientCache
			hrng := rand.New(rand.NewSource(cfg.Seed + int64(h)*104729 + 31))
			hotSet := len(queries)
			if hotSet > 4 {
				hotSet = 4
			}
			for {
				select {
				case <-hotCtx.Done():
					return
				default:
				}
				entry := addrOf(pickAlive(hrng))
				qctx, qcancel := context.WithTimeout(hotCtx, cfg.QueryTimeout)
				_, qs, err := cli.ResolveContext(qctx, entry, queries[hrng.Intn(hotSet)])
				qcancel()
				hotIssued.Add(1)
				m.HotQueries.Inc()
				resMu.Lock()
				switch {
				case err != nil:
					hotFailed++
				case qs.Coarse > 0:
					hotCoarse++
					m.CoarseAnswers.Inc()
				default:
					hotDurs = append(hotDurs, qs.Elapsed)
				}
				resMu.Unlock()
				time.Sleep(time.Millisecond) // keep the hammer off 100% CPU
			}
		}(h)
	}
	wg.Wait()
	hotCancel()
	hotWg.Wait()
	driveSecs := time.Since(driveStart).Seconds()
	bytesMoved := ch.BytesMoved() - bytesStart
	cancel()
	churnWg.Wait()

	// Final federation state across alive servers: root count and coverage
	// (allExact means every alive server routes to exactly the federation
	// total — converged with no double counting).
	finalState := func() (roots int, minCov uint64, allExact bool) {
		allExact = true
		minCov = ^uint64(0)
		aliveMu.Lock()
		defer aliveMu.Unlock()
		for i, srv := range cl.Servers {
			if !alive[i] {
				continue
			}
			if srv.IsRoot() {
				roots++
			}
			cov := srv.CoveredRecords()
			if cov < minCov {
				minCov = cov
			}
			if cov != total {
				allExact = false
			}
		}
		if minCov == ^uint64(0) {
			minCov = 0
		}
		return
	}
	if faulty != nil {
		// Heal anything still severed (a partition cut short by drive end
		// already cleared its rules, but be unconditional) and wait for
		// the membership protocol to merge back to one root at full
		// coverage. Failures here are reported as the final-state fields,
		// not an error: the measurement is the point.
		faulty.ClearRules()
		healStart := time.Now()
		deadline := healStart.Add(cfg.ConvergeTimeout)
		for {
			roots, _, allExact := finalState()
			if (roots == 1 && allExact) || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		res.HealSeconds = time.Since(healStart).Seconds()
	}
	finalRoots, minCov, _ := finalState()
	res.FinalRoots = finalRoots
	if total > 0 {
		res.FinalCoverage = float64(minCov) / float64(total)
	}
	var regress, mMerges uint64
	aliveMu.Lock()
	for i, srv := range cl.Servers {
		if alive[i] {
			mi := srv.Membership()
			regress += mi.EpochRegressions
			mMerges += mi.Merges
			ri := srv.RefreshInfo()
			res.RefreshTicks += ri.Ticks
			res.RefreshSkipped += ri.Skipped
			res.RefreshBusySeconds += ri.BusySeconds
			ci := srv.CacheInfo()
			res.ServerCacheHits += ci.Hits
			res.ServerCacheMisses += ci.Misses
			res.ServerCacheInvalidations += ci.Invalidations
			res.ServerCacheEvictions += ci.Evictions
			ai := srv.AdmissionInfo()
			res.AdmissionAdmitted += ai.Admitted
			res.AdmissionShed += ai.Shed
			res.AdmissionRejected += ai.Rejected
			di := srv.AdaptiveInfo()
			res.SummaryReplans += di.Replans
			res.ServerFPDescents += di.FPDescents
			res.PlanDeviationSum += di.PlanDeviation
		}
	}
	aliveMu.Unlock()
	if lookups := res.ServerCacheHits + res.ServerCacheMisses; lookups > 0 {
		res.ServerCacheHitRate = float64(res.ServerCacheHits) / float64(lookups)
	}
	res.EpochRegressions = int(regress)
	res.MembershipMerges = int(mMerges)
	if res.RefreshTicks > 0 {
		res.RefreshSkipRate = float64(res.RefreshSkipped) / float64(res.RefreshTicks)
	}
	for _, o := range owners {
		os := o.StoreStats()
		res.OwnerShardRebuilds += os.ShardRebuilds
		res.OwnerPartialMerges += os.PartialMerges
	}

	res.DriveSeconds = driveSecs
	res.Queries = int(issued.Load())
	res.Failures = failures
	if len(durs) > 0 {
		res.LatencyMean = stats.MeanDuration(durs)
		res.LatencyP50 = stats.PercentileDuration(durs, 0.50)
		res.LatencyP95 = stats.PercentileDuration(durs, 0.95)
		res.LatencyP99 = stats.PercentileDuration(durs, 0.99)
		res.CoverageMean = covSum / float64(len(durs))
		res.CoverageMin = covMin
	}
	res.RedirectHops = redirs
	res.FPDescents = fpHops
	res.FPDescentsByDepth = fpByDepth
	if redirs > 0 {
		res.FPDescentRate = float64(fpHops) / float64(redirs)
	}
	if driveSecs > 0 {
		res.BytesPerNodePerSec = float64(bytesMoved) / float64(cfg.Servers) / driveSecs
	}
	res.RecordChurnEvents = int(recordEvents.Load())
	res.RecordsReplaced = int(recordsReplaced.Load())
	res.WriteChurnEvents = int(writeEvents.Load())
	res.RecordsWritten = int(recordsWritten.Load())
	res.Kills = int(kills.Load())
	res.Revives = int(revives.Load())
	res.Partitions = int(partitions.Load())
	res.PartitionsHealed = int(partitionsHealed.Load())
	res.SplitBrainSeconds = time.Duration(splitBrainNs.Load()).Seconds()
	res.ClientCacheHits = cliHits
	res.CoarseAnswers = coarse
	res.HotQueries = int(hotIssued.Load())
	res.HotCoarse = hotCoarse
	res.HotFailures = hotFailed
	if len(hotDurs) > 0 {
		res.HotLatencyP99 = stats.PercentileDuration(hotDurs, 0.99)
	}
	return res, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// reviveServer rebuilds a killed server with its old identity, re-attaches
// its owner (if any), and rejoins through the root seed, mirroring the
// per-server configuration StartCluster applied. The caller swaps the
// returned *Server into cl.Servers (under its liveness lock) so teardown
// and later kills see it.
func reviveServer(cl *live.Cluster, tr transport.Transport, cfg Config, sumCfg summary.Config, w *workload.Workload, o *policy.Owner, i int, addr string) (*live.Server, error) {
	scfg := live.DefaultConfig(fmt.Sprintf("srv%03d", i), addr, w.Schema)
	scfg.Summary = sumCfg
	scfg.MaxChildren = cfg.FanOut
	scfg.AggregateEvery = cfg.Tick
	scfg.HeartbeatEvery = cfg.Tick
	scfg.ResultCacheBytes = cfg.ResultCacheBytes
	scfg.AdmissionRate = cfg.AdmissionRate
	scfg.AdmissionBurst = cfg.AdmissionBurst
	scfg.DisableAdaptiveSummaries = cfg.DisableAdaptive
	scfg.SummaryByteBudget = cfg.SummaryByteBudget
	scfg.ReplanEvery = cfg.ReplanEvery
	srv, err := live.NewServer(scfg, tr)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	if o != nil {
		if err := srv.AttachOwner(o); err != nil {
			srv.Stop()
			return nil, err
		}
	}
	// The old parent may itself be down; seed at server 0 (never killed)
	// and let the join descend. A few retries ride out windows where
	// ancestors are mid-recovery.
	var jerr error
	for attempt := 0; attempt < 5; attempt++ {
		if jerr = srv.Join(cl.Servers[0].Addr()); jerr == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if jerr != nil {
		srv.Stop()
		return nil, jerr
	}
	return srv, nil
}
