package loadgen

import (
	"fmt"
	"testing"
	"time"

	"roads/internal/live"
	"roads/internal/obs"
	"roads/internal/record"
	"roads/internal/transport"
)

func TestPlacementCompleteTree(t *testing.T) {
	parents, err := Placement(10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{-1, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i, p := range parents {
		if p != want[i] {
			t.Fatalf("parents[%d] = %d, want %d (full: %v)", i, p, want[i], parents)
		}
	}
	if d := Depth(parents); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestPlacementChain(t *testing.T) {
	parents, err := Placement(5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if parents[i] != i-1 {
			t.Fatalf("fanOut=1 must chain: parents[%d] = %d", i, parents[i])
		}
	}
	if d := Depth(parents); d != 4 {
		t.Fatalf("chain depth = %d, want 4", d)
	}
}

func TestPlacementMinDepthSpine(t *testing.T) {
	const n, fanOut, minDepth = 40, 3, 6
	parents, err := Placement(n, fanOut, minDepth)
	if err != nil {
		t.Fatal(err)
	}
	// The spine forces the depth floor.
	if d := Depth(parents); d < minDepth {
		t.Fatalf("depth = %d, want >= %d", d, minDepth)
	}
	for i := 1; i <= minDepth; i++ {
		if parents[i] != i-1 {
			t.Fatalf("spine broken at %d: parent %d", i, parents[i])
		}
	}
	// Capacity respected everywhere.
	kids := make([]int, n)
	for i := 1; i < n; i++ {
		if parents[i] < 0 || parents[i] >= i {
			t.Fatalf("parents[%d] = %d must be an earlier server", i, parents[i])
		}
		kids[parents[i]]++
	}
	for i, k := range kids {
		if k > fanOut {
			t.Fatalf("server %d has %d children, cap %d", i, k, fanOut)
		}
	}
}

func TestPlacementRejectsBadShapes(t *testing.T) {
	if _, err := Placement(0, 2, 0); err == nil {
		t.Fatal("n=0 must be rejected")
	}
	if _, err := Placement(5, 0, 0); err == nil {
		t.Fatal("fanOut=0 must be rejected")
	}
	if _, err := Placement(5, 2, 5); err == nil {
		t.Fatal("minDepth > n-1 must be rejected")
	}
}

// TestClusterJoinViaPlacement verifies the JoinVia wave construction
// yields exactly the intended topology: every server attaches at the
// parent its placement names (the parent always has capacity, so the join
// policy accepts at the seed).
func TestClusterJoinViaPlacement(t *testing.T) {
	const n, fanOut = 13, 3
	parents, err := Placement(n, fanOut, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewChan()
	cl, err := live.StartCluster(tr, live.ClusterConfig{
		N:           n,
		Schema:      record.DefaultSchema(2),
		MaxChildren: fanOut,
		JoinVia:     func(i int) int { return parents[i] },
		Tick:        time.Minute, // structure only; keep the loops quiet
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for i := 1; i < n; i++ {
		want := fmt.Sprintf("srv%03d", parents[i])
		if got := cl.Servers[i].ParentID(); got != want {
			t.Fatalf("server %d attached under %q, placement says %q", i, got, want)
		}
	}
}

// TestLoadgenSmoke is the tier-1 scale exercise: a ~200-server hierarchy
// driven with a few hundred traced queries while both churn modes run.
// It asserts the harness completes and the measurements are sane, not
// specific numbers — the run is timing-dependent by design.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke test skipped in -short mode")
	}
	m := RegisterMetrics(obs.NewRegistry())
	res, err := Run(Config{
		Servers:         200,
		FanOut:          4,
		MinDepth:        5,
		OwnerEvery:      4,
		RecordsPerOwner: 20,
		SummaryBuckets:  32,
		Queries:         200,
		Clients:         4,
		Tick:            50 * time.Millisecond,
		ConvergeTimeout: 2 * time.Minute,
		Seed:            7,
		Churn: Churn{
			RecordEvery: 150 * time.Millisecond,
			KillEvery:   500 * time.Millisecond,
			ReviveAfter: 400 * time.Millisecond,
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 200 {
		t.Fatalf("queries = %d, want 200", res.Queries)
	}
	if res.Depth < 5 {
		t.Fatalf("depth = %d, want >= 5", res.Depth)
	}
	if res.Records != 50*20 {
		t.Fatalf("records = %d, want 1000", res.Records)
	}
	if res.Failures > res.Queries/2 {
		t.Fatalf("too many failures under churn: %d of %d", res.Failures, res.Queries)
	}
	ok := res.Queries - res.Failures
	if ok > 0 {
		if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 {
			t.Fatalf("implausible latency percentiles: p50=%v p99=%v", res.LatencyP50, res.LatencyP99)
		}
		if res.CoverageMean <= 0 || res.CoverageMean > 1.0001 {
			t.Fatalf("coverage mean out of range: %g", res.CoverageMean)
		}
	}
	if res.BytesPerNodePerSec <= 0 {
		t.Fatalf("bytes/node/s must be positive, got %g", res.BytesPerNodePerSec)
	}
	if res.FPDescentRate < 0 || res.FPDescentRate > 1 {
		t.Fatalf("fp descent rate out of range: %g", res.FPDescentRate)
	}
	if res.RecordChurnEvents == 0 {
		t.Fatal("record churn never fired during the drive phase")
	}
	// The registry must have seen the run.
	if got := m.Queries.Load(); got != 200 {
		t.Fatalf("metrics registry counted %d queries, want 200", got)
	}
	if m.Kills.Load() != uint64(res.Kills) || m.RecordChurn.Load() != uint64(res.RecordChurnEvents) {
		t.Fatalf("metrics/result churn mismatch: kills %d/%d, record events %d/%d",
			m.Kills.Load(), res.Kills, m.RecordChurn.Load(), res.RecordChurnEvents)
	}
}

// TestLoadgenWriteChurn is the write-heavy scale exercise: a 300-server
// hierarchy whose owners sustain add/remove record churn throughout the
// drive while queries resolve against it. It asserts the sharded-store
// economics surface in the harness report — write events land, refresh
// ticks are counted with a sane skip rate, and owner stores answer the
// resulting summary exports by merging shard partials rather than full
// rebuilds.
func TestLoadgenWriteChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("scale write-churn test skipped in -short mode")
	}
	m := RegisterMetrics(obs.NewRegistry())
	res, err := Run(Config{
		Servers:         300,
		FanOut:          4,
		MinDepth:        5,
		OwnerEvery:      4,
		RecordsPerOwner: 40,
		SummaryBuckets:  32,
		Queries:         writeQueries,
		Clients:         4,
		MinDrive:        writeMinDrive,
		Tick:            50 * time.Millisecond,
		ConvergeTimeout: 2 * time.Minute,
		Seed:            23,
		Churn: Churn{
			WriteEvery:    100 * time.Millisecond,
			WriteOwners:   2,
			WriteFraction: 0.1,
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteChurnEvents == 0 {
		t.Fatal("write churn never fired during the drive phase")
	}
	if res.RecordsWritten == 0 {
		t.Fatal("write churn fired but moved no records")
	}
	// Every write event removes k records and adds k fresh ones, so the
	// federation total is invariant under write churn.
	if res.Records != 75*40 {
		t.Fatalf("records = %d, want 3000", res.Records)
	}
	if res.RefreshTicks == 0 {
		t.Fatal("no refresh ticks observed across the federation")
	}
	if res.RefreshSkipRate < 0 || res.RefreshSkipRate > 1 {
		t.Fatalf("refresh skip rate out of range: %g", res.RefreshSkipRate)
	}
	// Most of the 300 servers host no owner and see no branch changes
	// between writes, so some ticks must have reused cached summaries.
	if res.RefreshSkipped == 0 {
		t.Fatal("no refresh tick skipped a rebuild; change-driven refresh looks broken")
	}
	if res.RefreshBusySeconds <= 0 {
		t.Fatalf("refresh busy seconds must be positive, got %g", res.RefreshBusySeconds)
	}
	// Owner exports under churn merge shard partials instead of rebuilding
	// from records; the merge counter proves the incremental path ran.
	if res.OwnerPartialMerges == 0 {
		t.Fatal("owner stores never merged shard partials; exports fell back to full rebuilds")
	}
	if got := m.WriteChurn.Load(); got != uint64(res.WriteChurnEvents) {
		t.Fatalf("metrics/result write-churn mismatch: %d/%d", got, res.WriteChurnEvents)
	}
	t.Logf("write events=%d records moved=%d shard rebuilds=%d partial merges=%d skip rate=%.4f busy=%.2fs",
		res.WriteChurnEvents, res.RecordsWritten, res.OwnerShardRebuilds,
		res.OwnerPartialMerges, res.RefreshSkipRate, res.RefreshBusySeconds)
}

// TestLoadgenPartitionChurn is the membership-protocol acceptance run: a
// 200-server hierarchy repeatedly loses a ~30% subtree to a full network
// partition mid-drive and heals it. The severed side elects its own root
// under a bumped membership epoch; the split-brain merge protocol must
// fold the trees back after each heal, ending at exactly one root with
// full coverage and zero epoch regressions (the fencing invariant).
func TestLoadgenPartitionChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("scale partition test skipped in -short mode")
	}
	m := RegisterMetrics(obs.NewRegistry())
	res, err := Run(Config{
		Servers:         200,
		FanOut:          4,
		MinDepth:        5,
		OwnerEvery:      4,
		RecordsPerOwner: 20,
		SummaryBuckets:  32,
		Queries:         partitionQueries,
		Clients:         4,
		QueryTimeout:    time.Second,
		MinDrive:        partitionMinDrive,
		Tick:            partitionTick,
		ConvergeTimeout: 2 * time.Minute,
		Seed:            11,
		Churn: Churn{
			PartitionEvery:    800 * time.Millisecond,
			PartitionFraction: 0.3,
			HealAfter:         4 * time.Second,
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Fatalf("only %d partitions injected; the drive must cover at least two", res.Partitions)
	}
	if res.PartitionsHealed != res.Partitions {
		t.Fatalf("healed %d of %d partitions", res.PartitionsHealed, res.Partitions)
	}
	if res.FinalRoots != 1 {
		t.Fatalf("federation ended with %d roots, want exactly 1", res.FinalRoots)
	}
	if res.FinalCoverage < 0.999 {
		t.Fatalf("post-heal coverage %.4f, want >= 0.999", res.FinalCoverage)
	}
	if res.EpochRegressions != 0 {
		t.Fatalf("epoch fencing invariant violated: %d regressions", res.EpochRegressions)
	}
	if got := m.Partitions.Load(); got != uint64(res.Partitions) {
		t.Fatalf("metrics/result partition mismatch: %d/%d", got, res.Partitions)
	}
	t.Logf("partitions=%d split-brain=%.2fs heal=%.2fs merges=%d",
		res.Partitions, res.SplitBrainSeconds, res.HealSeconds, res.MembershipMerges)
}

// TestLoadgenHotTenantCacheMode exercises the PR 9 overload mode end to
// end at small scale: caching clients replay a repeat-heavy workload at
// high priority while a low-priority hot tenant hammers a tiny query set
// through rate-limited servers. The run must surface server cache hits,
// shed the hot tenant to coarse answers rather than errors, and keep the
// high-priority traffic fully answered.
func TestLoadgenHotTenantCacheMode(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke test skipped in -short mode")
	}
	m := RegisterMetrics(obs.NewRegistry())
	res, err := Run(Config{
		Servers:         60,
		FanOut:          4,
		OwnerEvery:      3,
		RecordsPerOwner: 20,
		SummaryBuckets:  32,
		Queries:         150,
		Clients:         3,
		Tick:            50 * time.Millisecond,
		ConvergeTimeout: 2 * time.Minute,
		Seed:            11,
		RepeatFraction:  0.6,
		ClientCache:     true,
		ClientPriority:  2, // wire.PriorityHigh
		Untraced:        true,
		HotClients:      3,
		AdmissionRate:   2,
		AdmissionBurst:  4,
		Metrics:         m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures > 0 {
		t.Fatalf("%d high-priority queries failed; admission must never error protected traffic", res.Failures)
	}
	if res.CoarseAnswers != 0 {
		t.Fatalf("%d high-priority queries were shed to coarse answers", res.CoarseAnswers)
	}
	if res.ServerCacheHits == 0 {
		t.Fatal("repeat-heavy untraced workload produced no server cache hits")
	}
	if res.ServerCacheHitRate <= 0 || res.ServerCacheHitRate > 1 {
		t.Fatalf("cache hit rate out of range: %g", res.ServerCacheHitRate)
	}
	if res.HotQueries == 0 {
		t.Fatal("hot tenant never issued a query")
	}
	if res.HotCoarse == 0 {
		t.Fatal("rate-limited hot tenant was never shed to a coarse answer")
	}
	if res.HotFailures > 0 {
		t.Fatalf("hot tenant saw %d errors; overload must shed to coarse answers, not errors", res.HotFailures)
	}
	if res.AdmissionShed == 0 {
		t.Fatal("servers recorded no admission sheds despite hot-tenant overload")
	}
	if got := m.HotQueries.Load(); got != uint64(res.HotQueries) {
		t.Fatalf("metrics/result hot-query mismatch: %d/%d", got, res.HotQueries)
	}
	t.Logf("hit-rate=%.3f client-hits=%d hot=%d coarse=%d shed=%d p99=%v hot-p99=%v",
		res.ServerCacheHitRate, res.ClientCacheHits, res.HotQueries,
		res.HotCoarse, res.AdmissionShed, res.LatencyP99, res.HotLatencyP99)
}
