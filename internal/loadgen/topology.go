package loadgen

import "fmt"

// Placement computes the parent index of every server in an n-server
// hierarchy. parents[0] is -1 (the root); every other parents[i] < i, so
// building the tree in index order always attaches under an
// already-attached server — exactly what live.ClusterConfig.JoinVia needs.
//
// With minDepth == 0 the shape is a complete fanOut-ary tree (parent of i
// is (i-1)/fanOut): as wide and shallow as the fan-out allows. A positive
// minDepth first lays a spine 0→1→…→minDepth — forcing the hierarchy at
// least that deep — and then fills the remaining servers breadth-first
// under whichever placed servers still have child capacity, shallowest
// first. Either way no parent is assigned more than fanOut children.
func Placement(n, fanOut, minDepth int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("loadgen: placement needs at least one server, got %d", n)
	}
	if fanOut < 1 {
		return nil, fmt.Errorf("loadgen: fan-out must be at least 1, got %d", fanOut)
	}
	if minDepth < 0 || minDepth > n-1 {
		return nil, fmt.Errorf("loadgen: min depth %d needs %d servers, have %d", minDepth, minDepth+1, n)
	}
	parents := make([]int, n)
	parents[0] = -1
	if minDepth == 0 {
		for i := 1; i < n; i++ {
			parents[i] = (i - 1) / fanOut
		}
		return parents, nil
	}
	kids := make([]int, n)
	for i := 1; i <= minDepth; i++ {
		parents[i] = i - 1
		kids[i-1]++
	}
	// Breadth-first fill: the queue holds placed servers in shallowest-
	// first order; each new server attaches under the front server with
	// remaining capacity and queues itself.
	queue := make([]int, 0, n)
	for i := 0; i <= minDepth; i++ {
		queue = append(queue, i)
	}
	for i := minDepth + 1; i < n; i++ {
		for kids[queue[0]] >= fanOut {
			queue = queue[1:]
		}
		p := queue[0]
		parents[i] = p
		kids[p]++
		queue = append(queue, i)
	}
	return parents, nil
}

// Depth returns the maximum node depth of a placement (root = depth 0).
// It requires parents[i] < i for all non-roots, which Placement
// guarantees.
func Depth(parents []int) int {
	depth := make([]int, len(parents))
	max := 0
	for i := 1; i < len(parents); i++ {
		depth[i] = depth[parents[i]] + 1
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max
}
