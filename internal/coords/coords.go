// Package coords synthesizes Internet-like pairwise latencies from a
// 5-dimensional Euclidean coordinate space, following the measurement-based
// delay-space synthesis approach of Zhang et al. (IMC 2006) that the paper
// cites as [12] for its simulations. Each node is a point in R^5; the
// one-way latency between two nodes is the Euclidean distance scaled so the
// mean pairwise latency matches a configurable target.
package coords

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Dim is the dimensionality of the synthesized delay space.
const Dim = 5

// Point is a position in the delay space.
type Point [Dim]float64

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	var sum float64
	for i := 0; i < Dim; i++ {
		d := p[i] - q[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Space holds the coordinates of every simulated host and the scale factor
// converting distance to latency.
type Space struct {
	points []Point
	scale  float64 // seconds of one-way latency per unit distance
	min    time.Duration
}

// Config controls space synthesis.
type Config struct {
	// MeanLatency is the target mean one-way latency across all pairs.
	// The paper's simulated query latencies (~800 ms over 3-5 redirect
	// rounds) imply one-way delays averaging roughly 60-90 ms, typical of
	// wide-area paths.
	MeanLatency time.Duration
	// MinLatency floors every pair (no two Internet hosts are closer than
	// a few hundred microseconds).
	MinLatency time.Duration
	// Clusters, if positive, groups points around that many cluster
	// centers, mimicking the clustered structure of the measured Internet
	// delay space. Zero means uniform placement.
	Clusters int
	// ClusterSpread is the standard deviation of points around their
	// cluster center, as a fraction of the unit cube (default 0.1).
	ClusterSpread float64
}

// DefaultConfig returns wide-area defaults: 80 ms mean one-way latency,
// 1 ms floor, 8 clusters.
func DefaultConfig() Config {
	return Config{
		MeanLatency:   80 * time.Millisecond,
		MinLatency:    time.Millisecond,
		Clusters:      8,
		ClusterSpread: 0.1,
	}
}

// NewSpace synthesizes coordinates for n hosts using rng.
func NewSpace(n int, cfg Config, rng *rand.Rand) (*Space, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coords: need at least one host, got %d", n)
	}
	if cfg.MeanLatency <= 0 {
		return nil, fmt.Errorf("coords: MeanLatency must be positive")
	}
	spread := cfg.ClusterSpread
	if spread <= 0 {
		spread = 0.1
	}
	s := &Space{points: make([]Point, n), min: cfg.MinLatency}

	var centers []Point
	if cfg.Clusters > 0 {
		centers = make([]Point, cfg.Clusters)
		for i := range centers {
			for d := 0; d < Dim; d++ {
				centers[i][d] = rng.Float64()
			}
		}
	}
	for i := range s.points {
		if centers != nil {
			c := centers[rng.Intn(len(centers))]
			for d := 0; d < Dim; d++ {
				s.points[i][d] = c[d] + rng.NormFloat64()*spread
			}
		} else {
			for d := 0; d < Dim; d++ {
				s.points[i][d] = rng.Float64()
			}
		}
	}

	// Calibrate scale so the mean pairwise distance maps to MeanLatency.
	// For large n, sample pairs instead of the full quadratic sweep.
	mean := s.meanPairwiseDistance(rng)
	if mean <= 0 {
		mean = 1 // all points coincide (n==1); any scale works
	}
	s.scale = cfg.MeanLatency.Seconds() / mean
	return s, nil
}

// MustNewSpace is NewSpace that panics on error.
func MustNewSpace(n int, cfg Config, rng *rand.Rand) *Space {
	s, err := NewSpace(n, cfg, rng)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Space) meanPairwiseDistance(rng *rand.Rand) float64 {
	n := len(s.points)
	if n < 2 {
		return 0
	}
	const maxExact = 512
	var sum float64
	var count int
	if n <= maxExact {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += s.points[i].Distance(s.points[j])
				count++
			}
		}
	} else {
		for k := 0; k < 100000; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			sum += s.points[i].Distance(s.points[j])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// N returns the number of hosts in the space.
func (s *Space) N() int { return len(s.points) }

// Point returns host i's coordinate.
func (s *Space) Point(i int) Point { return s.points[i] }

// Latency returns the one-way latency between hosts i and j. It is
// symmetric, zero for i==j, and floored at MinLatency otherwise.
func (s *Space) Latency(i, j int) time.Duration {
	if i == j {
		return 0
	}
	d := s.points[i].Distance(s.points[j])
	lat := time.Duration(d * s.scale * float64(time.Second))
	if lat < s.min {
		lat = s.min
	}
	return lat
}

// MeanLatency returns the mean one-way latency over all distinct pairs
// (exact for small spaces; used by tests to validate calibration).
func (s *Space) MeanLatency() time.Duration {
	n := len(s.points)
	if n < 2 {
		return 0
	}
	var sum time.Duration
	var count int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += s.Latency(i, j)
			count++
		}
	}
	return time.Duration(int64(sum) / count)
}
