package coords

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewSpaceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSpace(0, DefaultConfig(), rng); err == nil {
		t.Fatal("expected error for zero hosts")
	}
	cfg := DefaultConfig()
	cfg.MeanLatency = 0
	if _, err := NewSpace(10, cfg, rng); err == nil {
		t.Fatal("expected error for zero mean latency")
	}
}

func TestLatencySymmetricAndZeroSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := MustNewSpace(50, DefaultConfig(), rng)
	for i := 0; i < 50; i++ {
		if s.Latency(i, i) != 0 {
			t.Fatalf("self latency of %d must be 0", i)
		}
	}
	for trial := 0; trial < 100; trial++ {
		i, j := rng.Intn(50), rng.Intn(50)
		if s.Latency(i, j) != s.Latency(j, i) {
			t.Fatalf("latency(%d,%d) not symmetric", i, j)
		}
	}
}

func TestLatencyFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	cfg.MinLatency = 5 * time.Millisecond
	s := MustNewSpace(100, cfg, rng)
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if i != j && s.Latency(i, j) < cfg.MinLatency {
				t.Fatalf("latency(%d,%d)=%v below floor", i, j, s.Latency(i, j))
			}
		}
	}
}

func TestMeanCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultConfig()
	cfg.MeanLatency = 80 * time.Millisecond
	s := MustNewSpace(200, cfg, rng)
	mean := s.MeanLatency()
	lo := time.Duration(float64(cfg.MeanLatency) * 0.8)
	hi := time.Duration(float64(cfg.MeanLatency) * 1.2)
	if mean < lo || mean > hi {
		t.Fatalf("mean latency %v outside [%v,%v]", mean, lo, hi)
	}
}

func TestUniformPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	cfg.Clusters = 0 // uniform
	s := MustNewSpace(100, cfg, rng)
	if s.N() != 100 {
		t.Fatalf("N = %d; want 100", s.N())
	}
	mean := s.MeanLatency()
	if mean <= 0 {
		t.Fatal("uniform space must have positive mean latency")
	}
}

func TestLargeSpaceSampledCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := MustNewSpace(1000, DefaultConfig(), rng) // > maxExact path
	got := s.Latency(0, 999)
	if got < 0 {
		t.Fatalf("negative latency %v", got)
	}
}

func TestSingleHostSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := MustNewSpace(1, DefaultConfig(), rng)
	if s.Latency(0, 0) != 0 {
		t.Fatal("single host latency to self must be 0")
	}
	if s.MeanLatency() != 0 {
		t.Fatal("single host mean latency must be 0")
	}
}

func TestPointDistance(t *testing.T) {
	var p, q Point
	q[0] = 3
	q[1] = 4
	if d := p.Distance(q); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %g; want 5", d)
	}
	if p.Distance(p) != 0 {
		t.Fatal("distance to self must be 0")
	}
}

// Property: triangle inequality holds for the underlying distances (the
// delay space is metric, unlike the real Internet — a documented
// simplification shared with the paper's synthesized model).
func TestTriangleInequalityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := MustNewSpace(64, DefaultConfig(), rng)
	f := func(a, b, c uint8) bool {
		i, j, k := int(a)%64, int(b)%64, int(c)%64
		dij := s.Point(i).Distance(s.Point(j))
		djk := s.Point(j).Distance(s.Point(k))
		dik := s.Point(i).Distance(s.Point(k))
		return dik <= dij+djk+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
