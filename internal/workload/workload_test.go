package workload

import (
	"math"
	"math/rand"
	"testing"

	"roads/internal/query"
)

func smallCfg() Config {
	return Config{Nodes: 20, RecordsPerNode: 50, AttrsPerDist: 4}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Nodes: 0, RecordsPerNode: 1, AttrsPerDist: 1},
		{Nodes: 1, RecordsPerNode: 0, AttrsPerDist: 1},
		{Nodes: 1, RecordsPerNode: 1, AttrsPerDist: 0},
		{Nodes: 1, RecordsPerNode: 1, AttrsPerDist: 1, OverlapFactor: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid config %+v accepted", bad)
		}
	}
}

func TestDistOfAttrLayout(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumAttrs() != 16 {
		t.Fatalf("NumAttrs = %d; want 16", cfg.NumAttrs())
	}
	wants := []Dist{Uniform, Uniform, Uniform, Uniform, Window, Window, Window, Window,
		Gaussian, Gaussian, Gaussian, Gaussian, Pareto, Pareto, Pareto, Pareto}
	for i, want := range wants {
		if got := cfg.DistOfAttr(i); got != want {
			t.Fatalf("DistOfAttr(%d) = %v; want %v", i, got, want)
		}
	}
	ga := cfg.AttrsOf(Gaussian)
	if len(ga) != 4 || ga[0] != 8 || ga[3] != 11 {
		t.Fatalf("AttrsOf(Gaussian) = %v; want [8 9 10 11]", ga)
	}
}

func TestGenerateShapeAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := MustGenerate(smallCfg(), rng)
	if len(w.PerNode) != 20 {
		t.Fatalf("PerNode = %d; want 20", len(w.PerNode))
	}
	if w.TotalRecords() != 20*50 {
		t.Fatalf("TotalRecords = %d; want 1000", w.TotalRecords())
	}
	for _, recs := range w.PerNode {
		for _, r := range recs {
			for i := 0; i < w.Cfg.NumAttrs(); i++ {
				v := r.Num(i)
				if v < 0 || v > 1 {
					t.Fatalf("value %g out of [0,1] for attr %d", v, i)
				}
			}
		}
	}
	if len(w.AllRecords()) != 1000 {
		t.Fatal("AllRecords length mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallCfg(), rand.New(rand.NewSource(42)))
	b := MustGenerate(smallCfg(), rand.New(rand.NewSource(42)))
	for n := range a.PerNode {
		for k := range a.PerNode[n] {
			for i := 0; i < a.Cfg.NumAttrs(); i++ {
				if a.PerNode[n][k].Num(i) != b.PerNode[n][k].Num(i) {
					t.Fatal("same seed must produce identical workloads")
				}
			}
		}
	}
}

func TestWindowDistributionConfined(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := MustGenerate(smallCfg(), rng)
	// Every node's window-attribute values must span at most WindowLen.
	for _, recs := range w.PerNode {
		for _, attr := range w.Cfg.AttrsOf(Window) {
			lo, hi := 1.0, 0.0
			for _, r := range recs {
				v := r.Num(attr)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if hi-lo > WindowLen+1e-9 {
				t.Fatalf("window attr %d spans %g > %g", attr, hi-lo, WindowLen)
			}
		}
	}
}

func TestGaussianCentered(t *testing.T) {
	cfg := Config{Nodes: 4, RecordsPerNode: 2000, AttrsPerDist: 4}
	w := MustGenerate(cfg, rand.New(rand.NewSource(3)))
	attr := cfg.AttrsOf(Gaussian)[0]
	var sum float64
	var n int
	for _, recs := range w.PerNode {
		for _, r := range recs {
			sum += r.Num(attr)
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("gaussian mean = %g; want ~0.5", mean)
	}
}

func TestParetoSkewed(t *testing.T) {
	cfg := Config{Nodes: 4, RecordsPerNode: 2000, AttrsPerDist: 4}
	w := MustGenerate(cfg, rand.New(rand.NewSource(4)))
	attr := cfg.AttrsOf(Pareto)[0]
	below := 0
	total := 0
	for _, recs := range w.PerNode {
		for _, r := range recs {
			if r.Num(attr) < 0.2 {
				below++
			}
			total++
		}
	}
	if frac := float64(below) / float64(total); frac < 0.6 {
		t.Fatalf("pareto should be heavily skewed low; got %.2f below 0.2", frac)
	}
}

func TestOverlapFactorConfinesData(t *testing.T) {
	cfg := smallCfg()
	cfg.OverlapFactor = 2 // window length 2/20 = 0.1
	w := MustGenerate(cfg, rand.New(rand.NewSource(5)))
	for _, recs := range w.PerNode {
		for attr := 0; attr < 8; attr++ {
			lo, hi := 1.0, 0.0
			for _, r := range recs {
				v := r.Num(attr)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if hi-lo > 0.1+1e-9 {
				t.Fatalf("overlap attr %d spans %g > 0.1", attr, hi-lo)
			}
		}
	}
}

func TestGenQueryDefaults(t *testing.T) {
	w := MustGenerate(smallCfg(), rand.New(rand.NewSource(6)))
	rng := rand.New(rand.NewSource(7))
	q, err := w.GenQuery("q", 6, DefaultQueryRange, rng)
	if err != nil {
		t.Fatalf("GenQuery: %v", err)
	}
	if q.Dims() != 6 {
		t.Fatalf("Dims = %d; want 6", q.Dims())
	}
	if !q.Bound() {
		t.Fatal("generated query must be bound")
	}
	// Family mix for 6 dims: 2 uniform, 2 window, 1 gaussian, 1 pareto.
	counts := make(map[Dist]int)
	seen := make(map[string]bool)
	for _, p := range q.Preds {
		if seen[p.Attr] {
			t.Fatalf("duplicate attribute %s in query", p.Attr)
		}
		seen[p.Attr] = true
		var idx int
		if _, err := fmtSscanf(p.Attr, &idx); err != nil {
			t.Fatalf("bad attr name %q", p.Attr)
		}
		counts[w.Cfg.DistOfAttr(idx)]++
		if math.Abs((p.Hi-p.Lo)-DefaultQueryRange) > 1e-9 {
			t.Fatalf("range length %g; want %g", p.Hi-p.Lo, DefaultQueryRange)
		}
	}
	if counts[Uniform] != 2 || counts[Window] != 2 || counts[Gaussian] != 1 || counts[Pareto] != 1 {
		t.Fatalf("family mix = %v; want 2/2/1/1", counts)
	}
}

// fmtSscanf parses "aN" attribute names.
func fmtSscanf(name string, out *int) (int, error) {
	var n int
	for i := 1; i < len(name); i++ {
		n = n*10 + int(name[i]-'0')
	}
	*out = n
	return 1, nil
}

func TestGenQueryErrors(t *testing.T) {
	w := MustGenerate(smallCfg(), rand.New(rand.NewSource(8)))
	rng := rand.New(rand.NewSource(9))
	if _, err := w.GenQuery("q", 0, 0.25, rng); err == nil {
		t.Fatal("expected error for 0 dims")
	}
	if _, err := w.GenQuery("q", 99, 0.25, rng); err == nil {
		t.Fatal("expected error for too many dims")
	}
	if _, err := w.GenQuery("q", 4, 0, rng); err == nil {
		t.Fatal("expected error for zero range length")
	}
}

func TestGenQueriesCount(t *testing.T) {
	w := MustGenerate(smallCfg(), rand.New(rand.NewSource(10)))
	qs, err := w.GenQueries(25, 6, 0.25, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("GenQueries: %v", err)
	}
	if len(qs) != 25 {
		t.Fatalf("got %d queries; want 25", len(qs))
	}
}

func TestSelectivityMeasurement(t *testing.T) {
	w := MustGenerate(smallCfg(), rand.New(rand.NewSource(12)))
	all := w.AllRecords()
	q, err := w.GenQuery("q", 1, 0.5, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatalf("GenQuery: %v", err)
	}
	sel := Selectivity(q, all)
	if sel <= 0 || sel > 1 {
		t.Fatalf("selectivity %g out of (0,1]", sel)
	}
	if Selectivity(q, nil) != 0 {
		t.Fatal("empty record set has 0 selectivity")
	}
}

func TestGenSelectivityQueryCalibration(t *testing.T) {
	cfg := Config{Nodes: 10, RecordsPerNode: 500, AttrsPerDist: 4}
	w := MustGenerate(cfg, rand.New(rand.NewSource(14)))
	all := w.AllRecords()
	rng := rand.New(rand.NewSource(15))
	for _, target := range []float64{0.01, 0.03} {
		q, err := w.GenSelectivityQuery("q", 6, target, all, rng)
		if err != nil {
			t.Fatalf("GenSelectivityQuery(%g): %v", target, err)
		}
		sel := Selectivity(q, all)
		if sel < target/4 || sel > target*4 {
			t.Fatalf("target %g calibrated to %g (off by >4x)", target, sel)
		}
	}
}

func TestGenSelectivityQueryErrors(t *testing.T) {
	w := MustGenerate(smallCfg(), rand.New(rand.NewSource(16)))
	rng := rand.New(rand.NewSource(17))
	all := w.AllRecords()
	if _, err := w.GenSelectivityQuery("q", 6, 0, all, rng); err == nil {
		t.Fatal("expected error for target 0")
	}
	if _, err := w.GenSelectivityQuery("q", 6, 1.5, all, rng); err == nil {
		t.Fatal("expected error for target > 1")
	}
	if _, err := w.GenSelectivityQuery("q", 6, 0.1, nil, rng); err == nil {
		t.Fatal("expected error for empty sample")
	}
	if _, err := w.GenSelectivityQuery("q", 0, 0.1, all, rng); err == nil {
		t.Fatal("expected error for zero dims")
	}
}

func TestGenSelectivityGroups(t *testing.T) {
	cfg := Config{Nodes: 10, RecordsPerNode: 200, AttrsPerDist: 4}
	w := MustGenerate(cfg, rand.New(rand.NewSource(18)))
	groups, err := w.GenSelectivityGroups([]float64{0.01, 0.03}, 5, 6, 1000, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatalf("GenSelectivityGroups: %v", err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d; want 2", len(groups))
	}
	for _, g := range groups {
		if len(g.Queries) != 5 {
			t.Fatalf("group %g has %d queries; want 5", g.Target, len(g.Queries))
		}
	}
}

func TestDistString(t *testing.T) {
	for d, want := range map[Dist]string{Uniform: "uniform", Window: "window", Gaussian: "gaussian", Pareto: "pareto"} {
		if d.String() != want {
			t.Fatalf("%v String mismatch", d)
		}
	}
}

func TestWindowLenOverride(t *testing.T) {
	cfg := smallCfg()
	cfg.WindowLen = 0.1
	w := MustGenerate(cfg, rand.New(rand.NewSource(30)))
	for _, recs := range w.PerNode {
		for _, attr := range w.Cfg.AttrsOf(Window) {
			lo, hi := 1.0, 0.0
			for _, r := range recs {
				v := r.Num(attr)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if hi-lo > 0.1+1e-9 {
				t.Fatalf("window attr %d spans %g > 0.1 with override", attr, hi-lo)
			}
		}
	}
	bad := smallCfg()
	bad.WindowLen = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("WindowLen > 1 must be rejected")
	}
	bad.WindowLen = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative WindowLen must be rejected")
	}
}

func TestCategoricalAttrs(t *testing.T) {
	cfg := smallCfg()
	cfg.CategoricalAttrs = 3
	cfg.CategoricalVocab = 5
	w := MustGenerate(cfg, rand.New(rand.NewSource(70)))
	if w.Schema.NumAttrs() != 16+3 {
		t.Fatalf("schema has %d attrs; want 19", w.Schema.NumAttrs())
	}
	if len(w.Schema.CategoricalIndexes()) != 3 {
		t.Fatalf("categorical indexes = %v", w.Schema.CategoricalIndexes())
	}
	vocab := make(map[string]bool)
	for _, recs := range w.PerNode {
		for _, r := range recs {
			for _, ci := range w.Schema.CategoricalIndexes() {
				v := r.Str(ci)
				if v == "" {
					t.Fatal("categorical value missing")
				}
				vocab[v] = true
			}
		}
	}
	if len(vocab) > 5 {
		t.Fatalf("vocabulary has %d values; want <= 5", len(vocab))
	}
	bad := cfg
	bad.CategoricalAttrs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative categorical attrs must fail")
	}
}

func TestCategoricalQueriesEndToEnd(t *testing.T) {
	// Records with categorical attrs flow through summaries and matching.
	cfg := Config{Nodes: 5, RecordsPerNode: 30, AttrsPerDist: 1, CategoricalAttrs: 1, CategoricalVocab: 3}
	w := MustGenerate(cfg, rand.New(rand.NewSource(71)))
	q := query.New("q", query.NewEq("c0", "v1"))
	if err := q.Bind(w.Schema); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range w.AllRecords() {
		if q.MatchRecord(r) {
			n++
		}
	}
	if n == 0 {
		t.Fatal("vocabulary of 3 over 150 records must match something")
	}
}
