// Package workload generates the paper's synthetic resource records and
// multi-dimensional queries. Records carry 16 numeric attributes in four
// distribution families — uniform, window (uniform within a per-node range
// of length 0.5), Gaussian, and Pareto (scaled and truncated into [0,1]) —
// and queries specify per-dimension ranges of length 0.25 over a mix of
// those families (paper §V defaults). It also implements the overlap-factor
// data placement of Fig. 9 and the selectivity-calibrated query groups of
// Fig. 11.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"roads/internal/query"
	"roads/internal/record"
)

// Dist identifies an attribute's value distribution.
type Dist uint8

const (
	// Uniform draws values uniformly from [0,1].
	Uniform Dist = iota
	// Window draws values uniformly from a per-node window of length 0.5
	// randomly placed in [0,1] (the paper's "range" distribution).
	Window
	// Gaussian draws from N(0.5, 0.15), truncated to [0,1].
	Gaussian
	// Pareto draws from a Pareto(xm=0.05, alpha=1.5), truncated to [0,1].
	Pareto
)

func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Window:
		return "window"
	case Gaussian:
		return "gaussian"
	case Pareto:
		return "pareto"
	default:
		return fmt.Sprintf("dist(%d)", uint8(d))
	}
}

const (
	gaussMean  = 0.5
	gaussStdev = 0.15
	paretoXm   = 0.05
	paretoA    = 1.5
	// WindowLen is the length of the per-node window for the Window
	// distribution (paper: "ranges of length 0.5").
	WindowLen = 0.5
	// DefaultQueryRange is the per-dimension range length (paper: 0.25).
	DefaultQueryRange = 0.25
)

// Config describes a workload.
type Config struct {
	// Nodes is the number of resource owners / servers.
	Nodes int
	// RecordsPerNode is K, the records each owner holds (paper: 500).
	RecordsPerNode int
	// AttrsPerDist is how many attributes each of the four distribution
	// families contributes; the schema has 4*AttrsPerDist numeric
	// attributes (paper: 4 each, 16 total).
	AttrsPerDist int
	// OverlapFactor, when positive, overrides the first 8 attributes: each
	// node's values for those attributes fall in a window of length
	// OverlapFactor/Nodes randomly placed in [0,1] (Fig. 9). Zero disables.
	OverlapFactor float64
	// WindowLen overrides the Window-distribution window length (paper
	// default 0.5). Shorter windows make per-node data more distinct, so
	// summaries prune harder — the regime where the paper's Fig. 6 latency
	// decline is most visible. Zero means the default.
	WindowLen float64
	// CategoricalAttrs appends that many categorical attributes (named
	// c0, c1, ...) after the numeric ones, each drawing uniformly from a
	// vocabulary of CategoricalVocab values. The paper's prototype
	// workload mixes integer, double, string and categorical types; this
	// exercises the value-set / Bloom summary paths at system scale.
	CategoricalAttrs int
	// CategoricalVocab is the vocabulary size per categorical attribute
	// (default 16 when CategoricalAttrs > 0).
	CategoricalVocab int
	// CategoricalDepth, when > 1, draws categorical values as dotted paths
	// of that many segments ("s2.m1.v7") instead of flat tokens: interior
	// segments draw from a fan of catInteriorFan, the leaf from the
	// vocabulary, and each node keeps catHomeBias of its values under a
	// per-node home top segment. Dense per-node subtrees are what value-set
	// condensation collapses into prefix wildcards; depth <= 1 reproduces
	// the flat vocabulary exactly (same RNG stream).
	CategoricalDepth int
}

// DefaultConfig returns the paper's §V defaults: 320 nodes x 500 records,
// 16 attributes (4 per family), no overlap override.
func DefaultConfig() Config {
	return Config{Nodes: 320, RecordsPerNode: 500, AttrsPerDist: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("workload: Nodes must be positive, got %d", c.Nodes)
	}
	if c.RecordsPerNode <= 0 {
		return fmt.Errorf("workload: RecordsPerNode must be positive, got %d", c.RecordsPerNode)
	}
	if c.AttrsPerDist <= 0 {
		return fmt.Errorf("workload: AttrsPerDist must be positive, got %d", c.AttrsPerDist)
	}
	if c.OverlapFactor < 0 {
		return fmt.Errorf("workload: OverlapFactor must be non-negative, got %g", c.OverlapFactor)
	}
	if c.WindowLen < 0 || c.WindowLen > 1 {
		return fmt.Errorf("workload: WindowLen must be in [0,1], got %g", c.WindowLen)
	}
	if c.CategoricalAttrs < 0 || c.CategoricalVocab < 0 || c.CategoricalDepth < 0 {
		return fmt.Errorf("workload: categorical settings must be non-negative")
	}
	return nil
}

// vocab returns the effective categorical vocabulary size.
func (c Config) vocab() int {
	if c.CategoricalVocab > 0 {
		return c.CategoricalVocab
	}
	return 16
}

const (
	// catInteriorFan is the branching factor of interior segments of
	// hierarchical categorical values (and the number of distinct home
	// subtrees nodes cluster under).
	catInteriorFan = 4
	// catHomeBias is the fraction of a node's hierarchical categorical
	// values that fall under its home top-level segment.
	catHomeBias = 0.8
)

// catValue draws one categorical value. With CategoricalDepth <= 1 it is a
// flat vocabulary token; otherwise a dotted path of CategoricalDepth
// segments whose top segment is the node's home subtree with probability
// catHomeBias. Pass home < 0 (queries) for an unbiased draw.
func (c Config) catValue(home int, rng *rand.Rand) string {
	if c.CategoricalDepth <= 1 {
		return fmt.Sprintf("v%d", rng.Intn(c.vocab()))
	}
	top := home
	if top < 0 || rng.Float64() >= catHomeBias {
		top = rng.Intn(catInteriorFan)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "s%d", top)
	for d := 1; d < c.CategoricalDepth-1; d++ {
		fmt.Fprintf(&b, ".m%d", rng.Intn(catInteriorFan))
	}
	fmt.Fprintf(&b, ".v%d", rng.Intn(c.vocab()))
	return b.String()
}

// windowLen returns the effective Window-distribution window length.
func (c Config) windowLen() float64 {
	if c.WindowLen > 0 {
		return c.WindowLen
	}
	return WindowLen
}

// NumAttrs returns the total attribute count.
func (c Config) NumAttrs() int { return 4 * c.AttrsPerDist }

// DistOfAttr returns the distribution family of attribute position i. The
// layout is [Uniform... Window... Gaussian... Pareto...], so with the
// default AttrsPerDist=4 the "first 8 attributes" of Fig. 9 are the uniform
// and window groups.
func (c Config) DistOfAttr(i int) Dist {
	return Dist(i / c.AttrsPerDist)
}

// AttrsOf returns the attribute positions belonging to the family.
func (c Config) AttrsOf(d Dist) []int {
	out := make([]int, c.AttrsPerDist)
	for i := range out {
		out[i] = int(d)*c.AttrsPerDist + i
	}
	return out
}

// Workload is a generated dataset: the schema, per-node record slices, and
// the configuration that produced them.
type Workload struct {
	Cfg     Config
	Schema  *record.Schema
	PerNode [][]*record.Record
}

// Generate produces records for every node using rng. Deterministic for a
// given (cfg, rng state).
func Generate(cfg Config, rng *rand.Rand) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	attrs := record.DefaultSchema(cfg.NumAttrs()).Attrs()
	for ci := 0; ci < cfg.CategoricalAttrs; ci++ {
		attrs = append(attrs, record.Attribute{Name: fmt.Sprintf("c%d", ci), Kind: record.Categorical})
	}
	schema, err := record.NewSchema(attrs)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Cfg:     cfg,
		Schema:  schema,
		PerNode: make([][]*record.Record, cfg.Nodes),
	}
	nAttrs := cfg.NumAttrs()
	winLen := cfg.windowLen()
	overlapAttrs := 8
	if overlapAttrs > nAttrs {
		overlapAttrs = nAttrs
	}
	for node := 0; node < cfg.Nodes; node++ {
		// Per-node placement parameters.
		catHome := 0
		if cfg.CategoricalAttrs > 0 && cfg.CategoricalDepth > 1 {
			catHome = rng.Intn(catInteriorFan)
		}
		windowStarts := make([]float64, nAttrs)
		for i := 0; i < nAttrs; i++ {
			if cfg.DistOfAttr(i) == Window {
				windowStarts[i] = rng.Float64() * (1 - winLen)
			}
		}
		var overlapStart []float64
		var overlapLen float64
		if cfg.OverlapFactor > 0 {
			overlapLen = cfg.OverlapFactor / float64(cfg.Nodes)
			if overlapLen > 1 {
				overlapLen = 1
			}
			overlapStart = make([]float64, overlapAttrs)
			for i := range overlapStart {
				overlapStart[i] = rng.Float64() * (1 - overlapLen)
			}
		}

		recs := make([]*record.Record, cfg.RecordsPerNode)
		for k := 0; k < cfg.RecordsPerNode; k++ {
			r := record.New(w.Schema, fmt.Sprintf("n%d-r%d", node, k), fmt.Sprintf("owner%d", node))
			for i := 0; i < nAttrs; i++ {
				var v float64
				if cfg.OverlapFactor > 0 && i < overlapAttrs {
					v = overlapStart[i] + rng.Float64()*overlapLen
				} else {
					switch cfg.DistOfAttr(i) {
					case Uniform:
						v = rng.Float64()
					case Window:
						v = windowStarts[i] + rng.Float64()*winLen
					case Gaussian:
						v = gaussMean + rng.NormFloat64()*gaussStdev
					case Pareto:
						v = paretoXm / math.Pow(rng.Float64(), 1/paretoA)
					}
				}
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				r.SetNum(i, v)
			}
			for ci := 0; ci < cfg.CategoricalAttrs; ci++ {
				r.SetStr(nAttrs+ci, cfg.catValue(catHome, rng))
			}
			recs[k] = r
		}
		w.PerNode[node] = recs
	}
	return w, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config, rng *rand.Rand) *Workload {
	w, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return w
}

// AllRecords flattens the per-node records into one slice.
func (w *Workload) AllRecords() []*record.Record {
	total := 0
	for _, recs := range w.PerNode {
		total += len(recs)
	}
	out := make([]*record.Record, 0, total)
	for _, recs := range w.PerNode {
		out = append(out, recs...)
	}
	return out
}

// TotalRecords returns N*K.
func (w *Workload) TotalRecords() int {
	total := 0
	for _, recs := range w.PerNode {
		total += len(recs)
	}
	return total
}

// queryDimPattern is the family order in which query dimensions are drawn.
// The first six entries reproduce the paper's default 6-dimension query mix
// (two uniform, two window, one Gaussian, one Pareto); dimensions beyond
// six continue with uniform/window, so every q in the Fig. 6/7 sweep (2..8)
// is well defined.
var queryDimPattern = []Dist{Uniform, Window, Gaussian, Pareto, Uniform, Window, Uniform, Window}

// hotQueryNarrowing divides rangeLen for the hot dimension of a skewed
// query: narrow ranges against coarse histogram buckets are what produce
// near-miss false-positive descents.
const hotQueryNarrowing = 4

// GenQuery builds one query with dims dimensions, each a range of length
// rangeLen placed uniformly at random, over distinct attributes following
// the paper's family mix.
func (w *Workload) GenQuery(id string, dims int, rangeLen float64, rng *rand.Rand) (*query.Query, error) {
	return w.genQuery(id, dims, rangeLen, false, rng)
}

// GenQuerySkewed is GenQuery, except that with probability skew the query
// becomes "hot": its first dimension is a narrow range (rangeLen /
// hotQueryNarrowing) on the first Window-family attribute, and — when the
// workload has categorical attributes — an extra Eq predicate on c0 draws
// an unbiased value from the categorical vocabulary. Hot queries
// concentrate false-positive pressure on a single attribute, which is the
// signal adaptive summary resolution feeds on.
func (w *Workload) GenQuerySkewed(id string, dims int, rangeLen, skew float64, rng *rand.Rand) (*query.Query, error) {
	if skew < 0 || skew > 1 {
		return nil, fmt.Errorf("workload: skew %g out of [0,1]", skew)
	}
	hot := false
	if skew > 0 {
		hot = rng.Float64() < skew
	}
	return w.genQuery(id, dims, rangeLen, hot, rng)
}

func (w *Workload) genQuery(id string, dims int, rangeLen float64, hot bool, rng *rand.Rand) (*query.Query, error) {
	if dims <= 0 || dims > w.Cfg.NumAttrs() {
		return nil, fmt.Errorf("workload: query dims %d out of range [1,%d]", dims, w.Cfg.NumAttrs())
	}
	if rangeLen <= 0 || rangeLen > 1 {
		return nil, fmt.Errorf("workload: rangeLen %g out of (0,1]", rangeLen)
	}
	used := make(map[int]bool, dims)
	preds := make([]query.Predicate, 0, dims+1)
	start := 0
	if hot {
		hotAttr := w.Cfg.AttrsOf(Window)[0]
		used[hotAttr] = true
		narrow := rangeLen / hotQueryNarrowing
		lo := rng.Float64() * (1 - narrow)
		preds = append(preds, query.NewRange(w.Schema.Attr(hotAttr).Name, lo, lo+narrow))
		start = 1
	}
	for d := start; d < dims; d++ {
		family := queryDimPattern[d%len(queryDimPattern)]
		attrs := w.Cfg.AttrsOf(family)
		// Pick an unused attribute from the family; fall back to any
		// unused attribute if the family is exhausted.
		attr := -1
		perm := rng.Perm(len(attrs))
		for _, pi := range perm {
			if !used[attrs[pi]] {
				attr = attrs[pi]
				break
			}
		}
		if attr == -1 {
			for i := 0; i < w.Cfg.NumAttrs(); i++ {
				if !used[i] {
					attr = i
					break
				}
			}
		}
		used[attr] = true
		lo := rng.Float64() * (1 - rangeLen)
		preds = append(preds, query.NewRange(w.Schema.Attr(attr).Name, lo, lo+rangeLen))
	}
	if hot && w.Cfg.CategoricalAttrs > 0 {
		name := fmt.Sprintf("c%d", 0)
		preds = append(preds, query.NewEq(name, w.Cfg.catValue(-1, rng)))
	}
	q := query.New(id, preds...)
	if err := q.Bind(w.Schema); err != nil {
		return nil, err
	}
	return q, nil
}

// GenQueries builds n queries via GenQuery.
func (w *Workload) GenQueries(n, dims int, rangeLen float64, rng *rand.Rand) ([]*query.Query, error) {
	return w.GenQueriesSkewed(n, dims, rangeLen, 0, rng)
}

// GenQueriesSkewed builds n queries via GenQuerySkewed.
func (w *Workload) GenQueriesSkewed(n, dims int, rangeLen, skew float64, rng *rand.Rand) ([]*query.Query, error) {
	out := make([]*query.Query, n)
	for i := range out {
		q, err := w.GenQuerySkewed(fmt.Sprintf("q%d", i), dims, rangeLen, skew, rng)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// Selectivity measures the exact fraction of records in recs matching q.
func Selectivity(q *query.Query, recs []*record.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	matches := 0
	for _, r := range recs {
		if q.MatchRecord(r) {
			matches++
		}
	}
	return float64(matches) / float64(len(recs))
}

// GenSelectivityQuery builds a query with dims dimensions whose global
// selectivity approximates target (a fraction in (0,1)). It centers a box
// on a randomly chosen record and bisects the per-dimension half-width
// until the measured selectivity over sample is within 25% of target (or
// the bisection budget is exhausted). This reproduces the prototype
// benchmark's selectivity-grouped query sets (Fig. 11).
func (w *Workload) GenSelectivityQuery(id string, dims int, target float64, sample []*record.Record, rng *rand.Rand) (*query.Query, error) {
	if target <= 0 || target >= 1 {
		return nil, fmt.Errorf("workload: selectivity target %g out of (0,1)", target)
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("workload: empty sample")
	}
	if dims <= 0 || dims > w.Cfg.NumAttrs() {
		return nil, fmt.Errorf("workload: query dims %d out of range", dims)
	}
	center := sample[rng.Intn(len(sample))]
	// Distinct attributes following the default family mix.
	used := make(map[int]bool, dims)
	attrs := make([]int, 0, dims)
	for d := 0; d < dims; d++ {
		family := queryDimPattern[d%len(queryDimPattern)]
		fam := w.Cfg.AttrsOf(family)
		attr := -1
		for _, pi := range rng.Perm(len(fam)) {
			if !used[fam[pi]] {
				attr = fam[pi]
				break
			}
		}
		if attr == -1 {
			for i := 0; i < w.Cfg.NumAttrs(); i++ {
				if !used[i] {
					attr = i
					break
				}
			}
		}
		used[attr] = true
		attrs = append(attrs, attr)
	}

	build := func(halfWidth float64) (*query.Query, error) {
		preds := make([]query.Predicate, len(attrs))
		for i, a := range attrs {
			c := center.Num(a)
			preds[i] = query.NewRange(w.Schema.Attr(a).Name, c-halfWidth, c+halfWidth)
		}
		q := query.New(id, preds...)
		if err := q.Bind(w.Schema); err != nil {
			return nil, err
		}
		return q, nil
	}

	lo, hi := 0.0, 1.0
	var best *query.Query
	bestErr := math.Inf(1)
	for iter := 0; iter < 24; iter++ {
		mid := (lo + hi) / 2
		q, err := build(mid)
		if err != nil {
			return nil, err
		}
		sel := Selectivity(q, sample)
		if diff := math.Abs(sel - target); diff < bestErr {
			best, bestErr = q, diff
		}
		switch {
		case sel > target:
			hi = mid
		default:
			lo = mid
		}
		if bestErr <= 0.25*target {
			break
		}
	}
	return best, nil
}

// SelectivityGroup is one Fig. 11 query group: a target selectivity and its
// calibrated queries.
type SelectivityGroup struct {
	Target  float64 // fraction, e.g. 0.0001 for 0.01%
	Queries []*query.Query
}

// GenSelectivityGroups builds the paper's six groups (0.01%..3%) with
// perGroup queries each, calibrated against a sample of up to sampleSize
// records drawn from the full workload.
func (w *Workload) GenSelectivityGroups(targets []float64, perGroup, dims, sampleSize int, rng *rand.Rand) ([]SelectivityGroup, error) {
	all := w.AllRecords()
	sample := all
	if len(all) > sampleSize {
		sample = make([]*record.Record, sampleSize)
		for i, pi := range rng.Perm(len(all))[:sampleSize] {
			sample[i] = all[pi]
		}
	}
	groups := make([]SelectivityGroup, len(targets))
	for gi, target := range targets {
		groups[gi].Target = target
		groups[gi].Queries = make([]*query.Query, perGroup)
		for i := 0; i < perGroup; i++ {
			q, err := w.GenSelectivityQuery(fmt.Sprintf("g%d-q%d", gi, i), dims, target, sample, rng)
			if err != nil {
				return nil, err
			}
			groups[gi].Queries[i] = q
		}
	}
	return groups, nil
}

// PaperSelectivityTargets are the six selectivity groups of Fig. 11.
var PaperSelectivityTargets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03}
