package wire

import (
	"reflect"
	"testing"
)

// TestEncodeVersionV4Adaptive pins the membership-epoch compatibility
// contract: a message carrying neither an Epoch nor a RootProbe encodes
// exactly as before (version 2 or 3 per its fields), so traffic to
// pre-epoch peers never carries a v4 payload — version 4 appears only
// once an epoch stamp or a root probe is actually on the message.
func TestEncodeVersionV4Adaptive(t *testing.T) {
	cases := []struct {
		m    *Message
		want byte
	}{
		{&Message{Kind: KindHeartbeat, From: "n"}, 2},
		{&Message{Kind: KindAck, From: "n", Ack: &AckInfo{HaveVersion: 9}}, 3},
		{&Message{Kind: KindHeartbeat, From: "n", Epoch: 1}, 4},
		{&Message{Kind: KindAck, From: "n", Ack: &AckInfo{HaveVersion: 9}, Epoch: 7}, 4},
		{&Message{Kind: KindRootProbe, From: "n",
			RootProbe: &RootProbe{RootID: "n", RootAddr: "a"}}, 4},
	}
	for _, c := range cases {
		data, err := Encode(c.m)
		if err != nil {
			t.Fatalf("kind %d: %v", c.m.Kind, err)
		}
		if data[1] != c.want {
			t.Fatalf("kind %d (epoch=%d probe=%v) encoded as version %d, want %d",
				c.m.Kind, c.m.Epoch, c.m.RootProbe != nil, data[1], c.want)
		}
	}
}

// TestBinaryV4RoundTrip checks the membership shapes survive the codec
// exactly: epoch-stamped relationship messages, root probes and replies,
// and an epoch-stamped batch ack (the capability bootstrap message).
func TestBinaryV4RoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: KindHeartbeat, From: "child", Addr: "ca", Epoch: 3},
		{Kind: KindSummaryReport, From: "child", Epoch: 12, Report: &SummaryReport{
			Depth: 2, Version: 0xfeedbeef,
		}},
		{Kind: KindRootProbe, From: "r2", Addr: "r2a", Epoch: 5,
			RootProbe: &RootProbe{RootID: "r2", RootAddr: "r2a"}},
		{Kind: KindRootProbeReply, From: "n", Addr: "na", Epoch: 9,
			RootProbe: &RootProbe{RootID: "r1", RootAddr: "r1a"}},
		{Kind: KindAck, From: "child", Epoch: 2, Ack: &AckInfo{
			NeedFull: true, NeedFullOrigins: []string{"sib"},
		}},
	}
	for _, msg := range msgs {
		data, err := Encode(msg)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if data[1] != 4 {
			t.Fatalf("kind %d encoded as version %d, want 4", msg.Kind, data[1])
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Fatalf("kind %d changed across the codec:\nsent %+v\ngot  %+v", msg.Kind, msg, got)
		}
	}
}

// TestBinaryV4KindValues pins the new kind values: appended after
// KindReplicaBatch, never renumbering earlier kinds.
func TestBinaryV4KindValues(t *testing.T) {
	if KindRootProbe != KindReplicaBatch+1 || KindRootProbeReply != KindRootProbe+1 {
		t.Fatalf("membership kinds renumbered: probe=%d reply=%d batch=%d",
			KindRootProbe, KindRootProbeReply, KindReplicaBatch)
	}
}

// TestBinaryRejectsFutureVersion checks the decoder refuses a payload
// stamped with a version it does not know (v5), rather than misreading
// trailing fields.
func TestBinaryRejectsFutureVersion(t *testing.T) {
	data, err := Encode(&Message{Kind: KindHeartbeat, From: "n", Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	data[1] = binVersion + 1
	if _, err := Decode(data); err == nil {
		t.Fatalf("decoder accepted version %d payload", binVersion+1)
	}
}

// TestBinaryV3NoEpochTail checks a v3 payload must not carry the v4 tail:
// trailing bytes after the v3 fields are rejected, so an epoch can never
// ride on a version the receiver would silently truncate.
func TestBinaryV3NoEpochTail(t *testing.T) {
	data, err := Encode(&Message{Kind: KindAck, From: "n", Ack: &AckInfo{HaveVersion: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if data[1] != 3 {
		t.Fatalf("setup: want v3 payload, got %d", data[1])
	}
	if _, err := Decode(append(data, 1)); err == nil {
		t.Fatal("v3 payload with trailing epoch byte must fail")
	}
}
