package wire

import (
	"testing"

	"roads/internal/summary"
)

// TestKindValuesStable pins the wire values of the message kinds: new
// kinds must append after KindReplicaBatch so deployed peers keep
// understanding each other.
func TestKindValuesStable(t *testing.T) {
	want := map[Kind]uint8{
		KindJoin: 1, KindJoinReply: 2, KindSummaryReport: 3, KindReplicaPush: 4,
		KindQuery: 5, KindQueryReply: 6, KindHeartbeat: 7, KindHeartbeatReply: 8,
		KindLeave: 9, KindAck: 10, KindError: 11, KindStatus: 12,
		KindStatusReply: 13, KindReplicaBatch: 14,
	}
	for k, v := range want {
		if uint8(k) != v {
			t.Fatalf("kind %d moved to %d; wire values must stay stable", v, uint8(k))
		}
	}
}

// TestReplicaBatchRoundTrip encodes a batch of pushes and checks it
// survives the gob round trip intact.
func TestReplicaBatchRoundTrip(t *testing.T) {
	schema := testSchema()
	s, err := summary.New(schema, summary.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Origin = "origin1"
	s.Records = 42
	dto := FromSummary(s)
	msg := &Message{
		Kind: KindReplicaBatch,
		From: "parent",
		Addr: "parent-addr",
		Batch: &ReplicaBatch{Pushes: []*ReplicaPush{
			{OriginID: "sib", OriginAddr: "sib-addr", Branch: dto, Level: 1},
			{OriginID: "anc", OriginAddr: "anc-addr", Branch: dto, Local: dto, Ancestor: true, Level: 2},
		}},
	}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindReplicaBatch || got.Batch == nil || len(got.Batch.Pushes) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	p0, p1 := got.Batch.Pushes[0], got.Batch.Pushes[1]
	if p0.OriginID != "sib" || p0.Level != 1 || p0.Ancestor || p0.Local != nil {
		t.Fatalf("push 0 mismatch: %+v", p0)
	}
	if p1.OriginID != "anc" || p1.Level != 2 || !p1.Ancestor || p1.Local == nil {
		t.Fatalf("push 1 mismatch: %+v", p1)
	}
	if p1.Branch.Records != 42 {
		t.Fatalf("summary payload lost: %+v", p1.Branch)
	}
	if _, err := p1.Branch.ToSummary(schema); err != nil {
		t.Fatalf("decoded summary must rebuild: %v", err)
	}
}

// TestTransportStatusRoundTrip checks the Status message carries the
// transport counter block.
func TestTransportStatusRoundTrip(t *testing.T) {
	msg := &Message{
		Kind: KindStatusReply,
		From: "srv",
		Status: &Status{
			ID: "srv",
			Transport: &TransportStatus{
				Dials: 3, Reuses: 97, Calls: 100, BytesSent: 4096, BytesRecv: 8192,
				P50Micros: 500, P99Micros: 2500,
			},
		},
	}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	tr := got.Status.Transport
	if tr == nil || tr.Reuses != 97 || tr.P99Micros != 2500 {
		t.Fatalf("transport status lost: %+v", tr)
	}
}
