package wire

import (
	"reflect"
	"testing"
)

// TestEncodeVersionAdaptive pins the backwards-compatibility contract of
// wire v3: the encoder writes version 2 for every message that carries no
// v3 field, so a v2 peer can decode all traffic a server sends before
// delta capability has been negotiated — and version 3 only once a v3
// field is actually in use.
func TestEncodeVersionAdaptive(t *testing.T) {
	v2 := []*Message{
		{Kind: KindJoin, From: "n", Join: &Join{ID: "n", Addr: "a"}},
		{Kind: KindSummaryReport, From: "n", Report: &SummaryReport{
			Summary: sampleSummaryDTO(t, 8, 4), Depth: 1,
		}},
		{Kind: KindReplicaPush, From: "n", Replica: &ReplicaPush{
			OriginID: "o", OriginAddr: "oa", Branch: sampleSummaryDTO(t, 8, 4),
		}},
		{Kind: KindReplicaBatch, From: "n", Batch: &ReplicaBatch{Pushes: []*ReplicaPush{
			{OriginID: "o", OriginAddr: "oa", Branch: sampleSummaryDTO(t, 8, 4)},
		}}},
		{Kind: KindAck, From: "n"},
		{Kind: KindStatusReply, From: "n", Status: &Status{ID: "n", QueriesServed: 5}},
	}
	for _, m := range v2 {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("kind %d: %v", m.Kind, err)
		}
		if data[1] != 2 {
			t.Fatalf("kind %d without v3 fields encoded as version %d, want 2", m.Kind, data[1])
		}
	}

	v3 := []*Message{
		{Kind: KindSummaryReport, From: "n", Report: &SummaryReport{Depth: 1, Version: 9}},
		{Kind: KindReplicaPush, From: "n", Replica: &ReplicaPush{OriginID: "o", Version: 9}},
		{Kind: KindReplicaBatch, From: "n", Batch: &ReplicaBatch{Pushes: []*ReplicaPush{
			{OriginID: "o", OriginAddr: "oa", Version: 9},
		}}},
		{Kind: KindAck, From: "n", Ack: &AckInfo{HaveVersion: 9}},
		{Kind: KindAck, From: "n", Ack: &AckInfo{NeedFull: true}},
		{Kind: KindStatusReply, From: "n", Status: &Status{ID: "n", ReportsSuppressed: 1}},
	}
	for _, m := range v3 {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("kind %d: %v", m.Kind, err)
		}
		if data[1] != 3 {
			t.Fatalf("kind %d with v3 fields encoded as version %d, want 3", m.Kind, data[1])
		}
	}
}

// TestBinaryV3RoundTrip checks the delta-dissemination shapes survive the
// codec exactly: version-only reports, version-only push entries mixed
// with full ones, and acks with feedback.
func TestBinaryV3RoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: KindSummaryReport, From: "child", Report: &SummaryReport{
			Depth: 2, Descendants: 5, Version: 0xfeedbeef,
			Children: []RedirectInfo{{ID: "gc", Addr: "ga", Records: 3}},
		}},
		{Kind: KindReplicaBatch, From: "parent", Batch: &ReplicaBatch{Pushes: []*ReplicaPush{
			{OriginID: "sib", OriginAddr: "sa", Level: 1, Version: 7},
			{OriginID: "anc", OriginAddr: "aa", Ancestor: true, Level: 0,
				Branch: sampleSummaryDTO(t, 8, 4), Version: 8},
			nil,
		}}},
		{Kind: KindAck, From: "parent", Ack: &AckInfo{HaveVersion: 0xfeedbeef}},
		{Kind: KindAck, From: "child", Ack: &AckInfo{
			NeedFull: true, NeedFullOrigins: []string{"sib", "anc"},
		}},
	}
	for _, msg := range msgs {
		data, err := Encode(msg)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Fatalf("kind %d changed across the codec:\nsent %+v\ngot  %+v", msg.Kind, msg, got)
		}
	}
}

// encodeV2Report hand-builds a version-2 summary-report payload exactly as
// the pr3-era encoder wrote it, so the compat test does not depend on the
// current encoder being able to write old versions.
func encodeV2Report(from string, rep *SummaryReport) []byte {
	b := []byte{binMagic, 2, byte(KindSummaryReport)}
	b = appendString(b, from)
	b = appendString(b, "") // Addr
	b = appendString(b, "") // Error
	b = appendUvarint(b, hasReport)
	b = appendBool(b, rep.Summary != nil)
	if rep.Summary != nil {
		b = appendSummary(b, rep.Summary, 2)
	}
	b = appendVarint(b, int64(rep.Depth))
	b = appendVarint(b, int64(rep.Descendants))
	b = appendRedirects(b, rep.Children)
	return b
}

// TestBinaryV2Compat checks the v3 decoder still accepts version-2
// payloads, with the appended v3 fields decoding to their zero values —
// so a legacy peer's reports and pushes remain fully usable.
func TestBinaryV2Compat(t *testing.T) {
	rep := &SummaryReport{
		Summary: sampleSummaryDTO(t, 8, 4), Depth: 2, Descendants: 4,
		Children: []RedirectInfo{{ID: "c", Addr: "ca", Records: 2}},
	}
	got, err := Decode(encodeV2Report("legacy", rep))
	if err != nil {
		t.Fatalf("v2 report: %v", err)
	}
	if got.Report.Version != 0 {
		t.Fatalf("v2 report grew a version: %d", got.Report.Version)
	}
	if got.Ack != nil {
		t.Fatalf("v2 payload grew an ack: %+v", got.Ack)
	}
	rep.Version = 0
	if !reflect.DeepEqual(got.Report, rep) {
		t.Fatalf("v2 report decoded wrong:\nwant %+v\ngot  %+v", rep, got.Report)
	}

	// A v2 payload with v3 trailing bytes must be rejected (no optional
	// suffix within one version).
	withTail := append(encodeV2Report("legacy", rep), 0)
	if _, err := Decode(withTail); err == nil {
		t.Fatal("v2 payload with trailing bytes must fail")
	}
}
