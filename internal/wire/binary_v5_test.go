package wire

import (
	"reflect"
	"testing"
)

// TestEncodeVersionV5Adaptive pins the result-cache/admission
// compatibility contract: a query or reply carrying none of the v5 fields
// encodes exactly as before, so traffic to pre-v5 peers never sees a v5
// payload — version 5 appears only when a priority class, a cache
// fingerprint exchange, or a coarse answer is actually on the message.
func TestEncodeVersionV5Adaptive(t *testing.T) {
	cases := []struct {
		m    *Message
		want byte
	}{
		{&Message{Kind: KindQuery, From: "c", Query: &QueryDTO{ID: "q"}}, 2},
		{&Message{Kind: KindQueryReply, From: "s", QueryRep: &QueryReply{}}, 2},
		{&Message{Kind: KindQuery, From: "c", Query: &QueryDTO{ID: "q", Priority: PriorityHigh}}, 5},
		{&Message{Kind: KindQuery, From: "c", Query: &QueryDTO{ID: "q", WantFingerprint: true}}, 5},
		{&Message{Kind: KindQuery, From: "c", Query: &QueryDTO{ID: "q", CacheFingerprint: 7}}, 5},
		{&Message{Kind: KindQueryReply, From: "s", QueryRep: &QueryReply{Coarse: true, CoarseEstimate: 12.5}}, 5},
		{&Message{Kind: KindQueryReply, From: "s", QueryRep: &QueryReply{NotModified: true}}, 5},
		{&Message{Kind: KindQueryReply, From: "s", QueryRep: &QueryReply{Fingerprint: 99}}, 5},
		// v5 fields coexist with the v4 epoch stamp: both tails ride.
		{&Message{Kind: KindQuery, From: "c", Epoch: 3, Query: &QueryDTO{ID: "q", Priority: PriorityLow}}, 5},
		{&Message{Kind: KindQuery, From: "c", Epoch: 3, Query: &QueryDTO{ID: "q"}}, 4},
	}
	for i, c := range cases {
		data, err := Encode(c.m)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if data[1] != c.want {
			t.Fatalf("case %d encoded as version %d, want %d", i, data[1], c.want)
		}
	}
}

// TestBinaryV5RoundTrip checks the v5 shapes survive the codec exactly:
// priority-stamped queries, fingerprint revalidations, coarse answers and
// NotModified replies — including alongside the older trace and epoch
// fields.
func TestBinaryV5RoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: KindQuery, From: "cli", Addr: "ca", Query: &QueryDTO{
			ID: "q1", Requester: "tenant-a", Start: true, Scope: -1,
			Priority: PriorityHigh, WantFingerprint: true,
		}},
		{Kind: KindQuery, From: "cli", Query: &QueryDTO{
			ID: "q2", Requester: "tenant-b", Scope: -1,
			Priority: PriorityLow, CacheFingerprint: 0xdeadbeef,
			TraceID: "t1", Trace: true, Path: []string{"s1", "s2"},
		}},
		{Kind: KindQueryReply, From: "srv", Addr: "sa", QueryRep: &QueryReply{
			Coarse: true, CoarseEstimate: 41.25, Fingerprint: 0xcafe,
		}},
		{Kind: KindQueryReply, From: "srv", QueryRep: &QueryReply{
			NotModified: true, Fingerprint: 0xdeadbeef,
		}},
		{Kind: KindQueryReply, From: "srv", Epoch: 6, QueryRep: &QueryReply{
			Redirects:   []RedirectInfo{{ID: "c1", Addr: "c1a", Records: 10}},
			Fingerprint: 17,
			Trace:       &TraceInfo{ServerID: "srv", EvalMicros: 120, MatchedChildren: []string{"c1"}},
		}},
	}
	for _, msg := range msgs {
		data, err := Encode(msg)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if data[1] != 5 {
			t.Fatalf("kind %d encoded as version %d, want 5", msg.Kind, data[1])
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Fatalf("kind %d changed across the codec:\nsent %+v\ngot  %+v", msg.Kind, msg, got)
		}
	}
}

// TestBinaryV4NoV5Tail checks a v4 payload must not carry the v5 tail:
// trailing bytes after the v4 fields are rejected, so cache fields can
// never ride on a version the receiver would silently truncate.
func TestBinaryV4NoV5Tail(t *testing.T) {
	data, err := Encode(&Message{Kind: KindQuery, From: "c", Epoch: 2, Query: &QueryDTO{ID: "q"}})
	if err != nil {
		t.Fatal(err)
	}
	if data[1] != 4 {
		t.Fatalf("setup: want v4 payload, got %d", data[1])
	}
	if _, err := Decode(append(data, 1)); err == nil {
		t.Fatal("v4 payload with trailing v5 byte must fail")
	}
}

// TestBinaryRejectsV6 checks the decoder still refuses the next unknown
// version with the sentinel error the client downgrade path sniffs for.
func TestBinaryRejectsV6(t *testing.T) {
	data, err := Encode(&Message{Kind: KindQuery, From: "c", Query: &QueryDTO{ID: "q", Priority: PriorityHigh}})
	if err != nil {
		t.Fatal(err)
	}
	data[1] = binVersion + 1
	if _, err := Decode(data); err == nil {
		t.Fatalf("decoder accepted version %d payload", binVersion+1)
	}
}
