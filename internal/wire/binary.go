package wire

// The compact binary codec. Gob re-serializes full type descriptors on
// every one-shot Encode, which makes each RPC pay kilobytes of schema and
// thousands of reflection-driven allocations; this codec writes fields
// positionally with varint integers, length-prefixed strings, and raw
// little-endian arrays for histogram buckets and Bloom bitsets, so the hot
// query and replica-push paths move only payload bytes.
//
// Layout: every binary payload starts with binMagic, a byte gob can never
// emit first (gob streams open with a message byte count, whose first byte
// is either <= 0x7f or >= 0xf8), so Decode distinguishes the two codecs
// from the first byte and old gob peers interoperate without negotiation:
// listeners answer in whichever codec the request arrived in.
//
// Compatibility rule: fields are appended in a fixed order per struct.
// New fields are appended at the end of their struct's encoding and gated
// on a binVersion bump: the encoder always writes the newest version, and
// the decoder reads appended fields only when the payload's version has
// them (see binReader.ver), so it still accepts every older version.
// Changing or reordering existing fields is not allowed — that would
// require a new magic byte, not just a version bump. Decoders reject
// versions newer than they know instead of misparsing.
//
// Version history:
//
//	1 — initial layout.
//	2 — QueryDTO gains TraceID/Trace/Path, QueryReply gains TraceInfo
//	    (per-query hop tracing).
//	3 — change-driven dissemination: SummaryReport and ReplicaPush gain
//	    Version, Message gains Ack (AckInfo), Status gains the
//	    dissemination counters. The encoder writes version 2 when a
//	    message uses none of these (see encodeVersion), so all traffic
//	    that a v2 peer could produce stays byte-identical and decodable
//	    by v2 peers — v3 features activate only after capability
//	    negotiation proves the receiver understands them.
//	4 — epoch-fenced membership: Message gains Epoch (appended after
//	    Ack) and RootProbe (KindRootProbe/KindRootProbeReply split-brain
//	    probes). Same lowest-sufficient-version rule: a message with
//	    Epoch == 0 and no RootProbe encodes exactly as before, so
//	    pre-epoch traffic stays byte-identical and epoch stamping only
//	    starts once capability negotiation proves the peer decodes v4.
//	5 — result cache + admission control: QueryDTO gains Priority,
//	    CacheFingerprint and WantFingerprint; QueryReply gains Coarse,
//	    CoarseEstimate, NotModified and Fingerprint. Same rule again: a
//	    query with all of them zero encodes as before, servers respond
//	    in kind (v5 reply fields only when the request carried v5
//	    fields), and clients that enable caching/priorities probe
//	    optimistically and downgrade per address when a peer rejects the
//	    version.
//	6 — adaptive summaries: SummaryDTO gains Mode (adaptive-geometry and
//	    condensed-wildcard bits) and a per-attribute resolution Plan,
//	    both appended after the Bloom section; Message gains the
//	    Adaptive capability flag (appended after the v4 epoch block).
//	    Same rule again: a uniform, wildcard-free summary has Mode 0 and
//	    an unflagged message encodes as before, so adaptive geometry
//	    only reaches peers that proved the capability (children flag
//	    replica-batch acks, parents flag pushes to proven children) —
//	    everyone else receives summaries flattened to base geometry.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"roads/internal/query"
	"roads/internal/record"
)

const (
	// binMagic marks a binary-codec payload. It sits in the byte range a
	// gob stream can never start with (0x80..0xf7).
	binMagic = 0xb5
	// binVersion is the newest codec revision; the decoder accepts this
	// and every earlier revision. The encoder writes the lowest revision
	// that can carry the message (encodeVersion), not always the newest.
	binVersion = 6
	// maxRedirectDepth bounds RedirectInfo.Alternates nesting on decode.
	// Real messages nest one level (alternates carry no alternates); the
	// bound stops crafted input from recursing the decoder off the stack.
	maxRedirectDepth = 8
)

// presence bits for Message's optional payload pointers.
const (
	hasJoin = 1 << iota
	hasJoinReply
	hasReport
	hasReplica
	hasBatch
	hasQuery
	hasQueryRep
	hasHeartbeat
	hasStatus
	// hasAckInfo (v3) marks a Message.Ack payload, appended after Status.
	// Only ever set on version-3 payloads: Ack != nil forces the encoder
	// to version 3, and pre-v3 decoders reject version 3 outright.
	hasAckInfo
	// hasRootProbe (v4) marks a Message.RootProbe payload, appended after
	// Ack/Epoch. Only ever set on version-4 payloads.
	hasRootProbe
)

// IsBinary reports whether data is a binary-codec payload (as opposed to
// gob). Transports use it to answer in the codec the request arrived in.
func IsBinary(data []byte) bool {
	return len(data) > 0 && data[0] == binMagic
}

// --- Buffer pool ---

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuf returns a pooled scratch buffer for AppendEncode. Callers own it
// until PutBuf; typical use is `data, err := AppendEncode((*bp)[:0], m)`
// followed by `*bp = data` before PutBuf so grown capacity is retained.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer to the pool. The caller must not retain any
// slice aliasing it afterwards.
func PutBuf(bp *[]byte) {
	if cap(*bp) > 1<<20 {
		return // don't let one huge message pin a huge buffer forever
	}
	bufPool.Put(bp)
}

// --- Encoding primitives ---

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// --- Decoding primitives ---

// binReader walks a binary payload with sticky error state: after the
// first malformed field every subsequent read returns zero values, so
// decoders need no per-field error plumbing and corrupt input can never
// panic.
type binReader struct {
	b   []byte
	off int
	err error
	// ver is the payload's codec revision; readers of version-gated
	// appended fields check it before consuming bytes.
	ver byte
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: binary decode: "+format, args...)
	}
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) bool() bool { return r.u8() != 0 }

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("truncated float at byte %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("string of %d bytes exceeds %d remaining", n, r.remaining())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)]) // copies: decoded messages never alias the input
	r.off += int(n)
	return s
}

// count reads a collection length and validates it against the remaining
// bytes (each element costs at least elemSize bytes), so corrupt input
// cannot trigger a huge allocation.
func (r *binReader) count(elemSize int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(r.remaining()/elemSize) {
		r.fail("collection of %d elements exceeds %d remaining bytes", n, r.remaining())
		return 0
	}
	return int(n)
}

// --- Message ---

// encodeVersion picks the lowest codec revision that can carry m: 5 when
// the message uses any v5 field, 4 for v4 fields, 3 for v3 fields, 2
// otherwise. Writing the lowest sufficient version keeps every message an
// older peer could produce decodable by that peer's generation, which is
// what lets mixed generations share one tree: newer features only appear
// on the wire after the sender has proof the receiver understands them.
// FuzzDecode's encode/decode fixed point tolerates this because a
// re-encode of a decoded message is already normalized.
func encodeVersion(m *Message) byte {
	if m.Adaptive {
		return 6
	}
	if m.Report != nil && m.Report.Summary != nil && m.Report.Summary.Mode != 0 {
		return 6
	}
	if p := m.Replica; p != nil && replicaPushV6(p) {
		return 6
	}
	if m.Batch != nil {
		for _, p := range m.Batch.Pushes {
			if p != nil && replicaPushV6(p) {
				return 6
			}
		}
	}
	if q := m.Query; q != nil {
		if q.Priority != 0 || q.CacheFingerprint != 0 || q.WantFingerprint {
			return 5
		}
	}
	if qr := m.QueryRep; qr != nil {
		if qr.Coarse || qr.CoarseEstimate != 0 || qr.NotModified || qr.Fingerprint != 0 {
			return 5
		}
	}
	if m.Epoch != 0 || m.RootProbe != nil {
		return 4
	}
	if m.Ack != nil {
		return 3
	}
	if m.Report != nil && m.Report.Version != 0 {
		return 3
	}
	if m.Replica != nil && m.Replica.Version != 0 {
		return 3
	}
	if m.Batch != nil {
		for _, p := range m.Batch.Pushes {
			if p != nil && p.Version != 0 {
				return 3
			}
		}
	}
	if st := m.Status; st != nil {
		if st.SummaryRebuildsSkipped != 0 || st.ReportsSuppressed != 0 ||
			st.ReplicaPushDelta != 0 || st.ReplicaPushFull != 0 ||
			st.AntiEntropyRounds != 0 {
			return 3
		}
	}
	return 2
}

// replicaPushV6 reports whether a replica push carries any v6 summary
// feature (adaptive geometry or condensed wildcards).
func replicaPushV6(p *ReplicaPush) bool {
	return (p.Branch != nil && p.Branch.Mode != 0) || (p.Local != nil && p.Local.Mode != 0)
}

// AppendEncode appends m's binary encoding to buf and returns the grown
// slice. Pair with GetBuf/PutBuf to run the hot path allocation-free.
func AppendEncode(buf []byte, m *Message) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("wire: encode nil message")
	}
	ver := encodeVersion(m)
	b := append(buf, binMagic, ver)
	b = append(b, byte(m.Kind))
	b = appendString(b, m.From)
	b = appendString(b, m.Addr)
	b = appendString(b, m.Error)

	var bits uint64
	if m.Join != nil {
		bits |= hasJoin
	}
	if m.JoinReply != nil {
		bits |= hasJoinReply
	}
	if m.Report != nil {
		bits |= hasReport
	}
	if m.Replica != nil {
		bits |= hasReplica
	}
	if m.Batch != nil {
		bits |= hasBatch
	}
	if m.Query != nil {
		bits |= hasQuery
	}
	if m.QueryRep != nil {
		bits |= hasQueryRep
	}
	if m.Heartbeat != nil {
		bits |= hasHeartbeat
	}
	if m.Status != nil {
		bits |= hasStatus
	}
	if m.Ack != nil {
		bits |= hasAckInfo
	}
	if m.RootProbe != nil {
		bits |= hasRootProbe
	}
	b = appendUvarint(b, bits)

	if m.Join != nil {
		b = appendString(b, m.Join.ID)
		b = appendString(b, m.Join.Addr)
	}
	if m.JoinReply != nil {
		b = appendJoinReply(b, m.JoinReply)
	}
	if m.Report != nil {
		b = appendReport(b, m.Report, ver)
	}
	if m.Replica != nil {
		b = appendReplicaPush(b, m.Replica, ver)
	}
	if m.Batch != nil {
		b = appendUvarint(b, uint64(len(m.Batch.Pushes)))
		for _, p := range m.Batch.Pushes {
			if p == nil {
				b = appendBool(b, false)
				continue
			}
			b = appendBool(b, true)
			b = appendReplicaPush(b, p, ver)
		}
	}
	if m.Query != nil {
		b = appendQuery(b, m.Query, ver)
	}
	if m.QueryRep != nil {
		b = appendQueryReply(b, m.QueryRep, ver)
	}
	if m.Heartbeat != nil {
		b = appendStrings(b, m.Heartbeat.RootPath)
		b = appendStrings(b, m.Heartbeat.PathAddrs)
	}
	if m.Status != nil {
		b = appendStatus(b, m.Status, ver)
	}
	if m.Ack != nil {
		b = appendUvarint(b, m.Ack.HaveVersion)
		b = appendBool(b, m.Ack.NeedFull)
		b = appendStrings(b, m.Ack.NeedFullOrigins)
	}
	// v4: membership epoch + root-probe payload, appended per the
	// compatibility rule. Only written on version-4 payloads, and a
	// nonzero Epoch or non-nil RootProbe forces version 4.
	if ver >= 4 {
		b = appendUvarint(b, m.Epoch)
		if m.RootProbe != nil {
			b = appendString(b, m.RootProbe.RootID)
			b = appendString(b, m.RootProbe.RootAddr)
		}
	}
	// v6: adaptive-summaries capability flag, appended per the
	// compatibility rule. A set flag forces version 6.
	if ver >= 6 {
		b = appendBool(b, m.Adaptive)
	}
	codecCounters.binaryEncodes.Inc()
	return b, nil
}

// decodeBinary parses a binary payload into a Message. It never panics on
// malformed input and rejects trailing bytes, so fuzzing can assert a
// strict decode/encode/decode fixed point.
func decodeBinary(data []byte) (*Message, error) {
	r := &binReader{b: data}
	if r.u8() != binMagic {
		return nil, fmt.Errorf("wire: not a binary payload")
	}
	r.ver = r.u8()
	if (r.ver < 1 || r.ver > binVersion) && r.err == nil {
		return nil, fmt.Errorf("wire: unknown binary codec version %d", r.ver)
	}
	m := &Message{}
	m.Kind = Kind(r.u8())
	m.From = r.str()
	m.Addr = r.str()
	m.Error = r.str()
	bits := r.uvarint()

	if bits&hasJoin != 0 {
		m.Join = &Join{ID: r.str(), Addr: r.str()}
	}
	if bits&hasJoinReply != 0 {
		m.JoinReply = readJoinReply(r)
	}
	if bits&hasReport != 0 {
		m.Report = readReport(r)
	}
	if bits&hasReplica != 0 {
		m.Replica = readReplicaPush(r)
	}
	if bits&hasBatch != 0 {
		n := r.count(1)
		batch := &ReplicaBatch{}
		if n > 0 {
			batch.Pushes = make([]*ReplicaPush, 0, n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			if !r.bool() {
				batch.Pushes = append(batch.Pushes, nil)
				continue
			}
			batch.Pushes = append(batch.Pushes, readReplicaPush(r))
		}
		m.Batch = batch
	}
	if bits&hasQuery != 0 {
		m.Query = readQuery(r)
	}
	if bits&hasQueryRep != 0 {
		m.QueryRep = readQueryReply(r)
	}
	if bits&hasHeartbeat != 0 {
		m.Heartbeat = &Heartbeat{RootPath: readStrings(r), PathAddrs: readStrings(r)}
	}
	if bits&hasStatus != 0 {
		m.Status = readStatus(r)
	}
	if r.ver >= 3 && bits&hasAckInfo != 0 {
		m.Ack = &AckInfo{
			HaveVersion:     r.uvarint(),
			NeedFull:        r.bool(),
			NeedFullOrigins: readStrings(r),
		}
	}
	if r.ver >= 4 {
		m.Epoch = r.uvarint()
		if bits&hasRootProbe != 0 {
			m.RootProbe = &RootProbe{RootID: r.str(), RootAddr: r.str()}
		}
	}
	if r.ver >= 6 {
		m.Adaptive = r.bool()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("wire: binary decode: %d trailing bytes", len(r.b)-r.off)
	}
	return m, nil
}

// --- Sub-structures ---

func appendStrings(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func readStrings(r *binReader) []string {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}

func appendJoinReply(b []byte, jr *JoinReply) []byte {
	b = appendBool(b, jr.Accepted)
	b = appendString(b, jr.ParentID)
	b = appendString(b, jr.ParentAddr)
	b = appendUvarint(b, uint64(len(jr.Children)))
	for _, c := range jr.Children {
		b = appendString(b, c.ID)
		b = appendString(b, c.Addr)
		b = appendVarint(b, int64(c.Depth))
		b = appendVarint(b, int64(c.Descendants))
	}
	return b
}

func readJoinReply(r *binReader) *JoinReply {
	jr := &JoinReply{
		Accepted:   r.bool(),
		ParentID:   r.str(),
		ParentAddr: r.str(),
	}
	n := r.count(4)
	if n > 0 {
		jr.Children = make([]ChildInfo, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		jr.Children = append(jr.Children, ChildInfo{
			ID:          r.str(),
			Addr:        r.str(),
			Depth:       int(r.varint()),
			Descendants: int(r.varint()),
		})
	}
	return jr
}

func appendRedirects(b []byte, rs []RedirectInfo) []byte {
	b = appendUvarint(b, uint64(len(rs)))
	for i := range rs {
		b = appendString(b, rs[i].ID)
		b = appendString(b, rs[i].Addr)
		b = appendUvarint(b, rs[i].Records)
		b = appendRedirects(b, rs[i].Alternates)
	}
	return b
}

func readRedirects(r *binReader, depth int) []RedirectInfo {
	if depth > maxRedirectDepth {
		r.fail("redirect alternates nested deeper than %d", maxRedirectDepth)
		return nil
	}
	n := r.count(3)
	if n == 0 {
		return nil
	}
	out := make([]RedirectInfo, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, RedirectInfo{
			ID:         r.str(),
			Addr:       r.str(),
			Records:    r.uvarint(),
			Alternates: readRedirects(r, depth+1),
		})
	}
	return out
}

func appendReport(b []byte, rep *SummaryReport, ver byte) []byte {
	b = appendBool(b, rep.Summary != nil)
	if rep.Summary != nil {
		b = appendSummary(b, rep.Summary, ver)
	}
	b = appendVarint(b, int64(rep.Depth))
	b = appendVarint(b, int64(rep.Descendants))
	b = appendRedirects(b, rep.Children)
	if ver >= 3 {
		b = appendUvarint(b, rep.Version)
	}
	return b
}

func readReport(r *binReader) *SummaryReport {
	rep := &SummaryReport{}
	if r.bool() {
		rep.Summary = readSummary(r)
	}
	rep.Depth = int(r.varint())
	rep.Descendants = int(r.varint())
	rep.Children = readRedirects(r, 0)
	if r.ver >= 3 {
		rep.Version = r.uvarint()
	}
	return rep
}

func appendReplicaPush(b []byte, p *ReplicaPush, ver byte) []byte {
	b = appendString(b, p.OriginID)
	b = appendString(b, p.OriginAddr)
	var flags byte
	if p.Branch != nil {
		flags |= 1
	}
	if p.Local != nil {
		flags |= 2
	}
	if p.Ancestor {
		flags |= 4
	}
	b = append(b, flags)
	if p.Branch != nil {
		b = appendSummary(b, p.Branch, ver)
	}
	if p.Local != nil {
		b = appendSummary(b, p.Local, ver)
	}
	b = appendVarint(b, int64(p.Level))
	b = appendRedirects(b, p.Fallbacks)
	if ver >= 3 {
		b = appendUvarint(b, p.Version)
	}
	return b
}

func readReplicaPush(r *binReader) *ReplicaPush {
	p := &ReplicaPush{OriginID: r.str(), OriginAddr: r.str()}
	flags := r.u8()
	p.Ancestor = flags&4 != 0
	if flags&1 != 0 {
		p.Branch = readSummary(r)
	}
	if flags&2 != 0 {
		p.Local = readSummary(r)
	}
	p.Level = int(r.varint())
	p.Fallbacks = readRedirects(r, 0)
	if r.ver >= 3 {
		p.Version = r.uvarint()
	}
	return p
}

func appendQuery(b []byte, q *QueryDTO, ver byte) []byte {
	b = appendString(b, q.ID)
	b = appendString(b, q.Requester)
	b = appendBool(b, q.Start)
	b = appendVarint(b, int64(q.Scope))
	b = appendVarint(b, int64(q.Budget))
	b = appendUvarint(b, uint64(len(q.Preds)))
	for i := range q.Preds {
		p := &q.Preds[i]
		b = appendString(b, p.Attr)
		b = append(b, byte(p.Op))
		b = appendF64(b, p.Lo)
		b = appendF64(b, p.Hi)
		b = appendString(b, p.Str)
	}
	// v2: trace fields, appended per the compatibility rule.
	b = appendString(b, q.TraceID)
	b = appendBool(b, q.Trace)
	b = appendStrings(b, q.Path)
	// v5: priority class + client-cache revalidation, appended per the
	// compatibility rule. Any of them nonzero forces version 5.
	if ver >= 5 {
		b = append(b, q.Priority)
		b = appendUvarint(b, q.CacheFingerprint)
		b = appendBool(b, q.WantFingerprint)
	}
	return b
}

func readQuery(r *binReader) *QueryDTO {
	q := &QueryDTO{
		ID:        r.str(),
		Requester: r.str(),
		Start:     r.bool(),
		Scope:     int(r.varint()),
		Budget:    time.Duration(r.varint()),
	}
	n := r.count(19) // attr len + op + two floats + str len
	if n > 0 {
		q.Preds = make([]query.Predicate, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		q.Preds = append(q.Preds, query.Predicate{
			Attr: r.str(),
			Op:   query.Op(r.u8()),
			Lo:   r.f64(),
			Hi:   r.f64(),
			Str:  r.str(),
		})
	}
	if r.ver >= 2 {
		q.TraceID = r.str()
		q.Trace = r.bool()
		q.Path = readStrings(r)
	}
	if r.ver >= 5 {
		q.Priority = r.u8()
		q.CacheFingerprint = r.uvarint()
		q.WantFingerprint = r.bool()
	}
	return q
}

func appendQueryReply(b []byte, qr *QueryReply, ver byte) []byte {
	b = appendUvarint(b, uint64(len(qr.Records)))
	for i := range qr.Records {
		rec := &qr.Records[i]
		b = appendString(b, rec.ID)
		b = appendString(b, rec.Owner)
		b = appendUvarint(b, uint64(len(rec.Values)))
		for j := range rec.Values {
			b = appendF64(b, rec.Values[j].Num)
			b = appendString(b, rec.Values[j].Str)
		}
	}
	b = appendRedirects(b, qr.Redirects)
	// v2: per-server trace detail, appended per the compatibility rule.
	b = appendBool(b, qr.Trace != nil)
	if ti := qr.Trace; ti != nil {
		b = appendString(b, ti.ServerID)
		b = appendUvarint(b, ti.EvalMicros)
		b = appendVarint(b, int64(ti.LocalRecords))
		b = appendVarint(b, int64(ti.Children))
		b = appendVarint(b, int64(ti.Replicas))
		b = appendStrings(b, ti.MatchedChildren)
		b = appendStrings(b, ti.MatchedReplicas)
	}
	// v5: coarse-answer and cache-revalidation fields, appended per the
	// compatibility rule. Any of them nonzero forces version 5.
	if ver >= 5 {
		b = appendBool(b, qr.Coarse)
		b = appendF64(b, qr.CoarseEstimate)
		b = appendBool(b, qr.NotModified)
		b = appendUvarint(b, qr.Fingerprint)
	}
	return b
}

func readQueryReply(r *binReader) *QueryReply {
	qr := &QueryReply{}
	n := r.count(3)
	if n > 0 {
		qr.Records = make([]RecordDTO, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		rec := RecordDTO{ID: r.str(), Owner: r.str()}
		nv := r.count(9) // float + str len
		if nv > 0 {
			rec.Values = make([]record.Value, 0, nv)
		}
		for j := 0; j < nv && r.err == nil; j++ {
			rec.Values = append(rec.Values, record.Value{Num: r.f64(), Str: r.str()})
		}
		qr.Records = append(qr.Records, rec)
	}
	qr.Redirects = readRedirects(r, 0)
	if r.ver >= 2 && r.bool() {
		qr.Trace = &TraceInfo{
			ServerID:        r.str(),
			EvalMicros:      r.uvarint(),
			LocalRecords:    int(r.varint()),
			Children:        int(r.varint()),
			Replicas:        int(r.varint()),
			MatchedChildren: readStrings(r),
			MatchedReplicas: readStrings(r),
		}
	}
	if r.ver >= 5 {
		qr.Coarse = r.bool()
		qr.CoarseEstimate = r.f64()
		qr.NotModified = r.bool()
		qr.Fingerprint = r.uvarint()
	}
	return qr
}

func appendStatus(b []byte, st *Status, ver byte) []byte {
	b = appendString(b, st.ID)
	b = appendString(b, st.Addr)
	b = appendString(b, st.ParentID)
	b = appendBool(b, st.IsRoot)
	b = appendVarint(b, int64(st.Children))
	b = appendVarint(b, int64(st.Replicas))
	b = appendVarint(b, int64(st.Owners))
	b = appendUvarint(b, st.BranchRecords)
	b = appendUvarint(b, st.LocalRecords)
	b = appendStrings(b, st.RootPath)
	b = appendUvarint(b, st.QueriesServed)
	b = appendUvarint(b, st.RedirectsIssued)
	b = appendUvarint(b, st.SummariesRecv)
	b = appendUvarint(b, st.QueriesShed)
	b = appendUvarint(b, st.SummaryErrors)
	b = appendBool(b, st.Transport != nil)
	if tr := st.Transport; tr != nil {
		b = appendUvarint(b, tr.Dials)
		b = appendUvarint(b, tr.Reuses)
		b = appendUvarint(b, tr.InFlight)
		b = appendUvarint(b, tr.Calls)
		b = appendUvarint(b, tr.Errors)
		b = appendUvarint(b, tr.Retries)
		b = appendUvarint(b, tr.BytesSent)
		b = appendUvarint(b, tr.BytesRecv)
		b = appendUvarint(b, tr.P50Micros)
		b = appendUvarint(b, tr.P99Micros)
	}
	if ver >= 3 {
		b = appendUvarint(b, st.SummaryRebuildsSkipped)
		b = appendUvarint(b, st.ReportsSuppressed)
		b = appendUvarint(b, st.ReplicaPushDelta)
		b = appendUvarint(b, st.ReplicaPushFull)
		b = appendUvarint(b, st.AntiEntropyRounds)
	}
	return b
}

func readStatus(r *binReader) *Status {
	st := &Status{
		ID:              r.str(),
		Addr:            r.str(),
		ParentID:        r.str(),
		IsRoot:          r.bool(),
		Children:        int(r.varint()),
		Replicas:        int(r.varint()),
		Owners:          int(r.varint()),
		BranchRecords:   r.uvarint(),
		LocalRecords:    r.uvarint(),
		RootPath:        readStrings(r),
		QueriesServed:   r.uvarint(),
		RedirectsIssued: r.uvarint(),
		SummariesRecv:   r.uvarint(),
		QueriesShed:     r.uvarint(),
		SummaryErrors:   r.uvarint(),
	}
	if r.bool() {
		st.Transport = &TransportStatus{
			Dials:     r.uvarint(),
			Reuses:    r.uvarint(),
			InFlight:  r.uvarint(),
			Calls:     r.uvarint(),
			Errors:    r.uvarint(),
			Retries:   r.uvarint(),
			BytesSent: r.uvarint(),
			BytesRecv: r.uvarint(),
			P50Micros: r.uvarint(),
			P99Micros: r.uvarint(),
		}
	}
	if r.ver >= 3 {
		st.SummaryRebuildsSkipped = r.uvarint()
		st.ReportsSuppressed = r.uvarint()
		st.ReplicaPushDelta = r.uvarint()
		st.ReplicaPushFull = r.uvarint()
		st.AntiEntropyRounds = r.uvarint()
	}
	return st
}

// --- Summaries ---

// appendSummary writes a SummaryDTO: header fields, then histograms as raw
// little-endian uint32 bucket arrays, value sets as sorted (value, count)
// pairs, and Bloom filters as raw little-endian uint64 bitsets. Raw arrays
// beat per-element varints here: buckets and bitset words are dense and
// uniformly sized, so the copy is one memmove each way. Version-6 payloads
// append the Mode byte and resolution plan after the Bloom section; any
// nonzero Mode forces the enclosing message to version 6 (encodeVersion).
func appendSummary(b []byte, s *SummaryDTO, ver byte) []byte {
	b = appendString(b, s.Origin)
	b = appendUvarint(b, s.Version)
	b = appendUvarint(b, s.Records)
	b = appendVarint(b, int64(s.Buckets))
	b = appendF64(b, s.Min)
	b = appendF64(b, s.Max)

	b = appendUvarint(b, uint64(len(s.Hists)))
	for i := range s.Hists {
		h := &s.Hists[i]
		b = appendVarint(b, int64(h.Attr))
		b = appendUvarint(b, h.Total)
		b = appendUvarint(b, uint64(len(h.Counts)))
		for _, c := range h.Counts {
			b = binary.LittleEndian.AppendUint32(b, c)
		}
	}

	b = appendUvarint(b, uint64(len(s.Sets)))
	for i := range s.Sets {
		vs := &s.Sets[i]
		b = appendVarint(b, int64(vs.Attr))
		b = appendUvarint(b, uint64(len(vs.Counts)))
		keys := make([]string, 0, len(vs.Counts))
		for k := range vs.Counts {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic bytes for identical sets
		for _, k := range keys {
			b = appendString(b, k)
			b = appendUvarint(b, uint64(vs.Counts[k]))
		}
	}

	b = appendUvarint(b, uint64(len(s.Blooms)))
	for i := range s.Blooms {
		bl := &s.Blooms[i]
		b = appendVarint(b, int64(bl.Attr))
		b = appendUvarint(b, uint64(bl.NumBit))
		b = appendUvarint(b, uint64(bl.Hashes))
		b = appendUvarint(b, bl.N)
		b = appendUvarint(b, uint64(len(bl.Bits)))
		for _, w := range bl.Bits {
			b = binary.LittleEndian.AppendUint64(b, w)
		}
	}
	// v6: summary mode + resolution plan, appended per the compatibility
	// rule.
	if ver >= 6 {
		b = append(b, s.Mode)
		b = appendUvarint(b, uint64(len(s.Plan)))
		for i := range s.Plan {
			p := &s.Plan[i]
			b = appendVarint(b, int64(p.Attr))
			b = appendVarint(b, int64(p.Buckets))
			b = appendVarint(b, int64(p.BloomBits))
			b = appendVarint(b, int64(p.BloomHashes))
		}
	}
	return b
}

func readSummary(r *binReader) *SummaryDTO {
	s := &SummaryDTO{
		Origin:  r.str(),
		Version: r.uvarint(),
		Records: r.uvarint(),
		Buckets: int(r.varint()),
		Min:     r.f64(),
		Max:     r.f64(),
	}

	nh := r.count(3)
	if nh > 0 {
		s.Hists = make([]HistDTO, 0, nh)
	}
	for i := 0; i < nh && r.err == nil; i++ {
		h := HistDTO{Attr: int(r.varint()), Total: r.uvarint()}
		nc := r.count(4)
		if nc > 0 {
			h.Counts = make([]uint32, nc)
			for j := range h.Counts {
				if r.remaining() < 4 {
					r.fail("truncated histogram counts")
					break
				}
				h.Counts[j] = binary.LittleEndian.Uint32(r.b[r.off:])
				r.off += 4
			}
		}
		s.Hists = append(s.Hists, h)
	}

	ns := r.count(2)
	if ns > 0 {
		s.Sets = make([]SetDTO, 0, ns)
	}
	for i := 0; i < ns && r.err == nil; i++ {
		vs := SetDTO{Attr: int(r.varint())}
		nv := r.count(2)
		vs.Counts = make(map[string]uint32, nv)
		for j := 0; j < nv && r.err == nil; j++ {
			k := r.str()
			vs.Counts[k] = uint32(r.uvarint())
		}
		s.Sets = append(s.Sets, vs)
	}

	nb := r.count(5)
	if nb > 0 {
		s.Blooms = make([]BloomDTO, 0, nb)
	}
	for i := 0; i < nb && r.err == nil; i++ {
		bl := BloomDTO{
			Attr:   int(r.varint()),
			NumBit: uint32(r.uvarint()),
			Hashes: uint32(r.uvarint()),
			N:      r.uvarint(),
		}
		nw := r.count(8)
		if nw > 0 {
			bl.Bits = make([]uint64, nw)
			for j := range bl.Bits {
				if r.remaining() < 8 {
					r.fail("truncated bloom bits")
					break
				}
				bl.Bits[j] = binary.LittleEndian.Uint64(r.b[r.off:])
				r.off += 8
			}
		}
		s.Blooms = append(s.Blooms, bl)
	}
	if r.ver >= 6 {
		s.Mode = r.u8()
		np := r.count(4)
		if np > 0 {
			s.Plan = make([]AttrPlanDTO, 0, np)
		}
		for i := 0; i < np && r.err == nil; i++ {
			s.Plan = append(s.Plan, AttrPlanDTO{
				Attr:        int(r.varint()),
				Buckets:     int(r.varint()),
				BloomBits:   int(r.varint()),
				BloomHashes: int(r.varint()),
			})
		}
	}
	return s
}
