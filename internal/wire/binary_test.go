package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"time"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

// sampleSummaryDTO builds a realistic summary DTO (histogram + value set)
// for codec tests and benchmarks.
func sampleSummaryDTO(tb testing.TB, buckets, recs int) *SummaryDTO {
	tb.Helper()
	schema := testSchema()
	cfg := summary.DefaultConfig()
	cfg.Buckets = buckets
	sum := summary.MustNew(schema, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < recs; i++ {
		r := record.New(schema, strconv.Itoa(i), "owner")
		r.SetNum(0, rng.Float64())
		r.SetStr(1, []string{"linux", "bsd", "plan9"}[rng.Intn(3)])
		sum.AddRecord(r)
	}
	sum.Origin = "bench"
	sum.Version = 9
	return FromSummary(sum)
}

// sampleMessages returns one representative message per wire kind,
// exercising every payload field the codec must carry.
func sampleMessages(tb testing.TB) []*Message {
	tb.Helper()
	dto := sampleSummaryDTO(tb, 40, 30)
	bloomed := func() *SummaryDTO {
		schema := testSchema()
		cfg := summary.DefaultConfig()
		cfg.Buckets = 16
		cfg.Categorical = summary.UseBloom
		cfg.BloomBits = 128
		cfg.BloomHashes = 3
		sum := summary.MustNew(schema, cfg)
		r := record.New(schema, "r", "o")
		r.SetNum(0, 0.5)
		r.SetStr(1, "linux")
		sum.AddRecord(r)
		return FromSummary(sum)
	}()
	alt := []RedirectInfo{{ID: "alt1", Addr: "a1", Records: 3}, {ID: "alt2", Addr: "a2"}}
	return []*Message{
		{Kind: KindJoin, From: "n1", Addr: "addr1", Join: &Join{ID: "n1", Addr: "addr1"}},
		{Kind: KindJoinReply, From: "n2", JoinReply: &JoinReply{
			Accepted: true, ParentID: "n2", ParentAddr: "addr2",
			Children: []ChildInfo{{ID: "c", Addr: "ca", Depth: 2, Descendants: 5}},
		}},
		{Kind: KindSummaryReport, From: "n3", Addr: "addr3", Report: &SummaryReport{
			Summary: dto, Depth: 3, Descendants: 9,
			Children: []RedirectInfo{{ID: "k", Addr: "ka", Records: 11, Alternates: alt}},
			Version:  77,
		}},
		// Version-only heartbeat report (v3): summary omitted, version set.
		{Kind: KindSummaryReport, From: "n3b", Report: &SummaryReport{
			Depth: 3, Descendants: 9, Version: 78,
			Children: []RedirectInfo{{ID: "k", Addr: "ka", Records: 11}},
		}},
		{Kind: KindReplicaPush, From: "n4", Replica: &ReplicaPush{
			OriginID: "o", OriginAddr: "oa", Branch: dto, Local: bloomed,
			Ancestor: true, Level: 2, Fallbacks: alt, Version: 88,
		}},
		{Kind: KindReplicaBatch, From: "n5", Batch: &ReplicaBatch{Pushes: []*ReplicaPush{
			{OriginID: "p1", OriginAddr: "pa1", Branch: dto, Level: 1},
			{OriginID: "p2", OriginAddr: "pa2", Branch: bloomed, Level: 3, Fallbacks: alt},
			// Version-only TTL refresh entry (v3): no summaries at all.
			{OriginID: "p3", OriginAddr: "pa3", Level: 2, Version: 99},
		}}},
		{Kind: KindQuery, From: "cli", Query: &QueryDTO{
			ID: "q1", Requester: "alice", Start: true, Scope: -1, Budget: 750 * time.Millisecond,
			Preds: []query.Predicate{
				{Attr: "cpu", Op: query.Range, Lo: 0.25, Hi: math.Inf(1)},
				{Attr: "os", Op: query.Eq, Str: "linux"},
			},
			TraceID: "74ace5f00d15c0de", Trace: true, Path: []string{"root", "mid"},
		}},
		{Kind: KindQueryReply, From: "n6", QueryRep: &QueryReply{
			Records: []RecordDTO{
				{ID: "r1", Owner: "orgA", Values: []record.Value{{Num: 0.5}, {Str: "linux"}}},
				{ID: "r2", Owner: "orgB", Values: []record.Value{{Num: 0.75}, {Str: "bsd"}}},
			},
			Redirects: []RedirectInfo{{ID: "t", Addr: "ta", Records: 42, Alternates: alt}},
			Trace: &TraceInfo{
				ServerID: "n6", EvalMicros: 180, LocalRecords: 2, Children: 3, Replicas: 5,
				MatchedChildren: []string{"t"}, MatchedReplicas: []string{"rep1", "rep2"},
			},
		}},
		{Kind: KindHeartbeat, From: "n7", Heartbeat: &Heartbeat{
			RootPath: []string{"root", "mid", "n7"}, PathAddrs: []string{"ra", "ma", "na"},
		}},
		{Kind: KindHeartbeatReply, From: "n8", Heartbeat: &Heartbeat{RootPath: []string{"n8"}},
			QueryRep: &QueryReply{Redirects: []RedirectInfo{{ID: "sib", Addr: "sa"}}}},
		{Kind: KindLeave, From: "n9", Addr: "addr9"},
		{Kind: KindAck, From: "n10"},
		// Ack carrying delta-dissemination feedback (v3).
		{Kind: KindAck, From: "n10b", Ack: &AckInfo{
			HaveVersion: 42, NeedFull: true, NeedFullOrigins: []string{"o1", "o2"},
		}},
		{Kind: KindError, From: "n11", Error: "live: something broke"},
		{Kind: KindStatus, From: "mon"},
		{Kind: KindStatusReply, From: "n12", Status: &Status{
			ID: "n12", Addr: "addr12", ParentID: "n2", IsRoot: false,
			Children: 4, Replicas: 7, Owners: 2, BranchRecords: 100, LocalRecords: 25,
			RootPath: []string{"root", "n2", "n12"}, QueriesServed: 9, RedirectsIssued: 17,
			SummariesRecv: 5, QueriesShed: 1, SummaryErrors: 2,
			Transport: &TransportStatus{Dials: 1, Reuses: 8, Calls: 9, BytesSent: 1000, BytesRecv: 2000, P50Micros: 120, P99Micros: 900},
			SummaryRebuildsSkipped: 30, ReportsSuppressed: 12,
			ReplicaPushDelta: 40, ReplicaPushFull: 6, AntiEntropyRounds: 3,
		}},
	}
}

// TestBinaryRoundTripAllKinds checks every message kind survives the
// binary codec exactly, and that both codecs decode to the same message.
func TestBinaryRoundTripAllKinds(t *testing.T) {
	for _, msg := range sampleMessages(t) {
		data, err := Encode(msg)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if !IsBinary(data) {
			t.Fatalf("kind %d: Encode did not produce the binary codec", msg.Kind)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Fatalf("kind %d changed across the binary codec:\nsent %+v\ngot  %+v", msg.Kind, msg, got)
		}

		gobData, err := EncodeGob(msg)
		if err != nil {
			t.Fatalf("kind %d gob: %v", msg.Kind, err)
		}
		if IsBinary(gobData) {
			t.Fatalf("kind %d: gob payload sniffed as binary", msg.Kind)
		}
		viaGob, err := Decode(gobData)
		if err != nil {
			t.Fatalf("kind %d gob decode: %v", msg.Kind, err)
		}
		// Gob drops empty-vs-nil distinctions; compare through a second
		// binary trip so both sides are normalized the same way.
		a, _ := Encode(got)
		b, _ := Encode(viaGob)
		if !bytes.Equal(a, b) {
			t.Fatalf("kind %d: gob and binary decode disagree:\nbinary %+v\ngob    %+v", msg.Kind, got, viaGob)
		}
	}
}

// TestBinaryDeterministic checks identical messages encode to identical
// bytes (value-set maps are sorted), so payloads are cache- and
// diff-friendly.
func TestBinaryDeterministic(t *testing.T) {
	msg := &Message{Kind: KindSummaryReport, From: "x", Report: &SummaryReport{Summary: sampleSummaryDTO(t, 30, 50)}}
	a, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("binary encoding is not deterministic")
	}
}

// encodeV1 hand-builds a version-1 binary payload — the envelope plus a
// query or query-reply payload exactly as the v1 encoder wrote them,
// without the v2 trace fields — so the compat test does not depend on the
// current encoder being able to write old versions.
func encodeV1(kind Kind, from string, q *QueryDTO, qr *QueryReply) []byte {
	b := []byte{binMagic, 1, byte(kind)}
	b = appendString(b, from)
	b = appendString(b, "") // Addr
	b = appendString(b, "") // Error
	var bits uint64
	if q != nil {
		bits |= hasQuery
	}
	if qr != nil {
		bits |= hasQueryRep
	}
	b = appendUvarint(b, bits)
	if q != nil {
		b = appendString(b, q.ID)
		b = appendString(b, q.Requester)
		b = appendBool(b, q.Start)
		b = appendVarint(b, int64(q.Scope))
		b = appendVarint(b, int64(q.Budget))
		b = appendUvarint(b, uint64(len(q.Preds)))
		for i := range q.Preds {
			p := &q.Preds[i]
			b = appendString(b, p.Attr)
			b = append(b, byte(p.Op))
			b = appendF64(b, p.Lo)
			b = appendF64(b, p.Hi)
			b = appendString(b, p.Str)
		}
	}
	if qr != nil {
		b = appendUvarint(b, uint64(len(qr.Records)))
		for i := range qr.Records {
			rec := &qr.Records[i]
			b = appendString(b, rec.ID)
			b = appendString(b, rec.Owner)
			b = appendUvarint(b, uint64(len(rec.Values)))
			for j := range rec.Values {
				b = appendF64(b, rec.Values[j].Num)
				b = appendString(b, rec.Values[j].Str)
			}
		}
		b = appendRedirects(b, qr.Redirects)
	}
	return b
}

// TestBinaryV1Compat checks the v2 decoder still accepts version-1
// payloads — the appended-fields compatibility rule in action: trace
// fields simply decode to their zero values.
func TestBinaryV1Compat(t *testing.T) {
	q := &QueryDTO{
		ID: "q1", Requester: "alice", Start: true, Scope: -1, Budget: time.Second,
		Preds: []query.Predicate{{Attr: "os", Op: query.Eq, Str: "linux"}},
	}
	got, err := Decode(encodeV1(KindQuery, "cli", q, nil))
	if err != nil {
		t.Fatalf("v1 query: %v", err)
	}
	if !reflect.DeepEqual(got.Query, q) {
		t.Fatalf("v1 query decoded wrong:\nwant %+v\ngot  %+v", q, got.Query)
	}
	if got.Query.Trace || got.Query.TraceID != "" || got.Query.Path != nil {
		t.Fatalf("v1 query grew trace fields: %+v", got.Query)
	}

	qr := &QueryReply{
		Records:   []RecordDTO{{ID: "r1", Owner: "o", Values: []record.Value{{Num: 0.5, Str: "x"}}}},
		Redirects: []RedirectInfo{{ID: "t", Addr: "ta", Records: 7}},
	}
	got, err = Decode(encodeV1(KindQueryReply, "srv", nil, qr))
	if err != nil {
		t.Fatalf("v1 query reply: %v", err)
	}
	if !reflect.DeepEqual(got.QueryRep, qr) {
		t.Fatalf("v1 query reply decoded wrong:\nwant %+v\ngot  %+v", qr, got.QueryRep)
	}
	if got.QueryRep.Trace != nil {
		t.Fatalf("v1 query reply grew a trace: %+v", got.QueryRep.Trace)
	}

	// A v1 payload with v2 trailing bytes must be rejected (no optional
	// suffix within one version).
	withTail := append(encodeV1(KindQuery, "cli", q, nil), 0)
	if _, err := Decode(withTail); err == nil {
		t.Fatal("v1 payload with trailing bytes must fail")
	}
}

// TestBinaryRejectsCorruptInput feeds the decoder truncations and
// mutations of every valid message: each must error (or decode cleanly,
// for mutations that happen to stay well-formed) — never panic.
func TestBinaryRejectsCorruptInput(t *testing.T) {
	for _, msg := range sampleMessages(t) {
		data, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		// Every truncation must fail: the codec has no optional suffix.
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Fatalf("kind %d: truncation at %d/%d decoded cleanly", msg.Kind, cut, len(data))
			}
		}
		// Single-byte mutations must not panic (they may still decode).
		for i := 0; i < len(data); i++ {
			mutated := append([]byte(nil), data...)
			mutated[i] ^= 0xff
			_, _ = Decode(mutated)
		}
	}
	// Unknown codec version.
	if _, err := Decode([]byte{binMagic, 99}); err == nil {
		t.Fatal("unknown binary version must fail")
	}
	// Trailing garbage after a valid message.
	data, _ := Encode(&Message{Kind: KindAck, From: "a"})
	if _, err := Decode(append(data, 0x00)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	// A length prefix far beyond the buffer must error, not allocate.
	huge := []byte{binMagic, binVersion, byte(KindAck)}
	huge = appendUvarint(huge, 1<<40) // From-string "length"
	if _, err := Decode(huge); err == nil {
		t.Fatal("oversized length prefix must fail")
	}
}

// TestBinaryRedirectDepthBound checks pathological alternate nesting is
// rejected instead of recursing without bound.
func TestBinaryRedirectDepthBound(t *testing.T) {
	ri := RedirectInfo{ID: "x", Addr: "y"}
	for i := 0; i < 2*maxRedirectDepth; i++ {
		ri = RedirectInfo{ID: "x", Addr: "y", Alternates: []RedirectInfo{ri}}
	}
	msg := &Message{Kind: KindQueryReply, QueryRep: &QueryReply{Redirects: []RedirectInfo{ri}}}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("over-deep alternate nesting must be rejected")
	}
}

// FuzzDecode fuzzes the sniffing decoder: arbitrary input must never
// panic, and any input that decodes must reach a fixed point after one
// re-encode (decode(encode(decode(x))) == decode(x)).
func FuzzDecode(f *testing.F) {
	for _, msg := range sampleMessages(f) {
		data, err := Encode(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		gobData, err := EncodeGob(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(gobData)
	}
	f.Add([]byte{})
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, binVersion})
	// Version-1 payloads: the decoder must keep accepting them.
	f.Add(encodeV1(KindQuery, "cli", &QueryDTO{ID: "q", Preds: []query.Predicate{{Attr: "a", Op: query.Eq, Str: "v"}}}, nil))
	f.Add(encodeV1(KindQueryReply, "srv", nil, &QueryReply{Redirects: []RedirectInfo{{ID: "t", Addr: "ta"}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		re2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("codec has no fixed point:\nfirst  %x\nsecond %x", re, re2)
		}
	})
}

// BenchmarkCodec compares the binary codec against the gob baseline on the
// hot replica-push shape (a 200-bucket summary with value sets), measuring
// Encode, Decode, and the full round trip. The binary encode path uses the
// pooled buffer exactly as the transports do.
func BenchmarkCodec(b *testing.B) {
	msg := &Message{
		Kind: KindReplicaPush,
		From: "srv001", Addr: "10.0.0.1:7000",
		Replica: &ReplicaPush{
			OriginID: "srv002", OriginAddr: "10.0.0.2:7000",
			Branch: sampleSummaryDTO(b, 200, 100), Level: 1,
			Fallbacks: []RedirectInfo{{ID: "srv003", Addr: "10.0.0.3:7000", Records: 50}},
		},
	}
	binData, err := Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	gobData, err := EncodeGob(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("payload bytes: binary=%d gob=%d", len(binData), len(gobData))

	b.Run("encode/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EncodeGob(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp := GetBuf()
			data, err := AppendEncode((*bp)[:0], msg)
			if err != nil {
				b.Fatal(err)
			}
			*bp = data
			PutBuf(bp)
		}
	})
	b.Run("decode/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(gobData); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(binData); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("roundtrip/gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := EncodeGob(msg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("roundtrip/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bp := GetBuf()
			data, err := AppendEncode((*bp)[:0], msg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Decode(data); err != nil {
				b.Fatal(err)
			}
			*bp = data
			PutBuf(bp)
		}
	})
}
