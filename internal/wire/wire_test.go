package wire

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

func testSchema() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "cpu", Kind: record.Numeric},
		{Name: "os", Kind: record.Categorical},
	})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msg := &Message{
		Kind: KindJoin,
		From: "a",
		Addr: "addr-a",
		Join: &Join{ID: "a", Addr: "addr-a"},
	}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindJoin || got.From != "a" || got.Join == nil || got.Join.Addr != "addr-a" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage must fail to decode")
	}
}

func TestSummaryDTORoundTrip(t *testing.T) {
	schema := testSchema()
	cfg := summary.DefaultConfig()
	cfg.Buckets = 50
	sum := summary.MustNew(schema, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		r := record.New(schema, strconv.Itoa(i), "o")
		r.SetNum(0, rng.Float64())
		r.SetStr(1, []string{"linux", "bsd"}[rng.Intn(2)])
		sum.AddRecord(r)
	}
	sum.Origin = "server-x"
	sum.Version = 7

	dto := FromSummary(sum)
	data, err := Encode(&Message{Kind: KindReplicaPush, Replica: &ReplicaPush{OriginID: "server-x", Branch: dto}})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Replica.Branch.ToSummary(schema)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(back) {
		t.Fatal("summary changed across the wire")
	}
	if back.Origin != "server-x" || back.Version != 7 {
		t.Fatal("metadata lost across the wire")
	}
}

func TestSummaryDTOBloomRoundTrip(t *testing.T) {
	schema := testSchema()
	cfg := summary.DefaultConfig()
	cfg.Buckets = 20
	cfg.Categorical = summary.UseBloom
	cfg.BloomBits = 256
	cfg.BloomHashes = 3
	sum := summary.MustNew(schema, cfg)
	r := record.New(schema, "r", "o")
	r.SetNum(0, 0.5)
	r.SetStr(1, "linux")
	sum.AddRecord(r)

	back, err := FromSummary(sum).ToSummary(schema)
	if err != nil {
		t.Fatal(err)
	}
	if !back.MatchEq(1, "linux") {
		t.Fatal("bloom content lost across the wire")
	}
	if !sum.Equal(back) {
		t.Fatal("bloom summary changed across the wire")
	}
}

func TestSummaryDTONil(t *testing.T) {
	if FromSummary(nil) != nil {
		t.Fatal("nil summary must map to nil DTO")
	}
	var dto *SummaryDTO
	s, err := dto.ToSummary(testSchema())
	if err != nil || s != nil {
		t.Fatal("nil DTO must map to nil summary")
	}
}

func TestSummaryDTOValidation(t *testing.T) {
	schema := testSchema()
	dto := &SummaryDTO{Buckets: 10, Min: 0, Max: 1, Hists: []HistDTO{{Attr: 5, Counts: make([]uint32, 10)}}}
	if _, err := dto.ToSummary(schema); err == nil {
		t.Fatal("histogram for invalid attr must fail")
	}
	dto = &SummaryDTO{Buckets: 10, Min: 0, Max: 1, Hists: []HistDTO{{Attr: 0, Counts: make([]uint32, 99)}}}
	if _, err := dto.ToSummary(schema); err == nil {
		t.Fatal("bucket count mismatch must fail")
	}
	dto = &SummaryDTO{Buckets: 10, Min: 0, Max: 1, Sets: []SetDTO{{Attr: 0}}}
	if _, err := dto.ToSummary(schema); err == nil {
		t.Fatal("value set on numeric attr must fail")
	}
}

func TestQueryDTORoundTrip(t *testing.T) {
	q := query.New("q1", query.NewRange("cpu", 0.2, 0.8), query.NewEq("os", "linux"))
	q.Requester = "alice"
	dto := FromQuery(q, true)
	data, err := Encode(&Message{Kind: KindQuery, Query: dto})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	back := decoded.Query.ToQuery()
	if back.ID != "q1" || back.Requester != "alice" || back.Dims() != 2 {
		t.Fatalf("query changed: %+v", back)
	}
	if !decoded.Query.Start {
		t.Fatal("start flag lost")
	}
	if err := back.Bind(testSchema()); err != nil {
		t.Fatal(err)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	schema := testSchema()
	r := record.New(schema, "r1", "orgA")
	r.SetNum(0, 0.25)
	r.SetStr(1, "linux")
	dtos := FromRecords([]*record.Record{r})
	back := ToRecords(dtos)
	if len(back) != 1 || back[0].ID != "r1" || back[0].Num(0) != 0.25 || back[0].Str(1) != "linux" {
		t.Fatalf("records changed: %+v", back)
	}
}

func TestRemoteError(t *testing.T) {
	em := ErrorMessage("srv", errors.New("boom"))
	if err := RemoteError(em); err == nil {
		t.Fatal("error message must produce an error")
	}
	if err := RemoteError(&Message{Kind: KindAck}); err != nil {
		t.Fatal("non-error message must not produce an error")
	}
	if err := RemoteError(nil); err == nil {
		t.Fatal("nil message must produce an error")
	}
}

// TestFailoverFieldsRoundTrip covers the deadline/failover additions: the
// query's Budget, redirects with record estimates and alternates, child
// lists on summary reports, and fallback holders on replica pushes all
// survive the gob trip.
func TestFailoverFieldsRoundTrip(t *testing.T) {
	q := query.New("q2", query.NewRange("cpu", 0, 1))
	dto := FromQuery(q, true)
	dto.Budget = 750 * time.Millisecond
	msg := &Message{
		Kind:  KindQueryReply,
		Query: dto,
		QueryRep: &QueryReply{
			Redirects: []RedirectInfo{{
				ID: "b", Addr: "addr-b", Records: 42,
				Alternates: []RedirectInfo{
					{ID: "b1", Addr: "addr-b1", Records: 20},
					{ID: "b2", Addr: "addr-b2", Records: 22},
				},
			}},
		},
		Report: &SummaryReport{
			Children: []RedirectInfo{{ID: "c", Addr: "addr-c", Records: 7}},
		},
		Replica: &ReplicaPush{
			OriginID: "b", OriginAddr: "addr-b",
			Fallbacks: []RedirectInfo{{ID: "b1", Addr: "addr-b1", Records: 20}},
		},
		Status: &Status{QueriesShed: 3},
	}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Query.Budget != 750*time.Millisecond {
		t.Fatalf("budget changed: %v", got.Query.Budget)
	}
	rd := got.QueryRep.Redirects[0]
	if rd.Records != 42 || len(rd.Alternates) != 2 || rd.Alternates[1].Addr != "addr-b2" {
		t.Fatalf("redirect alternates changed: %+v", rd)
	}
	if len(got.Report.Children) != 1 || got.Report.Children[0].Records != 7 {
		t.Fatalf("report children changed: %+v", got.Report.Children)
	}
	if len(got.Replica.Fallbacks) != 1 || got.Replica.Fallbacks[0].ID != "b1" {
		t.Fatalf("replica fallbacks changed: %+v", got.Replica.Fallbacks)
	}
	if got.Status.QueriesShed != 3 {
		t.Fatalf("queries-shed count changed: %d", got.Status.QueriesShed)
	}
}
