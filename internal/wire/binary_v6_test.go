package wire

import (
	"reflect"
	"testing"
)

// v6SummaryDTO builds a summary DTO exercising every v6 field: adaptive
// per-attribute geometry overrides and condensed prefix wildcards in the
// value sets.
func v6SummaryDTO() *SummaryDTO {
	return &SummaryDTO{
		Origin: "srv1", Version: 41, Records: 120,
		Buckets: 32, Min: 0, Max: 1,
		Hists: []HistDTO{{Attr: 0, Total: 120, Counts: []uint32{60, 60}}},
		Sets: []SetDTO{{Attr: 1, Counts: map[string]uint32{
			"s1.m2.*": 80, "s3.v9": 40,
		}}},
		Blooms: []BloomDTO{{Attr: 2, NumBit: 128, Hashes: 3, N: 120, Bits: []uint64{0xdead, 0xbeef}}},
		Mode:   SummaryModeAdaptive | SummaryModeCondensed,
		Plan: []AttrPlanDTO{
			{Attr: 0, Buckets: 128},
			{Attr: 2, BloomBits: 512, BloomHashes: 5},
		},
	}
}

// TestEncodeVersionV6 pins the adaptive-summary compatibility contract: the
// codec writes version 6 only when a message actually carries a v6 feature
// — the Adaptive capability flag or a summary with nonzero Mode — so
// traffic to unproven peers stays decodable by their generation.
func TestEncodeVersionV6(t *testing.T) {
	plain := &SummaryDTO{Origin: "s", Version: 3, Buckets: 8, Max: 1}
	cases := []struct {
		m    *Message
		want byte
	}{
		{&Message{Kind: KindAck, From: "a", Adaptive: true}, 6},
		{&Message{Kind: KindSummaryReport, From: "s", Report: &SummaryReport{Version: 3, Summary: v6SummaryDTO()}}, 6},
		{&Message{Kind: KindReplicaPush, From: "s", Replica: &ReplicaPush{OriginID: "o", Version: 3, Branch: v6SummaryDTO()}}, 6},
		{&Message{Kind: KindReplicaBatch, From: "s", Batch: &ReplicaBatch{Pushes: []*ReplicaPush{{OriginID: "o", Version: 3, Local: v6SummaryDTO()}}}}, 6},
		// Mode 0 summaries ride the old wire: no v6 byte appears.
		{&Message{Kind: KindSummaryReport, From: "s", Report: &SummaryReport{Version: 3, Summary: plain}}, 3},
		{&Message{Kind: KindReplicaPush, From: "s", Replica: &ReplicaPush{OriginID: "o", Version: 3, Branch: plain}}, 3},
		{&Message{Kind: KindAck, From: "a"}, 2},
		// Adaptive coexists with the v4 epoch stamp and v5 reply fields.
		{&Message{Kind: KindAck, From: "a", Epoch: 7, Adaptive: true}, 6},
	}
	for i, c := range cases {
		data, err := Encode(c.m)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if data[1] != c.want {
			t.Fatalf("case %d encoded as version %d, want %d", i, data[1], c.want)
		}
	}
}

// TestBinaryV6RoundTrip checks the v6 shapes survive the codec exactly:
// the Adaptive flag, summary Mode bits, per-attribute plans, and condensed
// wildcard value sets.
func TestBinaryV6RoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: KindAck, From: "child", Adaptive: true},
		{Kind: KindAck, From: "child", Epoch: 9, Adaptive: true,
			Ack: &AckInfo{NeedFullOrigins: []string{"o1"}}},
		{Kind: KindSummaryReport, From: "srv", Adaptive: true,
			Report: &SummaryReport{Version: 41, Depth: 2, Summary: v6SummaryDTO()}},
		{Kind: KindReplicaBatch, From: "parent", Adaptive: true, Batch: &ReplicaBatch{
			Pushes: []*ReplicaPush{
				{OriginID: "sib", OriginAddr: "sa", Version: 41, Level: 1, Branch: v6SummaryDTO()},
				{OriginID: "anc", OriginAddr: "aa", Version: 7, Level: 2},
			},
		}},
	}
	for _, msg := range msgs {
		data, err := Encode(msg)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if data[1] != 6 {
			t.Fatalf("kind %d encoded as version %d, want 6", msg.Kind, data[1])
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("kind %d: %v", msg.Kind, err)
		}
		if !reflect.DeepEqual(msg, got) {
			t.Fatalf("kind %d round trip mismatch:\nsent %+v\ngot  %+v", msg.Kind, msg, got)
		}
	}
}

// TestBinaryV6LegacyCannotDecode pins the interop rule the live layer's
// capability negotiation rests on: a v6 payload is NOT a v5 payload with a
// tail a legacy peer could skip. Re-labelling v6 bytes as version 5 leaves
// the Mode byte and plan dangling, and the strict decoder rejects them as
// trailing garbage — which is why the live layer only sets v6 fields on
// batch acks (ignorable end-to-end) or toward proven-v6 peers.
func TestBinaryV6LegacyCannotDecode(t *testing.T) {
	msg := &Message{Kind: KindSummaryReport, From: "srv",
		Report: &SummaryReport{Version: 41, Summary: v6SummaryDTO()}}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if data[1] != 6 {
		t.Fatalf("encoded as version %d, want 6", data[1])
	}
	legacy := append([]byte(nil), data...)
	legacy[1] = 5
	if _, err := Decode(legacy); err == nil {
		t.Fatal("v6 payload re-labelled v5 must fail to decode, not half-parse")
	}
}

// TestBinaryV6Truncation feeds the decoder every prefix of a valid v6
// message: none may panic, none may succeed (the full message is the only
// valid prefix).
func TestBinaryV6Truncation(t *testing.T) {
	msg := &Message{Kind: KindReplicaPush, From: "srv", Adaptive: true,
		Replica: &ReplicaPush{OriginID: "o", OriginAddr: "oa", Version: 41, Branch: v6SummaryDTO()}}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		if _, err := Decode(data[:i]); err == nil {
			t.Fatalf("truncated prefix of %d/%d bytes decoded successfully", i, len(data))
		}
	}
}

// TestBinaryV6CorruptPlan flips bytes inside the v6 tail (mode byte and
// plan) one at a time: the decoder must never panic, and whatever decodes
// must re-encode cleanly (the fuzz fixed-point property, pinned here for
// the new section specifically).
func TestBinaryV6CorruptPlan(t *testing.T) {
	msg := &Message{Kind: KindSummaryReport, From: "srv",
		Report: &SummaryReport{Version: 41, Summary: v6SummaryDTO()}}
	data, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// The v6 tail is everything after the Bloom words; corrupting the last
	// 24 bytes covers the mode byte and the plan varints.
	start := len(data) - 24
	if start < 2 {
		start = 2
	}
	for i := start; i < len(data); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), data...)
			mut[i] ^= flip
			m, err := Decode(mut)
			if err != nil {
				continue
			}
			if _, err := Encode(m); err != nil {
				t.Fatalf("byte %d^%#x: decoded message failed to re-encode: %v", i, flip, err)
			}
		}
	}
}

// FuzzDecodeV6 seeds the decoder fuzzer with v6 shapes — adaptive flags,
// mode bits, plans, wildcard sets — and holds the same invariants as
// FuzzDecode: no panic, and a decode/encode fixed point.
func FuzzDecodeV6(f *testing.F) {
	msgs := []*Message{
		{Kind: KindAck, From: "a", Adaptive: true},
		{Kind: KindSummaryReport, From: "s", Adaptive: true,
			Report: &SummaryReport{Version: 41, Summary: v6SummaryDTO()}},
		{Kind: KindReplicaBatch, From: "p", Adaptive: true, Batch: &ReplicaBatch{
			Pushes: []*ReplicaPush{{OriginID: "o", Version: 3, Branch: v6SummaryDTO()}}}},
	}
	for _, msg := range msgs {
		data, err := Encode(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncated and version-relabelled variants steer the fuzzer at
		// the v6 tail parsing.
		f.Add(data[:len(data)-1])
		relabel := append([]byte(nil), data...)
		relabel[1] = 5
		f.Add(relabel)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		re2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if len(re) != len(re2) {
			t.Fatalf("codec has no fixed point: %d vs %d bytes", len(re), len(re2))
		}
	})
}
