package wire

import (
	"math/rand"
	"strconv"
	"testing"

	"roads/internal/record"
	"roads/internal/summary"
)

func benchSummaryDTO(b *testing.B, buckets int) *Message {
	b.Helper()
	schema := record.DefaultSchema(16)
	cfg := summary.DefaultConfig()
	cfg.Buckets = buckets
	sum := summary.MustNew(schema, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		r := record.New(schema, strconv.Itoa(i), "o")
		for j := 0; j < 16; j++ {
			r.SetNum(j, rng.Float64())
		}
		sum.AddRecord(r)
	}
	return &Message{
		Kind:    KindReplicaPush,
		From:    "bench",
		Replica: &ReplicaPush{OriginID: "bench", Branch: FromSummary(sum)},
	}
}

func BenchmarkEncodeSummary1000Buckets(b *testing.B) {
	msg := benchSummaryDTO(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkDecodeSummary1000Buckets(b *testing.B) {
	msg := benchSummaryDTO(b, 1000)
	data, err := Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummaryDTORoundTrip(b *testing.B) {
	schema := record.DefaultSchema(16)
	msg := benchSummaryDTO(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Replica.Branch.ToSummary(schema); err != nil {
			b.Fatal(err)
		}
	}
}
