// Package wire defines the messages ROADS servers exchange in the live
// prototype and the two codecs that carry them: the compact positional
// binary codec (the default — see binary.go) and the legacy gob codec,
// kept for peers that predate it. Summaries, queries and records travel
// as explicit DTOs so the wire format is independent of the in-memory
// types (which hold unexported fields and shared pointers); Decode sniffs
// the codec from the first payload byte and servers answer in the codec
// the request arrived in, so both peer generations share one listener.
//
// The package also counts its own codec activity (encodes, decodes and
// decode failures per codec) as process-wide atomics; RegisterMetrics
// exposes them as roads_wire_* series on an obs.Registry.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"roads/internal/obs"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

// Kind discriminates message types.
type Kind uint8

const (
	// KindJoin asks a server to adopt the sender as a child.
	KindJoin Kind = iota + 1
	// KindJoinReply answers a join: accepted, or redirect to children.
	KindJoinReply
	// KindSummaryReport carries a child's branch summary to its parent.
	KindSummaryReport
	// KindReplicaPush distributes branch summaries down and across the
	// hierarchy for the replication overlay.
	KindReplicaPush
	// KindQuery asks a server to evaluate a query.
	KindQuery
	// KindQueryReply returns matching records and redirect targets.
	KindQueryReply
	// KindHeartbeat is the periodic parent/child liveness exchange, also
	// carrying the sender's root path.
	KindHeartbeat
	// KindHeartbeatReply acknowledges a heartbeat.
	KindHeartbeatReply
	// KindLeave announces a graceful departure to parent and children.
	KindLeave
	// KindAck is a generic acknowledgement.
	KindAck
	// KindError carries a remote error.
	KindError
	// KindStatus requests a server's status snapshot; KindStatusReply
	// returns it.
	KindStatus
	KindStatusReply
	// KindReplicaBatch carries all of a parent's replica pushes for one
	// child in a single message — one frame instead of O(replicas) calls
	// per aggregation tick. New kinds append here so existing values stay
	// stable on the wire; peers that predate batching still understand
	// the individual KindReplicaPush form.
	KindReplicaBatch
	// KindRootProbe asks a server which root it currently follows; roots
	// exchange probes to detect a split brain after a partition heals.
	// KindRootProbeReply answers with the receiver's root view. Pre-epoch
	// peers answer both with their generic unhandled-kind error, which
	// probers treat as "not epoch-capable".
	KindRootProbe
	KindRootProbeReply
)

// Message is the envelope every exchange uses.
type Message struct {
	Kind Kind
	From string // sender server ID
	Addr string // sender's listen address

	Join      *Join
	JoinReply *JoinReply
	Report    *SummaryReport
	Replica   *ReplicaPush
	Batch     *ReplicaBatch
	Query     *QueryDTO
	QueryRep  *QueryReply
	Heartbeat *Heartbeat
	Status    *Status
	Error     string
	// Ack carries delta-dissemination feedback on KindAck replies (wire
	// v3). Its presence doubles as the capability signal: a peer that
	// attaches AckInfo understands version-only refreshes, so senders may
	// start suppressing redundant summary payloads toward it. Nil on
	// plain acks and from pre-v3 peers.
	Ack *AckInfo
	// Epoch is the sender's membership epoch (wire v4). Epochs are
	// monotonically increasing per federation: every recovery action
	// (parent failover, root election, tree merge) bumps them, and
	// receivers fence relationship messages that carry an epoch lower
	// than the one they last recorded for that relationship, so a healed
	// partition cannot resurrect a dead parent/child edge. Zero means
	// "not stamped" (pre-epoch peer or epoch disabled); a nonzero value
	// doubles as the epoch-capability signal.
	Epoch uint64
	// RootProbe carries the split-brain probe payload on
	// KindRootProbe/KindRootProbeReply messages (wire v4).
	RootProbe *RootProbe
	// Adaptive is the adaptive-summaries capability flag (wire v6). A
	// sender sets it to announce it understands adaptive summary geometry
	// (SummaryDTO Mode/Plan) and condensed value-set wildcards. Children
	// attach it to replica-batch acks (legacy senders ignore ack contents
	// they cannot decode, so the flag is a safe capability bootstrap, like
	// v3's AckInfo); parents stamp it on pushes to proven children. Only
	// after a peer has proven the capability may adaptive-geometry or
	// condensed summaries be sent to it — everyone else gets summaries
	// flattened to the uniform base geometry.
	Adaptive bool
}

// RootProbe is the split-brain detection payload (wire v4). On a
// KindRootProbe request it names the probing root; on the reply it names
// the root the receiver currently follows (its rootPath head). Two live
// roots that learn of each other this way resolve the split: the
// higher-epoch root (tie: smaller ID) wins and the loser joins it.
type RootProbe struct {
	RootID   string
	RootAddr string
}

// AckInfo is the delta-dissemination feedback piggybacked on acks.
// Receivers of summary reports and replica batches use it to tell the
// sender what they hold, so the sender can ship version-only TTL refreshes
// instead of full summaries — and to ask for full state again when a
// version-only entry referenced content they don't hold.
type AckInfo struct {
	// HaveVersion echoes the branch-summary version the acker now holds
	// for the sender (summary-report acks). Zero means none/unknown.
	HaveVersion uint64
	// NeedFull asks the sender to send its full branch summary on the
	// next report — set when a version-only report referenced a version
	// the acker doesn't hold.
	NeedFull bool
	// NeedFullOrigins lists replica origins whose version-only refresh
	// entries referenced versions the acker doesn't hold; the sender
	// downgrades those origins to full pushes on the next tick.
	NeedFullOrigins []string
}

// Status is a server's operational snapshot, for monitoring tools.
type Status struct {
	ID            string
	Addr          string
	ParentID      string
	IsRoot        bool
	Children      int
	Replicas      int
	Owners        int
	BranchRecords uint64
	LocalRecords  uint64
	RootPath      []string
	// QueriesServed and RedirectsIssued count since startup; the root-
	// bottleneck story is visible by comparing them across servers.
	QueriesServed   uint64
	RedirectsIssued uint64
	SummariesRecv   uint64
	// QueriesShed counts queries abandoned because their deadline budget
	// ran out mid-evaluation (overload/deadline shedding).
	QueriesShed uint64
	// SummaryErrors counts summary-refresh failures (local FromRecords or
	// an owner's ExportSummary): the server keeps serving its previous
	// summaries, so a non-zero, growing value means the advertised state
	// is going stale even though queries still succeed.
	SummaryErrors uint64
	// Transport carries the server's transport counters when its
	// transport exposes them (pooled TCP and the in-process Chan both do).
	Transport *TransportStatus

	// Change-driven dissemination counters (wire v3; zero from older
	// peers). SummaryRebuildsSkipped counts refresh ticks that reused
	// cached summaries because nothing mutated; ReportsSuppressed counts
	// version-only reports sent in place of full branch summaries;
	// ReplicaPushDelta/ReplicaPushFull split pushed replica entries by
	// form; AntiEntropyRounds counts the periodic forced-full rounds.
	SummaryRebuildsSkipped uint64
	ReportsSuppressed      uint64
	ReplicaPushDelta       uint64
	ReplicaPushFull        uint64
	AntiEntropyRounds      uint64
}

// TransportStatus is the wire form of a transport's counter snapshot:
// connection pooling effectiveness (dials vs reuses), traffic volume, and
// call-latency percentiles derived from the transport's histogram.
type TransportStatus struct {
	Dials     uint64
	Reuses    uint64
	InFlight  uint64
	Calls     uint64
	Errors    uint64
	Retries   uint64
	BytesSent uint64
	BytesRecv uint64
	P50Micros uint64
	P99Micros uint64
}

// SummaryReport carries a child's branch summary to its parent, with the
// branch shape piggybacked so the parent can answer join redirects with
// accurate depth/descendant counts.
type SummaryReport struct {
	Summary     *SummaryDTO
	Depth       int
	Descendants int
	// Children lists the reporter's own children (with their branch record
	// counts). The parent stores them as failover alternates: should the
	// reporter die mid-query, its children can still route the query into
	// the reporter's subtree.
	Children []RedirectInfo
	// Version is the reporter's branch-summary content version (wire v3).
	// A report with Version set and Summary nil is a version-only
	// heartbeat report: the parent already confirmed holding this version,
	// so the report refreshes liveness and branch-shape metadata without
	// retransmitting or re-decoding the summary. Zero from pre-v3 peers.
	Version uint64
}

// Join asks to become a child.
type Join struct {
	ID   string
	Addr string
}

// ChildInfo describes one child branch for join redirects.
type ChildInfo struct {
	ID          string
	Addr        string
	Depth       int
	Descendants int
}

// JoinReply either accepts the joiner or redirects it to children.
type JoinReply struct {
	Accepted bool
	// Parent identifies the accepting server.
	ParentID   string
	ParentAddr string
	// Children to try next when not accepted, least-depth first.
	Children []ChildInfo
}

// Heartbeat carries liveness plus the sender's root path (IDs from the
// root down), which children use for rejoin and loop avoidance.
type Heartbeat struct {
	RootPath  []string
	PathAddrs []string
}

// ReplicaPush distributes one origin's branch summary (and optionally the
// origin's local-data summary when the origin is an ancestor of the
// receiver).
type ReplicaPush struct {
	OriginID   string
	OriginAddr string
	Branch     *SummaryDTO
	// Local is the origin's local-data summary; only set on ancestor
	// pushes (see core: ancestorLocal).
	Local *SummaryDTO
	// Ancestor marks pushes whose origin is an ancestor of the receiver.
	Ancestor bool
	// Level is the origin's distance from the receiver in hierarchy
	// levels: 1 for the receiver's own siblings and parent, 2 for the
	// grandparent and its siblings, and so on. Scoped queries use it to
	// bound their search radius.
	Level int
	// Fallbacks lists the origin's children: servers that can route a
	// query into the origin's branch when the origin itself is
	// unreachable. Propagated into redirect Alternates.
	Fallbacks []RedirectInfo
	// Version is the origin's branch-summary content version (wire v3).
	// A push with Version set and Branch nil is a version-only TTL
	// refresh: the receiver confirmed holding this version, so the entry
	// renews the replica's soft-state lifetime without retransmitting the
	// summary. On full pushes a non-zero Version additionally signals the
	// sender speaks wire v3. Zero from pre-v3 peers.
	Version uint64
}

// ReplicaBatch bundles every replica push a parent owes one child into a
// single message, so an aggregation tick costs one call per child instead
// of one per (child × replica). Receivers apply the whole batch under a
// single lock acquisition, making the overlay update atomic.
type ReplicaBatch struct {
	Pushes []*ReplicaPush
}

// MaxTracePath caps QueryDTO.Path: a trace records at most this many
// routing steps, so a pathological redirect chain cannot grow the hop log
// without bound. 32 covers a hierarchy far deeper than the paper's
// evaluation (depth ≤ 5) ever produces.
const MaxTracePath = 32

// Priority classes a query may carry (wire v5). The zero value is the
// default class, so pre-v5 peers — which never encode the field — are
// indistinguishable from normal-priority requesters.
const (
	// PriorityNormal is the default class: admitted while the
	// requester's token bucket has budget, shed to a coarse answer under
	// overload.
	PriorityNormal uint8 = 0
	// PriorityLow marks background/batch traffic: first to be shed to
	// coarse answers when a server is overloaded.
	PriorityLow uint8 = 1
	// PriorityHigh marks interactive/operator traffic: never shed by
	// admission control (deadline shedding still applies).
	PriorityHigh uint8 = 2
)

// QueryDTO is the wire form of a query.
type QueryDTO struct {
	ID        string
	Requester string
	Preds     []query.Predicate
	// Start marks the first contact of a resolution: only then may the
	// receiving server use its overlay replicas for redirects.
	Start bool
	// Scope bounds the search to the branch of the start server's
	// ancestor Scope levels up (paper §III-C scope control); negative
	// means the whole hierarchy.
	Scope int
	// Budget is the remaining time the client allows for this contact
	// (relative, so clock skew between federated sites cannot cause
	// early shedding). A server that cannot finish inside the budget
	// sheds the query instead of returning an answer the client will
	// have already abandoned. Zero means no budget.
	Budget time.Duration
	// TraceID names the resolution this contact belongs to; the client
	// stamps every contact of one resolve with the same ID so hop logs
	// and server-side trace lines can be correlated across the
	// federation. Empty when tracing is off.
	TraceID string
	// Trace asks the receiving server to return its evaluation detail
	// (TraceInfo) on the reply and log the contact. Off by default: the
	// hot path pays nothing for the machinery it does not use.
	Trace bool
	// Path is the bounded hop log: the IDs of the servers this query was
	// routed through to reach the receiver, oldest first (the redirect
	// chain from the start server). Capped at MaxTracePath entries.
	Path []string
	// Priority is the requester's priority class (wire v5, see the
	// Priority* constants). Admission control never sheds PriorityHigh;
	// PriorityLow goes first. Zero (PriorityNormal) from pre-v5 peers.
	Priority uint8
	// CacheFingerprint revalidates a client-cached resolve (wire v5): the
	// fingerprint the client got with its last full answer from this
	// server. When it still matches the server's current routing state the
	// server answers NotModified instead of re-evaluating, and the client
	// reuses its cached records — a repeat query then costs one RPC and
	// zero descent. Zero means "no cached answer to revalidate".
	CacheFingerprint uint64
	// WantFingerprint asks the server to stamp its current fingerprint on
	// the reply (wire v5) so the client can cache the resolved answer and
	// revalidate it later. Off by default: pre-v5 traffic never sees the
	// field.
	WantFingerprint bool
}

// ToQuery converts to the in-memory form.
func (q *QueryDTO) ToQuery() *query.Query {
	out := query.New(q.ID, q.Preds...)
	out.Requester = q.Requester
	return out
}

// FromQuery builds the DTO with whole-hierarchy scope.
func FromQuery(q *query.Query, start bool) *QueryDTO {
	return &QueryDTO{ID: q.ID, Requester: q.Requester, Preds: q.Preds, Start: start, Scope: -1}
}

// RedirectInfo names one server the client should query next.
type RedirectInfo struct {
	ID   string
	Addr string
	// Records estimates how many records the target's region (branch or,
	// for ancestor redirects, local data) covers, from the redirecting
	// server's summaries. Clients weight coverage accounting with it.
	Records uint64
	// Alternates lists servers holding replicas of the target's branch —
	// its children, learned through summary reports and replica pushes —
	// which a client can fail over to when the target is unreachable.
	// Alternates carry no nested alternates of their own.
	Alternates []RedirectInfo
}

// RecordDTO is the wire form of a record.
type RecordDTO struct {
	ID     string
	Owner  string
	Values []record.Value
}

// QueryReply returns local matches plus redirect targets.
type QueryReply struct {
	Records   []RecordDTO
	Redirects []RedirectInfo
	// Trace carries the server's evaluation detail when the query asked
	// for it (QueryDTO.Trace); nil otherwise.
	Trace *TraceInfo
	// Coarse marks a degraded summary-only answer (wire v5): admission
	// control or budget exhaustion shed the evaluation, so the reply
	// carries no records or redirects — only CoarseEstimate. Clients must
	// not treat a coarse answer as "no matches"; it means "not evaluated,
	// roughly this many matches exist". Only sent to requesters whose
	// query carried v5 fields; pre-v5 peers still get the legacy error
	// shed.
	Coarse bool
	// CoarseEstimate is the server's summary-derived estimate of how many
	// records under its branch match the query (wire v5, set on coarse
	// answers).
	CoarseEstimate float64
	// NotModified answers a CacheFingerprint revalidation (wire v5): the
	// fingerprint still matches, the client's cached records are current,
	// and the reply intentionally carries no records or redirects.
	NotModified bool
	// Fingerprint is the server's current routing-state fingerprint
	// (wire v5), stamped when the query asked via WantFingerprint (or
	// revalidated one). It covers the branch summary version, every
	// child/replica routing dependency, the local store epoch and owner
	// generations — any change that could alter this server's answer
	// changes the fingerprint. Zero means "unavailable, don't cache".
	Fingerprint uint64
}

// TraceInfo is one server's evaluation detail for a traced query: how the
// summary-match decisions went (which child branches and overlay replicas
// matched, out of how many candidates), how many local records the server
// itself contributed, and how long the evaluation took. Together with the
// client-side hop log this reconstructs the paper's hops/messages numbers
// (Fig. 8) for one real query.
type TraceInfo struct {
	// ServerID identifies the evaluating server (redundant with the
	// enclosing Message.From, but keeps the trace self-contained once
	// detached from the envelope).
	ServerID string
	// EvalMicros is the server-side evaluation time in microseconds.
	EvalMicros uint64
	// LocalRecords is how many local matches this server returned.
	LocalRecords int
	// Children and Replicas count the redirect candidates held: child
	// branch summaries, and overlay replicas eligible for this contact
	// (replicas are only candidates on the first contact of a resolve).
	Children int
	Replicas int
	// MatchedChildren and MatchedReplicas list the candidate IDs whose
	// summaries matched the query — the positive summary-match decisions
	// that became redirects.
	MatchedChildren []string
	MatchedReplicas []string
}

// ToRecords converts wire records to in-memory records.
func ToRecords(dtos []RecordDTO) []*record.Record {
	out := make([]*record.Record, len(dtos))
	for i, d := range dtos {
		out[i] = &record.Record{ID: d.ID, Owner: d.Owner, Values: d.Values}
	}
	return out
}

// FromRecords converts in-memory records to wire form.
func FromRecords(recs []*record.Record) []RecordDTO {
	out := make([]RecordDTO, len(recs))
	for i, r := range recs {
		out[i] = RecordDTO{ID: r.ID, Owner: r.Owner, Values: r.Values}
	}
	return out
}

// Summary mode bits (wire v6). A summary with Mode 0 is uniform and
// wildcard-free — byte-identical to its v5 encoding — so adaptive features
// only force codec v6 when actually present.
const (
	// SummaryModeAdaptive marks per-attribute geometry overrides: the
	// DTO carries a resolution plan and its histograms/Blooms may differ
	// from the uniform header geometry.
	SummaryModeAdaptive uint8 = 1 << 0
	// SummaryModeCondensed marks value sets holding condensed prefix
	// wildcards ("a.b.*"), which pre-v6 peers would evaluate with false
	// negatives; senders must flatten instead of sending these to them.
	SummaryModeCondensed uint8 = 1 << 1
)

// AttrPlanDTO is one attribute's geometry override in a summary's
// resolution plan (wire v6). Attr is the schema position.
type AttrPlanDTO struct {
	Attr        int
	Buckets     int
	BloomBits   int
	BloomHashes int
}

// SummaryDTO is the wire form of a summary. Histograms carry their bucket
// counts; categorical attributes carry either the value-set counts or the
// Bloom bits.
type SummaryDTO struct {
	Origin  string
	Version uint64
	Records uint64
	Buckets int
	Min     float64
	Max     float64

	Hists  []HistDTO
	Sets   []SetDTO
	Blooms []BloomDTO

	// Mode carries the SummaryMode* bits (wire v6); zero from older peers
	// and for summaries in uniform geometry without wildcards.
	Mode uint8
	// Plan lists the per-attribute geometry overrides when Mode has
	// SummaryModeAdaptive set (wire v6).
	Plan []AttrPlanDTO
}

// HistDTO is one histogram (Attr = schema position).
type HistDTO struct {
	Attr   int
	Counts []uint32
	Total  uint64
}

// SetDTO is one value set.
type SetDTO struct {
	Attr   int
	Counts map[string]uint32
}

// BloomDTO is one Bloom filter.
type BloomDTO struct {
	Attr   int
	Bits   []uint64
	NumBit uint32
	Hashes uint32
	N      uint64
}

// FromSummary converts a summary to wire form. Adaptive geometry (per-attr
// resolution overrides) and condensed wildcards stamp the v6 Mode bits and
// plan; a uniform, wildcard-free summary encodes byte-identically to v5.
func FromSummary(s *summary.Summary) *SummaryDTO {
	if s == nil {
		return nil
	}
	dto := &SummaryDTO{
		Origin:  s.Origin,
		Version: s.Version,
		Records: s.Records,
		Buckets: s.Cfg.Buckets,
		Min:     s.Cfg.Min,
		Max:     s.Cfg.Max,
	}
	for i := range s.Hists {
		if h := s.Hists[i]; h != nil {
			dto.Hists = append(dto.Hists, HistDTO{Attr: i, Counts: h.Counts, Total: h.Total})
		}
		if vs := s.Sets[i]; vs != nil {
			dto.Sets = append(dto.Sets, SetDTO{Attr: i, Counts: vs.Counts})
			if vs.HasWildcards() {
				dto.Mode |= SummaryModeCondensed
			}
		}
		if b := s.Blooms[i]; b != nil {
			dto.Blooms = append(dto.Blooms, BloomDTO{Attr: i, Bits: b.Bits, NumBit: b.NumBit, Hashes: b.Hashes, N: b.N})
		}
	}
	if len(s.Cfg.Resolution) > 0 {
		for _, res := range s.Cfg.Resolution {
			idx, ok := s.Schema.Index(res.Attr)
			if !ok {
				continue
			}
			dto.Plan = append(dto.Plan, AttrPlanDTO{
				Attr: idx, Buckets: res.Buckets,
				BloomBits: res.BloomBits, BloomHashes: res.BloomHashes,
			})
		}
		if len(dto.Plan) > 0 {
			dto.Mode |= SummaryModeAdaptive
		}
	}
	return dto
}

// ToSummary reconstructs a summary against the shared schema. The summary
// config is rebuilt from the DTO's histogram geometry; a v6 resolution plan
// (SummaryModeAdaptive) reintroduces the per-attribute overrides so the
// per-attr geometry checks below stay strict even for adaptive summaries.
func (dto *SummaryDTO) ToSummary(schema *record.Schema) (*summary.Summary, error) {
	if dto == nil {
		return nil, nil
	}
	cfg := summary.Config{
		Buckets:     dto.Buckets,
		Min:         dto.Min,
		Max:         dto.Max,
		Categorical: summary.UseValueSet,
	}
	planned := make(map[int]bool, len(dto.Plan))
	if dto.Mode&SummaryModeAdaptive != 0 {
		for _, p := range dto.Plan {
			if p.Attr < 0 || p.Attr >= schema.NumAttrs() {
				return nil, fmt.Errorf("wire: resolution plan for invalid attr %d", p.Attr)
			}
			if p.Buckets < 0 || p.BloomBits < 0 || p.BloomHashes < 0 {
				return nil, fmt.Errorf("wire: negative resolution plan for attr %d", p.Attr)
			}
			cfg.Resolution = append(cfg.Resolution, summary.AttrResolution{
				Attr: schema.Attr(p.Attr).Name, Buckets: p.Buckets,
				BloomBits: p.BloomBits, BloomHashes: p.BloomHashes,
			})
			planned[p.Attr] = true
		}
	}
	if len(dto.Blooms) > 0 {
		cfg.Categorical = summary.UseBloom
		// Base geometry comes from a Bloom the plan does not override (an
		// overridden one would misrepresent the unplanned attributes);
		// fall back to the first when every Bloom carries an override.
		base := dto.Blooms[0]
		for i := range dto.Blooms {
			if !planned[dto.Blooms[i].Attr] {
				base = dto.Blooms[i]
				break
			}
		}
		cfg.BloomBits = int(base.NumBit)
		cfg.BloomHashes = int(base.Hashes)
	}
	s, err := summary.New(schema, cfg)
	if err != nil {
		return nil, err
	}
	s.Origin = dto.Origin
	s.Version = dto.Version
	s.Records = dto.Records
	for _, h := range dto.Hists {
		if h.Attr < 0 || h.Attr >= schema.NumAttrs() || s.Hists[h.Attr] == nil {
			return nil, fmt.Errorf("wire: histogram for invalid attr %d", h.Attr)
		}
		if want := cfg.BucketsFor(schema.Attr(h.Attr).Name); len(h.Counts) != want {
			return nil, fmt.Errorf("wire: histogram attr %d has %d buckets; geometry says %d", h.Attr, len(h.Counts), want)
		}
		copy(s.Hists[h.Attr].Counts, h.Counts)
		s.Hists[h.Attr].Total = h.Total
	}
	for _, vs := range dto.Sets {
		if vs.Attr < 0 || vs.Attr >= schema.NumAttrs() || s.Sets[vs.Attr] == nil {
			return nil, fmt.Errorf("wire: value set for invalid attr %d", vs.Attr)
		}
		for v, c := range vs.Counts {
			// SetCount keeps the set's wildcard index accurate, so
			// condensed summaries keep matching after a wire round trip.
			s.Sets[vs.Attr].SetCount(v, c)
		}
	}
	for _, b := range dto.Blooms {
		if b.Attr < 0 || b.Attr >= schema.NumAttrs() || s.Blooms[b.Attr] == nil {
			return nil, fmt.Errorf("wire: bloom for invalid attr %d", b.Attr)
		}
		if int(b.NumBit) != 64*len(s.Blooms[b.Attr].Bits) || len(b.Bits)*64 != int(b.NumBit) {
			return nil, fmt.Errorf("wire: bloom attr %d has %d bits; geometry says %d", b.Attr, b.NumBit, 64*len(s.Blooms[b.Attr].Bits))
		}
		copy(s.Blooms[b.Attr].Bits, b.Bits)
		s.Blooms[b.Attr].Hashes = b.Hashes
		s.Blooms[b.Attr].N = b.N
	}
	return s, nil
}

// codecCounters tracks the process's codec activity: every transport in
// the process funnels through Encode/EncodeGob/Decode, so one set of
// package-level counters covers them all. A growing gob share on a
// binary-era deployment means some peer is still dialing in the legacy
// codec; growing decode errors mean corrupt frames are arriving.
var codecCounters struct {
	binaryEncodes, gobEncodes obs.Counter
	binaryDecodes, gobDecodes obs.Counter
	decodeErrors              obs.Counter
}

// RegisterMetrics exposes the process-wide codec counters as roads_wire_*
// series on reg. Safe to call once per registry; the counters themselves
// are shared across registries.
func RegisterMetrics(reg *obs.Registry) {
	c := &codecCounters
	reg.CounterFunc("roads_wire_binary_encodes_total",
		"Messages encoded with the binary codec (process-wide).", c.binaryEncodes.Load)
	reg.CounterFunc("roads_wire_gob_encodes_total",
		"Messages encoded with the legacy gob codec (process-wide).", c.gobEncodes.Load)
	reg.CounterFunc("roads_wire_binary_decodes_total",
		"Messages decoded from the binary codec (process-wide).", c.binaryDecodes.Load)
	reg.CounterFunc("roads_wire_gob_decodes_total",
		"Messages decoded from the legacy gob codec (process-wide).", c.gobDecodes.Load)
	reg.CounterFunc("roads_wire_decode_errors_total",
		"Messages that failed to decode in either codec (process-wide).", c.decodeErrors.Load)
}

// Encode serializes a message with the compact binary codec (see
// binary.go). Peers that predate the codec are still reachable: EncodeGob
// produces the legacy representation, and Decode accepts both.
func Encode(m *Message) ([]byte, error) {
	return AppendEncode(nil, m)
}

// EncodeGob serializes a message with the legacy gob codec, kept for
// driving peers that predate the binary codec and as the benchmark
// baseline. Gob re-sends its type descriptors on every one-shot encode,
// which is exactly the per-RPC overhead the binary codec removes.
func EncodeGob(m *Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	codecCounters.gobEncodes.Inc()
	return buf.Bytes(), nil
}

// Decode deserializes a message in either codec, distinguished by the
// first payload byte: binMagic marks the binary codec, anything else is a
// gob stream (whose first byte can never be binMagic). This is the whole
// version negotiation — servers answer in the codec the request used, so
// old gob-only peers and new binary peers share one listener.
func Decode(data []byte) (*Message, error) {
	if IsBinary(data) {
		m, err := decodeBinary(data)
		if err != nil {
			codecCounters.decodeErrors.Inc()
			return nil, err
		}
		codecCounters.binaryDecodes.Inc()
		return m, nil
	}
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		codecCounters.decodeErrors.Inc()
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	codecCounters.gobDecodes.Inc()
	return &m, nil
}

// ErrorMessage builds a KindError reply.
func ErrorMessage(from string, err error) *Message {
	return &Message{Kind: KindError, From: from, Error: err.Error()}
}

// RemoteError converts a KindError message back into an error.
func RemoteError(m *Message) error {
	if m == nil {
		return fmt.Errorf("wire: nil reply")
	}
	if m.Kind != KindError {
		return nil
	}
	return fmt.Errorf("wire: remote %s: %s", m.From, m.Error)
}

// Deadline is the default per-call timeout for live transports.
const Deadline = 10 * time.Second
