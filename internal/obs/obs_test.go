package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exact exposition output for one of
// each metric kind: the format is an interface other tools parse, so a
// formatting drift should fail loudly, not silently.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "Operations completed.")
	c.Add(42)
	g := reg.Gauge("test_depth", "Current depth.")
	g.Set(2.5)
	reg.GaugeFunc("test_children", "Current children.", func() float64 { return 3 })
	h := reg.Histogram("test_latency_seconds", "Op latency.",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(2 * time.Millisecond)   // bucket le=0.01
	h.Observe(2 * time.Millisecond)   // bucket le=0.01
	h.Observe(time.Second)            // overflow

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_children Current children.
# TYPE test_children gauge
test_children 3
# HELP test_depth Current depth.
# TYPE test_depth gauge
test_depth 2.5
# HELP test_latency_seconds Op latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="0.01"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 1.0045
test_latency_seconds_count 4
# HELP test_ops_total Operations completed.
# TYPE test_ops_total counter
test_ops_total 42
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drifted:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestLatencyBucketLadder(t *testing.T) {
	bounds := DefaultLatencyBounds()
	if len(bounds) != NumLatencyBuckets-1 {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), NumLatencyBuckets-1)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}
	if got := LatencyBucket(0); got != 0 {
		t.Fatalf("LatencyBucket(0) = %d, want 0", got)
	}
	if got := LatencyBucket(time.Minute); got != NumLatencyBuckets-1 {
		t.Fatalf("LatencyBucket(1m) = %d, want overflow %d", got, NumLatencyBuckets-1)
	}
	for i, b := range bounds {
		if got := LatencyBucket(b); got != i {
			t.Fatalf("LatencyBucket(%v) = %d, want %d (bounds are inclusive)", b, got, i)
		}
	}
	// Mutating the returned slice must not affect the canonical ladder.
	bounds[0] = time.Hour
	if DefaultLatencyBounds()[0] == time.Hour {
		t.Fatal("DefaultLatencyBounds returned the backing array, not a copy")
	}
}

func TestRegistryRejectsBadRegistration(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ok_total", "fine")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { reg.Counter("ok_total", "again") })
	mustPanic("bad name", func() { reg.Counter("0bad name", "nope") })
	mustPanic("empty histogram", func() { NewHistogram(nil) })
	mustPanic("descending bounds", func() {
		NewHistogram([]time.Duration{time.Second, time.Millisecond})
	})
}

// TestHandlerEndpoints drives the sidecar handler over httptest: /metrics
// must be Prometheus-parseable text, /statusz valid JSON embedding the
// status payload, and the pprof index reachable.
func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_hits_total", "Hits.").Add(7)
	srv := httptest.NewServer(Handler(reg, func() any {
		return map[string]string{"id": "srv0"}
	}))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "test_hits_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	body, ctype = get("/statusz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/statusz content type %q", ctype)
	}
	var out struct {
		Time    string         `json:"time"`
		Metrics map[string]any `json:"metrics"`
		Status  map[string]any `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if out.Status["id"] != "srv0" {
		t.Fatalf("/statusz status payload missing: %s", body)
	}
	if v, ok := out.Metrics["test_hits_total"].(float64); !ok || v != 7 {
		t.Fatalf("/statusz metrics payload wrong: %s", body)
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing:\n%s", body)
	}
	if body, _ = get("/"); !strings.Contains(body, "/metrics") {
		t.Fatalf("index missing:\n%s", body)
	}
}

// TestRegistryConcurrentScrape hammers metric updates from many goroutines
// while scraping concurrently — under -race this proves updates and
// scrapes never conflict, the lock-free claim the package doc makes.
func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_level", "level")
	h := reg.Histogram("test_lat_seconds", "lat", DefaultLatencyBounds())

	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
			_ = reg.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(time.Duration(i%2000) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Snapshot().Total(); got != writers*perWriter {
		t.Fatalf("histogram total = %d, want %d", got, writers*perWriter)
	}
}
