// Package obs is the observability layer of the live ROADS stack: a
// lock-free metrics registry in the style of the query hot path (atomic
// counters and gauges, fixed-bucket latency histograms, copy-on-read
// snapshots) plus an HTTP sidecar serving the Prometheus text exposition
// format, a JSON status view, and net/http/pprof.
//
// The registry is deliberately label-free: every series is one name, one
// help string, one value, which keeps registration O(1) pointers on the
// hot path and makes the exposition trivially diffable in golden tests.
// Per-server distinction comes from scrape-target identity (one roadsd
// process = one registry = one scrape endpoint), exactly how Prometheus
// expects single-tenant daemons to behave.
//
// Updating a metric never allocates, never takes a lock, and never
// contends with a scrape: Counter and Gauge are single atomics, Histogram
// is one atomic add into a fixed bucket array. Scrapes read the atomics
// through the registry under its registration mutex, which only
// registration itself (a startup-time event) also takes.
//
// The canonical metric names every ROADS component registers are listed
// in OPERATIONS.md; `make docs-check` fails the build when a registered
// name is missing from that catalog.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// NumLatencyBuckets is the bucket count of the canonical latency
// histogram: one bucket per bound in DefaultLatencyBounds plus an
// unbounded overflow bucket.
const NumLatencyBuckets = 16

// defaultLatencyBounds is the canonical latency bucket ladder shared by
// every ROADS histogram that measures a duration (the transport's
// call-latency histogram and the server's query-evaluation histogram).
// The scheme is a 1–2.5–5 decade ladder from 100µs to 5s: within each
// decade the bounds step ×2.5, ×2, ×2 (100, 250, 500), giving roughly
// half-decade resolution over the whole range a federated call can span —
// from loopback RPCs (sub-millisecond) to WAN calls pushing the 10s
// wire.Deadline. Observations above 5s land in the overflow bucket.
var defaultLatencyBounds = [NumLatencyBuckets - 1]time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second,
}

// DefaultLatencyBounds returns the canonical latency bucket upper bounds
// (the overflow bucket, not listed, is unbounded). The returned slice is
// a copy.
func DefaultLatencyBounds() []time.Duration {
	out := make([]time.Duration, len(defaultLatencyBounds))
	copy(out, defaultLatencyBounds[:])
	return out
}

// LatencyBucket returns the index of the canonical latency bucket a
// duration falls into (the last index is the overflow bucket).
func LatencyBucket(d time.Duration) int {
	for i, b := range defaultLatencyBounds {
		if d <= b {
			return i
		}
	}
	return NumLatencyBuckets - 1
}

// --- Primitives ---

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. The zero value is ready to
// use; all methods are safe for concurrent use and lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket duration histogram: cumulative-on-read
// bucket counts plus a running sum, all atomics. Observing is one bucket
// scan (at most NumLatencyBuckets compares) and two atomic adds — cheap
// enough for the query hot path.
type Histogram struct {
	bounds   []time.Duration
	counts   []atomic.Uint64 // len(bounds)+1; last = overflow
	sumNanos atomic.Int64
}

// NewHistogram creates a histogram over the given ascending bucket upper
// bounds (use DefaultLatencyBounds for the canonical ladder). An
// unbounded overflow bucket is appended implicitly.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := len(h.bounds) // overflow
	for j, b := range h.bounds {
		if d <= b {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumSeconds = float64(h.sumNanos.Load()) / float64(time.Second)
	return s
}

// HistSnapshot is a point-in-time view of a histogram: per-bucket
// (non-cumulative) counts, one per bound plus the trailing overflow
// bucket, and the running sum of observations in seconds.
type HistSnapshot struct {
	Bounds     []time.Duration
	Counts     []uint64
	SumSeconds float64
}

// Total returns the number of observations.
func (s HistSnapshot) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// --- Registry ---

// Kind is a metric's Prometheus type.
type Kind string

// The metric kinds the registry understands.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// sample is one gathered value at scrape time.
type sample struct {
	value float64       // counter/gauge
	count uint64        // counter (exact integer form)
	hist  *HistSnapshot // histogram
}

type metricEntry struct {
	name, help string
	kind       Kind
	gather     func() sample
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration (the *Func and constructor methods)
// takes a mutex and normally happens once at process startup; metric
// updates never touch the registry at all, so the hot paths stay
// contention-free. Collector functions passed to CounterFunc, GaugeFunc
// and HistogramFunc must be safe for concurrent calls.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricEntry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metricEntry)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register adds an entry, panicking on invalid or duplicate names —
// both are wiring bugs that should fail loudly at startup, not at the
// first scrape.
func (r *Registry) register(name, help string, kind Kind, gather func() sample) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.metrics[name] = &metricEntry{name: name, help: help, kind: kind, gather: gather}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, KindCounter, func() sample {
		v := c.Load()
		return sample{value: float64(v), count: v}
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counters that already live elsewhere as atomics (e.g. the
// transport's).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, KindCounter, func() sample {
		v := fn()
		return sample{value: float64(v), count: v}
	})
}

// Gauge registers and returns a new settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, KindGauge, func() sample { return sample{value: g.Load()} })
	return g
}

// GaugeFunc registers a gauge computed by fn at scrape time — the usual
// form for values derived from a state snapshot (children, replicas,
// summary age).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, func() sample { return sample{value: fn()} })
}

// Histogram registers and returns a new histogram over the given bucket
// bounds.
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, KindHistogram, func() sample {
		s := h.Snapshot()
		return sample{hist: &s}
	})
	return h
}

// HistogramFunc registers a histogram whose snapshot is read from fn at
// scrape time — for histograms that already live elsewhere (e.g. the
// transport's call-latency buckets).
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot) {
	r.register(name, help, KindHistogram, func() sample {
		s := fn()
		return sample{hist: &s}
	})
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// sortedEntries returns the entries ordered by name, under the lock.
func (r *Registry) sortedEntries() []*metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metricEntry, 0, len(r.metrics))
	for _, e := range r.metrics {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name. Histogram buckets are rendered
// cumulatively with `le` bounds in seconds, plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.sortedEntries() {
		s := e.gather()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.kind); err != nil {
			return err
		}
		var err error
		switch e.kind {
		case KindHistogram:
			err = writeHist(w, e.name, s.hist)
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s %s\n", e.name, strconv.FormatUint(s.count, 10))
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(s.value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, h *HistSnapshot) error {
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b.Seconds()), cum); err != nil {
			return err
		}
	}
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, formatFloat(h.SumSeconds), name, cum)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns every metric's current value keyed by name, for the
// JSON /statusz view: counters and gauges as numbers, histograms as
// {bounds_seconds, counts, sum_seconds, count} objects.
func (r *Registry) Snapshot() map[string]any {
	entries := r.sortedEntries()
	out := make(map[string]any, len(entries))
	for _, e := range entries {
		s := e.gather()
		switch e.kind {
		case KindHistogram:
			bounds := make([]float64, len(s.hist.Bounds))
			for i, b := range s.hist.Bounds {
				bounds[i] = b.Seconds()
			}
			out[e.name] = map[string]any{
				"bounds_seconds": bounds,
				"counts":         s.hist.Counts,
				"sum_seconds":    s.hist.SumSeconds,
				"count":          s.hist.Total(),
			}
		case KindCounter:
			out[e.name] = s.count
		default:
			out[e.name] = s.value
		}
	}
	return out
}
