package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the observability sidecar's HTTP handler:
//
//	/metrics      — the registry in Prometheus text exposition format
//	/statusz      — JSON: the statusz payload plus every metric's value
//	/debug/pprof/ — the standard net/http/pprof profiling endpoints
//	/             — a small plain-text index of the above
//
// statusz supplies the daemon-level status object embedded in the
// /statusz reply (roadsd passes the server's StatusSnapshot); nil omits
// it. The handler is read-only and safe to serve concurrently with
// queries — scrapes read the same atomics the hot paths write, never a
// lock the hot paths take. It is the operator's responsibility to bind
// it to a trusted interface: pprof exposes heap and CPU profiles.
func Handler(reg *Registry, statusz func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		out := map[string]any{
			"time":    time.Now().UTC().Format(time.RFC3339Nano),
			"metrics": reg.Snapshot(),
		}
		if statusz != nil {
			out["status"] = statusz()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("roads observability sidecar\n\n" +
			"  /metrics       Prometheus text exposition\n" +
			"  /statusz       JSON status + metrics snapshot\n" +
			"  /debug/pprof/  runtime profiles\n"))
	})
	return mux
}
