// Package central implements the centralized-repository baseline: every
// owner exports its raw records to one repository server, which answers
// queries locally in a single round trip. It is the third design in the
// paper's analysis (Eq. 3, Table I) and the comparison system in the
// prototype benchmark (Fig. 11).
package central

import (
	"fmt"
	"time"

	"roads/internal/netsim"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/store"
)

// Repository is the central server.
type Repository struct {
	Schema *record.Schema
	Sim    *netsim.Sim
	// Host is the repository's index in the latency space.
	Host  int
	Store *store.Store
}

// New creates a repository at the given host.
func New(schema *record.Schema, cost store.CostModel, sim *netsim.Sim, host int) *Repository {
	return &Repository{
		Schema: schema,
		Sim:    sim,
		Host:   host,
		Store:  store.New(schema, cost),
	}
}

// Export pushes one owner's records to the repository, accounting one
// direct update message per record (Eq. 3: rKN/t_r per second).
func (r *Repository) Export(ownerHost int, recs []*record.Record) {
	size := 0
	for _, rec := range recs {
		size += rec.SizeBytes(r.Schema)
	}
	r.Sim.Send(ownerHost, r.Host, netsim.Update, size, nil)
	r.Store.Add(recs...)
}

// ExportAll exports every node's records (PerNode[i] owned by host i).
func (r *Repository) ExportAll(perNode [][]*record.Record) {
	for host, recs := range perNode {
		r.Export(host, recs)
	}
}

// UpdateBytesPerEpoch measures one full re-export of all records.
func (r *Repository) UpdateBytesPerEpoch(perNode [][]*record.Record) int64 {
	var bytes int64
	for _, recs := range perNode {
		for _, rec := range recs {
			bytes += int64(rec.SizeBytes(r.Schema))
		}
	}
	return bytes
}

// QueryResult reports one centrally resolved query.
type QueryResult struct {
	// Latency is the one-way trip to the repository (the query "reaches
	// the last server it needs to contact" immediately).
	Latency time.Duration
	// QueryBytes is the query message size (one message).
	QueryBytes int64
	// Records are the matches.
	Records []*record.Record
	// ResponseTime is the full round trip: query travel + sequential
	// retrieval at the single server + response travel.
	ResponseTime time.Duration
}

// Resolve answers a query from a client at clientHost.
func (r *Repository) Resolve(q *query.Query, clientHost int) (*QueryResult, error) {
	if !q.Bound() {
		if err := q.Bind(r.Schema); err != nil {
			return nil, err
		}
	}
	if r.Store.Len() == 0 {
		return nil, fmt.Errorf("central: repository is empty; export records first")
	}
	res := &QueryResult{}
	oneWay := r.Sim.LatencyBetween(clientHost, r.Host)
	res.QueryBytes = int64(q.SizeBytes())
	r.Sim.Account(netsim.Query, q.SizeBytes())

	sres, err := r.Store.Search(q)
	if err != nil {
		return nil, err
	}
	res.Records = sres.Records
	returnBytes := 0
	for _, rec := range sres.Records {
		returnBytes += rec.SizeBytes(r.Schema)
	}
	if returnBytes > 0 {
		r.Sim.Account(netsim.Response, returnBytes)
	}
	res.Latency = oneWay
	res.ResponseTime = oneWay + sres.Cost + oneWay
	return res, nil
}
