package central

import (
	"math/rand"
	"testing"
	"time"

	"roads/internal/netsim"
	"roads/internal/query"
	"roads/internal/store"
	"roads/internal/workload"
)

func buildRepo(t *testing.T, seed int64) (*Repository, *workload.Workload) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := workload.MustGenerate(workload.Config{Nodes: 16, RecordsPerNode: 50, AttrsPerDist: 4}, rng)
	sim := netsim.New(netsim.ConstLatency(20 * time.Millisecond))
	repo := New(w.Schema, store.DefaultCostModel(), sim, 0)
	repo.ExportAll(w.PerNode)
	return repo, w
}

func TestResolveCompleteAndSound(t *testing.T) {
	repo, w := buildRepo(t, 1)
	rng := rand.New(rand.NewSource(2))
	queries, err := w.GenQueries(10, 6, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		res, err := repo.Resolve(q, 5)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := 0
		for _, r := range w.AllRecords() {
			if q.MatchRecord(r) {
				want++
			}
		}
		if len(res.Records) != want {
			t.Fatalf("query %d: got %d; want %d", qi, len(res.Records), want)
		}
	}
}

func TestSingleRoundTripLatency(t *testing.T) {
	repo, w := buildRepo(t, 3)
	q, _ := w.GenQuery("q", 4, 0.25, rand.New(rand.NewSource(4)))
	res, err := repo.Resolve(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 20*time.Millisecond {
		t.Fatalf("latency = %v; want one 20ms trip", res.Latency)
	}
	if res.ResponseTime < 40*time.Millisecond {
		t.Fatalf("response time %v must include both trips", res.ResponseTime)
	}
	// Response time grows with retrieval cost: it must exceed bare RTT when
	// records match.
	if len(res.Records) > 0 && res.ResponseTime <= 40*time.Millisecond {
		t.Fatal("retrieval cost missing from response time")
	}
}

func TestEmptyRepositoryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := workload.MustGenerate(workload.Config{Nodes: 2, RecordsPerNode: 5, AttrsPerDist: 1}, rng)
	sim := netsim.New(netsim.ConstLatency(0))
	repo := New(w.Schema, store.CostModel{}, sim, 0)
	q, _ := w.GenQuery("q", 2, 0.5, rng)
	if _, err := repo.Resolve(q, 1); err == nil {
		t.Fatal("empty repository must error")
	}
}

func TestUpdateBytesLinearInRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sim := netsim.New(netsim.ConstLatency(0))
	wSmall := workload.MustGenerate(workload.Config{Nodes: 8, RecordsPerNode: 10, AttrsPerDist: 4}, rng)
	repoSmall := New(wSmall.Schema, store.CostModel{}, sim, 0)
	small := repoSmall.UpdateBytesPerEpoch(wSmall.PerNode)

	wBig := workload.MustGenerate(workload.Config{Nodes: 8, RecordsPerNode: 100, AttrsPerDist: 4}, rng)
	repoBig := New(wBig.Schema, store.CostModel{}, sim, 0)
	big := repoBig.UpdateBytesPerEpoch(wBig.PerNode)
	if big != small*10 {
		t.Fatalf("update bytes %d vs %d; want exactly 10x", big, small)
	}
}

func TestResolveBindError(t *testing.T) {
	repo, _ := buildRepo(t, 7)
	q := query.New("q", query.NewRange("missing", 0, 1))
	if _, err := repo.Resolve(q, 0); err == nil {
		t.Fatal("unknown attribute must fail")
	}
}

func TestUpdateAccountedOnSim(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := workload.MustGenerate(workload.Config{Nodes: 4, RecordsPerNode: 10, AttrsPerDist: 4}, rng)
	sim := netsim.New(netsim.ConstLatency(0))
	repo := New(w.Schema, store.CostModel{}, sim, 0)
	repo.ExportAll(w.PerNode)
	if sim.Stats.Bytes[netsim.Update] <= 0 {
		t.Fatal("export must account update bytes")
	}
	if sim.Stats.Messages[netsim.Update] != 4 {
		t.Fatalf("messages = %d; want 4 (one per owner)", sim.Stats.Messages[netsim.Update])
	}
}
