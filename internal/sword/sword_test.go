package sword

import (
	"math/rand"
	"testing"
	"time"

	"roads/internal/netsim"
	"roads/internal/query"
	"roads/internal/workload"
)

func buildSword(t *testing.T, nodes int, seed int64) (*System, *workload.Workload) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	wcfg := workload.Config{Nodes: nodes, RecordsPerNode: 50, AttrsPerDist: 4}
	w := workload.MustGenerate(wcfg, rng)
	sim := netsim.New(netsim.ConstLatency(10 * time.Millisecond))
	sys, err := New(w.Schema, DefaultConfig(), sim, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterAll(w.PerNode); err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := workload.MustGenerate(workload.Config{Nodes: 4, RecordsPerNode: 5, AttrsPerDist: 1}, rng)
	sim := netsim.New(netsim.ConstLatency(0))
	if _, err := New(w.Schema, DefaultConfig(), sim, 0); err == nil {
		t.Fatal("zero servers must fail")
	}
}

func TestSectionPartition(t *testing.T) {
	sys, _ := buildSword(t, 64, 2)
	// 16 numeric attributes -> 16 sections of ~4 members each over the
	// global 64-member ring.
	counts := sys.SectionMembers()
	if len(counts) != 16 {
		t.Fatalf("sections = %d; want 16", len(counts))
	}
	total := 0
	for si, c := range counts {
		if c < 3 || c > 5 {
			t.Fatalf("section %d has %d members; want ~4", si, c)
		}
		total += c
	}
	if total != 64 {
		t.Fatalf("sections cover %d members; want 64", total)
	}
}

func TestEveryRecordReplicatedPerSection(t *testing.T) {
	sys, w := buildSword(t, 32, 3)
	// Total stored copies = r copies of every record.
	got := 0
	for _, st := range sys.stores {
		got += st.Len()
	}
	r := len(w.Schema.NumericIndexes())
	if want := w.TotalRecords() * r; got != want {
		t.Fatalf("stored copies = %d; want %d (r copies each)", got, want)
	}
}

func TestResolveCompleteAndSound(t *testing.T) {
	sys, w := buildSword(t, 32, 4)
	rng := rand.New(rand.NewSource(5))
	queries, err := w.GenQueries(15, 6, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		res, err := sys.Resolve(q, rng.Intn(32))
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := 0
		for _, r := range w.AllRecords() {
			if q.MatchRecord(r) {
				want++
			}
		}
		if len(res.Records) != want {
			t.Fatalf("query %d: got %d records; want %d", qi, len(res.Records), want)
		}
		for _, r := range res.Records {
			if !q.MatchRecord(r) {
				t.Fatalf("query %d returned non-matching record", qi)
			}
		}
		if res.SegmentSize <= 0 {
			t.Fatal("segment must visit at least one server")
		}
	}
}

func TestSegmentGrowsWithSystemSize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := func(sys *System, w *workload.Workload) int {
		qq, err := w.GenQuery("q", 6, 0.25, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Resolve(qq, rng.Intn(32))
		if err != nil {
			t.Fatal(err)
		}
		return res.SegmentSize
	}
	small, wSmall := buildSword(t, 64, 8)
	big, wBig := buildSword(t, 512, 8)
	if q(big, wBig) <= q(small, wSmall) {
		t.Fatal("segment size (and thus latency) must grow with system size")
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	sys, w := buildSword(t, 256, 12)
	rng := rand.New(rand.NewSource(13))
	queries, _ := w.GenQueries(20, 6, 0.25, rng)
	for _, q := range queries {
		res, err := sys.Resolve(q, rng.Intn(256))
		if err != nil {
			t.Fatal(err)
		}
		if res.RouteHops > sys.Ring().MaxRouteHops() {
			t.Fatalf("route took %d hops; log bound %d", res.RouteHops, sys.Ring().MaxRouteHops())
		}
	}
}

func TestUpdateBytesScaleWithRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sim := netsim.New(netsim.ConstLatency(time.Millisecond))
	wSmall := workload.MustGenerate(workload.Config{Nodes: 16, RecordsPerNode: 20, AttrsPerDist: 4}, rng)
	sysSmall, _ := New(wSmall.Schema, DefaultConfig(), sim, 16)
	small := sysSmall.UpdateBytesPerEpoch(wSmall.PerNode)

	wBig := workload.MustGenerate(workload.Config{Nodes: 16, RecordsPerNode: 200, AttrsPerDist: 4}, rng)
	sysBig, _ := New(wBig.Schema, DefaultConfig(), sim, 16)
	big := sysBig.UpdateBytesPerEpoch(wBig.PerNode)

	// 10x the records must give ~10x the update traffic (Eq. 2: linear in K).
	ratio := float64(big) / float64(small)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("update traffic ratio %.1f; want ~10 (linear in records)", ratio)
	}
}

func TestQueryNoRangePredicate(t *testing.T) {
	sys, w := buildSword(t, 16, 10)
	q := query.New("q") // no predicates
	if err := q.Bind(w.Schema); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Resolve(q, 0); err == nil {
		t.Fatal("query without range predicates must fail")
	}
}

func TestStorageAccountingPositive(t *testing.T) {
	sys, w := buildSword(t, 32, 11)
	max := sys.MaxStorageBytes()
	if max <= 0 {
		t.Fatal("max storage must be positive")
	}
	hosts := sys.SortedHosts()
	if len(hosts) == 0 || len(hosts) > 32 {
		t.Fatalf("hosts with data = %d", len(hosts))
	}
	// Total stored bytes = r copies of every record.
	var total int64
	for _, b := range sys.StorageBytesPerServer() {
		total += b
	}
	var oneCopy int64
	for _, r := range w.AllRecords() {
		oneCopy += int64(r.SizeBytes(w.Schema))
	}
	r := int64(len(w.Schema.NumericIndexes()))
	if total != oneCopy*r {
		t.Fatalf("total storage %d; want %d (r copies)", total, oneCopy*r)
	}
}

func TestNarrowestRangeRingChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	w := workload.MustGenerate(workload.Config{Nodes: 64, RecordsPerNode: 20, AttrsPerDist: 4}, rng)
	sim := netsim.New(netsim.ConstLatency(10 * time.Millisecond))

	cfg := DefaultConfig()
	cfg.RingChoice = NarrowestRange
	sys, err := New(w.Schema, cfg, sim, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterAll(w.PerNode); err != nil {
		t.Fatal(err)
	}
	// A query with one wide and one narrow predicate: the narrow one must
	// drive the segment, which shrinks the walk.
	q := query.New("q",
		query.NewRange("a0", 0.0, 0.9),   // wide
		query.NewRange("a1", 0.40, 0.45), // narrow
	)
	res, err := sys.Resolve(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With 64 nodes over 16 sections, a section has 4 members; a 0.05-wide
	// range covers at most 2 of them, while the 0.9-wide range covers all 4.
	if res.SegmentSize > 2 {
		t.Fatalf("narrowest-range choice walked %d members; want <= 2", res.SegmentSize)
	}
	// Completeness is unaffected by the ring choice.
	want := 0
	for _, r := range w.AllRecords() {
		if q.MatchRecord(r) {
			want++
		}
	}
	if len(res.Records) != want {
		t.Fatalf("got %d records; want %d", len(res.Records), want)
	}
}
