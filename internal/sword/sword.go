// Package sword re-implements the SWORD baseline the paper compares
// against (Oppenheimer et al., HPDC 2005) at the level of detail the
// paper's analysis fixes. All n servers form a single DHT ring whose ID
// space is divided into r sections, one per searchable attribute — the
// paper's "multiple sub-rings in a single ring". The hash is locality
// preserving: value v of attribute i maps to global position (i+v)/r, so a
// range on one attribute maps to a contiguous segment of that attribute's
// section. Every record is registered r times (one copy per attribute
// section, placed by that attribute's value), each registration routed in
// O(log n) finger hops — Eq. (2)'s cost. A multi-dimensional range query is
// resolved in a single section: finger-routed to the segment covering the
// queried range, then passed server to server through the segment, each
// member filtering its local records against *all* query predicates.
package sword

import (
	"fmt"
	"sort"
	"time"

	"roads/internal/dht"
	"roads/internal/netsim"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/store"
)

// RingChoice selects which attribute's ring section resolves a query.
type RingChoice uint8

const (
	// FirstPredicate uses the query's first range predicate — the paper's
	// model ("the search is performed only in one ring").
	FirstPredicate RingChoice = iota
	// NarrowestRange picks the range predicate with the smallest width,
	// minimizing the segment walked — an obvious SWORD improvement the
	// ablation benchmarks quantify.
	NarrowestRange
)

// Config controls a SWORD deployment.
type Config struct {
	// ProcessingDelay models per-hop query handling time.
	ProcessingDelay time.Duration
	// Cost models the local record stores (for response-time experiments).
	Cost store.CostModel
	// RingChoice selects the resolution ring (default FirstPredicate,
	// matching the paper).
	RingChoice RingChoice
}

// DefaultConfig mirrors the ROADS defaults for fairness.
func DefaultConfig() Config {
	return Config{ProcessingDelay: 2 * time.Millisecond}
}

// System is a SWORD deployment.
type System struct {
	Cfg    Config
	Schema *record.Schema
	Sim    *netsim.Sim

	ring *dht.Ring // the global ring: member i is host i
	// sectionOf maps a schema attribute position to its section index in
	// the global ID space; -1 for categorical attributes.
	sectionOf []int
	numSecs   int
	// stores[member] holds the records registered at that ring member.
	stores []*store.Store
}

// New creates a SWORD deployment over hosts 0..n-1.
func New(schema *record.Schema, cfg Config, sim *netsim.Sim, n int) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sword: need at least one server")
	}
	attrs := schema.NumericIndexes()
	if len(attrs) == 0 {
		return nil, fmt.Errorf("sword: schema has no numeric attributes")
	}
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	ring, err := dht.NewRing(hosts)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Cfg:       cfg,
		Schema:    schema,
		Sim:       sim,
		ring:      ring,
		sectionOf: make([]int, schema.NumAttrs()),
		numSecs:   len(attrs),
		stores:    make([]*store.Store, n),
	}
	for i := range sys.sectionOf {
		sys.sectionOf[i] = -1
	}
	for si, attr := range attrs {
		sys.sectionOf[attr] = si
	}
	for i := range sys.stores {
		sys.stores[i] = store.NewScan(schema, cfg.Cost)
	}
	return sys, nil
}

// Ring returns the global ring.
func (sys *System) Ring() *dht.Ring { return sys.ring }

// position maps attribute attr's value v to the global ID space: section
// base plus the value scaled into the section.
func (sys *System) position(attr int, v float64) (float64, error) {
	si := sys.sectionOf[attr]
	if si < 0 {
		return 0, fmt.Errorf("sword: attribute %d has no ring section", attr)
	}
	return (float64(si) + clamp01(v)) / float64(sys.numSecs), nil
}

// RegisterRecord registers one record owned by the node at ownerHost: one
// copy per attribute section, finger-routed from the owner across the
// global ring. Every hop carries the record, so the accounted update
// traffic is O(r * log n * recordSize) per record — Eq. (2).
func (sys *System) RegisterRecord(ownerHost int, rec *record.Record) error {
	size := rec.SizeBytes(sys.Schema)
	for attr, si := range sys.sectionOf {
		if si < 0 {
			continue
		}
		pos, err := sys.position(attr, rec.Num(attr))
		if err != nil {
			return err
		}
		path := sys.ring.Route(ownerHost, pos)
		for i := 0; i+1 < len(path); i++ {
			sys.Sim.Send(sys.ring.Host(path[i]), sys.ring.Host(path[i+1]), netsim.Update, size, nil)
		}
		if len(path) == 1 {
			// The owner itself is the target; the registration is local
			// but still accounted as one store message.
			sys.Sim.Account(netsim.Update, size)
		}
		sys.stores[path[len(path)-1]].Add(rec)
	}
	return nil
}

// RegisterAll registers every node's records (PerNode[i] owned by host i).
func (sys *System) RegisterAll(perNode [][]*record.Record) error {
	for hostIdx, recs := range perNode {
		for _, r := range recs {
			if err := sys.RegisterRecord(hostIdx, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// UpdateBytesPerEpoch measures the update traffic of re-registering all
// records once (one t_r refresh), without duplicating stored state.
func (sys *System) UpdateBytesPerEpoch(perNode [][]*record.Record) int64 {
	saved := sys.Sim.Stats
	sys.Sim.ResetStats()
	for hostIdx, recs := range perNode {
		for _, r := range recs {
			size := r.SizeBytes(sys.Schema)
			for attr, si := range sys.sectionOf {
				if si < 0 {
					continue
				}
				pos, _ := sys.position(attr, r.Num(attr))
				hops := len(sys.ring.Route(hostIdx, pos)) - 1
				if hops < 1 {
					hops = 1
				}
				sys.Sim.Account(netsim.Update, size*hops)
			}
		}
	}
	bytes := sys.Sim.Stats.Bytes[netsim.Update]
	sys.Sim.Stats = saved
	return bytes
}

// QueryResult reports one resolved SWORD query.
type QueryResult struct {
	// Latency is the time for the query to reach the last segment server:
	// finger hops to the segment, then the sequential segment walk.
	Latency time.Duration
	// QueryBytes is the forwarding traffic (the query message on every
	// routing and segment hop).
	QueryBytes int64
	// RouteHops counts the finger hops before the segment walk.
	RouteHops int
	// SegmentSize is how many servers the segment walk visited.
	SegmentSize int
	// Contacted lists the global hosts touched, in order.
	Contacted []int
	// Records are the matching records gathered from segment servers.
	Records []*record.Record
	// ResponseTime adds store retrieval and the return trip per segment
	// server (sequential walk, so retrieval costs accumulate along it).
	ResponseTime time.Duration
}

// Resolve answers a multi-dimensional range query starting from the client
// co-located at host clientHost. Per the paper's model, only one attribute
// section is used: that of the query's first range predicate.
func (sys *System) Resolve(q *query.Query, clientHost int) (*QueryResult, error) {
	if !q.Bound() {
		if err := q.Bind(sys.Schema); err != nil {
			return nil, err
		}
	}
	attr, lo, hi, err := sys.routingPredicate(q)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{}
	qBytes := q.SizeBytes()

	posLo, err := sys.position(attr, lo)
	if err != nil {
		return nil, err
	}
	posHi, err := sys.position(attr, hi)
	if err != nil {
		return nil, err
	}

	// Finger-route from the client's own ring position to the segment
	// start (the client node is a DHT member, so the first hop is a real
	// routing hop, not a client round trip).
	var now time.Duration
	path := sys.ring.Route(clientHost, posLo)
	res.RouteHops = len(path) - 1
	res.Contacted = append(res.Contacted, sys.ring.Host(path[0]))
	for i := 0; i+1 < len(path); i++ {
		now += sys.Cfg.ProcessingDelay
		now += sys.Sim.LatencyBetween(sys.ring.Host(path[i]), sys.ring.Host(path[i+1]))
		res.QueryBytes += int64(qBytes)
		sys.Sim.Account(netsim.Query, qBytes)
		res.Contacted = append(res.Contacted, sys.ring.Host(path[i+1]))
	}

	// Sequential segment walk, filtering locally at each member.
	segment := sys.ring.Segment(posLo, posHi)
	res.SegmentSize = len(segment)
	cur := segment[0]
	retrieval := time.Duration(0)
	for si, member := range segment {
		if si > 0 {
			now += sys.Cfg.ProcessingDelay
			now += sys.Sim.LatencyBetween(sys.ring.Host(cur), sys.ring.Host(member))
			res.QueryBytes += int64(qBytes)
			sys.Sim.Account(netsim.Query, qBytes)
			res.Contacted = append(res.Contacted, sys.ring.Host(member))
			cur = member
		}
		sres, err := sys.stores[member].Search(q)
		if err != nil {
			return nil, err
		}
		retrieval += sres.Cost
		res.Records = append(res.Records, sres.Records...)
		returnBytes := 0
		for _, r := range sres.Records {
			returnBytes += r.SizeBytes(sys.Schema)
		}
		if returnBytes > 0 {
			sys.Sim.Account(netsim.Response, returnBytes)
		}
	}
	res.Latency = now
	last := segment[len(segment)-1]
	res.ResponseTime = now + retrieval + sys.Sim.LatencyBetween(sys.ring.Host(last), clientHost)
	return res, nil
}

// routingPredicate picks the section and range used to resolve the query
// according to the configured RingChoice.
func (sys *System) routingPredicate(q *query.Query) (attr int, lo, hi float64, err error) {
	best := -1
	bestWidth := 0.0
	for _, p := range q.Preds {
		if p.Op != query.Range {
			continue
		}
		idx, ok := sys.Schema.Index(p.Attr)
		if !ok || sys.sectionOf[idx] < 0 {
			continue
		}
		if sys.Cfg.RingChoice == FirstPredicate {
			return idx, p.Lo, p.Hi, nil
		}
		width := clamp01(p.Hi) - clamp01(p.Lo)
		if best == -1 || width < bestWidth {
			best, bestWidth = idx, width
			lo, hi = p.Lo, p.Hi
		}
	}
	if best == -1 {
		return 0, 0, 0, fmt.Errorf("sword: query %s has no range predicate on a ring attribute", q.ID)
	}
	return best, lo, hi, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// StorageBytesPerServer returns, for diagnostics and the Table I
// comparison, the stored record bytes per global host.
func (sys *System) StorageBytesPerServer() map[int]int64 {
	out := make(map[int]int64)
	for member, st := range sys.stores {
		var bytes int64
		for _, r := range st.Records() {
			bytes += int64(r.SizeBytes(sys.Schema))
		}
		if bytes > 0 {
			out[sys.ring.Host(member)] = bytes
		}
	}
	return out
}

// MaxStorageBytes returns the largest per-host storage.
func (sys *System) MaxStorageBytes() int64 {
	var max int64
	for _, b := range sys.StorageBytesPerServer() {
		if b > max {
			max = b
		}
	}
	return max
}

// SortedHosts returns the hosts with any stored data, ascending.
func (sys *System) SortedHosts() []int {
	m := sys.StorageBytesPerServer()
	out := make([]int, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// SectionMembers returns how many ring members serve each attribute
// section, for tests: with n servers and r sections it is ~n/r each.
func (sys *System) SectionMembers() []int {
	counts := make([]int, sys.numSecs)
	n := sys.ring.Size()
	for m := 0; m < n; m++ {
		// Member m owns arc [m/n,(m+1)/n); its midpoint's section:
		mid := (float64(m) + 0.5) / float64(n)
		si := int(mid * float64(sys.numSecs))
		if si >= sys.numSecs {
			si = sys.numSecs - 1
		}
		counts[si]++
	}
	return counts
}
