package query

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"roads/internal/record"
	"roads/internal/summary"
)

func camSchema() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "rate", Kind: record.Numeric},
		{Name: "res", Kind: record.Numeric},
		{Name: "enc", Kind: record.Categorical},
	})
}

func camRec(s *record.Schema, rate, res float64, enc string) *record.Record {
	r := record.New(s, "r", "o")
	r.SetNum(0, rate)
	r.SetNum(1, res)
	r.SetStr(2, enc)
	return r
}

func TestBindErrors(t *testing.T) {
	s := camSchema()
	q := New("q1", NewRange("missing", 0, 1))
	if err := q.Bind(s); err == nil {
		t.Fatal("expected unknown-attribute error")
	}
	q = New("q2", NewRange("enc", 0, 1))
	if err := q.Bind(s); err == nil {
		t.Fatal("expected kind-mismatch error for range on categorical")
	}
	q = New("q3", NewEq("rate", "x"))
	if err := q.Bind(s); err == nil {
		t.Fatal("expected kind-mismatch error for eq on numeric")
	}
	q = New("q4", NewRange("rate", 0, 1))
	if q.Bound() {
		t.Fatal("should not be bound before Bind")
	}
	if err := q.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !q.Bound() {
		t.Fatal("should be bound after Bind")
	}
}

func TestMatchRecordConjunction(t *testing.T) {
	s := camSchema()
	// The paper's example: type=camera AND rate>150Kbps AND encoding=MPEG2,
	// with rate normalized to [0,1].
	q := New("q", NewAbove("rate", 0.15), NewEq("enc", "MPEG2"))
	if err := q.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !q.MatchRecord(camRec(s, 0.2, 0.5, "MPEG2")) {
		t.Fatal("record satisfying all predicates should match")
	}
	if q.MatchRecord(camRec(s, 0.1, 0.5, "MPEG2")) {
		t.Fatal("rate below bound should fail")
	}
	if q.MatchRecord(camRec(s, 0.2, 0.5, "H264")) {
		t.Fatal("wrong encoding should fail")
	}
}

func TestOpenEndedPredicates(t *testing.T) {
	s := camSchema()
	q := New("q", NewBelow("rate", 0.3))
	if err := q.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !q.MatchRecord(camRec(s, 0.0, 0, "x")) {
		t.Fatal("below-bound should match 0")
	}
	if q.MatchRecord(camRec(s, 0.31, 0, "x")) {
		t.Fatal("0.31 should not match rate<0.3")
	}
	above := NewAbove("rate", 0.5)
	if !math.IsInf(above.Hi, 1) {
		t.Fatal("NewAbove must set +Inf upper bound")
	}
}

func TestMatchSummaryDirectsForwarding(t *testing.T) {
	s := camSchema()
	cfg := summary.DefaultConfig()
	cfg.Buckets = 100
	sum := summary.MustNew(s, cfg)
	sum.AddRecord(camRec(s, 0.8, 0.5, "MPEG2"))

	q := New("q", NewAbove("rate", 0.15), NewEq("enc", "MPEG2"))
	if err := q.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !q.MatchSummary(sum) {
		t.Fatal("summary with matching data must match")
	}
	q2 := New("q2", NewRange("rate", 0.1, 0.2), NewEq("enc", "MPEG2"))
	if err := q2.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if q2.MatchSummary(sum) {
		t.Fatal("rate bucket empty in [0.1,0.2]; conjunction must prune branch")
	}
	if q.MatchSummary(nil) {
		t.Fatal("nil summary never matches")
	}
	empty := summary.MustNew(s, cfg)
	if q.MatchSummary(empty) {
		t.Fatal("empty summary never matches")
	}
}

func TestEstimateMatches(t *testing.T) {
	s := record.DefaultSchema(2)
	cfg := summary.DefaultConfig()
	cfg.Buckets = 100
	sum := summary.MustNew(s, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		r := record.New(s, strconv.Itoa(i), "o")
		r.SetNum(0, rng.Float64())
		r.SetNum(1, rng.Float64())
		sum.AddRecord(r)
	}
	q := New("q", NewRange("a0", 0, 0.5), NewRange("a1", 0, 0.5))
	if err := q.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	est := q.EstimateMatches(sum)
	if est < 150 || est > 350 {
		t.Fatalf("EstimateMatches = %g; want ~250 for 0.25 selectivity on 1000", est)
	}
	if q.EstimateMatches(nil) != 0 {
		t.Fatal("nil summary estimates 0")
	}
}

func TestFilter(t *testing.T) {
	s := camSchema()
	q := New("q", NewEq("enc", "A"))
	if err := q.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	recs := []*record.Record{
		camRec(s, 0.1, 0.1, "A"),
		camRec(s, 0.2, 0.2, "B"),
		camRec(s, 0.3, 0.3, "A"),
	}
	got := q.Filter(recs)
	if len(got) != 2 {
		t.Fatalf("Filter returned %d records; want 2", len(got))
	}
}

func TestSizeBytesGrowsWithDims(t *testing.T) {
	q2 := New("q", NewRange("a0", 0, 1), NewRange("a1", 0, 1))
	q4 := New("q", NewRange("a0", 0, 1), NewRange("a1", 0, 1), NewRange("a2", 0, 1), NewRange("a3", 0, 1))
	if q4.SizeBytes() <= q2.SizeBytes() {
		t.Fatal("query size must grow with dimensionality")
	}
	qe := New("q", NewEq("enc", "MPEG2"))
	if qe.SizeBytes() != 24+3+5 {
		t.Fatalf("eq query size = %d; want 32", qe.SizeBytes())
	}
}

func TestCloneAndString(t *testing.T) {
	s := camSchema()
	q := New("q", NewRange("rate", 0.1, 0.2), NewEq("enc", "X"))
	if err := q.Bind(s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	c := q.Clone()
	if !c.Bound() {
		t.Fatal("clone should preserve bound state")
	}
	c.Preds[0].Lo = 0.9
	if q.Preds[0].Lo == 0.9 {
		t.Fatal("clone must not share predicate storage")
	}
	str := q.String()
	if !strings.Contains(str, "AND") || !strings.Contains(str, "enc=X") {
		t.Fatalf("String() = %q; want conjunction form", str)
	}
}

// Property: summary evaluation is sound w.r.t. record evaluation — if any
// record matches the query, the summary of the records matches it too (no
// false negatives in forwarding, the invariant ROADS correctness rests on).
func TestSummarySoundnessQuick(t *testing.T) {
	s := record.DefaultSchema(4)
	cfg := summary.DefaultConfig()
	cfg.Buckets = 128
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]*record.Record, 10)
		sum := summary.MustNew(s, cfg)
		for i := range recs {
			r := record.New(s, strconv.Itoa(i), "o")
			for j := 0; j < 4; j++ {
				r.SetNum(j, rng.Float64())
			}
			recs[i] = r
			sum.AddRecord(r)
		}
		q := New("q",
			NewRange("a0", rng.Float64()*0.5, 0.5+rng.Float64()*0.5),
			NewRange("a2", rng.Float64()*0.5, 0.5+rng.Float64()*0.5),
		)
		if err := q.Bind(s); err != nil {
			return false
		}
		anyRecord := false
		for _, r := range recs {
			if q.MatchRecord(r) {
				anyRecord = true
				break
			}
		}
		if anyRecord && !q.MatchSummary(sum) {
			return false // false negative: forwarding would miss results
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
