package query

import (
	"math"
	"testing"
)

func TestParsePredicateRange(t *testing.T) {
	p, err := ParsePredicate("rate=0.2:0.4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != Range || p.Attr != "rate" || p.Lo != 0.2 || p.Hi != 0.4 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePredicateOpenEnded(t *testing.T) {
	p, err := ParsePredicate("rate=0.2:")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Hi, 1) || p.Lo != 0.2 {
		t.Fatalf("parsed %+v", p)
	}
	p, err = ParsePredicate("rate=:0.4")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Lo, -1) || p.Hi != 0.4 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePredicateComparisons(t *testing.T) {
	p, err := ParsePredicate("rate>0.15")
	if err != nil {
		t.Fatal(err)
	}
	if p.Lo != 0.15 || !math.IsInf(p.Hi, 1) {
		t.Fatalf("parsed %+v", p)
	}
	p, err = ParsePredicate("cpu<0.9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hi != 0.9 || !math.IsInf(p.Lo, -1) {
		t.Fatalf("parsed %+v", p)
	}
	// Whitespace tolerance.
	p, err = ParsePredicate("rate > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Attr != "rate" || p.Lo != 0.5 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePredicateEquality(t *testing.T) {
	p, err := ParsePredicate("encoding=MPEG2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != Eq || p.Attr != "encoding" || p.Str != "MPEG2" {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePredicateErrors(t *testing.T) {
	for _, bad := range []string{
		"",            // nothing
		"=0.5",        // no attribute
		"rate",        // no operator
		"rate=",       // empty value
		"rate=x:0.4",  // bad lower
		"rate=0.2:y",  // bad upper
		"rate=0.4:.2", // inverted
		"rate>abc",    // bad bound
		"rate<abc",    // bad bound
	} {
		if _, err := ParsePredicate(bad); err == nil {
			t.Fatalf("ParsePredicate(%q) should fail", bad)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("q1", "rate=0.2:0.4; encoding=MPEG2 ;cpu>0.5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Dims() != 3 || q.ID != "q1" {
		t.Fatalf("parsed %v", q)
	}
	if _, err := ParseQuery("q", " ; ; "); err == nil {
		t.Fatal("empty query must fail")
	}
	if _, err := ParseQuery("q", "rate=0.2:0.4; bogus"); err == nil {
		t.Fatal("bad predicate must fail the whole query")
	}
}

// FuzzParsePredicate ensures arbitrary input never panics and that
// accepted predicates round-trip through String without crashing.
func FuzzParsePredicate(f *testing.F) {
	for _, seed := range []string{"rate=0.2:0.4", "a>1", "b<2", "enc=MPEG2", "x=:", "=", ":", "a=b:c"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePredicate(s)
		if err != nil {
			return
		}
		_ = p.String()
		if p.Op == Range && p.Lo > p.Hi {
			t.Fatalf("accepted inverted range from %q: %+v", s, p)
		}
		if p.Attr == "" {
			t.Fatalf("accepted empty attribute from %q", s)
		}
	})
}
