// Package query defines multi-dimensional range queries and their
// evaluation against both raw records and summaries. A query is a
// conjunction of predicates: numeric range predicates (rate>150Kbps,
// expressed as [lo,hi] intervals) and categorical equality predicates
// (encoding=MPEG2). Summary evaluation is conservative — true means "this
// branch may hold a match", which directs forwarding (paper §III-B).
package query

import (
	"fmt"
	"math"
	"strings"

	"roads/internal/record"
	"roads/internal/summary"
)

// Op is the predicate operator.
type Op uint8

const (
	// Range matches numeric values in [Lo,Hi].
	Range Op = iota
	// Eq matches categorical values equal to Str.
	Eq
)

// Predicate is one dimension of a query.
type Predicate struct {
	Attr string // schema attribute name
	Op   Op
	Lo   float64 // Range only
	Hi   float64 // Range only
	Str  string  // Eq only
}

// NewRange builds a numeric range predicate attr in [lo,hi].
func NewRange(attr string, lo, hi float64) Predicate {
	return Predicate{Attr: attr, Op: Range, Lo: lo, Hi: hi}
}

// NewAbove builds attr > lo, an open-ended range (paper example
// rate>150Kbps); the upper bound is +Inf.
func NewAbove(attr string, lo float64) Predicate {
	return Predicate{Attr: attr, Op: Range, Lo: lo, Hi: math.Inf(1)}
}

// NewBelow builds attr < hi; the lower bound is -Inf.
func NewBelow(attr string, hi float64) Predicate {
	return Predicate{Attr: attr, Op: Range, Lo: math.Inf(-1), Hi: hi}
}

// NewEq builds a categorical equality predicate attr == v.
func NewEq(attr, v string) Predicate {
	return Predicate{Attr: attr, Op: Eq, Str: v}
}

// String renders the predicate, e.g. "rate in [0.25,0.50]" or "enc=MPEG2".
func (p Predicate) String() string {
	if p.Op == Eq {
		return fmt.Sprintf("%s=%s", p.Attr, p.Str)
	}
	return fmt.Sprintf("%s in [%.3g,%.3g]", p.Attr, p.Lo, p.Hi)
}

// Query is a conjunction of predicates, plus the identity of the requester
// (used by owners' voluntary-sharing policies to pick a view).
type Query struct {
	ID        string
	Requester string
	Preds     []Predicate

	// attrIdx caches schema positions after Bind; -1 means unresolved.
	attrIdx []int
}

// New creates a query with the given predicates.
func New(id string, preds ...Predicate) *Query {
	return &Query{ID: id, Preds: preds}
}

// Dims returns the number of predicates (query dimensionality).
func (q *Query) Dims() int { return len(q.Preds) }

// Bind resolves attribute names to schema positions, failing on unknown
// attributes or kind mismatches. Evaluation requires a bound query.
func (q *Query) Bind(s *record.Schema) error {
	q.attrIdx = make([]int, len(q.Preds))
	for i, p := range q.Preds {
		idx, ok := s.Index(p.Attr)
		if !ok {
			return fmt.Errorf("query %s: unknown attribute %q", q.ID, p.Attr)
		}
		kind := s.Attr(idx).Kind
		if p.Op == Range && kind != record.Numeric {
			return fmt.Errorf("query %s: range predicate on non-numeric attribute %q", q.ID, p.Attr)
		}
		if p.Op == Eq && kind != record.Categorical {
			return fmt.Errorf("query %s: equality predicate on non-categorical attribute %q", q.ID, p.Attr)
		}
		q.attrIdx[i] = idx
	}
	return nil
}

// Bound reports whether Bind has succeeded.
func (q *Query) Bound() bool { return q.attrIdx != nil }

// MatchRecord reports whether the record satisfies every predicate. The
// query must be bound.
func (q *Query) MatchRecord(r *record.Record) bool {
	for i, p := range q.Preds {
		idx := q.attrIdx[i]
		switch p.Op {
		case Range:
			v := r.Num(idx)
			if v < p.Lo || v > p.Hi {
				return false
			}
		case Eq:
			if r.Str(idx) != p.Str {
				return false
			}
		}
	}
	return true
}

// MatchSummary reports whether the summary admits a possible match on every
// predicate. It is the forwarding test: only branches whose summaries match
// all queried dimensions are searched further — this is how ROADS uses the
// full dimensionality to confine search scope (Fig. 6).
func (q *Query) MatchSummary(sum *summary.Summary) bool {
	if sum == nil || sum.Empty() {
		return false
	}
	for i, p := range q.Preds {
		idx := q.attrIdx[i]
		switch p.Op {
		case Range:
			if !sum.MatchRange(idx, p.Lo, p.Hi) {
				return false
			}
		case Eq:
			if !sum.MatchEq(idx, p.Str) {
				return false
			}
		}
	}
	return true
}

// EstimateMatches estimates the number of matching records under the
// summary assuming attribute independence: product of per-dimension
// selectivities times the record count. Used for load-aware forwarding and
// diagnostics; not part of the core protocol.
func (q *Query) EstimateMatches(sum *summary.Summary) float64 {
	if sum == nil || sum.Empty() {
		return 0
	}
	est := float64(sum.Records)
	for i, p := range q.Preds {
		idx := q.attrIdx[i]
		if p.Op != Range {
			continue
		}
		h := sum.Hists[idx]
		if h == nil || h.Total == 0 {
			return 0
		}
		est *= h.CountRange(p.Lo, p.Hi) / float64(h.Total)
	}
	return est
}

// Filter returns the subset of records matching the query.
func (q *Query) Filter(recs []*record.Record) []*record.Record {
	var out []*record.Record
	for _, r := range recs {
		if q.MatchRecord(r) {
			out = append(out, r)
		}
	}
	return out
}

// SizeBytes is the wire size of the query message used by overhead
// accounting: a 24-byte header plus per-predicate cost (attribute name, two
// float bounds or the string value). Query messages therefore grow with
// dimensionality, which drives the late-rising tail of Fig. 7.
func (q *Query) SizeBytes() int {
	size := 24
	for _, p := range q.Preds {
		size += len(p.Attr)
		if p.Op == Range {
			size += 16
		} else {
			size += len(p.Str)
		}
	}
	return size
}

// Clone returns a deep copy of the query (bound state included).
func (q *Query) Clone() *Query {
	c := &Query{ID: q.ID, Requester: q.Requester, Preds: make([]Predicate, len(q.Preds))}
	copy(c.Preds, q.Preds)
	if q.attrIdx != nil {
		c.attrIdx = make([]int, len(q.attrIdx))
		copy(c.attrIdx, q.attrIdx)
	}
	return c
}

// String renders the query as "p1 AND p2 AND ...".
func (q *Query) String() string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}
