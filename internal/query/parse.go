package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParsePredicate parses the textual predicate syntax used by the CLI tools
// and configuration files:
//
//	attr=lo:hi    numeric range (either bound may be empty for open-ended)
//	attr>v        numeric lower bound
//	attr<v        numeric upper bound
//	attr=value    categorical equality
//
// Examples: "rate=0.2:0.4", "rate>0.15", "cpu<0.9", "encoding=MPEG2".
func ParsePredicate(s string) (Predicate, error) {
	if i := strings.IndexByte(s, '>'); i > 0 {
		lo, err := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
		if err != nil {
			return Predicate{}, fmt.Errorf("query: predicate %q: bad bound: %w", s, err)
		}
		return NewAbove(strings.TrimSpace(s[:i]), lo), nil
	}
	if i := strings.IndexByte(s, '<'); i > 0 {
		hi, err := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
		if err != nil {
			return Predicate{}, fmt.Errorf("query: predicate %q: bad bound: %w", s, err)
		}
		return NewBelow(strings.TrimSpace(s[:i]), hi), nil
	}
	eq := strings.IndexByte(s, '=')
	if eq < 1 {
		return Predicate{}, fmt.Errorf("query: predicate %q: want attr=lo:hi, attr=value, attr>v or attr<v", s)
	}
	attr := strings.TrimSpace(s[:eq])
	val := strings.TrimSpace(s[eq+1:])
	if attr == "" {
		return Predicate{}, fmt.Errorf("query: predicate %q: empty attribute", s)
	}
	if colon := strings.IndexByte(val, ':'); colon >= 0 {
		loStr, hiStr := strings.TrimSpace(val[:colon]), strings.TrimSpace(val[colon+1:])
		p := NewRange(attr, 0, 0)
		if loStr == "" {
			p.Lo = negInf
		} else {
			lo, err := strconv.ParseFloat(loStr, 64)
			if err != nil {
				return Predicate{}, fmt.Errorf("query: predicate %q: bad lower bound: %w", s, err)
			}
			p.Lo = lo
		}
		if hiStr == "" {
			p.Hi = posInf
		} else {
			hi, err := strconv.ParseFloat(hiStr, 64)
			if err != nil {
				return Predicate{}, fmt.Errorf("query: predicate %q: bad upper bound: %w", s, err)
			}
			p.Hi = hi
		}
		if p.Lo > p.Hi {
			return Predicate{}, fmt.Errorf("query: predicate %q: empty range [%g,%g]", s, p.Lo, p.Hi)
		}
		return p, nil
	}
	if val == "" {
		return Predicate{}, fmt.Errorf("query: predicate %q: empty value", s)
	}
	return NewEq(attr, val), nil
}

// ParseQuery parses a conjunction of ;-separated predicates into a query.
func ParseQuery(id, s string) (*Query, error) {
	parts := strings.Split(s, ";")
	preds := make([]Predicate, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := ParsePredicate(part)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("query: %q contains no predicates", s)
	}
	return New(id, preds...), nil
}

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)
