package transport

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"roads/internal/wire"
)

// settleGoroutines polls until the goroutine count returns to within slack
// of base, failing the test if it never does — a coarse but dependency-free
// leak check.
func settleGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s leaked goroutines: %d running, started with %d", what, n, base)
}

// TestChanCallContextStalledHandler is the regression test for the
// unbounded Chan.Call wait: an in-process peer that never replies used to
// pin the calling goroutine forever. With a context the caller must come
// back by the deadline, and the abandoned call must not leak goroutines
// once the handler is released.
func TestChanCallContextStalledHandler(t *testing.T) {
	tr := NewChan()
	release := make(chan struct{})
	if _, err := tr.Listen("stall", func(m *wire.Message) *wire.Message {
		<-release
		return &wire.Message{Kind: wire.KindAck, From: "stall"}
	}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.CallContext(ctx, "stall", &wire.Message{Kind: wire.KindAck, From: "c"})
	if err == nil {
		t.Fatal("call against a stalled handler must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("caller stayed pinned %v; want release near the 50ms deadline", el)
	}

	close(release) // let the abandoned handler finish
	settleGoroutines(t, base, "Chan stalled call")
}

// TestChanCallContextCancel checks explicit cancellation (not just
// deadline expiry) releases the caller.
func TestChanCallContextCancel(t *testing.T) {
	tr := NewChan()
	release := make(chan struct{})
	defer close(release)
	if _, err := tr.Listen("stall", func(m *wire.Message) *wire.Message {
		<-release
		return &wire.Message{Kind: wire.KindAck}
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := tr.CallContext(ctx, "stall", &wire.Message{Kind: wire.KindAck})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not release the caller")
	}
}

// TestChanCallBackgroundStillInline ensures the no-deadline path kept its
// synchronous semantics: the handler runs on the caller's goroutine.
func TestChanCallBackgroundStillInline(t *testing.T) {
	tr := NewChan()
	var handlerG int
	if _, err := tr.Listen("a", func(m *wire.Message) *wire.Message {
		handlerG = runtime.NumGoroutine()
		return &wire.Message{Kind: wire.KindAck, From: "a"}
	}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	if _, err := tr.Call("a", &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatal(err)
	}
	if handlerG > before+1 {
		t.Fatalf("background Call spawned goroutines: %d during vs %d before", handlerG, before)
	}
}

// TestTCPCallContextStalledHandler: a TCP peer that accepts the request
// but never replies must not hold the caller past its deadline, on the
// pooled path.
func TestTCPCallContextStalledHandler(t *testing.T) {
	srv := NewTCP()
	release := make(chan struct{})
	addr := freeAddr(t)
	closer, err := srv.Listen(addr, func(m *wire.Message) *wire.Message {
		<-release
		return &wire.Message{Kind: wire.KindAck, From: "stall"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	defer close(release)

	tr := NewTCP()
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, cerr := tr.CallContext(ctx, addr, &wire.Message{Kind: wire.KindAck, From: "c"})
	if cerr == nil {
		t.Fatal("call against a stalled TCP handler must fail")
	}
	if !errors.Is(cerr, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", cerr)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("caller stayed pinned %v; want release near the 100ms deadline", el)
	}
}

// TestTCPCancelDoesNotPoisonConnection: abandoning one call must leave the
// pooled connection healthy — the late reply is discarded and subsequent
// calls on the same connection succeed without a redial.
func TestTCPCancelDoesNotPoisonConnection(t *testing.T) {
	srv := NewTCP()
	slow := make(chan struct{})
	addr := freeAddr(t)
	closer, err := srv.Listen(addr, func(m *wire.Message) *wire.Message {
		if m.Kind == wire.KindHeartbeat {
			<-slow // only heartbeats stall
		}
		return &wire.Message{Kind: wire.KindAck, From: "srv"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	tr := NewTCP()
	defer tr.Close()
	// Prime the pool.
	if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatal(err)
	}
	dialsBefore := tr.Stats().Dials

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, cerr := tr.CallContext(ctx, addr, &wire.Message{Kind: wire.KindHeartbeat})
	cancel()
	if cerr == nil {
		t.Fatal("stalled call must time out")
	}
	close(slow) // the late reply now flows; it must be discarded harmlessly

	for i := 0; i < 5; i++ {
		if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
			t.Fatalf("call %d after abandoned call failed: %v", i, err)
		}
	}
	if d := tr.Stats().Dials; d != dialsBefore {
		t.Fatalf("abandoned call poisoned the pool: %d dials, want %d", d, dialsBefore)
	}
}
