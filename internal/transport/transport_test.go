package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"roads/internal/wire"
)

func echoHandler(id string) Handler {
	return func(m *wire.Message) *wire.Message {
		return &wire.Message{Kind: wire.KindAck, From: id, Addr: m.Addr}
	}
}

func TestChanCallRoundTrip(t *testing.T) {
	tr := NewChan()
	closer, err := tr.Listen("a", echoHandler("srv-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	rep, err := tr.Call("a", &wire.Message{Kind: wire.KindHeartbeat, From: "client"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != wire.KindAck || rep.From != "srv-a" {
		t.Fatalf("unexpected reply %+v", rep)
	}
	if tr.BytesMoved() <= 0 {
		t.Fatal("bytes must be counted")
	}
}

func TestChanNoServer(t *testing.T) {
	tr := NewChan()
	if _, err := tr.Call("ghost", &wire.Message{Kind: wire.KindAck}); err == nil {
		t.Fatal("calling an unregistered address must fail")
	}
}

func TestChanDuplicateListen(t *testing.T) {
	tr := NewChan()
	c1, err := tr.Listen("a", echoHandler("1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("a", echoHandler("2")); err == nil {
		t.Fatal("duplicate listen must fail")
	}
	c1.Close()
	c2, err := tr.Listen("a", echoHandler("3"))
	if err != nil {
		t.Fatalf("listen after close must succeed: %v", err)
	}
	c2.Close()
}

func TestChanNoSharedPointers(t *testing.T) {
	tr := NewChan()
	var received *wire.Message
	closer, _ := tr.Listen("a", func(m *wire.Message) *wire.Message {
		received = m
		return &wire.Message{Kind: wire.KindAck}
	})
	defer closer.Close()
	req := &wire.Message{Kind: wire.KindJoin, Join: &wire.Join{ID: "x"}}
	if _, err := tr.Call("a", req); err != nil {
		t.Fatal(err)
	}
	if received == req || received.Join == req.Join {
		t.Fatal("in-process transport must not share pointers (must round-trip encoding)")
	}
}

func TestChanLatencyInjection(t *testing.T) {
	tr := NewChan()
	tr.Latency = func(from, to string) time.Duration { return 10 * time.Millisecond }
	closer, _ := tr.Listen("a", echoHandler("srv"))
	defer closer.Close()
	start := time.Now()
	if _, err := tr.Call("a", &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("round trip %v; want >= 20ms with injected latency", elapsed)
	}
}

func TestChanConcurrentCalls(t *testing.T) {
	tr := NewChan()
	closer, _ := tr.Listen("a", echoHandler("srv"))
	defer closer.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := tr.Call("a", &wire.Message{Kind: wire.KindAck})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tr := NewTCP()
	addr := freeAddr(t)
	closer, err := tr.Listen(addr, echoHandler("tcp-srv"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	rep, err := tr.Call(addr, &wire.Message{Kind: wire.KindHeartbeat, From: "client"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != wire.KindAck || rep.From != "tcp-srv" {
		t.Fatalf("unexpected reply %+v", rep)
	}
}

func TestTCPConcurrent(t *testing.T) {
	tr := NewTCP()
	addr := freeAddr(t)
	closer, err := tr.Listen(addr, echoHandler("tcp-srv"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPDialFailure(t *testing.T) {
	tr := &TCP{DialTimeout: 200 * time.Millisecond}
	if _, err := tr.Call("127.0.0.1:1", &wire.Message{Kind: wire.KindAck}); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

func TestTCPListenerClose(t *testing.T) {
	tr := NewTCP()
	addr := freeAddr(t)
	closer, err := tr.Listen(addr, echoHandler("srv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	tr2 := &TCP{DialTimeout: 200 * time.Millisecond, CallTimeout: 200 * time.Millisecond}
	if _, err := tr2.Call(addr, &wire.Message{Kind: wire.KindAck}); err == nil {
		t.Fatal("call after close must fail")
	}
}

// freeAddr grabs an available loopback port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestFrameLimit(t *testing.T) {
	// A frame header claiming > maxFrame must be rejected.
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	go func() {
		hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
		cli.Write(hdr)
	}()
	if _, err := readFrame(srv); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

func TestChanAddrs(t *testing.T) {
	tr := NewChan()
	for i := 0; i < 3; i++ {
		if _, err := tr.Listen(fmt.Sprintf("a%d", i), echoHandler("x")); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Addrs()) != 3 {
		t.Fatalf("Addrs = %v", tr.Addrs())
	}
}
