package transport

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"roads/internal/wire"
)

// TestTCPPoolReuse verifies that sequential calls to one peer share a
// single pooled connection and that the counters record it.
func TestTCPPoolReuse(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	closer, err := tr.Listen(addr, echoHandler("srv"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Dials != 1 {
		t.Fatalf("dials = %d; want 1 (connection must be pooled)", st.Dials)
	}
	if st.Reuses != calls-1 {
		t.Fatalf("reuses = %d; want %d", st.Reuses, calls-1)
	}
	if st.Calls != calls {
		t.Fatalf("calls = %d; want %d", st.Calls, calls)
	}
	if st.BytesSent == 0 || st.BytesRecv == 0 {
		t.Fatalf("bytes not counted: %+v", st)
	}
	if st.Latency.N() != calls {
		t.Fatalf("latency histogram holds %d observations; want %d", st.Latency.N(), calls)
	}
	if p := st.Latency.Percentile(0.5); p <= 0 {
		t.Fatalf("p50 = %v; want > 0", p)
	}
}

// TestTCPMultiplexedConcurrency floods one peer with concurrent calls:
// they must multiplex over at most MaxConnsPerPeer connections and all
// succeed.
func TestTCPMultiplexedConcurrency(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	slow := func(m *wire.Message) *wire.Message {
		time.Sleep(2 * time.Millisecond) // force overlap so calls share conns
		return &wire.Message{Kind: wire.KindAck, From: "srv"}
	}
	closer, err := tr.Listen(addr, slow)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := tr.Stats(); st.Dials > uint64(tr.maxConnsPerPeer()) {
		t.Fatalf("dials = %d; want <= %d (multiplexing must bound the pool)", st.Dials, tr.maxConnsPerPeer())
	}
}

// TestTCPStaleConnRetry kills the pooled connection out from under the
// transport; the next call must notice the stale connection and succeed by
// retrying once on a fresh dial.
func TestTCPStaleConnRetry(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	closer, err := tr.Listen(addr, echoHandler("srv"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatal(err)
	}
	// Sever the pooled connection at the socket, simulating a peer that
	// dropped it (restart, idle reap on the remote side).
	tr.mu.Lock()
	if tr.pool[addr] == nil || len(tr.pool[addr].conns) != 1 {
		tr.mu.Unlock()
		t.Fatal("expected 1 pooled conn")
	}
	pc := tr.pool[addr].conns[0]
	tr.mu.Unlock()
	pc.conn.Close()

	if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatalf("call after stale conn must retry and succeed: %v", err)
	}
	if st := tr.Stats(); st.Retries == 0 && st.Dials < 2 {
		t.Fatalf("expected a retry or a fresh dial, got %+v", st)
	}
}

// TestTCPLegacyInterop drives a pooled (v2) listener with a NoPool (v1)
// caller and vice versa: the listener sniffs the frame version, so old and
// new peers interoperate.
func TestTCPLegacyInterop(t *testing.T) {
	srvTr := NewTCP()
	defer srvTr.Close()
	addr := freeAddr(t)
	closer, err := srvTr.Listen(addr, echoHandler("v2-srv"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	legacy := &TCP{NoPool: true}
	rep, err := legacy.Call(addr, &wire.Message{Kind: wire.KindHeartbeat, From: "v1-client"})
	if err != nil {
		t.Fatalf("v1 caller against v2 listener: %v", err)
	}
	if rep.Kind != wire.KindAck || rep.From != "v2-srv" {
		t.Fatalf("unexpected reply %+v", rep)
	}
	if st := legacy.Stats(); st.Dials != 1 || st.Calls != 1 {
		t.Fatalf("legacy stats = %+v; want 1 dial, 1 call", st)
	}
}

// TestWriteFrameOversize verifies the sender rejects oversize frames in
// both framing versions instead of writing them and corrupting the stream.
func TestWriteFrameOversize(t *testing.T) {
	big := make([]byte, maxFrame+1)
	var buf bytes.Buffer
	if err := writeFrame(&buf, big); err == nil {
		t.Fatal("v1 writer must reject an oversize frame")
	} else if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("unexpected error: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("writer put %d bytes on the wire before failing", buf.Len())
	}
	if err := writeFrameV2(&buf, 1, 0, big); err == nil {
		t.Fatal("v2 writer must reject an oversize frame")
	}
	if buf.Len() != 0 {
		t.Fatalf("v2 writer put %d bytes on the wire before failing", buf.Len())
	}
}

// TestReadFrameV2Oversize is the receiver direction: a v2 header claiming
// more than maxFrame must be rejected before any allocation.
func TestReadFrameV2Oversize(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, headerV2Len)
	hdr[0] = frameMagic
	hdr[1] = frameVersion
	hdr[12], hdr[13], hdr[14], hdr[15] = 0xFF, 0xFF, 0xFF, 0xFF
	buf.Write(hdr)
	if _, _, _, err := readFrameV2(&buf); err == nil {
		t.Fatal("oversize v2 frame must be rejected")
	}
}

// TestReadFrameV2BadMagic rejects streams that are neither v1 nor v2.
func TestReadFrameV2BadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(bytes.Repeat([]byte{'X'}, headerV2Len))
	if _, _, _, err := readFrameV2(&buf); err == nil {
		t.Fatal("bad magic must be rejected")
	}
}

// TestTCPIdleReap shrinks the idle window and checks the reaper closes the
// pooled connection, after which a fresh call dials anew.
func TestTCPIdleReap(t *testing.T) {
	tr := &TCP{IdleTimeout: 50 * time.Millisecond}
	defer tr.Close()
	addr := freeAddr(t)
	closer, err := tr.Listen(addr, echoHandler("srv"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		tr.mu.Lock()
		n := len(tr.pool)
		tr.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection was never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatalf("call after reap must redial: %v", err)
	}
	if st := tr.Stats(); st.Dials != 2 {
		t.Fatalf("dials = %d; want 2 (one before, one after the reap)", st.Dials)
	}
}

// TestTCPCallOversizeMessage rejects a message that encodes past the frame
// limit before any bytes hit the network.
func TestTCPCallOversizeMessage(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	big := &wire.Message{Kind: wire.KindError, Error: strings.Repeat("x", maxFrame+1)}
	if _, err := tr.Call("127.0.0.1:1", big); err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("oversize message must fail at the writer, got %v", err)
	}
}

// TestTCPListenerCloseUnblocksSessions ensures Close tears down live v2
// sessions (tracked conns are closed), so Close never hangs on an idle
// pooled peer.
func TestTCPListenerCloseUnblocksSessions(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	addr := freeAddr(t)
	closer, err := tr.Listen(addr, echoHandler("srv"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(addr, &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		closer.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle multiplexed session")
	}
}

// TestChanStats exercises the in-process transport's counters so both
// implementations satisfy Statser equivalently.
func TestChanStats(t *testing.T) {
	tr := NewChan()
	closer, err := tr.Listen("a", echoHandler("srv"))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, err := tr.Call("a", &wire.Message{Kind: wire.KindAck}); err != nil {
		t.Fatal(err)
	}
	_, _ = tr.Call("ghost", &wire.Message{Kind: wire.KindAck})
	st := tr.Stats()
	if st.Calls != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v; want 1 call, 1 error", st)
	}
	if st.BytesSent == 0 || st.BytesRecv == 0 {
		t.Fatalf("bytes not counted: %+v", st)
	}
	if tr.BytesMoved() != int64(st.BytesSent+st.BytesRecv) {
		t.Fatal("BytesMoved must equal sent+received")
	}
}

// TestLatencyHistPercentile pins the histogram quantile behaviour.
func TestLatencyHistPercentile(t *testing.T) {
	var c counters
	for i := 0; i < 99; i++ {
		c.observe(200 * time.Microsecond)
	}
	c.observe(2 * time.Second)
	h := c.snapshot().Latency
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if p := h.Percentile(0.50); p != 250*time.Microsecond {
		t.Fatalf("p50 = %v; want 250µs bucket bound", p)
	}
	if p := h.Percentile(0.999); p < time.Second {
		t.Fatalf("p99.9 = %v; want the multi-second bucket", p)
	}
	if (LatencyHist{}).Percentile(0.5) != 0 {
		t.Fatal("empty histogram must report zero")
	}
}
