package transport

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"roads/internal/wire"
)

// benchPeers starts n echo servers on their own transport instance (so the
// client transport's counters measure only the calling side) and returns
// their addresses.
func benchPeers(b *testing.B, n int) []string {
	b.Helper()
	srv := NewTCP()
	addrs := make([]string, n)
	for i := range addrs {
		addr := freeAddrB(b)
		closer, err := srv.Listen(addr, echoHandler(fmt.Sprintf("srv%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { closer.Close() })
		addrs[i] = addr
	}
	b.Cleanup(func() { srv.Close() })
	return addrs
}

func freeAddrB(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// BenchmarkTCPCall compares the legacy dial-per-call baseline against the
// pooled multiplexed path across a 16-peer cluster, round-robining the
// destination like overlay maintenance traffic does. The reported
// conns/op and bytes/op come from the transport's own counters.
func BenchmarkTCPCall(b *testing.B) {
	const peers = 16
	for _, mode := range []struct {
		name   string
		noPool bool
	}{
		{"perdial", true},
		{"pooled", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			addrs := benchPeers(b, peers)
			client := &TCP{NoPool: mode.noPool}
			defer client.Close()
			msg := &wire.Message{Kind: wire.KindHeartbeat, From: "bench"}
			// Warm the pool so dials amortize like a long-lived server.
			for _, a := range addrs {
				if _, err := client.Call(a, msg); err != nil {
					b.Fatal(err)
				}
			}
			start := client.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Call(addrs[i%peers], msg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := client.Stats()
			b.ReportMetric(float64(st.Dials-start.Dials)/float64(b.N), "conns/op")
			b.ReportMetric(float64(st.BytesSent-start.BytesSent+st.BytesRecv-start.BytesRecv)/float64(b.N), "wirebytes/op")
		})
	}
}

// BenchmarkTCPCallParallel is the same comparison under concurrency: the
// pooled path multiplexes over a few sockets per peer, the baseline opens
// one per in-flight call.
func BenchmarkTCPCallParallel(b *testing.B) {
	const peers = 16
	for _, mode := range []struct {
		name   string
		noPool bool
	}{
		{"perdial", true},
		{"pooled", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			addrs := benchPeers(b, peers)
			client := &TCP{NoPool: mode.noPool, MaxConnsPerPeer: 4}
			defer client.Close()
			msg := &wire.Message{Kind: wire.KindHeartbeat, From: "bench"}
			for _, a := range addrs {
				if _, err := client.Call(a, msg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var i atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := i.Add(1)
					if _, err := client.Call(addrs[int(n)%peers], msg); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
