package transport

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/obs"
	"roads/internal/wire"
)

// FaultAction is what a matched rule does to a call.
type FaultAction uint8

const (
	// FaultDrop black-holes the request: the call blocks until the
	// caller's context expires (bounded by MaxBlackhole) and then fails.
	// The peer never sees the message, so a From/To pair gives a one-way
	// partition: A→B traffic vanishes while B→A flows normally.
	FaultDrop FaultAction = iota + 1
	// FaultDelay holds the call for Delay, then forwards it normally —
	// enough to push replies past a caller's deadline.
	FaultDelay
	// FaultError fails the call immediately with Err, modelling a peer
	// that resets connections instead of timing them out.
	FaultError
)

func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultError:
		return "error"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// FaultRule declares one injected failure. Zero-valued match fields are
// wildcards, so the empty rule matches every call.
type FaultRule struct {
	// From matches the sender against the message's From or Addr field
	// ("" = any sender). To matches the destination address ("" = any).
	From, To string
	// FromIn/ToIn are set-valued variants of From/To: the sender (resp.
	// destination) must be one of the listed addresses/IDs. Nil means any.
	// A two-sided rule — FromIn one partition side, ToIn the other —
	// severs a whole server set from the rest in a single rule, which is
	// how PartitionSets models a network partition.
	FromIn, ToIn []string
	// Kind restricts the rule to one message kind (0 = all kinds).
	Kind wire.Kind
	// Action selects the fault; Delay and Err parameterize FaultDelay and
	// FaultError respectively.
	Action FaultAction
	Delay  time.Duration
	Err    string
	// P is the probability the rule fires on a matched call, drawn from
	// the transport's seeded RNG (0 means always — the common case).
	P float64
	// OnCalls/OffCalls flap the rule deterministically: counting matched
	// calls, the rule is live for the first OnCalls of every
	// OnCalls+OffCalls cycle and dormant for the rest. Zero OnCalls means
	// always live. Counting calls instead of wall time keeps chaos tests
	// replayable.
	OnCalls, OffCalls int
}

func (r *FaultRule) matches(addr string, req *wire.Message) bool {
	if r.To != "" && r.To != addr {
		return false
	}
	if r.From != "" && r.From != req.From && r.From != req.Addr {
		return false
	}
	if len(r.ToIn) > 0 && !containsAddr(r.ToIn, addr, "") {
		return false
	}
	if len(r.FromIn) > 0 && !containsAddr(r.FromIn, req.From, req.Addr) {
		return false
	}
	if r.Kind != 0 && r.Kind != req.Kind {
		return false
	}
	return true
}

// containsAddr reports whether set holds a (or the alternate b, when
// non-empty) — the set-membership test behind FromIn/ToIn.
func containsAddr(set []string, a, b string) bool {
	for _, s := range set {
		if s == a || (b != "" && s == b) {
			return true
		}
	}
	return false
}

// Partition returns a rule that black-holes all traffic from→to. Combine
// two (swapped) for a full partition; one alone is a one-way partition.
func Partition(from, to string) FaultRule {
	return FaultRule{From: from, To: to, Action: FaultDrop}
}

// PartitionSets returns the two drop rules that sever server set a from
// server set b in both directions — a full network partition between the
// two sides. Traffic within each side still flows. Heal by removing the
// rules (SetRules/ClearRules).
func PartitionSets(a, b []string) []FaultRule {
	return []FaultRule{
		{FromIn: a, ToIn: b, Action: FaultDrop},
		{FromIn: b, ToIn: a, Action: FaultDrop},
	}
}

// Down returns a rule that black-holes all traffic to addr, simulating an
// unreachable host without tearing its listener down.
func Down(addr string) FaultRule {
	return FaultRule{To: addr, Action: FaultDrop}
}

// Faulty wraps another Transport and injects failures per a declarative
// rule table. All randomness comes from one seeded RNG and flap windows
// count calls rather than wall time, so a chaos run replays exactly given
// the same seed and call order. Listen passes straight through — faults
// apply only to outgoing calls, mirroring how real packet loss is felt by
// the sender.
type Faulty struct {
	inner Transport
	// MaxBlackhole bounds how long a dropped call blocks when the
	// caller's context carries no deadline (default 2s). Keeps Call —
	// which has no context — from hanging forever on a drop rule.
	MaxBlackhole time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	rules []FaultRule
	hits  []int // matched-call counts, parallel to rules, for flapping

	dropped, delayed, errored atomic.Uint64
}

// NewFaulty wraps inner with an empty rule table (all calls pass through)
// and an RNG seeded for deterministic replay.
func NewFaulty(inner Transport, seed int64) *Faulty {
	return &Faulty{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetRules replaces the rule table (and resets flap counters).
func (f *Faulty) SetRules(rules ...FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append([]FaultRule(nil), rules...)
	f.hits = make([]int, len(f.rules))
}

// AddRule appends one rule to the table.
func (f *Faulty) AddRule(r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
	f.hits = append(f.hits, 0)
}

// ClearRules drops every rule; the transport becomes a passthrough.
func (f *Faulty) ClearRules() { f.SetRules() }

// Injected reports how many faults each action has fired, for test
// assertions that the chaos actually happened.
func (f *Faulty) Injected() (dropped, delayed, errored uint64) {
	return f.dropped.Load(), f.delayed.Load(), f.errored.Load()
}

// Listen implements Transport by delegating to the wrapped transport.
func (f *Faulty) Listen(addr string, h Handler) (io.Closer, error) {
	return f.inner.Listen(addr, h)
}

// Stats implements Statser when the wrapped transport does.
func (f *Faulty) Stats() Stats {
	if s, ok := f.inner.(Statser); ok {
		return s.Stats()
	}
	return Stats{}
}

// RegisterMetrics implements MetricsRegisterer by forwarding to the
// wrapped transport when it supports registration; otherwise a no-op.
func (f *Faulty) RegisterMetrics(reg *obs.Registry) {
	if m, ok := f.inner.(MetricsRegisterer); ok {
		m.RegisterMetrics(reg)
	}
}

// Call implements Transport.
func (f *Faulty) Call(addr string, req *wire.Message) (*wire.Message, error) {
	return f.CallContext(context.Background(), addr, req)
}

// CallContext implements Transport: the first live matching rule fires,
// then the call proceeds (delay) or fails (drop, error).
func (f *Faulty) CallContext(ctx context.Context, addr string, req *wire.Message) (*wire.Message, error) {
	rule, ok := f.pick(addr, req)
	if !ok {
		return f.inner.CallContext(ctx, addr, req)
	}
	switch rule.Action {
	case FaultDelay:
		f.delayed.Add(1)
		if err := sleepCtx(ctx, rule.Delay); err != nil {
			return nil, fmt.Errorf("transport: call to %s: %w", addr, err)
		}
		return f.inner.CallContext(ctx, addr, req)
	case FaultError:
		f.errored.Add(1)
		msg := rule.Err
		if msg == "" {
			msg = "injected fault"
		}
		return nil, fmt.Errorf("transport: call to %s: %s", addr, msg)
	default: // FaultDrop
		f.dropped.Add(1)
		hole := f.MaxBlackhole
		if hole <= 0 {
			hole = 2 * time.Second
		}
		if err := sleepCtx(ctx, hole); err != nil {
			return nil, fmt.Errorf("transport: call to %s: %w", addr, err)
		}
		return nil, fmt.Errorf("transport: call to %s dropped (injected)", addr)
	}
}

// pick returns the first matching rule that is inside its flap window and
// passes its probability draw. Flap counters advance on every match (even
// ones the probability draw skips), keeping windows deterministic.
func (f *Faulty) pick(addr string, req *wire.Message) (FaultRule, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if !r.matches(addr, req) {
			continue
		}
		pos := f.hits[i]
		f.hits[i]++
		if r.OnCalls > 0 && pos%(r.OnCalls+r.OffCalls) >= r.OnCalls {
			continue // dormant phase of the flap cycle
		}
		if r.P > 0 && f.rng.Float64() >= r.P {
			continue
		}
		return *r, true
	}
	return FaultRule{}, false
}
