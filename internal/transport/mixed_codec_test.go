package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"roads/internal/wire"
)

// mixedFreeAddr grabs an ephemeral listen address.
func mixedFreeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func mixedEchoHandler(m *wire.Message) *wire.Message {
	return &wire.Message{Kind: wire.KindAck, From: "server", Addr: m.From}
}

// TestMixedCodecPeersOneListener drives one binary-codec TCP listener with
// a legacy gob dialer and a binary dialer concurrently: both must complete
// calls, proving the codec negotiation needs no version handshake.
func TestMixedCodecPeersOneListener(t *testing.T) {
	addr := mixedFreeAddr(t)
	server := NewTCP()
	closer, err := server.Listen(addr, mixedEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	gobPeer := NewTCP()
	gobPeer.UseGob = true
	defer gobPeer.Close()
	binPeer := NewTCP()
	defer binPeer.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		for _, tr := range []*TCP{gobPeer, binPeer} {
			wg.Add(1)
			go func(tr *TCP) {
				defer wg.Done()
				rep, err := tr.Call(addr, &wire.Message{Kind: wire.KindStatus, From: "peer"})
				if err != nil {
					errs <- err
					return
				}
				if rep.Kind != wire.KindAck || rep.Addr != "peer" {
					t.Errorf("unexpected reply: %+v", rep)
				}
			}(tr)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLegacyGobPeerGetsGobReply speaks the oldest wire dialect a peer can:
// a raw v1 frame carrying a gob payload, one exchange per connection, with
// no knowledge that a binary codec exists. The listener must answer with a
// gob payload (a binary reply would be undecodable for such a peer).
func TestLegacyGobPeerGetsGobReply(t *testing.T) {
	addr := mixedFreeAddr(t)
	server := NewTCP()
	closer, err := server.Listen(addr, mixedEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	req, err := wire.EncodeGob(&wire.Message{Kind: wire.KindStatus, From: "ancient"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	rep, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if wire.IsBinary(rep) {
		t.Fatal("listener answered a gob request with a binary payload; legacy peers cannot decode it")
	}
	msg, err := wire.Decode(rep)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != wire.KindAck || msg.Addr != "ancient" {
		t.Fatalf("unexpected reply: %+v", msg)
	}
}

// TestBinaryPeerGetsBinaryReply is the converse: a binary request must be
// answered in binary, not expensively re-gobbed.
func TestBinaryPeerGetsBinaryReply(t *testing.T) {
	addr := mixedFreeAddr(t)
	server := NewTCP()
	closer, err := server.Listen(addr, mixedEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	req, err := wire.Encode(&wire.Message{Kind: wire.KindStatus, From: "modern"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrameV2(conn, 1, 0, req); err != nil {
		t.Fatal(err)
	}
	id, flags, rep, err := readFrameV2(conn)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || flags&flagResponse == 0 {
		t.Fatalf("bad response frame: id=%d flags=%x", id, flags)
	}
	if !wire.IsBinary(rep) {
		t.Fatal("listener answered a binary request with a gob payload")
	}
}
