package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"roads/internal/wire"
)

// faultyFixture wires a Faulty wrapper around a Chan transport with two
// listeners, "a" and "b", that ack with their own name.
func faultyFixture(t *testing.T, seed int64) *Faulty {
	t.Helper()
	inner := NewChan()
	for _, id := range []string{"a", "b"} {
		id := id
		if _, err := inner.Listen(id, func(m *wire.Message) *wire.Message {
			return &wire.Message{Kind: wire.KindAck, From: id}
		}); err != nil {
			t.Fatal(err)
		}
	}
	return NewFaulty(inner, seed)
}

func TestFaultyPassthrough(t *testing.T) {
	f := faultyFixture(t, 1)
	rep, err := f.Call("a", &wire.Message{Kind: wire.KindAck, From: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != "a" {
		t.Fatalf("reply from %q, want a", rep.From)
	}
	if d, dl, e := f.Injected(); d+dl+e != 0 {
		t.Fatalf("passthrough injected faults: drop=%d delay=%d err=%d", d, dl, e)
	}
}

// TestFaultyOneWayPartition: a Partition(from,to) rule drops only that
// direction; reverse traffic and other senders are untouched.
func TestFaultyOneWayPartition(t *testing.T) {
	f := faultyFixture(t, 1)
	f.MaxBlackhole = 20 * time.Millisecond
	f.SetRules(Partition("a", "b"))

	// a → b: dropped.
	_, err := f.Call("b", &wire.Message{Kind: wire.KindAck, From: "a"})
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("a→b should drop, got %v", err)
	}
	// b → a: flows.
	if _, err := f.Call("a", &wire.Message{Kind: wire.KindAck, From: "b"}); err != nil {
		t.Fatalf("b→a should flow: %v", err)
	}
	// other → b: flows (rule is pair-specific).
	if _, err := f.Call("b", &wire.Message{Kind: wire.KindAck, From: "c"}); err != nil {
		t.Fatalf("c→b should flow: %v", err)
	}
	if d, _, _ := f.Injected(); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
}

// TestFaultyDropBoundedByContext: a dropped call blocks only until the
// caller's deadline, not the full MaxBlackhole.
func TestFaultyDropBoundedByContext(t *testing.T) {
	f := faultyFixture(t, 1)
	f.MaxBlackhole = 30 * time.Second // must not matter
	f.SetRules(Down("a"))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.CallContext(ctx, "a", &wire.Message{Kind: wire.KindAck, From: "x"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("drop held the caller %v past its 50ms deadline", el)
	}
}

func TestFaultyDelayElapses(t *testing.T) {
	f := faultyFixture(t, 1)
	f.SetRules(FaultRule{To: "a", Action: FaultDelay, Delay: 60 * time.Millisecond})
	start := time.Now()
	rep, err := f.Call("a", &wire.Message{Kind: wire.KindAck, From: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != "a" {
		t.Fatalf("delayed call must still reach the peer, got reply from %q", rep.From)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("call returned in %v, before the 60ms injected delay", el)
	}
	if _, d, _ := f.Injected(); d != 1 {
		t.Fatalf("delayed = %d, want 1", d)
	}
}

func TestFaultyError(t *testing.T) {
	f := faultyFixture(t, 1)
	f.SetRules(FaultRule{To: "a", Kind: wire.KindQuery, Action: FaultError, Err: "connection reset"})
	// Non-matching kind passes.
	if _, err := f.Call("a", &wire.Message{Kind: wire.KindAck, From: "x"}); err != nil {
		t.Fatalf("ack should pass the kind-scoped rule: %v", err)
	}
	_, err := f.Call("a", &wire.Message{Kind: wire.KindQuery, From: "x"})
	if err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("query should hit the error rule, got %v", err)
	}
}

// TestFaultyFlapWindow: OnCalls/OffCalls gates the rule by matched-call
// count — live for the first OnCalls of each cycle, dormant after.
func TestFaultyFlapWindow(t *testing.T) {
	f := faultyFixture(t, 1)
	f.SetRules(FaultRule{To: "a", Action: FaultError, Err: "flap", OnCalls: 2, OffCalls: 2})
	want := []bool{true, true, false, false, true, true, false, false}
	for i, wantErr := range want {
		_, err := f.Call("a", &wire.Message{Kind: wire.KindAck, From: "x"})
		if (err != nil) != wantErr {
			t.Fatalf("call %d: err=%v, want failure=%v", i, err, wantErr)
		}
	}
}

// TestFaultySeededReproducible: with P < 1 the exact pass/fail sequence is
// a function of the seed alone.
func TestFaultySeededReproducible(t *testing.T) {
	run := func(seed int64) []bool {
		f := faultyFixture(t, seed)
		f.SetRules(FaultRule{To: "a", Action: FaultError, Err: "coin", P: 0.5})
		out := make([]bool, 32)
		for i := range out {
			_, err := f.Call("a", &wire.Message{Kind: wire.KindAck, From: "x"})
			out[i] = err != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a, b)
		}
	}
	// Sanity: the coin actually flips both ways.
	var fails int
	for _, v := range a {
		if v {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("P=0.5 produced %d/%d failures; RNG not wired in", fails, len(a))
	}
}

// TestFaultyClearRules: after ClearRules the transport is a passthrough
// again.
func TestFaultyClearRules(t *testing.T) {
	f := faultyFixture(t, 1)
	f.SetRules(Down("a"))
	f.ClearRules()
	if _, err := f.Call("a", &wire.Message{Kind: wire.KindAck, From: "x"}); err != nil {
		t.Fatalf("cleared rules must pass traffic: %v", err)
	}
}

// TestFaultyPartitionSets: the two-rule set partition severs every pair
// across the cut, in both directions, while intra-side traffic flows —
// and set membership matches the sender's From (ID) as well as its Addr,
// since live servers stamp both.
func TestFaultyPartitionSets(t *testing.T) {
	inner := NewChan()
	for _, id := range []string{"a1", "a2", "b1", "b2"} {
		id := id
		if _, err := inner.Listen(id, func(m *wire.Message) *wire.Message {
			return &wire.Message{Kind: wire.KindAck, From: id}
		}); err != nil {
			t.Fatal(err)
		}
	}
	f := NewFaulty(inner, 1)
	f.MaxBlackhole = 5 * time.Millisecond
	f.SetRules(PartitionSets([]string{"a1", "a2"}, []string{"b1", "b2"})...)

	cross := []struct{ from, to string }{
		{"a1", "b1"}, {"a2", "b2"}, {"b1", "a1"}, {"b2", "a2"},
	}
	for _, c := range cross {
		if _, err := f.Call(c.to, &wire.Message{Kind: wire.KindAck, From: c.from}); err == nil {
			t.Fatalf("%s→%s crossed the partition", c.from, c.to)
		}
	}
	within := []struct{ from, to string }{{"a1", "a2"}, {"b2", "b1"}}
	for _, c := range within {
		if _, err := f.Call(c.to, &wire.Message{Kind: wire.KindAck, From: c.from}); err != nil {
			t.Fatalf("%s→%s blocked inside one side: %v", c.from, c.to, err)
		}
	}
	// A sender identified only by Addr (empty From) is still caught.
	if _, err := f.Call("b1", &wire.Message{Kind: wire.KindAck, Addr: "a1"}); err == nil {
		t.Fatal("Addr-identified sender crossed the partition")
	}
	// A third party outside both sets is untouched.
	if _, err := f.Call("b1", &wire.Message{Kind: wire.KindAck, From: "outsider"}); err != nil {
		t.Fatalf("outsider→b1 should flow: %v", err)
	}
	if d, _, _ := f.Injected(); d != 5 {
		t.Fatalf("dropped = %d, want 5", d)
	}
}
