package transport

import (
	"fmt"
	"sync/atomic"
	"time"
)

// numLatBuckets is the bucket count of the call-latency histogram: one per
// bound in latBounds plus an unbounded overflow bucket.
const numLatBuckets = 16

// latBounds are the inclusive upper bounds of the latency buckets,
// exponentially spaced from 100µs to 5s.
var latBounds = [numLatBuckets - 1]time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second,
}

// LatencyBucketBounds returns the histogram bucket upper bounds (the last
// bucket, not listed, is unbounded).
func LatencyBucketBounds() []time.Duration {
	out := make([]time.Duration, len(latBounds))
	copy(out, latBounds[:])
	return out
}

func latBucket(d time.Duration) int {
	for i, b := range latBounds {
		if d <= b {
			return i
		}
	}
	return numLatBuckets - 1
}

// LatencyHist is a point-in-time snapshot of the call-latency histogram.
type LatencyHist struct {
	Counts [numLatBuckets]uint64
}

// N returns the number of observations.
func (h LatencyHist) N() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Percentile returns the upper bound of the bucket holding the p-quantile
// (p in [0,1]); zero when the histogram is empty. The overflow bucket
// reports the largest finite bound.
func (h LatencyHist) Percentile(p float64) time.Duration {
	n := h.N()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if rank < seen {
			if i < len(latBounds) {
				return latBounds[i]
			}
			return latBounds[len(latBounds)-1]
		}
	}
	return latBounds[len(latBounds)-1]
}

// Stats is a point-in-time snapshot of a transport's counters.
type Stats struct {
	// Dials counts new connections opened; Reuses counts calls served by
	// an already-pooled connection. The Chan transport never dials.
	Dials  uint64
	Reuses uint64
	// InFlight is the number of calls currently outstanding.
	InFlight uint64
	// Calls counts completed successful calls; Errors counts failed ones.
	Calls  uint64
	Errors uint64
	// Retries counts calls replayed on a fresh connection after a pooled
	// one turned out stale.
	Retries uint64
	// BytesSent and BytesRecv count frame bytes moved through this
	// transport instance (both roles: client writes and server replies).
	BytesSent uint64
	BytesRecv uint64
	// Latency is the distribution of successful call round-trip times.
	Latency LatencyHist
}

func (s Stats) String() string {
	return fmt.Sprintf("dials=%d reuses=%d inflight=%d calls=%d errors=%d retries=%d sent=%dB recv=%dB p50=%v p99=%v",
		s.Dials, s.Reuses, s.InFlight, s.Calls, s.Errors, s.Retries,
		s.BytesSent, s.BytesRecv, s.Latency.Percentile(0.50), s.Latency.Percentile(0.99))
}

// Statser is implemented by transports that expose operational counters;
// live servers surface them in Status replies.
type Statser interface {
	Stats() Stats
}

// counters is the live, atomically-updated form of Stats.
type counters struct {
	dials, reuses          atomic.Uint64
	calls, errors, retries atomic.Uint64
	bytesSent, bytesRecv   atomic.Uint64
	inflight               atomic.Int64
	lat                    [numLatBuckets]atomic.Uint64
}

func (c *counters) observe(d time.Duration) {
	c.lat[latBucket(d)].Add(1)
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Dials:     c.dials.Load(),
		Reuses:    c.reuses.Load(),
		Calls:     c.calls.Load(),
		Errors:    c.errors.Load(),
		Retries:   c.retries.Load(),
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
	}
	if in := c.inflight.Load(); in > 0 {
		s.InFlight = uint64(in)
	}
	for i := range c.lat {
		s.Latency.Counts[i] = c.lat[i].Load()
	}
	return s
}
