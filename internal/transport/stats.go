package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"roads/internal/obs"
)

// numLatBuckets is the bucket count of the call-latency histogram. The
// bucket scheme itself — a 1–2.5–5 decade ladder from 100µs to 5s plus an
// overflow bucket — is defined once in internal/obs and shared with every
// other ROADS latency histogram, so /metrics, Status percentiles and
// roadsctl all speak the same buckets.
const numLatBuckets = obs.NumLatencyBuckets

// latBounds are the inclusive upper bounds of the latency buckets (the
// canonical obs ladder; the last bucket, not listed, is unbounded).
var latBounds = obs.DefaultLatencyBounds()

// LatencyBucketBounds returns the histogram bucket upper bounds (the last
// bucket, not listed, is unbounded).
func LatencyBucketBounds() []time.Duration {
	out := make([]time.Duration, len(latBounds))
	copy(out, latBounds)
	return out
}

// LatencyHist is a point-in-time snapshot of the call-latency histogram.
type LatencyHist struct {
	Counts [numLatBuckets]uint64
}

// N returns the number of observations.
func (h LatencyHist) N() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Percentile returns the upper bound of the bucket holding the p-quantile
// (p in [0,1]); zero when the histogram is empty. The overflow bucket
// reports the largest finite bound.
func (h LatencyHist) Percentile(p float64) time.Duration {
	n := h.N()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if rank < seen {
			if i < len(latBounds) {
				return latBounds[i]
			}
			return latBounds[len(latBounds)-1]
		}
	}
	return latBounds[len(latBounds)-1]
}

// Stats is a point-in-time snapshot of a transport's counters.
type Stats struct {
	// Dials counts new connections opened; Reuses counts calls served by
	// an already-pooled connection. The Chan transport never dials.
	Dials  uint64
	Reuses uint64
	// InFlight is the number of calls currently outstanding.
	InFlight uint64
	// Calls counts completed successful calls; Errors counts failed ones.
	Calls  uint64
	Errors uint64
	// Retries counts calls replayed on a fresh connection after a pooled
	// one turned out stale.
	Retries uint64
	// BytesSent and BytesRecv count frame bytes moved through this
	// transport instance (both roles: client writes and server replies).
	BytesSent uint64
	BytesRecv uint64
	// Latency is the distribution of successful call round-trip times.
	Latency LatencyHist
}

func (s Stats) String() string {
	return fmt.Sprintf("dials=%d reuses=%d inflight=%d calls=%d errors=%d retries=%d sent=%dB recv=%dB p50=%v p99=%v",
		s.Dials, s.Reuses, s.InFlight, s.Calls, s.Errors, s.Retries,
		s.BytesSent, s.BytesRecv, s.Latency.Percentile(0.50), s.Latency.Percentile(0.99))
}

// Statser is implemented by transports that expose operational counters;
// live servers surface them in Status replies.
type Statser interface {
	Stats() Stats
}

// MetricsRegisterer is implemented by transports whose counters can be
// registered as named series on an obs.Registry (the TCP and Chan
// transports both; the Faulty wrapper forwards to its inner transport).
type MetricsRegisterer interface {
	RegisterMetrics(reg *obs.Registry)
}

// counters is the live, atomically-updated form of Stats. The zero value
// is ready to use, so transports embed it without construction.
type counters struct {
	dials, reuses          atomic.Uint64
	calls, errors, retries atomic.Uint64
	bytesSent, bytesRecv   atomic.Uint64
	inflight               atomic.Int64
	lat                    [numLatBuckets]atomic.Uint64
	latSumNanos            atomic.Int64
}

func (c *counters) observe(d time.Duration) {
	c.lat[obs.LatencyBucket(d)].Add(1)
	c.latSumNanos.Add(int64(d))
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Dials:     c.dials.Load(),
		Reuses:    c.reuses.Load(),
		Calls:     c.calls.Load(),
		Errors:    c.errors.Load(),
		Retries:   c.retries.Load(),
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
	}
	if in := c.inflight.Load(); in > 0 {
		s.InFlight = uint64(in)
	}
	for i := range c.lat {
		s.Latency.Counts[i] = c.lat[i].Load()
	}
	return s
}

// register exposes the counters as roads_transport_* series on reg. The
// series read the same atomics the call paths write, so a scrape never
// contends with a call.
func (c *counters) register(reg *obs.Registry) {
	reg.CounterFunc("roads_transport_dials_total",
		"New connections opened to peers.", c.dials.Load)
	reg.CounterFunc("roads_transport_reuses_total",
		"Calls served by an already-pooled connection.", c.reuses.Load)
	reg.CounterFunc("roads_transport_calls_total",
		"Completed successful calls (RPCs).", c.calls.Load)
	reg.CounterFunc("roads_transport_errors_total",
		"Failed calls (dial, encode, transport or context errors).", c.errors.Load)
	reg.CounterFunc("roads_transport_retries_total",
		"Calls replayed on a fresh connection after a stale pooled one.", c.retries.Load)
	reg.CounterFunc("roads_transport_bytes_sent_total",
		"Frame bytes written to peers (both roles).", c.bytesSent.Load)
	reg.CounterFunc("roads_transport_bytes_recv_total",
		"Frame bytes read from peers (both roles).", c.bytesRecv.Load)
	reg.GaugeFunc("roads_transport_inflight",
		"Calls currently outstanding.", func() float64 {
			if in := c.inflight.Load(); in > 0 {
				return float64(in)
			}
			return 0
		})
	reg.HistogramFunc("roads_transport_call_seconds",
		"Round-trip latency of successful calls (canonical obs bucket ladder).",
		func() obs.HistSnapshot {
			s := obs.HistSnapshot{
				Bounds: LatencyBucketBounds(),
				Counts: make([]uint64, numLatBuckets),
			}
			for i := range c.lat {
				s.Counts[i] = c.lat[i].Load()
			}
			s.SumSeconds = float64(c.latSumNanos.Load()) / float64(time.Second)
			return s
		})
}
