package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/obs"
	"roads/internal/wire"
)

// Frame formats.
//
// v1 (legacy, one exchange per connection): a 4-byte big-endian payload
// length followed by the gob payload. Used by NoPool callers and still
// accepted by listeners for compatibility with v1-only peers.
//
// v2 (pooled/multiplexed): a 16-byte header followed by the gob payload:
//
//	byte  0      magic 'R' (0x52)
//	byte  1      format version (2)
//	byte  2      flags (bit 0: response)
//	byte  3      reserved (0)
//	bytes 4-11   request ID, big-endian uint64
//	bytes 12-15  payload length, big-endian uint32
//
// Listeners tell the two apart from the first byte: a v1 length never
// exceeds maxFrame (64 MiB, high byte 0x04), so 0x52 unambiguously marks a
// v2 stream. A v2 connection carries many concurrent exchanges; responses
// are matched to requests by ID, so they may arrive out of order.
const (
	frameMagic   = 'R'
	frameVersion = 2
	flagResponse = 1 << 0
	headerV2Len  = 16
)

// maxFrame bounds a frame to 64 MiB, far above any legitimate message.
// Both writer and reader enforce it: the writer so an oversize message
// fails cleanly instead of being rejected mid-stream by the peer (or
// silently truncating its uint32 length), the reader so a corrupt or
// hostile header cannot trigger a huge allocation.
const maxFrame = 64 << 20

var errStaleConn = errors.New("transport: stale pooled connection")

// TCP is a gob-over-TCP transport. By default it keeps a per-peer pool of
// persistent connections and multiplexes concurrent calls over them with
// v2 framed request IDs: a reader goroutine per connection demuxes the
// replies, idle connections are reaped in the background, and a call that
// lands on a connection the peer has meanwhile closed is retried once on a
// fresh dial. Set NoPool for the legacy v1 behaviour (one dial and one
// exchange per call), kept as a measurable baseline and for driving
// v1-only peers.
type TCP struct {
	// DialTimeout bounds connection setup; CallTimeout bounds the whole
	// exchange. Zero values use wire.Deadline.
	DialTimeout time.Duration
	CallTimeout time.Duration
	// IdleTimeout is how long a pooled connection may sit unused before
	// the reaper closes it (default 30s). Listeners keep v2 sessions for
	// twice this, so the dialer normally reaps first.
	IdleTimeout time.Duration
	// MaxConnsPerPeer bounds the pool per destination (default 2). A new
	// connection is dialed only while every pooled one is busy and the
	// bound has not been reached.
	MaxConnsPerPeer int
	// NoPool selects the legacy path: one v1-framed exchange per dial.
	NoPool bool
	// UseGob sends outgoing requests in the legacy gob codec instead of
	// the compact binary one, for driving peers that predate the binary
	// codec (their listeners cannot decode binary payloads). Incoming
	// requests are always answered in the codec they arrived in, so a
	// binary-codec listener serves gob and binary dialers side by side.
	UseGob bool

	ctr    counters
	nextID atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond // signalled when a dial finishes or a conn dies
	pool    map[string]*peerPool
	reaping bool
}

// peerPool tracks one destination's connections plus in-progress dials, so
// a burst of first calls cannot stampede past MaxConnsPerPeer.
type peerPool struct {
	conns   []*peerConn
	dialing int
}

// NewTCP creates a pooled TCP transport with default timeouts.
func NewTCP() *TCP { return &TCP{} }

// Stats returns a snapshot of the transport's counters.
func (t *TCP) Stats() Stats { return t.ctr.snapshot() }

// RegisterMetrics exposes the transport's counters as roads_transport_*
// series on reg. Call once, at startup, before the registry is scraped.
func (t *TCP) RegisterMetrics(reg *obs.Registry) { t.ctr.register(reg) }

func (t *TCP) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return wire.Deadline
}

func (t *TCP) callTimeout() time.Duration {
	if t.CallTimeout > 0 {
		return t.CallTimeout
	}
	return wire.Deadline
}

func (t *TCP) idleTimeout() time.Duration {
	if t.IdleTimeout > 0 {
		return t.IdleTimeout
	}
	return 30 * time.Second
}

func (t *TCP) maxConnsPerPeer() int {
	if t.MaxConnsPerPeer > 0 {
		return t.MaxConnsPerPeer
	}
	return 2
}

// --- Listener ---

type tcpCloser struct {
	ln net.Listener
	wg *sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

func (c *tcpCloser) track(conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.conns[conn] = struct{}{}
	return true
}

func (c *tcpCloser) untrack(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.conns, conn)
}

func (c *tcpCloser) Close() error {
	c.mu.Lock()
	c.closed = true
	err := c.ln.Close()
	for conn := range c.conns {
		_ = conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

// Listen implements Transport. Each accepted connection is sniffed: v2
// streams are served as long-lived multiplexed sessions (each request
// dispatched on its own goroutine), v1 connections get the legacy single
// request/reply exchange.
func (t *TCP) Listen(addr string, h Handler) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	var wg sync.WaitGroup
	closer := &tcpCloser{ln: ln, wg: &wg, conns: make(map[net.Conn]struct{})}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if !closer.track(conn) {
				_ = conn.Close()
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer closer.untrack(conn)
				defer conn.Close()
				t.serveConn(conn, h, &wg)
			}(conn)
		}
	}()
	return closer, nil
}

func (t *TCP) serveConn(conn net.Conn, h Handler, wg *sync.WaitGroup) {
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(t.callTimeout()))
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == frameMagic {
		t.serveMux(conn, br, h, wg)
		return
	}
	t.serveLegacy(conn, br, h)
}

// serveLegacy answers exactly one v1 request/reply exchange, replying in
// the codec the request used (v1 peers are usually gob-only).
func (t *TCP) serveLegacy(conn net.Conn, br *bufio.Reader, h Handler) {
	_ = conn.SetDeadline(time.Now().Add(t.callTimeout()))
	req, err := readFrame(br)
	if err != nil {
		return
	}
	t.ctr.bytesRecv.Add(uint64(4 + len(req)))
	msg, err := wire.Decode(req)
	if err != nil {
		return
	}
	rep := h(msg)
	data, release, err := encodeReply(rep, wire.IsBinary(req))
	if err != nil {
		return
	}
	defer release()
	if writeFrame(conn, data) == nil {
		t.ctr.bytesSent.Add(uint64(4 + len(data)))
	}
}

// serveMux serves a v2 session: requests are read in a loop and handled
// concurrently, each reply written back (under a write lock) tagged with
// its request ID. The session ends when the peer closes the connection or
// it sits idle past the server-side window.
func (t *TCP) serveMux(conn net.Conn, br *bufio.Reader, h Handler, wg *sync.WaitGroup) {
	var wmu sync.Mutex
	idle := 2 * t.idleTimeout()
	if ct := t.callTimeout(); idle < ct {
		idle = ct
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		id, _, data, err := readFrameV2(br)
		if err != nil {
			return
		}
		t.ctr.bytesRecv.Add(uint64(headerV2Len + len(data)))
		wg.Add(1)
		go func(id uint64, data []byte) {
			defer wg.Done()
			var rep *wire.Message
			msg, err := wire.Decode(data)
			if err != nil {
				rep = &wire.Message{Kind: wire.KindError, Error: err.Error()}
			} else {
				rep = h(msg)
			}
			out, release, err := encodeReply(rep, wire.IsBinary(data))
			if err != nil {
				return
			}
			defer release()
			wmu.Lock()
			defer wmu.Unlock()
			_ = conn.SetWriteDeadline(time.Now().Add(t.callTimeout()))
			if writeFrameV2(conn, id, flagResponse, out) == nil {
				t.ctr.bytesSent.Add(uint64(headerV2Len + len(out)))
			}
		}(id, data)
	}
}

// --- Pooled client ---

type callResult struct {
	data []byte
	err  error
}

// peerConn is one pooled connection to a peer, shared by concurrent calls.
type peerConn struct {
	t    *TCP
	addr string
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan callResult
	closed  bool

	inflight atomic.Int64
	lastUsed atomic.Int64 // unix nanos
}

func (pc *peerConn) touch() { pc.lastUsed.Store(time.Now().UnixNano()) }

func (pc *peerConn) idleSince() time.Time { return time.Unix(0, pc.lastUsed.Load()) }

// register claims a request ID slot; it fails once the connection died.
func (pc *peerConn) register(id uint64, ch chan callResult) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return false
	}
	pc.pending[id] = ch
	return true
}

func (pc *peerConn) unregister(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}

// fail marks the connection dead, fails every outstanding call, and drops
// it from the pool.
func (pc *peerConn) fail(err error) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return
	}
	pc.closed = true
	for id, ch := range pc.pending {
		delete(pc.pending, id)
		ch <- callResult{err: err}
	}
	pc.mu.Unlock()
	_ = pc.conn.Close()
	pc.t.removeConn(pc)
}

// readLoop demuxes response frames to their waiting callers.
func (pc *peerConn) readLoop() {
	for {
		id, _, data, err := readFrameV2(pc.br)
		if err != nil {
			pc.fail(errStaleConn)
			return
		}
		pc.t.ctr.bytesRecv.Add(uint64(headerV2Len + len(data)))
		pc.mu.Lock()
		ch := pc.pending[id]
		delete(pc.pending, id)
		pc.mu.Unlock()
		if ch != nil {
			ch <- callResult{data: data}
		}
	}
}

// poolFor returns addr's pool entry, initializing lazily. Callers hold t.mu.
func (t *TCP) poolFor(addr string) *peerPool {
	if t.pool == nil {
		t.pool = make(map[string]*peerPool)
	}
	if t.cond == nil {
		t.cond = sync.NewCond(&t.mu)
	}
	pp := t.pool[addr]
	if pp == nil {
		pp = &peerPool{}
		t.pool[addr] = pp
	}
	return pp
}

// getConn returns a pooled connection to addr, dialing a new one when
// every pooled connection is busy and a dial slot is free (dials in flight
// count against MaxConnsPerPeer, so call bursts multiplex instead of
// stampeding into one socket each). fresh bypasses the pool — the
// stale-retry path must not be handed the same dead connection back.
func (t *TCP) getConn(ctx context.Context, addr string, fresh bool) (*peerConn, bool, error) {
	t.mu.Lock()
	pp := t.poolFor(addr)
	if !fresh {
		for {
			var best *peerConn
			for _, pc := range pp.conns {
				if best == nil || pc.inflight.Load() < best.inflight.Load() {
					best = pc
				}
			}
			if best != nil && (best.inflight.Load() == 0 || len(pp.conns)+pp.dialing >= t.maxConnsPerPeer()) {
				t.mu.Unlock()
				t.ctr.reuses.Add(1)
				return best, true, nil
			}
			if len(pp.conns)+pp.dialing < t.maxConnsPerPeer() {
				break // take a dial slot
			}
			t.cond.Wait() // a dial is in flight; reuse its connection when it lands
			pp = t.poolFor(addr)
		}
	}
	pp.dialing++
	t.mu.Unlock()

	d := net.Dialer{Timeout: t.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", addr)

	t.mu.Lock()
	pp = t.poolFor(addr)
	pp.dialing--
	if err != nil {
		t.cond.Broadcast()
		t.mu.Unlock()
		return nil, false, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	t.ctr.dials.Add(1)
	pc := &peerConn{
		t:       t,
		addr:    addr,
		conn:    conn,
		br:      bufio.NewReader(conn),
		pending: make(map[uint64]chan callResult),
	}
	pc.touch()
	pp.conns = append(pp.conns, pc)
	startReaper := !t.reaping
	t.reaping = true
	t.cond.Broadcast()
	t.mu.Unlock()
	go pc.readLoop()
	if startReaper {
		go t.reapLoop()
	}
	return pc, false, nil
}

func (t *TCP) removeConn(pc *peerConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pp := t.pool[pc.addr]
	if pp == nil {
		return
	}
	for i, c := range pp.conns {
		if c == pc {
			pp.conns = append(pp.conns[:i], pp.conns[i+1:]...)
			break
		}
	}
	if len(pp.conns) == 0 && pp.dialing == 0 {
		delete(t.pool, pc.addr)
	}
	if t.cond != nil {
		t.cond.Broadcast()
	}
}

// reapLoop closes idle pooled connections. It exits once the pool drains
// (the next Call restarts it), so idle transports hold no goroutines.
func (t *TCP) reapLoop() {
	idle := t.idleTimeout()
	ticker := time.NewTicker(idle / 2)
	defer ticker.Stop()
	for range ticker.C {
		now := time.Now()
		var victims []*peerConn
		t.mu.Lock()
		remaining := 0
		for addr, pp := range t.pool {
			kept := pp.conns[:0]
			for _, pc := range pp.conns {
				if pc.inflight.Load() == 0 && now.Sub(pc.idleSince()) > idle {
					victims = append(victims, pc)
				} else {
					kept = append(kept, pc)
				}
			}
			pp.conns = kept
			if len(kept) == 0 && pp.dialing == 0 {
				delete(t.pool, addr)
			}
			remaining += len(kept) + pp.dialing
		}
		done := remaining == 0
		if done {
			t.reaping = false
		}
		t.mu.Unlock()
		for _, pc := range victims {
			pc.fail(errStaleConn)
		}
		if done {
			return
		}
	}
}

// Close tears down every pooled connection. Outstanding calls fail; the
// transport remains usable (later calls dial anew).
func (t *TCP) Close() error {
	t.mu.Lock()
	var all []*peerConn
	for _, pp := range t.pool {
		all = append(all, pp.conns...)
	}
	t.pool = nil
	if t.cond != nil {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
	for _, pc := range all {
		pc.fail(errStaleConn)
	}
	return nil
}

// Call implements Transport. Pooled calls that fail because the pooled
// connection went stale (peer restarted, idle reap raced) are retried once
// on a fresh dial; timeouts and fresh-connection failures are not retried,
// since the request may have been handled.
func (t *TCP) Call(addr string, req *wire.Message) (*wire.Message, error) {
	return t.CallContext(context.Background(), addr, req)
}

// CallContext implements Transport. Cancellation releases the waiting
// caller without poisoning the pooled connection: the request ID is simply
// unregistered, and a reply that arrives later is discarded by the read
// loop while other in-flight calls on the same connection proceed.
func (t *TCP) CallContext(ctx context.Context, addr string, req *wire.Message) (*wire.Message, error) {
	data, release, err := encodeRequest(req, t.UseGob)
	if err != nil {
		return nil, err
	}
	defer release()
	if len(data) > maxFrame {
		return nil, fmt.Errorf("transport: message of %d bytes exceeds the %d-byte frame limit", len(data), maxFrame)
	}
	start := time.Now()
	t.ctr.inflight.Add(1)
	defer t.ctr.inflight.Add(-1)

	var rep []byte
	if t.NoPool {
		rep, err = t.callLegacy(ctx, addr, data)
	} else {
		rep, err = t.callPooled(ctx, addr, data, false)
		if errors.Is(err, errStaleConn) && ctx.Err() == nil {
			t.ctr.retries.Add(1)
			rep, err = t.callPooled(ctx, addr, data, true)
		}
	}
	if err != nil {
		t.ctr.errors.Add(1)
		if errors.Is(err, errStaleConn) {
			err = fmt.Errorf("transport: call to %s: %w", addr, err)
		}
		return nil, err
	}
	t.ctr.calls.Add(1)
	t.ctr.observe(time.Since(start))
	return wire.Decode(rep)
}

// deadlineWithin returns now+d, clamped to ctx's deadline when that comes
// sooner — I/O deadlines must never outlive the caller's budget.
func deadlineWithin(ctx context.Context, d time.Duration) time.Time {
	t := time.Now().Add(d)
	if cd, ok := ctx.Deadline(); ok && cd.Before(t) {
		return cd
	}
	return t
}

// callPooled runs one v2 exchange over a pooled connection. Failures on a
// reused connection surface as errStaleConn so Call can retry them once.
// Context expiry abandons only this call's waiter; the connection and its
// other in-flight exchanges stay healthy.
func (t *TCP) callPooled(ctx context.Context, addr string, data []byte, fresh bool) ([]byte, error) {
	pc, reused, err := t.getConn(ctx, addr, fresh)
	if err != nil {
		return nil, err
	}
	id := t.nextID.Add(1)
	ch := make(chan callResult, 1)
	if !pc.register(id, ch) {
		if reused {
			return nil, errStaleConn
		}
		return nil, fmt.Errorf("transport: connection to %s closed", addr)
	}
	pc.inflight.Add(1)
	defer func() {
		pc.inflight.Add(-1)
		pc.touch()
	}()

	pc.wmu.Lock()
	_ = pc.conn.SetWriteDeadline(deadlineWithin(ctx, t.callTimeout()))
	werr := writeFrameV2(pc.conn, id, 0, data)
	pc.wmu.Unlock()
	if werr != nil {
		pc.unregister(id)
		pc.fail(errStaleConn)
		if reused {
			return nil, errStaleConn
		}
		return nil, fmt.Errorf("transport: write to %s: %w", addr, werr)
	}
	t.ctr.bytesSent.Add(uint64(headerV2Len + len(data)))

	timer := time.NewTimer(t.callTimeout())
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			if reused {
				return nil, errStaleConn
			}
			return nil, fmt.Errorf("transport: read from %s: %w", addr, res.err)
		}
		return res.data, nil
	case <-ctx.Done():
		pc.unregister(id)
		return nil, fmt.Errorf("transport: call to %s: %w", addr, ctx.Err())
	case <-timer.C:
		pc.unregister(id)
		return nil, fmt.Errorf("transport: call to %s timed out after %v", addr, t.callTimeout())
	}
}

// callLegacy is the v1 baseline: dial, one framed exchange, close.
func (t *TCP) callLegacy(ctx context.Context, addr string, data []byte) ([]byte, error) {
	d := net.Dialer{Timeout: t.dialTimeout()}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	t.ctr.dials.Add(1)
	_ = conn.SetDeadline(deadlineWithin(ctx, t.callTimeout()))
	if err := writeFrame(conn, data); err != nil {
		return nil, fmt.Errorf("transport: write to %s: %w", addr, err)
	}
	t.ctr.bytesSent.Add(uint64(4 + len(data)))
	rep, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: read from %s: %w", addr, err)
	}
	t.ctr.bytesRecv.Add(uint64(4 + len(rep)))
	return rep, nil
}

// --- Framing ---

// writeFrame writes a v1 frame, rejecting oversize payloads at the sender
// so they fail cleanly instead of corrupting the stream.
func writeFrame(w io.Writer, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte limit", len(data), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

// writeFrameV2 writes one multiplexed frame. Callers serialize writes to a
// shared connection.
func writeFrameV2(w io.Writer, id uint64, flags byte, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte limit", len(data), maxFrame)
	}
	var hdr [headerV2Len]byte
	hdr[0] = frameMagic
	hdr[1] = frameVersion
	hdr[2] = flags
	binary.BigEndian.PutUint64(hdr[4:12], id)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrameV2(r io.Reader) (id uint64, flags byte, data []byte, err error) {
	var hdr [headerV2Len]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	if hdr[0] != frameMagic || hdr[1] != frameVersion {
		return 0, 0, nil, fmt.Errorf("transport: bad frame header %x (want magic %#x version %d)", hdr[:2], frameMagic, frameVersion)
	}
	flags = hdr[2]
	id = binary.BigEndian.Uint64(hdr[4:12])
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	data = make([]byte, n)
	if _, err = io.ReadFull(r, data); err != nil {
		return 0, 0, nil, err
	}
	return id, flags, data, nil
}
