// Package transport provides the request/response layer the live ROADS
// prototype runs on, with two interchangeable implementations: an
// in-process channel transport for tests, examples and benchmarks (with an
// optional injected latency model), and a TCP transport (gob frames) for
// real multi-process deployments.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"roads/internal/wire"
)

// Handler processes one request and produces a reply.
type Handler func(*wire.Message) *wire.Message

// Transport abstracts how servers reach each other.
type Transport interface {
	// Listen registers a handler at addr and starts serving. The returned
	// closer stops serving.
	Listen(addr string, h Handler) (io.Closer, error)
	// Call sends a request to addr and waits for the reply.
	Call(addr string, req *wire.Message) (*wire.Message, error)
}

// --- In-process transport ---

// Chan is an in-process transport: a registry of handlers keyed by
// address. Calls run the remote handler on the caller's goroutine after an
// optional injected latency, which makes latency experiments reproducible
// without sockets.
type Chan struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	// Latency, if set, returns the one-way delay between two addresses;
	// each Call sleeps twice (request + reply).
	Latency func(from, to string) time.Duration
	// CallerAddr tags outgoing calls for the latency function; transports
	// are per-process so a single caller address suffices.
	CallerAddr string
	// Bytes counts the encoded bytes moved, for overhead measurements.
	bytesMoved int64
}

// NewChan creates an empty in-process transport.
func NewChan() *Chan {
	return &Chan{handlers: make(map[string]Handler)}
}

type chanCloser struct {
	t    *Chan
	addr string
}

func (c *chanCloser) Close() error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	delete(c.t.handlers, c.addr)
	return nil
}

// Listen implements Transport.
func (t *Chan) Listen(addr string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.handlers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	t.handlers[addr] = h
	return &chanCloser{t: t, addr: addr}, nil
}

// Call implements Transport. The message is round-tripped through the gob
// encoding so in-process behaviour matches TCP exactly (no shared
// pointers, same encodability constraints).
func (t *Chan) Call(addr string, req *wire.Message) (*wire.Message, error) {
	t.mu.RLock()
	h := t.handlers[addr]
	lat := t.Latency
	caller := t.CallerAddr
	t.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("transport: no server at %q", addr)
	}
	data, err := wire.Encode(req)
	if err != nil {
		return nil, err
	}
	t.addBytes(len(data))
	if lat != nil {
		time.Sleep(lat(caller, addr))
	}
	decoded, err := wire.Decode(data)
	if err != nil {
		return nil, err
	}
	rep := h(decoded)
	repData, err := wire.Encode(rep)
	if err != nil {
		return nil, err
	}
	t.addBytes(len(repData))
	if lat != nil {
		time.Sleep(lat(addr, caller))
	}
	return wire.Decode(repData)
}

func (t *Chan) addBytes(n int) {
	t.mu.Lock()
	t.bytesMoved += int64(n)
	t.mu.Unlock()
}

// BytesMoved returns the total encoded bytes transferred.
func (t *Chan) BytesMoved() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytesMoved
}

// Addrs returns the registered addresses (diagnostics).
func (t *Chan) Addrs() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.handlers))
	for a := range t.handlers {
		out = append(out, a)
	}
	return out
}

// --- TCP transport ---

// TCP is a gob-over-TCP transport: each Call opens a connection, writes a
// length-prefixed frame, and reads the length-prefixed reply. Simple and
// stateless; adequate for the prototype's message rates.
type TCP struct {
	// DialTimeout bounds connection setup; CallTimeout bounds the whole
	// exchange. Zero values use wire.Deadline.
	DialTimeout time.Duration
	CallTimeout time.Duration
}

// NewTCP creates a TCP transport with default timeouts.
func NewTCP() *TCP { return &TCP{} }

type tcpCloser struct {
	ln net.Listener
	wg *sync.WaitGroup
}

func (c *tcpCloser) Close() error {
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

// Listen implements Transport: it serves each accepted connection on its
// own goroutine, one request/reply exchange per connection.
func (t *TCP) Listen(addr string, h Handler) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				deadline := t.CallTimeout
				if deadline == 0 {
					deadline = wire.Deadline
				}
				_ = conn.SetDeadline(time.Now().Add(deadline))
				req, err := readFrame(conn)
				if err != nil {
					return
				}
				msg, err := wire.Decode(req)
				if err != nil {
					return
				}
				rep := h(msg)
				data, err := wire.Encode(rep)
				if err != nil {
					return
				}
				_ = writeFrame(conn, data)
			}(conn)
		}
	}()
	return &tcpCloser{ln: ln, wg: &wg}, nil
}

// Call implements Transport.
func (t *TCP) Call(addr string, req *wire.Message) (*wire.Message, error) {
	dialTO := t.DialTimeout
	if dialTO == 0 {
		dialTO = wire.Deadline
	}
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	callTO := t.CallTimeout
	if callTO == 0 {
		callTO = wire.Deadline
	}
	_ = conn.SetDeadline(time.Now().Add(callTO))
	data, err := wire.Encode(req)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, data); err != nil {
		return nil, fmt.Errorf("transport: write to %s: %w", addr, err)
	}
	rep, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: read from %s: %w", addr, err)
	}
	return wire.Decode(rep)
}

// maxFrame bounds a frame to 64 MiB, far above any legitimate message.
const maxFrame = 64 << 20

func writeFrame(w io.Writer, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}
