// Package transport provides the request/response layer the live ROADS
// prototype runs on, with two interchangeable implementations: an
// in-process channel transport for tests, examples and benchmarks (with an
// optional injected latency model), and a pooled, multiplexed TCP
// transport (binary or gob frames) for real multi-process deployments.
// Both expose operational counters through Stats() and can publish them as
// named roads_transport_* series on an obs.Registry via RegisterMetrics;
// the Faulty chaos wrapper forwards both to the transport it wraps.
package transport

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"roads/internal/obs"
	"roads/internal/wire"
)

// Handler processes one request and produces a reply.
type Handler func(*wire.Message) *wire.Message

// Transport abstracts how servers reach each other.
type Transport interface {
	// Listen registers a handler at addr and starts serving. The returned
	// closer stops serving.
	Listen(addr string, h Handler) (io.Closer, error)
	// Call sends a request to addr and waits for the reply.
	Call(addr string, req *wire.Message) (*wire.Message, error)
	// CallContext is Call bounded by ctx: cancellation or deadline expiry
	// releases the caller promptly with the context's error, even when the
	// remote handler never replies. The request may still reach (or have
	// reached) the peer — cancellation only abandons the wait.
	CallContext(ctx context.Context, addr string, req *wire.Message) (*wire.Message, error)
}

// encodeRequest serializes an outgoing request: the compact binary codec
// through a pooled buffer by default, legacy gob when useGob is set (for
// driving peers that predate the binary codec). The caller must not touch
// data after calling release.
func encodeRequest(m *wire.Message, useGob bool) (data []byte, release func(), err error) {
	if useGob {
		data, err = wire.EncodeGob(m)
		return data, func() {}, err
	}
	bp := wire.GetBuf()
	data, err = wire.AppendEncode((*bp)[:0], m)
	if err != nil {
		wire.PutBuf(bp)
		return nil, nil, err
	}
	*bp = data
	return data, func() { wire.PutBuf(bp) }, nil
}

// encodeReply serializes a reply in the codec the request arrived in —
// the whole compatibility negotiation: an old gob-only peer gets gob back,
// a binary peer gets binary. Binary replies use a pooled buffer.
func encodeReply(m *wire.Message, reqWasBinary bool) (data []byte, release func(), err error) {
	return encodeRequest(m, !reqWasBinary)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// --- In-process transport ---

// Chan is an in-process transport: a registry of handlers keyed by
// address. Calls run the remote handler on the caller's goroutine after an
// optional injected latency, which makes latency experiments reproducible
// without sockets.
type Chan struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	// Latency, if set, returns the one-way delay between two addresses;
	// each Call sleeps twice (request + reply).
	Latency func(from, to string) time.Duration
	// CallerAddr tags outgoing calls for the latency function; transports
	// are per-process so a single caller address suffices.
	CallerAddr string
	// UseGob sends outgoing requests in the legacy gob codec instead of
	// the binary one — the measurable baseline, and how a peer that
	// predates the binary codec behaves. Replies always come back in the
	// request's codec. Set before first use.
	UseGob bool

	ctr counters
}

// NewChan creates an empty in-process transport.
func NewChan() *Chan {
	return &Chan{handlers: make(map[string]Handler)}
}

type chanCloser struct {
	t    *Chan
	addr string
}

func (c *chanCloser) Close() error {
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	delete(c.t.handlers, c.addr)
	return nil
}

// Listen implements Transport.
func (t *Chan) Listen(addr string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.handlers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	t.handlers[addr] = h
	return &chanCloser{t: t, addr: addr}, nil
}

// Call implements Transport. The message is round-tripped through the gob
// encoding so in-process behaviour matches TCP exactly (no shared
// pointers, same encodability constraints).
func (t *Chan) Call(addr string, req *wire.Message) (*wire.Message, error) {
	return t.CallContext(context.Background(), addr, req)
}

// CallContext implements Transport. With a cancellable context the remote
// handler runs on its own goroutine so a stalled peer cannot pin the
// caller past its deadline: the caller is released with ctx.Err() and the
// abandoned handler finishes (or stalls) on its own. With a plain
// background context the handler runs inline on the caller's goroutine,
// exactly the pre-context behaviour.
func (t *Chan) CallContext(ctx context.Context, addr string, req *wire.Message) (*wire.Message, error) {
	t.mu.RLock()
	h := t.handlers[addr]
	lat := t.Latency
	caller := t.CallerAddr
	t.mu.RUnlock()
	if h == nil {
		t.ctr.errors.Add(1)
		return nil, fmt.Errorf("transport: no server at %q", addr)
	}
	start := time.Now()
	t.ctr.inflight.Add(1)
	defer t.ctr.inflight.Add(-1)
	data, release, err := encodeRequest(req, t.UseGob)
	if err != nil {
		t.ctr.errors.Add(1)
		return nil, err
	}
	t.ctr.bytesSent.Add(uint64(len(data)))
	if lat != nil {
		if err := sleepCtx(ctx, lat(caller, addr)); err != nil {
			release()
			t.ctr.errors.Add(1)
			return nil, fmt.Errorf("transport: call to %s: %w", addr, err)
		}
	}

	var repData []byte
	if ctx.Done() == nil {
		repData, err = runHandler(h, data)
		release()
	} else {
		type result struct {
			data []byte
			err  error
		}
		ch := make(chan result, 1)
		go func() {
			// The goroutine owns data: an abandoned call must not let the
			// caller recycle the buffer out from under the handler.
			d, e := runHandler(h, data)
			release()
			ch <- result{data: d, err: e}
		}()
		select {
		case <-ctx.Done():
			t.ctr.errors.Add(1)
			return nil, fmt.Errorf("transport: call to %s: %w", addr, ctx.Err())
		case res := <-ch:
			repData, err = res.data, res.err
		}
	}
	if err != nil {
		t.ctr.errors.Add(1)
		return nil, err
	}
	t.ctr.bytesRecv.Add(uint64(len(repData)))
	if lat != nil {
		if err := sleepCtx(ctx, lat(addr, caller)); err != nil {
			t.ctr.errors.Add(1)
			return nil, fmt.Errorf("transport: call to %s: %w", addr, err)
		}
	}
	t.ctr.calls.Add(1)
	t.ctr.observe(time.Since(start))
	return wire.Decode(repData)
}

// runHandler decodes the request, invokes the handler, and encodes the
// reply in the request's codec — the Chan transport's whole "remote"
// side, including the respond-in-kind codec negotiation.
func runHandler(h Handler, data []byte) ([]byte, error) {
	decoded, err := wire.Decode(data)
	if err != nil {
		return nil, err
	}
	rep := h(decoded)
	if wire.IsBinary(data) {
		return wire.Encode(rep)
	}
	return wire.EncodeGob(rep)
}

// Stats returns a snapshot of the transport's counters. The Chan transport
// never dials, so only calls, bytes and latency move.
func (t *Chan) Stats() Stats { return t.ctr.snapshot() }

// RegisterMetrics exposes the transport's counters as roads_transport_*
// series on reg. Call once, at startup, before the registry is scraped.
func (t *Chan) RegisterMetrics(reg *obs.Registry) { t.ctr.register(reg) }

// BytesMoved returns the total encoded bytes transferred (both
// directions), for overhead measurements.
func (t *Chan) BytesMoved() int64 {
	s := t.ctr.snapshot()
	return int64(s.BytesSent + s.BytesRecv)
}

// Addrs returns the registered addresses (diagnostics).
func (t *Chan) Addrs() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.handlers))
	for a := range t.handlers {
		out = append(out, a)
	}
	return out
}
