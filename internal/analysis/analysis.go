// Package analysis implements the paper's closed-form overhead analysis
// (§IV): the per-second resource update overhead of ROADS, SWORD and the
// centralized repository (Eqs. 1-3), ROADS' summary maintenance overhead
// (Eq. 4), and the storage overhead comparison of Table I. All formulas use
// the paper's notation and units (an attribute value has size 1, so a
// record has size r and a summary has size m*r).
package analysis

import (
	"fmt"
	"math"
	"strings"
)

// Params are the paper's analysis parameters.
type Params struct {
	N  float64 // number of resource owners
	K  float64 // records per owner
	R  float64 // attributes per record (record size)
	M  float64 // histogram buckets per attribute
	K2 float64 // k: children per ROADS server
	L  float64 // hierarchy has L+1 levels
	Tr float64 // record update period (seconds)
	Ts float64 // summary update period (seconds)
	// NServers overrides the derived server count when positive (used for
	// settings where n is given directly, like the simulation parameters).
	NServers float64
}

// PaperParams returns the parameter setting the paper evaluates its
// formulas with: r=25 attributes, m=100 buckets, k=5 children, L=4 levels
// (156 servers), t_r/t_s = 0.1, N=1000 owners, K=10000 records.
func PaperParams() Params {
	return Params{
		N:  1000,
		K:  10000,
		R:  25,
		M:  100,
		K2: 5,
		L:  4,
		Tr: 60,
		Ts: 600,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N <= 0 || p.K <= 0 || p.R <= 0 || p.M <= 0 || p.K2 <= 0 || p.L < 0 {
		return fmt.Errorf("analysis: all size parameters must be positive: %+v", p)
	}
	if p.Tr <= 0 || p.Ts <= 0 {
		return fmt.Errorf("analysis: update periods must be positive")
	}
	return nil
}

// Servers returns n, the number of servers in a full k-ary hierarchy of
// L+1 levels: (k^(L) - 1)/(k-1) ... the paper's example (k=5, L=4) counts
// 156 = 1 + 5 + 25 + 125 servers, i.e. levels 0..3 full: sum_{i=0..L-1} k^i.
// When NServers is set it takes precedence.
func (p Params) Servers() float64 {
	if p.NServers > 0 {
		return p.NServers
	}
	if p.K2 == 1 {
		return p.L
	}
	return (math.Pow(p.K2, p.L) - 1) / (p.K2 - 1)
}

// SimParams returns the paper's §V simulation setting: 320 servers, 500
// records per node, 16 attributes, degree 8, with the analysis-section
// histogram size m=100. Under these parameters the SWORD/ROADS update
// ratio is the paper's headline "1-2 orders of magnitude".
func SimParams() Params {
	return Params{
		N:        320,
		K:        500,
		R:        16,
		M:        100,
		K2:       8,
		L:        3,
		Tr:       60,
		Ts:       600,
		NServers: 320,
	}
}

// SummarySize returns the size of one summary, m*r.
func (p Params) SummarySize() float64 { return p.M * p.R }

// RecordSize returns the size of one record, r.
func (p Params) RecordSize() float64 { return p.R }

// UpdateROADS is Eq. (1): per-second update overhead of ROADS,
// rm(N + k*n*log n)/t_s — summary exports plus bottom-up aggregation plus
// top-down overlay replication, each refreshed every t_s seconds.
func (p Params) UpdateROADS() float64 {
	n := p.Servers()
	return p.R * p.M * (p.N + p.K2*n*math.Log2(n)) / p.Ts
}

// UpdateSWORD is Eq. (2): per-second update overhead of SWORD,
// r^2*K*N*log(n)/t_r — every record re-registered in r rings, each
// registration routed in O(log n) hops, every t_r seconds.
func (p Params) UpdateSWORD() float64 {
	n := p.Servers()
	return p.R * p.R * p.K * p.N * math.Log2(n) / p.Tr
}

// UpdateCentral is Eq. (3): per-second update overhead of the central
// repository, r*K*N/t_r — every record re-exported directly.
func (p Params) UpdateCentral() float64 {
	return p.R * p.K * p.N / p.Tr
}

// MaintenanceROADSWorst is Eq. (4): the worst-case per-node summary
// maintenance message count per second, O(k^2 log n)/t_s.
func (p Params) MaintenanceROADSWorst() float64 {
	n := p.Servers()
	return p.K2 * p.K2 * math.Log2(n) / p.Ts
}

// MaintenanceMessagesPerNode returns the per-epoch summary message count
// for a level-i node, ~k^2*i (it forwards its k children's summaries to
// each child, plus the overlay traffic along its root path).
func (p Params) MaintenanceMessagesPerNode(level float64) float64 {
	return p.K2 * p.K2 * level
}

// StorageROADS returns Table I's ROADS row: a level-i node stores k child
// summaries plus k*i replicated summaries, each of size rm -> rmk(i+1).
// The worst case is a leaf, i = L.
func (p Params) StorageROADS(level float64) float64 {
	return p.R * p.M * p.K2 * (level + 1)
}

// StorageROADSWorst is the leaf-level storage, the value Table I reports.
func (p Params) StorageROADSWorst() float64 { return p.StorageROADS(p.L) }

// StorageSWORD returns Table I's SWORD row: all KN records stored in each
// of the r rings of n/r servers -> r*K*N/(n/r) = r^2*K*N/n per server.
func (p Params) StorageSWORD() float64 {
	return p.R * p.R * p.K * p.N / p.Servers()
}

// StorageCentral returns Table I's central row: all KN records of size r.
func (p Params) StorageCentral() float64 {
	return p.R * p.K * p.N
}

// UpdateRatioROADSvsSWORD returns SWORD/ROADS update overhead — the paper's
// headline "1-2 orders of magnitude" claim (§IV-B).
func (p Params) UpdateRatioROADSvsSWORD() float64 {
	return p.UpdateSWORD() / p.UpdateROADS()
}

// Table1Row is one row of the storage overhead comparison.
type Table1Row struct {
	System  string
	Formula string
	Value   float64
}

// Table1 reproduces Table I with the given parameters. PaperValue holds the
// figure printed in the paper for its exemplary setting (2e5 / 6.4e8 / 1e9);
// see EXPERIMENTS.md for the reconciliation of the ROADS and SWORD cells
// (the paper's exemplary numbers imply slightly different level/n choices
// than its stated defaults, but the ordering and orders of magnitude are
// what the table demonstrates and both hold under our parameters).
func Table1(p Params) []Table1Row {
	return []Table1Row{
		{System: "ROADS", Formula: "rmk(i+1)", Value: p.StorageROADSWorst()},
		{System: "SWORD", Formula: "r^2*K*N/n", Value: p.StorageSWORD()},
		{System: "Central", Formula: "r*K*N", Value: p.StorageCentral()},
	}
}

// PaperTable1Values are the exemplary values printed in the paper.
var PaperTable1Values = map[string]float64{
	"ROADS":   2e5,
	"SWORD":   6.4e8,
	"Central": 1e9,
}

// Report renders the full analysis as a human-readable table.
func Report(p Params) string {
	var b strings.Builder
	n := p.Servers()
	fmt.Fprintf(&b, "Parameters: N=%.0f owners, K=%.0f records, r=%.0f attrs, m=%.0f buckets, k=%.0f children, L=%.0f -> n=%.0f servers, tr=%.0fs, ts=%.0fs\n\n",
		p.N, p.K, p.R, p.M, p.K2, p.L, n, p.Tr, p.Ts)
	fmt.Fprintf(&b, "Update overhead per second (Eqs. 1-3):\n")
	fmt.Fprintf(&b, "  ROADS   (Eq.1)  %14.3g  rm(N+kn*logn)/ts\n", p.UpdateROADS())
	fmt.Fprintf(&b, "  SWORD   (Eq.2)  %14.3g  r^2*K*N*logn/tr\n", p.UpdateSWORD())
	fmt.Fprintf(&b, "  Central (Eq.3)  %14.3g  r*K*N/tr\n", p.UpdateCentral())
	fmt.Fprintf(&b, "  SWORD/ROADS ratio: %.1fx (paper: 1-2 orders of magnitude)\n\n", p.UpdateRatioROADSvsSWORD())
	fmt.Fprintf(&b, "Summary maintenance, worst-case messages/s per node (Eq.4): %.3g\n\n", p.MaintenanceROADSWorst())
	fmt.Fprintf(&b, "Storage overhead per server (Table I):\n")
	for _, row := range Table1(p) {
		fmt.Fprintf(&b, "  %-8s %-12s %14.3g   (paper: %.3g)\n", row.System, row.Formula, row.Value, PaperTable1Values[row.System])
	}
	return b.String()
}
