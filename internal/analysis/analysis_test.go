package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := PaperParams()
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero N must fail")
	}
	bad = PaperParams()
	bad.Ts = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ts must fail")
	}
}

func TestServersMatchesPaperExample(t *testing.T) {
	p := PaperParams()
	// k=5, L=4 -> 1+5+25+125 = 156 servers (paper §IV-B).
	if got := p.Servers(); math.Abs(got-156) > 1e-9 {
		t.Fatalf("Servers = %g; want 156", got)
	}
	unary := p
	unary.K2 = 1
	if unary.Servers() != unary.L {
		t.Fatal("k=1 chain has L servers")
	}
}

func TestUpdateOrderingMatchesPaper(t *testing.T) {
	for _, p := range []Params{PaperParams(), SimParams()} {
		roads, sword, central := p.UpdateROADS(), p.UpdateSWORD(), p.UpdateCentral()
		// SWORD always loses to both (its per-record cost is r*logn times
		// the central repository's); ROADS beats the central repository
		// once the record volume is non-trivial (PaperParams), though not
		// necessarily at small K where constant summary traffic dominates.
		if !(roads < sword && central < sword) {
			t.Fatalf("ordering violated: ROADS=%g Central=%g SWORD=%g", roads, central, sword)
		}
		// Paper: SWORD is r*logn times the central repository.
		wantSwordOverCentral := p.R * math.Log2(p.Servers())
		if got := sword / central; math.Abs(got-wantSwordOverCentral)/wantSwordOverCentral > 1e-9 {
			t.Fatalf("SWORD/Central = %g; want r*logn = %g", got, wantSwordOverCentral)
		}
	}
	// Under the simulation-scale parameters the headline claim holds:
	// ROADS has 1-2 orders of magnitude less update overhead than SWORD.
	ratio := SimParams().UpdateRatioROADSvsSWORD()
	if ratio < 10 || ratio > 1000 {
		t.Fatalf("SWORD/ROADS = %.1f; want within 1-2 orders of magnitude", ratio)
	}
	// Under the storage-example parameters (K=10^4 records/owner) the gap
	// only widens.
	if PaperParams().UpdateRatioROADSvsSWORD() < ratio {
		t.Fatal("more records per owner must widen SWORD's disadvantage")
	}
}

func TestUpdateROADSIndependentOfRecords(t *testing.T) {
	p := PaperParams()
	more := p
	more.K *= 100
	if p.UpdateROADS() != more.UpdateROADS() {
		t.Fatal("ROADS update overhead must not depend on K")
	}
	if r := more.UpdateSWORD() / p.UpdateSWORD(); math.Abs(r-100) > 1e-9 {
		t.Fatalf("SWORD update overhead must be linear in K; ratio %g", r)
	}
	if r := more.UpdateCentral() / p.UpdateCentral(); math.Abs(r-100) > 1e-9 {
		t.Fatalf("central update overhead must be linear in K; ratio %g", r)
	}
}

func TestMaintenanceEq4(t *testing.T) {
	// Paper: for L=7, k=5, the largest per-node overhead is about 150
	// summary messages per ts.
	p := PaperParams()
	p.L = 7
	perNode := p.MaintenanceMessagesPerNode(p.L - 1)
	if perNode < 100 || perNode > 200 {
		t.Fatalf("per-node maintenance messages = %g; paper says ~150", perNode)
	}
	if p.MaintenanceROADSWorst() <= 0 {
		t.Fatal("worst-case maintenance must be positive")
	}
}

func TestStorageOrdering(t *testing.T) {
	p := PaperParams()
	rows := Table1(p)
	if len(rows) != 3 {
		t.Fatalf("Table1 has %d rows; want 3", len(rows))
	}
	roads, sword, central := rows[0].Value, rows[1].Value, rows[2].Value
	if !(roads < sword && sword < central) {
		t.Fatalf("storage ordering violated: %g %g %g", roads, sword, central)
	}
	// ROADS must be orders of magnitude below both.
	if sword/roads < 100 {
		t.Fatalf("SWORD/ROADS storage ratio %.1f; want >= 100 (orders of magnitude)", sword/roads)
	}
	// Central matches the paper's 1e9 exactly: r*K*N = 25*1e4*1e3.
	if central != 25*1e4*1e3 {
		t.Fatalf("central storage = %g; want 2.5e8... paper rounds r*K*N with r=100?", central)
	}
}

func TestStorageROADSGrowsWithLevel(t *testing.T) {
	p := PaperParams()
	if p.StorageROADS(0) >= p.StorageROADS(p.L) {
		t.Fatal("leaf storage must exceed root storage")
	}
	if p.StorageROADSWorst() != p.StorageROADS(p.L) {
		t.Fatal("worst case is the leaf level")
	}
}

func TestReportContainsAllSections(t *testing.T) {
	rep := Report(PaperParams())
	for _, want := range []string{"Eq.1", "Eq.2", "Eq.3", "Eq.4", "ROADS", "SWORD", "Central", "Table I"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
