// Package hierarchy implements the ROADS federated server hierarchy: the
// incremental join protocol that keeps the tree balanced (descend to the
// child branch of least depth, breaking ties by fewest descendants, with
// backtracking), root paths for loop avoidance and rejoin, departure and
// failure handling, and root election (paper §III-A).
//
// The package is pure tree logic, independent of any transport: the
// simulator drives it directly, and the live prototype wraps it with
// network messages.
package hierarchy

import (
	"fmt"
	"sort"
)

// AcceptFunc decides whether a server accepts a new child. The paper lets
// servers weigh "management and operational convenience, current load,
// bandwidth utilization and network delay"; the default accepts while the
// child count is below the configured maximum.
type AcceptFunc func(parent *Node, childID string) bool

// Node is one server's position in the hierarchy.
type Node struct {
	ID       string
	Parent   *Node
	Children []*Node

	// Depth of the subtree rooted here (leaf = 1), and total descendants
	// (excluding self); maintained by the tree's aggregation pass, mirroring
	// the paper's periodic bottom-up aggregation messages.
	SubtreeDepth int
	Descendants  int
}

// Level returns the node's distance from the root (root = 0).
func (n *Node) Level() int {
	l := 0
	for p := n.Parent; p != nil; p = p.Parent {
		l++
	}
	return l
}

// RootPath returns the servers from the root down to (and including) this
// node. The paper piggybacks this on heartbeats; children use it to rejoin
// starting at their grandparent and to avoid loops when choosing parents.
func (n *Node) RootPath() []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.ID)
	}
	out := make([]string, len(rev))
	for i, id := range rev {
		out[len(rev)-1-i] = id
	}
	return out
}

// Siblings returns the node's siblings (same parent, excluding itself).
func (n *Node) Siblings() []*Node {
	if n.Parent == nil {
		return nil
	}
	var out []*Node
	for _, c := range n.Parent.Children {
		if c != n {
			out = append(out, c)
		}
	}
	return out
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// sortChildren keeps child order deterministic for reproducible runs.
func (n *Node) sortChildren() {
	sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].ID < n.Children[j].ID })
}

// Tree is the full hierarchy.
type Tree struct {
	root        *Node
	nodes       map[string]*Node
	maxChildren int
	accept      AcceptFunc
}

// Option configures a Tree.
type Option func(*Tree)

// WithMaxChildren caps the number of children per server (the paper's
// default simulations use 8).
func WithMaxChildren(k int) Option {
	return func(t *Tree) { t.maxChildren = k }
}

// WithAcceptFunc overrides the child-acceptance policy.
func WithAcceptFunc(f AcceptFunc) Option {
	return func(t *Tree) { t.accept = f }
}

// New creates a hierarchy whose first server is the root.
func New(rootID string, opts ...Option) *Tree {
	t := &Tree{
		nodes:       make(map[string]*Node),
		maxChildren: 8,
	}
	for _, o := range opts {
		o(t)
	}
	if t.accept == nil {
		t.accept = func(p *Node, _ string) bool { return len(p.Children) < t.maxChildren }
	}
	t.root = &Node{ID: rootID, SubtreeDepth: 1}
	t.nodes[rootID] = t.root
	return t
}

// Root returns the current root.
func (t *Tree) Root() *Node { return t.root }

// Node looks up a server by ID.
func (t *Tree) Node(id string) (*Node, bool) {
	n, ok := t.nodes[id]
	return n, ok
}

// Len returns the number of servers in the hierarchy.
func (t *Tree) Len() int { return len(t.nodes) }

// MaxChildren returns the per-server child cap.
func (t *Tree) MaxChildren() int { return t.maxChildren }

// Nodes returns all server IDs in sorted order.
func (t *Tree) Nodes() []string {
	out := make([]string, 0, len(t.nodes))
	for id := range t.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// JoinSteps reports the path a join took, for message accounting: each
// entry is a server consulted during the descent.
type JoinSteps struct {
	Consulted []string
	Parent    string
}

// Join inserts a new server using the paper's descent: starting at the
// root, repeatedly move to the child whose branch has the least depth
// (ties: fewest descendants) until a server accepts the newcomer as a
// child; if a leaf refuses, backtrack and try other branches.
func (t *Tree) Join(id string) (*JoinSteps, error) {
	if id == "" {
		return nil, fmt.Errorf("hierarchy: empty server ID")
	}
	if _, dup := t.nodes[id]; dup {
		return nil, fmt.Errorf("hierarchy: server %q already joined", id)
	}
	steps := &JoinSteps{}
	parent := t.descend(t.root, id, steps, make(map[*Node]bool))
	if parent == nil {
		return nil, fmt.Errorf("hierarchy: no server accepts %q as child", id)
	}
	n := &Node{ID: id, Parent: parent, SubtreeDepth: 1}
	parent.Children = append(parent.Children, n)
	parent.sortChildren()
	t.nodes[id] = n
	t.refreshAggregates()
	steps.Parent = parent.ID
	return steps, nil
}

// descend implements the search with backtracking. visited guards against
// re-consulting a server after backtracking.
func (t *Tree) descend(cur *Node, childID string, steps *JoinSteps, visited map[*Node]bool) *Node {
	if visited[cur] {
		return nil
	}
	visited[cur] = true
	steps.Consulted = append(steps.Consulted, cur.ID)

	// Try descending first into the least-depth branch, per the paper:
	// the newcomer keeps querying children until someone accepts it; if it
	// reaches a leaf with no acceptor it backtracks. We interleave: ask
	// the current server to accept only when no child branch can take the
	// newcomer deeper — this grows balanced trees because acceptance at
	// shallow nodes fills the tree level by level.
	if t.accept(cur, childID) {
		return cur
	}
	children := append([]*Node(nil), cur.Children...)
	sort.Slice(children, func(i, j int) bool {
		if children[i].SubtreeDepth != children[j].SubtreeDepth {
			return children[i].SubtreeDepth < children[j].SubtreeDepth
		}
		if children[i].Descendants != children[j].Descendants {
			return children[i].Descendants < children[j].Descendants
		}
		return children[i].ID < children[j].ID
	})
	for _, c := range children {
		if p := t.descend(c, childID, steps, visited); p != nil {
			return p
		}
	}
	return nil
}

// refreshAggregates recomputes SubtreeDepth and Descendants for every node
// bottom-up, standing in for the paper's periodic aggregation messages.
func (t *Tree) refreshAggregates() {
	var walk func(n *Node) (depth, count int)
	walk = func(n *Node) (int, int) {
		maxDepth := 0
		total := 0
		for _, c := range n.Children {
			d, cnt := walk(c)
			if d > maxDepth {
				maxDepth = d
			}
			total += cnt + 1
		}
		n.SubtreeDepth = maxDepth + 1
		n.Descendants = total
		return n.SubtreeDepth, total
	}
	walk(t.root)
}

// Depth returns the number of levels in the hierarchy (root-only tree = 1).
func (t *Tree) Depth() int { return t.root.SubtreeDepth }

// Leave removes a server gracefully: its children rejoin starting from
// their grandparent (per their root path), falling back level by level up
// to the root, exactly as §III-A describes. Removing the root promotes an
// elected child first. It returns the IDs of servers that had to rejoin.
func (t *Tree) Leave(id string) ([]string, error) {
	n, ok := t.nodes[id]
	if !ok {
		return nil, fmt.Errorf("hierarchy: unknown server %q", id)
	}
	if len(t.nodes) == 1 {
		return nil, fmt.Errorf("hierarchy: cannot remove the last server %q", id)
	}
	if n == t.root {
		t.electRoot()
		n = t.nodes[id] // unchanged pointer, but root moved
	}
	parent := n.Parent
	// Detach from parent.
	for i, c := range parent.Children {
		if c == n {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			break
		}
	}
	orphans := append([]*Node(nil), n.Children...)
	n.Children = nil
	delete(t.nodes, id)

	var rejoined []string
	for _, o := range orphans {
		t.rejoinSubtree(o, parent)
		rejoined = append(rejoined, o.ID)
	}
	t.refreshAggregates()
	return rejoined, nil
}

// Fail handles an abrupt failure identically to Leave at the tree level
// (the live prototype differs: failure is detected by heartbeat loss rather
// than an announcement).
func (t *Tree) Fail(id string) ([]string, error) { return t.Leave(id) }

// rejoinSubtree attaches the orphaned subtree root under startFrom, walking
// up toward the root if no server in that branch accepts, and respecting
// loop avoidance (a node never attaches under its own subtree — impossible
// here since the subtree is detached, but the root-path check also rejects
// attaching under itself).
func (t *Tree) rejoinSubtree(orphan *Node, startFrom *Node) {
	for anchor := startFrom; anchor != nil; anchor = anchor.Parent {
		steps := &JoinSteps{}
		if p := t.descendForRejoin(anchor, orphan, steps, make(map[*Node]bool)); p != nil {
			orphan.Parent = p
			p.Children = append(p.Children, orphan)
			p.sortChildren()
			return
		}
	}
	// Last resort: the root must take it (temporarily exceeding the cap)
	// so no data is lost; the next maintenance cycle can rebalance.
	orphan.Parent = t.root
	t.root.Children = append(t.root.Children, orphan)
	t.root.sortChildren()
}

func (t *Tree) descendForRejoin(cur *Node, orphan *Node, steps *JoinSteps, visited map[*Node]bool) *Node {
	if cur == orphan || visited[cur] {
		return nil
	}
	visited[cur] = true
	if t.accept(cur, orphan.ID) {
		return cur
	}
	children := append([]*Node(nil), cur.Children...)
	sort.Slice(children, func(i, j int) bool {
		if children[i].SubtreeDepth != children[j].SubtreeDepth {
			return children[i].SubtreeDepth < children[j].SubtreeDepth
		}
		return children[i].ID < children[j].ID
	})
	for _, c := range children {
		if p := t.descendForRejoin(c, orphan, steps, visited); p != nil {
			return p
		}
	}
	return nil
}

// electRoot promotes one child of the failed/leaving root to be the new
// root, using the paper's simple rule (smallest ID — standing in for
// "smallest IP address"). The old root's remaining children become children
// of the new root.
func (t *Tree) electRoot() {
	old := t.root
	if len(old.Children) == 0 {
		return
	}
	winner := old.Children[0]
	for _, c := range old.Children[1:] {
		if c.ID < winner.ID {
			winner = c
		}
	}
	// Winner detaches from old root and adopts its former siblings.
	var rest []*Node
	for _, c := range old.Children {
		if c != winner {
			c.Parent = winner
			rest = append(rest, c)
		}
	}
	winner.Parent = nil
	winner.Children = append(winner.Children, rest...)
	winner.sortChildren()
	// Old root becomes a child of the winner (it is leaving anyway; Leave
	// will detach it right after).
	old.Children = nil
	old.Parent = winner
	winner.Children = append(winner.Children, old)
	winner.sortChildren()
	t.root = winner
	t.refreshAggregates()
}

// Validate checks structural invariants: single root, parent/child
// consistency, no cycles, node map matches the tree, and aggregates are
// correct. Tests and the simulator call it after mutations.
func (t *Tree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("hierarchy: nil root")
	}
	if t.root.Parent != nil {
		return fmt.Errorf("hierarchy: root %q has a parent", t.root.ID)
	}
	seen := make(map[string]bool)
	var walk func(n *Node) (depth, count int, err error)
	walk = func(n *Node) (int, int, error) {
		if seen[n.ID] {
			return 0, 0, fmt.Errorf("hierarchy: cycle or duplicate at %q", n.ID)
		}
		seen[n.ID] = true
		if got, ok := t.nodes[n.ID]; !ok || got != n {
			return 0, 0, fmt.Errorf("hierarchy: node map out of sync at %q", n.ID)
		}
		maxDepth, total := 0, 0
		for _, c := range n.Children {
			if c.Parent != n {
				return 0, 0, fmt.Errorf("hierarchy: %q's child %q has wrong parent", n.ID, c.ID)
			}
			d, cnt, err := walk(c)
			if err != nil {
				return 0, 0, err
			}
			if d > maxDepth {
				maxDepth = d
			}
			total += cnt + 1
		}
		if n.SubtreeDepth != maxDepth+1 {
			return 0, 0, fmt.Errorf("hierarchy: %q SubtreeDepth=%d, want %d", n.ID, n.SubtreeDepth, maxDepth+1)
		}
		if n.Descendants != total {
			return 0, 0, fmt.Errorf("hierarchy: %q Descendants=%d, want %d", n.ID, n.Descendants, total)
		}
		return n.SubtreeDepth, total, nil
	}
	if _, _, err := walk(t.root); err != nil {
		return err
	}
	if len(seen) != len(t.nodes) {
		return fmt.Errorf("hierarchy: %d reachable nodes, %d registered", len(seen), len(t.nodes))
	}
	return nil
}

// BuildBalanced constructs a hierarchy of n servers named by idFor, joining
// them sequentially — the standard way experiments build the paper's
// "balanced hierarchy of L+1 levels where each parent has k children".
func BuildBalanced(n int, maxChildren int, idFor func(i int) string) (*Tree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hierarchy: need at least one server")
	}
	t := New(idFor(0), WithMaxChildren(maxChildren))
	for i := 1; i < n; i++ {
		if _, err := t.Join(idFor(i)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
