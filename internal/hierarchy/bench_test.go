package hierarchy

import (
	"fmt"
	"testing"
)

func BenchmarkJoin1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildBalanced(1000, 8, func(j int) string { return fmt.Sprintf("s%04d", j) }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeaveRejoin(b *testing.B) {
	tr, err := BuildBalanced(200, 5, func(j int) string { return fmt.Sprintf("s%04d", j) })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("s%04d", 1+(i%150))
		if _, err := tr.Leave(id); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Join(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	tr, err := BuildBalanced(500, 8, func(j int) string { return fmt.Sprintf("s%04d", j) })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
