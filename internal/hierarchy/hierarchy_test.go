package hierarchy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func idFor(i int) string { return fmt.Sprintf("s%03d", i) }

func TestSingleNodeTree(t *testing.T) {
	tr := New("root")
	if tr.Len() != 1 || tr.Depth() != 1 {
		t.Fatalf("Len=%d Depth=%d; want 1/1", tr.Len(), tr.Depth())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Leave("root"); err == nil {
		t.Fatal("removing the last server must fail")
	}
}

func TestJoinErrors(t *testing.T) {
	tr := New("root")
	if _, err := tr.Join(""); err == nil {
		t.Fatal("empty ID must be rejected")
	}
	if _, err := tr.Join("root"); err == nil {
		t.Fatal("duplicate ID must be rejected")
	}
}

func TestJoinFillsRootFirst(t *testing.T) {
	tr := New("root", WithMaxChildren(3))
	for i := 0; i < 3; i++ {
		steps, err := tr.Join(idFor(i))
		if err != nil {
			t.Fatal(err)
		}
		if steps.Parent != "root" {
			t.Fatalf("join %d attached to %s; want root", i, steps.Parent)
		}
	}
	// Fourth join must descend to a child.
	steps, err := tr.Join(idFor(3))
	if err != nil {
		t.Fatal(err)
	}
	if steps.Parent == "root" {
		t.Fatal("root is full; fourth join must attach deeper")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedGrowth(t *testing.T) {
	// With k=5 and 156 servers we should get exactly the paper's 4-level
	// hierarchy (1 + 5 + 25 + 125 = 156).
	tr, err := BuildBalanced(156, 5, idFor)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 4 {
		t.Fatalf("Depth = %d; want 4", tr.Depth())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// One more server forces a fifth level.
	if _, err := tr.Join("extra"); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 5 {
		t.Fatalf("Depth after 157th = %d; want 5", tr.Depth())
	}
}

func TestDepthLogarithmic(t *testing.T) {
	for _, n := range []int{64, 320, 640} {
		tr, err := BuildBalanced(n, 8, idFor)
		if err != nil {
			t.Fatal(err)
		}
		// Perfectly balanced depth would be ceil(log_8 of n); sequential
		// join should stay within one extra level.
		ideal := int(math.Ceil(math.Log(float64(n)*7+1)/math.Log(8))) + 1
		if tr.Depth() > ideal {
			t.Fatalf("n=%d depth=%d exceeds ideal+1=%d", n, tr.Depth(), ideal)
		}
	}
}

func TestRootPathAndLevel(t *testing.T) {
	tr, err := BuildBalanced(30, 3, idFor)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tr.Nodes() {
		n, _ := tr.Node(id)
		path := n.RootPath()
		if path[0] != tr.Root().ID {
			t.Fatalf("root path of %s starts at %s; want root", id, path[0])
		}
		if path[len(path)-1] != id {
			t.Fatalf("root path of %s ends at %s", id, path[len(path)-1])
		}
		if len(path) != n.Level()+1 {
			t.Fatalf("path length %d != level+1 %d", len(path), n.Level()+1)
		}
	}
}

func TestSiblings(t *testing.T) {
	tr, _ := BuildBalanced(10, 3, idFor)
	root := tr.Root()
	if len(root.Siblings()) != 0 {
		t.Fatal("root has no siblings")
	}
	c0 := root.Children[0]
	sibs := c0.Siblings()
	if len(sibs) != len(root.Children)-1 {
		t.Fatalf("siblings = %d; want %d", len(sibs), len(root.Children)-1)
	}
	for _, s := range sibs {
		if s == c0 {
			t.Fatal("node must not be its own sibling")
		}
	}
}

func TestLeaveInternalNodeRejoinsChildren(t *testing.T) {
	tr, err := BuildBalanced(40, 3, idFor)
	if err != nil {
		t.Fatal(err)
	}
	// Pick an internal (non-root) node with children.
	var victim *Node
	for _, id := range tr.Nodes() {
		n, _ := tr.Node(id)
		if n != tr.Root() && len(n.Children) > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Fatal("no internal node found")
	}
	before := tr.Len()
	rejoined, err := tr.Leave(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejoined) == 0 {
		t.Fatal("children should have rejoined")
	}
	if tr.Len() != before-1 {
		t.Fatalf("Len = %d; want %d", tr.Len(), before-1)
	}
	if _, ok := tr.Node(victim.ID); ok {
		t.Fatal("victim still registered")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveLeaf(t *testing.T) {
	tr, _ := BuildBalanced(10, 3, idFor)
	var leaf *Node
	for _, id := range tr.Nodes() {
		n, _ := tr.Node(id)
		if n.IsLeaf() {
			leaf = n
			break
		}
	}
	rejoined, err := tr.Leave(leaf.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejoined) != 0 {
		t.Fatal("leaf has no children to rejoin")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveUnknown(t *testing.T) {
	tr := New("root")
	if _, err := tr.Leave("ghost"); err == nil {
		t.Fatal("unknown server must error")
	}
}

func TestRootFailureElection(t *testing.T) {
	tr, err := BuildBalanced(20, 3, idFor)
	if err != nil {
		t.Fatal(err)
	}
	oldRoot := tr.Root().ID
	// The election rule is smallest ID among the root's children.
	wantNew := tr.Root().Children[0].ID
	for _, c := range tr.Root().Children[1:] {
		if c.ID < wantNew {
			wantNew = c.ID
		}
	}
	if _, err := tr.Fail(oldRoot); err != nil {
		t.Fatal(err)
	}
	if tr.Root().ID != wantNew {
		t.Fatalf("new root = %s; want %s", tr.Root().ID, wantNew)
	}
	if _, ok := tr.Node(oldRoot); ok {
		t.Fatal("failed root still registered")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptFuncHonored(t *testing.T) {
	// A root that refuses all children forces joins to fail (single node
	// can never grow).
	tr := New("root", WithAcceptFunc(func(p *Node, _ string) bool { return false }))
	if _, err := tr.Join("x"); err == nil {
		t.Fatal("join must fail when nobody accepts")
	}
	// Accept only at the root: tree becomes a star until the cap (none
	// here), so everything lands on the root.
	star := New("root", WithAcceptFunc(func(p *Node, _ string) bool { return p.Parent == nil }))
	for i := 0; i < 10; i++ {
		steps, err := star.Join(idFor(i))
		if err != nil {
			t.Fatal(err)
		}
		if steps.Parent != "root" {
			t.Fatal("star accept func must attach everything to root")
		}
	}
	if star.Depth() != 2 {
		t.Fatalf("star depth = %d; want 2", star.Depth())
	}
}

func TestJoinConsultsServers(t *testing.T) {
	tr, _ := BuildBalanced(20, 3, idFor)
	steps, err := tr.Join("newcomer")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps.Consulted) == 0 {
		t.Fatal("join must consult at least the root")
	}
	if steps.Consulted[0] != tr.Root().ID {
		t.Fatal("join must start at the root")
	}
}

// Property: after any random interleaving of joins and leaves the tree
// validates and retains the surviving servers.
func TestRandomChurnQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New("root", WithMaxChildren(1+rng.Intn(4)))
		alive := map[string]bool{"root": true}
		next := 0
		for op := 0; op < 60; op++ {
			if rng.Float64() < 0.65 || len(alive) < 3 {
				id := fmt.Sprintf("n%d", next)
				next++
				if _, err := tr.Join(id); err != nil {
					return false
				}
				alive[id] = true
			} else {
				ids := tr.Nodes()
				victim := ids[rng.Intn(len(ids))]
				if len(alive) == 1 {
					continue
				}
				if _, err := tr.Leave(victim); err != nil {
					return false
				}
				delete(alive, victim)
			}
			if err := tr.Validate(); err != nil {
				t.Logf("validate failed after op %d: %v", op, err)
				return false
			}
		}
		if tr.Len() != len(alive) {
			return false
		}
		for id := range alive {
			if _, ok := tr.Node(id); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
