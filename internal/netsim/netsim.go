// Package netsim is a discrete-event network simulator: a virtual clock, an
// event queue, and per-message byte accounting split into the traffic
// classes the paper measures (resource updates, query forwarding, hierarchy
// maintenance). Both ROADS and the SWORD/centralized baselines run on it so
// their latency and overhead numbers are directly comparable.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// MsgClass categorizes traffic for overhead accounting.
type MsgClass uint8

const (
	// Update covers resource data propagation: summary exports, bottom-up
	// aggregation, overlay replication, and (for the baselines) raw record
	// registration.
	Update MsgClass = iota
	// Query covers query forwarding messages.
	Query
	// Response covers redirects and result returns.
	Response
	// Maintenance covers heartbeats, join and rejoin traffic.
	Maintenance
	numClasses
)

func (c MsgClass) String() string {
	switch c {
	case Update:
		return "update"
	case Query:
		return "query"
	case Response:
		return "response"
	case Maintenance:
		return "maintenance"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break so equal-time events run FIFO (determinism)
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Latency maps a pair of host indices to a one-way delay.
type Latency interface {
	Latency(from, to int) time.Duration
}

// Stats accumulates traffic counters per class.
type Stats struct {
	Bytes    [numClasses]int64
	Messages [numClasses]int64
}

// Add records one message of the given class and size.
func (s *Stats) Add(c MsgClass, bytes int) {
	s.Bytes[c] += int64(bytes)
	s.Messages[c]++
}

// TotalBytes sums bytes across all classes.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// Sim is the discrete-event simulator. It is single-goroutine: events run
// sequentially in virtual-time order, so handlers need no locking. (The
// experiment harness achieves parallelism by running independent Sims on
// separate goroutines, one per run/seed.)
type Sim struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	net   Latency
	Stats Stats
	// Bandwidth, when positive, models link capacity in bytes/second:
	// message delivery takes latency + size/Bandwidth. Zero means
	// infinite capacity (pure propagation delay), the paper's model.
	Bandwidth float64
}

// New creates a simulator over the given latency model.
func New(net Latency) *Sim {
	return &Sim{net: net}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Send accounts a message of class c and size bytes from host `from` to
// host `to`, and schedules deliver to run after the pairwise latency plus
// any transfer time. deliver may be nil for fire-and-forget accounting.
func (s *Sim) Send(from, to int, c MsgClass, bytes int, deliver func()) {
	s.Stats.Add(c, bytes)
	lat := s.net.Latency(from, to) + s.TransferTime(bytes)
	if deliver != nil {
		s.After(lat, deliver)
	}
}

// TransferTime returns the serialization delay of a message of the given
// size under the configured bandwidth (zero when bandwidth is unlimited).
func (s *Sim) TransferTime(bytes int) time.Duration {
	if s.Bandwidth <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / s.Bandwidth * float64(time.Second))
}

// Account records traffic without scheduling delivery — used for periodic
// background flows (e.g. per-second update overhead) whose timing is
// analyzed rather than simulated.
func (s *Sim) Account(c MsgClass, bytes int) {
	s.Stats.Add(c, bytes)
}

// LatencyBetween exposes the underlying latency model.
func (s *Sim) LatencyBetween(from, to int) time.Duration {
	return s.net.Latency(from, to)
}

// Run drains the event queue, advancing virtual time. It returns the final
// virtual time.
func (s *Sim) Run() time.Duration {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil processes events up to and including virtual time t, leaving
// later events queued. The clock ends at t.
func (s *Sim) RunUntil(t time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }

// ResetStats zeroes the traffic counters (virtual time is preserved).
func (s *Sim) ResetStats() { s.Stats = Stats{} }

// ConstLatency is a trivial latency model for tests: every distinct pair
// has the same delay.
type ConstLatency time.Duration

// Latency implements the Latency interface.
func (c ConstLatency) Latency(from, to int) time.Duration {
	if from == to {
		return 0
	}
	return time.Duration(c)
}
