package netsim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(ConstLatency(0))
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("final time = %v; want 30ms", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v; want [1 2 3]", order)
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New(ConstLatency(0))
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New(ConstLatency(0))
	var hit time.Duration
	s.After(10*time.Millisecond, func() {
		s.After(5*time.Millisecond, func() {
			hit = s.Now()
		})
	})
	s.Run()
	if hit != 15*time.Millisecond {
		t.Fatalf("nested event ran at %v; want 15ms", hit)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New(ConstLatency(0))
	ran := false
	s.At(10*time.Millisecond, func() {
		s.At(5*time.Millisecond, func() { ran = true }) // in the past
	})
	end := s.Run()
	if !ran {
		t.Fatal("past-scheduled event must still run")
	}
	if end != 10*time.Millisecond {
		t.Fatalf("final time = %v; want 10ms (clamped)", end)
	}
	s2 := New(ConstLatency(0))
	s2.After(-5*time.Millisecond, func() {})
	s2.Run() // negative delay clamps to 0; must not panic
}

func TestSendAccountsAndDelivers(t *testing.T) {
	s := New(ConstLatency(7 * time.Millisecond))
	var deliveredAt time.Duration
	s.Send(0, 1, Query, 100, func() { deliveredAt = s.Now() })
	s.Run()
	if deliveredAt != 7*time.Millisecond {
		t.Fatalf("delivered at %v; want 7ms", deliveredAt)
	}
	if s.Stats.Bytes[Query] != 100 || s.Stats.Messages[Query] != 1 {
		t.Fatalf("query stats = %d bytes / %d msgs; want 100/1", s.Stats.Bytes[Query], s.Stats.Messages[Query])
	}
}

func TestSendNilDeliver(t *testing.T) {
	s := New(ConstLatency(time.Millisecond))
	s.Send(0, 1, Update, 42, nil)
	if s.Pending() != 0 {
		t.Fatal("nil deliver must not schedule an event")
	}
	if s.Stats.Bytes[Update] != 42 {
		t.Fatal("bytes must still be accounted")
	}
}

func TestAccountAndTotals(t *testing.T) {
	s := New(ConstLatency(0))
	s.Account(Update, 10)
	s.Account(Query, 20)
	s.Account(Response, 30)
	s.Account(Maintenance, 40)
	if got := s.Stats.TotalBytes(); got != 100 {
		t.Fatalf("TotalBytes = %d; want 100", got)
	}
	s.ResetStats()
	if s.Stats.TotalBytes() != 0 {
		t.Fatal("ResetStats must zero counters")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(ConstLatency(0))
	var ran []int
	s.At(10*time.Millisecond, func() { ran = append(ran, 1) })
	s.At(20*time.Millisecond, func() { ran = append(ran, 2) })
	s.RunUntil(15 * time.Millisecond)
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("RunUntil ran %v; want [1]", ran)
	}
	if s.Now() != 15*time.Millisecond {
		t.Fatalf("Now = %v; want 15ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d; want 1", s.Pending())
	}
	s.Run()
	if len(ran) != 2 {
		t.Fatal("remaining event must run on Run()")
	}
}

func TestConstLatencySelf(t *testing.T) {
	c := ConstLatency(9 * time.Millisecond)
	if c.Latency(3, 3) != 0 {
		t.Fatal("self latency must be 0")
	}
	if c.Latency(1, 2) != 9*time.Millisecond {
		t.Fatal("pair latency must be the constant")
	}
}

func TestMsgClassString(t *testing.T) {
	for c, want := range map[MsgClass]string{Update: "update", Query: "query", Response: "response", Maintenance: "maintenance"} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q; want %q", c, c.String(), want)
		}
	}
}

func TestBandwidthTransferTime(t *testing.T) {
	s := New(ConstLatency(10 * time.Millisecond))
	if s.TransferTime(1000) != 0 {
		t.Fatal("zero bandwidth means no transfer delay")
	}
	s.Bandwidth = 1e6 // 1 MB/s
	if got := s.TransferTime(1e6); got != time.Second {
		t.Fatalf("TransferTime(1MB @1MB/s) = %v; want 1s", got)
	}
	if s.TransferTime(0) != 0 || s.TransferTime(-5) != 0 {
		t.Fatal("non-positive sizes transfer instantly")
	}
	var deliveredAt time.Duration
	s.Send(0, 1, Query, 500000, func() { deliveredAt = s.Now() })
	s.Run()
	want := 10*time.Millisecond + 500*time.Millisecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v; want %v (latency + transfer)", deliveredAt, want)
	}
}
