package experiment

// NodesSweepResult bundles the three figures produced by the system-size
// sweep.
type NodesSweepResult struct {
	Fig3Latency *Series // Fig. 3: query latency vs number of nodes
	Fig4Update  *Series // Fig. 4: update overhead vs number of nodes
	Fig5Query   *Series // Fig. 5: query overhead vs number of nodes
}

// DefaultNodeSweep is the paper's x-axis: 64..640 step 64.
func DefaultNodeSweep() []int {
	var out []int
	for n := 64; n <= 640; n += 64 {
		out = append(out, n)
	}
	return out
}

// SweepNodes varies the number of nodes (Figs. 3-5). nodesAxis may be nil
// for the paper's 64..640 sweep.
func SweepNodes(opt Options, nodesAxis []int) (*NodesSweepResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if nodesAxis == nil {
		nodesAxis = DefaultNodeSweep()
	}
	out := &NodesSweepResult{
		Fig3Latency: newSeries("Fig. 3", "nodes", "query latency (ms)", "ROADS", "SWORD"),
		Fig4Update:  newSeries("Fig. 4", "nodes", "update overhead (bytes/s)", "ROADS", "SWORD"),
		Fig5Query:   newSeries("Fig. 5", "nodes", "query overhead (bytes)", "ROADS", "SWORD"),
	}
	for _, n := range nodesAxis {
		cfg := opt.point(opt.Seed)
		cfg.nodes = n
		pr, err := averagePoints(cfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		out.Fig3Latency.add(float64(n), map[string]float64{"ROADS": pr.roadsLatencyMs, "SWORD": pr.swordLatencyMs})
		out.Fig4Update.add(float64(n), map[string]float64{"ROADS": pr.roadsUpdateBps, "SWORD": pr.swordUpdateBps})
		out.Fig5Query.add(float64(n), map[string]float64{"ROADS": pr.roadsQueryBytes, "SWORD": pr.swordQueryBytes})
	}
	return out, nil
}

// DimsSweepResult bundles the query-dimensionality figures.
type DimsSweepResult struct {
	Fig6Latency *Series // Fig. 6: latency vs query dimensions
	Fig7Query   *Series // Fig. 7: query overhead vs query dimensions
}

// SweepDims varies the query dimensionality 2..8 (Figs. 6-7).
func SweepDims(opt Options, dimsAxis []int) (*DimsSweepResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if dimsAxis == nil {
		dimsAxis = []int{2, 3, 4, 5, 6, 7, 8}
	}
	out := &DimsSweepResult{
		Fig6Latency: newSeries("Fig. 6", "query dims", "query latency (ms)", "ROADS", "SWORD"),
		Fig7Query:   newSeries("Fig. 7", "query dims", "query overhead (bytes)", "ROADS", "SWORD"),
	}
	for _, d := range dimsAxis {
		cfg := opt.point(opt.Seed)
		cfg.dims = d
		pr, err := averagePoints(cfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		out.Fig6Latency.add(float64(d), map[string]float64{"ROADS": pr.roadsLatencyMs, "SWORD": pr.swordLatencyMs})
		out.Fig7Query.add(float64(d), map[string]float64{"ROADS": pr.roadsQueryBytes, "SWORD": pr.swordQueryBytes})
	}
	return out, nil
}

// SweepRecords varies the per-node record count (Fig. 8: update overhead).
// Queries are skipped: as the paper notes, latency and query overhead do
// not change with the record count, only the update traffic does.
func SweepRecords(opt Options, recordsAxis []int) (*Series, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if recordsAxis == nil {
		recordsAxis = []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	}
	s := newSeries("Fig. 8", "records per node", "update overhead (bytes/s)", "ROADS", "SWORD")
	for _, k := range recordsAxis {
		cfg := opt.point(opt.Seed)
		cfg.records = k
		cfg.queries = 1 // updates only; one token query keeps validation happy
		pr, err := averagePoints(cfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		s.add(float64(k), map[string]float64{"ROADS": pr.roadsUpdateBps, "SWORD": pr.swordUpdateBps})
	}
	return s, nil
}

// SweepOverlap varies the data overlap factor Of (Fig. 9, ROADS only): each
// node's first-8-attribute data falls in a window of length Of/nodes.
func SweepOverlap(opt Options, overlapAxis []float64) (*Series, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if overlapAxis == nil {
		overlapAxis = []float64{1, 2, 4, 6, 8, 10, 12}
	}
	s := newSeries("Fig. 9", "data overlap factor", "query latency (ms)", "ROADS", "contacted")
	for _, of := range overlapAxis {
		cfg := opt.point(opt.Seed)
		cfg.overlap = of
		cfg.runSWORD = false
		pr, err := averagePoints(cfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		s.add(of, map[string]float64{"ROADS": pr.roadsLatencyMs, "contacted": pr.roadsContacted})
	}
	return s, nil
}

// SweepDegree varies the hierarchy node degree (Fig. 10, ROADS only).
func SweepDegree(opt Options, degreeAxis []int) (*Series, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if degreeAxis == nil {
		degreeAxis = []int{4, 5, 6, 7, 8, 9, 10, 11, 12}
	}
	s := newSeries("Fig. 10", "node degree", "query latency (ms)", "ROADS", "depth", "query bytes")
	for _, k := range degreeAxis {
		cfg := opt.point(opt.Seed)
		cfg.degree = k
		cfg.runSWORD = false
		pr, err := averagePoints(cfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		s.add(float64(k), map[string]float64{"ROADS": pr.roadsLatencyMs, "depth": pr.roadsDepth, "query bytes": pr.roadsQueryBytes})
	}
	return s, nil
}

// AblationResult compares design variants (DESIGN.md §5).
type AblationResult struct {
	// OverlayLatency compares query latency with and without the
	// replication overlay (root-start basic hierarchy).
	OverlayLatency *Series
	// RootLoad compares the fraction of queries that traverse the root.
	RootLoad *Series
}

// SweepOverlayAblation measures what the replication overlay buys: latency
// and root load with the overlay on vs off, across system sizes.
func SweepOverlayAblation(opt Options, nodesAxis []int) (*AblationResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if nodesAxis == nil {
		nodesAxis = []int{64, 192, 320, 448, 640}
	}
	out := &AblationResult{
		OverlayLatency: newSeries("Ablation: overlay", "nodes", "query latency (ms)", "overlay", "root-start"),
		RootLoad:       newSeries("Ablation: root load", "nodes", "root-hit fraction", "overlay", "root-start"),
	}
	for _, n := range nodesAxis {
		withCfg := opt.point(opt.Seed)
		withCfg.nodes = n
		withCfg.runSWORD = false
		with, err := averagePoints(withCfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		withoutCfg := withCfg
		withoutCfg.overlayEnabled = false
		without, err := averagePoints(withoutCfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		out.OverlayLatency.add(float64(n), map[string]float64{"overlay": with.roadsLatencyMs, "root-start": without.roadsLatencyMs})
		out.RootLoad.add(float64(n), map[string]float64{"overlay": with.roadsRootHit, "root-start": without.roadsRootHit})
	}
	return out, nil
}

// SweepBucketsAblation measures the histogram-resolution tradeoff: summary
// size (update traffic) against search precision (servers contacted).
func SweepBucketsAblation(opt Options, bucketsAxis []int) (*Series, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if bucketsAxis == nil {
		bucketsAxis = []int{10, 50, 100, 500, 1000, 2000}
	}
	s := newSeries("Ablation: buckets", "histogram buckets", "mixed", "update bytes/s", "contacted", "latency ms")
	for _, m := range bucketsAxis {
		cfg := opt.point(opt.Seed)
		cfg.buckets = m
		cfg.runSWORD = false
		pr, err := averagePoints(cfg, opt.Runs, opt.Seed)
		if err != nil {
			return nil, err
		}
		s.add(float64(m), map[string]float64{
			"update bytes/s": pr.roadsUpdateBps,
			"contacted":      pr.roadsContacted,
			"latency ms":     pr.roadsLatencyMs,
		})
	}
	return s, nil
}
