package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleSeries() *Series {
	s := newSeries("Fig. X", "nodes", "latency (ms)", "ROADS", "SWORD")
	s.add(64, map[string]float64{"ROADS": 344.7, "SWORD": 322.5})
	s.add(128, map[string]float64{"ROADS": 558, "SWORD": 450.7})
	return s
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := sampleSeries()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.XLabel != s.XLabel || len(back.X) != 2 {
		t.Fatalf("round trip lost metadata: %+v", back)
	}
	if back.Y["ROADS"][1] != 558 {
		t.Fatalf("round trip lost data: %v", back.Y)
	}
	if len(back.Order) != 2 || back.Order[0] != "ROADS" {
		t.Fatalf("round trip lost column order: %v", back.Order)
	}
}

func TestSeriesUnmarshalValidates(t *testing.T) {
	bad := `{"name":"x","x":[1,2],"columns":["A"],"y":{"A":[1]}}`
	var s Series
	if err := json.Unmarshal([]byte(bad), &s); err == nil {
		t.Fatal("mismatched column length must fail")
	}
	missing := `{"name":"x","x":[1],"columns":["A"],"y":{}}`
	if err := json.Unmarshal([]byte(missing), &s); err == nil {
		t.Fatal("missing column must fail")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := sampleSeries()
	out, err := s.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines; want 3:\n%s", len(lines), out)
	}
	if lines[0] != "nodes,ROADS,SWORD" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "64,344.7,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestSeriesPlot(t *testing.T) {
	s := sampleSeries()
	out := s.Plot(40, 8)
	for _, want := range []string{"Fig. X", "*=ROADS", "o=SWORD", "558", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Marker characters must appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("plot has no markers:\n%s", out)
	}
	// Degenerate cases must not panic.
	empty := newSeries("E", "x", "y", "A")
	if !strings.Contains(empty.Plot(40, 8), "no data") {
		t.Fatal("empty plot should say so")
	}
	flat := newSeries("F", "x", "y", "A")
	flat.add(1, map[string]float64{"A": 5})
	flat.add(1, map[string]float64{"A": 5}) // zero x and y ranges
	_ = flat.Plot(3, 2)                     // tiny dims clamp
}
