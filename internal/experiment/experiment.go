// Package experiment reproduces the paper's evaluation (§V): each sweep
// regenerates the data behind one or more figures, running ROADS and the
// SWORD / centralized baselines on identical workloads, latency spaces and
// query streams. Figures sharing a sweep are computed in one pass:
//
//	SweepNodes       -> Figs. 3, 4, 5  (latency / update / query overhead vs n)
//	SweepDims        -> Figs. 6, 7     (latency / query overhead vs query dims)
//	SweepRecords     -> Fig. 8         (update overhead vs records per node)
//	SweepOverlap     -> Fig. 9         (latency vs data overlap factor)
//	SweepDegree      -> Fig. 10        (latency vs node degree)
//	SweepSelectivity -> Fig. 11        (response time vs query selectivity)
package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"roads/internal/coords"
	"roads/internal/core"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/store"
	"roads/internal/summary"
	"roads/internal/sword"
	"roads/internal/workload"
)

// Options control the scale of an experiment.
type Options struct {
	// Runs is how many independently seeded repetitions are averaged
	// (paper: 10).
	Runs int
	// Queries per run (paper: 500).
	Queries int
	// Seed is the base RNG seed; run i uses Seed+i.
	Seed int64
	// Nodes / RecordsPerNode / Dims / Degree / Buckets are the defaults a
	// sweep holds fixed while it varies its own axis.
	Nodes          int
	RecordsPerNode int
	Dims           int
	Degree         int
	Buckets        int
	// QueryRange is the per-dimension range length (paper: 0.25).
	QueryRange float64
	// WindowLen overrides the workload's Window-distribution length (0 =
	// the paper's 0.5). Shorter windows make per-node data more distinct,
	// strengthening summary pruning — see EXPERIMENTS.md on Fig. 6.
	WindowLen float64
	// MeanLatency calibrates the synthesized delay space.
	MeanLatency time.Duration
	// TrSeconds / TsSeconds are the record and summary refresh periods for
	// per-second overhead normalization (paper: t_r/t_s = 0.1).
	TrSeconds, TsSeconds float64
	// Cost models store backends (Fig. 11 only).
	Cost store.CostModel
}

// Default returns the paper's full-scale evaluation settings.
func Default() Options {
	return Options{
		Runs:           10,
		Queries:        500,
		Seed:           1,
		Nodes:          320,
		RecordsPerNode: 500,
		Dims:           6,
		Degree:         8,
		Buckets:        1000,
		QueryRange:     workload.DefaultQueryRange,
		MeanLatency:    80 * time.Millisecond,
		TrSeconds:      60,
		TsSeconds:      600,
		Cost: store.CostModel{
			PerQuery:  2 * time.Millisecond,
			PerScan:   2 * time.Microsecond,
			PerRecord: 500 * time.Microsecond,
		},
	}
}

// Quick returns a reduced-scale profile for tests and smoke benchmarks;
// the shapes survive, the absolute numbers are noisier.
func Quick() Options {
	o := Default()
	o.Runs = 2
	o.Queries = 60
	o.Nodes = 96
	o.RecordsPerNode = 100
	o.Buckets = 300
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Runs <= 0 || o.Queries <= 0 || o.Nodes <= 1 || o.RecordsPerNode <= 0 {
		return fmt.Errorf("experiment: Runs/Queries/Nodes/RecordsPerNode must be positive: %+v", o)
	}
	if o.Dims <= 0 || o.Degree <= 1 || o.Buckets <= 0 {
		return fmt.Errorf("experiment: Dims/Degree/Buckets must be positive")
	}
	if o.QueryRange <= 0 || o.QueryRange > 1 {
		return fmt.Errorf("experiment: QueryRange out of (0,1]")
	}
	if o.TrSeconds <= 0 || o.TsSeconds <= 0 {
		return fmt.Errorf("experiment: refresh periods must be positive")
	}
	return nil
}

// Series is one experiment's output: an x-axis and named y-columns, plus
// labels matching the paper's figure axes.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      map[string][]float64
	// Order fixes the column order for printing.
	Order []string
}

func newSeries(name, xlabel, ylabel string, cols ...string) *Series {
	s := &Series{Name: name, XLabel: xlabel, YLabel: ylabel, Y: map[string][]float64{}, Order: cols}
	for _, c := range cols {
		s.Y[c] = nil
	}
	return s
}

func (s *Series) add(x float64, vals map[string]float64) {
	s.X = append(s.X, x)
	for _, c := range s.Order {
		s.Y[c] = append(s.Y[c], vals[c])
	}
}

// Format renders the series as an aligned text table.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%s vs %s)\n", s.Name, s.YLabel, s.XLabel)
	fmt.Fprintf(&b, "%12s", s.XLabel)
	for _, c := range s.Order {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteString("\n")
	for i, x := range s.X {
		fmt.Fprintf(&b, "%12g", x)
		for _, c := range s.Order {
			fmt.Fprintf(&b, " %16.4g", s.Y[c][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// pointConfig is the full parameter set of one simulated data point.
type pointConfig struct {
	nodes, records, dims, degree, buckets int
	queryRange                            float64
	overlap                               float64
	windowLen                             float64
	queries                               int
	seed                                  int64
	meanLatency                           time.Duration
	trSeconds, tsSeconds                  float64
	cost                                  store.CostModel
	runROADS, runSWORD                    bool
	overlayEnabled                        bool
}

func (o Options) point(seed int64) pointConfig {
	return pointConfig{
		nodes:          o.Nodes,
		records:        o.RecordsPerNode,
		dims:           o.Dims,
		degree:         o.Degree,
		buckets:        o.Buckets,
		queryRange:     o.QueryRange,
		windowLen:      o.WindowLen,
		queries:        o.Queries,
		seed:           seed,
		meanLatency:    o.MeanLatency,
		trSeconds:      o.TrSeconds,
		tsSeconds:      o.TsSeconds,
		cost:           o.Cost,
		runROADS:       true,
		runSWORD:       true,
		overlayEnabled: true,
	}
}

// pointResult aggregates one data point over all its queries.
type pointResult struct {
	roadsLatencyMs   float64
	swordLatencyMs   float64
	roadsQueryBytes  float64
	swordQueryBytes  float64
	roadsUpdateBps   float64 // bytes per second
	swordUpdateBps   float64
	roadsContacted   float64
	roadsDepth       float64
	swordSegmentSize float64
	// roadsRootHit is the fraction of queries that contacted the root —
	// the root-bottleneck measure the overlay is meant to eliminate.
	roadsRootHit float64
}

// buildROADS constructs and aggregates a ROADS deployment over the
// workload, one summary-mode owner per server.
func buildROADS(w *workload.Workload, space *coords.Space, cfg pointConfig) (*core.System, *netsim.Sim, error) {
	sim := netsim.New(space)
	ccfg := core.DefaultConfig()
	ccfg.MaxChildren = cfg.degree
	ccfg.OverlayEnabled = cfg.overlayEnabled
	ccfg.Summary = summary.Config{Buckets: cfg.buckets, Min: 0, Max: 1, Categorical: summary.UseValueSet}
	ccfg.Cost = cfg.cost
	sys, err := core.NewSystem(w.Schema, ccfg, sim)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < cfg.nodes; i++ {
		id := fmt.Sprintf("s%04d", i)
		if _, err := sys.AddServer(id, i); err != nil {
			return nil, nil, err
		}
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := sys.AttachOwner(id, o); err != nil {
			return nil, nil, err
		}
	}
	if err := sys.Aggregate(); err != nil {
		return nil, nil, err
	}
	return sys, sim, nil
}

// runPoint simulates one data point: identical workload, delay space, query
// stream and start nodes for both systems.
func runPoint(cfg pointConfig) (pointResult, error) {
	var res pointResult
	rng := rand.New(rand.NewSource(cfg.seed))
	wcfg := workload.Config{
		Nodes:          cfg.nodes,
		RecordsPerNode: cfg.records,
		AttrsPerDist:   4,
		OverlapFactor:  cfg.overlap,
		WindowLen:      cfg.windowLen,
	}
	w, err := workload.Generate(wcfg, rng)
	if err != nil {
		return res, err
	}
	space, err := coords.NewSpace(cfg.nodes, coords.Config{
		MeanLatency: cfg.meanLatency,
		MinLatency:  time.Millisecond,
		Clusters:    8,
	}, rng)
	if err != nil {
		return res, err
	}
	queries, err := w.GenQueries(cfg.queries, cfg.dims, cfg.queryRange, rng)
	if err != nil {
		return res, err
	}
	starts := make([]int, len(queries))
	for i := range starts {
		starts[i] = rng.Intn(cfg.nodes)
	}

	if cfg.runROADS {
		sys, _, err := buildROADS(w, space, cfg)
		if err != nil {
			return res, err
		}
		epochBytes, err := sys.UpdateBytesPerEpoch()
		if err != nil {
			return res, err
		}
		res.roadsUpdateBps = float64(epochBytes) / cfg.tsSeconds
		res.roadsDepth = float64(sys.Tree.Depth())
		rootID := sys.Tree.Root().ID
		var latSum, byteSum, contactSum, rootHits float64
		for qi, q := range queries {
			sr, err := sys.Resolve(q.Clone(), fmt.Sprintf("s%04d", starts[qi]))
			if err != nil {
				return res, err
			}
			latSum += float64(sr.Latency.Milliseconds())
			byteSum += float64(sr.QueryBytes)
			contactSum += float64(len(sr.Contacted))
			for _, id := range sr.Contacted {
				if id == rootID {
					rootHits++
					break
				}
			}
		}
		n := float64(len(queries))
		res.roadsLatencyMs = latSum / n
		res.roadsQueryBytes = byteSum / n
		res.roadsContacted = contactSum / n
		res.roadsRootHit = rootHits / n
	}

	if cfg.runSWORD {
		sim := netsim.New(space)
		scfg := sword.DefaultConfig()
		scfg.Cost = cfg.cost
		ssys, err := sword.New(w.Schema, scfg, sim, cfg.nodes)
		if err != nil {
			return res, err
		}
		if err := ssys.RegisterAll(w.PerNode); err != nil {
			return res, err
		}
		res.swordUpdateBps = float64(ssys.UpdateBytesPerEpoch(w.PerNode)) / cfg.trSeconds
		var latSum, byteSum, segSum float64
		for qi, q := range queries {
			sr, err := ssys.Resolve(q.Clone(), starts[qi])
			if err != nil {
				return res, err
			}
			latSum += float64(sr.Latency.Milliseconds())
			byteSum += float64(sr.QueryBytes)
			segSum += float64(sr.SegmentSize)
		}
		n := float64(len(queries))
		res.swordLatencyMs = latSum / n
		res.swordQueryBytes = byteSum / n
		res.swordSegmentSize = segSum / n
	}
	return res, nil
}

// averagePoints runs cfg for each seed and averages the results.
func averagePoints(base pointConfig, runs int, seed int64) (pointResult, error) {
	var acc pointResult
	for r := 0; r < runs; r++ {
		cfg := base
		cfg.seed = seed + int64(r)
		pr, err := runPoint(cfg)
		if err != nil {
			return acc, err
		}
		acc.roadsLatencyMs += pr.roadsLatencyMs
		acc.swordLatencyMs += pr.swordLatencyMs
		acc.roadsQueryBytes += pr.roadsQueryBytes
		acc.swordQueryBytes += pr.swordQueryBytes
		acc.roadsUpdateBps += pr.roadsUpdateBps
		acc.swordUpdateBps += pr.swordUpdateBps
		acc.roadsContacted += pr.roadsContacted
		acc.roadsDepth += pr.roadsDepth
		acc.swordSegmentSize += pr.swordSegmentSize
		acc.roadsRootHit += pr.roadsRootHit
	}
	f := float64(runs)
	acc.roadsLatencyMs /= f
	acc.swordLatencyMs /= f
	acc.roadsQueryBytes /= f
	acc.swordQueryBytes /= f
	acc.roadsUpdateBps /= f
	acc.swordUpdateBps /= f
	acc.roadsContacted /= f
	acc.roadsDepth /= f
	acc.swordSegmentSize /= f
	acc.roadsRootHit /= f
	return acc, nil
}
