package experiment

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a very small profile so shape tests stay fast.
func tiny() Options {
	o := Quick()
	o.Runs = 1
	o.Queries = 30
	o.Nodes = 64
	o.RecordsPerNode = 60
	o.Buckets = 200
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := Default()
	bad.Runs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero runs must fail")
	}
	bad = Default()
	bad.QueryRange = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("range > 1 must fail")
	}
	bad = Default()
	bad.TrSeconds = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero tr must fail")
	}
}

func TestSweepNodesShapes(t *testing.T) {
	o := tiny()
	// The update-overhead gap is driven by record volume; keep enough
	// records that the constant-size summaries pay off as in the paper.
	o.RecordsPerNode = 200
	res, err := SweepNodes(o, []int{32, 96})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4 shape: ROADS update overhead at least an order of magnitude
	// below SWORD at every size.
	for i := range res.Fig4Update.X {
		roads := res.Fig4Update.Y["ROADS"][i]
		sword := res.Fig4Update.Y["SWORD"][i]
		if sword < 10*roads {
			t.Fatalf("n=%g: SWORD update %.3g not >> ROADS %.3g", res.Fig4Update.X[i], sword, roads)
		}
	}
	// Fig. 3 shape: SWORD latency grows faster than ROADS latency as the
	// system triples in size.
	swordGrowth := res.Fig3Latency.Y["SWORD"][1] / res.Fig3Latency.Y["SWORD"][0]
	roadsGrowth := res.Fig3Latency.Y["ROADS"][1] / res.Fig3Latency.Y["ROADS"][0]
	if swordGrowth <= roadsGrowth {
		t.Fatalf("SWORD growth %.2f should exceed ROADS growth %.2f", swordGrowth, roadsGrowth)
	}
	// Fig. 5 shape: ROADS pays more query bytes than SWORD.
	for i := range res.Fig5Query.X {
		if res.Fig5Query.Y["ROADS"][i] <= res.Fig5Query.Y["SWORD"][i] {
			t.Fatalf("n=%g: ROADS query bytes should exceed SWORD's", res.Fig5Query.X[i])
		}
	}
}

func TestSweepDimsShapes(t *testing.T) {
	res, err := SweepDims(tiny(), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 6 shape: ROADS latency falls with more dimensions; SWORD stays
	// roughly flat (within 25%).
	if res.Fig6Latency.Y["ROADS"][1] >= res.Fig6Latency.Y["ROADS"][0] {
		t.Fatalf("ROADS latency should fall from 2 to 8 dims: %v", res.Fig6Latency.Y["ROADS"])
	}
	s2, s8 := res.Fig6Latency.Y["SWORD"][0], res.Fig6Latency.Y["SWORD"][1]
	if s8 < s2*0.75 || s8 > s2*1.25 {
		t.Fatalf("SWORD latency should be ~flat in dims: %v vs %v", s2, s8)
	}
	// Fig. 7 shape: SWORD's query overhead grows with dims (bigger
	// messages, same path); ROADS confines the search with the extra
	// dimensions, so its overhead grows far slower than the 4x message-
	// size growth from 2 to 8 dims (the paper sees a dip then a rise).
	if res.Fig7Query.Y["SWORD"][1] <= res.Fig7Query.Y["SWORD"][0] {
		t.Fatalf("SWORD query overhead should grow with dims: %v", res.Fig7Query.Y["SWORD"])
	}
	roadsGrowth := res.Fig7Query.Y["ROADS"][1] / res.Fig7Query.Y["ROADS"][0]
	swordGrowth := res.Fig7Query.Y["SWORD"][1] / res.Fig7Query.Y["SWORD"][0]
	if roadsGrowth >= swordGrowth {
		t.Fatalf("ROADS overhead growth %.2f should trail SWORD's %.2f", roadsGrowth, swordGrowth)
	}
}

func TestSweepRecordsShapes(t *testing.T) {
	res, err := SweepRecords(tiny(), []int{50, 250})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8: ROADS constant, SWORD linear in records.
	r0, r1 := res.Y["ROADS"][0], res.Y["ROADS"][1]
	if r0 != r1 {
		t.Fatalf("ROADS update overhead must be constant in records: %g vs %g", r0, r1)
	}
	s0, s1 := res.Y["SWORD"][0], res.Y["SWORD"][1]
	ratio := s1 / s0
	if ratio < 4 || ratio > 6 {
		t.Fatalf("SWORD update overhead should scale ~5x for 5x records, got %.2f", ratio)
	}
}

func TestSweepOverlapRuns(t *testing.T) {
	res, err := SweepOverlap(tiny(), []float64{1, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 2 {
		t.Fatalf("X = %v", res.X)
	}
	// Fig. 9 shape: more overlap -> more servers contacted.
	if res.Y["contacted"][1] <= res.Y["contacted"][0] {
		t.Fatalf("higher overlap should contact more servers: %v", res.Y["contacted"])
	}
}

func TestSweepDegreeShapes(t *testing.T) {
	res, err := SweepDegree(tiny(), []int{4, 12})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 10 shape: higher degree -> shallower tree -> lower latency.
	if res.Y["depth"][1] >= res.Y["depth"][0] {
		t.Fatalf("depth should fall with degree: %v", res.Y["depth"])
	}
	if res.Y["ROADS"][1] >= res.Y["ROADS"][0] {
		t.Fatalf("latency should fall with degree: %v", res.Y["ROADS"])
	}
}

func TestSweepSelectivityShapes(t *testing.T) {
	o := tiny()
	o.Queries = 10
	// The crossover needs enough matching records that sequential central
	// retrieval dominates; scale the record volume accordingly (the paper
	// uses 200k records per server).
	o.RecordsPerNode = 300
	o.Cost.PerRecord = time.Millisecond
	targets := []float64{0.0003, 0.05}
	res, err := SweepSelectivity(o, targets, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	// Fig. 11 shape: central wins at low selectivity, ROADS at high.
	if s.Y["Central"][0] >= s.Y["ROADS"][0] {
		t.Fatalf("central should win at 0.03%% selectivity: central=%g roads=%g",
			s.Y["Central"][0], s.Y["ROADS"][0])
	}
	if s.Y["ROADS"][1] >= s.Y["Central"][1] {
		t.Fatalf("ROADS should win at 5%% selectivity: roads=%g central=%g",
			s.Y["ROADS"][1], s.Y["Central"][1])
	}
	// Measured selectivities should be within 4x of the targets.
	for i, target := range targets {
		m := res.MeasuredSelectivity[i]
		if m < target/4 || m > target*4 {
			t.Fatalf("group %d measured selectivity %g; target %g", i, m, target)
		}
	}
}

func TestSweepOverlayAblation(t *testing.T) {
	res, err := SweepOverlayAblation(tiny(), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverlayLatency.X) != 1 {
		t.Fatal("one point expected")
	}
	// Both modes must produce positive latencies; the root-start mode pays
	// the extra client->root trip.
	if res.OverlayLatency.Y["root-start"][0] <= 0 {
		t.Fatal("root-start latency must be positive")
	}
	// Without the overlay every query traverses the root; with it, only a
	// fraction do — the paper's "bottleneck at the root is eliminated".
	if got := res.RootLoad.Y["root-start"][0]; got != 1 {
		t.Fatalf("root-start root-hit fraction = %g; want 1", got)
	}
	if got := res.RootLoad.Y["overlay"][0]; got >= 1 {
		t.Fatalf("overlay root-hit fraction = %g; want < 1", got)
	}
}

func TestSweepBucketsAblation(t *testing.T) {
	res, err := SweepBucketsAblation(tiny(), []int{10, 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Coarser histograms -> more false positives -> more servers contacted.
	if res.Y["contacted"][0] <= res.Y["contacted"][1] {
		t.Fatalf("10-bucket summaries should contact more servers than 1000-bucket: %v", res.Y["contacted"])
	}
	// Finer histograms -> more update traffic.
	if res.Y["update bytes/s"][0] >= res.Y["update bytes/s"][1] {
		t.Fatalf("update traffic should grow with buckets: %v", res.Y["update bytes/s"])
	}
}

func TestSeriesFormat(t *testing.T) {
	s := newSeries("Test", "x", "y", "A", "B")
	s.add(1, map[string]float64{"A": 10, "B": 20})
	out := s.Format()
	for _, want := range []string{"Test", "A", "B", "10", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestSweepChurn(t *testing.T) {
	o := tiny()
	o.Queries = 15
	res, err := SweepChurn(o, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	stale := s.Y["stale recall"][0]
	repaired := s.Y["post-repair recall"][0]
	if repaired != 1.0 {
		t.Fatalf("post-repair recall = %g; want 1.0 (maintenance restores completeness)", repaired)
	}
	if stale <= 0 || stale > 1 {
		t.Fatalf("stale recall = %g; want in (0,1]", stale)
	}
	if stale > repaired {
		t.Fatal("stale recall cannot exceed post-repair recall")
	}
}
