package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// jsonSeries is the JSON shape of a Series: self-describing and easy to
// feed to external plotting tools.
type jsonSeries struct {
	Name    string               `json:"name"`
	XLabel  string               `json:"x_label"`
	YLabel  string               `json:"y_label"`
	X       []float64            `json:"x"`
	Columns []string             `json:"columns"`
	Y       map[string][]float64 `json:"y"`
}

// MarshalJSON renders the series with a stable column order.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSeries{
		Name:    s.Name,
		XLabel:  s.XLabel,
		YLabel:  s.YLabel,
		X:       s.X,
		Columns: s.Order,
		Y:       s.Y,
	})
}

// UnmarshalJSON restores a series exported by MarshalJSON.
func (s *Series) UnmarshalJSON(data []byte) error {
	var js jsonSeries
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	s.Name = js.Name
	s.XLabel = js.XLabel
	s.YLabel = js.YLabel
	s.X = js.X
	s.Order = js.Columns
	s.Y = js.Y
	if s.Y == nil {
		s.Y = map[string][]float64{}
	}
	return s.validate()
}

// validate checks the series' internal consistency.
func (s *Series) validate() error {
	for _, c := range s.Order {
		col, ok := s.Y[c]
		if !ok {
			return fmt.Errorf("experiment: series %q missing column %q", s.Name, c)
		}
		if len(col) != len(s.X) {
			return fmt.Errorf("experiment: series %q column %q has %d values for %d x points",
				s.Name, c, len(col), len(s.X))
		}
	}
	return nil
}

// CSV renders the series as comma-separated rows, header first.
func (s *Series) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{s.XLabel}, s.Order...)
	if err := w.Write(header); err != nil {
		return "", err
	}
	for i, x := range s.X {
		row := make([]string, 0, 1+len(s.Order))
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, c := range s.Order {
			row = append(row, strconv.FormatFloat(s.Y[c][i], 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	return b.String(), w.Error()
}
