package experiment

import (
	"fmt"
	"math"
	"strings"
)

// plotMarkers are assigned to columns in order.
var plotMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Plot renders the series as an ASCII chart (width x height characters of
// plotting area), one marker per column, with a y-axis scale and a legend.
// It is what `roads-sim -format plot` prints — enough to see each figure's
// shape without leaving the terminal.
func (s *Series) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}
	if len(s.X) == 0 {
		return s.Name + " (no data)\n"
	}

	// Bounds over all columns.
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, col := range s.Order {
		for _, v := range s.Y[col] {
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	if !(yMin < yMax) {
		yMax = yMin + 1
	}
	xMin, xMax := s.X[0], s.X[0]
	for _, x := range s.X {
		xMin = math.Min(xMin, x)
		xMax = math.Max(xMax, x)
	}
	if !(xMin < xMax) {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plotAt := func(x, y float64, marker byte) {
		cx := int((x - xMin) / (xMax - xMin) * float64(width-1))
		cy := int((y - yMin) / (yMax - yMin) * float64(height-1))
		row := height - 1 - cy // row 0 is the top
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cx >= width {
			cx = width - 1
		}
		grid[row][cx] = marker
	}
	for ci, col := range s.Order {
		marker := plotMarkers[ci%len(plotMarkers)]
		for i, x := range s.X {
			plotAt(x, s.Y[col][i], marker)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s vs %s\n", s.Name, s.YLabel, s.XLabel)
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.3g |%s|\n", yMax, string(row))
		case height - 1:
			fmt.Fprintf(&b, "%10.3g |%s|\n", yMin, string(row))
		default:
			fmt.Fprintf(&b, "%10s |%s|\n", "", string(row))
		}
	}
	fmt.Fprintf(&b, "%10s  %-*.3g%*.3g\n", "", width/2, xMin, width-width/2, xMax)
	legend := make([]string, len(s.Order))
	for ci, col := range s.Order {
		legend[ci] = fmt.Sprintf("%c=%s", plotMarkers[ci%len(plotMarkers)], col)
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}
