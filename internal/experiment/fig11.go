package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"roads/internal/central"
	"roads/internal/coords"
	"roads/internal/netsim"
	"roads/internal/stats"
	"roads/internal/workload"
)

// SelectivityResult is the Fig. 11 output: total response time (mean and
// 90th percentile) for ROADS and the centralized repository as a function
// of query selectivity.
type SelectivityResult struct {
	Series *Series
	// MeasuredSelectivity records the actual selectivity each group
	// achieved after calibration, for honesty in reporting.
	MeasuredSelectivity []float64
}

// SweepSelectivity reproduces the prototype benchmark (Fig. 11): queries
// grouped by selectivity (0.01%..3%), total response time including the
// modelled backend retrieval cost. ROADS retrieves from matching servers in
// parallel; the central repository retrieves everything sequentially at one
// server — which is exactly why ROADS catches up as selectivity grows.
func SweepSelectivity(opt Options, targets []float64, perGroup int) (*SelectivityResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if targets == nil {
		targets = workload.PaperSelectivityTargets
	}
	if perGroup <= 0 {
		perGroup = 200 // paper: 200 queries per group
	}

	s := newSeries("Fig. 11", "selectivity (%)", "total response time (ms)",
		"ROADS", "ROADS p90", "Central", "Central p90")
	measured := make([]float64, len(targets))

	for gi, target := range targets {
		var roadsTimes, centralTimes []time.Duration
		var selSum float64
		var selCount int
		for run := 0; run < opt.Runs; run++ {
			seed := opt.Seed + int64(run)
			rng := rand.New(rand.NewSource(seed))
			wcfg := workload.Config{Nodes: opt.Nodes, RecordsPerNode: opt.RecordsPerNode, AttrsPerDist: 4}
			w, err := workload.Generate(wcfg, rng)
			if err != nil {
				return nil, err
			}
			space, err := coords.NewSpace(opt.Nodes, coords.Config{
				MeanLatency: opt.MeanLatency,
				MinLatency:  time.Millisecond,
				Clusters:    8,
			}, rng)
			if err != nil {
				return nil, err
			}
			groups, err := w.GenSelectivityGroups([]float64{target}, perGroup/opt.Runs+1, opt.Dims, 20000, rng)
			if err != nil {
				return nil, err
			}
			queries := groups[0].Queries

			cfg := opt.point(seed)
			rsys, _, err := buildROADS(w, space, cfg)
			if err != nil {
				return nil, err
			}
			csim := netsim.New(space)
			repo := central.New(w.Schema, opt.Cost, csim, 0)
			repo.ExportAll(w.PerNode)

			all := w.AllRecords()
			for qi, q := range queries {
				start := rng.Intn(opt.Nodes)
				rq := q.Clone()
				rq.ID = fmt.Sprintf("g%d-r%d-q%d", gi, run, qi)
				rres, err := rsys.ResolveAndRetrieve(rq, fmt.Sprintf("s%04d", start))
				if err != nil {
					return nil, err
				}
				roadsTimes = append(roadsTimes, rres.ResponseTime)

				cres, err := repo.Resolve(q.Clone(), start)
				if err != nil {
					return nil, err
				}
				centralTimes = append(centralTimes, cres.ResponseTime)

				selSum += float64(len(cres.Records)) / float64(len(all))
				selCount++
			}
		}
		measured[gi] = selSum / float64(selCount)
		s.add(target*100, map[string]float64{
			"ROADS":       float64(stats.MeanDuration(roadsTimes).Milliseconds()),
			"ROADS p90":   float64(stats.PercentileDuration(roadsTimes, 0.9).Milliseconds()),
			"Central":     float64(stats.MeanDuration(centralTimes).Milliseconds()),
			"Central p90": float64(stats.PercentileDuration(centralTimes, 0.9).Milliseconds()),
		})
	}
	return &SelectivityResult{Series: s, MeasuredSelectivity: measured}, nil
}
