package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"roads/internal/coords"
	"roads/internal/workload"
)

// ChurnResult is the output of SweepChurn: query recall during the
// soft-state staleness window (crashed servers still in everyone's
// summaries) and after one maintenance + refresh cycle.
type ChurnResult struct {
	Series *Series
}

// SweepChurn measures ROADS' resiliency beyond the paper's evaluation
// (churn handling is listed as future work in §VII; the maintenance
// protocol of §III-A is what we quantify). For each failure fraction f:
//
//  1. fail f of the servers abruptly (no Leave — stale summaries remain),
//  2. measure "stale recall": the fraction of *surviving* matching records
//     queries still find while redirects dead-end at crashed servers, and
//  3. repair (orphans rejoin, one aggregation epoch) and measure recall
//     again — it must return to 1.0.
//
// Stale recall can drop below the failed fraction because a crashed
// internal server blocks the path to its live descendants until repair.
func SweepChurn(opt Options, failFracs []float64) (*ChurnResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if failFracs == nil {
		failFracs = []float64{0.05, 0.1, 0.2, 0.3}
	}
	s := newSeries("Churn", "failed fraction", "recall",
		"stale recall", "post-repair recall", "surviving data")

	for _, frac := range failFracs {
		var staleSum, repairSum, survivingSum float64
		var samples int
		for run := 0; run < opt.Runs; run++ {
			seed := opt.Seed + int64(run)
			rng := rand.New(rand.NewSource(seed))
			w, err := workload.Generate(workload.Config{
				Nodes:          opt.Nodes,
				RecordsPerNode: opt.RecordsPerNode,
				AttrsPerDist:   4,
				WindowLen:      opt.WindowLen,
			}, rng)
			if err != nil {
				return nil, err
			}
			space, err := coords.NewSpace(opt.Nodes, coords.Config{
				MeanLatency: opt.MeanLatency,
				MinLatency:  time.Millisecond,
				Clusters:    8,
			}, rng)
			if err != nil {
				return nil, err
			}
			cfg := opt.point(seed)
			sys, _, err := buildROADS(w, space, cfg)
			if err != nil {
				return nil, err
			}

			// Crash frac of the non-root servers.
			rootID := sys.Tree.Root().ID
			failCount := int(frac * float64(opt.Nodes))
			failedIdx := make(map[int]bool)
			for len(failedIdx) < failCount {
				i := rng.Intn(opt.Nodes)
				id := fmt.Sprintf("s%04d", i)
				if id == rootID || failedIdx[i] {
					continue
				}
				if err := sys.MarkFailed(id); err != nil {
					return nil, err
				}
				failedIdx[i] = true
			}

			queries, err := w.GenQueries(opt.Queries, opt.Dims, opt.QueryRange, rng)
			if err != nil {
				return nil, err
			}
			starts := make([]int, len(queries))
			for i := range starts {
				for {
					s := rng.Intn(opt.Nodes)
					if !failedIdx[s] {
						starts[i] = s
						break
					}
				}
			}

			countSurviving := func(qi int) int {
				want := 0
				for i, recs := range w.PerNode {
					if failedIdx[i] {
						continue
					}
					for _, r := range recs {
						if queries[qi].MatchRecord(r) {
							want++
						}
					}
				}
				return want
			}

			// Stale window.
			var staleFound, staleWant int
			for qi, q := range queries {
				res, err := sys.ResolveAndRetrieve(q.Clone(), fmt.Sprintf("s%04d", starts[qi]))
				if err != nil {
					return nil, err
				}
				staleFound += len(res.Records)
				staleWant += countSurviving(qi)
			}

			// Repair and refresh.
			if _, err := sys.RepairFailed(); err != nil {
				return nil, err
			}
			var repFound, repWant int
			for qi, q := range queries {
				res, err := sys.ResolveAndRetrieve(q.Clone(), fmt.Sprintf("s%04d", starts[qi]))
				if err != nil {
					return nil, err
				}
				repFound += len(res.Records)
				repWant += countSurviving(qi)
			}

			if staleWant > 0 {
				staleSum += float64(staleFound) / float64(staleWant)
			}
			if repWant > 0 {
				repairSum += float64(repFound) / float64(repWant)
			}
			survivingSum += 1 - frac
			samples++
		}
		f := float64(samples)
		s.add(frac, map[string]float64{
			"stale recall":       staleSum / f,
			"post-repair recall": repairSum / f,
			"surviving data":     survivingSum / f,
		})
	}
	return &ChurnResult{Series: s}, nil
}
