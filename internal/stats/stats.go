// Package stats provides the small set of summary statistics the
// experiment harness and benchmarks share: means, percentiles, and
// standard deviations over float64 and time.Duration samples.
package stats

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-quantile (p in [0,1]) using nearest-rank on the
// sorted samples; 0 for empty input. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[int(p*float64(len(sorted)-1))]
}

// MeanDuration returns the mean of duration samples (0 for empty input).
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// PercentileDuration returns the p-quantile of duration samples.
func PercentileDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

// MinMax returns the extremes of the samples (0,0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
