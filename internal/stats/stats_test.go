package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g; want 2", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single sample stddev must be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %g; want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %g; want 1", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Fatalf("p100 = %g; want 5", got)
	}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Fatalf("p50 = %g; want 3", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Out-of-range p clamps.
	if got := Percentile(xs, -1); got != 1 {
		t.Fatalf("p(-1) = %g; want min", got)
	}
	if got := Percentile(xs, 2); got != 5 {
		t.Fatalf("p(2) = %g; want max", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestDurations(t *testing.T) {
	ds := []time.Duration{time.Second, 3 * time.Second}
	if MeanDuration(ds) != 2*time.Second {
		t.Fatal("duration mean wrong")
	}
	if MeanDuration(nil) != 0 || PercentileDuration(nil, 0.9) != 0 {
		t.Fatal("empty duration stats must be 0")
	}
	if PercentileDuration(ds, 1) != 3*time.Second {
		t.Fatal("duration percentile wrong")
	}
	if PercentileDuration(ds, -1) != time.Second {
		t.Fatal("clamped duration percentile wrong")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %g,%g", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Fatal("empty MinMax must be 0,0")
	}
}

// Property: the mean always lies within [min, max].
func TestMeanBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		min, max := MinMax(xs)
		m := Mean(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Float64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
