package dht

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seqHosts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i * 10
	}
	return out
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring must be rejected")
	}
	r, err := NewRing(seqHosts(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4 || r.Host(2) != 20 {
		t.Fatalf("Size=%d Host(2)=%d", r.Size(), r.Host(2))
	}
}

func TestOwnerOfPartitionsEvenly(t *testing.T) {
	r, _ := NewRing(seqHosts(10))
	if r.OwnerOf(0.05) != 0 || r.OwnerOf(0.95) != 9 || r.OwnerOf(0.55) != 5 {
		t.Fatal("owner arcs wrong")
	}
	// Boundaries and out-of-domain values clamp.
	if r.OwnerOf(0) != 0 || r.OwnerOf(1) != 9 || r.OwnerOf(-3) != 0 || r.OwnerOf(2) != 9 {
		t.Fatal("boundary clamping wrong")
	}
	if r.OwnerOf(math.NaN()) != 0 {
		t.Fatal("NaN must clamp to 0")
	}
}

func TestSuccessorWraps(t *testing.T) {
	r, _ := NewRing(seqHosts(3))
	if r.Successor(2) != 0 {
		t.Fatal("successor must wrap around")
	}
}

func TestRouteReachesTargetInLogHops(t *testing.T) {
	r, _ := NewRing(seqHosts(64))
	for from := 0; from < 64; from += 7 {
		for _, v := range []float64{0.01, 0.5, 0.99} {
			path := r.Route(from, v)
			if path[0] != from {
				t.Fatal("path must start at source")
			}
			if path[len(path)-1] != r.OwnerOf(v) {
				t.Fatal("path must end at owner")
			}
			if hops := len(path) - 1; hops > r.MaxRouteHops() {
				t.Fatalf("route took %d hops; max %d", hops, r.MaxRouteHops())
			}
		}
	}
}

func TestRouteToSelf(t *testing.T) {
	r, _ := NewRing(seqHosts(8))
	path := r.RouteTo(3, 3)
	if len(path) != 1 || path[0] != 3 {
		t.Fatalf("self route = %v; want [3]", path)
	}
}

func TestSingleMemberRing(t *testing.T) {
	r, _ := NewRing([]int{42})
	if r.OwnerOf(0.7) != 0 {
		t.Fatal("single member owns everything")
	}
	if len(r.Route(0, 0.3)) != 1 {
		t.Fatal("single member routes to itself")
	}
	if seg := r.Segment(0.1, 0.9); len(seg) != 1 {
		t.Fatalf("segment = %v; want [0]", seg)
	}
}

func TestSegmentContiguous(t *testing.T) {
	r, _ := NewRing(seqHosts(20))
	seg := r.Segment(0.25, 0.49)
	if len(seg) == 0 {
		t.Fatal("segment must not be empty")
	}
	if seg[0] != r.OwnerOf(0.25) || seg[len(seg)-1] != r.OwnerOf(0.49) {
		t.Fatalf("segment endpoints wrong: %v", seg)
	}
	for i := 1; i < len(seg); i++ {
		if seg[i] != r.Successor(seg[i-1]) {
			t.Fatalf("segment not contiguous: %v", seg)
		}
	}
	// Quarter of the domain covers about a quarter of the ring.
	if len(seg) < 4 || len(seg) > 7 {
		t.Fatalf("0.24-wide segment on 20 nodes has %d members; want ~5", len(seg))
	}
	if r.Segment(0.6, 0.4) != nil {
		t.Fatal("inverted segment must be nil")
	}
}

// Property: every routed path ends at the correct owner and respects the
// log bound, from any start to any value.
func TestRouteCorrectQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		r, err := NewRing(seqHosts(n))
		if err != nil {
			return false
		}
		from := rng.Intn(n)
		v := rng.Float64()
		path := r.Route(from, v)
		if path[0] != from || path[len(path)-1] != r.OwnerOf(v) {
			return false
		}
		return len(path)-1 <= r.MaxRouteHops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a segment covers exactly the owners of all values in [lo,hi].
func TestSegmentCoversOwnersQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		r, _ := NewRing(seqHosts(n))
		lo := rng.Float64() * 0.8
		hi := lo + rng.Float64()*(1-lo)
		seg := r.Segment(lo, hi)
		members := make(map[int]bool, len(seg))
		for _, m := range seg {
			members[m] = true
		}
		for k := 0; k < 20; k++ {
			v := lo + rng.Float64()*(hi-lo)
			if !members[r.OwnerOf(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
