// Package dht implements the DHT ring substrate underlying the SWORD
// baseline: a ring of servers with a locality-preserving hash (a value in
// [0,1] maps directly to ring position, so a value range maps to a
// contiguous segment of servers) and Chord-style finger routing that
// reaches any position in O(log n) hops.
package dht

import (
	"fmt"
	"math"
)

// Ring is one attribute's DHT ring. Position p in [0,1) is owned by server
// floor(p*size); each member owns an equal arc. Members are identified by
// ring index; the mapping to global hosts is kept by the caller (SWORD).
type Ring struct {
	hosts []int // ring index -> global host index
}

// NewRing creates a ring over the given member hosts (ring index i is
// hosts[i], ordered around the ring).
func NewRing(hosts []int) (*Ring, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("dht: ring needs at least one member")
	}
	r := &Ring{hosts: append([]int(nil), hosts...)}
	return r, nil
}

// Size returns the number of ring members.
func (r *Ring) Size() int { return len(r.hosts) }

// Host returns the global host index of ring member i.
func (r *Ring) Host(i int) int { return r.hosts[i] }

// OwnerOf returns the ring index owning position v. The hash is
// locality-preserving: the identity map on [0,1], clamped.
func (r *Ring) OwnerOf(v float64) int {
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	if v >= 1 {
		return len(r.hosts) - 1
	}
	i := int(v * float64(len(r.hosts)))
	if i >= len(r.hosts) {
		i = len(r.hosts) - 1
	}
	return i
}

// Successor returns the next ring member clockwise.
func (r *Ring) Successor(i int) int { return (i + 1) % len(r.hosts) }

// Route returns the finger-routing path from ring member `from` to the
// member owning position v, inclusive of both endpoints. Each member has
// fingers at clockwise distances 1, 2, 4, 8, ...; greedy routing halves the
// remaining distance every hop, so the path length is O(log n).
func (r *Ring) Route(from int, v float64) []int {
	target := r.OwnerOf(v)
	return r.RouteTo(from, target)
}

// RouteTo returns the finger path from member `from` to member `target`.
func (r *Ring) RouteTo(from, target int) []int {
	n := len(r.hosts)
	path := []int{from}
	cur := from
	for cur != target {
		dist := (target - cur + n) % n
		// Largest power of two not exceeding dist.
		step := 1
		for step*2 <= dist {
			step *= 2
		}
		cur = (cur + step) % n
		path = append(path, cur)
	}
	return path
}

// Segment returns the ring members whose arcs intersect [lo,hi], in
// clockwise order starting from the owner of lo. For lo<=hi this is the
// contiguous run of owners; the locality-preserving hash guarantees range
// queries touch exactly this segment.
func (r *Ring) Segment(lo, hi float64) []int {
	if hi < lo {
		return nil
	}
	first := r.OwnerOf(lo)
	last := r.OwnerOf(hi)
	var out []int
	for i := first; ; i = r.Successor(i) {
		out = append(out, i)
		if i == last {
			break
		}
	}
	return out
}

// MaxRouteHops returns the worst-case finger-route length, ceil(log2 n),
// used by the analysis package to cross-check routing behaviour.
func (r *Ring) MaxRouteHops() int {
	n := len(r.hosts)
	hops := 0
	for 1<<hops < n {
		hops++
	}
	return hops
}
