// Package policy implements voluntary sharing: the mechanisms by which a
// resource owner retains final control over its records. An owner chooses
// an export mode (raw records to a trusted attachment point vs.
// summary-only to a third-party server) and defines per-requester views
// that filter which records a given query sees (paper §II: "a company may
// provide more resources to a business partner than arbitrary third
// parties").
package policy

import (
	"fmt"
	"sync"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/store"
	"roads/internal/summary"
)

// ExportMode says what an owner exports to its attachment-point server.
type ExportMode uint8

const (
	// ExportSummary exports only a condensed summary; the detailed records
	// stay with the owner, which answers matching queries itself (owner D
	// in the paper's Fig. 1).
	ExportSummary ExportMode = iota
	// ExportRecords exports the detailed records to the attachment point —
	// appropriate only when the owner controls that server (owner C).
	ExportRecords
)

func (m ExportMode) String() string {
	switch m {
	case ExportSummary:
		return "summary"
	case ExportRecords:
		return "records"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// View filters the records returned to a class of requesters. Filter may be
// nil, meaning the view exposes everything.
type View struct {
	Name   string
	Filter func(*record.Record) bool
}

// Policy is an owner's sharing policy: its export mode plus named views.
// The zero policy exports summaries and serves every record to everyone.
type Policy struct {
	mu sync.RWMutex

	Mode ExportMode
	// views maps requester identities (or classes) to their view; the
	// DefaultView applies to unknown requesters.
	views       map[string]View
	DefaultView View
	// rev counts view mutations; see Rev.
	rev uint64
}

// NewPolicy creates a policy with the given export mode and an
// allow-everything default view.
func NewPolicy(mode ExportMode) *Policy {
	return &Policy{
		Mode:        mode,
		views:       make(map[string]View),
		DefaultView: View{Name: "default"},
	}
}

// SetView installs a view for a requester identity.
func (p *Policy) SetView(requester string, v View) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.views == nil {
		p.views = make(map[string]View)
	}
	p.views[requester] = v
	p.rev++
}

// Rev returns the policy's view-revision counter, bumped on every SetView.
// Together with Owner.Generation it versions an owner's answers: a cached
// answer computed at (generation G, revision R) is current while both still
// match. Direct writes to the exported Mode and DefaultView fields are not
// tracked — set them before serving queries.
func (p *Policy) Rev() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.rev
}

// ViewFor returns the view applying to the requester.
func (p *Policy) ViewFor(requester string) View {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if v, ok := p.views[requester]; ok {
		return v
	}
	return p.DefaultView
}

// Apply filters recs through the requester's view.
func (p *Policy) Apply(requester string, recs []*record.Record) []*record.Record {
	v := p.ViewFor(requester)
	if v.Filter == nil {
		return recs
	}
	var out []*record.Record
	for _, r := range recs {
		if v.Filter(r) {
			out = append(out, r)
		}
	}
	return out
}

// Owner is a resource owner: identity, records, and sharing policy. It is
// the unit of autonomy in the federation — the entity that exports data and
// makes the final call on query answers.
//
// The records live in a sharded no-index store (internal/store), so owner
// mutations are first-class — SetRecords, AddRecords, RemoveRecords,
// UpdateRecords — and summary export rides the store's incrementally
// maintained per-shard partials: a churn of k records re-summarizes the
// touched shards' deltas, not the whole owner.
type Owner struct {
	ID     string
	Schema *record.Schema
	Policy *Policy

	st *store.Store

	// expMu guards the lazily enabled export configuration: the store's
	// partial summaries encode bucket/filter geometry, so they follow the
	// config the attachment point asks for.
	expMu      sync.Mutex
	expEnabled bool
	expCfg     summary.Config
}

// NewOwner creates an owner with the given policy (nil means a default
// summary-export policy).
func NewOwner(id string, schema *record.Schema, pol *Policy) *Owner {
	if pol == nil {
		pol = NewPolicy(ExportSummary)
	}
	// Owners answer queries by full filter passes (final control applies
	// per-requester views anyway), so the store skips index maintenance.
	st := store.NewWithOptions(schema, store.CostModel{}, store.Options{NoIndex: true})
	return &Owner{ID: id, Schema: schema, Policy: pol, st: st}
}

// SetRecords replaces the owner's record set.
func (o *Owner) SetRecords(recs []*record.Record) {
	o.st.Replace(recs)
}

// AddRecords appends records.
func (o *Owner) AddRecords(recs ...*record.Record) {
	o.st.Add(recs...)
}

// RemoveRecords deletes the records stored under the given IDs, returning
// how many were present.
func (o *Owner) RemoveRecords(ids ...string) int {
	return o.st.Remove(ids...)
}

// UpdateRecords upserts records by ID (present IDs replace, absent IDs
// append), returning how many replaced an existing record.
func (o *Owner) UpdateRecords(recs ...*record.Record) int {
	return o.st.Update(recs...)
}

// Generation returns the owner's record-set mutation counter. A caller
// holding a summary exported at generation N may keep serving it while
// Generation still returns N.
func (o *Owner) Generation() uint64 {
	return o.st.Epoch()
}

// NumRecords returns the record count.
func (o *Owner) NumRecords() int {
	return o.st.Len()
}

// Records returns the owner's records in store-shard order (shared
// immutable slice; do not mutate).
func (o *Owner) Records() []*record.Record {
	return o.st.Records()
}

// StoreStats returns the owner store's maintenance counters (shard partial
// rebuilds, partial merges, cached exports) for harness reporting.
func (o *Owner) StoreStats() store.Stats {
	return o.st.Stats()
}

// ExportSummary builds the summary the owner publishes to its attachment
// point. Regardless of views, the summary covers all records — summaries
// are coarse enough that exposure is acceptable, which is the premise of
// the design; fine-grained control happens at answer time.
//
// The export is a merge of the store's per-shard partial summaries
// (content- and version-identical to a monolithic FromRecords build), so
// its cost scales with the shards touched since the last export, not with
// the owner's record count.
func (o *Owner) ExportSummary(cfg summary.Config) (*summary.Summary, error) {
	o.expMu.Lock()
	if !o.expEnabled || !cfg.Equal(o.expCfg) {
		if err := o.st.EnableSummaries(cfg); err != nil {
			o.expMu.Unlock()
			return nil, err
		}
		o.expEnabled, o.expCfg = true, cfg
	}
	o.expMu.Unlock()
	sum, err := o.st.ExportSummary()
	if err != nil {
		return nil, err
	}
	// The store's summary is shared/cached; hand the caller its own copy
	// (historically callers own the export outright and may mutate it).
	out := sum.Clone()
	out.Origin = o.ID
	return out, nil
}

// ExportRecords returns the records the owner pushes to a trusted
// attachment point, or an error if the policy forbids raw export.
func (o *Owner) ExportRecords() ([]*record.Record, error) {
	if o.Policy.Mode != ExportRecords {
		return nil, fmt.Errorf("policy: owner %s exports summaries only", o.ID)
	}
	return o.st.Records(), nil
}

// Answer resolves a query at the owner: it matches the query against the
// owner's records and then applies the requester's view. This is the "final
// control" step — the owner decides which resource records are returned
// and in what form (paper §III-A).
func (o *Owner) Answer(q *query.Query) ([]*record.Record, error) {
	if !q.Bound() {
		if err := q.Bind(o.Schema); err != nil {
			return nil, err
		}
	}
	matched := q.Filter(o.st.Records())
	return o.Policy.Apply(q.Requester, matched), nil
}
