package policy

import "sync"

// Requester priority classes, mirroring the wire encoding
// (wire.PriorityNormal/Low/High): the zero value is the default class, so
// requesters nobody classified behave exactly like pre-classification
// traffic.
const (
	ClassNormal uint8 = 0
	ClassLow    uint8 = 1
	ClassHigh   uint8 = 2
)

// Classifier pins requester identities to admission priority classes. It is
// the operator-side counterpart of the priority a client claims on the wire:
// voluntary sharing gives owners final control over answers, and the
// classifier gives the serving site final control over scheduling — a pinned
// class overrides whatever priority the query carried, so a misbehaving
// tenant cannot promote itself out of admission control, and a critical
// tenant keeps its class even through clients that predate wire v5.
//
// The zero Classifier classifies nobody (every requester keeps its claimed
// class). Safe for concurrent use.
type Classifier struct {
	mu      sync.RWMutex
	classes map[string]uint8
}

// NewClassifier returns an empty classifier.
func NewClassifier() *Classifier { return &Classifier{} }

// Pin fixes the requester's class, overriding the wire priority.
func (c *Classifier) Pin(requester string, class uint8) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.classes == nil {
		c.classes = make(map[string]uint8)
	}
	c.classes[requester] = class
}

// Unpin removes the requester's pinned class; it reverts to the class its
// queries claim.
func (c *Classifier) Unpin(requester string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.classes, requester)
}

// ClassFor resolves the requester's effective class: the pinned class when
// one exists, otherwise the class the query claimed.
func (c *Classifier) ClassFor(requester string, claimed uint8) uint8 {
	if c == nil {
		return claimed
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if class, ok := c.classes[requester]; ok {
		return class
	}
	return claimed
}
