package policy

import (
	"testing"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
)

func camSchema() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "rate", Kind: record.Numeric},
		{Name: "tier", Kind: record.Categorical},
	})
}

func rec(s *record.Schema, id string, rate float64, tier string) *record.Record {
	r := record.New(s, id, "orgA")
	r.SetNum(0, rate)
	r.SetStr(1, tier)
	return r
}

func TestExportModeString(t *testing.T) {
	if ExportSummary.String() != "summary" || ExportRecords.String() != "records" {
		t.Fatal("ExportMode String mismatch")
	}
}

func TestOwnerAnswerAppliesViews(t *testing.T) {
	s := camSchema()
	pol := NewPolicy(ExportSummary)
	// Public requesters only see "public"-tier records; partners see all.
	pol.DefaultView = View{Name: "public", Filter: func(r *record.Record) bool { return r.Str(1) == "public" }}
	pol.SetView("partner", View{Name: "partner"})

	o := NewOwner("orgA", s, pol)
	o.SetRecords([]*record.Record{
		rec(s, "r1", 0.5, "public"),
		rec(s, "r2", 0.6, "internal"),
	})

	q := query.New("q", query.NewRange("rate", 0, 1))
	q.Requester = "stranger"
	got, err := o.Answer(q)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(got) != 1 || got[0].ID != "r1" {
		t.Fatalf("stranger sees %d records; want only r1", len(got))
	}

	q2 := query.New("q2", query.NewRange("rate", 0, 1))
	q2.Requester = "partner"
	got, err = o.Answer(q2)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("partner sees %d records; want 2", len(got))
	}
}

func TestOwnerAnswerMatchesQueryFirst(t *testing.T) {
	s := camSchema()
	o := NewOwner("orgA", s, nil)
	o.SetRecords([]*record.Record{
		rec(s, "r1", 0.1, "public"),
		rec(s, "r2", 0.9, "public"),
	})
	q := query.New("q", query.NewRange("rate", 0.5, 1))
	got, err := o.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "r2" {
		t.Fatalf("got %d records; want only r2", len(got))
	}
}

func TestOwnerAnswerBindError(t *testing.T) {
	s := camSchema()
	o := NewOwner("orgA", s, nil)
	q := query.New("q", query.NewRange("missing", 0, 1))
	if _, err := o.Answer(q); err == nil {
		t.Fatal("expected bind error")
	}
}

func TestExportSummaryCoversAllRecords(t *testing.T) {
	s := camSchema()
	o := NewOwner("orgA", s, nil)
	o.SetRecords([]*record.Record{
		rec(s, "r1", 0.25, "internal"),
	})
	cfg := summary.DefaultConfig()
	cfg.Buckets = 100
	sum, err := o.ExportSummary(cfg)
	if err != nil {
		t.Fatalf("ExportSummary: %v", err)
	}
	if sum.Origin != "orgA" {
		t.Fatalf("Origin = %q; want orgA", sum.Origin)
	}
	if sum.Records != 1 {
		t.Fatalf("Records = %d; want 1", sum.Records)
	}
	if !sum.MatchRange(0, 0.2, 0.3) {
		t.Fatal("summary must cover the record")
	}
	// Even internal-tier records appear in the summary: control happens at
	// answer time, not summary time.
	if !sum.MatchEq(1, "internal") {
		t.Fatal("summary covers all records regardless of views")
	}
}

func TestExportRecordsRespectsMode(t *testing.T) {
	s := camSchema()
	summaryOnly := NewOwner("orgA", s, NewPolicy(ExportSummary))
	if _, err := summaryOnly.ExportRecords(); err == nil {
		t.Fatal("summary-mode owner must refuse raw export")
	}
	trusting := NewOwner("orgB", s, NewPolicy(ExportRecords))
	trusting.SetRecords([]*record.Record{rec(s, "r1", 0.5, "public")})
	recs, err := trusting.ExportRecords()
	if err != nil {
		t.Fatalf("ExportRecords: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("exported %d records; want 1", len(recs))
	}
}

func TestPolicyApplyNilFilter(t *testing.T) {
	p := NewPolicy(ExportSummary)
	s := camSchema()
	recs := []*record.Record{rec(s, "r1", 0.5, "x")}
	if got := p.Apply("anyone", recs); len(got) != 1 {
		t.Fatal("nil filter must pass everything")
	}
}

func TestViewForFallsBackToDefault(t *testing.T) {
	p := NewPolicy(ExportSummary)
	p.DefaultView = View{Name: "fallback"}
	p.SetView("known", View{Name: "special"})
	if p.ViewFor("known").Name != "special" {
		t.Fatal("known requester should get its view")
	}
	if p.ViewFor("unknown").Name != "fallback" {
		t.Fatal("unknown requester should get the default view")
	}
}

func TestOwnerAddRecords(t *testing.T) {
	s := camSchema()
	o := NewOwner("orgA", s, nil)
	o.AddRecords(rec(s, "r1", 0.1, "x"))
	o.AddRecords(rec(s, "r2", 0.2, "x"))
	if o.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d; want 2", o.NumRecords())
	}
	if len(o.Records()) != 2 {
		t.Fatal("Records() length mismatch")
	}
}
