package live

import (
	"time"

	"roads/internal/obs"
)

// serverMetrics is the server's named-series view of its operational
// counters. The counters are the same atomics the handlers bump — the
// registry only adds names, help strings and gauge closures on top — so
// instrumentation costs the hot path nothing beyond the atomic adds it
// already paid for Status.
//
// When Config.Metrics is nil each server registers into a private registry
// (many servers share a process in tests and simulations, and series are
// label-free, so sharing one registry would collide); roadsd passes one
// shared registry per process and serves it at /metrics.
type serverMetrics struct {
	reg *obs.Registry

	queries         *obs.Counter
	shed            *obs.Counter
	redirects       *obs.Counter
	summaryReports  *obs.Counter
	replicaPushes   *obs.Counter
	summaryErrors   *obs.Counter
	parentFailovers *obs.Counter
	evalLatency     *obs.Histogram

	// Change-driven dissemination counters; all stay zero while
	// Config.DisableDeltaDissemination is set.
	rebuildsSkipped   *obs.Counter
	reportsSuppressed *obs.Counter
	pushDelta         *obs.Counter
	pushFull          *obs.Counter
	antiEntropyRounds *obs.Counter

	// Membership-epoch counters (see membership.go); all stay zero while
	// Config.DisableMembershipEpoch is set, except orphanRetries and
	// elections, which count the recovery loop either way.
	fenced           *obs.Counter
	elections        *obs.Counter
	merges           *obs.Counter
	probes           *obs.Counter
	orphanRetries    *obs.Counter
	epochRegressions *obs.Counter

	// Result-cache series bumped on the query path (the cache's own
	// hit/miss/eviction counters surface as CounterFuncs over its
	// atomics); both stay zero while the cache is disabled.
	cacheHitAge *obs.Histogram
	notModified *obs.Counter

	// Adaptive-summary series. fpDescents counts regardless of
	// Config.DisableAdaptiveSummaries (it is the baseline the adaptive
	// mode is measured against); replans only moves while the loop is on.
	fpDescents *obs.Counter
	replans    *obs.Counter
}

// newServerMetrics registers the server's series on reg (which must not
// already hold roads_* server series). Gauges are closures over the routing
// snapshot, so scrapes read the same lock-free state queries route by.
func newServerMetrics(s *Server, reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		queries: reg.Counter("roads_queries_total",
			"Queries evaluated to completion (not shed)."),
		shed: reg.Counter("roads_queries_shed_total",
			"Queries abandoned mid-evaluation because their deadline budget ran out."),
		redirects: reg.Counter("roads_redirects_total",
			"Redirect targets issued across all query replies."),
		summaryReports: reg.Counter("roads_summary_reports_total",
			"Child branch-summary reports ingested."),
		replicaPushes: reg.Counter("roads_replica_pushes_total",
			"Overlay replicas ingested (each push inside a batch counts once)."),
		summaryErrors: reg.Counter("roads_summary_errors_total",
			"Summary refresh failures (previous summaries stay published)."),
		parentFailovers: reg.Counter("roads_parent_failovers_total",
			"Parent-failure recoveries started (rejoin via ancestors or root election)."),
		evalLatency: reg.Histogram("roads_query_eval_seconds",
			"Query evaluation latency on this server (canonical obs bucket ladder).",
			obs.DefaultLatencyBounds()),
		rebuildsSkipped: reg.Counter("roads_summary_rebuilds_skipped_total",
			"Refresh ticks that reused every cached summary because neither the store, an owner, nor a child branch changed."),
		reportsSuppressed: reg.Counter("roads_report_suppressed_total",
			"Version-only reports sent in place of full branch summaries (the parent confirmed holding the current version)."),
		pushDelta: reg.Counter("roads_replica_push_delta_total",
			"Replica-batch entries sent version-only (TTL refresh, no summary payload)."),
		pushFull: reg.Counter("roads_replica_push_full_total",
			"Replica-batch entries sent with full summaries while delta dissemination is enabled."),
		antiEntropyRounds: reg.Counter("roads_antientropy_rounds_total",
			"Aggregation rounds forced full-state by the anti-entropy cadence (Config.AntiEntropyEvery)."),
		fenced: reg.Counter("roads_membership_fenced_total",
			"Relationship messages rejected (or replies discarded) for carrying a membership epoch lower than the recorded one."),
		elections: reg.Counter("roads_membership_elections_total",
			"Times this server assumed the root role through recovery (election win or exhausted-recovery claim)."),
		merges: reg.Counter("roads_membership_merges_total",
			"Split-brain merges executed as the losing root (this server's whole tree joined the winner as a subtree)."),
		probes: reg.Counter("roads_membership_probes_total",
			"Split-brain root probes sent to merge seeds and remembered ancestry."),
		orphanRetries: reg.Counter("roads_orphan_retries_total",
			"Recovery rounds retried after every candidate parent failed — the orphan keeps retrying instead of dangling as an accidental root."),
		epochRegressions: reg.Counter("roads_membership_epoch_regressions_total",
			"Accepted relationship messages that would move a recorded membership epoch backward; the fencing invariant is that this stays zero."),
		cacheHitAge: reg.Histogram("roads_cache_hit_age_seconds",
			"Age of the cached reply on each result-cache hit (insertion to hit; canonical obs bucket ladder).",
			obs.DefaultLatencyBounds()),
		notModified: reg.Counter("roads_cache_not_modified_total",
			"Queries answered NotModified because the requester's cached fingerprint still matched — zero evaluation, zero descent."),
		fpDescents: reg.Counter("roads_fp_descents_total",
			"False-positive descents absorbed: redirected (non-start) queries that found no records and no further redirects here — the summary a peer routed on matched spuriously."),
		replans: reg.Counter("roads_summary_replans_total",
			"Adaptive replans that changed the installed summary geometry (plans identical to the current one do not count)."),
	}
	reg.CounterFunc("roads_cache_hits_total",
		"Result-cache lookups whose entry revalidated against the current version set and was served.",
		func() uint64 {
			if rc := s.resultCache; rc != nil {
				return rc.hits.Load()
			}
			return 0
		})
	reg.CounterFunc("roads_cache_misses_total",
		"Result-cache lookups that found no entry or invalidated a stale one (each falls through to a fresh evaluation).",
		func() uint64 {
			if rc := s.resultCache; rc != nil {
				return rc.misses.Load()
			}
			return 0
		})
	reg.CounterFunc("roads_cache_evictions_total",
		"Result-cache entries evicted by the LRU byte budget (Config.ResultCacheBytes).",
		func() uint64 {
			if rc := s.resultCache; rc != nil {
				return rc.evictions.Load()
			}
			return 0
		})
	reg.CounterFunc("roads_cache_invalidations_total",
		"Result-cache entries dropped at lookup because a dependency version moved (store epoch, owner generation or view revision, child/replica dep hash).",
		func() uint64 {
			if rc := s.resultCache; rc != nil {
				return rc.invalidations.Load()
			}
			return 0
		})
	reg.GaugeFunc("roads_cache_entries",
		"Result-cache entries currently resident.", func() float64 {
			if rc := s.resultCache; rc != nil {
				entries, _ := rc.info()
				return float64(entries)
			}
			return 0
		})
	reg.GaugeFunc("roads_cache_bytes",
		"Result-cache resident bytes (estimated; bounded by Config.ResultCacheBytes).", func() float64 {
			if rc := s.resultCache; rc != nil {
				_, bytes := rc.info()
				return float64(bytes)
			}
			return 0
		})
	reg.CounterFunc("roads_admission_admitted_total",
		"Queries the admission layer let through (PriorityHigh always; others while their token bucket holds).",
		func() uint64 {
			if a := s.admission; a != nil {
				return a.admitted.Load()
			}
			return 0
		})
	reg.CounterFunc("roads_admission_shed_total",
		"Queries shed to coarse summary-only answers because the requester was over its admission budget (wire-v5 requesters).",
		func() uint64 {
			if a := s.admission; a != nil {
				return a.shed.Load()
			}
			return 0
		})
	reg.CounterFunc("roads_admission_rejected_total",
		"Over-budget queries from pre-v5 requesters answered with the legacy error shed (they cannot decode a coarse reply).",
		func() uint64 {
			if a := s.admission; a != nil {
				return a.rejected.Load()
			}
			return 0
		})
	reg.GaugeFunc("roads_admission_requesters",
		"Requester token buckets currently tracked by the admission layer.", func() float64 {
			if a := s.admission; a != nil {
				return float64(a.requesters())
			}
			return 0
		})
	reg.CounterFunc("roads_store_shard_rebuilds_total",
		"Store shard partial-summary rebuilds — the single-shard fallback taken when removals made a shard's partial stale (Bloom mode or the tracked-deletion threshold) or it was never built.",
		func() uint64 { return s.store.Stats().ShardRebuilds })
	reg.CounterFunc("roads_summary_partial_merges_total",
		"Store shard partials folded into merged summary exports (K per non-cached export for a K-shard store).",
		func() uint64 { return s.store.Stats().PartialMerges })
	reg.CounterFunc("roads_summary_exports_cached_total",
		"Store summary exports served entirely from the merged cache because the store epoch had not moved.",
		func() uint64 { return s.store.Stats().ExportsCached })
	reg.GaugeFunc("roads_store_shards",
		"Configured store shard count.", func() float64 {
			return float64(s.store.NumShards())
		})
	reg.GaugeFunc("roads_children",
		"Current child count.", func() float64 {
			return float64(len(s.snap.Load().children))
		})
	reg.GaugeFunc("roads_replicas",
		"Overlay replicas currently held.", func() float64 {
			return float64(s.snap.Load().numReplicas)
		})
	reg.GaugeFunc("roads_owners",
		"Resource owners attached locally.", func() float64 {
			return float64(len(s.snap.Load().owners))
		})
	reg.GaugeFunc("roads_local_records",
		"Records the local summary covers.", func() float64 {
			if l := s.snap.Load().localSummary; l != nil {
				return float64(l.Records)
			}
			return 0
		})
	reg.GaugeFunc("roads_branch_records",
		"Records the branch summary covers (self + descendants).", func() float64 {
			if b := s.snap.Load().branchSummary; b != nil {
				return float64(b.Records)
			}
			return 0
		})
	reg.GaugeFunc("roads_covered_records",
		"Records reachable via branch + overlay replicas; equals the federation total at full convergence.",
		func() float64 {
			return float64(s.snap.Load().covered)
		})
	reg.GaugeFunc("roads_is_root",
		"1 when the server currently has no parent.", func() float64 {
			if s.snap.Load().parentAddr == "" {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("roads_summary_age_seconds",
		"Seconds since the last successful summary refresh (0 before the first).",
		func() float64 {
			ns := s.lastRefresh.Load()
			if ns == 0 {
				return 0
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	reg.GaugeFunc("roads_summary_plan_deviation",
		"Attributes whose adaptive resolution currently sits off the base ladder level (0 = the plan is byte-identical to the static configuration).",
		func() float64 {
			return float64(s.planDeviation.Load())
		})
	reg.GaugeFunc("roads_summary_bloom_fill",
		"Worst (highest) fill ratio across the branch summary's Bloom filters; 0 when no attribute is Bloom-summarized.",
		func() float64 {
			worst := 0.0
			if b := s.snap.Load().branchSummary; b != nil {
				for _, bl := range b.Blooms {
					if bl != nil {
						if f := bl.FillRatio(); f > worst {
							worst = f
						}
					}
				}
			}
			return worst
		})
	reg.GaugeFunc("roads_summary_bloom_fpr",
		"Worst (highest) estimated false-positive rate across the branch summary's Bloom filters (fill ratio raised to the hash count).",
		func() float64 {
			worst := 0.0
			if b := s.snap.Load().branchSummary; b != nil {
				for _, bl := range b.Blooms {
					if bl != nil {
						if p := bl.FalsePositiveRate(); p > worst {
							worst = p
						}
					}
				}
			}
			return worst
		})
	reg.GaugeFunc("roads_membership_epoch",
		"Current membership epoch (bumped when a recovery begins; converges to the federation maximum).", func() float64 {
			return float64(s.epoch.Load())
		})
	reg.GaugeFunc("roads_uptime_seconds",
		"Seconds since NewServer constructed this server.", func() float64 {
			return time.Since(s.startTime).Seconds()
		})
	return m
}
