package live

import (
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/wire"
)

// admissionMaxBuckets bounds the per-requester bucket map; past it the
// stalest buckets (full, idle the longest) are reaped, so an adversary
// minting requester identities costs reaped state, not unbounded memory.
const admissionMaxBuckets = 4096

// tokenBucket is one requester's admission budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// admission is the per-requester admission controller: a lazily built map
// of token buckets refilled at Config.AdmissionRate queries/second up to
// Config.AdmissionBurst. High-priority requesters are never shed; everyone
// else pays one token per query and is shed once the bucket runs dry —
// to a coarse summary-only answer for wire-v5 requesters, the legacy error
// shed for older peers (see handleQuery).
type admission struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket

	admitted atomic.Uint64
	shed     atomic.Uint64
	rejected atomic.Uint64
}

// newAdmission builds the controller (rate 0 = disabled → nil). A zero
// burst defaults to 2×rate, floored at 1 — enough slack that a compliant
// requester's natural burstiness is not shed.
func newAdmission(rate float64, burst int) *admission {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst == 0 {
		b = 2 * rate
	}
	if b < 1 {
		b = 1
	}
	return &admission{rate: rate, burst: b, buckets: make(map[string]*tokenBucket)}
}

// admit charges the requester one query and reports whether it may run.
// Priority high always runs (still counted admitted); an empty requester
// identity shares one anonymous bucket.
func (a *admission) admit(requester string, priority uint8) bool {
	if priority == wire.PriorityHigh {
		a.admitted.Add(1)
		return true
	}
	now := time.Now()
	a.mu.Lock()
	b, ok := a.buckets[requester]
	if !ok {
		if len(a.buckets) >= admissionMaxBuckets {
			a.reapLocked(now)
		}
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[requester] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * a.rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		// The caller records the outcome (shed-to-coarse vs. the legacy
		// rejection) — it depends on the requester's wire version.
		a.mu.Unlock()
		return false
	}
	b.tokens--
	a.mu.Unlock()
	a.admitted.Add(1)
	return true
}

// reapLocked drops buckets idle long enough to have refilled completely —
// indistinguishable from fresh ones, so removing them changes no admission
// decision.
func (a *admission) reapLocked(now time.Time) {
	idle := time.Duration(float64(time.Second) * (a.burst / a.rate))
	for id, b := range a.buckets {
		if now.Sub(b.last) > idle {
			delete(a.buckets, id)
		}
	}
}

// requesters returns the live bucket count.
func (a *admission) requesters() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}

// AdmissionInfo is the admission controller's observable state, mirroring
// the roads_admission_* series for harness and test consumption. Shed
// counts queries degraded to coarse answers; Rejected counts pre-v5
// requesters that got the legacy error shed instead.
type AdmissionInfo struct {
	Enabled    bool
	Rate       float64
	Burst      float64
	Requesters int
	Admitted   uint64
	Shed       uint64
	Rejected   uint64
}

// AdmissionInfo reports the server's admission state (zero when disabled).
func (s *Server) AdmissionInfo() AdmissionInfo {
	a := s.admission
	if a == nil {
		return AdmissionInfo{}
	}
	return AdmissionInfo{
		Enabled:    true,
		Rate:       a.rate,
		Burst:      a.burst,
		Requesters: a.requesters(),
		Admitted:   a.admitted.Load(),
		Shed:       a.shed.Load(),
		Rejected:   a.rejected.Load(),
	}
}
