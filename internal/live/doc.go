// Package live is the runnable ROADS prototype: real servers exchanging
// wire messages over a pluggable transport (in-process or TCP), each
// running its own goroutines for aggregation ticks, heartbeats, and query
// serving. It mirrors the paper's Java prototype: the simulator
// (internal/core) answers "what are the costs", the live stack answers
// "does the protocol actually run".
//
// A Server is one node of the hierarchy. Children report branch summaries
// upward each aggregation tick (loops.go), parents push overlay replicas
// back down, and queries descend client-driven: each contacted server
// answers from local data and names the child branches and overlay
// replicas whose summaries match (handlers.go), which the Client then
// contacts concurrently. Membership is epoch-fenced (membership.go) so
// partition healing cannot resurrect dead relationships.
//
// Three read-path caches keep the hot paths off the server mutex (see
// ARCHITECTURE.md for the full map):
//
//   - the routing snapshot (snapshot.go): an immutable copy-on-write view
//     of owners, children and replicas, republished by every write path and
//     read with one atomic load;
//   - the owner export cache (loops.go): per-owner summaries keyed by
//     record-set generation, so refresh ticks skip unchanged owners;
//   - the query result cache (cache.go): complete replies keyed by
//     normalized predicates and revalidated against the exact version set
//     they were computed from, with a per-requester admission layer
//     (admission.go) shedding over-budget tenants to coarse summary-only
//     answers.
//
// Cluster (cluster.go) spins up and joins many servers in-process for
// tests and the load harness.
package live
