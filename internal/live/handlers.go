package live

import (
	"fmt"
	"sort"
	"time"

	"roads/internal/policy"
	"roads/internal/transport"
	"roads/internal/wire"
)

// handle dispatches one incoming message. Handlers never make outgoing
// calls, which keeps the request/reply protocol deadlock-free on
// synchronous transports.
func (s *Server) handle(msg *wire.Message) *wire.Message {
	// Any stamped message raises our own epoch toward the federation
	// maximum before per-kind fencing compares against the recorded
	// relationship epochs.
	if msg.Epoch != 0 {
		s.observeEpoch(msg.Epoch)
	}
	switch msg.Kind {
	case wire.KindJoin:
		return s.handleJoin(msg)
	case wire.KindSummaryReport:
		return s.handleSummaryReport(msg)
	case wire.KindReplicaPush:
		return s.handleReplicaPush(msg)
	case wire.KindReplicaBatch:
		return s.handleReplicaBatch(msg)
	case wire.KindQuery:
		return s.handleQuery(msg)
	case wire.KindHeartbeat:
		return s.handleHeartbeat(msg)
	case wire.KindLeave:
		return s.handleLeave(msg)
	case wire.KindStatus:
		return s.handleStatus()
	case wire.KindRootProbe:
		// A pre-epoch server answers probes with the generic
		// unhandled-kind error below; DisableMembershipEpoch reproduces
		// that exactly, which is what probers treat as "not capable".
		if s.epochEnabled() {
			return s.handleRootProbe(msg)
		}
	}
	return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: unhandled message kind %d", msg.Kind))
}

// stampReplyTo stamps the reply m with our epoch when the request proved
// the peer decodes wire v4 by being stamped itself. Replies to unstamped
// requests stay ≤v3: a pre-epoch peer treats an undecodable reply as a
// failed call and would spiral into rejoins.
func (s *Server) stampReplyTo(req, m *wire.Message) *wire.Message {
	if s.epochEnabled() && req.Epoch != 0 {
		m.Epoch = s.epoch.Load()
	}
	return m
}

func (s *Server) ack() *wire.Message {
	return &wire.Message{Kind: wire.KindAck, From: s.cfg.ID, Addr: s.cfg.Addr}
}

// ackWith is an ack carrying delta-dissemination feedback (wire v3; only
// sent to peers that proved they speak v3, or on replies the sender is
// free to ignore).
func (s *Server) ackWith(info *wire.AckInfo) *wire.Message {
	m := s.ack()
	m.Ack = info
	return m
}

// handleJoin accepts the joiner as a child if capacity allows and the
// joiner is not on our root path (loop avoidance); otherwise it redirects
// to our children with their branch shapes.
func (s *Server) handleJoin(msg *wire.Message) *wire.Message {
	if msg.Join == nil {
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: join without payload"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.rootPath {
		if id == msg.Join.ID {
			// The joiner is our ancestor: accepting would create a loop.
			return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: %s is on my root path", msg.Join.ID))
		}
	}
	if c, already := s.children[msg.Join.ID]; already || len(s.children) < s.cfg.MaxChildren {
		if already {
			if s.epochEnabled() && msg.Epoch != 0 && msg.Epoch < c.epoch {
				// Fenced: a re-join stamped from before this child's last
				// recovery — a healed partition replaying it must not
				// resurrect the dead relationship.
				s.mx.fenced.Inc()
				return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
					"live: join from %s fenced: epoch %d < recorded %d", msg.Join.ID, msg.Epoch, c.epoch))
			}
			// Re-accepting a known child: keep its branch summary, depth
			// and descendant counts — rebuilding the state from scratch
			// clobbered the subtree shape until the next summary report
			// and skewed join-placement decisions. The delta handshake
			// does reset: the child may have restarted as (or behind) a
			// pre-v3 peer, and sending it version-only state it no longer
			// holds would go unnoticed until anti-entropy. The epoch
			// relationship restarts at the join's stamp for the same
			// reason.
			c.addr = msg.Join.Addr
			c.lastSeen = time.Now()
			c.deltaCapable = false
			c.acked = nil
			c.adaptiveCapable = false
			c.epoch = msg.Epoch
			c.epochCapable = s.epochEnabled() && msg.Epoch != 0
		} else {
			s.children[msg.Join.ID] = &childState{
				id:           msg.Join.ID,
				addr:         msg.Join.Addr,
				depth:        1,
				lastSeen:     time.Now(),
				epoch:        msg.Epoch,
				epochCapable: s.epochEnabled() && msg.Epoch != 0,
			}
		}
		s.rememberLocked(msg.Join.ID, msg.Join.Addr)
		s.publishSnapshotLocked()
		return s.stampReplyTo(msg, &wire.Message{
			Kind: wire.KindJoinReply,
			From: s.cfg.ID,
			Addr: s.cfg.Addr,
			JoinReply: &wire.JoinReply{
				Accepted:   true,
				ParentID:   s.cfg.ID,
				ParentAddr: s.cfg.Addr,
			},
		})
	}
	infos := make([]wire.ChildInfo, 0, len(s.children))
	for _, c := range s.children {
		infos = append(infos, wire.ChildInfo{ID: c.id, Addr: c.addr, Depth: c.depth, Descendants: c.descendants})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return &wire.Message{
		Kind:      wire.KindJoinReply,
		From:      s.cfg.ID,
		Addr:      s.cfg.Addr,
		JoinReply: &wire.JoinReply{Accepted: false, Children: infos},
	}
}

// handleSummaryReport ingests a child's branch summary. A version-only
// report (Summary nil, Version set — sent once this server confirmed
// holding the child's current branch version) refreshes the child's
// liveness and shape metadata without any summary decode or re-merge; a
// version mismatch answers NeedFull so the child resends in full next
// tick. Full reports from delta children are acked with the version now
// held, which is what lets the child start suppressing.
func (s *Server) handleSummaryReport(msg *wire.Message) *wire.Message {
	delta := !s.cfg.DisableDeltaDissemination
	if msg.Report != nil && msg.Report.Summary == nil && msg.Report.Version != 0 && delta {
		s.mu.Lock()
		defer s.mu.Unlock()
		c, ok := s.children[msg.From]
		if ok && s.epochEnabled() && msg.Epoch != 0 && msg.Epoch < c.epoch {
			s.mx.fenced.Inc()
			return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
				"live: report from %s fenced: epoch %d < recorded %d", msg.From, msg.Epoch, c.epoch))
		}
		if !ok || c.branch == nil || c.version != msg.Report.Version {
			// Unknown child or stale version: the sender must restate its
			// branch in full. Answered as an ack, not an error — the
			// sender proved it speaks v3 by stamping the report.
			return s.stampReplyTo(msg, s.ackWith(&wire.AckInfo{NeedFull: true}))
		}
		if s.epochEnabled() && msg.Epoch != 0 {
			c.epochCapable = true
			s.advanceRelEpochLocked(&c.epoch, msg.Epoch)
		}
		if msg.Adaptive && s.cfg.adaptiveOn() {
			c.adaptiveCapable = true
		}
		c.depth = msg.Report.Depth
		c.descendants = msg.Report.Descendants
		c.kids = msg.Report.Children
		c.lastSeen = time.Now()
		s.mx.summaryReports.Inc()
		// The branch content did not change, so neither the branch merge
		// epoch nor the routing snapshot needs touching — redirect record
		// counts ride on c.branch, which stands.
		return s.stampReplyTo(msg, s.ackWith(&wire.AckInfo{HaveVersion: c.version}))
	}
	if msg.Report == nil || msg.Report.Summary == nil {
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: summary report without payload"))
	}
	sum, err := msg.Report.Summary.ToSummary(s.cfg.Schema)
	if err != nil {
		return wire.ErrorMessage(s.cfg.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.children[msg.From]
	if ok && s.epochEnabled() && msg.Epoch != 0 && msg.Epoch < c.epoch {
		// Fenced before any mutation: a report from before this child's
		// last recovery must not refresh the dead relationship.
		s.mx.fenced.Inc()
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
			"live: report from %s fenced: epoch %d < recorded %d", msg.From, msg.Epoch, c.epoch))
	}
	if !ok {
		// A child we do not know (e.g. state lost after restart): adopt it
		// if capacity allows, otherwise tell it to rejoin.
		if len(s.children) >= s.cfg.MaxChildren {
			return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: %s is not my child", msg.From))
		}
		c = &childState{id: msg.From, addr: msg.Addr}
		s.children[msg.From] = c
	}
	if s.epochEnabled() && msg.Epoch != 0 {
		c.epochCapable = true
		s.advanceRelEpochLocked(&c.epoch, msg.Epoch)
	}
	if msg.Adaptive && s.cfg.adaptiveOn() {
		// A flagged report proves the child decodes wire v6 (children only
		// flag after we proved the capability to them, but a report can
		// arrive before the first batch ack lands — e.g. right after a
		// re-adopt cleared the record).
		c.adaptiveCapable = true
	}
	// A full report with the same non-zero version restates unchanged
	// content (anti-entropy round): swap the object but skip the branch
	// re-merge. Unversioned reports must be assumed changed every time.
	if c.branch == nil || c.version != msg.Report.Version || msg.Report.Version == 0 {
		s.childEpoch++
	}
	if c.version != 0 && msg.Report.Version == 0 && c.deltaCapable {
		// Downgrade: the child restarted as a pre-v3 peer. Stop sending
		// it anything version-stamped.
		c.deltaCapable = false
		c.acked = nil
	}
	c.branch = sum
	c.version = msg.Report.Version
	c.depth = msg.Report.Depth
	c.descendants = msg.Report.Descendants
	c.kids = msg.Report.Children
	c.lastSeen = time.Now()
	s.publishSnapshotLocked()
	s.mx.summaryReports.Inc()
	if delta && msg.Report.Version != 0 {
		// Confirm the version so the child can suppress its next reports.
		// Only stamped reporters get the v3 ack: a pre-v3 child treats an
		// undecodable reply as a parent miss and spirals into rejoins.
		return s.stampReplyTo(msg, s.ackWith(&wire.AckInfo{HaveVersion: msg.Report.Version}))
	}
	return s.stampReplyTo(msg, s.ack())
}

// decodeReplica reconstructs one replica push's summaries against the
// schema; decoding stays outside the server lock so slow summary rebuilds
// never stall the handlers.
func (s *Server) decodeReplica(p *wire.ReplicaPush) (*replicaState, error) {
	if p == nil || p.Branch == nil {
		return nil, fmt.Errorf("live: replica push without payload")
	}
	branch, err := p.Branch.ToSummary(s.cfg.Schema)
	if err != nil {
		return nil, err
	}
	level := p.Level
	if level <= 0 {
		level = 1
	}
	rs := &replicaState{
		originID:   p.OriginID,
		originAddr: p.OriginAddr,
		branch:     branch,
		ancestor:   p.Ancestor,
		level:      level,
		received:   time.Now(),
		fallbacks:  p.Fallbacks,
		version:    p.Version,
	}
	if p.Local != nil {
		local, err := p.Local.ToSummary(s.cfg.Schema)
		if err != nil {
			return nil, err
		}
		rs.local = local
	}
	return rs, nil
}

// handleReplicaPush stores one overlay replica (pre-batching wire form).
func (s *Server) handleReplicaPush(msg *wire.Message) *wire.Message {
	rs, err := s.decodeReplica(msg.Replica)
	if err != nil {
		return wire.ErrorMessage(s.cfg.ID, err)
	}
	s.mu.Lock()
	if rs.originID != s.cfg.ID { // never replicate ourselves
		s.replicas[rs.originID] = rs
		s.publishSnapshotLocked()
	}
	s.mu.Unlock()
	s.mx.replicaPushes.Inc()
	return s.ack()
}

// handleReplicaBatch stores a whole tick's worth of overlay replicas.
// Every push is decoded first, then the batch is applied under a single
// lock acquisition, so concurrent queries observe either the previous
// overlay state or the complete new one — never a half-applied tick.
//
// Version-only entries (Branch nil, Version set) renew the matching
// replica's soft-state TTL without any summary decode; a mismatch or an
// unknown origin lands in the ack's NeedFullOrigins so the sender
// restates that origin in full next tick. The AckInfo attached to the
// reply doubles as the delta-capability signal — senders that cannot
// decode it ignore batch-ack contents entirely, so attaching it
// unconditionally is safe.
func (s *Server) handleReplicaBatch(msg *wire.Message) *wire.Message {
	if msg.Batch == nil {
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: replica batch without payload"))
	}
	delta := !s.cfg.DisableDeltaDissemination
	states := make([]*replicaState, 0, len(msg.Batch.Pushes))
	var versionOnly []*wire.ReplicaPush
	stamped := false
	for _, p := range msg.Batch.Pushes {
		if p != nil && p.Version != 0 {
			stamped = true
		}
		if delta && p != nil && p.Branch == nil && p.Version != 0 {
			versionOnly = append(versionOnly, p)
			continue
		}
		rs, err := s.decodeReplica(p)
		if err != nil {
			return wire.ErrorMessage(s.cfg.ID, err)
		}
		states = append(states, rs)
	}
	var needFull []string
	now := time.Now()
	s.mu.Lock()
	for _, rs := range states {
		if rs.originID != s.cfg.ID { // never replicate ourselves
			s.replicas[rs.originID] = rs
		}
	}
	for _, p := range versionOnly {
		if p.OriginID == s.cfg.ID {
			continue
		}
		r, ok := s.replicas[p.OriginID]
		if !ok || r.version == 0 || r.version != p.Version {
			needFull = append(needFull, p.OriginID)
			continue
		}
		// TTL refresh: the held replica is confirmed current. received is
		// not part of the routing snapshot, so no republish is needed for
		// a purely version-only batch.
		r.received = now
	}
	if stamped && msg.From == s.parentID {
		// A version-stamped push proves the parent speaks wire v3, which
		// is what authorizes stamping our reports to it.
		s.parentV3 = true
	}
	if msg.Adaptive && msg.From == s.parentID && s.cfg.adaptiveOn() {
		// An Adaptive-flagged batch proves the parent speaks wire v6,
		// authorizing adaptive-geometry and condensed reports upward.
		s.parentAdaptive = true
	}
	if s.epochEnabled() && msg.Epoch != 0 && msg.From == s.parentID {
		// An epoch-stamped push likewise proves the parent speaks wire
		// v4, authorizing stamped heartbeats and reports to it. Plain
		// max, not the fenced advance: a delayed push from before the
		// parent's recovery rewrites no ancestry, so it is a benign race
		// here rather than an accepted stale mutation.
		s.parentEpochCapable = true
		if msg.Epoch > s.parentEpoch {
			s.parentEpoch = msg.Epoch
		}
	}
	if len(states) > 0 {
		s.publishSnapshotLocked()
	}
	s.mu.Unlock()
	s.mx.replicaPushes.Add(uint64(len(states) + len(versionOnly)))
	// The batch ack is always epoch-stamped when the protocol is on, and
	// Adaptive-flagged when adaptive summaries are on: the ack is the
	// capability bootstrap for both, and senders that cannot decode a
	// v4/v6 ack ignore batch-ack contents entirely, so neither marker is
	// ever acted on by a peer that cannot read it.
	var ackRep *wire.Message
	if delta {
		ackRep = s.ackWith(&wire.AckInfo{NeedFullOrigins: needFull})
	} else {
		ackRep = s.ack()
	}
	if s.cfg.adaptiveOn() {
		ackRep.Adaptive = true
	}
	return s.stampEpoch(ackRep)
}

// noteFPDescent closes the feedback loop behind adaptive summaries: a
// non-start query that found nothing here — no local records and no
// further redirects — means the summary some peer routed on matched
// spuriously, so the whole descent hop was a false positive. Each
// predicate attribute draws one unit of heat; the next replan spends
// summary resolution where the heat concentrates. Start-contact queries
// are excluded (no summary advertised this server to the requester), as
// are NotModified revalidations and shed/coarse answers. The counter runs
// even with adaptation disabled — it is the baseline the adaptive mode is
// measured against — only the heat feed is conditional.
func (s *Server) noteFPDescent(q *wire.QueryDTO, rep *wire.QueryReply) {
	if q.Start || rep.NotModified || rep.Coarse ||
		len(rep.Records) > 0 || len(rep.Redirects) > 0 {
		return
	}
	s.mx.fpDescents.Inc()
	if s.fpHeat == nil {
		return
	}
	for _, p := range q.Preds {
		if i, ok := s.cfg.Schema.Index(p.Attr); ok && i < len(s.fpHeat) {
			s.fpHeat[i].Add(1)
		}
	}
}

// handleQuery evaluates the query against local data and held summaries,
// returning local matches (after owner policies) plus redirect targets,
// each annotated with failover alternates and a record-count estimate.
// Queries whose deadline budget runs out mid-evaluation are shed: the
// client has already given up on this contact, so finishing the work
// would only burn server time nobody is waiting on.
//
// The happy path acquires no locks at all: one atomic load of the routing
// snapshot pins a consistent view of owners, children and replicas for the
// whole evaluation (the store carries its own lock), and the counters are
// atomics. Concurrent joins, reports and replica pushes publish fresh
// snapshots without ever blocking a query.
func (s *Server) handleQuery(msg *wire.Message) *wire.Message {
	if msg.Query == nil {
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: query without payload"))
	}
	if s.cfg.LegacyQueryLocking {
		return s.handleQueryLegacy(msg)
	}
	began := time.Now()
	snap := s.snap.Load()
	// A query carrying any v5 field proves the requester decodes wire v5,
	// so it may be answered with coarse and NotModified replies (which
	// a pre-v5 peer could not decode).
	v5 := msg.Query.Priority != 0 || msg.Query.CacheFingerprint != 0 || msg.Query.WantFingerprint
	q := msg.Query.ToQuery()
	if err := q.Bind(s.cfg.Schema); err != nil {
		return wire.ErrorMessage(s.cfg.ID, err)
	}
	wrap := func(rep *wire.QueryReply) *wire.Message {
		return &wire.Message{Kind: wire.KindQueryReply, From: s.cfg.ID, Addr: s.cfg.Addr, QueryRep: rep}
	}

	// Admission first, before any evaluation work: an over-budget
	// requester is shed to a coarse summary-only answer (v5) or the
	// legacy error (older peers). The effective class is the operator's
	// pinned one when a Classifier is configured — a requester cannot
	// promote itself past admission by claiming PriorityHigh.
	if s.admission != nil {
		prio := s.cfg.Classifier.ClassFor(msg.Query.Requester, msg.Query.Priority)
		if !s.admission.admit(msg.Query.Requester, prio) {
			if v5 {
				s.admission.shed.Add(1)
				return wrap(s.coarseReply(snap, q))
			}
			s.admission.rejected.Add(1)
			return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
				"live: query %s shed: requester %q over admission budget", msg.Query.ID, msg.Query.Requester))
		}
	}

	overBudget := func() bool {
		return msg.Query.Budget > 0 && time.Since(began) > msg.Query.Budget
	}
	shed := func() *wire.Message {
		s.mx.shed.Inc()
		if v5 {
			// Shed to coarse, not to an error: the requester still gets a
			// flagged summary-only estimate it can act on.
			return wrap(s.coarseReply(snap, q))
		}
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
			"live: query %s shed: %v deadline budget exhausted", msg.Query.ID, msg.Query.Budget))
	}

	// Fingerprint revalidation (wire v5): when the requester's cached
	// fingerprint still matches the current routing state, nothing this
	// server would answer has changed — reply NotModified with no
	// evaluation at all.
	var fp uint64
	if v5 && (msg.Query.WantFingerprint || msg.Query.CacheFingerprint != 0) {
		fp = s.queryFingerprint(snap)
		if fp != 0 && fp == msg.Query.CacheFingerprint {
			s.mx.notModified.Inc()
			s.mx.queries.Inc()
			s.mx.evalLatency.Observe(time.Since(began))
			return wrap(&wire.QueryReply{NotModified: true, Fingerprint: fp})
		}
	}

	// Result cache: traced queries bypass (their replies carry per-query
	// trace payloads). A hit is revalidated against the live store epoch,
	// owner generations and the snapshot's dep hashes inside lookup, so it
	// is byte-identical to the evaluation below.
	tracing := msg.Query.Trace
	caching := s.resultCache != nil && !tracing
	var key string
	if caching {
		key = cacheKey(msg.Query.Requester, msg.Query.Scope, msg.Query.Start, msg.Query.Preds)
		if cached, age, ok := s.resultCache.lookup(s, snap, key, q); ok {
			rep := *cached // shallow copy: the shared entry is never mutated
			if msg.Query.WantFingerprint {
				rep.Fingerprint = fp
			}
			s.mx.cacheHitAge.Observe(age)
			s.mx.queries.Inc()
			s.mx.redirects.Add(uint64(len(rep.Redirects)))
			s.mx.evalLatency.Observe(time.Since(began))
			s.noteFPDescent(msg.Query, &rep)
			return wrap(&rep)
		}
	}

	reply := &wire.QueryReply{}
	// Trace collection is opt-in per query; the untraced hot path never
	// touches these.
	var matchedChildren, matchedReplicas []string

	// Local dependency versions are captured before the work they cover:
	// tagging results computed from older state with a newer version would
	// let a stale entry validate.
	storeEpoch := s.store.Epoch()
	var ownerDeps []ownerDep
	if caching && len(snap.owners) > 0 {
		ownerDeps = make([]ownerDep, len(snap.owners))
	}

	// Local matches: the trusted store plus each summary-mode owner's
	// policy-filtered answer (the "final control" step).
	sres, err := s.store.Search(q)
	if err != nil {
		return wire.ErrorMessage(s.cfg.ID, err)
	}
	reply.Records = append(reply.Records, wire.FromRecords(sres.Records)...)
	if overBudget() {
		return shed()
	}
	for i, o := range snap.owners {
		if ownerDeps != nil {
			ownerDeps[i] = ownerDep{gen: o.Generation(), rev: o.Policy.Rev()}
		}
		if o.Policy.Mode != policy.ExportSummary {
			continue // records-mode owners answer via the store
		}
		ans, err := o.Answer(q)
		if err != nil {
			return wire.ErrorMessage(s.cfg.ID, err)
		}
		reply.Records = append(reply.Records, wire.FromRecords(ans)...)
		if overBudget() {
			return shed()
		}
	}

	// Redirects: matching children always; overlay replicas only on the
	// first contact (paper Fig. 2: redirected servers search their own
	// branches). The snapshot pre-built each redirect and pre-filtered
	// replicas shadowed by a child, so this is pure summary matching.
	// When caching, every match decision is recorded as a dep: the entry
	// dies exactly when a decision could flip.
	var childDeps, replicaDeps []cacheDep
	if caching {
		childDeps = make([]cacheDep, len(snap.children))
	}
	for i, c := range snap.children {
		matched := c.branch != nil && q.MatchSummary(c.branch)
		if matched {
			reply.Redirects = append(reply.Redirects, c.ri)
			if tracing {
				matchedChildren = append(matchedChildren, c.ri.ID)
			}
		}
		if caching {
			childDeps[i] = cacheDep{id: c.ri.ID, dep: c.dep, matched: matched, inScope: true}
		}
	}
	if msg.Query.Start {
		if caching {
			replicaDeps = make([]cacheDep, len(snap.replicas))
		}
		for i, r := range snap.replicas {
			inScope := msg.Query.Scope < 0 || r.level <= msg.Query.Scope
			matched := false
			if inScope && q.MatchSummary(r.match) {
				matched = true
				reply.Redirects = append(reply.Redirects, r.ri)
				if tracing {
					matchedReplicas = append(matchedReplicas, r.ri.ID)
				}
			}
			if caching {
				replicaDeps[i] = cacheDep{id: r.ri.ID, dep: r.dep, matched: matched, inScope: inScope}
			}
		}
	}
	if overBudget() {
		return shed()
	}
	if tracing {
		reply.Trace = &wire.TraceInfo{
			ServerID:        s.cfg.ID,
			EvalMicros:      uint64(time.Since(began) / time.Microsecond),
			LocalRecords:    len(reply.Records),
			Children:        len(snap.children),
			Replicas:        len(snap.replicas),
			MatchedChildren: matchedChildren,
			MatchedReplicas: matchedReplicas,
		}
	}
	if caching {
		// Cache a fingerprint-free shallow copy: fingerprints are
		// per-request (WantFingerprint), not part of the shared answer.
		cached := *reply
		cached.Fingerprint = 0
		s.resultCache.insert(&cacheEntry{
			key:        key,
			reply:      &cached,
			size:       replySize(key, &cached),
			storeEpoch: storeEpoch,
			ownerDeps:  ownerDeps,
			children:   childDeps,
			replicas:   replicaDeps,
			start:      msg.Query.Start,
			scope:      msg.Query.Scope,
			insertedAt: time.Now(),
		})
	}
	if msg.Query.WantFingerprint {
		reply.Fingerprint = fp
	}
	s.mx.queries.Inc()
	s.mx.redirects.Add(uint64(len(reply.Redirects)))
	s.mx.evalLatency.Observe(time.Since(began))
	s.noteFPDescent(msg.Query, reply)
	return wrap(reply)
}

// handleQueryLegacy is the pre-snapshot query path: every routing lookup
// happens under s.mu against the live maps. Kept behind
// Config.LegacyQueryLocking as the measurable baseline the lock-free path
// is benchmarked against (see BenchmarkHandleQuery).
func (s *Server) handleQueryLegacy(msg *wire.Message) *wire.Message {
	began := time.Now()
	overBudget := func() bool {
		return msg.Query.Budget > 0 && time.Since(began) > msg.Query.Budget
	}
	shed := func() *wire.Message {
		s.mx.shed.Inc()
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
			"live: query %s shed: %v deadline budget exhausted", msg.Query.ID, msg.Query.Budget))
	}
	q := msg.Query.ToQuery()
	if err := q.Bind(s.cfg.Schema); err != nil {
		return wire.ErrorMessage(s.cfg.ID, err)
	}

	tracing := msg.Query.Trace
	var matchedChildren, matchedReplicas []string
	reply := &wire.QueryReply{}
	sres, err := s.store.Search(q)
	if err != nil {
		return wire.ErrorMessage(s.cfg.ID, err)
	}
	reply.Records = append(reply.Records, wire.FromRecords(sres.Records)...)
	if overBudget() {
		return shed()
	}
	s.mu.Lock()
	owners := append(s.owners[:0:0], s.owners...)
	s.mu.Unlock()
	for _, o := range owners {
		if o.Policy.Mode != policy.ExportSummary {
			continue // records-mode owners answer via the store
		}
		ans, err := o.Answer(q)
		if err != nil {
			return wire.ErrorMessage(s.cfg.ID, err)
		}
		reply.Records = append(reply.Records, wire.FromRecords(ans)...)
		if overBudget() {
			return shed()
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{s.cfg.ID: true}
	childIDs := make([]string, 0, len(s.children))
	for id := range s.children {
		childIDs = append(childIDs, id)
	}
	sort.Strings(childIDs)
	for _, id := range childIDs {
		c := s.children[id]
		if c.branch != nil && q.MatchSummary(c.branch) && !seen[id] {
			seen[id] = true
			reply.Redirects = append(reply.Redirects, wire.RedirectInfo{
				ID:         c.id,
				Addr:       c.addr,
				Records:    c.branch.Records,
				Alternates: c.kids,
			})
			if tracing {
				matchedChildren = append(matchedChildren, c.id)
			}
		}
	}
	if msg.Query.Start {
		repIDs := make([]string, 0, len(s.replicas))
		for id := range s.replicas {
			repIDs = append(repIDs, id)
		}
		sort.Strings(repIDs)
		for _, id := range repIDs {
			r := s.replicas[id]
			if seen[id] {
				continue
			}
			if msg.Query.Scope >= 0 && r.level > msg.Query.Scope {
				continue // outside the requested search scope
			}
			if r.ancestor {
				// An ancestor redirect covers only the ancestor's local
				// data; nothing replicates that, so no alternates.
				if r.local != nil && q.MatchSummary(r.local) {
					seen[id] = true
					reply.Redirects = append(reply.Redirects, wire.RedirectInfo{
						ID:      r.originID,
						Addr:    r.originAddr,
						Records: r.local.Records,
					})
					if tracing {
						matchedReplicas = append(matchedReplicas, r.originID)
					}
				}
				continue
			}
			if q.MatchSummary(r.branch) {
				seen[id] = true
				reply.Redirects = append(reply.Redirects, wire.RedirectInfo{
					ID:         r.originID,
					Addr:       r.originAddr,
					Records:    r.branch.Records,
					Alternates: r.fallbacks,
				})
				if tracing {
					matchedReplicas = append(matchedReplicas, r.originID)
				}
			}
		}
	}
	numChildren, numReplicas := len(s.children), len(s.replicas)
	if overBudget() {
		s.mx.shed.Inc()
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
			"live: query %s shed: %v deadline budget exhausted", msg.Query.ID, msg.Query.Budget))
	}
	if tracing {
		reply.Trace = &wire.TraceInfo{
			ServerID:        s.cfg.ID,
			EvalMicros:      uint64(time.Since(began) / time.Microsecond),
			LocalRecords:    len(reply.Records),
			Children:        numChildren,
			Replicas:        numReplicas,
			MatchedChildren: matchedChildren,
			MatchedReplicas: matchedReplicas,
		}
	}
	s.mx.queries.Inc()
	s.mx.redirects.Add(uint64(len(reply.Redirects)))
	s.mx.evalLatency.Observe(time.Since(began))
	return &wire.Message{Kind: wire.KindQueryReply, From: s.cfg.ID, Addr: s.cfg.Addr, QueryRep: reply}
}

// StatusSnapshot returns the server's operational snapshot — the wire
// Status compatibility view over the same counters the obs registry
// exposes as named series. Like the query path it reads the routing
// snapshot and atomics only, so a status probe (or a /statusz scrape,
// which embeds this) never contends with the write paths.
func (s *Server) StatusSnapshot() *wire.Status {
	snap := s.snap.Load()
	st := &wire.Status{
		ID:              s.cfg.ID,
		Addr:            s.cfg.Addr,
		ParentID:        snap.parentID,
		IsRoot:          snap.parentAddr == "",
		Children:        len(snap.children),
		Replicas:        snap.numReplicas,
		Owners:          len(snap.owners),
		RootPath:        append([]string(nil), snap.rootPath...),
		QueriesServed:   s.mx.queries.Load(),
		RedirectsIssued: s.mx.redirects.Load(),
		SummariesRecv:   s.mx.summaryReports.Load(),
		QueriesShed:     s.mx.shed.Load(),
		SummaryErrors:   s.mx.summaryErrors.Load(),

		// Dissemination counters: all zero while delta dissemination is
		// disabled, which keeps status replies encodable at wire v2.
		SummaryRebuildsSkipped: s.mx.rebuildsSkipped.Load(),
		ReportsSuppressed:      s.mx.reportsSuppressed.Load(),
		ReplicaPushDelta:       s.mx.pushDelta.Load(),
		ReplicaPushFull:        s.mx.pushFull.Load(),
		AntiEntropyRounds:      s.mx.antiEntropyRounds.Load(),
	}
	if snap.branchSummary != nil {
		st.BranchRecords = snap.branchSummary.Records
	}
	if snap.localSummary != nil {
		st.LocalRecords = snap.localSummary.Records
	}
	if ts, ok := s.tr.(transport.Statser); ok {
		tst := ts.Stats()
		st.Transport = &wire.TransportStatus{
			Dials:     tst.Dials,
			Reuses:    tst.Reuses,
			InFlight:  tst.InFlight,
			Calls:     tst.Calls,
			Errors:    tst.Errors,
			Retries:   tst.Retries,
			BytesSent: tst.BytesSent,
			BytesRecv: tst.BytesRecv,
			P50Micros: uint64(tst.Latency.Percentile(0.50) / time.Microsecond),
			P99Micros: uint64(tst.Latency.Percentile(0.99) / time.Microsecond),
		}
	}
	return st
}

// handleStatus answers a KindStatus probe with StatusSnapshot.
func (s *Server) handleStatus() *wire.Message {
	return &wire.Message{Kind: wire.KindStatusReply, From: s.cfg.ID, Addr: s.cfg.Addr, Status: s.StatusSnapshot()}
}

// handleHeartbeat refreshes the child's liveness and returns our root path
// (so the child can rebuild its own) plus the child's sibling list (for
// root election if we die while being the root).
func (s *Server) handleHeartbeat(msg *wire.Message) *wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.children[msg.From]; ok {
		if s.epochEnabled() && msg.Epoch != 0 && msg.Epoch < c.epoch {
			// Fenced: a heartbeat from before this child's last recovery —
			// a healed partition must not resurrect the dead relationship
			// by refreshing its liveness.
			s.mx.fenced.Inc()
			return wire.ErrorMessage(s.cfg.ID, fmt.Errorf(
				"live: heartbeat from %s fenced: epoch %d < recorded %d", msg.From, msg.Epoch, c.epoch))
		}
		if s.epochEnabled() && msg.Epoch != 0 {
			c.epochCapable = true
			s.advanceRelEpochLocked(&c.epoch, msg.Epoch)
		}
		c.lastSeen = time.Now()
	}
	sibs := make([]wire.RedirectInfo, 0, len(s.children))
	for _, c := range s.children {
		if c.id != msg.From {
			sibs = append(sibs, wire.RedirectInfo{ID: c.id, Addr: c.addr})
		}
	}
	sort.Slice(sibs, func(i, j int) bool { return sibs[i].ID < sibs[j].ID })
	return s.stampReplyTo(msg, &wire.Message{
		Kind: wire.KindHeartbeatReply,
		From: s.cfg.ID,
		Addr: s.cfg.Addr,
		Heartbeat: &wire.Heartbeat{
			RootPath:  append([]string(nil), s.rootPath...),
			PathAddrs: append([]string(nil), s.rootPathAddrs...),
		},
		QueryRep: &wire.QueryReply{Redirects: sibs},
	})
}

// handleLeave removes a departing parent or child.
func (s *Server) handleLeave(msg *wire.Message) *wire.Message {
	s.mu.Lock()
	if _, ok := s.children[msg.From]; ok {
		s.childEpoch++ // its branch leaves the merged summary
	}
	delete(s.children, msg.From)
	delete(s.replicas, msg.From)
	var plan *rejoinPlan
	if msg.From == s.parentID && s.tx == txNone {
		// Capture the recovery plan now, under the lock, before any other
		// loop can disturb the root path or parent state.
		plan = s.planRejoinLocked()
	}
	s.publishSnapshotLocked()
	s.mu.Unlock()
	if plan != nil {
		// Execute on a tracked goroutine: the handler must not block on
		// outgoing calls, and an untracked goroutine could outlive
		// shutdown's Wait.
		s.spawnRecovery(plan)
	}
	return s.ack()
}
