package live

import (
	"fmt"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// deltaServerCfg builds a parked-loop server (background loops effectively
// off) so tests drive aggregation rounds deterministically by calling
// refreshSummaries/reportToParent/pushReplicas themselves.
func deltaServerCfg(t *testing.T, tr transport.Transport, id string, schema *record.Schema, mut func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig(id, "addr-"+id, schema)
	cfg.AggregateEvery = time.Hour
	cfg.HeartbeatEvery = time.Hour
	// Park the anti-entropy cadence too: tests that want full rounds set
	// their own cadence via mut.
	cfg.AntiEntropyEvery = 1 << 20
	if mut != nil {
		mut(&cfg)
	}
	srv, err := NewServer(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

func deltaServer(t *testing.T, tr transport.Transport, id string, schema *record.Schema, disable bool) *Server {
	t.Helper()
	return deltaServerCfg(t, tr, id, schema, func(c *Config) { c.DisableDeltaDissemination = disable })
}

// deltaRecords builds n records that all match matchAllQuery.
func deltaRecords(schema *record.Schema, ownerID string, n int) []*record.Record {
	recs := make([]*record.Record, n)
	for j := range recs {
		r := record.New(schema, fmt.Sprintf("%s-r%d", ownerID, j), ownerID)
		r.SetNum(0, float64(j+1)/float64(n+2))
		r.SetNum(1, 0.5)
		recs[j] = r
	}
	return recs
}

func attachDeltaOwner(t *testing.T, srv *Server, schema *record.Schema, n int) *policy.Owner {
	t.Helper()
	o := policy.NewOwner("own-"+srv.ID(), schema, nil)
	o.SetRecords(deltaRecords(schema, o.ID, n))
	if err := srv.AttachOwner(o); err != nil {
		t.Fatal(err)
	}
	return o
}

// driveRound runs one full aggregation round on each server in order
// (children before parents, so reports land before the parent pushes).
func driveRound(servers ...*Server) {
	for _, s := range servers {
		s.refreshSummaries()
		s.reportToParent()
		s.pushReplicas()
	}
}

// childDelta snapshots the parent-side delta state for one child.
func childDelta(s *Server, id string) (version uint64, capable bool, acked map[string]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.children[id]
	if !ok {
		return 0, false, nil
	}
	acked = make(map[string]uint64, len(c.acked))
	for k, v := range c.acked {
		acked[k] = v
	}
	return c.version, c.deltaCapable, acked
}

// parentDelta snapshots the child-side delta state.
func parentDelta(s *Server) (v3 bool, have uint64, needFull bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parentV3, s.parentHaveVersion, s.parentNeedFull
}

func setChildVersion(s *Server, id string, v uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.children[id]
	if ok {
		c.version = v
	}
	return ok
}

func replicaVersion(s *Server, origin string) (version uint64, received time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.replicas[origin]
	if !ok {
		return 0, time.Time{}, false
	}
	return r.version, r.received, true
}

func setReplicaVersion(s *Server, origin string, v uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.replicas[origin]
	if ok {
		r.version = v
	}
	return ok
}

// TestDeltaHandshakeAndSuppression walks the whole negotiation on a parked
// two-child star and then pins the steady-state behaviour: version-only
// reports and pushes, counters moving, replica TTLs renewed, and a
// steady-state round moving a small fraction of the first full round's
// bytes.
func TestDeltaHandshakeAndSuppression(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	root := deltaServer(t, tr, "root", schema, false)
	c1 := deltaServer(t, tr, "c1", schema, false)
	c2 := deltaServer(t, tr, "c2", schema, false)
	attachDeltaOwner(t, root, schema, 5)
	attachDeltaOwner(t, c1, schema, 5)
	attachDeltaOwner(t, c2, schema, 5)
	if err := c1.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}

	firstStart := tr.Stats()
	driveRound(c1, c2, root)
	firstEnd := tr.Stats()
	// The handshake converges over the next rounds: the batch ack marks the
	// children capable, the stamped ancestor push marks the parent v3, the
	// stamped report earns a HaveVersion ack, and suppression begins.
	for i := 0; i < 4; i++ {
		driveRound(c1, c2, root)
	}

	ver, capable, acked := childDelta(root, "c1")
	if !capable || ver == 0 || len(acked) == 0 {
		t.Fatalf("root never completed the handshake with c1: version=%d capable=%v acked=%v", ver, capable, acked)
	}
	v3, have, _ := parentDelta(c1)
	branch := c1.snap.Load().branchSummary
	if branch == nil || !v3 || have != branch.Version {
		t.Fatalf("c1 never learned the parent holds its branch: v3=%v have=%d branch=%+v", v3, have, branch)
	}

	supBefore := c1.mx.reportsSuppressed.Load()
	deltaBefore := root.mx.pushDelta.Load()
	repsBefore := root.mx.summaryReports.Load()
	if _, _, ok := replicaVersion(c1, "root"); !ok {
		t.Fatal("c1 holds no ancestor replica for root")
	}
	_, recvBefore, _ := replicaVersion(c1, "root")

	steadyStart := tr.Stats()
	driveRound(c1, c2, root)
	steadyEnd := tr.Stats()

	if got := c1.mx.reportsSuppressed.Load(); got != supBefore+1 {
		t.Fatalf("steady round suppressed %d reports on c1; want exactly 1", got-supBefore)
	}
	if got := root.mx.pushDelta.Load(); got <= deltaBefore {
		t.Fatal("steady round sent no version-only push entries")
	}
	if got := root.mx.summaryReports.Load(); got != repsBefore+2 {
		t.Fatalf("version-only reports must still count as reports: got %d new, want 2", got-repsBefore)
	}
	if _, recvAfter, _ := replicaVersion(c1, "root"); !recvAfter.After(recvBefore) {
		t.Fatal("version-only push did not renew the replica's soft-state TTL")
	}
	if got := root.BranchRecords(); got != 15 {
		t.Fatalf("root branch covers %d records after suppression; want 15", got)
	}

	fullBytes := (firstEnd.BytesSent - firstStart.BytesSent) + (firstEnd.BytesRecv - firstStart.BytesRecv)
	steadyBytes := (steadyEnd.BytesSent - steadyStart.BytesSent) + (steadyEnd.BytesRecv - steadyStart.BytesRecv)
	if steadyBytes*4 > fullBytes {
		t.Fatalf("steady-state round moved %d bytes vs %d for the first full round; want at least a 4x reduction", steadyBytes, fullBytes)
	}
}

// TestDeltaAntiEntropyRound pins the cadence: with AntiEntropyEvery=4, one
// round in four goes full-state on both the report and the push path even
// though every version matches, and the anti-entropy counter ticks.
func TestDeltaAntiEntropyRound(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	ae := func(c *Config) { c.AntiEntropyEvery = 4 }
	root := deltaServerCfg(t, tr, "root", schema, ae)
	c1 := deltaServerCfg(t, tr, "c1", schema, ae)
	c2 := deltaServerCfg(t, tr, "c2", schema, ae)
	attachDeltaOwner(t, root, schema, 4)
	attachDeltaOwner(t, c1, schema, 4)
	attachDeltaOwner(t, c2, schema, 4)
	if err := c1.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}
	// Converge (the handshake needs ~5 rounds; extra rounds are harmless).
	for i := 0; i < 8; i++ {
		driveRound(c1, c2, root)
	}
	if _, capable, _ := childDelta(root, "c1"); !capable {
		t.Fatal("handshake did not converge")
	}

	// All servers tick in lockstep (Start ran round 1 on each), so the next
	// four rounds contain exactly one anti-entropy round for every server.
	ae0 := c1.mx.antiEntropyRounds.Load()
	sup0 := c1.mx.reportsSuppressed.Load()
	full0 := root.mx.pushFull.Load()
	delta0 := root.mx.pushDelta.Load()
	for i := 0; i < 4; i++ {
		driveRound(c1, c2, root)
	}
	if got := c1.mx.antiEntropyRounds.Load() - ae0; got != 1 {
		t.Fatalf("4 rounds contained %d anti-entropy rounds; want 1", got)
	}
	if got := c1.mx.reportsSuppressed.Load() - sup0; got != 3 {
		t.Fatalf("c1 suppressed %d of 4 reports; want 3 (anti-entropy round goes full)", got)
	}
	// Root pushes 2 entries (sibling + ancestor) to each of 2 children per
	// round: the anti-entropy round sends all 4 full, the other 3 rounds
	// send all 4 version-only.
	if got := root.mx.pushFull.Load() - full0; got != 4 {
		t.Fatalf("anti-entropy window sent %d full push entries; want 4", got)
	}
	if got := root.mx.pushDelta.Load() - delta0; got != 12 {
		t.Fatalf("anti-entropy window sent %d version-only push entries; want 12", got)
	}
}

// TestDeltaNeedFullRecovery diverges both directions of the protocol on
// purpose and checks each recovers to full state within one round: a
// parent that lost track of the child's version NAKs the version-only
// report with NeedFull, and a child whose replica diverged NAKs the
// version-only push with NeedFullOrigins.
func TestDeltaNeedFullRecovery(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	root := deltaServer(t, tr, "root", schema, false)
	c1 := deltaServer(t, tr, "c1", schema, false)
	c2 := deltaServer(t, tr, "c2", schema, false)
	attachDeltaOwner(t, root, schema, 5)
	attachDeltaOwner(t, c1, schema, 5)
	attachDeltaOwner(t, c2, schema, 5)
	if err := c1.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		driveRound(c1, c2, root)
	}
	if sup := c1.mx.reportsSuppressed.Load(); sup == 0 {
		t.Fatal("setup never reached steady suppression")
	}

	// Report path: the parent's recorded version diverges. The child's next
	// version-only report must be NAKed, the retransmit goes full, and
	// suppression resumes after that.
	if !setChildVersion(root, "c1", 0xdead) {
		t.Fatal("root lost child c1")
	}
	c1.reportToParent() // version-only → NeedFull
	if _, _, needFull := parentDelta(c1); !needFull {
		t.Fatal("NeedFull ack did not reach the child")
	}
	c1.reportToParent() // full retransmit
	branch := c1.snap.Load().branchSummary
	if ver, _, _ := childDelta(root, "c1"); ver != branch.Version {
		t.Fatalf("full retransmit left the parent at version %d; want %d", ver, branch.Version)
	}
	if _, _, needFull := parentDelta(c1); needFull {
		t.Fatal("NeedFull flag survived the full retransmit")
	}
	sup := c1.mx.reportsSuppressed.Load()
	c1.reportToParent()
	if got := c1.mx.reportsSuppressed.Load(); got != sup+1 {
		t.Fatal("suppression did not resume after recovery")
	}

	// Push path: the child's held replica diverges. The parent's next
	// version-only entry is NAKed via NeedFullOrigins, the entry's acked
	// version is dropped, and the round after that ships full state.
	wantVer, _, ok := replicaVersion(c1, "root")
	if !ok || wantVer == 0 {
		t.Fatalf("c1 holds no versioned root replica (ver=%d ok=%v)", wantVer, ok)
	}
	if !setReplicaVersion(c1, "root", 0xdead) {
		t.Fatal("c1 lost the root replica")
	}
	root.pushReplicas() // version-only → NeedFullOrigins
	if _, _, acked := childDelta(root, "c1"); acked["root"] != 0 {
		t.Fatalf("NAKed origin still acked at version %d", acked["root"])
	}
	root.pushReplicas() // full retransmit
	if got, _, _ := replicaVersion(c1, "root"); got != wantVer {
		t.Fatalf("replica recovered to version %d; want %d", got, wantVer)
	}
	if _, _, acked := childDelta(root, "c1"); acked["root"] != wantVer {
		t.Fatalf("recovered origin re-acked at %d; want %d", acked["root"], wantVer)
	}
}

// TestDeltaMixedVersionInterop runs a pre-v3 stand-in (a server with
// DisableDeltaDissemination, which is byte-equivalent to a legacy peer) in
// both roles. A legacy child under a delta parent keeps its full-state
// protocol — unstamped reports, full unversioned pushes, plain acks —
// while a delta sibling negotiates deltas on the same parent; a delta
// child under a legacy parent never stamps or suppresses anything.
func TestDeltaMixedVersionInterop(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	root := deltaServer(t, tr, "root", schema, false)
	legacy := deltaServer(t, tr, "legacy", schema, true)
	dc := deltaServer(t, tr, "dc", schema, false)
	attachDeltaOwner(t, root, schema, 5)
	attachDeltaOwner(t, legacy, schema, 5)
	attachDeltaOwner(t, dc, schema, 5)
	if err := legacy.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := dc.Join(root.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		driveRound(legacy, dc, root)
	}

	// The legacy child stays on the v2 protocol end to end.
	if ver, capable, _ := childDelta(root, "legacy"); capable || ver != 0 {
		t.Fatalf("parent treats the legacy child as delta-capable (ver=%d capable=%v)", ver, capable)
	}
	if v3, _, _ := parentDelta(legacy); v3 {
		t.Fatal("legacy child believes its parent speaks v3")
	}
	if got := legacy.mx.reportsSuppressed.Load(); got != 0 {
		t.Fatalf("legacy child suppressed %d reports", got)
	}
	legacy.mu.Lock()
	for origin, r := range legacy.replicas {
		if r.version != 0 || r.branch == nil {
			legacy.mu.Unlock()
			t.Fatalf("legacy child received a v3-shaped push for %s (version=%d branch=%v)", origin, r.version, r.branch != nil)
		}
	}
	nreps := len(legacy.replicas)
	legacy.mu.Unlock()
	if nreps == 0 {
		t.Fatal("legacy child received no replicas at all")
	}
	// Its own wire output stays v2-encodable: every dissemination counter
	// is zero, so even a status reply fits the old codec.
	st := legacy.handle(&wire.Message{Kind: wire.KindStatus, From: "t"})
	data, err := wire.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if data[1] != 2 {
		t.Fatalf("legacy status reply encoded at wire version %d; want 2", data[1])
	}

	// The delta sibling negotiated deltas on the same parent meanwhile.
	if _, capable, _ := childDelta(root, "dc"); !capable {
		t.Fatal("delta sibling never negotiated capability")
	}
	if root.mx.pushDelta.Load() == 0 {
		t.Fatal("parent never sent the delta sibling version-only entries")
	}
	if got, _, _ := replicaVersion(dc, "root"); got == 0 {
		t.Fatal("delta sibling's ancestor replica is unversioned")
	}

	// The legacy child still serves complete answers.
	recs, _, err := NewClient(tr, "t").Resolve(legacy.Addr(), matchAllQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 15 {
		t.Fatalf("resolve via the legacy child returned %d records; want 15", len(recs))
	}

	// Reverse roles: a delta child under a legacy parent never stamps.
	droot := deltaServer(t, tr, "droot", schema, true)
	dchild := deltaServer(t, tr, "dchild", schema, false)
	attachDeltaOwner(t, droot, schema, 3)
	attachDeltaOwner(t, dchild, schema, 3)
	if err := dchild.Join(droot.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		driveRound(dchild, droot)
	}
	if v3, _, _ := parentDelta(dchild); v3 {
		t.Fatal("delta child under a legacy parent believes the parent speaks v3")
	}
	if got := dchild.mx.reportsSuppressed.Load(); got != 0 {
		t.Fatalf("delta child under a legacy parent suppressed %d reports", got)
	}
	if got := droot.mx.pushFull.Load() + droot.mx.pushDelta.Load() + droot.mx.antiEntropyRounds.Load(); got != 0 {
		t.Fatalf("disabled parent moved dissemination counters to %d; they must stay 0", got)
	}
	if got := droot.BranchRecords(); got != 6 {
		t.Fatalf("legacy parent's branch covers %d records; want 6", got)
	}
}

// TestDeltaRefreshSkipsUnchanged pins the incremental-refresh contract: a
// tick with no store mutation, no owner generation bump and no child change
// skips the rebuild entirely, and any of those changes un-skips it.
func TestDeltaRefreshSkipsUnchanged(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	srv := deltaServer(t, tr, "solo", schema, false)
	o := attachDeltaOwner(t, srv, schema, 10)

	srv.refreshSummaries() // absorbs the owner attached after Start
	srv.refreshSummaries() // sees no change
	if got := srv.mx.rebuildsSkipped.Load(); got != 1 {
		t.Fatalf("unchanged refresh skipped %d rebuilds; want 1", got)
	}
	v0 := srv.snap.Load().branchSummary.Version

	// Owner mutation un-skips: the generation moved.
	o.SetRecords(deltaRecords(schema, "own-solo", 11))
	srv.refreshSummaries()
	if got := srv.mx.rebuildsSkipped.Load(); got != 1 {
		t.Fatal("refresh after an owner mutation must rebuild")
	}
	if got := srv.BranchRecords(); got != 11 {
		t.Fatalf("rebuilt branch covers %d records; want 11", got)
	}
	if v := srv.snap.Load().branchSummary.Version; v == v0 {
		t.Fatal("content changed but the branch version did not")
	}

	// Back to steady state.
	srv.refreshSummaries()
	if got := srv.mx.rebuildsSkipped.Load(); got != 2 {
		t.Fatalf("second unchanged refresh skipped %d rebuilds total; want 2", got)
	}

	// Store mutation un-skips: the epoch moved.
	r := record.New(schema, "direct-1", "direct")
	r.SetNum(0, 0.5)
	r.SetNum(1, 0.5)
	srv.store.Add(r)
	srv.refreshSummaries()
	if got := srv.mx.rebuildsSkipped.Load(); got != 2 {
		t.Fatal("refresh after a store mutation must rebuild")
	}
	if got := srv.BranchRecords(); got != 12 {
		t.Fatalf("rebuilt branch covers %d records; want 12", got)
	}

	// The baseline pipeline never skips.
	full := deltaServer(t, tr, "full", schema, true)
	attachDeltaOwner(t, full, schema, 5)
	full.refreshSummaries()
	full.refreshSummaries()
	if got := full.mx.rebuildsSkipped.Load(); got != 0 {
		t.Fatalf("disabled pipeline skipped %d rebuilds; want 0", got)
	}
}

// TestDeltaStalenessAccounting pins the satellite fix: an owner whose
// export can never merge (mismatched schema arity) fails every tick and is
// recounted every tick, but the refresh still publishes everything else
// and advances the staleness clock — partial success is not staleness.
func TestDeltaStalenessAccounting(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	srv := deltaServer(t, tr, "stale", schema, false)
	attachDeltaOwner(t, srv, schema, 5)

	wrong := record.DefaultSchema(3) // arity mismatch: merge always fails
	bad := policy.NewOwner("own-bad", wrong, nil)
	bad.SetRecords(deltaRecords(wrong, "own-bad", 2))
	if err := srv.AttachOwner(bad); err != nil {
		t.Fatal(err)
	}

	srv.refreshSummaries()
	e1 := srv.mx.summaryErrors.Load()
	if e1 == 0 {
		t.Fatal("mismatched owner did not count a summary error")
	}
	lr1 := srv.lastRefresh.Load()
	if lr1 == 0 {
		t.Fatal("partial refresh did not advance the staleness clock")
	}
	if got := srv.BranchRecords(); got != 5 {
		t.Fatalf("partial refresh published %d records; want the 5 mergeable ones", got)
	}

	time.Sleep(2 * time.Millisecond)
	srv.refreshSummaries()
	if got := srv.mx.summaryErrors.Load(); got <= e1 {
		t.Fatal("persistently failing owner must be recounted every tick")
	}
	if got := srv.lastRefresh.Load(); got <= lr1 {
		t.Fatalf("staleness clock stuck at %d despite a completed partial refresh", lr1)
	}
	if !srv.summaryFailing.Load() {
		t.Fatal("failing flag must stay set while an owner keeps failing")
	}
}
