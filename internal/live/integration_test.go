package live

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"roads/internal/core"
	"roads/internal/netsim"
	"roads/internal/policy"
	"roads/internal/transport"
	"roads/internal/workload"
)

// TestSimulatorAndLiveAgree cross-validates the two implementations of the
// ROADS protocol: the deterministic simulator (internal/core) and the live
// goroutine/transport stack must return exactly the same record sets for
// the same workload and queries — both are complete, so both must equal
// the brute-force answer and hence each other.
func TestSimulatorAndLiveAgree(t *testing.T) {
	const n, recsPer = 10, 40
	rng := rand.New(rand.NewSource(77))
	w := workload.MustGenerate(workload.Config{Nodes: n, RecordsPerNode: recsPer, AttrsPerDist: 2}, rng)

	// Simulator deployment.
	sim := netsim.New(netsim.ConstLatency(5 * time.Millisecond))
	ccfg := core.DefaultConfig()
	ccfg.MaxChildren = 3
	ccfg.Summary.Buckets = 150
	simSys, err := core.NewSystem(w.Schema, ccfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%03d", i)
		if _, err := simSys.AddServer(id, i); err != nil {
			t.Fatal(err)
		}
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := simSys.AttachOwner(id, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := simSys.Aggregate(); err != nil {
		t.Fatal(err)
	}

	// Live deployment over the in-process transport.
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{N: n, Schema: w.Schema, MaxChildren: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for i := 0; i < n; i++ {
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := cl.AttachOwner(i, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.WaitConverged(uint64(n*recsPer), convergeTimeout); err != nil {
		t.Fatal(err)
	}
	client := NewClient(tr, "itest")

	queries, err := w.GenQueries(12, 3, 0.35, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		start := rng.Intn(n)

		simRes, err := simSys.ResolveAndRetrieve(q.Clone(), fmt.Sprintf("s%03d", start))
		if err != nil {
			t.Fatalf("query %d sim: %v", qi, err)
		}
		liveRecs, _, err := client.Resolve(cl.Servers[start].Addr(), q.Clone())
		if err != nil {
			t.Fatalf("query %d live: %v", qi, err)
		}

		simIDs := make([]string, 0, len(simRes.Records))
		for _, r := range simRes.Records {
			simIDs = append(simIDs, r.Owner+"/"+r.ID)
		}
		liveIDs := make([]string, 0, len(liveRecs))
		for _, r := range liveRecs {
			liveIDs = append(liveIDs, r.Owner+"/"+r.ID)
		}
		sort.Strings(simIDs)
		sort.Strings(liveIDs)

		if len(simIDs) != len(liveIDs) {
			t.Fatalf("query %d: simulator found %d records, live found %d", qi, len(simIDs), len(liveIDs))
		}
		for i := range simIDs {
			if simIDs[i] != liveIDs[i] {
				t.Fatalf("query %d: result sets diverge at %d: %s vs %s", qi, i, simIDs[i], liveIDs[i])
			}
		}
		// Both must equal brute force.
		want := 0
		for _, r := range w.AllRecords() {
			if q.MatchRecord(r) {
				want++
			}
		}
		if len(simIDs) != want {
			t.Fatalf("query %d: both found %d records but brute force says %d", qi, len(simIDs), want)
		}
	}
}
