//go:build race

package live

import "time"

func init() { convergeTimeout = 8 * time.Minute }
