package live

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/transport"
)

// quietTick is a tick long enough that aggregation/heartbeat loops never
// fire during a structure-only test.
const quietTick = time.Minute

// TestJoinDeeperThanLegacyHopCap is the regression test for the
// hard-coded 256-hop join cap: in a 280-deep chain (MaxChildren=1,
// explicit chain placement) a fresh server seeded at the root must
// descend through every chained server before finding capacity at the
// bottom — 280 hops, which the old fixed cap rejected with "no server
// accepted the join".
func TestJoinDeeperThanLegacyHopCap(t *testing.T) {
	const n = 280 // > the legacy 256-hop cap
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{
		N:           n,
		Schema:      record.DefaultSchema(2),
		MaxChildren: 1,
		JoinVia:     func(i int) int { return i - 1 }, // exact chain
		Tick:        quietTick,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	// First prove the topology genuinely needs more than the legacy cap:
	// a joiner pinned to exactly 256 hops (the old hard-coded limit) must
	// run out of budget mid-descent.
	lcfg := DefaultConfig("legacy-joiner", "legacy-joiner", cl.Schema)
	lcfg.MaxChildren = 1
	lcfg.AggregateEvery = quietTick
	lcfg.HeartbeatEvery = quietTick
	lcfg.JoinMaxHops = 256
	legacy, err := NewServer(lcfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Start(); err != nil {
		t.Fatal(err)
	}
	defer legacy.Stop()
	if err := legacy.Join(cl.Servers[0].Addr()); !errors.Is(err, ErrJoinHopsExhausted) {
		t.Fatalf("a 256-hop budget must exhaust in a %d-deep chain, got: %v", n, err)
	}

	scfg := DefaultConfig("deep-joiner", "deep-joiner", cl.Schema)
	scfg.MaxChildren = 1
	scfg.AggregateEvery = quietTick
	scfg.HeartbeatEvery = quietTick
	srv, err := NewServer(scfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := srv.Join(cl.Servers[0].Addr()); err != nil {
		t.Fatalf("join through a %d-deep chain must succeed, got: %v", n, err)
	}
	if got, want := srv.ParentID(), fmt.Sprintf("srv%03d", n-1); got != want {
		t.Fatalf("joiner attached under %q, want the chain tail %q", got, want)
	}
}

// TestJoinExplicitHopCapExhaustion pins the distinct error for a
// too-small explicit budget: the descent runs out of hops with servers
// still queued, which is ErrJoinHopsExhausted — not ErrJoinRefused.
func TestJoinExplicitHopCapExhaustion(t *testing.T) {
	const n = 12
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{
		N:           n,
		Schema:      record.DefaultSchema(2),
		MaxChildren: 1,
		JoinVia:     func(i int) int { return i - 1 },
		Tick:        quietTick,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	scfg := DefaultConfig("capped-joiner", "capped-joiner", cl.Schema)
	scfg.MaxChildren = 1
	scfg.AggregateEvery = quietTick
	scfg.HeartbeatEvery = quietTick
	scfg.JoinMaxHops = 4
	srv, err := NewServer(scfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	err = srv.Join(cl.Servers[0].Addr())
	if !errors.Is(err, ErrJoinHopsExhausted) {
		t.Fatalf("want ErrJoinHopsExhausted from a 4-hop budget in a %d-chain, got: %v", n, err)
	}
	if errors.Is(err, ErrJoinRefused) {
		t.Fatalf("hop exhaustion must not also read as refusal: %v", err)
	}
}

// TestJoinAllRefusedDistinctError pins the other side of the taxonomy: a
// descent whose frontier drains with every candidate refusing reports
// ErrJoinRefused. The root joining under its own descendant trips loop
// avoidance at every server it can reach.
func TestJoinAllRefusedDistinctError(t *testing.T) {
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{
		N:           3,
		Schema:      record.DefaultSchema(2),
		MaxChildren: 1,
		JoinVia:     func(i int) int { return i - 1 },
		Tick:        25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	// Wait until the tail knows the root is its ancestor (root paths ride
	// on heartbeats); before that the refusal wouldn't trigger.
	tail := cl.Servers[2]
	rootID := cl.Servers[0].ID()
	deadline := time.Now().Add(10 * time.Second)
	for {
		path := tail.RootPath()
		if len(path) > 0 && path[0] == rootID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tail never learned its root path: %v", path)
		}
		time.Sleep(10 * time.Millisecond)
	}

	err = cl.Servers[0].Join(tail.Addr())
	if !errors.Is(err, ErrJoinRefused) {
		t.Fatalf("want ErrJoinRefused when every candidate trips loop avoidance, got: %v", err)
	}
	if errors.Is(err, ErrJoinHopsExhausted) {
		t.Fatalf("refusal must not also read as hop exhaustion: %v", err)
	}
}

// TestWaitConvergedReportsOvershoot verifies overshoot is a distinct,
// fast-failing convergence verdict: when every server covers more than
// the target for longer than the replica TTL, WaitConverged must return
// an overshoot error with per-server detail well before the timeout
// (undershoot, by contrast, waits out the full timeout).
func TestWaitConvergedReportsOvershoot(t *testing.T) {
	tr := transport.NewChan()
	cl, err := StartCluster(tr, ClusterConfig{
		N:               3,
		Schema:          record.DefaultSchema(2),
		Tick:            25 * time.Millisecond,
		ReplicaTTLFloor: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	owner := policy.NewOwner("ov-owner", cl.Schema, nil)
	recs := make([]*record.Record, 10)
	for i := range recs {
		r := record.New(cl.Schema, fmt.Sprintf("r%d", i), "ov-owner")
		r.SetNum(0, float64(i)/10)
		recs[i] = r
	}
	owner.SetRecords(recs)
	if err := cl.AttachOwner(1, owner); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitConverged(10, 90*time.Second); err != nil {
		t.Fatal(err)
	}

	// Ask for fewer records than the federation holds: every server now
	// "overshoots" and can never heal, so the distinct verdict must come
	// back after the grace period, far inside the timeout.
	start := time.Now()
	err = cl.WaitConverged(5, 90*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("overshoot must not report convergence")
	}
	if !strings.Contains(err.Error(), "overshot") {
		t.Fatalf("want a distinct overshoot verdict, got: %v", err)
	}
	if !strings.Contains(err.Error(), "+5") {
		t.Fatalf("overshoot error must carry per-server detail, got: %v", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("overshoot verdict took %v; must fail fast, not burn the timeout", elapsed)
	}

	// Undershoot stays a timeout-bounded wait with its own phrasing.
	err = cl.WaitConverged(99, 500*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("undershoot must time out as non-convergence, got: %v", err)
	}
	if !strings.Contains(err.Error(), "under:") {
		t.Fatalf("undershoot error must carry per-server detail, got: %v", err)
	}
}
