package live

import (
	"container/list"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roads/internal/query"
	"roads/internal/wire"
)

// DefaultResultCacheBytes is the result-cache byte budget applied when
// Config.ResultCacheBytes is zero.
const DefaultResultCacheBytes = 4 << 20

// resultCacheMaxEntryFrac caps a single entry at this fraction of the byte
// budget — one enormous answer must not evict the whole working set.
const resultCacheMaxEntryFrac = 4

// cacheDep is one routing dependency of a cached reply: the dep hash the
// snapshot computed for a child or replica, plus whether the entry's query
// matched it (matched targets contributed a redirect; unmatched ones
// contributed their absence).
type cacheDep struct {
	id      string
	dep     uint64
	matched bool
	// inScope is false for replica deps the query's scope filtered out
	// entirely — their content can change freely without touching the
	// answer.
	inScope bool
}

// cacheEntry is one cached query reply plus everything needed to prove it
// is still exactly what a fresh evaluation would produce.
type cacheEntry struct {
	key   string
	reply *wire.QueryReply // shared, never mutated; hits shallow-copy
	size  int64

	// Local dependencies, revalidated against live state on every hit:
	// the server store's epoch and each summary-mode owner's record-set
	// generation and policy view revision (pointer identity pins the
	// owner set itself).
	storeEpoch uint64
	ownerDeps  []ownerDep

	// Routing dependencies, revalidated in lockstep against the current
	// snapshot's sorted children/replicas.
	children []cacheDep
	replicas []cacheDep
	start    bool
	scope    int

	insertedAt time.Time
	hits       uint64
}

// ownerDep versions one attached owner's contribution to a reply.
type ownerDep struct {
	gen uint64
	rev uint64
}

// resultCache is the server-side query result cache (ROADMAP item 4): a
// byte-bounded LRU of complete query replies keyed by (normalized
// predicates, requester, scope, start), each entry carrying the exact
// version set it was computed from. Lookups revalidate every dependency —
// store epoch, owner generations and view revisions, and the per-branch dep
// hashes the routing snapshot stamps — so a hit is byte-identical to a
// fresh evaluation by construction, and a churned branch kills precisely
// the entries whose answers it could have changed while every other entry
// survives.
type resultCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	lru     *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// newResultCache sizes the cache from Config.ResultCacheBytes (zero =
// DefaultResultCacheBytes, negative = disabled → nil).
func newResultCache(budget int64) *resultCache {
	if budget < 0 {
		return nil
	}
	if budget == 0 {
		budget = DefaultResultCacheBytes
	}
	return &resultCache{
		max:     budget,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// cacheKey normalizes a query into its cache identity: the requester (owner
// views differ per requester), scope and start flag, and the predicate set
// sorted into canonical order so textually reordered conjunctions share one
// entry. The query ID is deliberately excluded — replies do not echo it.
func cacheKey(requester string, scope int, start bool, preds []query.Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	n := len(requester) + 16
	for _, p := range parts {
		n += len(p) + 1
	}
	b := make([]byte, 0, n)
	b = append(b, requester...)
	b = append(b, 0x1f)
	b = strconv.AppendInt(b, int64(scope), 10)
	if start {
		b = append(b, '+')
	}
	for _, p := range parts {
		b = append(b, 0x1f)
		b = append(b, p...)
	}
	return string(b)
}

// replySize estimates a reply's resident bytes for the LRU budget.
func replySize(key string, rep *wire.QueryReply) int64 {
	size := int64(len(key)) + 256 // entry struct, map slot, list element
	for _, r := range rep.Records {
		size += int64(len(r.ID) + len(r.Owner) + 48)
		for _, v := range r.Values {
			size += int64(len(v.Str)) + 16
		}
	}
	var redirects func(rds []wire.RedirectInfo)
	redirects = func(rds []wire.RedirectInfo) {
		for _, rd := range rds {
			size += int64(len(rd.ID) + len(rd.Addr) + 48)
			redirects(rd.Alternates)
		}
	}
	redirects(rep.Redirects)
	return size
}

// lookup returns the cached reply for the key if every dependency still
// holds, updating the entry's recency and hit count. The bound query q is
// needed to re-test deps whose hash moved but whose target the entry never
// matched: a branch that changed while still not matching the query leaves
// the answer untouched, so the entry survives with the dep refreshed — this
// is what keeps invalidation exact instead of key-wide.
func (rc *resultCache) lookup(s *Server, snap *routingSnapshot, key string, q *query.Query) (*wire.QueryReply, time.Duration, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.entries[key]
	if !ok {
		rc.misses.Add(1)
		return nil, 0, false
	}
	e := el.Value.(*cacheEntry)
	if !rc.validLocked(s, snap, e, q) {
		rc.removeLocked(el)
		rc.invalidations.Add(1)
		rc.misses.Add(1)
		return nil, 0, false
	}
	rc.lru.MoveToFront(el)
	e.hits++
	rc.hits.Add(1)
	return e.reply, time.Since(e.insertedAt), true
}

// validLocked proves the entry current against live local state and the
// routing snapshot.
func (rc *resultCache) validLocked(s *Server, snap *routingSnapshot, e *cacheEntry, q *query.Query) bool {
	if s.store.Epoch() != e.storeEpoch {
		return false
	}
	if len(snap.owners) != len(e.ownerDeps) {
		return false
	}
	for i, o := range snap.owners {
		if o.Generation() != e.ownerDeps[i].gen || o.Policy.Rev() != e.ownerDeps[i].rev {
			return false
		}
	}
	if len(snap.children) != len(e.children) {
		return false
	}
	for i := range snap.children {
		c := &snap.children[i]
		d := &e.children[i]
		if c.ri.ID != d.id {
			return false
		}
		if c.dep == d.dep {
			continue
		}
		// The branch changed. A previously matched branch shaped the
		// answer (redirect estimate, alternates), so the entry dies; a
		// previously unmatched one only matters if it matches now.
		if d.matched || c.branch == nil || q.MatchSummary(c.branch) {
			return false
		}
		d.dep = c.dep
	}
	if !e.start {
		return true // replicas never entered the evaluation
	}
	if len(snap.replicas) != len(e.replicas) {
		return false
	}
	for i := range snap.replicas {
		r := &snap.replicas[i]
		d := &e.replicas[i]
		if r.ri.ID != d.id {
			return false
		}
		if r.dep == d.dep {
			continue
		}
		if !d.inScope {
			// Scope filtering excluded this replica outright; its churn
			// cannot reach the answer.
			d.dep = r.dep
			continue
		}
		if d.matched || q.MatchSummary(r.match) {
			return false
		}
		d.dep = r.dep
	}
	return true
}

// insert caches a freshly evaluated reply with its dependency set. Entries
// with any unversioned dependency (dep 0: a pre-v3 child or an unversioned
// replica) are refused — without a version there is no precise invalidation
// signal, and correctness beats hit rate.
func (rc *resultCache) insert(e *cacheEntry) {
	for _, d := range e.children {
		if d.dep == 0 {
			return
		}
	}
	if e.start {
		for _, d := range e.replicas {
			if d.dep == 0 {
				return
			}
		}
	}
	if e.size > rc.max/resultCacheMaxEntryFrac {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[e.key]; ok {
		rc.removeLocked(el)
	}
	rc.entries[e.key] = rc.lru.PushFront(e)
	rc.bytes += e.size
	for rc.bytes > rc.max {
		back := rc.lru.Back()
		if back == nil {
			break
		}
		rc.removeLocked(back)
		rc.evictions.Add(1)
	}
}

// removeLocked drops one entry from the map, list and byte accounting.
func (rc *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	delete(rc.entries, e.key)
	rc.lru.Remove(el)
	rc.bytes -= e.size
}

// info returns the cache's current occupancy under the lock.
func (rc *resultCache) info() (entries int, bytes int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries), rc.bytes
}

// CacheInfo is the result cache's observable state, mirroring the
// roads_cache_* series for harness and test consumption.
type CacheInfo struct {
	Enabled       bool
	Entries       int
	Bytes         int64
	BudgetBytes   int64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
}

// CacheInfo reports the server's result-cache state (zero with the cache
// disabled).
func (s *Server) CacheInfo() CacheInfo {
	rc := s.resultCache
	if rc == nil {
		return CacheInfo{}
	}
	entries, bytes := rc.info()
	return CacheInfo{
		Enabled:       true,
		Entries:       entries,
		Bytes:         bytes,
		BudgetBytes:   rc.max,
		Hits:          rc.hits.Load(),
		Misses:        rc.misses.Load(),
		Evictions:     rc.evictions.Load(),
		Invalidations: rc.invalidations.Load(),
	}
}

// depHash folds one routing-relevant field sequence into a dep hash. Dep
// hashes start from the target's content version: version 0 (a pre-v3 peer
// or an unversioned summary) yields dep 0, which marks the target
// uncacheable rather than pretending staleness is detectable.
type depHasher struct{ h uint64 }

func newDepHasher() depHasher { return depHasher{h: 14695981039346656037} } // FNV-64a offset

func (d *depHasher) str(s string) {
	for i := 0; i < len(s); i++ {
		d.h = (d.h ^ uint64(s[i])) * 1099511628211
	}
	d.h = (d.h ^ 0xff) * 1099511628211 // terminator: "ab","c" ≠ "a","bc"
}

func (d *depHasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h = (d.h ^ (v & 0xff)) * 1099511628211
		v >>= 8
	}
}

func (d *depHasher) redirects(rds []wire.RedirectInfo) {
	d.u64(uint64(len(rds)))
	for _, rd := range rds {
		d.str(rd.ID)
		d.str(rd.Addr)
		d.u64(rd.Records)
		d.redirects(rd.Alternates)
	}
}

// queryFingerprint derives the wire-v5 reply fingerprint for the snapshot:
// the snapshot's routing dep base folded with the live store epoch and
// owner generations/view revisions. Zero (no fingerprint, "don't cache")
// when any routing dependency is unversioned.
func (s *Server) queryFingerprint(snap *routingSnapshot) uint64 {
	if snap.fpBase == 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	put(snap.fpBase)
	put(s.store.Epoch())
	put(uint64(len(snap.owners)))
	for _, o := range snap.owners {
		put(o.Generation())
		put(o.Policy.Rev())
	}
	fp := h.Sum64()
	if fp == 0 {
		fp = 1 // zero is reserved for "unavailable"
	}
	return fp
}

// coarseReply builds the wire-v5 degraded answer admission control and
// budget shedding return instead of an error: no records or redirects, just
// the summary-derived match estimate for the whole branch.
func (s *Server) coarseReply(snap *routingSnapshot, q *query.Query) *wire.QueryReply {
	rep := &wire.QueryReply{Coarse: true}
	if snap.branchSummary != nil {
		est := q.EstimateMatches(snap.branchSummary)
		if !math.IsNaN(est) && !math.IsInf(est, 0) {
			rep.CoarseEstimate = est
		}
	}
	return rep
}
