package live

import (
	"strings"
	"sync"
	"testing"
	"time"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// TestKillStopConcurrent hammers Kill and Stop from many goroutines at
// once. The seed code checked started under the lock but closed s.stop
// after releasing it, so a concurrent Kill+Stop (or a crash test's Kill
// racing a deferred Stop) panicked with "close of closed channel".
func TestKillStopConcurrent(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	srv, err := NewServer(DefaultConfig("solo", "solo-addr", schema), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			srv.Kill()
		}()
		go func() {
			defer wg.Done()
			srv.Stop()
		}()
	}
	wg.Wait()
	srv.Stop() // and once more after everything settled
}

// TestRejoinPreservesChildState re-sends a Join from an already-known
// child carrying a deep subtree. The seed code rebuilt the child's state
// with depth 1 and zero descendants, clobbering the subtree shape until
// the next summary report and skewing join-placement decisions.
func TestRejoinPreservesChildState(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	mk := func(id string) *Server {
		cfg := DefaultConfig(id, id+"-addr", schema)
		// Park the background loops so reports only flow when the test
		// sends them.
		cfg.AggregateEvery = time.Hour
		cfg.HeartbeatEvery = time.Hour
		srv, err := NewServer(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Stop)
		return srv
	}
	a, b, c := mk("A"), mk("B"), mk("C")
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(b.Addr()); err != nil {
		t.Fatal(err)
	}
	// B now knows about C; report B's two-level subtree up to A.
	b.refreshSummaries()
	b.reportToParent()

	childShape := func() (depth, desc int) {
		a.mu.Lock()
		defer a.mu.Unlock()
		cs := a.children["B"]
		if cs == nil {
			t.Fatal("A lost child B")
		}
		return cs.depth, cs.descendants
	}
	if depth, desc := childShape(); depth != 2 || desc != 1 {
		t.Fatalf("precondition: A sees B as depth=%d desc=%d; want 2/1", depth, desc)
	}

	// B joins again (e.g. a rejoin after a transient parent miss), as a
	// raw message so no summary report races the check.
	rep, err := tr.Call(a.Addr(), &wire.Message{
		Kind: wire.KindJoin,
		From: "B",
		Addr: b.Addr(),
		Join: &wire.Join{ID: "B", Addr: b.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JoinReply == nil || !rep.JoinReply.Accepted {
		t.Fatalf("re-join not accepted: %+v", rep)
	}
	if depth, desc := childShape(); depth != 2 || desc != 1 {
		t.Fatalf("re-join clobbered child state: depth=%d desc=%d; want 2/1 preserved", depth, desc)
	}
}

// TestResolvePartialFailure kills one server mid-cluster and checks the
// client reports the failed contact instead of presenting partial coverage
// as a complete result. The seed code recorded only the first error and
// dropped it entirely once any server had answered.
func TestResolvePartialFailure(t *testing.T) {
	cl, _ := startWorkloadCluster(t, 5, 10, 73)
	var victim *Server
	for _, srv := range cl.Servers {
		if !srv.IsRoot() {
			victim = srv
			break
		}
	}
	if victim == nil {
		t.Fatal("no non-root server")
	}
	victim.Kill()

	client := NewClient(cl.Tr, "tester")
	q := query.New("broad", query.NewRange("a0", 0, 1))
	start := cl.Root()
	if start == nil || start == victim {
		start = cl.Servers[0]
	}
	recs, stats, err := client.Resolve(start.Addr(), q)
	if err != nil {
		t.Fatalf("partial coverage must not be a hard error: %v", err)
	}
	if stats.Contacted == 0 || len(recs) == 0 {
		t.Fatalf("surviving servers must still answer (contacted %d, %d records)", stats.Contacted, len(recs))
	}
	if stats.Failed == 0 {
		t.Fatalf("killed server %s must be reported in QueryStats.Failed (stats %+v)", victim.ID(), stats)
	}
	if len(stats.Errors) != stats.Failed {
		t.Fatalf("Errors has %d entries for %d failures", len(stats.Errors), stats.Failed)
	}
	found := false
	for _, e := range stats.Errors {
		if strings.Contains(e, victim.Addr()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error names the dead server %s: %v", victim.Addr(), stats.Errors)
	}
}

// TestReplicaBatchAtomic feeds a server one good batch, then a batch with
// a corrupt push: the good batch must apply in full, the corrupt one must
// be rejected without partial application.
func TestReplicaBatchAtomic(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	cfg := DefaultConfig("dst", "dst-addr", schema)
	cfg.AggregateEvery = time.Hour
	cfg.HeartbeatEvery = time.Hour
	srv, err := NewServer(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	srv.refreshSummaries()
	srv.mu.Lock()
	sum := wire.FromSummary(srv.localSummary)
	srv.mu.Unlock()

	good := &wire.Message{
		Kind: wire.KindReplicaBatch,
		From: "parent",
		Batch: &wire.ReplicaBatch{Pushes: []*wire.ReplicaPush{
			{OriginID: "sib1", OriginAddr: "sib1-addr", Branch: sum, Level: 1},
			{OriginID: "anc1", OriginAddr: "anc1-addr", Branch: sum, Local: sum, Ancestor: true, Level: 2},
		}},
	}
	rep, err := tr.Call(srv.Addr(), good)
	if err != nil || wire.RemoteError(rep) != nil {
		t.Fatalf("good batch rejected: %v / %v", err, wire.RemoteError(rep))
	}
	if n := srv.NumReplicas(); n != 2 {
		t.Fatalf("batch applied %d replicas; want 2", n)
	}

	corrupt := *sum
	corrupt.Hists = []wire.HistDTO{{Attr: 99, Counts: make([]uint32, corrupt.Buckets)}}
	bad := &wire.Message{
		Kind: wire.KindReplicaBatch,
		From: "parent",
		Batch: &wire.ReplicaBatch{Pushes: []*wire.ReplicaPush{
			{OriginID: "sib2", OriginAddr: "sib2-addr", Branch: sum, Level: 1},
			{OriginID: "sib3", OriginAddr: "sib3-addr", Branch: &corrupt, Level: 1},
		}},
	}
	rep, err = tr.Call(srv.Addr(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if wire.RemoteError(rep) == nil {
		t.Fatal("corrupt batch must be rejected")
	}
	srv.mu.Lock()
	_, partial := srv.replicas["sib2"]
	srv.mu.Unlock()
	if partial {
		t.Fatal("rejected batch must not be applied partially")
	}
}

// TestStatusSurfacesTransportCounters checks a Status round trip carries
// the transport's counters for monitoring tools.
func TestStatusSurfacesTransportCounters(t *testing.T) {
	cl, _ := startWorkloadCluster(t, 3, 5, 74)
	client := NewClient(cl.Tr, "monitor")
	st, err := client.Status(cl.Servers[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Transport == nil {
		t.Fatal("status must carry transport counters")
	}
	if st.Transport.Calls == 0 || st.Transport.BytesSent == 0 {
		t.Fatalf("transport counters empty: %+v", st.Transport)
	}
}
