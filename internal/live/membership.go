package live

// The epoch-fenced membership layer: every structural tree mutation (join,
// adoption, rejoin, root election, tree merge) runs as a single-flight
// transaction (txKind) stamped with a monotonically increasing membership
// epoch that travels on the wire (codec v4, see internal/wire/binary.go).
// Epochs fence stale mutations — a heartbeat, report or re-join carrying
// an epoch lower than the one recorded for that relationship is rejected —
// so a healed partition cannot resurrect a dead parent/child edge. On top
// of the fence sits split-brain detection: roots periodically probe their
// remembered ancestry and the configured merge seeds; when two live roots
// discover each other the higher-epoch root (tie: smaller ID) wins and the
// loser joins it, folding its whole tree back as a subtree. Summaries then
// re-aggregate through the ordinary change-driven pipeline.
//
// Like the v3 delta negotiation, epoch stamping is capability-gated so
// pre-epoch peers never see a v4 payload they must act on: a child proves
// it decodes v4 by stamping its replica-batch ack (batch-ack contents are
// ignored by senders that cannot decode them, so stamping there is always
// safe); the parent then stamps its pushes and replies, which is the
// child's proof; only proven peers receive stamped requests. Root probes
// are the exception — they are always stamped, and a pre-epoch receiver
// answers them with its generic unhandled-kind error, which probers treat
// as "not epoch-capable".

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"roads/internal/wire"
)

// txKind names the structural mutation a server currently has in flight.
// Structural mutations are single-flight: planRejoinLocked, executeMerge
// and Join-driven adoption all check tx == txNone first, so two recoveries
// (or a recovery and a merge) can never interleave their parent rewrites.
type txKind int

const (
	// txNone: no structural mutation in flight.
	txNone txKind = iota
	// txRecovery: a parent loss is being recovered (ancestor rejoin or
	// root election), see executeRecovery.
	txRecovery
	// txMerge: this (losing) root is joining a winning foreign root.
	txMerge
)

// knownServerCap bounds the ancestry memory: the id→addr map of every
// server ever observed on our root path or sibling set, which seeds the
// split-brain probe candidates. 512 covers any realistic ancestry set;
// when full, new entries are dropped rather than evicted (the merge seeds
// in Config remain as the probe floor).
const knownServerCap = 512

// recoveryEscalateRounds is how many all-ancestors-unreachable rounds an
// orphan whose dead parent was NOT the root waits before escalating to a
// sibling election: the true root may be briefly unreachable, and electing
// over a live root splits the tree (the merge protocol would heal it, but
// not for free).
const recoveryEscalateRounds = 2

// recoveryClaimRounds is how many failed election rounds a losing sibling
// tolerates before claiming the root role itself. Reaching it means the
// winner and every smaller-ID sibling stayed unreachable through the
// backoff schedule; claiming beats dangling forever, and a wrong claim is
// folded back by the merge protocol once connectivity returns.
const recoveryClaimRounds = 4

// epochEnabled reports whether the membership-epoch protocol is active.
func (s *Server) epochEnabled() bool { return !s.cfg.DisableMembershipEpoch }

// Epoch returns the server's current membership epoch (1 at startup; 0
// never appears — a zero on the wire means "not stamped").
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// observeEpoch raises the server's own epoch to e. Epochs only ever move
// forward: the whole federation converges to the maximum it has seen, so
// any message stamped from before the latest recovery is recognizably
// stale everywhere.
func (s *Server) observeEpoch(e uint64) {
	if e == 0 || !s.epochEnabled() {
		return
	}
	for {
		cur := s.epoch.Load()
		if e <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// advanceRelEpochLocked raises a recorded relationship epoch (a child's
// or the parent's) to e. A lower e is refused and counted as an epoch
// regression — the fence checks run before any call to this, so the
// counter staying zero is the protocol invariant the loadgen partition
// runs assert. Callers hold s.mu.
func (s *Server) advanceRelEpochLocked(cur *uint64, e uint64) bool {
	if e == 0 {
		return true
	}
	if e < *cur {
		s.mx.epochRegressions.Inc()
		return false
	}
	*cur = e
	return true
}

// stampEpoch stamps the outgoing message with the server's epoch. Only
// call it when the receiver is proven epoch-capable, or on payloads the
// receiver is free to ignore (batch acks, root probes): a nonzero Epoch
// forces wire v4, which a pre-epoch peer cannot decode.
func (s *Server) stampEpoch(m *wire.Message) *wire.Message {
	if s.epochEnabled() {
		m.Epoch = s.epoch.Load()
	}
	return m
}

// endTx clears the in-flight transaction if it is still k (a shutdown or
// a competing path may have superseded it).
func (s *Server) endTx(k txKind) {
	s.mu.Lock()
	if s.tx == k {
		s.tx = txNone
	}
	s.mu.Unlock()
}

// goTracked runs fn on a waitgroup-tracked goroutine, refusing (false)
// when the server has stopped. The Add happens under s.mu — the same lock
// shutdown flips started under — so the goroutine can never Add after
// shutdown's Wait began.
func (s *Server) goTracked(fn func()) bool {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return false
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		fn()
	}()
	return true
}

// sleepInterruptible sleeps for d or until the server stops; it reports
// whether the full sleep elapsed (false = stopping, abandon the work).
func (s *Server) sleepInterruptible(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.stop:
		return false
	case <-t.C:
		return true
	}
}

// rememberLocked records one server in the ancestry memory that seeds
// split-brain probes. Callers hold s.mu.
func (s *Server) rememberLocked(id, addr string) {
	if id == "" || addr == "" || id == s.cfg.ID {
		return
	}
	if _, ok := s.knownServers[id]; !ok && len(s.knownServers) >= knownServerCap {
		return
	}
	s.knownServers[id] = addr
}

// rememberPathLocked records the current root path and sibling set —
// called whenever a heartbeat reply refreshes them, so the pre-partition
// ancestry survives in memory after the partition cuts it off.
func (s *Server) rememberPathLocked() {
	for i, id := range s.rootPath {
		if i < len(s.rootPathAddrs) {
			s.rememberLocked(id, s.rootPathAddrs[i])
		}
	}
	for _, sib := range s.siblingsOfMe {
		s.rememberLocked(sib.ID, sib.Addr)
	}
}

// probeCandidatesLocked lists the addresses a root should probe for
// foreign roots: the configured merge seeds first, then the remembered
// ancestry (sorted for determinism). Callers hold s.mu.
func (s *Server) probeCandidatesLocked() []string {
	seen := map[string]bool{s.cfg.Addr: true}
	out := make([]string, 0, len(s.cfg.MergeSeeds)+len(s.knownServers))
	for _, addr := range s.cfg.MergeSeeds {
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	ids := make([]string, 0, len(s.knownServers))
	for id := range s.knownServers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if addr := s.knownServers[id]; !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	return out
}

// otherWins decides a root merge: the higher epoch wins; on a tie the
// smaller ID does. Both roots evaluate the same deterministic order, so
// they cannot both decide to join the other.
func otherWins(otherEpoch uint64, otherID string, ourEpoch uint64, ourID string) bool {
	if otherEpoch != ourEpoch {
		return otherEpoch > ourEpoch
	}
	return otherID < ourID
}

// probesPerTick bounds how many candidates one membership tick probes, so
// a root with a long ancestry memory spreads its probing over several
// ticks instead of bursting.
const probesPerTick = 3

// membershipLoop is the split-brain detection loop: while this server is
// a root with no transaction in flight, it probes merge-seed and
// remembered-ancestry addresses for foreign roots, and executes the merge
// when a probe (sent or received — handleRootProbe records the pending
// address) found a root that beats us.
func (s *Server) membershipLoop() {
	defer s.wg.Done()
	rng := loopRng(s.cfg.ID, 0x3c7e)
	timer := time.NewTimer(jittered(s.cfg.mergeProbeEvery(), rng))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			s.membershipTick(rng)
			timer.Reset(jittered(s.cfg.mergeProbeEvery(), rng))
		}
	}
}

// membershipTick runs one round of split-brain detection: first consume a
// pending merge decision (recorded by handleRootProbe, which must not
// make outgoing calls itself), then — if still a live idle root — probe a
// rotating bounded subset of the candidate addresses.
func (s *Server) membershipTick(rng *rand.Rand) {
	s.mu.Lock()
	merge := s.pendingMergeAddr
	s.pendingMergeAddr = ""
	isIdleRoot := s.parentAddr == "" && s.tx == txNone
	var candidates []string
	if isIdleRoot && merge == "" {
		candidates = s.probeCandidatesLocked()
	}
	s.mu.Unlock()
	if merge != "" {
		s.executeMerge(merge)
		return
	}
	if !isIdleRoot || len(candidates) == 0 {
		return
	}
	if len(candidates) > probesPerTick {
		off := rng.Intn(len(candidates))
		rot := append(append([]string(nil), candidates[off:]...), candidates[:off]...)
		candidates = rot[:probesPerTick]
	}
	for _, addr := range candidates {
		s.probeRoot(addr, true)
	}
}

// probeMessage builds the (always-stamped) root probe announcing us.
func (s *Server) probeMessage() *wire.Message {
	return s.stampEpoch(&wire.Message{
		Kind:      wire.KindRootProbe,
		From:      s.cfg.ID,
		Addr:      s.cfg.Addr,
		RootProbe: &wire.RootProbe{RootID: s.cfg.ID, RootAddr: s.cfg.Addr},
	})
}

// probeRoot asks addr which root it follows. When the reply names a
// foreign root that beats us, the merge is recorded for the next tick;
// when it names one we beat, that root is probed directly (chase, one
// level deep) so the loser learns about us and folds itself in — its own
// handler records the pending merge.
func (s *Server) probeRoot(addr string, chase bool) {
	if addr == "" || addr == s.cfg.Addr {
		return
	}
	s.mx.probes.Inc()
	rep, err := s.tr.Call(addr, s.probeMessage())
	if err != nil || rep == nil || wire.RemoteError(rep) != nil || rep.RootProbe == nil {
		return // unreachable or pre-epoch peer: nothing to learn
	}
	s.observeEpoch(rep.Epoch)
	other := rep.RootProbe
	s.mu.Lock()
	s.rememberLocked(rep.From, rep.Addr)
	s.rememberLocked(other.RootID, other.RootAddr)
	stillIdleRoot := s.parentAddr == "" && s.tx == txNone
	if stillIdleRoot && other.RootID != s.cfg.ID &&
		otherWins(rep.Epoch, other.RootID, s.epoch.Load(), s.cfg.ID) &&
		s.pendingMergeAddr == "" {
		s.pendingMergeAddr = other.RootAddr
	}
	s.mu.Unlock()
	if !stillIdleRoot || other.RootID == s.cfg.ID {
		return
	}
	if chase && other.RootAddr != addr &&
		!otherWins(rep.Epoch, other.RootID, s.epoch.Load(), s.cfg.ID) {
		s.probeRoot(other.RootAddr, false)
	}
}

// executeMerge folds this (losing) root's tree under the winning root at
// addr: re-verify the decision with a fresh probe — the winner may have
// merged elsewhere, died, or been overtaken since the decision was
// recorded — then join it. The join is epoch-stamped (the target proved
// v4 by answering probes), so the winner fences it like any relationship
// message and the loser adopts the winner's epoch from the reply.
func (s *Server) executeMerge(addr string) {
	s.mu.Lock()
	if s.tx != txNone || s.parentAddr != "" || !s.started {
		s.mu.Unlock()
		return
	}
	s.tx = txMerge
	s.mu.Unlock()
	defer s.endTx(txMerge)

	rep, err := s.tr.Call(addr, s.probeMessage())
	if err != nil || rep == nil || wire.RemoteError(rep) != nil || rep.RootProbe == nil {
		return
	}
	s.observeEpoch(rep.Epoch)
	other := rep.RootProbe
	if other.RootID == s.cfg.ID ||
		!otherWins(rep.Epoch, other.RootID, s.epoch.Load(), s.cfg.ID) {
		return // stale decision: we win now (or the split already healed)
	}
	if err := s.join(other.RootAddr, true); err != nil {
		return // winner unreachable or full everywhere; a later tick retries
	}
	s.mx.merges.Inc()
}

// --- Recovery (parent loss) ---

// spawnRecovery runs executeRecovery on a tracked goroutine; if the
// server is already stopping, the transaction is released so nothing
// stays wedged.
func (s *Server) spawnRecovery(p *rejoinPlan) {
	if !s.goTracked(func() { s.executeRecovery(p) }) {
		s.endTx(txRecovery)
	}
}

// recoveryBackoff is the inter-round backoff of the standing recovery
// loop: one heartbeat period per elapsed round, capped at four — enough
// for a briefly-slow ancestor to answer, without turning a long outage
// into minutes between attempts.
func (s *Server) recoveryBackoff(round int) time.Duration {
	n := round
	if n > 4 {
		n = 4
	}
	return time.Duration(n) * s.cfg.HeartbeatEvery
}

// executeRecovery is the standing recovery loop for one parent loss. It
// never gives up into a silent accidental root (the dangling-orphan bug):
// each round retries the surviving ancestors nearest-first, then — when
// the dead parent was the root, or the whole ancestor chain stayed
// unreachable long enough to escalate — runs the paper's §III-A election
// (smallest sibling ID wins; losers join the winner, falling back to any
// smaller-ID sibling so a chain of claims converges without join cycles).
// Only after the election path is exhausted for recoveryClaimRounds does
// the server claim the root role itself; a wrong claim is detected and
// folded back by the split-brain merge protocol.
func (s *Server) executeRecovery(p *rejoinPlan) {
	defer s.endTx(txRecovery)

	// Election order: the dead parent's other children, smallest ID
	// first; only siblings with IDs smaller than ours are join targets
	// (edges toward smaller IDs cannot form adoption cycles).
	smaller := make([]wire.RedirectInfo, 0, len(p.siblings))
	for _, sib := range p.siblings {
		if sib.ID != p.deadID && sib.ID < s.cfg.ID {
			smaller = append(smaller, sib)
		}
	}
	sort.Slice(smaller, func(i, j int) bool { return smaller[i].ID < smaller[j].ID })

	for round := 0; ; round++ {
		if round > 0 {
			s.mx.orphanRetries.Inc()
			if !s.sleepInterruptible(s.recoveryBackoff(round)) {
				return // server stopping
			}
		}
		// Surviving ancestors, nearest (grandparent) first — the true
		// root is among them, and rejoining it never splits the tree.
		for _, addr := range p.ancestors {
			if s.join(addr, false) == nil {
				return
			}
		}
		if !p.parentWasRoot && round < recoveryEscalateRounds {
			continue // give the ancestor chain time before electing
		}
		// Election (paper §III-A): smallest ID among the ex-siblings
		// including us.
		if len(smaller) == 0 {
			// We are the election winner (or have no siblings at all):
			// claim the root role; the ex-siblings will join us.
			s.becomeRoot()
			return
		}
		joined := false
		for _, sib := range smaller {
			if s.join(sib.Addr, false) == nil {
				joined = true
				break
			}
		}
		if joined {
			return
		}
		if round >= recoveryClaimRounds {
			// Winner and every smaller sibling stayed unreachable through
			// the whole backoff schedule: claim the root role rather than
			// dangle. If any of them is alive behind a partition, the
			// merge protocol reunifies the trees when it heals.
			s.becomeRoot()
			return
		}
	}
}

// becomeRoot assumes the root role after an election or an exhausted
// recovery: the server roots its own subtree and starts answering (and
// sending) split-brain probes as a root. The epoch was already bumped
// when the recovery began, so anything still loyal to the dead parent's
// regime is fenced.
func (s *Server) becomeRoot() {
	s.mu.Lock()
	s.parentID = ""
	s.parentAddr = ""
	s.parentMisses = 0
	s.parentReportMisses = 0
	s.rootPath = []string{s.cfg.ID}
	s.rootPathAddrs = []string{s.cfg.Addr}
	s.publishSnapshotLocked()
	s.mu.Unlock()
	s.mx.elections.Inc()
}

// MembershipInfo is a snapshot of one server's membership-protocol state,
// for harnesses and tests (the same values are exported as
// roads_membership_* series).
type MembershipInfo struct {
	// Epoch is the current membership epoch.
	Epoch uint64
	// Fenced counts relationship messages rejected for carrying an epoch
	// lower than the recorded one.
	Fenced uint64
	// Elections counts times this server assumed the root role through
	// recovery (election win or exhausted-recovery claim).
	Elections uint64
	// Merges counts split-brain merges this server executed as the
	// losing root.
	Merges uint64
	// Probes counts root probes sent.
	Probes uint64
	// OrphanRetries counts recovery rounds retried after every candidate
	// parent failed.
	OrphanRetries uint64
	// EpochRegressions counts attempts to move a recorded relationship
	// epoch backward that passed the fences — the invariant is that this
	// stays zero.
	EpochRegressions uint64
}

// Membership returns the server's membership-protocol snapshot.
func (s *Server) Membership() MembershipInfo {
	return MembershipInfo{
		Epoch:            s.epoch.Load(),
		Fenced:           s.mx.fenced.Load(),
		Elections:        s.mx.elections.Load(),
		Merges:           s.mx.merges.Load(),
		Probes:           s.mx.probes.Load(),
		OrphanRetries:    s.mx.orphanRetries.Load(),
		EpochRegressions: s.mx.epochRegressions.Load(),
	}
}

// handleRootProbe answers a split-brain probe with the root this server
// currently follows. When this server is itself a live idle root and the
// prober beats it, the merge is recorded for the membership loop —
// handlers never make outgoing calls (synchronous-transport deadlock
// rule), so the loop executes the join.
func (s *Server) handleRootProbe(msg *wire.Message) *wire.Message {
	if msg.RootProbe == nil {
		return wire.ErrorMessage(s.cfg.ID, fmt.Errorf("live: root probe without payload"))
	}
	s.mu.Lock()
	s.rememberLocked(msg.RootProbe.RootID, msg.RootProbe.RootAddr)
	rootID, rootAddr := s.cfg.ID, s.cfg.Addr
	if len(s.rootPath) > 0 && len(s.rootPathAddrs) > 0 {
		rootID, rootAddr = s.rootPath[0], s.rootPathAddrs[0]
	}
	if s.parentAddr == "" && s.tx == txNone && s.pendingMergeAddr == "" &&
		msg.RootProbe.RootID != s.cfg.ID &&
		otherWins(msg.Epoch, msg.RootProbe.RootID, s.epoch.Load(), s.cfg.ID) {
		s.pendingMergeAddr = msg.RootProbe.RootAddr
	}
	s.mu.Unlock()
	return s.stampEpoch(&wire.Message{
		Kind:      wire.KindRootProbeReply,
		From:      s.cfg.ID,
		Addr:      s.cfg.Addr,
		RootProbe: &wire.RootProbe{RootID: rootID, RootAddr: rootAddr},
	})
}
