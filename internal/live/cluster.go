package live

import (
	"fmt"
	"time"

	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/store"
	"roads/internal/summary"
	"roads/internal/transport"
)

// Cluster is a convenience harness that spins up n live servers on one
// transport, joins them into a hierarchy, and waits for aggregation and
// replication to converge. Tests, examples and the prototype benchmark all
// build on it.
type Cluster struct {
	Servers []*Server
	Tr      transport.Transport
	Schema  *record.Schema
}

// ClusterConfig configures StartCluster.
type ClusterConfig struct {
	N           int
	Schema      *record.Schema
	Summary     summary.Config
	MaxChildren int
	// AddrFor maps server index to a listen address. Defaults to
	// "srvNNN" (in-process) when nil.
	AddrFor func(i int) string
	// Tick overrides the aggregation/heartbeat period (default 25ms).
	Tick time.Duration
	// ReplicaTTLFloor overrides the servers' replica-TTL floor (zero
	// keeps DefaultReplicaTTLFloor); fast-tick chaos tests lower it so
	// crashed origins age out quickly.
	ReplicaTTLFloor time.Duration
	// AntiEntropyEvery overrides the servers' anti-entropy cadence (zero
	// keeps DefaultAntiEntropyEvery); TTL tests raise it so soft-state
	// liveness provably rides on version-only refreshes alone.
	AntiEntropyEvery int
	// DisableDeltaDissemination runs every server on the full-state
	// baseline pipeline.
	DisableDeltaDissemination bool
	Cost                      store.CostModel
}

// StartCluster launches the servers and joins 1..n-1 under server 0.
func StartCluster(tr transport.Transport, cfg ClusterConfig) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("live: cluster needs at least one server")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("live: cluster needs a schema")
	}
	addrFor := cfg.AddrFor
	if addrFor == nil {
		addrFor = func(i int) string { return fmt.Sprintf("srv%03d", i) }
	}
	tick := cfg.Tick
	if tick == 0 {
		tick = 25 * time.Millisecond
	}
	cl := &Cluster{Tr: tr, Schema: cfg.Schema}
	for i := 0; i < cfg.N; i++ {
		scfg := DefaultConfig(fmt.Sprintf("srv%03d", i), addrFor(i), cfg.Schema)
		if cfg.Summary.Buckets > 0 {
			scfg.Summary = cfg.Summary
		}
		if cfg.MaxChildren > 0 {
			scfg.MaxChildren = cfg.MaxChildren
		}
		scfg.AggregateEvery = tick
		scfg.HeartbeatEvery = tick
		if cfg.ReplicaTTLFloor > 0 {
			scfg.ReplicaTTLFloor = cfg.ReplicaTTLFloor
		}
		scfg.AntiEntropyEvery = cfg.AntiEntropyEvery
		scfg.DisableDeltaDissemination = cfg.DisableDeltaDissemination
		scfg.Cost = cfg.Cost
		srv, err := NewServer(scfg, tr)
		if err != nil {
			cl.Stop()
			return nil, err
		}
		if err := srv.Start(); err != nil {
			cl.Stop()
			return nil, err
		}
		cl.Servers = append(cl.Servers, srv)
	}
	seed := cl.Servers[0].Addr()
	for _, srv := range cl.Servers[1:] {
		if err := srv.Join(seed); err != nil {
			cl.Stop()
			return nil, err
		}
	}
	return cl, nil
}

// AttachOwner attaches an owner at server index i.
func (cl *Cluster) AttachOwner(i int, o *policy.Owner) error {
	if i < 0 || i >= len(cl.Servers) {
		return fmt.Errorf("live: server index %d out of range", i)
	}
	return cl.Servers[i].AttachOwner(o)
}

// WaitConverged blocks until every server can route queries to
// wantRecords records — its own branch plus its overlay replicas cover the
// whole federation — or the timeout expires.
func (cl *Cluster) WaitConverged(wantRecords uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		converged := cl.Root() != nil
		for _, srv := range cl.Servers {
			if srv.CoveredRecords() != wantRecords {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	detail := make([]string, 0, len(cl.Servers))
	for _, srv := range cl.Servers {
		if got := srv.CoveredRecords(); got != wantRecords {
			detail = append(detail, fmt.Sprintf("%s=%d", srv.ID(), got))
		}
	}
	return fmt.Errorf("live: cluster did not converge on %d records; lagging servers: %v",
		wantRecords, detail)
}

// Root returns the current root server (nil if none claims to be root).
func (cl *Cluster) Root() *Server {
	for _, srv := range cl.Servers {
		if srv.IsRoot() {
			return srv
		}
	}
	return nil
}

// Stop shuts all servers down.
func (cl *Cluster) Stop() {
	for _, srv := range cl.Servers {
		srv.Stop()
	}
}
