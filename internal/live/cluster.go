package live

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"roads/internal/policy"
	"roads/internal/record"
	"roads/internal/store"
	"roads/internal/summary"
	"roads/internal/transport"
)

// Cluster is a convenience harness that spins up n live servers on one
// transport, joins them into a hierarchy, and waits for aggregation and
// replication to converge. Tests, examples, the prototype benchmark and
// the load harness (internal/loadgen) all build on it.
type Cluster struct {
	Servers []*Server
	Tr      transport.Transport
	Schema  *record.Schema

	// Effective settings StartCluster resolved, kept for the convergence
	// heuristics (WaitConverged derives the replica soft-state TTL from
	// them) and for Stop's worker pool.
	tick     time.Duration
	ttlFloor time.Duration
	par      int
}

// defaultClusterParallelism is the worker-pool width StartCluster and Stop
// use when ClusterConfig.Parallelism is zero. Wide enough that a
// thousand-server cluster builds in a few join waves instead of one server
// at a time, narrow enough not to commandeer the machine.
const defaultClusterParallelism = 8

// ClusterConfig configures StartCluster.
type ClusterConfig struct {
	N           int
	Schema      *record.Schema
	Summary     summary.Config
	MaxChildren int
	// AddrFor maps server index to a listen address. Defaults to
	// "srvNNN" (in-process) when nil.
	AddrFor func(i int) string
	// JoinVia maps server index i (i > 0) to the index of the server whose
	// address seeds i's join descent — the joiner may still be redirected
	// into that server's subtree per the join policy. Nil seeds every join
	// at server 0 (the historical behaviour). Explicit placements let
	// harnesses build exact deep or wide topologies: point each server at
	// its intended parent and size MaxChildren so the parent has capacity.
	JoinVia func(i int) int
	// Parallelism bounds the worker pool that starts, joins and stops
	// servers (default defaultClusterParallelism; 1 restores the fully
	// serial construction). Joins run in waves: a server joins as soon as
	// its JoinVia seed is attached, so with the default seed (server 0)
	// the whole cluster joins in one bounded-concurrency wave instead of
	// serializing every join onto one caller.
	Parallelism int
	// Tick overrides the aggregation/heartbeat period (default 25ms).
	Tick time.Duration
	// ReplicaTTLFloor overrides the servers' replica-TTL floor (zero
	// keeps DefaultReplicaTTLFloor); fast-tick chaos tests lower it so
	// crashed origins age out quickly.
	ReplicaTTLFloor time.Duration
	// JoinMaxHops overrides the servers' join hop cap (zero keeps the
	// frontier-derived default; see Config.JoinMaxHops).
	JoinMaxHops int
	// AntiEntropyEvery overrides the servers' anti-entropy cadence (zero
	// keeps DefaultAntiEntropyEvery); TTL tests raise it so soft-state
	// liveness provably rides on version-only refreshes alone.
	AntiEntropyEvery int
	// DisableDeltaDissemination runs every server on the full-state
	// baseline pipeline.
	DisableDeltaDissemination bool
	// DisableMembershipEpoch runs every server as a pre-epoch peer: no
	// epoch stamping, fencing, or split-brain probing (see
	// Config.DisableMembershipEpoch).
	DisableMembershipEpoch bool
	// MergeSeeds are the split-brain probe seed addresses handed to every
	// server (Config.MergeSeeds); harnesses typically pass server 0's
	// address so severed subtrees always have one well-known root to
	// rediscover.
	MergeSeeds []string
	// MergeProbeEvery overrides the servers' split-brain probe cadence
	// (zero derives 4× the heartbeat period; see Config.MergeProbeEvery).
	MergeProbeEvery time.Duration
	// DisableAdaptiveSummaries, SummaryByteBudget and ReplanEvery
	// configure every server's feedback-driven resolution loop (see the
	// Config fields of the same names); the zero values leave adaptation
	// on with an unbounded plan budget at the default replan cadence.
	DisableAdaptiveSummaries bool
	SummaryByteBudget        int
	ReplanEvery              int
	Cost                     store.CostModel
	// ResultCacheBytes, AdmissionRate, AdmissionBurst and Classifier are
	// handed to every server verbatim (see the Config fields of the same
	// names). The zero values keep the result cache at its default budget
	// and admission control off.
	ResultCacheBytes int64
	AdmissionRate    float64
	AdmissionBurst   int
	Classifier       *policy.Classifier
}

// parallelism returns the effective worker-pool width.
func (cfg ClusterConfig) parallelism() int {
	if cfg.Parallelism > 0 {
		return cfg.Parallelism
	}
	return defaultClusterParallelism
}

// runPool runs fn(i) for every i in [0,n) on at most par goroutines.
func runPool(par, n int, fn func(int)) {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// StartCluster launches the servers and joins 1..n-1 into the hierarchy.
// Server starts run on a bounded worker pool, and joins run in waves of
// the same width: every server whose join seed (JoinVia, default server 0)
// is already attached joins concurrently, so a deep explicit placement
// costs one wave per level and the default flat seed costs a single wave —
// not one serial join per server.
func StartCluster(tr transport.Transport, cfg ClusterConfig) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("live: cluster needs at least one server")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("live: cluster needs a schema")
	}
	addrFor := cfg.AddrFor
	if addrFor == nil {
		addrFor = func(i int) string { return fmt.Sprintf("srv%03d", i) }
	}
	tick := cfg.Tick
	if tick == 0 {
		tick = 25 * time.Millisecond
	}
	par := cfg.parallelism()
	cl := &Cluster{
		Tr:       tr,
		Schema:   cfg.Schema,
		Servers:  make([]*Server, cfg.N),
		tick:     tick,
		ttlFloor: cfg.ReplicaTTLFloor,
		par:      par,
	}
	errs := make([]error, cfg.N)
	runPool(par, cfg.N, func(i int) {
		scfg := DefaultConfig(fmt.Sprintf("srv%03d", i), addrFor(i), cfg.Schema)
		if cfg.Summary.Buckets > 0 {
			scfg.Summary = cfg.Summary
		}
		if cfg.MaxChildren > 0 {
			scfg.MaxChildren = cfg.MaxChildren
		}
		scfg.AggregateEvery = tick
		scfg.HeartbeatEvery = tick
		if cfg.ReplicaTTLFloor > 0 {
			scfg.ReplicaTTLFloor = cfg.ReplicaTTLFloor
		}
		scfg.JoinMaxHops = cfg.JoinMaxHops
		scfg.AntiEntropyEvery = cfg.AntiEntropyEvery
		scfg.DisableDeltaDissemination = cfg.DisableDeltaDissemination
		scfg.DisableMembershipEpoch = cfg.DisableMembershipEpoch
		scfg.MergeSeeds = cfg.MergeSeeds
		scfg.MergeProbeEvery = cfg.MergeProbeEvery
		scfg.DisableAdaptiveSummaries = cfg.DisableAdaptiveSummaries
		scfg.SummaryByteBudget = cfg.SummaryByteBudget
		scfg.ReplanEvery = cfg.ReplanEvery
		scfg.Cost = cfg.Cost
		scfg.ResultCacheBytes = cfg.ResultCacheBytes
		scfg.AdmissionRate = cfg.AdmissionRate
		scfg.AdmissionBurst = cfg.AdmissionBurst
		scfg.Classifier = cfg.Classifier
		srv, err := NewServer(scfg, tr)
		if err != nil {
			errs[i] = err
			return
		}
		if err := srv.Start(); err != nil {
			errs[i] = err
			return
		}
		cl.Servers[i] = srv
	})
	if err := cl.compact(errs); err != nil {
		cl.Stop()
		return nil, err
	}

	// Join waves: a server may join once its seed is attached. With the
	// default seed everything joins in wave one; explicit JoinVia
	// placements join level by level.
	attached := make([]bool, cfg.N)
	attached[0] = true
	pending := make([]int, 0, cfg.N-1)
	for i := 1; i < cfg.N; i++ {
		pending = append(pending, i)
	}
	for len(pending) > 0 {
		wave := make([]int, 0, len(pending))
		rest := pending[:0]
		for _, i := range pending {
			via := 0
			if cfg.JoinVia != nil {
				via = cfg.JoinVia(i)
			}
			if via < 0 || via >= cfg.N || via == i {
				cl.Stop()
				return nil, fmt.Errorf("live: cluster JoinVia(%d) = %d is not another server index", i, via)
			}
			if attached[via] {
				wave = append(wave, i)
			} else {
				rest = append(rest, i)
			}
		}
		if len(wave) == 0 {
			cl.Stop()
			return nil, fmt.Errorf("live: cluster JoinVia placement never attaches servers %v", rest)
		}
		waveErrs := make([]error, len(wave))
		runPool(par, len(wave), func(w int) {
			i := wave[w]
			via := 0
			if cfg.JoinVia != nil {
				via = cfg.JoinVia(i)
			}
			waveErrs[w] = cl.Servers[i].Join(cl.Servers[via].Addr())
		})
		for w, err := range waveErrs {
			if err != nil {
				cl.Stop()
				return nil, fmt.Errorf("live: joining server %d: %w", wave[w], err)
			}
			attached[wave[w]] = true
		}
		pending = rest
	}
	return cl, nil
}

// compact verifies every server slot was built; on failure it keeps the
// started subset so Stop can clean up, and returns the first error.
func (cl *Cluster) compact(errs []error) error {
	var first error
	alive := cl.Servers[:0]
	for i, srv := range cl.Servers {
		if srv != nil {
			alive = append(alive, srv)
		}
		if errs[i] != nil && first == nil {
			first = errs[i]
		}
	}
	if first != nil {
		cl.Servers = alive
	}
	return first
}

// AttachOwner attaches an owner at server index i.
func (cl *Cluster) AttachOwner(i int, o *policy.Owner) error {
	if i < 0 || i >= len(cl.Servers) {
		return fmt.Errorf("live: server index %d out of range", i)
	}
	return cl.Servers[i].AttachOwner(o)
}

// coverageLag classifies every server against the convergence target:
// servers covering fewer records than wantRecords land in under, servers
// covering more land in over, each rendered as "id=got(±diff)".
func (cl *Cluster) coverageLag(wantRecords uint64) (under, over []string) {
	for _, srv := range cl.Servers {
		got := srv.CoveredRecords()
		switch {
		case got < wantRecords:
			under = append(under, fmt.Sprintf("%s=%d(-%d)", srv.ID(), got, wantRecords-got))
		case got > wantRecords:
			over = append(over, fmt.Sprintf("%s=%d(+%d)", srv.ID(), got, got-wantRecords))
		}
	}
	return under, over
}

// lagDetail renders a lag list compactly (first few servers plus a count).
func lagDetail(lag []string) string {
	const keep = 8
	if len(lag) <= keep {
		return strings.Join(lag, ", ")
	}
	return fmt.Sprintf("%s, … (%d servers total)", strings.Join(lag[:keep], ", "), len(lag))
}

// overshootGrace is how long WaitConverged lets a pure coverage overshoot
// stand before declaring it structural. A transient overshoot — a stale
// replica still double-counting a branch that moved or died — heals by
// soft-state expiry within one replica TTL plus a prune tick, so the grace
// is twice the effective TTL (mirroring pruneStaleReplicas' computation)
// plus generous slack for loaded or race-instrumented runs.
func (cl *Cluster) overshootGrace() time.Duration {
	// DefaultConfig's HeartbeatMiss (4): cluster servers always run it.
	ttl := time.Duration(4*4) * cl.tick
	floor := cl.ttlFloor
	if floor <= 0 {
		floor = DefaultReplicaTTLFloor
	}
	if ttl < floor {
		ttl = floor
	}
	return 2*ttl + 8*cl.tick + time.Second
}

// WaitConverged blocks until every server can route queries to exactly
// wantRecords records — its own branch plus its overlay replicas cover the
// whole federation — or the timeout expires.
//
// Undershoot (servers still missing records) is the normal transient state
// while aggregation and replication propagate, and is waited out. Coverage
// *overshoot* — every server at or above the target with at least one
// counting more — means some branch is double-counted (typically a stale
// replica after churn, or one subtree adopted under two parents). A stale
// replica ages out within one soft-state TTL; an overshoot that outlives
// that grace can never self-heal, so it is reported immediately as a
// distinct failure with per-server detail instead of burning the rest of
// the timeout.
func (cl *Cluster) WaitConverged(wantRecords uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	grace := cl.overshootGrace()
	var overshootSince time.Time
	for {
		under, over := cl.coverageLag(wantRecords)
		hasRoot := cl.Root() != nil
		if hasRoot && len(under) == 0 && len(over) == 0 {
			return nil
		}
		now := time.Now()
		if hasRoot && len(under) == 0 && len(over) > 0 {
			if overshootSince.IsZero() {
				overshootSince = now
			}
			if now.Sub(overshootSince) >= grace {
				return fmt.Errorf("live: cluster overshot convergence on %d records for %v "+
					"(stale replica double-counting cannot explain an overshoot outliving the replica TTL); over: %s",
					wantRecords, now.Sub(overshootSince).Round(time.Millisecond), lagDetail(over))
			}
		} else {
			overshootSince = time.Time{}
		}
		if !now.Before(deadline) {
			detail := make([]string, 0, 2)
			if len(under) > 0 {
				detail = append(detail, "under: "+lagDetail(under))
			}
			if len(over) > 0 {
				detail = append(detail, "over: "+lagDetail(over))
			}
			if !hasRoot {
				detail = append(detail, "no root")
			}
			return fmt.Errorf("live: cluster did not converge on %d records; %s",
				wantRecords, strings.Join(detail, "; "))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Root returns the current root server (nil if none claims to be root).
func (cl *Cluster) Root() *Server {
	for _, srv := range cl.Servers {
		if srv.IsRoot() {
			return srv
		}
	}
	return nil
}

// Stop shuts all servers down, fanning the graceful Leave rounds out on
// the cluster's worker pool — a thousand-server teardown costs a few
// parallel waves, not a thousand serial Leave fan-outs.
func (cl *Cluster) Stop() {
	par := cl.par
	if par <= 0 {
		par = defaultClusterParallelism
	}
	runPool(par, len(cl.Servers), func(i int) {
		if srv := cl.Servers[i]; srv != nil {
			srv.Stop()
		}
	})
}
