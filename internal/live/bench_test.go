package live

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
	"roads/internal/workload"
)

// benchStar builds a root with `children` direct children over the
// in-process transport, each child holding records, and reports every
// child branch up so the root's replica pushes carry real summaries.
// Background loops are parked; the benchmark drives pushReplicas itself.
func benchStar(b *testing.B, children, recsPer int, disableDelta bool) (*Server, *transport.Chan) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	w := workload.MustGenerate(workload.Config{Nodes: children + 1, RecordsPerNode: recsPer, AttrsPerDist: 2}, rng)
	tr := transport.NewChan()
	mk := func(i int) *Server {
		cfg := DefaultConfig(fmt.Sprintf("n%02d", i), fmt.Sprintf("addr%02d", i), w.Schema)
		cfg.MaxChildren = children
		cfg.AggregateEvery = time.Hour
		cfg.HeartbeatEvery = time.Hour
		cfg.DisableDeltaDissemination = disableDelta
		srv, err := NewServer(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Stop)
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := srv.AttachOwner(o); err != nil {
			b.Fatal(err)
		}
		return srv
	}
	root := mk(0)
	for i := 1; i <= children; i++ {
		c := mk(i)
		if err := c.Join(root.Addr()); err != nil {
			b.Fatal(err)
		}
		c.refreshSummaries()
		c.reportToParent()
	}
	root.refreshSummaries()
	if got := root.NumChildren(); got != children {
		b.Fatalf("root has %d children; want %d (star shape required)", got, children)
	}
	return root, tr
}

// BenchmarkPushReplicas measures one replica-propagation round from a
// root to 16 children: the legacy path sends one RPC per replica per
// child, the batched path sends one KindReplicaBatch per child. rpcs/op
// and wirebytes/op come from the transport's own counters.
func BenchmarkPushReplicas(b *testing.B) {
	const children = 16
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"percall", true},
		{"batched", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// Delta dissemination off on every server: this benchmark pins
			// the percall-vs-batched comparison on the full-push pipeline it
			// was introduced for.
			root, tr := benchStar(b, children, 8, true)
			root.cfg.DisableReplicaBatch = mode.disable
			root.pushReplicas() // warm up: children allocate replica state once
			start := tr.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				root.pushReplicas()
			}
			b.StopTimer()
			st := tr.Stats()
			b.ReportMetric(float64(st.Calls-start.Calls)/float64(b.N), "rpcs/op")
			b.ReportMetric(float64(st.BytesSent-start.BytesSent+st.BytesRecv-start.BytesRecv)/float64(b.N), "wirebytes/op")
		})
	}
}

// BenchmarkHandleQuery measures the query hot path on a root holding 16
// child branches and 8 overlay replicas — every query matches all of
// them, so the handler does the full local-search + redirect-matching
// walk. snapshot is the lock-free routing-snapshot path, mutex the legacy
// path that evaluates under s.mu (Config.LegacyQueryLocking); parallel
// runs a querier per core, where the mutex path serializes and the
// snapshot path scales.
func BenchmarkHandleQuery(b *testing.B) {
	for _, mode := range []struct {
		name   string
		legacy bool
	}{
		{"snapshot", false},
		{"mutex", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			root, _ := benchStar(b, 16, 8, false)
			root.cfg.LegacyQueryLocking = mode.legacy
			// Give the root the replica load a mid-hierarchy server carries:
			// 8 sibling branches pushed from a pretend parent.
			pushes := make([]*wire.ReplicaPush, 8)
			for i := range pushes {
				pushes[i] = &wire.ReplicaPush{
					OriginID:   fmt.Sprintf("sib%d", i),
					OriginAddr: fmt.Sprintf("addr-sib%d", i),
					Branch:     wire.FromSummary(root.snap.Load().localSummary),
					Level:      1,
				}
			}
			batch := &wire.Message{Kind: wire.KindReplicaBatch, From: "P", Addr: "addr-P",
				Batch: &wire.ReplicaBatch{Pushes: pushes}}
			if err := wire.RemoteError(root.handle(batch)); err != nil {
				b.Fatal(err)
			}
			q := query.New("bench-q", query.NewRange("a0", 0, 1))
			msg := &wire.Message{Kind: wire.KindQuery, From: "t", Query: wire.FromQuery(q, true)}
			rep := root.handle(msg)
			if err := wire.RemoteError(rep); err != nil {
				b.Fatal(err)
			}
			if got := len(rep.QueryRep.Redirects); got != 16+8 {
				b.Fatalf("warmup query produced %d redirects, want 24", got)
			}
			b.Run("serial", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					root.handle(msg)
				}
			})
			b.Run("parallel", func(b *testing.B) {
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						root.handle(msg)
					}
				})
			})
		})
	}
}

// benchMidTier builds the three-level chain P ← M ← c1..c8 with parked
// loops, every server holding recsPer records, and drives enough warmup
// rounds that the delta handshake (when enabled) has fully converged: M
// suppresses its reports to P and ships version-only entries to the
// children. Returns M (the server whose tick the benchmark measures), M's
// owner and record set (for churn injection), and the transport.
func benchMidTier(b *testing.B, disableDelta bool, recsPer int) (*Server, *policy.Owner, []*record.Record, *transport.Chan) {
	b.Helper()
	const children = 8
	rng := rand.New(rand.NewSource(41))
	w := workload.MustGenerate(workload.Config{Nodes: children + 2, RecordsPerNode: recsPer, AttrsPerDist: 2}, rng)
	tr := transport.NewChan()
	mk := func(i int) (*Server, *policy.Owner) {
		cfg := DefaultConfig(fmt.Sprintf("n%02d", i), fmt.Sprintf("addr%02d", i), w.Schema)
		cfg.MaxChildren = children
		cfg.AggregateEvery = time.Hour
		cfg.HeartbeatEvery = time.Hour
		cfg.DisableDeltaDissemination = disableDelta
		// A longer-than-default anti-entropy cadence so the steady-state
		// numbers are dominated by delta rounds; the periodic full round is
		// still included in the measurement (1 tick in 64).
		cfg.AntiEntropyEvery = 64
		srv, err := NewServer(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Stop)
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := srv.AttachOwner(o); err != nil {
			b.Fatal(err)
		}
		return srv, o
	}
	parent, _ := mk(0)
	mid, own := mk(1)
	if err := mid.Join(parent.Addr()); err != nil {
		b.Fatal(err)
	}
	all := []*Server{mid, parent}
	for i := 2; i < children+2; i++ {
		c, _ := mk(i)
		if err := c.Join(mid.Addr()); err != nil {
			b.Fatal(err)
		}
		all = append([]*Server{c}, all...)
	}
	for round := 0; round < 6; round++ {
		driveRound(all...)
	}
	if got := mid.NumChildren(); got != children {
		b.Fatalf("mid-tier server has %d children; want %d", got, children)
	}
	if !disableDelta && mid.mx.reportsSuppressed.Load() == 0 {
		b.Fatal("warmup never reached steady-state suppression")
	}
	return mid, own, w.PerNode[1], tr
}

// BenchmarkAggregationTick measures one full aggregation tick (refresh,
// report, push, both prunes) on a mid-tier server with a parent and 8
// children, across churn rates: churn0 mutates nothing between ticks (the
// steady state the change-driven pipeline targets), churn1 rewrites 1% of
// the server's own records before every tick, churn100 rewrites all of
// them. delta is the change-driven pipeline (including its 1-in-64
// anti-entropy full rounds); full is the DisableDeltaDissemination
// baseline that rebuilds and retransmits everything every tick. rpcs/op
// and wirebytes/op come from the transport's own counters.
func BenchmarkAggregationTick(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"delta", false},
		{"full", true},
	} {
		for _, churn := range []struct {
			name string
			frac float64
		}{
			{"churn0", 0},
			{"churn1", 0.01},
			{"churn100", 1},
		} {
			b.Run(mode.name+"/"+churn.name, func(b *testing.B) {
				mid, own, recs, tr := benchMidTier(b, mode.disable, 100)
				rng := rand.New(rand.NewSource(7))
				start := tr.Stats()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if churn.frac > 0 {
						b.StopTimer()
						k := int(churn.frac * float64(len(recs)))
						if k < 1 {
							k = 1
						}
						for j := 0; j < k; j++ {
							recs[rng.Intn(len(recs))].SetNum(0, rng.Float64())
						}
						own.SetRecords(recs)
						b.StartTimer()
					}
					mid.refreshSummaries()
					mid.reportToParent()
					mid.pushReplicas()
					mid.pruneDeadChildren()
					mid.pruneStaleReplicas()
				}
				b.StopTimer()
				st := tr.Stats()
				b.ReportMetric(float64(st.Calls-start.Calls)/float64(b.N), "rpcs/op")
				b.ReportMetric(float64(st.BytesSent-start.BytesSent+st.BytesRecv-start.BytesRecv)/float64(b.N), "wirebytes/op")
			})
		}
	}
}
