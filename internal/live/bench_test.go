package live

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/transport"
	"roads/internal/wire"
	"roads/internal/workload"
)

// benchStar builds a root with `children` direct children over the
// in-process transport, each child holding records, and reports every
// child branch up so the root's replica pushes carry real summaries.
// Background loops are parked; the benchmark drives pushReplicas itself.
func benchStar(b *testing.B, children, recsPer int) (*Server, *transport.Chan) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	w := workload.MustGenerate(workload.Config{Nodes: children + 1, RecordsPerNode: recsPer, AttrsPerDist: 2}, rng)
	tr := transport.NewChan()
	mk := func(i int) *Server {
		cfg := DefaultConfig(fmt.Sprintf("n%02d", i), fmt.Sprintf("addr%02d", i), w.Schema)
		cfg.MaxChildren = children
		cfg.AggregateEvery = time.Hour
		cfg.HeartbeatEvery = time.Hour
		srv, err := NewServer(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Stop)
		o := policy.NewOwner(fmt.Sprintf("owner%d", i), w.Schema, nil)
		o.SetRecords(w.PerNode[i])
		if err := srv.AttachOwner(o); err != nil {
			b.Fatal(err)
		}
		return srv
	}
	root := mk(0)
	for i := 1; i <= children; i++ {
		c := mk(i)
		if err := c.Join(root.Addr()); err != nil {
			b.Fatal(err)
		}
		c.refreshSummaries()
		c.reportToParent()
	}
	root.refreshSummaries()
	if got := root.NumChildren(); got != children {
		b.Fatalf("root has %d children; want %d (star shape required)", got, children)
	}
	return root, tr
}

// BenchmarkPushReplicas measures one replica-propagation round from a
// root to 16 children: the legacy path sends one RPC per replica per
// child, the batched path sends one KindReplicaBatch per child. rpcs/op
// and wirebytes/op come from the transport's own counters.
func BenchmarkPushReplicas(b *testing.B) {
	const children = 16
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"percall", true},
		{"batched", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			root, tr := benchStar(b, children, 8)
			root.cfg.DisableReplicaBatch = mode.disable
			root.pushReplicas() // warm up: children allocate replica state once
			start := tr.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				root.pushReplicas()
			}
			b.StopTimer()
			st := tr.Stats()
			b.ReportMetric(float64(st.Calls-start.Calls)/float64(b.N), "rpcs/op")
			b.ReportMetric(float64(st.BytesSent-start.BytesSent+st.BytesRecv-start.BytesRecv)/float64(b.N), "wirebytes/op")
		})
	}
}

// BenchmarkHandleQuery measures the query hot path on a root holding 16
// child branches and 8 overlay replicas — every query matches all of
// them, so the handler does the full local-search + redirect-matching
// walk. snapshot is the lock-free routing-snapshot path, mutex the legacy
// path that evaluates under s.mu (Config.LegacyQueryLocking); parallel
// runs a querier per core, where the mutex path serializes and the
// snapshot path scales.
func BenchmarkHandleQuery(b *testing.B) {
	for _, mode := range []struct {
		name   string
		legacy bool
	}{
		{"snapshot", false},
		{"mutex", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			root, _ := benchStar(b, 16, 8)
			root.cfg.LegacyQueryLocking = mode.legacy
			// Give the root the replica load a mid-hierarchy server carries:
			// 8 sibling branches pushed from a pretend parent.
			pushes := make([]*wire.ReplicaPush, 8)
			for i := range pushes {
				pushes[i] = &wire.ReplicaPush{
					OriginID:   fmt.Sprintf("sib%d", i),
					OriginAddr: fmt.Sprintf("addr-sib%d", i),
					Branch:     wire.FromSummary(root.snap.Load().localSummary),
					Level:      1,
				}
			}
			batch := &wire.Message{Kind: wire.KindReplicaBatch, From: "P", Addr: "addr-P",
				Batch: &wire.ReplicaBatch{Pushes: pushes}}
			if err := wire.RemoteError(root.handle(batch)); err != nil {
				b.Fatal(err)
			}
			q := query.New("bench-q", query.NewRange("a0", 0, 1))
			msg := &wire.Message{Kind: wire.KindQuery, From: "t", Query: wire.FromQuery(q, true)}
			rep := root.handle(msg)
			if err := wire.RemoteError(rep); err != nil {
				b.Fatal(err)
			}
			if got := len(rep.QueryRep.Redirects); got != 16+8 {
				b.Fatalf("warmup query produced %d redirects, want 24", got)
			}
			b.Run("serial", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					root.handle(msg)
				}
			})
			b.Run("parallel", func(b *testing.B) {
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						root.handle(msg)
					}
				})
			})
		})
	}
}
