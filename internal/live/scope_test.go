package live

import (
	"testing"
	"time"

	"roads/internal/query"
)

func TestScopedQueryLimitsSearch(t *testing.T) {
	cl, w := startWorkloadCluster(t, 8, 30, 31)
	client := NewClient(cl.Tr, "tester")

	// A query matching everything, started at a leaf.
	q := query.New("q", query.NewRange("a0", 0, 1))
	if err := q.Bind(w.Schema); err != nil {
		t.Fatal(err)
	}
	var leaf *Server
	for _, srv := range cl.Servers {
		if !srv.IsRoot() && srv.NumChildren() == 0 {
			leaf = srv
			break
		}
	}
	if leaf == nil {
		t.Skip("no leaf")
	}

	// Scope 0: only the leaf's own data.
	recs0, stats0, err := client.ResolveScoped(leaf.Addr(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats0.Contacted != 1 {
		t.Fatalf("scope 0 contacted %d servers; want 1", stats0.Contacted)
	}
	// Full scope: everything.
	recsAll, statsAll, err := client.ResolveScoped(leaf.Addr(), q, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsAll) != w.TotalRecords() {
		t.Fatalf("full scope returned %d records; want %d", len(recsAll), w.TotalRecords())
	}
	if len(recs0) >= len(recsAll) {
		t.Fatalf("scope 0 (%d records) should return fewer than full scope (%d)", len(recs0), len(recsAll))
	}
	if statsAll.Contacted <= stats0.Contacted {
		t.Fatal("full scope must contact more servers")
	}
	// Intermediate scopes widen monotonically.
	prev := len(recs0)
	for scope := 1; scope <= 3; scope++ {
		recs, _, err := client.ResolveScoped(leaf.Addr(), q, scope)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) < prev {
			t.Fatalf("scope %d returned %d records, fewer than scope %d's %d",
				scope, len(recs), scope-1, prev)
		}
		prev = len(recs)
	}
}

func TestScopedQueryStillCompleteWithinBranch(t *testing.T) {
	cl, w := startWorkloadCluster(t, 6, 20, 32)
	client := NewClient(cl.Tr, "tester")
	// Scope 0 at any server must return exactly that server's local data
	// matching the query.
	q := query.New("q", query.NewRange("a1", 0, 1))
	if err := q.Bind(w.Schema); err != nil {
		t.Fatal(err)
	}
	for i, srv := range cl.Servers {
		if srv.NumChildren() > 0 {
			continue // leaves only: their subtree is exactly their own data
		}
		recs, _, err := client.ResolveScoped(srv.Addr(), q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(w.PerNode[i]) {
			t.Fatalf("server %d scope-0 returned %d records; want its %d local ones",
				i, len(recs), len(w.PerNode[i]))
		}
	}
	_ = time.Now()
}

func TestStatusSnapshot(t *testing.T) {
	cl, w := startWorkloadCluster(t, 5, 10, 90)
	client := NewClient(cl.Tr, "ops")
	// Run one query so counters move.
	q := query.New("q", query.NewRange("a0", 0, 1))
	if _, _, err := client.Resolve(cl.Servers[1].Addr(), q); err != nil {
		t.Fatal(err)
	}
	root := cl.Root()
	st, err := client.Status(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsRoot || st.ID != root.ID() {
		t.Fatalf("status = %+v; want the root", st)
	}
	if st.BranchRecords != uint64(w.TotalRecords()) {
		t.Fatalf("root branch records = %d; want %d", st.BranchRecords, w.TotalRecords())
	}
	if st.Children == 0 || st.Owners != 1 {
		t.Fatalf("root children=%d owners=%d", st.Children, st.Owners)
	}
	if st.SummariesRecv == 0 {
		t.Fatal("root should have received summary reports")
	}
	// A leaf's status.
	for _, srv := range cl.Servers {
		if srv.IsRoot() {
			continue
		}
		st, err := client.Status(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if st.IsRoot || st.ParentID == "" {
			t.Fatalf("non-root status = %+v", st)
		}
		if len(st.RootPath) < 2 || st.RootPath[0] != root.ID() {
			t.Fatalf("root path = %v", st.RootPath)
		}
		break
	}
	if _, err := client.Status("nowhere"); err == nil {
		t.Fatal("status of unknown address must fail")
	}
}
