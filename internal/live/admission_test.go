package live

import (
	"strings"
	"testing"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/wire"
)

// admissionStar builds the shared fixture: a parked-loop star with two
// branches and an admission layer of two tokens per requester that barely
// refills, so the third query from any non-high requester goes over budget.
func admissionStar(t *testing.T) (*Server, *policy.Classifier) {
	t.Helper()
	cls := policy.NewClassifier()
	root, _, _, tr, _ := newCacheStar(t, func(cfg *Config) {
		cfg.AdmissionRate = 0.0001
		cfg.AdmissionBurst = 2
		cfg.Classifier = cls
	}, rangeOf(0, 8), rangeOf(100, 8))
	_ = tr
	return root, cls
}

// TestAdmissionShedsToCoarse: a wire-v5 requester over its token budget
// gets a coarse summary-only answer — flagged in the reply, not an error.
func TestAdmissionShedsToCoarse(t *testing.T) {
	root, _ := admissionStar(t)
	cli := NewClient(root.tr, "t-low")
	cli.Priority = wire.PriorityLow
	q := query.New("q", query.NewRange("a0", -1, 2000))

	for i := 0; i < 2; i++ {
		recs, stats, err := cli.Resolve(root.Addr(), q)
		if err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
		if stats.Coarse != 0 || len(recs) != 16 {
			t.Fatalf("resolve %d within budget: coarse=%d records=%d; want full answer", i, stats.Coarse, len(recs))
		}
	}
	recs, stats, err := cli.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatalf("over-budget resolve must not error, got: %v", err)
	}
	if stats.Coarse != 1 || len(recs) != 0 {
		t.Fatalf("over-budget resolve: coarse=%d records=%d; want a coarse shed", stats.Coarse, len(recs))
	}
	if stats.CoarseEstimate <= 0 {
		t.Fatalf("coarse reply carried estimate %v; want a positive branch estimate", stats.CoarseEstimate)
	}
	if info := root.AdmissionInfo(); info.Shed == 0 || info.Rejected != 0 {
		t.Fatalf("admission after coarse shed: %+v; want shed counted, nothing rejected", info)
	}
}

// TestAdmissionHighPriorityNeverShed: PriorityHigh traffic bypasses the
// token buckets entirely.
func TestAdmissionHighPriorityNeverShed(t *testing.T) {
	root, _ := admissionStar(t)
	cli := NewClient(root.tr, "t-high")
	cli.Priority = wire.PriorityHigh
	q := query.New("q", query.NewRange("a0", -1, 2000))
	for i := 0; i < 6; i++ {
		recs, stats, err := cli.Resolve(root.Addr(), q)
		if err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
		if stats.Coarse != 0 || len(recs) != 16 {
			t.Fatalf("resolve %d: coarse=%d records=%d; high priority must never be shed", i, stats.Coarse, len(recs))
		}
	}
}

// TestAdmissionPreV5RequesterGetsError: a requester whose query carries no
// wire-v5 field cannot decode a coarse reply, so over budget it gets the
// legacy error shed, counted as rejected.
func TestAdmissionPreV5RequesterGetsError(t *testing.T) {
	root, _ := admissionStar(t)
	cli := NewClient(root.tr, "t-pre")
	q := query.New("q", query.NewRange("a0", -1, 2000))
	for i := 0; i < 2; i++ {
		if _, _, err := cli.Resolve(root.Addr(), q); err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
	}
	_, _, err := cli.Resolve(root.Addr(), q)
	if err == nil || !strings.Contains(err.Error(), "admission") {
		t.Fatalf("over-budget pre-v5 resolve: err=%v; want an admission error", err)
	}
	if info := root.AdmissionInfo(); info.Rejected == 0 {
		t.Fatalf("admission after pre-v5 shed: %+v; want rejected counted", info)
	}
}

// TestAdmissionClassifierOverridesClaimedPriority: a server-side Classifier
// pin beats whatever priority class the requester claims on the wire.
func TestAdmissionClassifierOverridesClaimedPriority(t *testing.T) {
	root, cls := admissionStar(t)
	cls.Pin("t-pinned", policy.ClassLow)
	cli := NewClient(root.tr, "t-pinned")
	cli.Priority = wire.PriorityHigh // claimed high, pinned low
	q := query.New("q", query.NewRange("a0", -1, 2000))
	for i := 0; i < 2; i++ {
		if _, _, err := cli.Resolve(root.Addr(), q); err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
	}
	_, stats, err := cli.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Coarse != 1 {
		t.Fatalf("pinned-low requester claiming high was not shed (coarse=%d); the classifier must override the wire priority", stats.Coarse)
	}
}
