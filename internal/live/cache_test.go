package live

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// numRecords builds records for the single-attribute test schema, one per
// value, with IDs derived from the prefix.
func numRecords(schema *record.Schema, owner, prefix string, vals []float64) []*record.Record {
	out := make([]*record.Record, len(vals))
	for i, v := range vals {
		r := record.New(schema, fmt.Sprintf("%s-%03d", prefix, i), owner)
		r.Values[0].Num = v
		out[i] = r
	}
	return out
}

// rangeOf returns n values starting at lo, one apart.
func rangeOf(lo float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + float64(i)
	}
	return out
}

// newCacheStar builds a parked-loop star: one root, one child per childVals
// entry, each child holding a summary-mode owner with those attribute
// values, branches reported up. Loops are parked (hour-long ticks) so the
// test drives every refresh and report deterministically.
func newCacheStar(t *testing.T, mut func(cfg *Config), childVals ...[]float64) (*Server, []*Server, []*policy.Owner, *transport.Chan, *record.Schema) {
	t.Helper()
	schema := record.DefaultSchema(1)
	tr := transport.NewChan()
	mk := func(id string) *Server {
		cfg := DefaultConfig(id, "addr-"+id, schema)
		cfg.MaxChildren = 8
		cfg.AggregateEvery = time.Hour
		cfg.HeartbeatEvery = time.Hour
		// The default summary domain is the paper's unit range [0,1);
		// widen it so the integer-valued test records land in distinct
		// histogram buckets instead of collapsing into the last one.
		cfg.Summary.Max = 1000
		if mut != nil {
			mut(&cfg)
		}
		srv, err := NewServer(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Stop)
		return srv
	}
	root := mk("root")
	children := make([]*Server, 0, len(childVals))
	owners := make([]*policy.Owner, 0, len(childVals))
	for i, vals := range childVals {
		c := mk(fmt.Sprintf("c%d", i))
		o := policy.NewOwner(fmt.Sprintf("o%d", i), schema, nil)
		o.SetRecords(numRecords(schema, o.ID, o.ID, vals))
		if err := c.AttachOwner(o); err != nil {
			t.Fatal(err)
		}
		if err := c.Join(root.Addr()); err != nil {
			t.Fatal(err)
		}
		c.refreshSummaries()
		c.reportToParent()
		children = append(children, c)
		owners = append(owners, o)
	}
	// Run the delta-capability handshake the parked loops would normally
	// perform: the first push round's acks mark each child delta-capable,
	// the second round's version-stamped pushes teach the children their
	// parent speaks v3, and only then do reports carry the branch versions
	// the result cache keys its child dependencies on.
	root.refreshSummaries()
	root.pushReplicas()
	root.pushReplicas()
	for _, c := range children {
		c.reportToParent()
	}
	root.refreshSummaries()
	if got := root.NumChildren(); got != len(childVals) {
		t.Fatalf("root has %d children; want %d", got, len(childVals))
	}
	return root, children, owners, tr, schema
}

// churnChild mutates child i's owner and propagates the new branch version
// to the root.
func churnChild(t *testing.T, child *Server, o *policy.Owner, schema *record.Schema, id string, v float64) {
	t.Helper()
	r := record.New(schema, id, o.ID)
	r.Values[0].Num = v
	o.AddRecords(r)
	child.refreshSummaries()
	child.reportToParent()
}

// queryMsg builds a handler-level query message.
func queryMsg(id, requester string, lo, hi float64) *wire.Message {
	return &wire.Message{
		Kind: wire.KindQuery,
		From: requester,
		Query: &wire.QueryDTO{
			ID:        id,
			Requester: requester,
			Preds:     []query.Predicate{query.NewRange("a0", lo, hi)},
			Start:     true,
			Scope:     -1,
		},
	}
}

// TestCacheHitServesRepeatQueryWithZeroChildRPCs pins the acceptance
// criterion with the transport's own call counter: a repeat resolve by a
// caching client costs exactly one RPC — the fingerprint revalidation to
// the entry server — and zero descent into the children, yet returns the
// identical record set.
func TestCacheHitServesRepeatQueryWithZeroChildRPCs(t *testing.T) {
	root, children, owners, tr, schema := newCacheStar(t, nil,
		rangeOf(0, 8), rangeOf(100, 8))
	cli := NewClient(tr, "tester")
	cli.CacheResults = true
	q := query.New("q", query.NewRange("a0", -1, 2000))

	recs1, stats1, err := cli.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CacheHit {
		t.Fatal("first resolve cannot be a cache hit")
	}
	if len(recs1) != 16 {
		t.Fatalf("first resolve got %d records; want 16", len(recs1))
	}
	if stats1.Contacted < 3 {
		t.Fatalf("first resolve contacted %d servers; want root + 2 children", stats1.Contacted)
	}

	before := tr.Stats().Calls
	recs2, stats2, err := cli.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	delta := tr.Stats().Calls - before
	if !stats2.CacheHit {
		t.Fatal("repeat resolve must be served from the client cache")
	}
	if delta != 1 {
		t.Fatalf("repeat resolve cost %d RPCs; want exactly 1 (fingerprint revalidation, zero child RPCs)", delta)
	}
	if len(recs2) != len(recs1) {
		t.Fatalf("cache hit returned %d records; want %d", len(recs2), len(recs1))
	}
	ids := func(rs []*record.Record) map[string]bool {
		m := make(map[string]bool, len(rs))
		for _, r := range rs {
			m[r.Owner+"/"+r.ID] = true
		}
		return m
	}
	if !reflect.DeepEqual(ids(recs1), ids(recs2)) {
		t.Fatal("cache hit returned a different record set")
	}

	// Churn child 0: its branch version moves, the root's fingerprint
	// moves, and the next resolve must fall back to a full descent that
	// sees the new record.
	churnChild(t, children[0], owners[0], schema, "fresh", 5)
	recs3, stats3, err := cli.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.CacheHit {
		t.Fatal("resolve after churn must not be served from the stale cache")
	}
	if len(recs3) != 17 {
		t.Fatalf("post-churn resolve got %d records; want 17 (the churned record included)", len(recs3))
	}

	// And the re-cached answer serves the next repeat again.
	before = tr.Stats().Calls
	_, stats4, err := cli.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats4.CacheHit || tr.Stats().Calls-before != 1 {
		t.Fatalf("post-churn repeat: hit=%v calls=%d; want hit with 1 RPC",
			stats4.CacheHit, tr.Stats().Calls-before)
	}
}

// TestResultCacheExactInvalidation proves invalidation precision on the
// server-side cache: churning child B's branch kills exactly the entries
// whose queries B could have answered, while entries over untouched
// branches keep hitting.
func TestResultCacheExactInvalidation(t *testing.T) {
	root, children, owners, _, schema := newCacheStar(t, nil,
		rangeOf(0, 6), rangeOf(100, 6))

	qA := func() *wire.Message { return queryMsg("qa", "tester", 0, 50) }
	qB := func() *wire.Message { return queryMsg("qb", "tester", 100, 150) }
	eval := func(m *wire.Message) *wire.QueryReply {
		rep := root.handleQuery(m)
		if err := wire.RemoteError(rep); err != nil {
			t.Fatal(err)
		}
		return rep.QueryRep
	}

	// Warm both entries, then prove they hit.
	eval(qA())
	eval(qB())
	if info := root.CacheInfo(); info.Entries != 2 || info.Misses != 2 {
		t.Fatalf("after warmup: %+v; want 2 entries, 2 misses", info)
	}
	eval(qA())
	eval(qB())
	if info := root.CacheInfo(); info.Hits != 2 || info.Invalidations != 0 {
		t.Fatalf("after repeats: %+v; want 2 hits, 0 invalidations", info)
	}

	// Churn branch B. qA's entry depends on B only as a non-match, and B
	// still does not match qA — the entry must survive. qB's entry
	// matched B, so it must die and re-evaluate to the new answer.
	churnChild(t, children[1], owners[1], schema, "fresh", 105)
	repA := eval(qA())
	if info := root.CacheInfo(); info.Hits != 3 || info.Invalidations != 0 {
		t.Fatalf("qA after churning B: %+v; want a surviving hit (3 hits, 0 invalidations)", info)
	}
	if len(repA.Redirects) != 1 || repA.Redirects[0].ID != children[0].ID() {
		t.Fatalf("qA redirects %+v; want exactly child A", repA.Redirects)
	}
	repB := eval(qB())
	if info := root.CacheInfo(); info.Invalidations != 1 || info.Hits != 3 {
		t.Fatalf("qB after churning B: %+v; want exactly 1 invalidation", info)
	}
	if len(repB.Redirects) != 1 || repB.Redirects[0].Records != 7 {
		t.Fatalf("qB redirects %+v; want child B with 7 records", repB.Redirects)
	}

	// The re-cached qB entry hits again.
	eval(qB())
	if info := root.CacheInfo(); info.Hits != 4 {
		t.Fatalf("qB re-repeat: %+v; want 4 hits", info)
	}
}

// TestCachedAnswersMatchFreshUnderChurn is the property test: under
// randomized churn of child branches, root-attached owner records and
// per-requester views, a cached answer is always byte-identical to a fresh
// evaluation of the same query — the traced path bypasses the cache, so
// encoding both replies and comparing bytes is an exact oracle.
func TestCachedAnswersMatchFreshUnderChurn(t *testing.T) {
	root, children, owners, _, schema := newCacheStar(t, nil,
		rangeOf(0, 10), rangeOf(60, 10), rangeOf(120, 10))
	rootOwner := policy.NewOwner("oroot", schema, nil)
	rootOwner.SetRecords(numRecords(schema, "oroot", "oroot", rangeOf(200, 10)))
	if err := root.AttachOwner(rootOwner); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	queries := make([]*wire.Message, 0, 5)
	for i := 0; i < 5; i++ {
		lo := rng.Float64() * 220
		queries = append(queries, queryMsg(fmt.Sprintf("q%d", i), "tester", lo, lo+20+rng.Float64()*80))
	}
	fresh := func(m *wire.Message) []byte {
		tm := &wire.Message{Kind: m.Kind, From: m.From, Query: &wire.QueryDTO{}}
		*tm.Query = *m.Query
		tm.Query.Trace = true
		rep := root.handleQuery(tm)
		if err := wire.RemoteError(rep); err != nil {
			t.Fatal(err)
		}
		rep.QueryRep.Trace = nil // strip the per-request trace payload
		data, err := wire.Encode(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cached := func(m *wire.Message) []byte {
		rep := root.handleQuery(m)
		if err := wire.RemoteError(rep); err != nil {
			t.Fatal(err)
		}
		data, err := wire.Encode(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial := 0
	for round := 0; round < 40; round++ {
		switch rng.Intn(4) {
		case 0: // grow a random child branch
			i := rng.Intn(len(children))
			serial++
			churnChild(t, children[i], owners[i], schema,
				fmt.Sprintf("n%03d", serial), rng.Float64()*180)
		case 1: // restate a branch unchanged (anti-entropy shape)
			i := rng.Intn(len(children))
			children[i].refreshSummaries()
			children[i].reportToParent()
		case 2: // mutate the root owner's record set
			serial++
			r := record.New(schema, fmt.Sprintf("ro%03d", serial), "oroot")
			r.Values[0].Num = 200 + rng.Float64()*20
			rootOwner.AddRecords(r)
		case 3: // flip the requester's view
			cut := 200 + rng.Float64()*20
			rootOwner.Policy.SetView("tester", policy.View{
				Name:   "cut",
				Filter: func(r *record.Record) bool { return r.Values[0].Num < cut },
			})
		}
		for _, m := range queries {
			got := cached(m)
			want := fresh(m)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d query %s: cached reply differs from fresh evaluation", round, m.Query.ID)
			}
		}
	}
	if info := root.CacheInfo(); info.Hits == 0 {
		t.Fatal("property run never hit the cache — the oracle tested nothing")
	}
}

// TestResultCacheConcurrentChurnHammer drives lookups and invalidating
// churn concurrently; under -race (the tier1 race gate runs this package)
// it proves the cache's locking, and the final check proves the cache
// still answers exactly like a fresh evaluation afterward.
func TestResultCacheConcurrentChurnHammer(t *testing.T) {
	root, children, owners, _, schema := newCacheStar(t, nil,
		rangeOf(0, 8), rangeOf(80, 8))
	rootOwner := policy.NewOwner("oroot", schema, nil)
	rootOwner.SetRecords(numRecords(schema, "oroot", "oroot", rangeOf(160, 8)))
	if err := root.AttachOwner(rootOwner); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := rng.Float64() * 180
				rep := root.handleQuery(queryMsg(fmt.Sprintf("h%d", i%7), "tester", lo, lo+40))
				if err := wire.RemoteError(rep); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Add(2)
	go func() { // churn child branches
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := i % len(children)
			churnChild(t, children[c], owners[c], schema,
				fmt.Sprintf("hc%04d", i), float64((i*13)%160))
		}
	}()
	go func() { // churn local owner state and views
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := record.New(schema, fmt.Sprintf("hr%04d", i), "oroot")
			r.Values[0].Num = 160 + float64(i%8)
			rootOwner.AddRecords(r)
			cut := 160 + float64(i%10)
			rootOwner.Policy.SetView("tester", policy.View{
				Name:   "cut",
				Filter: func(r *record.Record) bool { return r.Values[0].Num < cut },
			})
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// After the dust settles the cache must still be exact.
	m := queryMsg("after", "tester", 0, 250)
	rep1 := root.handleQuery(m)
	tm := queryMsg("after", "tester", 0, 250)
	tm.Query.Trace = true
	rep2 := root.handleQuery(tm)
	if err := wire.RemoteError(rep1); err != nil {
		t.Fatal(err)
	}
	if err := wire.RemoteError(rep2); err != nil {
		t.Fatal(err)
	}
	rep2.QueryRep.Trace = nil
	if !reflect.DeepEqual(rep1.QueryRep, rep2.QueryRep) {
		t.Fatal("cached reply differs from fresh evaluation after concurrent churn")
	}
}
