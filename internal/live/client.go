package live

import (
	"container/list"
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// DefaultClientCacheBytes is the client result cache's byte budget applied
// when CacheBytes is zero.
const DefaultClientCacheBytes = 1 << 20

// Client resolves queries against a live ROADS deployment by following
// redirects, querying redirect targets concurrently — one goroutine per
// outstanding server contact, exactly the fan-out the overlay enables.
// Each contact is bounded by Timeout, retried with exponential backoff,
// and — when it stays unreachable — failed over to alternate replica
// holders of the same branch, so a crashed or partitioned server costs
// retries rather than its whole subtree.
type Client struct {
	tr transport.Transport
	// Requester is the identity presented to owners' sharing policies.
	Requester string
	// MaxConcurrent bounds parallel contacts (default 16).
	MaxConcurrent int
	// Timeout bounds each individual server contact (default
	// wire.Deadline). The overall resolve deadline comes from the
	// caller's context; each contact's budget is the smaller of the two.
	Timeout time.Duration
	// Retries is how many times a failed contact is retried (on top of
	// the first attempt) before failing over to alternates. NewClient
	// sets 1; negative disables retries.
	Retries int
	// Backoff is the base retry delay, doubled per attempt with ±25%
	// jitter (default 20ms, capped at 1s).
	Backoff time.Duration
	// Trace enables per-hop query tracing: the client stamps each resolve
	// with a trace ID, asks every contacted server for its evaluation
	// trace (wire.TraceInfo), and records each contact as a HopTrace in
	// QueryStats.Hops — including the contacts that failed and the
	// failover stand-ins spawned for them. Tracing adds a few fields per
	// hop on the wire and is off by default.
	Trace bool
	// Priority is the admission priority class stamped on every contact
	// (wire v5; see wire.PriorityNormal/Low/High). Zero claims the normal
	// class and keeps queries encodable at pre-v5 versions.
	Priority uint8
	// CacheResults caches each resolve's deduplicated record set keyed by
	// (entry address, normalized query) together with the entry server's
	// reply fingerprint. A repeat resolve then sends one revalidation
	// query carrying the fingerprint: if the entry server answers
	// NotModified the cached records are returned with zero descent — the
	// whole repeat costs exactly one RPC. Any fingerprint change falls
	// back to a full resolve. Off by default.
	CacheResults bool
	// CacheBytes bounds the client cache (0 = DefaultClientCacheBytes).
	CacheBytes int64

	rngMu sync.Mutex
	rng   *rand.Rand

	// cacheMu guards the client-side result cache (an LRU over resolved
	// record sets).
	cacheMu    sync.Mutex
	cacheLRU   *list.List
	cacheByKey map[string]*list.Element
	cacheBytes int64

	// downMu guards downgraded: addresses that rejected a wire-v5 payload
	// ("unknown binary codec version"); contacts to them retry and stay
	// pre-v5 from then on — the optimistic-probe negotiation v3 and v4
	// also use.
	downMu     sync.Mutex
	downgraded map[string]bool
}

// NewClient creates a client over the transport.
func NewClient(tr transport.Transport, requester string) *Client {
	// Seed from the requester name AND the clock: the name alone would give
	// every process the same jitter and — worse — the same trace IDs, making
	// traces from separate runs indistinguishable in server logs.
	h := fnv.New64a()
	_, _ = h.Write([]byte(requester))
	return &Client{
		tr:            tr,
		Requester:     requester,
		MaxConcurrent: 16,
		Retries:       1,
		rng:           rand.New(rand.NewSource(int64(h.Sum64()) ^ time.Now().UnixNano())),
	}
}

// QueryStats reports how a resolution unfolded.
type QueryStats struct {
	// Contacted is the number of servers that answered.
	Contacted int
	// Failed is the number of contacts that errored mid-resolution
	// (counting a contact once, however many retry attempts it burned). A
	// resolve with Failed > 0 returned real records but may not have
	// covered the whole federation — callers needing completeness must
	// check it (a partial answer is not an error, so err stays nil once
	// any server has answered).
	Failed int
	// Retried counts retry attempts beyond each contact's first try.
	Retried int
	// FailedOver counts failed contacts whose alternate replica holders
	// were contacted in their stead.
	FailedOver int
	// Coverage estimates the fraction of known subtree records the
	// resolve reached: every redirect carries the target region's record
	// count, and targets that never answered (nor any alternate for them)
	// subtract theirs. 1.0 means every discovered region answered; it
	// cannot see regions no surviving server advertised.
	Coverage float64
	// Errors describes each failed contact ("addr: cause").
	Errors []string
	// Elapsed is the wall-clock total response time.
	Elapsed time.Duration
	// Servers lists contacted server IDs.
	Servers []string
	// TraceID identifies this resolve in server logs (set when the client
	// has Trace enabled).
	TraceID string
	// Hops records every server contact of a traced resolve, in completion
	// order (empty unless the client has Trace enabled).
	Hops []HopTrace
	// CacheHit reports the resolve was served from the client cache: the
	// entry server confirmed the cached fingerprint (NotModified), so the
	// records returned are the cached set and no descent happened.
	CacheHit bool
	// Coarse counts contacts that answered with a degraded summary-only
	// reply (admission control or budget shedding, wire v5): no records,
	// only an estimate. CoarseEstimate sums those servers' estimated
	// match counts.
	Coarse         int
	CoarseEstimate float64
}

// HopTrace is one server contact of a traced resolve: how the target was
// discovered, how the contact went, and — when the server answered — its
// own evaluation trace.
type HopTrace struct {
	// Kind is how the contact was discovered: "start" (the entry server),
	// "redirect" (named in a query reply) or "failover" (an alternate
	// stood in for a failed contact).
	Kind string
	// Addr is the address contacted; ServerID the responder's identity
	// (empty when the contact never answered).
	Addr     string
	ServerID string
	// Via is the server that named this target (empty for the start hop).
	Via string
	// Path is the redirect chain from the start server to this contact
	// (server IDs, excluding the contact itself), capped at
	// wire.MaxTracePath entries.
	Path []string
	// Attempts is how many attempts the contact burned (1 = no retries).
	Attempts int
	// RTT is the round-trip time of the final attempt.
	RTT time.Duration
	// Records and Redirects count what the reply carried.
	Records   int
	Redirects int
	// Err is the final error when the contact failed.
	Err string
	// Info is the server-side evaluation trace (eval latency, match
	// decisions), present when the server answered.
	Info *wire.TraceInfo
}

// Resolve runs the query starting at startAddr and gathers all matching
// records (deduplicated by record ID + owner), searching the whole
// hierarchy.
func (c *Client) Resolve(startAddr string, q *query.Query) ([]*record.Record, QueryStats, error) {
	return c.ResolveScopedContext(context.Background(), startAddr, q, -1)
}

// ResolveContext is Resolve bounded by ctx: the resolve returns once ctx
// expires, with whatever records had been gathered by then.
func (c *Client) ResolveContext(ctx context.Context, startAddr string, q *query.Query) ([]*record.Record, QueryStats, error) {
	return c.ResolveScopedContext(ctx, startAddr, q, -1)
}

// ResolveScoped is Resolve with the paper's §III-C scope control: the
// search is bounded to the branch of the start server's ancestor `scope`
// levels up (0 = only the start server's subtree, negative = everything).
func (c *Client) ResolveScoped(startAddr string, q *query.Query, scope int) ([]*record.Record, QueryStats, error) {
	return c.ResolveScopedContext(context.Background(), startAddr, q, scope)
}

// target is one server contact the resolve owes: where, how many records
// its region covers (0 = unknown), and who can stand in for it. The trace
// fields (kind, via, path) ride along only so traced resolves can label
// the hop.
type target struct {
	addr       string
	records    uint64
	alternates []wire.RedirectInfo
	kind       string
	via        string
	path       []string
}

// extendPath returns path + next, shared-safely (fresh backing array) and
// capped at wire.MaxTracePath entries — beyond the cap the chain stops
// growing rather than the resolve stopping.
func extendPath(path []string, next string) []string {
	if len(path) >= wire.MaxTracePath {
		return path
	}
	out := make([]string, 0, len(path)+1)
	out = append(out, path...)
	return append(out, next)
}

// ResolveScopedContext is ResolveScoped bounded by ctx. Every server
// contact gets at most min(Timeout, remaining deadline); failed contacts
// are retried with backoff and then failed over to the alternate replica
// holders the redirecting server named, so the resolve routes around dead
// or partitioned servers instead of silently dropping their subtrees.
func (c *Client) ResolveScopedContext(ctx context.Context, startAddr string, q *query.Query, scope int) ([]*record.Record, QueryStats, error) {
	begin := time.Now()
	stats := QueryStats{Coverage: 1}
	if c.Trace {
		stats.TraceID = c.newTraceID()
	}
	q = q.Clone()
	q.Requester = c.Requester

	maxPar := c.MaxConcurrent
	if maxPar <= 0 {
		maxPar = 16
	}
	sem := make(chan struct{}, maxPar)
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = wire.Deadline
	}
	retries := c.Retries
	if retries < 0 {
		retries = 0
	}

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		visited = make(map[string]bool)
		records []*record.Record
		seenRec = make(map[string]bool)
		firstEr error
		// Coverage accounting: known sums the record estimates of every
		// discovered redirect region, reached those whose target (or a
		// stand-in alternate) answered.
		known, reached uint64
		// startFP is the fingerprint the entry server stamped on its full
		// answer; the resolve's record set is cached under it at the end.
		startFP uint64
	)

	// Client cache: the cached record set and fingerprint for this exact
	// (entry address, normalized query) pair, captured up front so a
	// NotModified answer always has the records it vouches for.
	var ckey string
	var cachedRecs []*record.Record
	var cachedFP uint64
	if c.CacheResults {
		ckey = startAddr + "\x00" + cacheKey(c.Requester, scope, true, q.Preds)
		cachedRecs, cachedFP = c.cacheGet(ckey)
	}

	var contact func(t target, start bool)
	contact = func(t target, start bool) {
		defer wg.Done()
		sem <- struct{}{}
		dto := wire.FromQuery(q, start)
		dto.Scope = scope
		if c.Trace {
			dto.Trace = true
			dto.TraceID = stats.TraceID
			dto.Path = t.path
		}
		if !c.isDowngraded(t.addr) {
			// Optimistic wire-v5 fields; a peer that rejects them is
			// remembered and re-contacted pre-v5.
			dto.Priority = c.Priority
			if start && c.CacheResults {
				dto.WantFingerprint = true
				dto.CacheFingerprint = cachedFP
			}
		}
		var rep *wire.Message
		var err error
		var attempts int
		var lastRTT time.Duration
		for attempt := 0; ; attempt++ {
			attempts = attempt + 1
			cctx, cancel := context.WithTimeout(ctx, timeout)
			// The budget the server sees is this contact's real deadline —
			// the per-contact timeout clipped by the overall resolve
			// deadline — so it can shed work the client has abandoned.
			if dl, ok := cctx.Deadline(); ok {
				dto.Budget = time.Until(dl)
			}
			sent := time.Now()
			rep, err = c.tr.CallContext(cctx, t.addr, &wire.Message{
				Kind:  wire.KindQuery,
				From:  c.Requester,
				Query: dto,
			})
			lastRTT = time.Since(sent)
			cancel()
			if err == nil {
				err = wire.RemoteError(rep)
			}
			if err == nil && rep.QueryRep == nil {
				err = fmt.Errorf("live: %s returned %v to a query", rep.From, rep.Kind)
			}
			if err != nil && isV5Reject(err) &&
				(dto.Priority != 0 || dto.WantFingerprint || dto.CacheFingerprint != 0) {
				// The peer cannot decode wire v5: remember it and re-send
				// this contact pre-v5 immediately (not charged as a retry).
				c.markDowngraded(t.addr)
				dto.Priority, dto.WantFingerprint, dto.CacheFingerprint = 0, false, 0
				attempt--
				continue
			}
			if err == nil || attempt >= retries || ctx.Err() != nil {
				break
			}
			mu.Lock()
			stats.Retried++
			mu.Unlock()
			if !c.backoff(ctx, attempt) {
				break
			}
		}
		<-sem
		mu.Lock()
		defer mu.Unlock()
		var hop *HopTrace
		if c.Trace {
			stats.Hops = append(stats.Hops, HopTrace{
				Kind:     t.kind,
				Addr:     t.addr,
				Via:      t.via,
				Path:     t.path,
				Attempts: attempts,
				RTT:      lastRTT,
			})
			hop = &stats.Hops[len(stats.Hops)-1]
		}
		if err != nil {
			if hop != nil {
				hop.Err = err.Error()
			}
			if firstEr == nil {
				firstEr = err
			}
			stats.Failed++
			stats.Errors = append(stats.Errors, fmt.Sprintf("%s: %v", t.addr, err))
			// Fail over: the redirecting server named other holders of
			// this branch (the target's children); contacting them keeps
			// the subtree covered minus only the target's own local data.
			spawned := false
			for _, alt := range t.alternates {
				if visited[alt.Addr] {
					continue
				}
				visited[alt.Addr] = true
				spawned = true
				wg.Add(1)
				go contact(target{
					addr: alt.Addr, records: alt.Records, alternates: alt.Alternates,
					kind: "failover", via: t.via, path: t.path,
				}, false)
			}
			if spawned {
				stats.FailedOver++
			}
			return
		}
		if hop != nil {
			hop.ServerID = rep.From
			hop.Records = len(rep.QueryRep.Records)
			hop.Redirects = len(rep.QueryRep.Redirects)
			hop.Info = rep.QueryRep.Trace
		}
		stats.Contacted++
		stats.Servers = append(stats.Servers, rep.From)
		reached += t.records
		if rep.QueryRep.NotModified {
			// The entry server confirmed the cached fingerprint: the
			// cached record set is current and there is nothing to
			// descend into.
			stats.CacheHit = true
			for _, r := range cachedRecs {
				key := r.Owner + "/" + r.ID
				if !seenRec[key] {
					seenRec[key] = true
					records = append(records, r)
				}
			}
			return
		}
		if rep.QueryRep.Coarse {
			// Degraded summary-only answer: the server shed the
			// evaluation but vouches for roughly this many matches.
			stats.Coarse++
			stats.CoarseEstimate += rep.QueryRep.CoarseEstimate
			return
		}
		if start && rep.QueryRep.Fingerprint != 0 {
			startFP = rep.QueryRep.Fingerprint
		}
		for _, dto := range rep.QueryRep.Records {
			key := dto.Owner + "/" + dto.ID
			if !seenRec[key] {
				seenRec[key] = true
				records = append(records, &record.Record{ID: dto.ID, Owner: dto.Owner, Values: dto.Values})
			}
		}
		nextPath := t.path
		if c.Trace {
			nextPath = extendPath(t.path, rep.From)
		}
		for _, rd := range rep.QueryRep.Redirects {
			if visited[rd.Addr] {
				continue
			}
			visited[rd.Addr] = true
			known += rd.Records
			wg.Add(1)
			go contact(target{
				addr: rd.Addr, records: rd.Records, alternates: rd.Alternates,
				kind: "redirect", via: rep.From, path: nextPath,
			}, false)
		}
	}

	visited[startAddr] = true
	wg.Add(1)
	go contact(target{addr: startAddr, kind: "start"}, true)
	wg.Wait()

	stats.Elapsed = time.Since(begin)
	if known > 0 {
		stats.Coverage = float64(reached) / float64(known)
		if stats.Coverage > 1 {
			stats.Coverage = 1 // alternates can over-count a region
		}
	}
	if firstEr != nil && stats.Contacted == 0 {
		return nil, stats, firstEr
	}
	if c.CacheResults && !stats.CacheHit && startFP != 0 &&
		stats.Failed == 0 && stats.Coarse == 0 {
		// Cache only complete resolves: a partial or degraded answer
		// replayed through NotModified would pin its gaps until the
		// fingerprint happens to move.
		c.cacheStore(ckey, records, startFP)
	}
	return records, stats, nil
}

// isV5Reject reports whether the error is a peer rejecting a wire-v5
// payload — the decoder's unknown-version sentinel, surfaced through the
// transport as the call error.
func isV5Reject(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown binary codec version")
}

// isDowngraded reports whether addr previously rejected a v5 payload.
func (c *Client) isDowngraded(addr string) bool {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	return c.downgraded[addr]
}

// markDowngraded remembers addr as pre-v5.
func (c *Client) markDowngraded(addr string) {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	if c.downgraded == nil {
		c.downgraded = make(map[string]bool)
	}
	c.downgraded[addr] = true
}

// clientCacheEntry is one cached resolve: the deduplicated record set and
// the entry-server fingerprint that vouches for it.
type clientCacheEntry struct {
	key     string
	records []*record.Record
	fp      uint64
	size    int64
}

// cacheGet returns the cached record set and fingerprint for the key
// (nil, 0 on miss), refreshing its LRU position.
func (c *Client) cacheGet(key string) ([]*record.Record, uint64) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	el, ok := c.cacheByKey[key]
	if !ok {
		return nil, 0
	}
	c.cacheLRU.MoveToFront(el)
	e := el.Value.(*clientCacheEntry)
	return e.records, e.fp
}

// cacheStore caches a resolve's record set under the key, evicting LRU
// entries past the byte budget.
func (c *Client) cacheStore(key string, records []*record.Record, fp uint64) {
	size := int64(len(key)) + 128
	for _, r := range records {
		size += int64(len(r.ID)+len(r.Owner)+48) + int64(len(r.Values))*24
	}
	budget := c.CacheBytes
	if budget <= 0 {
		budget = DefaultClientCacheBytes
	}
	if size > budget {
		return
	}
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if c.cacheByKey == nil {
		c.cacheByKey = make(map[string]*list.Element)
		c.cacheLRU = list.New()
	}
	if el, ok := c.cacheByKey[key]; ok {
		c.cacheBytes -= el.Value.(*clientCacheEntry).size
		c.cacheLRU.Remove(el)
		delete(c.cacheByKey, key)
	}
	e := &clientCacheEntry{key: key, records: records, fp: fp, size: size}
	c.cacheByKey[key] = c.cacheLRU.PushFront(e)
	c.cacheBytes += size
	for c.cacheBytes > budget {
		back := c.cacheLRU.Back()
		if back == nil {
			break
		}
		old := back.Value.(*clientCacheEntry)
		c.cacheBytes -= old.size
		c.cacheLRU.Remove(back)
		delete(c.cacheByKey, old.key)
	}
}

// newTraceID draws a 64-bit hex trace ID from the client's seeded RNG —
// unique enough to grep a cluster's logs for one resolve, deterministic
// enough that replayed test runs produce the same IDs.
func (c *Client) newTraceID() string {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil { // zero-valued Client (not via NewClient)
		c.rng = rand.New(rand.NewSource(1))
	}
	return fmt.Sprintf("%016x", c.rng.Uint64())
}

// backoff sleeps for the attempt's exponential backoff with ±25% jitter;
// it reports false when ctx expired instead.
func (c *Client) backoff(ctx context.Context, attempt int) bool {
	base := c.Backoff
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > time.Second {
		d = time.Second
	}
	c.rngMu.Lock()
	if c.rng == nil { // zero-valued Client (not via NewClient)
		c.rng = rand.New(rand.NewSource(1))
	}
	d = time.Duration(float64(d) * (0.75 + 0.5*c.rng.Float64()))
	c.rngMu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// Status fetches a server's operational snapshot.
func (c *Client) Status(addr string) (*wire.Status, error) {
	return c.StatusContext(context.Background(), addr)
}

// StatusContext is Status bounded by ctx.
func (c *Client) StatusContext(ctx context.Context, addr string) (*wire.Status, error) {
	rep, err := c.tr.CallContext(ctx, addr, &wire.Message{Kind: wire.KindStatus, From: c.Requester})
	if err != nil {
		return nil, err
	}
	if err := wire.RemoteError(rep); err != nil {
		return nil, err
	}
	if rep.Status == nil {
		return nil, fmt.Errorf("live: %s returned %v to a status request", rep.From, rep.Kind)
	}
	return rep.Status, nil
}
