package live

import (
	"fmt"
	"sync"
	"time"

	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// Client resolves queries against a live ROADS deployment by following
// redirects, querying redirect targets concurrently — one goroutine per
// outstanding server contact, exactly the fan-out the overlay enables.
type Client struct {
	tr transport.Transport
	// Requester is the identity presented to owners' sharing policies.
	Requester string
	// MaxConcurrent bounds parallel contacts (default 16).
	MaxConcurrent int
}

// NewClient creates a client over the transport.
func NewClient(tr transport.Transport, requester string) *Client {
	return &Client{tr: tr, Requester: requester, MaxConcurrent: 16}
}

// QueryStats reports how a resolution unfolded.
type QueryStats struct {
	// Contacted is the number of servers that answered.
	Contacted int
	// Failed is the number of contacts that errored mid-resolution. A
	// resolve with Failed > 0 returned real records but may not have
	// covered the whole federation — callers needing completeness must
	// check it (a partial answer is not an error, so err stays nil once
	// any server has answered).
	Failed int
	// Errors describes each failed contact ("addr: cause").
	Errors []string
	// Elapsed is the wall-clock total response time.
	Elapsed time.Duration
	// Servers lists contacted server IDs.
	Servers []string
}

// Resolve runs the query starting at startAddr and gathers all matching
// records (deduplicated by record ID + owner), searching the whole
// hierarchy.
func (c *Client) Resolve(startAddr string, q *query.Query) ([]*record.Record, QueryStats, error) {
	return c.ResolveScoped(startAddr, q, -1)
}

// ResolveScoped is Resolve with the paper's §III-C scope control: the
// search is bounded to the branch of the start server's ancestor `scope`
// levels up (0 = only the start server's subtree, negative = everything).
func (c *Client) ResolveScoped(startAddr string, q *query.Query, scope int) ([]*record.Record, QueryStats, error) {
	begin := time.Now()
	stats := QueryStats{}
	q = q.Clone()
	q.Requester = c.Requester

	maxPar := c.MaxConcurrent
	if maxPar <= 0 {
		maxPar = 16
	}
	sem := make(chan struct{}, maxPar)

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		visited = make(map[string]bool)
		records []*record.Record
		seenRec = make(map[string]bool)
		firstEr error
	)

	var contact func(addr string, start bool)
	contact = func(addr string, start bool) {
		defer wg.Done()
		sem <- struct{}{}
		dto := wire.FromQuery(q, start)
		dto.Scope = scope
		rep, err := c.tr.Call(addr, &wire.Message{
			Kind:  wire.KindQuery,
			From:  c.Requester,
			Query: dto,
		})
		<-sem
		mu.Lock()
		defer mu.Unlock()
		if err == nil {
			err = wire.RemoteError(rep)
		}
		if err == nil && rep.QueryRep == nil {
			err = fmt.Errorf("live: %s returned %v to a query", rep.From, rep.Kind)
		}
		if err != nil {
			if firstEr == nil {
				firstEr = err
			}
			stats.Failed++
			stats.Errors = append(stats.Errors, fmt.Sprintf("%s: %v", addr, err))
			return
		}
		stats.Contacted++
		stats.Servers = append(stats.Servers, rep.From)
		for _, dto := range rep.QueryRep.Records {
			key := dto.Owner + "/" + dto.ID
			if !seenRec[key] {
				seenRec[key] = true
				records = append(records, &record.Record{ID: dto.ID, Owner: dto.Owner, Values: dto.Values})
			}
		}
		for _, rd := range rep.QueryRep.Redirects {
			if visited[rd.Addr] {
				continue
			}
			visited[rd.Addr] = true
			wg.Add(1)
			go contact(rd.Addr, false)
		}
	}

	visited[startAddr] = true
	wg.Add(1)
	go contact(startAddr, true)
	wg.Wait()

	stats.Elapsed = time.Since(begin)
	if firstEr != nil && stats.Contacted == 0 {
		return nil, stats, firstEr
	}
	return records, stats, nil
}

// Status fetches a server's operational snapshot.
func (c *Client) Status(addr string) (*wire.Status, error) {
	rep, err := c.tr.Call(addr, &wire.Message{Kind: wire.KindStatus, From: c.Requester})
	if err != nil {
		return nil, err
	}
	if err := wire.RemoteError(rep); err != nil {
		return nil, err
	}
	if rep.Status == nil {
		return nil, fmt.Errorf("live: %s returned %v to a status request", rep.From, rep.Kind)
	}
	return rep.Status, nil
}
