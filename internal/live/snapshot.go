package live

import (
	"sort"

	"roads/internal/policy"
	"roads/internal/summary"
	"roads/internal/wire"
)

// snapChild is one child branch as the query path sees it: the summary
// queries are matched against, and the fully built redirect (record-count
// estimate plus the child's own children as failover alternates).
type snapChild struct {
	branch *summary.Summary
	ri     wire.RedirectInfo
	// dep hashes everything about this child a query reply can depend on:
	// its branch content version, address and failover alternates. The
	// result cache stores the dep hashes an entry was computed from and
	// revalidates them in lockstep on lookup, so a changed branch kills
	// exactly the entries it could have influenced. Zero (a pre-v3 child
	// with no content version) marks the child uncacheable.
	dep uint64
}

// snapReplica is one overlay replica as the query path sees it. match is
// the summary queries are tested against — the origin's branch for
// sibling-class replicas, its local data for ancestors (an ancestor
// redirect covers only the ancestor's own data, which nothing replicates,
// so ancestors also carry no alternates).
type snapReplica struct {
	level int
	match *summary.Summary
	ri    wire.RedirectInfo
	// dep mirrors snapChild.dep for the replica: origin identity, level
	// (scope filtering keys on it) and content version. Zero marks it
	// uncacheable (unversioned push).
	dep uint64
}

// routingSnapshot is the immutable routing state the hot paths read. Write
// paths (joins, leaves, summary reports, replica pushes, pruning,
// heartbeat root-path updates) rebuild it copy-on-write under s.mu and
// publish it through s.snap, so handleQuery and handleStatus evaluate one
// consistent view loaded with a single atomic pointer read and never take
// the server lock. Everything reachable from a published snapshot is
// frozen: summaries are replaced wholesale on refresh (never mutated in
// place), redirect slices are rebuilt here, string slices are copied.
type routingSnapshot struct {
	parentID      string
	parentAddr    string
	rootPath      []string
	rootPathAddrs []string
	owners        []*policy.Owner
	localSummary  *summary.Summary
	branchSummary *summary.Summary

	// children is every current child, sorted by ID (deterministic
	// redirect order). replicas is sorted by origin ID and pre-filtered:
	// entries shadowed by this server itself or by a current child are
	// dropped at build time (the child's own branch summary is always the
	// fresher route), as are ancestor entries that pushed no local
	// summary. The per-query work is reduced to pure matching.
	children []snapChild
	replicas []snapReplica

	// numReplicas counts every held replica, including ones filtered out
	// of the redirect candidates, so Status/NumReplicas keep reporting the
	// raw overlay size.
	numReplicas int
	// covered is the precomputed CoveredRecords value: own branch plus
	// each non-ancestor replica's branch plus each ancestor's local data.
	covered uint64

	// fpBase folds every child and replica dep hash into the snapshot's
	// routing fingerprint base; queryFingerprint combines it with the live
	// store epoch and owner generations to stamp wire-v5 replies. Zero
	// (some dependency is unversioned) suppresses fingerprints — clients
	// then get no revalidation token and fall back to full resolves.
	fpBase uint64
}

// publishSnapshotLocked rebuilds the routing snapshot from the live maps
// and publishes it. Callers hold s.mu; every write path that changes
// routing-visible state must call this before releasing the lock —
// forgetting to means queries keep routing on the stale view until the
// next summary tick republishes.
func (s *Server) publishSnapshotLocked() {
	snap := &routingSnapshot{
		parentID:      s.parentID,
		parentAddr:    s.parentAddr,
		rootPath:      append([]string(nil), s.rootPath...),
		rootPathAddrs: append([]string(nil), s.rootPathAddrs...),
		owners:        append([]*policy.Owner(nil), s.owners...),
		localSummary:  s.localSummary,
		branchSummary: s.branchSummary,
		numReplicas:   len(s.replicas),
	}
	if s.branchSummary != nil {
		snap.covered = s.branchSummary.Records
	}
	if n := len(s.children); n > 0 {
		snap.children = make([]snapChild, 0, n)
		for _, c := range s.children {
			sc := snapChild{
				branch: c.branch,
				ri:     wire.RedirectInfo{ID: c.id, Addr: c.addr, Alternates: c.kids},
			}
			if c.branch != nil {
				sc.ri.Records = c.branch.Records
			}
			if c.version != 0 {
				dh := newDepHasher()
				dh.u64(c.version)
				dh.str(c.id)
				dh.str(c.addr)
				dh.redirects(c.kids)
				sc.dep = dh.h
			}
			snap.children = append(snap.children, sc)
		}
		sort.Slice(snap.children, func(i, j int) bool {
			return snap.children[i].ri.ID < snap.children[j].ri.ID
		})
	}
	if n := len(s.replicas); n > 0 {
		snap.replicas = make([]snapReplica, 0, n)
		for id, r := range s.replicas {
			if r.ancestor {
				if r.local != nil {
					snap.covered += r.local.Records
				}
			} else if r.branch != nil {
				snap.covered += r.branch.Records
			}
			if id == s.cfg.ID {
				continue
			}
			if _, isChild := s.children[id]; isChild {
				continue
			}
			sr := snapReplica{level: r.level}
			version := r.version
			if r.ancestor {
				if r.local == nil {
					continue
				}
				sr.match = r.local
				sr.ri = wire.RedirectInfo{ID: r.originID, Addr: r.originAddr, Records: r.local.Records}
				// The ancestor route matches on its local data, which the
				// push versions independently of the branch.
				version = r.local.Version
			} else {
				sr.match = r.branch
				sr.ri = wire.RedirectInfo{
					ID:         r.originID,
					Addr:       r.originAddr,
					Records:    r.branch.Records,
					Alternates: r.fallbacks,
				}
			}
			if version != 0 {
				dh := newDepHasher()
				dh.u64(version)
				dh.str(r.originID)
				dh.str(r.originAddr)
				dh.u64(uint64(r.level))
				if r.ancestor {
					dh.u64(1)
				} else {
					dh.u64(0)
					dh.redirects(r.fallbacks)
				}
				sr.dep = dh.h
			}
			snap.replicas = append(snap.replicas, sr)
		}
		sort.Slice(snap.replicas, func(i, j int) bool {
			return snap.replicas[i].ri.ID < snap.replicas[j].ri.ID
		})
	}
	fb := newDepHasher()
	fb.u64(uint64(len(snap.children)))
	for i := range snap.children {
		if snap.children[i].dep == 0 {
			fb.h = 0
			break
		}
		fb.u64(snap.children[i].dep)
	}
	if fb.h != 0 {
		fb.u64(uint64(len(snap.replicas)))
		for i := range snap.replicas {
			if snap.replicas[i].dep == 0 {
				fb.h = 0
				break
			}
			fb.u64(snap.replicas[i].dep)
		}
	}
	snap.fpBase = fb.h
	s.snap.Store(snap)
}
