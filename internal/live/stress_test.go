package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/summary"
	"roads/internal/transport"
	"roads/internal/wire"
)

// stressServer starts one parked-loop server holding a few records.
func stressServer(t *testing.T) *Server {
	t.Helper()
	schema := record.DefaultSchema(2)
	cfg := DefaultConfig("S", "addr-S", schema)
	cfg.AggregateEvery = time.Hour
	cfg.HeartbeatEvery = time.Hour
	srv, err := NewServer(cfg, transport.NewChan())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	o := policy.NewOwner("own-S", schema, nil)
	recs := make([]*record.Record, 4)
	for j := range recs {
		r := record.New(schema, fmt.Sprintf("r%d", j), o.ID)
		r.SetNum(0, 0.5)
		r.SetNum(1, 0.5)
		recs[j] = r
	}
	o.SetRecords(recs)
	if err := srv.AttachOwner(o); err != nil {
		t.Fatal(err)
	}
	srv.refreshSummaries()
	return srv
}

// stressSummary builds a summary matching the match-all query, with its
// record count pinned to n so tests can tell replica generations apart.
func stressSummary(t *testing.T, schema *record.Schema, n uint64) *wire.SummaryDTO {
	t.Helper()
	r := record.New(schema, "seed", "own")
	r.SetNum(0, 0.5)
	r.SetNum(1, 0.5)
	cfg := summary.DefaultConfig()
	cfg.Buckets = 16
	sum, err := summary.FromRecords(schema, cfg, []*record.Record{r})
	if err != nil {
		t.Fatal(err)
	}
	sum.Records = n
	return wire.FromSummary(sum)
}

func stressQueryMsg() *wire.Message {
	q := query.New("stress-q", query.NewRange("a0", 0, 1))
	return &wire.Message{Kind: wire.KindQuery, From: "t", Query: wire.FromQuery(q, true)}
}

// TestHandleQueryLockFree pins the tentpole's contract: the query and
// status hot paths acquire s.mu zero times. The test holds the server
// mutex for the whole duration — if either handler touched it, the
// handler would block and the watchdog below would fire.
func TestHandleQueryLockFree(t *testing.T) {
	srv := stressServer(t)

	srv.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			rep := srv.handle(stressQueryMsg())
			if err := wire.RemoteError(rep); err != nil {
				t.Errorf("query under held mutex: %v", err)
				return
			}
			if rep.QueryRep == nil || len(rep.QueryRep.Records) != 4 {
				t.Errorf("query under held mutex returned %+v", rep)
				return
			}
			st := srv.handle(&wire.Message{Kind: wire.KindStatus, From: "t"})
			if st.Status == nil || st.Status.ID != "S" {
				t.Errorf("status under held mutex returned %+v", st)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("query/status path blocked on s.mu: hot path is not lock-free")
	}
	srv.mu.Unlock()

	if got := srv.mx.queries.Load(); got != 100 {
		t.Fatalf("queriesServed = %d, want 100", got)
	}
}

// TestReplicaBatchNoTornReads alternates two replica-batch generations —
// five origins all at 100 records, then the same five all at 200 — while
// queries run full tilt. A batch is applied under one lock and published
// as one snapshot, so every reply must see a complete, single-generation
// overlay: five redirects, all with the same record count. A torn read
// (mixed generations, or a partially applied batch) fails the test.
func TestReplicaBatchNoTornReads(t *testing.T) {
	srv := stressServer(t)
	schema := srv.cfg.Schema

	mkBatch := func(n uint64) *wire.Message {
		pushes := make([]*wire.ReplicaPush, 5)
		for i := range pushes {
			pushes[i] = &wire.ReplicaPush{
				OriginID:   fmt.Sprintf("sib%d", i),
				OriginAddr: fmt.Sprintf("addr-sib%d", i),
				Branch:     stressSummary(t, schema, n),
				Level:      1,
			}
		}
		return &wire.Message{Kind: wire.KindReplicaBatch, From: "P", Addr: "addr-P",
			Batch: &wire.ReplicaBatch{Pushes: pushes}}
	}
	batches := []*wire.Message{mkBatch(100), mkBatch(200)}
	if err := wire.RemoteError(srv.handle(batches[0])); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.handle(batches[i%2])
		}
	}()

	var checked atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := srv.handle(stressQueryMsg())
				if err := wire.RemoteError(rep); err != nil {
					t.Errorf("query failed mid-churn: %v", err)
					return
				}
				rds := rep.QueryRep.Redirects
				if len(rds) != 5 {
					t.Errorf("saw %d redirects, want 5 (partial batch visible)", len(rds))
					return
				}
				for _, rd := range rds {
					if rd.Records != rds[0].Records {
						t.Errorf("torn read: redirect %s has %d records, %s has %d",
							rd.ID, rd.Records, rds[0].ID, rds[0].Records)
						return
					}
				}
				if rds[0].Records != 100 && rds[0].Records != 200 {
					t.Errorf("redirect records = %d, want 100 or 200", rds[0].Records)
					return
				}
				checked.Add(1)
			}
		}()
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if checked.Load() == 0 {
		t.Fatal("no queries completed during the churn window")
	}
}

// TestQueryChurnStress hammers one server with parallel queries and
// status probes while joins, leaves, summary reports, replica batches,
// summary refreshes and prunes churn the routing state. Run under -race
// (make tier1 does) this is the torn-read / data-race gate for the
// snapshot machinery; functionally each reply must still be well-formed.
func TestQueryChurnStress(t *testing.T) {
	srv := stressServer(t)
	schema := srv.cfg.Schema

	stop := make(chan struct{})
	var wg sync.WaitGroup
	running := func() bool {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}

	// Churn 1: children joining, reporting summaries, and leaving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; running(); i++ {
			id := fmt.Sprintf("c%d", i%4)
			addr := "addr-" + id
			srv.handle(&wire.Message{Kind: wire.KindJoin, From: id, Addr: addr,
				Join: &wire.Join{ID: id, Addr: addr}})
			srv.handle(&wire.Message{Kind: wire.KindSummaryReport, From: id, Addr: addr,
				Report: &wire.SummaryReport{Summary: stressSummary(t, schema, uint64(i%7+1)), Depth: 1}})
			srv.handle(&wire.Message{Kind: wire.KindHeartbeat, From: id, Addr: addr})
			if i%3 == 2 {
				srv.handle(&wire.Message{Kind: wire.KindLeave, From: id, Addr: addr})
			}
		}
	}()

	// Churn 2: overlay replica batches from a parent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; running(); i++ {
			pushes := []*wire.ReplicaPush{{
				OriginID:   fmt.Sprintf("sib%d", i%3),
				OriginAddr: fmt.Sprintf("addr-sib%d", i%3),
				Branch:     stressSummary(t, schema, uint64(i%5+1)),
				Level:      1,
			}}
			srv.handle(&wire.Message{Kind: wire.KindReplicaBatch, From: "P", Addr: "addr-P",
				Batch: &wire.ReplicaBatch{Pushes: pushes}})
		}
	}()

	// Churn 3: the aggregation loop's work, driven directly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for running() {
			srv.refreshSummaries()
			srv.pruneDeadChildren()
			srv.pruneStaleReplicas()
		}
	}()

	// Readers: queries and status probes.
	var served atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for running() {
				rep := srv.handle(stressQueryMsg())
				if err := wire.RemoteError(rep); err != nil {
					t.Errorf("query failed mid-churn: %v", err)
					return
				}
				if got := len(rep.QueryRep.Records); got != 4 {
					t.Errorf("query returned %d local records, want 4", got)
					return
				}
				st := srv.handle(&wire.Message{Kind: wire.KindStatus, From: "t"})
				if st.Status == nil || st.Status.ID != "S" {
					t.Errorf("malformed status mid-churn: %+v", st)
					return
				}
				served.Add(1)
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no queries completed during the churn window")
	}
	if got := srv.mx.queries.Load(); got < served.Load() {
		t.Fatalf("queriesServed = %d, want at least %d", got, served.Load())
	}
}
