package live

import (
	"fmt"
	"testing"
	"time"

	"roads/internal/record"
	"roads/internal/transport"
	"roads/internal/wire"
)

// --- helpers ---

// childEpochState snapshots the parent-side epoch record for one child.
func childEpochState(s *Server, id string) (epoch uint64, capable bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.children[id]
	if !ok {
		return 0, false
	}
	return c.epoch, c.epochCapable
}

// parentEpochState snapshots the child-side epoch record.
func parentEpochState(s *Server) (epoch uint64, capable bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parentEpoch, s.parentEpochCapable
}

// rootPathOf snapshots a server's root path.
func rootPathOf(s *Server) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.rootPath...)
}

// aliveRoots returns the servers (skipping skipIdx) that currently claim
// the root role. A killed server's frozen state still reports IsRoot, so
// chaos tests that crash the root must pass its index.
func aliveRoots(cl *Cluster, skip map[int]bool) []*Server {
	var roots []*Server
	for i, srv := range cl.Servers {
		if skip[i] {
			continue
		}
		if srv.IsRoot() {
			roots = append(roots, srv)
		}
	}
	return roots
}

// sumMembership folds the membership counters across all live servers.
func sumMembership(cl *Cluster, skip map[int]bool) MembershipInfo {
	var sum MembershipInfo
	for i, srv := range cl.Servers {
		if skip[i] {
			continue
		}
		m := srv.Membership()
		sum.Fenced += m.Fenced
		sum.Elections += m.Elections
		sum.Merges += m.Merges
		sum.Probes += m.Probes
		sum.OrphanRetries += m.OrphanRetries
		sum.EpochRegressions += m.EpochRegressions
	}
	return sum
}

// subtreeOf returns the index set of rootIdx's subtree (itself included),
// computed from the live parent pointers.
func subtreeOf(cl *Cluster, rootIdx int) map[int]bool {
	id := make(map[string]int, len(cl.Servers))
	for i, srv := range cl.Servers {
		id[srv.ID()] = i
	}
	in := map[int]bool{rootIdx: true}
	// Parent pointers always lead to an earlier-attached server, but walk
	// repeatedly anyway so discovery order cannot matter.
	for changed := true; changed; {
		changed = false
		for i, srv := range cl.Servers {
			if in[i] {
				continue
			}
			if p, ok := id[srv.ParentID()]; ok && in[p] {
				in[i] = true
				changed = true
			}
		}
	}
	return in
}

// --- epoch capability bootstrap and mixed-version interop ---

// TestEpochCapabilityBootstrap drives the capability chain on a parked
// star with one epoch-capable child and one pre-epoch child: the capable
// child proves itself via its (always-stamped) replica-batch ack, the
// parent starts stamping its pushes, which is the child's proof, and from
// then on both directions of the relationship are stamped — while the
// pre-epoch child's relationship stays entirely epoch-free, down to the
// wire version byte.
func TestEpochCapabilityBootstrap(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	p := deltaServerCfg(t, tr, "p", schema, nil)
	c1 := deltaServerCfg(t, tr, "c1", schema, nil)
	c2 := deltaServerCfg(t, tr, "c2", schema, func(c *Config) { c.DisableMembershipEpoch = true })
	for _, srv := range []*Server{p, c1, c2} {
		attachDeltaOwner(t, srv, schema, 2)
	}
	if err := c1.Join(p.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Join(p.Addr()); err != nil {
		t.Fatal(err)
	}

	// Nobody has proven anything yet.
	if _, capable := childEpochState(p, "c1"); capable {
		t.Fatal("c1 marked epoch-capable before any stamped message")
	}

	// Round 1: p's push is unstamped (c1 unproven), but c1's batch ack is
	// stamped — the bootstrap — so p learns c1 speaks v4.
	driveRound(c1, c2, p)
	if _, capable := childEpochState(p, "c1"); !capable {
		t.Fatal("c1's stamped batch ack did not mark it epoch-capable on the parent")
	}
	if _, capable := childEpochState(p, "c2"); capable {
		t.Fatal("pre-epoch c2 was marked epoch-capable")
	}
	// Round 2: p's push to c1 is now stamped, which is c1's proof.
	driveRound(c1, c2, p)
	if _, capable := parentEpochState(c1); !capable {
		t.Fatal("p's stamped push did not mark the parent epoch-capable on c1")
	}
	// Round 3: c1's report is stamped, so the recorded relationship epoch
	// lands on the parent side.
	driveRound(c1, c2, p)
	if epoch, _ := childEpochState(p, "c1"); epoch != c1.Epoch() {
		t.Fatalf("parent recorded epoch %d for c1; child is at %d", epoch, c1.Epoch())
	}

	// Wire-level: a stamped heartbeat gets a stamped (v4) reply, an
	// unstamped one a v2 reply — a pre-epoch peer never sees a v4 payload
	// on its relationship traffic.
	rep := p.handle(&wire.Message{Kind: wire.KindHeartbeat, From: "c1", Addr: c1.Addr(), Epoch: c1.Epoch()})
	if rep.Epoch == 0 {
		t.Fatal("reply to a stamped heartbeat is unstamped")
	}
	if data, err := wire.Encode(rep); err != nil || data[1] != 4 {
		t.Fatalf("stamped heartbeat reply encoded at version %d (err %v); want 4", data[1], err)
	}
	rep = p.handle(&wire.Message{Kind: wire.KindHeartbeat, From: "c2", Addr: c2.Addr()})
	if rep.Epoch != 0 {
		t.Fatal("reply to an unstamped heartbeat carries an epoch")
	}
	if data, err := wire.Encode(rep); err != nil || data[1] != 2 {
		t.Fatalf("unstamped heartbeat reply encoded at version %d (err %v); want 2", data[1], err)
	}

	// Root probes are the capability exception: always stamped, and a
	// pre-epoch peer answers with its generic unhandled-kind error, which
	// probers read as "not capable".
	probe := p.probeMessage()
	if probe.Epoch == 0 {
		t.Fatal("root probe left unstamped")
	}
	if rep := c2.handle(probe); wire.RemoteError(rep) == nil {
		t.Fatal("pre-epoch peer answered a root probe instead of erroring")
	}
	rep = c1.handle(p.probeMessage())
	if wire.RemoteError(rep) != nil || rep.RootProbe == nil {
		t.Fatalf("capable peer rejected a root probe: %+v", rep)
	}
	if rep.RootProbe.RootID != "p" {
		t.Fatalf("c1 follows root %q; want p", rep.RootProbe.RootID)
	}
}

// TestEpochLegacyParentNeverStamped is the other interop direction: under
// a pre-epoch parent, a capable child stamps only its batch acks (which
// the parent is free to ignore) and never its heartbeats or reports,
// because the parent can never prove v4 back.
func TestEpochLegacyParentNeverStamped(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	lp := deltaServerCfg(t, tr, "lp", schema, func(c *Config) { c.DisableMembershipEpoch = true })
	c3 := deltaServerCfg(t, tr, "c3", schema, nil)
	attachDeltaOwner(t, lp, schema, 2)
	attachDeltaOwner(t, c3, schema, 2)
	if err := c3.Join(lp.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		driveRound(c3, lp)
	}
	if _, capable := parentEpochState(c3); capable {
		t.Fatal("child marked a pre-epoch parent epoch-capable")
	}
	// The child's relationship messages toward it stay epoch-free, so the
	// legacy parent never receives v4 traffic it must act on.
	hb := &wire.Message{Kind: wire.KindHeartbeat, From: "c3", Addr: c3.Addr()}
	c3.mu.Lock()
	stamp := c3.epochEnabled() && c3.parentEpochCapable
	c3.mu.Unlock()
	if stamp {
		t.Fatal("child would stamp heartbeats to a pre-epoch parent")
	}
	if data, err := wire.Encode(hb); err != nil || data[1] != 2 {
		t.Fatalf("heartbeat to legacy parent encoded at version %d (err %v); want 2", data[1], err)
	}
}

// TestEpochFencesStaleMutations pins the fence on every parent-side
// relationship handler: once a child's recorded epoch advances, messages
// stamped from an older regime are rejected with an error and counted,
// without moving the recorded epoch — and without ever counting an epoch
// regression, which is the protocol invariant.
func TestEpochFencesStaleMutations(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	p := deltaServerCfg(t, tr, "p", schema, nil)
	c1 := deltaServerCfg(t, tr, "c1", schema, nil)
	if err := c1.Join(p.Addr()); err != nil {
		t.Fatal(err)
	}

	// Advance the recorded relationship epoch to 5 via a stamped heartbeat.
	rep := p.handle(&wire.Message{Kind: wire.KindHeartbeat, From: "c1", Addr: c1.Addr(), Epoch: 5})
	if wire.RemoteError(rep) != nil {
		t.Fatalf("stamped heartbeat rejected: %v", wire.RemoteError(rep))
	}
	if epoch, capable := childEpochState(p, "c1"); epoch != 5 || !capable {
		t.Fatalf("recorded epoch %d capable=%v after stamp; want 5/true", epoch, capable)
	}

	fencedBefore := p.mx.fenced.Load()
	stale := []*wire.Message{
		{Kind: wire.KindHeartbeat, From: "c1", Addr: c1.Addr(), Epoch: 3},
		{Kind: wire.KindSummaryReport, From: "c1", Addr: c1.Addr(), Epoch: 3,
			Report: &wire.SummaryReport{Version: 1}},
		{Kind: wire.KindJoin, From: "c1", Addr: c1.Addr(), Epoch: 3,
			Join: &wire.Join{ID: "c1", Addr: c1.Addr()}},
	}
	for _, msg := range stale {
		if rep := p.handle(msg); wire.RemoteError(rep) == nil {
			t.Fatalf("stale kind-%d mutation (epoch 3 < 5) was not fenced", msg.Kind)
		}
	}
	if got := p.mx.fenced.Load() - fencedBefore; got != uint64(len(stale)) {
		t.Fatalf("fenced counter moved by %d; want %d", got, len(stale))
	}
	if epoch, _ := childEpochState(p, "c1"); epoch != 5 {
		t.Fatalf("fenced traffic moved the recorded epoch to %d", epoch)
	}
	// Unstamped traffic (a pre-epoch peer) is never fenced.
	if rep := p.handle(&wire.Message{Kind: wire.KindHeartbeat, From: "c1", Addr: c1.Addr()}); wire.RemoteError(rep) != nil {
		t.Fatalf("unstamped heartbeat fenced: %v", wire.RemoteError(rep))
	}
	// A current-epoch re-join passes the fence.
	if rep := p.handle(&wire.Message{Kind: wire.KindJoin, From: "c1", Addr: c1.Addr(), Epoch: 6,
		Join: &wire.Join{ID: "c1", Addr: c1.Addr()}}); wire.RemoteError(rep) != nil {
		t.Fatalf("current-epoch rejoin fenced: %v", wire.RemoteError(rep))
	}
	if p.mx.epochRegressions.Load() != 0 {
		t.Fatalf("epoch regressions = %d; the fences must catch staleness first", p.mx.epochRegressions.Load())
	}
}

// --- parent-miss accounting (per-source counters) ---

// TestParentMissPerSourceDetection pins the detection-time contract: the
// heartbeat and report loops miss independently, and failure is declared
// only when ONE source reaches HeartbeatMiss by itself. The old shared
// bucket reached the threshold ~2× faster than configured when both loops
// were missing — interleaved misses below the per-source threshold must
// not trigger recovery.
func TestParentMissPerSourceDetection(t *testing.T) {
	schema := record.DefaultSchema(2)
	tr := transport.NewChan()
	p := deltaServerCfg(t, tr, "p", schema, nil)
	c := deltaServerCfg(t, tr, "c", schema, nil) // DefaultConfig: HeartbeatMiss = 4
	if err := c.Join(p.Addr()); err != nil {
		t.Fatal(err)
	}
	miss := c.cfg.HeartbeatMiss
	if miss < 2 {
		t.Fatalf("HeartbeatMiss = %d; test needs >= 2", miss)
	}

	// 2×(miss-1) interleaved misses: each source stays below the
	// threshold. The buggy shared bucket would have fired at `miss` total.
	for i := 0; i < miss-1; i++ {
		c.noteParentMiss(missHeartbeat)
		c.noteParentMiss(missReport)
	}
	if got := c.mx.parentFailovers.Load(); got != 0 {
		t.Fatalf("recovery triggered after %d interleaved misses (threshold %d per source); shared-bucket double counting is back", 2*(miss-1), miss)
	}
	if pid := c.ParentID(); pid != "p" {
		t.Fatalf("parent dropped to %q below the miss threshold", pid)
	}

	// One more miss from a single source crosses its threshold: detection
	// happens now, exactly at the configured count.
	c.noteParentMiss(missHeartbeat)
	if got := c.mx.parentFailovers.Load(); got != 1 {
		t.Fatalf("parent failovers = %d after source reached %d misses; want 1", got, miss)
	}
	// The orphan has no ancestors and no siblings, so the recovery claims
	// the root role promptly.
	deadline := time.Now().Add(convergeTimeout)
	for !c.IsRoot() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !c.IsRoot() {
		t.Fatal("orphan with no ancestors or siblings never claimed the root role")
	}
	// A recovered (parentless) server ignores further misses.
	c.noteParentMiss(missReport)
	if got := c.mx.parentFailovers.Load(); got != 1 {
		t.Fatalf("parentless server planned another failover (count %d)", got)
	}
}

// --- stale heartbeat replies (parent changed mid-flight) ---

// hijackTransport wraps a Transport and lets a test intercept Call.
type hijackTransport struct {
	transport.Transport
	hijack func(addr string, req *wire.Message) (*wire.Message, bool)
}

func (h *hijackTransport) Call(addr string, req *wire.Message) (*wire.Message, error) {
	if h.hijack != nil {
		if rep, ok := h.hijack(addr, req); ok {
			return rep, nil
		}
	}
	return h.Transport.Call(addr, req)
}

// TestHeartbeatStaleReplyDiscarded pins the stale-parent guard in
// sendHeartbeat: when the parent changes while a heartbeat is in flight
// (a rejoin won the race), the old parent's reply describes the dead
// relationship's ancestry and must not clobber the post-rejoin root path.
func TestHeartbeatStaleReplyDiscarded(t *testing.T) {
	schema := record.DefaultSchema(2)
	ch := transport.NewChan()
	hj := &hijackTransport{Transport: ch}
	p := deltaServerCfg(t, ch, "p", schema, nil)
	c := deltaServerCfg(t, hj, "c", schema, nil)
	if err := c.Join(p.Addr()); err != nil {
		t.Fatal(err)
	}

	staleReply := func() *wire.Message {
		return &wire.Message{
			Kind: wire.KindHeartbeatReply, From: "p", Addr: p.Addr(),
			Heartbeat: &wire.Heartbeat{RootPath: []string{"stale-root"}, PathAddrs: []string{"addr-stale-root"}},
		}
	}

	// While the heartbeat is in flight, a rejoin moves the parent: the
	// reply that then lands is from the replaced relationship.
	hj.hijack = func(addr string, req *wire.Message) (*wire.Message, bool) {
		if req.Kind != wire.KindHeartbeat {
			return nil, false
		}
		c.mu.Lock()
		c.parentID, c.parentAddr = "q", "addr-q"
		c.rootPath = []string{"q", "c"}
		c.rootPathAddrs = []string{"addr-q", c.Addr()}
		c.publishSnapshotLocked()
		c.mu.Unlock()
		return staleReply(), true
	}
	c.sendHeartbeat()
	if path := rootPathOf(c); len(path) != 2 || path[0] != "q" {
		t.Fatalf("stale heartbeat reply clobbered the post-rejoin root path: %v", path)
	}
	if pid := c.ParentID(); pid != "q" {
		t.Fatalf("parent rewritten to %q by a stale reply", pid)
	}

	// Control: the identical reply applies when the parent is unchanged —
	// proving the guard (not some other rejection) discarded it above.
	c.mu.Lock()
	c.parentID, c.parentAddr = "p", p.Addr()
	c.publishSnapshotLocked()
	c.mu.Unlock()
	hj.hijack = func(addr string, req *wire.Message) (*wire.Message, bool) {
		if req.Kind != wire.KindHeartbeat {
			return nil, false
		}
		return staleReply(), true
	}
	c.sendHeartbeat()
	if path := rootPathOf(c); len(path) != 2 || path[0] != "stale-root" {
		t.Fatalf("control reply did not apply: %v", path)
	}
}

// --- chaos: split-brain, elections, merges ---

// startMembershipCluster is startChaosCluster plus a config mutator, for
// chaos scenarios that need merge seeds or other membership knobs.
func startMembershipCluster(t *testing.T, n, maxChildren int, seed int64, mut func(*ClusterConfig)) (*Cluster, *transport.Faulty) {
	t.Helper()
	leakCheck(t)
	f := transport.NewFaulty(transport.NewChan(), seed)
	f.MaxBlackhole = 5 * time.Millisecond
	cfg := ClusterConfig{
		N:               n,
		Schema:          record.DefaultSchema(2),
		MaxChildren:     maxChildren,
		ReplicaTTLFloor: 300 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	cl, err := StartCluster(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl, f
}

// awaitRootCount polls until exactly want servers (outside skip) claim the
// root role.
func awaitRootCount(t *testing.T, cl *Cluster, skip map[int]bool, want int, what string) []*Server {
	t.Helper()
	deadline := time.Now().Add(convergeTimeout)
	var roots []*Server
	for time.Now().Before(deadline) {
		roots = aliveRoots(cl, skip)
		if len(roots) == want {
			return roots
		}
		time.Sleep(20 * time.Millisecond)
	}
	ids := make([]string, len(roots))
	for i, r := range roots {
		ids[i] = r.ID()
	}
	t.Fatalf("%s: %d roots %v, want %d", what, len(roots), ids, want)
	return nil
}

// awaitCoverage polls until every server outside skip covers exactly
// total records.
func awaitCoverage(t *testing.T, cl *Cluster, skip map[int]bool, total uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(convergeTimeout)
	for time.Now().Before(deadline) {
		ok := true
		for i, srv := range cl.Servers {
			if skip[i] {
				continue
			}
			if srv.CoveredRecords() != total {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, srv := range cl.Servers {
		if !skip[i] && srv.CoveredRecords() != total {
			t.Fatalf("%s: %s covers %d of %d records", what, srv.ID(), srv.CoveredRecords(), total)
		}
	}
}

// TestChaosPartitionHealMerge is the full split-brain lifecycle on a real
// cluster: a root child's subtree is severed by a network partition, the
// severed side elects its own root under a bumped epoch, and after the
// heal the split-brain probes discover the twin root and fold the trees
// back into exactly one — with full coverage restored and zero epoch
// regressions anywhere.
func TestChaosPartitionHealMerge(t *testing.T) {
	const n, recsPer = 13, 2
	cl, f := startMembershipCluster(t, n, 3, 81, nil)
	attachChaosOwners(t, cl, recsPer, -1)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}

	// Sever the smallest-ID root child's subtree: as the election winner
	// among its ex-siblings (none smaller), it claims the root role the
	// moment it detects the loss — the fastest possible split.
	var victim *Server
	var victimIdx int
	for i, srv := range cl.Servers {
		if srv.ParentID() == root.ID() && (victim == nil || srv.ID() < victim.ID()) {
			victim, victimIdx = srv, i
		}
	}
	if victim == nil {
		t.Fatal("root has no children")
	}
	severed := subtreeOf(cl, victimIdx)
	if len(severed) == n {
		t.Fatal("victim subtree is the whole cluster")
	}
	var sideA, sideB []string
	for i, srv := range cl.Servers {
		if severed[i] {
			sideA = append(sideA, srv.ID())
		} else {
			sideB = append(sideB, srv.ID())
		}
	}
	epochBefore := victim.Epoch()
	f.SetRules(transport.PartitionSets(sideA, sideB)...)

	// Split-brain: the severed side elects its own root.
	roots := awaitRootCount(t, cl, nil, 2, "during partition")
	split := roots[0]
	if split == root {
		split = roots[1]
	}
	if !severed[victimIdx] || !victim.IsRoot() {
		t.Fatalf("severed subtree elected %s, expected its head %s", split.ID(), victim.ID())
	}
	if got := victim.Epoch(); got <= epochBefore {
		t.Fatalf("election did not bump the epoch: %d -> %d", epochBefore, got)
	}
	if dropped, _, _ := f.Injected(); dropped == 0 {
		t.Fatal("partition rules never fired")
	}

	// Heal: the twin roots must discover each other (the severed root
	// remembers its pre-partition ancestry) and merge to exactly one.
	f.ClearRules()
	awaitRootCount(t, cl, nil, 1, "after heal")
	if err := cl.WaitConverged(uint64(n*recsPer), convergeTimeout); err != nil {
		t.Fatalf("post-merge convergence: %v", err)
	}
	sum := sumMembership(cl, nil)
	if sum.Merges == 0 {
		t.Fatal("trees reunified without a recorded merge")
	}
	if sum.Elections == 0 {
		t.Fatal("split happened without a recorded election")
	}
	if sum.EpochRegressions != 0 {
		t.Fatalf("epoch fencing invariant violated: %d regressions", sum.EpochRegressions)
	}
}

// TestChaosElectionWinnerUnreachable kills the root while the election
// winner (the smallest-ID ex-sibling) is unreachable: the reachable
// orphans must not dangle on the dead winner — they claim or re-form
// elsewhere — and once the winner is reachable again the split-brain
// protocol converges everything onto it (smallest ID wins every
// same-epoch merge decision).
func TestChaosElectionWinnerUnreachable(t *testing.T) {
	const n, recsPer = 10, 2
	cl, f := startMembershipCluster(t, n, 3, 82, nil)
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}
	rootIdx := -1
	var winner *Server
	for i, srv := range cl.Servers {
		if srv == root {
			rootIdx = i
			continue
		}
		if srv.ParentID() == root.ID() && (winner == nil || srv.ID() < winner.ID()) {
			winner = srv
		}
	}
	if winner == nil {
		t.Fatal("root has no children")
	}
	attachChaosOwners(t, cl, recsPer, rootIdx)
	skip := map[int]bool{rootIdx: true}

	// The winner goes dark first, then the root dies: every orphan's
	// first-choice election target is unreachable.
	f.SetRules(transport.Down(winner.Addr()))
	root.Kill()

	// The reachable survivors must converge on some root of their own
	// rather than dangle (the winner, cut off, roots itself too).
	deadline := time.Now().Add(convergeTimeout)
	for time.Now().Before(deadline) {
		if len(aliveRoots(cl, skip)) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if roots := aliveRoots(cl, skip); len(roots) < 2 {
		t.Fatalf("survivors never rooted around the unreachable winner: roots %d", len(roots))
	}

	// Reconnect the winner: everything merges onto it — same epochs tie,
	// and it has the smallest ID of every candidate root.
	f.ClearRules()
	roots := awaitRootCount(t, cl, skip, 1, "after winner reachable")
	if roots[0] != winner {
		t.Fatalf("federation converged on %s; want the election winner %s", roots[0].ID(), winner.ID())
	}
	awaitCoverage(t, cl, skip, uint64((n-1)*recsPer), "after winner reachable")
	if sum := sumMembership(cl, skip); sum.EpochRegressions != 0 {
		t.Fatalf("epoch fencing invariant violated: %d regressions", sum.EpochRegressions)
	}
}

// TestChaosRootAndGrandparentDie crashes the root and one of its interior
// children at the same instant: the dead child's orphans lose their whole
// surviving ancestry (parent and grandparent at once) and must re-form
// via election, then rediscover the main tree through the configured
// merge seeds. Everything alive must end under exactly one root with full
// coverage of the surviving records.
func TestChaosRootAndGrandparentDie(t *testing.T) {
	const n, recsPer = 13, 2
	// Seed the split-brain probes with the whole address set — the
	// deployment-config stance of "every server is a well-known address" —
	// so surviving fragments can rediscover each other no matter which
	// two servers the crashes take out (dead seeds just fail to answer).
	seeds := make([]string, n)
	for i := range seeds {
		seeds[i] = fmt.Sprintf("srv%03d", i)
	}
	cl, _ := startMembershipCluster(t, n, 3, 83, func(cfg *ClusterConfig) {
		cfg.MergeSeeds = seeds
	})
	root := cl.Root()
	if root == nil {
		t.Fatal("no root")
	}
	rootIdx := -1
	for i, srv := range cl.Servers {
		if srv == root {
			rootIdx = i
		}
	}
	// The second victim: an interior root child, so its children lose
	// parent and grandparent simultaneously.
	var mid *Server
	midIdx := -1
	for i, srv := range cl.Servers {
		if srv.ParentID() == root.ID() && srv.NumChildren() > 0 {
			mid, midIdx = srv, i
			break
		}
	}
	if mid == nil {
		t.Fatal("no interior root child; tree too shallow")
	}
	attachChaosOwners(t, cl, recsPer, -1)
	skip := map[int]bool{rootIdx: true, midIdx: true}

	root.Kill()
	mid.Kill()

	awaitRootCount(t, cl, skip, 1, "after double crash")
	awaitCoverage(t, cl, skip, uint64((n-2)*recsPer), "after double crash")
	sum := sumMembership(cl, skip)
	if sum.Elections == 0 {
		t.Fatal("double crash recovered without any election")
	}
	if sum.EpochRegressions != 0 {
		t.Fatalf("epoch fencing invariant violated: %d regressions", sum.EpochRegressions)
	}
	for i, srv := range cl.Servers {
		if skip[i] || srv.IsRoot() {
			continue
		}
		if srv.ParentID() == root.ID() || srv.ParentID() == mid.ID() {
			t.Fatalf("%s still attached to dead parent %s", srv.ID(), srv.ParentID())
		}
	}
}
