package live

import (
	"testing"
	"time"

	"roads/internal/query"
)

// TestCrashedLeafExpiresFromOverlay kills a leaf abruptly (no Leave) and
// verifies the soft-state machinery cleans up: the parent prunes the dead
// child, replicas of the dead branch age out everywhere, and queries over
// the surviving data stay complete.
func TestCrashedLeafExpiresFromOverlay(t *testing.T) {
	cl, w := startWorkloadCluster(t, 6, 10, 50)
	var victim *Server
	var victimIdx int
	for i, srv := range cl.Servers {
		if !srv.IsRoot() && srv.NumChildren() == 0 {
			victim, victimIdx = srv, i
			break
		}
	}
	if victim == nil {
		t.Skip("no leaf")
	}
	victim.Kill() // crash: no Leave messages

	// Wait for heartbeat-miss detection + replica TTL (ticks are 25ms, so
	// the 4*miss*tick TTL is 400ms; give it ample slack).
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		gone := true
		for _, srv := range cl.Servers {
			if srv == victim {
				continue
			}
			srv.mu.Lock()
			_, hasChild := srv.children[victim.ID()]
			_, hasReplica := srv.replicas[victim.ID()]
			srv.mu.Unlock()
			if hasChild || hasReplica {
				gone = false
				break
			}
		}
		if gone {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, srv := range cl.Servers {
		if srv == victim {
			continue
		}
		srv.mu.Lock()
		_, hasChild := srv.children[victim.ID()]
		_, hasReplica := srv.replicas[victim.ID()]
		srv.mu.Unlock()
		if hasChild {
			t.Fatalf("%s still lists crashed %s as a child", srv.ID(), victim.ID())
		}
		if hasReplica {
			t.Fatalf("%s still holds a replica of crashed %s", srv.ID(), victim.ID())
		}
	}

	// Surviving data remains fully queryable.
	q := query.New("q", query.NewRange("a0", 0, 1))
	if err := q.Bind(w.Schema); err != nil {
		t.Fatal(err)
	}
	client := NewClient(cl.Tr, "t")
	root := cl.Root()
	recs, _, err := client.Resolve(root.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i, nodeRecs := range w.PerNode {
		if i == victimIdx {
			continue
		}
		for _, r := range nodeRecs {
			if q.MatchRecord(r) {
				want++
			}
		}
	}
	if len(recs) < want {
		t.Fatalf("after crash got %d records; want >= %d", len(recs), want)
	}
}

// TestKillIdempotent ensures Kill is safe to call twice and on stopped
// servers.
func TestKillIdempotent(t *testing.T) {
	cl, _ := startWorkloadCluster(t, 3, 5, 51)
	srv := cl.Servers[2]
	srv.Kill()
	srv.Kill()
	srv.Stop() // stop after kill must also be safe
}

// TestRootCrashElection kills the root abruptly: its children must detect
// the death via heartbeat misses and elect the smallest-ID child as the
// new root (paper §III-A), with everyone else reattaching under it.
func TestRootCrashElection(t *testing.T) {
	cl, w := startWorkloadCluster(t, 7, 8, 52)
	oldRoot := cl.Root()
	if oldRoot == nil {
		t.Fatal("no root")
	}
	// The expected winner is the smallest-ID child of the root.
	oldRoot.mu.Lock()
	wantWinner := ""
	for id := range oldRoot.children {
		if wantWinner == "" || id < wantWinner {
			wantWinner = id
		}
	}
	oldRoot.mu.Unlock()
	if wantWinner == "" {
		t.Skip("root has no children")
	}
	oldRoot.Kill()

	// Wait for a single new root to emerge and everyone to reattach.
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		var roots []*Server
		attached := 0
		for _, srv := range cl.Servers {
			if srv == oldRoot {
				continue
			}
			if srv.IsRoot() {
				roots = append(roots, srv)
			} else if srv.ParentID() != "" {
				attached++
			}
		}
		if len(roots) == 1 && roots[0].ID() == wantWinner && attached == len(cl.Servers)-2 {
			// Converged: verify queries still resolve over survivors.
			client := NewClient(cl.Tr, "t")
			q := query.New("q", query.NewRange("a0", 0, 1))
			if err := q.Bind(w.Schema); err != nil {
				t.Fatal(err)
			}
			// Give aggregation a few ticks to re-cover the survivors.
			qDeadline := time.Now().Add(60 * time.Second)
			want := 0
			for i, recs := range w.PerNode {
				if cl.Servers[i] == oldRoot {
					continue
				}
				for _, r := range recs {
					if q.MatchRecord(r) {
						want++
					}
				}
			}
			for time.Now().Before(qDeadline) {
				recs, _, err := client.Resolve(roots[0].Addr(), q.Clone())
				if err == nil && len(recs) >= want {
					return
				}
				time.Sleep(25 * time.Millisecond)
			}
			t.Fatal("queries incomplete after root election")
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, srv := range cl.Servers {
		if srv == oldRoot {
			continue
		}
		t.Logf("state: %s isroot=%v parent=%q", srv.ID(), srv.IsRoot(), srv.ParentID())
	}
	t.Fatalf("no stable new root emerged (want %s)", wantWinner)
}
