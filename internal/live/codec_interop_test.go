package live

import (
	"net"
	"testing"
	"time"

	"roads/internal/policy"
	"roads/internal/query"
	"roads/internal/record"
	"roads/internal/transport"
)

// TestLegacyGobServerInterop runs the full live protocol across the codec
// boundary over real TCP: a legacy peer that only speaks gob (UseGob
// dialer, as a binary pre-dating build would) joins a binary-codec root,
// reports summaries, receives replica pushes, and serves queries — and
// clients on either codec resolve the complete record set through both
// servers. This is the mixed-version deployment story: the fleet upgrades
// one server at a time with no flag day.
func TestLegacyGobServerInterop(t *testing.T) {
	schema := record.DefaultSchema(2)
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}

	trBin := transport.NewTCP()
	defer trBin.Close()
	trGob := transport.NewTCP()
	trGob.UseGob = true
	defer trGob.Close()

	mk := func(id, addr string, tr transport.Transport, val float64) *Server {
		t.Helper()
		cfg := DefaultConfig(id, addr, schema)
		srv, err := NewServer(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Stop)
		o := policy.NewOwner("own-"+id, schema, nil)
		r := record.New(schema, "r-"+id, o.ID)
		r.SetNum(0, val)
		r.SetNum(1, 0.5)
		o.SetRecords([]*record.Record{r})
		if err := srv.AttachOwner(o); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	root := mk("root", addrs[0], trBin, 0.3)
	legacy := mk("legacy", addrs[1], trGob, 0.7)

	if err := legacy.Join(root.Addr()); err != nil {
		t.Fatalf("gob peer failed to join binary root: %v", err)
	}

	// Converged: the root's branch covers both records (the legacy child's
	// summary report made it across the codec boundary), and the legacy
	// server holds the root's ancestor replica (the push came back down).
	deadline := time.Now().Add(30 * time.Second)
	for root.BranchRecords() < 2 || legacy.NumReplicas() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: root branch=%d legacy replicas=%d",
				root.BranchRecords(), legacy.NumReplicas())
		}
		time.Sleep(20 * time.Millisecond)
	}

	q := query.New("interop-q", query.NewRange("a0", 0, 1))
	for _, tc := range []struct {
		name  string
		tr    transport.Transport
		start string
	}{
		{"gob client via binary root", trGob, root.Addr()},
		{"binary client via gob server", trBin, legacy.Addr()},
	} {
		client := NewClient(tc.tr, "t")
		recs, stats, err := client.Resolve(tc.start, q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(recs) != 2 {
			t.Fatalf("%s: got %d records, want 2 (contacted %v)", tc.name, len(recs), stats.Servers)
		}
	}
}
